(* Reproduction harness + timing benchmarks for every table and figure of
   Milev & Burt, "A Tool and Methodology for AC-Stability Analysis of
   Continuous-Time Closed-Loop Systems" (DATE 2005).

   Running this executable regenerates, in order:
     Table 1   second-order characteristics (exact closed forms)
     Fig 1     the 2 MHz op-amp netlist
     Fig 2     its step response and overshoot
     Fig 3     the open-loop gain/phase margins (traditional baseline)
     Fig 4     the stability plot at the output node
     Table 2   the all-nodes report, grouped by loop
     Fig 5     the bias cell, before/after the paper's 1 pF fix
     S1.2      the "-43.1 at 10.471 MHz" example plot
   followed by a paper-vs-measured summary and Bechamel timings of each
   kernel. *)

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let fmt = Numerics.Engnum.format

(* Collected paper-vs-measured rows for the final summary. *)
let summary : (string * string * string * bool) list ref = ref []

let record ~experiment ~paper ~measured ok =
  summary := (experiment, paper, measured, ok) :: !summary

(* ------------------------------------------------------------------ *)
(* Table 1                                                              *)

let run_table1 () =
  section "Table 1 -- key performance characteristics of a second-order system";
  let rows = Control.Second_order.table1 () in
  Control.Second_order.pp_table1 Format.std_formatter rows;
  (* Spot-check the paper's anchor row zeta = 0.2. *)
  let r = List.find (fun r -> r.Control.Second_order.zeta = 0.2) rows in
  let os = Option.get r.Control.Second_order.overshoot_pct in
  let ok =
    Float.abs (os -. 53.) <= 1.
    && Float.abs (r.Control.Second_order.perf_index +. 25.) <= 0.1
  in
  record ~experiment:"Table 1 (zeta=0.2 row)"
    ~paper:"os 53%, PM 20, index -25"
    ~measured:(Printf.sprintf "os %.0f%%, PM %.0f, index %.1f" os
                 (Option.get r.Control.Second_order.phase_margin_deg)
                 r.Control.Second_order.perf_index)
    ok;
  rows

(* ------------------------------------------------------------------ *)
(* Fig 1: the circuit                                                   *)

let run_fig1 () =
  section "Fig 1 -- simple 2 MHz op-amp circuit (connected as a buffer)";
  let circ = Workloads.Opamp_2mhz.buffer () in
  print_string (Circuit.Netlist.to_spice circ);
  let issues = Circuit.Topology.check circ in
  Printf.printf "* structural checks: %s\n"
    (if issues = [] then "clean" else "ISSUES FOUND");
  record ~experiment:"Fig 1 (netlist)" ~paper:"2 MHz op-amp, buffer"
    ~measured:
      (Printf.sprintf "%d devices, checks %s"
         (List.length (Circuit.Netlist.devices circ))
         (if issues = [] then "clean" else "dirty"))
    (issues = []);
  circ

(* ------------------------------------------------------------------ *)
(* Fig 2: step response                                                 *)

let run_fig2 circ =
  section "Fig 2 -- transient step response of the buffer";
  let p = Workloads.Opamp_2mhz.default_params in
  let tr = Engine.Transient.run ~tstop:8e-6 ~tstep:2e-9 circ in
  let w = Engine.Transient.v tr Workloads.Opamp_2mhz.node_out in
  (* Print a readable subsampling of the ringing. *)
  Printf.printf "%12s %12s\n" "t [us]" "v(out) [V]";
  let n = Array.length w.Engine.Waveform.Real.x in
  let step = Int.max 1 (n / 40) in
  let k = ref 0 in
  while !k < n do
    Printf.printf "%12.3f %12.5f\n"
      (w.Engine.Waveform.Real.x.(!k) *. 1e6)
      w.Engine.Waveform.Real.y.(!k);
    k := !k + step
  done;
  let m =
    Engine.Measure.step_metrics ~initial:p.Workloads.Opamp_2mhz.vcm
      ~final:(p.Workloads.Opamp_2mhz.vcm +. p.Workloads.Opamp_2mhz.step) w
  in
  Printf.printf "\nmeasured overshoot: %.1f%% (peak %.4f V at %.3f us)\n"
    m.Engine.Measure.overshoot_pct m.Engine.Measure.peak
    (m.Engine.Measure.peak_time *. 1e6);
  record ~experiment:"Fig 2 (step overshoot)" ~paper:"~50-55 %"
    ~measured:(Printf.sprintf "%.0f %%" m.Engine.Measure.overshoot_pct)
    (m.Engine.Measure.overshoot_pct > 40.
     && m.Engine.Measure.overshoot_pct < 60.);
  m

(* ------------------------------------------------------------------ *)
(* Fig 3: open-loop gain/phase                                          *)

let run_fig3 circ =
  section "Fig 3 -- open-loop gain/phase plot (traditional baseline)";
  let dev, term = Workloads.Opamp_2mhz.feedback_break in
  let sweep = Numerics.Sweep.decade 1e3 1e9 20 in
  let lg = Engine.Loopgain.middlebrook ~sweep circ ~device:dev ~terminal:term in
  let t = lg.Engine.Loopgain.loop_gain in
  let db = Engine.Waveform.Freq.db t in
  let ph = Engine.Waveform.Freq.phase_deg t in
  Printf.printf "%14s %10s %12s\n" "freq [Hz]" "|T| [dB]" "phase [deg]";
  Array.iteri
    (fun k f ->
      if k mod 4 = 0 then
        Printf.printf "%14s %10.2f %12.2f\n" (fmt f) db.(k) ph.(k))
    t.Engine.Waveform.Freq.freqs;
  let m = Engine.Loopgain.margins lg in
  Format.printf "@.%a@." Engine.Measure.pp_margins m;
  let pm = Option.value ~default:Float.nan m.Engine.Measure.phase_margin_deg in
  let fu = Option.value ~default:Float.nan m.Engine.Measure.unity_freq in
  record ~experiment:"Fig 3 (phase margin)" ~paper:"~20 deg"
    ~measured:(Printf.sprintf "%.1f deg" pm)
    (pm > 17. && pm < 23.);
  record ~experiment:"Fig 3 (0 dB crossover)" ~paper:"2.4 MHz"
    ~measured:(Printf.sprintf "%sHz" (fmt fu))
    (fu > 2e6 && fu < 4e6);
  m

(* ------------------------------------------------------------------ *)
(* Fig 4: stability plot at the output                                  *)

let run_fig4 circ =
  section "Fig 4 -- stability plot at the output node";
  let r =
    Stability.Analysis.single_node circ Workloads.Opamp_2mhz.node_out
  in
  let plot = r.Stability.Analysis.plot in
  Printf.printf "%14s %12s\n" "freq [Hz]" "P";
  Array.iteri
    (fun k f ->
      if k mod 8 = 0 then
        Printf.printf "%14s %12.3f\n" (fmt f)
          plot.Stability.Stability_plot.p.(k))
    plot.Stability.Stability_plot.freqs;
  print_string (Stability.Report.single_node_string r);
  (match r.Stability.Analysis.dominant with
   | Some d ->
     record ~experiment:"Fig 4 (peak value)" ~paper:"-28.9"
       ~measured:(Printf.sprintf "%.1f" d.Stability.Peaks.value)
       (d.Stability.Peaks.value < -25. && d.Stability.Peaks.value > -36.);
     record ~experiment:"Fig 4 (natural frequency)" ~paper:"3.16 MHz"
       ~measured:(Printf.sprintf "%sHz" (fmt d.Stability.Peaks.freq))
       (Float.abs ((d.Stability.Peaks.freq /. 3.16e6) -. 1.) < 0.15)
   | None ->
     record ~experiment:"Fig 4 (peak)" ~paper:"-28.9 at 3.16 MHz"
       ~measured:"no peak found" false);
  r

(* ------------------------------------------------------------------ *)
(* Table 2: all-nodes report                                            *)

let run_table2 circ =
  section "Table 2 -- stability peaks for all circuit nodes, by loop";
  let results = Stability.Analysis.all_nodes circ in
  Stability.Report.all_nodes Format.std_formatter results;
  let loops = Stability.Loops.cluster results in
  let main =
    List.filter
      (fun (l : Stability.Loops.loop) ->
        l.Stability.Loops.natural_freq > 2e6
        && l.Stability.Loops.natural_freq < 4.5e6)
      loops
  in
  let locals =
    List.filter
      (fun (l : Stability.Loops.loop) ->
        l.Stability.Loops.natural_freq > 10e6
        && l.Stability.Loops.worst.Stability.Loops.peak.Stability.Peaks.value
           < -1.)
      loops
  in
  record ~experiment:"Table 2 (main loop)" ~paper:"5 nodes at 3.16-3.31 MHz"
    ~measured:
      (match main with
       | [ l ] ->
         Printf.sprintf "%d nodes at %sHz"
           (List.length l.Stability.Loops.members)
           (fmt l.Stability.Loops.natural_freq)
       | _ -> Printf.sprintf "%d loops in band" (List.length main))
    (match main with
     | [ l ] -> List.length l.Stability.Loops.members >= 4
     | _ -> false);
  record ~experiment:"Table 2 (local loops)"
    ~paper:"bias loops at 36-51 MHz"
    ~measured:
      (String.concat ", "
         (List.map
            (fun (l : Stability.Loops.loop) ->
              Printf.sprintf "%sHz" (fmt l.Stability.Loops.natural_freq))
            locals))
    (List.exists
       (fun (l : Stability.Loops.loop) ->
         l.Stability.Loops.natural_freq > 15e6
         && l.Stability.Loops.natural_freq < 80e6)
       locals);
  results

(* ------------------------------------------------------------------ *)
(* Fig 5: bias cell before/after compensation                           *)

let run_fig5 () =
  section "Fig 5 -- zero-TC bias cell annotated; the 1 pF fix at Q3";
  let before = Workloads.Bias_zero_tc.cell () in
  let results = Stability.Analysis.all_nodes before in
  Stability.Annotate.netlist Format.std_formatter before results;
  let deepest rs =
    List.fold_left
      (fun acc (r : Stability.Analysis.node_result) ->
        match r.Stability.Analysis.dominant with
        | Some d -> Float.min acc d.Stability.Peaks.value
        | None -> acc)
      0. rs
  in
  let peak_before = deepest results in
  let fixed =
    Workloads.Bias_zero_tc.cell
      ~params:
        { Workloads.Bias_zero_tc.default_params with compensation = 1e-12 }
      ()
  in
  let results_after = Stability.Analysis.all_nodes fixed in
  let peak_after = deepest results_after in
  Printf.printf
    "\ndeepest local peak before the fix: %.2f; after 1 pF at %s: %.2f\n"
    peak_before Workloads.Bias_zero_tc.node_q3_collector peak_after;
  record ~experiment:"Fig 5 (local loop)"
    ~paper:"~50 MHz loop, PM < 50 deg"
    ~measured:(Printf.sprintf "peak %.1f before fix" peak_before)
    (peak_before < -2.);
  record ~experiment:"Fig 5 (1 pF fix)" ~paper:"loop compensated"
    ~measured:(Printf.sprintf "peak %.1f after fix" peak_after)
    (peak_after > peak_before +. 1.);
  results

(* ------------------------------------------------------------------ *)
(* Section 1.2 example: -43.1 at 10.471 MHz                             *)

let sec12_circuit () =
  (* An RLC tank with exactly the example's signature:
     P = -43.1 -> zeta = 0.1523; fn = 10.471 MHz. *)
  let zeta = Control.Second_order.zeta_of_performance_index (-43.1) in
  let fn = 10.471e6 in
  let c = 1e-9 in
  let l = 1. /. (c *. ((2. *. Float.pi *. fn) ** 2.)) in
  let r = sqrt (l /. c) /. (2. *. zeta) in
  Workloads.Filters.parallel_rlc ~r ~l ~c ()

let run_sec12 () =
  section "Section 1.2 example -- performance index -43.1 at 10.471 MHz";
  let circ = sec12_circuit () in
  let res = Stability.Analysis.single_node circ "n" in
  print_string (Stability.Report.single_node_string res);
  (match res.Stability.Analysis.dominant with
   | Some d ->
     record ~experiment:"S1.2 (example plot)" ~paper:"-43.1 at 10.471 MHz"
       ~measured:
         (Printf.sprintf "%.1f at %sHz" d.Stability.Peaks.value
            (fmt d.Stability.Peaks.freq))
       (Float.abs (d.Stability.Peaks.value +. 43.1) < 1.
        && Float.abs ((d.Stability.Peaks.freq /. 10.471e6) -. 1.) < 0.01)
   | None ->
     record ~experiment:"S1.2 (example plot)" ~paper:"-43.1 at 10.471 MHz"
       ~measured:"no peak" false);
  res

(* ------------------------------------------------------------------ *)
(* Ablations: the design choices DESIGN.md calls out                    *)

let run_ablations () =
  section "Ablation 1 -- sweep density and zoom refinement (peak accuracy)";
  (* A sharp tank (zeta = 0.0158, true peak -4000): coarse grids bias the
     peak low; the zoom refinement recovers it from a 10-points-per-decade
     scan. *)
  let r = 1000. in
  let circ = Workloads.Filters.parallel_rlc ~r () in
  let _, zeta = Workloads.Filters.parallel_rlc_theory ~r () in
  let truth = Control.Second_order.performance_index zeta in
  Printf.printf "true peak: %.1f (zeta %.4f)\n" truth zeta;
  Printf.printf "%8s %8s %12s %10s\n" "ppd" "refine" "peak" "error";
  List.iter
    (fun (ppd, refine) ->
      let options =
        { Stability.Analysis.default_options with
          sweep = Numerics.Sweep.decade 1e3 1e9 ppd;
          refine }
      in
      let p =
        match
          (Stability.Analysis.single_node ~options circ "n")
            .Stability.Analysis.dominant
        with
        | Some d -> d.Stability.Peaks.value
        | None -> Float.nan
      in
      Printf.printf "%8d %8s %12.1f %9.1f%%\n" ppd
        (if refine then "yes" else "no")
        p
        (100. *. (p -. truth) /. Float.abs truth))
    [ (10, false); (30, false); (100, false); (300, false); (10, true);
      (30, true) ];

  section "Ablation 2 -- shared factorisation vs netlist-level probing";
  (* The all-nodes mode factors the AC matrix once per frequency and
     back-substitutes per net; the naive path rebuilds and refactors per
     net. Same numbers, different cost. *)
  let opamp = Workloads.Opamp_2mhz.buffer () in
  let sweep = Numerics.Sweep.decade 1e3 1e9 10 in
  let nodes = Circuit.Netlist.node_names opamp in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let probe = Stability.Probe.prepare opamp in
  let fast, t_fast =
    time (fun () -> Stability.Probe.response_many probe ~sweep nodes)
  in
  let _slow, t_slow =
    time (fun () ->
        List.map
          (fun n ->
            (n, Stability.Probe.response_via_netlist opamp ~sweep n))
          nodes)
  in
  Printf.printf
    "%d nets x %d frequencies: shared factorisation %.3f s, per-net AC \
     runs %.3f s (%.1fx)\n"
    (List.length nodes)
    (Numerics.Sweep.count sweep)
    t_fast t_slow (t_slow /. t_fast);
  ignore fast;

  section "Ablation 3 -- fixed vs adaptive transient on the Fig 2 run";
  let fixed, t_fixed =
    time (fun () -> Engine.Transient.run ~tstop:8e-6 ~tstep:2e-9 opamp)
  in
  let adap, t_adap =
    time (fun () ->
        Engine.Transient.run_adaptive ~tstop:8e-6 ~dt_start:1e-9
          ~lte_tol:5e-4 opamp)
  in
  let os r =
    (Engine.Measure.step_metrics ~initial:2.5 ~final:2.55
       (Engine.Transient.v r "out"))
      .Engine.Measure.overshoot_pct
  in
  Printf.printf
    "fixed: %d pts, %.2f s, overshoot %.0f%%; adaptive: %d pts, %.2f s, \
     overshoot %.0f%%\n"
    (Array.length fixed.Engine.Transient.times)
    t_fixed (os fixed)
    (Array.length adap.Engine.Transient.times)
    t_adap (os adap)

(* ------------------------------------------------------------------ *)
(* Ablation 4: sparse vs dense factorisation scaling                    *)

let rc_ladder n = Workloads.Ladder.rc ~sections:n ()

let run_ablation_sparse () =
  section "Ablation 4 -- dense vs sparse LU on growing ladders";
  Printf.printf "%8s %10s %12s %12s %9s\n" "unknowns" "nets" "dense [s]"
    "sparse [s]" "speedup";
  List.iter
    (fun n ->
      let circ = rc_ladder n in
      let probe = Stability.Probe.prepare circ in
      let sweep = Numerics.Sweep.decade 1e3 1e6 3 in
      let nodes =
        [ Printf.sprintf "n%d" (n / 2); Printf.sprintf "n%d" n ]
      in
      let time backend =
        let t0 = Unix.gettimeofday () in
        ignore (Stability.Probe.response_many ~backend probe ~sweep nodes);
        Unix.gettimeofday () -. t0
      in
      let td = time `Dense and ts = time `Sparse in
      Printf.printf "%8d %10d %12.4f %12.4f %8.1fx\n"
        (probe.Stability.Probe.mna.Engine.Mna.size)
        (n + 1) td ts (td /. ts))
    [ 50; 100; 200; 400 ]

(* ------------------------------------------------------------------ *)
(* Compiled AC plan: sweep throughput, counters, peak equivalence       *)

(* The seed pipeline, reproduced through the public API: dense per-point
   factorisation on the coarse sweep, then one dense zoom re-probe per
   (node, peak) — refinement one node at a time. This is what the tool
   did before the compiled plan and batched refinement landed. *)
let seed_all_nodes probe nodes ~sweep =
  let pts = Numerics.Sweep.points sweep in
  let fmin = pts.(0) and fmax = pts.(Array.length pts - 1) in
  let responses =
    Stability.Probe.response_many ~backend:`Dense probe ~sweep nodes
  in
  List.filter_map
    (fun (node, w) ->
      let mag = Numerics.Waveform.Freq.mag w in
      let maxm = Array.fold_left Float.max 0. mag in
      if (not (Float.is_finite maxm)) || maxm < 1e-9 then None
      else begin
        let plot = Stability.Stability_plot.of_response w in
        let peaks = Stability.Peaks.analyze ~min_magnitude:0.2 plot in
        let refined =
          List.map
            (fun (p : Stability.Peaks.peak) ->
              let lo = Float.max fmin (p.freq /. 2.) in
              let hi = Float.min fmax (p.freq *. 2.) in
              if hi <= lo *. 1.01 then p
              else begin
                let zoom = Numerics.Sweep.decade lo hi 600 in
                match
                  Stability.Probe.response_many ~backend:`Dense probe
                    ~sweep:zoom [ node ]
                with
                | [ (_, wz) ] ->
                  (Stability.Peaks.analyze ~min_magnitude:0.1
                     (Stability.Stability_plot.of_response wz)
                   |> List.filter
                     (fun (q : Stability.Peaks.peak) -> q.kind = p.kind)
                   |> List.sort
                     (fun (a : Stability.Peaks.peak) b ->
                       compare
                         (Float.abs (log (a.freq /. p.freq)))
                         (Float.abs (log (b.freq /. p.freq))))
                   |> function
                   | best :: _ -> best
                   | [] -> p)
                | _ -> p
              end)
            peaks
        in
        Some (node, Stability.Peaks.dominant refined)
      end)
    responses

let run_acplan_bench () =
  section "AC plan -- compiled sweep throughput vs the dense baseline";
  let opamp = Workloads.Opamp_2mhz.buffer () in
  let probe = Stability.Probe.prepare opamp in
  let sweep = Numerics.Sweep.decade 1e3 1e9 40 in
  let points = Numerics.Sweep.count sweep in
  let all = Circuit.Netlist.node_names opamp in
  let single = [ Workloads.Opamp_2mhz.node_out ] in
  let best_of_3 f =
    ignore (f ());                  (* warm-up: page in the code paths *)
    let best = ref Float.infinity in
    let last = ref None in
    for _ = 1 to 3 do
      let t0 = Unix.gettimeofday () in
      let r = f () in
      best := Float.min !best (Unix.gettimeofday () -. t0);
      last := Some r
    done;
    (Option.get !last, !best)
  in
  let time_probe backend nodes =
    snd
      (best_of_3 (fun () ->
           Stability.Probe.response_many ~backend probe ~sweep nodes))
  in
  let t_dense_1 = time_probe `Dense single in
  let t_plan_1 = time_probe `Plan single in
  let t_dense_all = time_probe `Dense all in
  let t_plan_all = time_probe `Plan all in
  let pps t = Float.of_int points /. t in
  Printf.printf "raw probe sweeps (no refinement), %d points:\n" points;
  Printf.printf "%12s %6s %10s %14s %9s\n" "mode" "nets" "time [s]"
    "points/s" "speedup";
  Printf.printf "%12s %6d %10.4f %14.0f %9s\n" "dense" 1 t_dense_1
    (pps t_dense_1) "1.0x";
  Printf.printf "%12s %6d %10.4f %14.0f %8.1fx\n" "plan" 1 t_plan_1
    (pps t_plan_1) (t_dense_1 /. t_plan_1);
  Printf.printf "%12s %6d %10.4f %14.0f %9s\n" "dense" (List.length all)
    t_dense_all (pps t_dense_all) "1.0x";
  Printf.printf "%12s %6d %10.4f %14.0f %8.1fx\n" "plan" (List.length all)
    t_plan_all (pps t_plan_all) (t_dense_all /. t_plan_all);

  (* End-to-end all-nodes analysis: the seed pipeline (dense solves,
     one zoom re-probe per node and peak) against the compiled plan with
     batched refinement. Same sweep, same refinement density. *)
  let opts =
    { Stability.Analysis.default_options with sweep }
  in
  let seed_r, t_seed =
    best_of_3 (fun () -> seed_all_nodes probe all ~sweep)
  in
  let new_r, t_new =
    best_of_3 (fun () ->
        Stability.Analysis.all_nodes_prepared ~options:opts probe)
  in
  Printf.printf
    "\nend-to-end all-nodes analysis (coarse + zoom refinement):\n\
     seed pipeline (dense, per-node refine)  %.4f s\n\
     plan pipeline (compiled, batched refine) %.4f s  (%.1fx)\n"
    t_seed t_new (t_seed /. t_new);
  (* Validity: both pipelines must find the same dominant peaks. *)
  let seed_new_ok =
    List.for_all
      (fun (r : Stability.Analysis.node_result) ->
        match
          (List.assoc_opt r.Stability.Analysis.node seed_r,
           r.Stability.Analysis.dominant)
        with
        | Some (Some p), Some q ->
          Float.abs ((q.Stability.Peaks.freq /. p.Stability.Peaks.freq) -. 1.)
          < 1e-3
          && Float.abs
               ((q.Stability.Peaks.value /. p.Stability.Peaks.value) -. 1.)
             < 1e-3
        | Some None, None | None, _ -> true
        | _ -> false)
      new_r
  in
  record ~experiment:"AC plan (all-nodes speedup)"
    ~paper:">= 3x vs seed dense path"
    ~measured:(Printf.sprintf "%.1fx, dominants match: %b"
                 (t_seed /. t_new) seed_new_ok)
    (t_seed /. t_new >= 3. && seed_new_ok);

  (* The counter contract: one symbolic analysis per sweep, one numeric
     refactorisation per frequency point, however many nets ride along. *)
  let before = Engine.Ac_plan.totals () in
  ignore (Stability.Probe.response_many ~backend:`Plan probe ~sweep all);
  let after = Engine.Ac_plan.totals () in
  let d_sym = after.Engine.Ac_plan.symbolic - before.Engine.Ac_plan.symbolic in
  let d_num = after.Engine.Ac_plan.numeric - before.Engine.Ac_plan.numeric in
  let d_fb = after.Engine.Ac_plan.fallback - before.Engine.Ac_plan.fallback in
  Printf.printf
    "\ncounters over one all-nodes sweep: %d symbolic, %d numeric \
     (%d points), %d fallbacks\n"
    d_sym d_num points d_fb;
  record ~experiment:"AC plan (factorisation counters)"
    ~paper:"1 symbolic/sweep, 1 numeric/point"
    ~measured:(Printf.sprintf "%d symbolic, %d numeric" d_sym d_num)
    (d_sym = 1 && d_num = points && d_fb = 0);

  (* Peak equivalence: the plan is a performance refactor, not a new
     analysis — dominant peaks must match the dense path within 0.1%. *)
  let opts backend =
    { Stability.Analysis.default_options with
      sweep = Numerics.Sweep.decade 1e3 1e9 20;
      backend }
  in
  let dense_r =
    Stability.Analysis.all_nodes_prepared ~options:(opts `Dense) probe
  in
  let plan_r =
    Stability.Analysis.all_nodes_prepared ~options:(opts `Plan) probe
  in
  let worst_freq = ref 0. and worst_val = ref 0. in
  List.iter2
    (fun (a : Stability.Analysis.node_result)
         (b : Stability.Analysis.node_result) ->
      match (a.Stability.Analysis.dominant, b.Stability.Analysis.dominant) with
      | Some p, Some q ->
        worst_freq :=
          Float.max !worst_freq
            (Float.abs ((q.Stability.Peaks.freq /. p.Stability.Peaks.freq)
                        -. 1.));
        worst_val :=
          Float.max !worst_val
            (Float.abs ((q.Stability.Peaks.value /. p.Stability.Peaks.value)
                        -. 1.))
      | None, None -> ()
      | _ -> worst_freq := 1.)
    dense_r plan_r;
  Printf.printf
    "peak equivalence dense vs plan: worst fn error %.2e, worst index \
     error %.2e\n"
    !worst_freq !worst_val;
  record ~experiment:"AC plan (peak equivalence)"
    ~paper:"fn and index within 0.1%"
    ~measured:
      (Printf.sprintf "fn %.2e, index %.2e" !worst_freq !worst_val)
    (!worst_freq < 1e-3 && !worst_val < 1e-3);

  (* Machine-readable drop for trend tracking. *)
  let oc = open_out "BENCH_acplan.json" in
  Printf.fprintf oc
    "{\n\
    \  \"circuit\": \"opamp_2mhz buffer\",\n\
    \  \"unknowns\": %d,\n\
    \  \"points\": %d,\n\
    \  \"nets\": %d,\n\
    \  \"single_node\": { \"dense_s\": %.6f, \"plan_s\": %.6f, \
     \"dense_pps\": %.1f, \"plan_pps\": %.1f, \"speedup\": %.2f },\n\
    \  \"all_nodes\": { \"dense_s\": %.6f, \"plan_s\": %.6f, \
     \"dense_pps\": %.1f, \"plan_pps\": %.1f, \"speedup\": %.2f },\n\
    \  \"pipeline\": { \"seed_s\": %.6f, \"plan_s\": %.6f, \"speedup\": \
     %.2f, \"dominants_match\": %b },\n\
    \  \"counters\": { \"symbolic\": %d, \"numeric\": %d, \"fallback\": %d \
     },\n\
    \  \"equivalence\": { \"worst_fn_rel\": %.3e, \"worst_index_rel\": \
     %.3e }\n\
     }\n"
    probe.Stability.Probe.mna.Engine.Mna.size points (List.length all)
    t_dense_1 t_plan_1 (pps t_dense_1) (pps t_plan_1)
    (t_dense_1 /. t_plan_1) t_dense_all t_plan_all (pps t_dense_all)
    (pps t_plan_all)
    (t_dense_all /. t_plan_all)
    t_seed t_new (t_seed /. t_new) seed_new_ok
    d_sym d_num d_fb !worst_freq !worst_val;
  close_out oc;
  Printf.printf "wrote BENCH_acplan.json\n"

(* ------------------------------------------------------------------ *)
(* Compiled kernels: flattened factor/solve programs vs the plan        *)

(* The kernel is a pure specialization of the plan backend — same
   symbolic analysis, same float sequence — so besides the throughput
   gate everything here is exact: bit identity against [`Plan],
   sequential = parallel, and the compile/point counter budget. *)
let run_kernel_bench ~smoke () =
  section
    "Compiled kernels -- flattened solve programs vs the interpreted plan";
  let opamp = Workloads.Opamp_2mhz.buffer () in
  let probe = Stability.Probe.prepare opamp in
  let ppd = if smoke then 20 else 120 in
  let sweep = Numerics.Sweep.decade 1e3 1e9 ppd in
  let points = Numerics.Sweep.count sweep in
  let all = Circuit.Netlist.node_names opamp in
  let best_of_3 f =
    ignore (f ());
    let best = ref Float.infinity in
    for _ = 1 to 3 do
      let t0 = Unix.gettimeofday () in
      ignore (f ());
      best := Float.min !best (Unix.gettimeofday () -. t0)
    done;
    !best
  in
  (* The sweep-heavy workload the kernel targets: every net probed, the
     whole sweep through one backend, sequentially — so the comparison
     measures the solve program, not the scheduler. *)
  let time_probe backend =
    best_of_3 (fun () ->
        Stability.Probe.response_many ~backend ~parallel:`Seq probe ~sweep
          all)
  in
  let t_plan = time_probe `Plan in
  let t_kernel = time_probe `Kernel in
  let speedup = t_plan /. t_kernel in
  let pps t = Float.of_int points /. t in
  Printf.printf
    "all-nodes sweep, %d nets x %d points (sequential):\n\
     %12s %10s %14s %9s\n\
     %12s %10.4f %14.0f %9s\n\
     %12s %10.4f %14.0f %8.1fx\n"
    (List.length all) points "backend" "time [s]" "points/s" "speedup"
    "plan" t_plan (pps t_plan) "1.0x" "kernel" t_kernel (pps t_kernel)
    speedup;
  (* Smoke runs on loaded CI boxes only assert "never slower"; the full
     bench holds the kernel to its real target. *)
  let target = if smoke then 0.8 else 2.0 in
  record ~experiment:"Kernel (all-nodes sweep speedup)"
    ~paper:(Printf.sprintf ">= %.1fx vs plan" target)
    ~measured:(Printf.sprintf "%.2fx" speedup)
    (speedup >= target);

  (* Bit identity: raw IEEE bits of every net at every point, multi-RHS
     and single-RHS batch shapes both. *)
  let eq_sweep = Numerics.Sweep.decade 1e3 1e9 (if smoke then 10 else 40) in
  let bits_equal a b =
    List.for_all2
      (fun (_, (w1 : Numerics.Waveform.Freq.t))
           (_, (w2 : Numerics.Waveform.Freq.t)) ->
        let n = Array.length w1.Numerics.Waveform.Freq.h in
        let ok = ref (n = Array.length w2.Numerics.Waveform.Freq.h) in
        for k = 0 to n - 1 do
          let a = w1.Numerics.Waveform.Freq.h.(k)
          and b = w2.Numerics.Waveform.Freq.h.(k) in
          if Int64.bits_of_float a.Complex.re
             <> Int64.bits_of_float b.Complex.re
             || Int64.bits_of_float a.Complex.im
                <> Int64.bits_of_float b.Complex.im
          then ok := false
        done;
        !ok)
      a b
  in
  let probe_eq backend nodes =
    Stability.Probe.response_many ~backend ~parallel:`Seq probe
      ~sweep:eq_sweep nodes
  in
  let identical =
    bits_equal (probe_eq `Plan all) (probe_eq `Kernel all)
    && bits_equal
         (probe_eq `Plan [ Workloads.Opamp_2mhz.node_out ])
         (probe_eq `Kernel [ Workloads.Opamp_2mhz.node_out ])
  in
  record ~experiment:"Kernel (bit identity vs plan)"
    ~paper:"identical IEEE bits"
    ~measured:(if identical then "identical" else "DIFFERS") identical;

  (* Chunked pooled execution must not enter the arithmetic. *)
  let seq = probe_eq `Kernel all in
  let par =
    Stability.Probe.response_many ~backend:`Kernel ~parallel:`Par probe
      ~sweep:eq_sweep all
  in
  let seq_par = bits_equal seq par in
  record ~experiment:"Kernel (seq = par)" ~paper:"bit-identical"
    ~measured:(if seq_par then "identical" else "DIFFERS") seq_par;

  (* Counter contract: one compile per sweep, every point advanced
     through the kernel, no stale-pivot fallbacks on this deck — and a
     shared pre-compiled kernel recompiles nothing. *)
  let before = Engine.Kernel.totals () in
  ignore
    (Stability.Probe.response_many ~backend:`Kernel ~parallel:`Seq probe
       ~sweep all);
  let after = Engine.Kernel.totals () in
  let d_compiles = after.Engine.Kernel.compiles - before.Engine.Kernel.compiles in
  let d_points = after.Engine.Kernel.points - before.Engine.Kernel.points in
  let d_fb = after.Engine.Kernel.fallback - before.Engine.Kernel.fallback in
  let kern = Engine.Kernel.compile (Stability.Probe.plan probe ~sweep) in
  let base = (Engine.Kernel.totals ()).Engine.Kernel.compiles in
  ignore
    (Stability.Probe.response_many ~kernel:kern ~parallel:`Seq probe ~sweep
       all);
  ignore
    (Stability.Probe.response_many ~kernel:kern ~parallel:`Seq probe ~sweep
       all);
  let warm_extra =
    (Engine.Kernel.totals ()).Engine.Kernel.compiles - base
  in
  Printf.printf
    "counters over one all-nodes sweep: %d compiles, %d points (%d \
     expected), %d fallbacks; warm shared-kernel sweeps recompiled %d\n"
    d_compiles d_points points d_fb warm_extra;
  record ~experiment:"Kernel (counter budget)"
    ~paper:"1 compile/sweep, 1 point advance/point, 0 warm recompiles"
    ~measured:
      (Printf.sprintf "%d compiles, %d points, %d warm" d_compiles d_points
         warm_extra)
    (d_compiles = 1 && d_points = points && d_fb = 0 && warm_extra = 0);

  (* Peak equivalence through the full analysis pipeline (coarse sweep +
     zoom refinement), held to the same 0.1% the plan was. *)
  let opts backend =
    { Stability.Analysis.default_options with
      sweep = Numerics.Sweep.decade 1e3 1e9 (if smoke then 10 else 20);
      backend }
  in
  let plan_r =
    Stability.Analysis.all_nodes_prepared ~options:(opts `Plan) probe
  in
  let kern_r =
    Stability.Analysis.all_nodes_prepared ~options:(opts `Kernel) probe
  in
  let worst = ref 0. in
  List.iter2
    (fun (a : Stability.Analysis.node_result)
         (b : Stability.Analysis.node_result) ->
      match (a.Stability.Analysis.dominant, b.Stability.Analysis.dominant)
      with
      | Some p, Some q ->
        worst :=
          Float.max !worst
            (Float.max
               (Float.abs
                  ((q.Stability.Peaks.freq /. p.Stability.Peaks.freq) -. 1.))
               (Float.abs
                  ((q.Stability.Peaks.value /. p.Stability.Peaks.value)
                   -. 1.)))
      | None, None -> ()
      | _ -> worst := 1.)
    plan_r kern_r;
  record ~experiment:"Kernel (peak equivalence)"
    ~paper:"fn and index within 0.1%"
    ~measured:(Printf.sprintf "worst rel err %.2e" !worst)
    (!worst < 1e-3);

  if not smoke then begin
    let oc = open_out "BENCH_kernel.json" in
    Printf.fprintf oc
      "{\n\
      \  \"circuit\": \"opamp_2mhz buffer\",\n\
      \  \"unknowns\": %d,\n\
      \  \"points\": %d,\n\
      \  \"nets\": %d,\n\
      \  \"all_nodes\": { \"plan_s\": %.6f, \"kernel_s\": %.6f, \
       \"plan_pps\": %.1f, \"kernel_pps\": %.1f, \"speedup\": %.2f },\n\
      \  \"bit_identical\": %b,\n\
      \  \"seq_par_identical\": %b,\n\
      \  \"counters\": { \"compiles\": %d, \"points\": %d, \"fallback\": \
       %d, \"warm_recompiles\": %d, \"batch_max\": %d },\n\
      \  \"equivalence\": { \"worst_rel\": %.3e }\n\
       }\n"
      probe.Stability.Probe.mna.Engine.Mna.size points (List.length all)
      t_plan t_kernel (pps t_plan) (pps t_kernel) speedup identical seq_par
      d_compiles d_points d_fb warm_extra
      (Engine.Kernel.totals ()).Engine.Kernel.batch_max !worst;
    close_out oc;
    Printf.printf "wrote BENCH_kernel.json\n"
  end

(* ------------------------------------------------------------------ *)
(* Persistent pool: scheduling overhead, plan reuse, worker scaling     *)

(* The PR-1 parallel path, reproduced: one fresh plan compilation and
   one batch of spawned-then-joined domains per sweep (strided point
   assignment). This is what every parallel probe call paid before the
   persistent pool. *)
let legacy_spawn_response_many probe ~sweep nodes =
  let mna = probe.Stability.Probe.mna in
  let size = mna.Engine.Mna.size in
  let freqs = Numerics.Sweep.points sweep in
  let omega_ref =
    2. *. Float.pi *. sqrt (freqs.(0) *. freqs.(Array.length freqs - 1))
  in
  let plan =
    Engine.Ac_plan.compile ~omega_ref ~op:probe.Stability.Probe.op mna
  in
  let idxs =
    Array.of_list (List.map (fun n -> Engine.Mna.node_index mna n) nodes)
  in
  let bs =
    Array.map
      (fun i ->
        let b = Array.make size Numerics.Cx.zero in
        b.(i) <- Numerics.Cx.one;
        b)
      idxs
  in
  let outs =
    Array.map (fun _ -> Array.make (Array.length freqs) Numerics.Cx.zero)
      idxs
  in
  let run_point fk =
    let omega = 2. *. Float.pi *. freqs.(fk) in
    let xs = Engine.Ac_plan.solve_many plan ~omega bs in
    Array.iteri (fun q i -> outs.(q).(fk) <- xs.(q).(i)) idxs
  in
  let workers =
    Int.max 1
      (Int.min (Array.length freqs)
         (Domain.recommended_domain_count () - 1))
  in
  let domains =
    List.init workers (fun w ->
        Domain.spawn (fun () ->
            let fk = ref w in
            while !fk < Array.length freqs do
              run_point !fk;
              fk := !fk + workers
            done))
  in
  List.iter Domain.join domains;
  List.mapi
    (fun q n -> (n, Numerics.Waveform.Freq.make freqs outs.(q)))
    nodes

(* The sweep schedule of an all-nodes-with-refinement run: the coarse
   scan plus one merged zoom window per peak group, derived with the
   same chain-grouping rule as Stability.Analysis.refine_batched. Both
   scheduling paths below execute this identical schedule, so the timing
   difference is pure scheduling and plan-compilation overhead. *)
let pipeline_schedule probe all ~sweep ~refine_per_decade =
  let pts = Numerics.Sweep.points sweep in
  let fmin = pts.(0) and fmax = pts.(Array.length pts - 1) in
  let coarse =
    Stability.Probe.response_many ~parallel:`Seq probe ~sweep all
  in
  let jobs =
    List.concat_map
      (fun (node, w) ->
        let mag = Numerics.Waveform.Freq.mag w in
        let maxm = Array.fold_left Float.max 0. mag in
        if (not (Float.is_finite maxm)) || maxm < 1e-9 then []
        else
          Stability.Peaks.analyze ~min_magnitude:0.2
            (Stability.Stability_plot.of_response w)
          |> List.map (fun (p : Stability.Peaks.peak) -> (node, p.freq)))
      coarse
    |> List.sort (fun (_, a) (_, b) -> compare a b)
  in
  let rec group acc current = function
    | [] -> List.rev (match current with [] -> acc | c -> List.rev c :: acc)
    | j :: rest ->
      (match current with
       | [] -> group acc [ j ] rest
       | (_, prev) :: _ when snd j /. prev <= 2.0 ->
         group acc (j :: current) rest
       | _ -> group (List.rev current :: acc) [ j ] rest)
  in
  let zooms =
    group [] [] jobs
    |> List.filter_map (fun grp ->
        let centers = List.map snd grp in
        let cmin = List.fold_left Float.min Float.infinity centers in
        let cmax = List.fold_left Float.max 0. centers in
        let lo = Float.max fmin (cmin /. 2.) in
        let hi = Float.min fmax (cmax *. 2.) in
        if hi <= lo *. 1.01 then None
        else
          Some
            ( List.sort_uniq compare (List.map fst grp),
              Numerics.Sweep.decade lo hi refine_per_decade ))
  in
  (all, sweep) :: zooms

let run_pool_bench ~smoke () =
  section "Persistent pool -- spawn-per-sweep vs work-stealing pool";
  let circ = Workloads.Opamp_2mhz.buffer () in
  let probe = Stability.Probe.prepare circ in
  (* The quantity under test is per-sweep scheduling cost (domain
     spawn/join plus plan recompilation), a fixed overhead per sweep:
     both paths run the identical point schedule, so a moderate density
     keeps the measurement sensitive to the overhead actually being
     eliminated instead of drowning it in shared arithmetic. *)
  let ppd = 10 in
  let refine_per_decade = 120 in
  let sweep = Numerics.Sweep.decade 1e3 1e9 ppd in
  let all = Circuit.Netlist.node_names circ in
  let schedule = pipeline_schedule probe all ~sweep ~refine_per_decade in
  let total_points =
    List.fold_left
      (fun acc (_, sw) -> acc + Numerics.Sweep.count sw)
      0 schedule
  in
  Printf.printf
    "schedule: %d sweeps (1 coarse + %d zoom windows), %d points total\n"
    (List.length schedule)
    (List.length schedule - 1)
    total_points;
  let reps = if smoke then 1 else 5 in
  let best_of f =
    ignore (f ());
    let best = ref Float.infinity in
    let last = ref None in
    for _ = 1 to reps do
      let t0 = Unix.gettimeofday () in
      let r = f () in
      best := Float.min !best (Unix.gettimeofday () -. t0);
      last := Some r
    done;
    (Option.get !last, !best)
  in
  let max_jobs = Int.max 1 (Domain.recommended_domain_count ()) in
  Parallel.Pool.set_jobs max_jobs;
  (* Legacy scheduling: fresh plan + spawned domains per sweep. *)
  let run_legacy () =
    List.map
      (fun (nodes, sw) -> legacy_spawn_response_many probe ~sweep:sw nodes)
      schedule
  in
  (* Pooled scheduling: one shared plan, persistent work-stealing pool. *)
  let run_pool () =
    let plan = Stability.Probe.plan probe ~sweep in
    List.map
      (fun (nodes, sw) ->
        Stability.Probe.response_many ~plan ~parallel:`Par probe ~sweep:sw
          nodes)
      schedule
  in
  (* Interleave the two paths rep by rep so load drift hits both equally,
     then compare their best times. *)
  let legacy_r = run_legacy () and pool_r = run_pool () in
  let t_legacy = ref Float.infinity and t_pool = ref Float.infinity in
  for _ = 1 to reps do
    let t0 = Unix.gettimeofday () in
    ignore (run_legacy ());
    t_legacy := Float.min !t_legacy (Unix.gettimeofday () -. t0);
    let t0 = Unix.gettimeofday () in
    ignore (run_pool ());
    t_pool := Float.min !t_pool (Unix.gettimeofday () -. t0)
  done;
  let t_legacy = !t_legacy and t_pool = !t_pool in
  (* Same arithmetic: every response of every sweep must match the
     legacy path. The zoom plans are seeded at different reference
     frequencies (per-sweep mid-band vs the shared coarse-sweep plan),
     so pivot orders — and thus last-bit rounding — may differ; solver
     precision is the honest equivalence here. Bit-exactness is asserted
     below where it is claimed: sequential vs pooled on one plan. *)
  let rel_err = ref 0. in
  List.iter2
    (fun a b ->
      List.iter2
        (fun (_, (w1 : Numerics.Waveform.Freq.t))
             (_, (w2 : Numerics.Waveform.Freq.t)) ->
          Array.iteri
            (fun k c1 ->
              let d =
                Complex.norm (Complex.sub c1 w2.Numerics.Waveform.Freq.h.(k))
              and m = Complex.norm c1 in
              if m > 0. then rel_err := Float.max !rel_err (d /. m))
            w1.Numerics.Waveform.Freq.h)
        a b)
    legacy_r pool_r;
  let agree = !rel_err < 1e-9 in
  let speedup = t_legacy /. t_pool in
  Printf.printf
    "spawn-per-sweep (PR-1 path)   %.4f s\n\
     persistent pool + shared plan %.4f s  (%.2fx, max rel err %.1e)\n"
    t_legacy t_pool speedup !rel_err;
  if not smoke then
    record ~experiment:"Pool (vs spawn-per-sweep)" ~paper:">= 1.5x"
      ~measured:(Printf.sprintf "%.2fx, rel err %.1e" speedup !rel_err)
      (speedup >= 1.5 && agree);

  (* Worker-scaling curve on the real end-to-end pipeline. *)
  let opts =
    { Stability.Analysis.default_options with
      sweep;
      refine_per_decade;
      parallel = `Par }
  in
  let curve_jobs =
    List.sort_uniq compare [ 1; 2; 4; max_jobs ]
    |> List.filter (fun j -> smoke = false || j <= 2)
  in
  let curve =
    List.map
      (fun j ->
        Parallel.Pool.set_jobs j;
        let _, t =
          best_of (fun () ->
              Stability.Analysis.all_nodes_prepared ~options:opts probe)
        in
        Printf.printf "all-nodes pipeline, jobs=%d: %.4f s\n%!" j t;
        (j, t))
      curve_jobs
  in
  Parallel.Pool.set_jobs max_jobs;

  (* Determinism of the full pipeline: pooled equals sequential exactly. *)
  let seq_r =
    Stability.Analysis.all_nodes_prepared
      ~options:{ opts with parallel = `Seq } probe
  in
  let par_r =
    Stability.Analysis.all_nodes_prepared
      ~options:{ opts with parallel = `Par } probe
  in
  let deterministic = seq_r = par_r in
  record ~experiment:"Pool (determinism)" ~paper:"bit-identical results"
    ~measured:(Printf.sprintf "seq = par: %b" deterministic) deterministic;

  (* Counter contract with cross-sweep plan reuse: one symbolic analysis
     for the whole coarse + refine pipeline. *)
  let before = Engine.Ac_plan.totals () in
  ignore (Stability.Analysis.all_nodes_prepared ~options:opts probe);
  let after = Engine.Ac_plan.totals () in
  let d_sym = after.Engine.Ac_plan.symbolic - before.Engine.Ac_plan.symbolic in
  let d_num = after.Engine.Ac_plan.numeric - before.Engine.Ac_plan.numeric in
  let d_fb = after.Engine.Ac_plan.fallback - before.Engine.Ac_plan.fallback in
  Printf.printf
    "counters over one coarse+refine pipeline: %d symbolic, %d numeric, \
     %d fallbacks\n"
    d_sym d_num d_fb;
  record ~experiment:"Pool (plan reuse counters)"
    ~paper:"1 symbolic per full run"
    ~measured:(Printf.sprintf "%d symbolic, %d fallbacks" d_sym d_fb)
    (d_sym = 1 && d_fb = 0);

  (* Monte-Carlo through the job queue: sequential vs pooled, matching
     samples. *)
  let n_mc = if smoke then 4 else 32 in
  let mc_opts =
    { Stability.Analysis.default_options with
      sweep = Numerics.Sweep.decade 1e4 1e8 10;
      refine = false }
  in
  let analyse c =
    match
      (Stability.Analysis.single_node ~options:mc_opts c
         Workloads.Opamp_2mhz.node_out)
        .Stability.Analysis.dominant
    with
    | Some d -> Option.value ~default:1. d.Stability.Peaks.zeta
    | None -> 1.
  in
  let (mc_seq : float Tool.Montecarlo.run), t_mc_seq =
    best_of (fun () ->
        Tool.Montecarlo.run ~parallel:`Seq ~n:n_mc ~seed:7 circ analyse)
  in
  let mc_par, t_mc_par =
    best_of (fun () ->
        Tool.Montecarlo.run ~parallel:`Par ~n:n_mc ~seed:7 circ analyse)
  in
  let mc_same =
    List.for_all2
      (fun (s1, r1) (s2, r2) ->
        s1 = s2
        &&
        match (r1, r2) with
        | Ok a, Ok b -> a = b
        | Error _, Error _ -> true
        | _ -> false)
      mc_seq.Tool.Montecarlo.samples mc_par.Tool.Montecarlo.samples
  in
  Printf.printf
    "montecarlo n=%d: sequential %.3f s, pooled %.3f s, samples match: %b\n"
    n_mc t_mc_seq t_mc_par mc_same;
  record ~experiment:"Pool (montecarlo samples)" ~paper:"seed-deterministic"
    ~measured:(Printf.sprintf "match: %b" mc_same) mc_same;

  if not smoke then begin
    let oc = open_out "BENCH_pool.json" in
    Printf.fprintf oc
      "{\n\
      \  \"workload\": \"opamp_2mhz all-nodes coarse+refine\",\n\
      \  \"unknowns\": %d,\n\
      \  \"nets\": %d,\n\
      \  \"sweeps\": %d,\n\
      \  \"points\": %d,\n\
      \  \"max_jobs\": %d,\n\
      \  \"spawn_per_sweep_s\": %.6f,\n\
      \  \"pool_s\": %.6f,\n\
      \  \"speedup\": %.2f,\n\
      \  \"max_rel_err\": %.3e,\n\
      \  \"deterministic_pipeline\": %b,\n\
      \  \"jobs_curve\": [ %s ],\n\
      \  \"counters\": { \"symbolic\": %d, \"numeric\": %d, \"fallback\": \
       %d },\n\
      \  \"montecarlo\": { \"n\": %d, \"seq_s\": %.6f, \"pool_s\": %.6f, \
       \"samples_match\": %b },\n\
      \  \"obs\": { %s }\n\
       }\n"
      probe.Stability.Probe.mna.Engine.Mna.size (List.length all)
      (List.length schedule) total_points max_jobs t_legacy t_pool speedup
      !rel_err deterministic
      (String.concat ", "
         (List.map
            (fun (j, t) ->
              Printf.sprintf "{ \"jobs\": %d, \"s\": %.6f }" j t)
            curve))
      d_sym d_num d_fb n_mc t_mc_seq t_mc_par mc_same
      (* Same registry the in-run asserts read: scheduler health for the
         whole benchmark process (jobs dealt, chunks run, steals,
         high-water queue depth). Busy-time counters are per worker and
         machine-shaped, so only the scheduler counters are recorded. *)
      (String.concat ", "
         (List.filter_map
            (fun (name, v) ->
              if String.starts_with ~prefix:"pool." name
                 && not (String.ends_with ~suffix:"busy_ns" name)
              then Some (Printf.sprintf "\"%s\": %d" name v)
              else None)
            (Obs.Counter.snapshot ())));
    close_out oc;
    Printf.printf "wrote BENCH_pool.json\n"
  end

(* ------------------------------------------------------------------ *)
(* Scale: synthetic 1k-10k-unknown circuits across worker counts        *)

(* The pool's jobs curve, measured where it matters: compiled-plan
   sweeps over decks big enough that scheduling is the variable, not
   the noise floor. The speedup gate scales with the hardware — a CI
   box with fewer than 4 cores cannot show a 4-worker speedup (the pool
   clamps to the core count precisely so that asking for more workers
   than cores stops being a slowdown), so there the gate asserts the
   curve is never inverted again (>= [floor_target]); on >= 4 cores it
   demands the real >= 1.7x. Both the core count and the target actually
   applied are recorded in BENCH_scale.json. *)

let scale_speedup_target ~cores =
  if cores >= 4 then 1.7 else 0.9

let run_scale_bench ~smoke () =
  section "Scale -- synthetic large circuits, sizes x jobs";
  let cores = Domain.recommended_domain_count () in
  let max_jobs = 4 in
  let reps = if smoke then 3 else 2 in
  let best_of f =
    ignore (f ());
    let best = ref Float.infinity in
    for _ = 1 to reps do
      let t0 = Unix.gettimeofday () in
      ignore (f ());
      best := Float.min !best (Unix.gettimeofday () -. t0)
    done;
    !best
  in
  let mesh_nodes = [ Workloads.Synth.mesh_node 31 31;
                     Workloads.Synth.mesh_node 16 16;
                     Workloads.Synth.mesh_node 31 0;
                     Workloads.Synth.mesh_node 0 31 ] in
  let workloads =
    if smoke then
      (* One >= 1k-unknown deck at low density: enough for the
         never-inverted gate without blowing up runtest time. *)
      [ ("mesh_32x32",
         Workloads.Synth.rc_mesh ~rows:32 ~cols:32 (),
         mesh_nodes,
         Numerics.Sweep.decade 1e4 1e8 3) ]
    else begin
      let tree_n = Workloads.Synth.tree_count ~depth:12 ~fanout:2 in
      [ ("mesh_32x32",
         Workloads.Synth.rc_mesh ~rows:32 ~cols:32 (),
         mesh_nodes,
         Numerics.Sweep.decade 1e3 1e9 8);
        ("amp_array_600",
         Workloads.Synth.amp_array ~stages:600 (),
         [ "in"; Workloads.Synth.amp_stage_out 0;
           Workloads.Synth.amp_stage_out 150;
           Workloads.Synth.amp_stage_out 300;
           Workloads.Synth.amp_stage_out 450;
           Workloads.Synth.amp_stage_out 599 ],
         Numerics.Sweep.decade 1e3 1e9 6);
        ("rc_tree_d12_f2",
         Workloads.Synth.rc_tree ~depth:12 ~fanout:2 (),
         [ Workloads.Synth.tree_node 0;
           Workloads.Synth.tree_node (tree_n / 2);
           Workloads.Synth.tree_node (tree_n - 1) ],
         Numerics.Sweep.decade 1e3 1e9 6) ]
    end
  in
  let saved_jobs = Parallel.Pool.jobs () in
  let results =
    List.map
      (fun (name, circ, nodes, sweep) ->
        let probe = Stability.Probe.prepare circ in
        let size = probe.Stability.Probe.mna.Engine.Mna.size in
        let plan = Stability.Probe.plan probe ~sweep in
        let health = Engine.Health.meter () in
        let run ~parallel () =
          Stability.Probe.response_many ~plan ~parallel ~health probe ~sweep
            nodes
        in
        Printf.printf "%s: %d unknowns, %d points, %d nets\n%!" name size
          (Numerics.Sweep.count sweep) (List.length nodes);
        (* Jobs curve through the production path: requested jobs are
           clamped to the cores, exactly as a user's [-j] would be. *)
        let curve =
          List.map
            (fun j ->
              Parallel.Pool.set_jobs j;
              let t = best_of (run ~parallel:`Par) in
              Printf.printf "  jobs=%d (effective %d): %.4f s\n%!" j
                (Parallel.Pool.effective_jobs ()) t;
              (j, t))
            (if smoke then [ 1; max_jobs ] else [ 1; 2; max_jobs ])
        in
        let t1 = List.assoc 1 curve in
        let t4 = List.assoc max_jobs curve in
        let speedup4 = t1 /. t4 in
        (* Determinism, both ways the pool can run a sweep: clamped to
           the hardware (production), and with oversubscription forced
           so real worker domains and real stealing are exercised even
           on a small CI box. Bit-identical results in every mode. *)
        Parallel.Pool.set_jobs max_jobs;
        let seq_r = run ~parallel:`Seq () in
        let par_r = run ~parallel:`Par () in
        Parallel.Pool.set_oversubscribe true;
        let over_r = run ~parallel:`Par () in
        Parallel.Pool.set_oversubscribe false;
        Parallel.Pool.shutdown ();
        let identical = seq_r = par_r && seq_r = over_r in
        let target = scale_speedup_target ~cores in
        let gate_ok = speedup4 >= target && identical in
        record
          ~experiment:(Printf.sprintf "Scale (%s)" name)
          ~paper:
            (Printf.sprintf ">= %.1fx @ %d workers, seq = par" target
               max_jobs)
          ~measured:
            (Printf.sprintf "%.2fx on %d core(s), identical: %b" speedup4
               cores identical)
          gate_ok;
        (name, size, nodes, sweep, curve, speedup4, identical))
      workloads
  in
  Parallel.Pool.set_jobs saved_jobs;
  if not smoke then begin
    let oc = open_out "BENCH_scale.json" in
    let counters =
      String.concat ", "
        (List.filter_map
           (fun (name, v) ->
             if (String.starts_with ~prefix:"pool." name
                 && not (String.ends_with ~suffix:"busy_ns" name))
                || name = "dcop.sparse_linear"
                || name = "probe.sweeps_par"
             then Some (Printf.sprintf "\"%s\": %d" name v)
             else None)
           (Obs.Counter.snapshot ()))
    in
    Printf.fprintf oc
      "{\n\
      \  \"cores\": %d,\n\
      \  \"speedup_target_at_4\": %.2f,\n\
      \  \"workloads\": [\n%s\n  ],\n\
      \  \"obs\": { %s }\n\
       }\n"
      cores
      (scale_speedup_target ~cores)
      (String.concat ",\n"
         (List.map
            (fun (name, size, nodes, sweep, curve, speedup4, identical) ->
              Printf.sprintf
                "    { \"workload\": \"%s\", \"unknowns\": %d, \
                 \"nets\": %d, \"points\": %d,\n\
                \      \"jobs_curve\": [ %s ],\n\
                \      \"speedup_at_4\": %.2f, \"seq_par_identical\": %b }"
                name size (List.length nodes) (Numerics.Sweep.count sweep)
                (String.concat ", "
                   (List.map
                      (fun (j, t) ->
                        Printf.sprintf "{ \"jobs\": %d, \"s\": %.6f }" j t)
                      curve))
                speedup4 identical)
            results))
      counters;
    close_out oc;
    Printf.printf "wrote BENCH_scale.json\n"
  end

(* ------------------------------------------------------------------ *)
(* Observability smoke: the instrumentation contracts                   *)

let substr_index text needle =
  let n = String.length text and m = String.length needle in
  let rec go i =
    if i + m > n then None
    else if String.sub text i m = needle then Some i
    else go (i + 1)
  in
  go 0

(* Value of a "C" (counter) event in serialized Chrome trace JSON: find
   the event by name, then the integer after its "value": key. *)
let trace_counter_value text name =
  match substr_index text (Printf.sprintf "\"name\":\"%s\",\"ph\":\"C\"" name)
  with
  | None -> None
  | Some i ->
    let rest = String.sub text i (String.length text - i) in
    (match substr_index rest "\"value\":" with
     | None -> None
     | Some j ->
       let k = ref (j + 8) in
       let start = !k in
       while
         !k < String.length rest
         && (match rest.[!k] with '0' .. '9' | '-' -> true | _ -> false)
       do
         incr k
       done;
       int_of_string_opt (String.sub rest start (!k - start)))

let run_obs_smoke () =
  section "Observability -- zero-overhead-off + trace counter contract";
  (* Disabled spans must not allocate: the per-frequency solve path runs
     with tracing off in production, so enter/leave have to be free.
     (The slack covers the Gc.minor_words float boxes themselves.) *)
  assert (not (Obs.Span.enabled ()));
  let w0 = Gc.minor_words () in
  for _ = 1 to 10_000 do
    let t = Obs.Span.enter () in
    Obs.Span.leave "bench.noop" t
  done;
  let dw = Gc.minor_words () -. w0 in
  Printf.printf "disabled span enter/leave x10000: %.0f minor words\n" dw;
  record ~experiment:"Obs (off = zero alloc)" ~paper:"0 words when disabled"
    ~measured:(Printf.sprintf "%.0f words / 10k spans" dw)
    (dw < 256.);
  (* Same discipline for the structured event log: with no sink and no
     ring armed, emit must bail on one atomic load before touching its
     field list. *)
  assert (not (Obs.Events.enabled ()));
  let w0 = Gc.minor_words () in
  for _ = 1 to 10_000 do
    Obs.Events.emit "bench.noop" []
  done;
  let dw_ev = Gc.minor_words () -. w0 in
  Printf.printf "disarmed event emit x10000: %.0f minor words\n" dw_ev;
  record ~experiment:"Obs (events off = zero alloc)"
    ~paper:"0 words when disarmed"
    ~measured:(Printf.sprintf "%.0f words / 10k events" dw_ev)
    (dw_ev < 256.);
  (* One traced all-nodes run: the trace file itself must carry the
     plan-reuse budget (exactly one symbolic analysis for the whole
     coarse + refine pipeline) and the pipeline spans. *)
  let circ = Workloads.Opamp_2mhz.buffer () in
  Obs.Span.clear ();
  Obs.Counter.reset ();
  Obs.Span.enable ();
  let opts =
    { Stability.Analysis.default_options with
      sweep = Numerics.Sweep.decade 1e3 1e9 10;
      refine_per_decade = 120 }
  in
  let results = Stability.Analysis.all_nodes ~options:opts circ in
  Obs.Span.disable ();
  let path = "BENCH_trace_smoke.json" in
  Obs.Trace.write path;
  let ic = open_in path in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove path;
  let sym = trace_counter_value text "acplan.symbolic" in
  let spans_ok =
    List.for_all
      (fun name -> substr_index text (Printf.sprintf "\"name\":\"%s\"" name)
                   <> None)
      [ "probe.sweep"; "analysis.coarse"; "analysis.zoom"; "acplan.compile";
        "dc.op"; "mna.compile" ]
  in
  let shape_ok =
    String.length text > 2
    && String.sub text 0 16 = "{\"traceEvents\":["
    && results <> []
  in
  Printf.printf
    "traced all-nodes: %d bytes, acplan.symbolic=%s, pipeline spans: %b\n"
    (String.length text)
    (match sym with Some v -> string_of_int v | None -> "missing")
    spans_ok;
  record ~experiment:"Obs (trace counter budget)"
    ~paper:"1 symbolic per all-nodes run"
    ~measured:
      (Printf.sprintf "trace says %s"
         (match sym with Some v -> string_of_int v | None -> "missing"))
    (sym = Some 1 && spans_ok && shape_ok)

(* ------------------------------------------------------------------ *)
(* Health-sampling overhead: the telemetry must be (nearly) free        *)

(* The factorisation-health telemetry (Engine.Health) costs one atomic
   fetch-and-add per frequency point plus a condition estimate on every
   sampled point. The contract is <2% added wall time on the all-nodes
   smoke at the default sampling interval; measured as best-of-N against
   a run with the interval pushed beyond the point count (ticks still
   happen, estimates never do), with a small absolute floor so a
   sub-millisecond scheduler blip cannot fail CI. *)
let run_health_smoke () =
  section "Health telemetry -- sampling overhead on all-nodes";
  let circ = Workloads.Opamp_2mhz.buffer () in
  let probe = Stability.Probe.prepare circ in
  let opts =
    { Stability.Analysis.default_options with
      sweep = Numerics.Sweep.decade 1e3 1e9 20;
      refine_per_decade = 200 }
  in
  let best_of n f =
    let best = ref Float.infinity in
    for _ = 1 to n do
      let t0 = Unix.gettimeofday () in
      ignore (f ());
      best := Float.min !best (Unix.gettimeofday () -. t0)
    done;
    !best
  in
  let run () = Stability.Analysis.all_nodes_prepared ~options:opts probe in
  ignore (run ());
  Engine.Health.set_sample_every 1_000_000_000;
  let t_off = best_of 5 run in
  Engine.Health.set_sample_every Engine.Health.default_sample_every;
  let t_on = best_of 5 run in
  let overhead = (t_on -. t_off) /. t_off in
  let budget = Float.max 0.02 (2e-3 /. t_off) in
  Printf.printf
    "all-nodes: %.1f ms unsampled, %.1f ms sampled (every %d), overhead \
     %+.2f%%\n"
    (1e3 *. t_off) (1e3 *. t_on) Engine.Health.default_sample_every
    (100. *. overhead);
  record ~experiment:"Health sampling overhead" ~paper:"<2% of all-nodes"
    ~measured:(Printf.sprintf "%+.2f%%" (100. *. overhead))
    (overhead < budget)

(* ------------------------------------------------------------------ *)
(* Summary                                                              *)

let print_summary () =
  section "Paper vs measured (see EXPERIMENTS.md)";
  Printf.printf "%-28s %-28s %-28s %s\n" "experiment" "paper" "measured" "ok";
  List.iter
    (fun (e, p, m, ok) ->
      Printf.printf "%-28s %-28s %-28s %s\n" e p m
        (if ok then "yes" else "NO"))
    (List.rev !summary);
  let bad = List.filter (fun (_, _, _, ok) -> not ok) !summary in
  Printf.printf "\n%d/%d experiment checks hold\n"
    (List.length !summary - List.length bad)
    (List.length !summary)

(* ------------------------------------------------------------------ *)
(* Bechamel timing benchmarks                                           *)

let timing_benchmarks () =
  section "Timing benchmarks (Bechamel)";
  let open Bechamel in
  let open Toolkit in
  (* Lighter-weight kernels representative of each experiment, so the
     timing run finishes quickly. *)
  let opamp = Workloads.Opamp_2mhz.buffer () in
  let opamp_probe = Stability.Probe.prepare opamp in
  let quick_opts =
    { Stability.Analysis.default_options with
      refine = false;
      sweep = Numerics.Sweep.decade 1e3 1e9 10 }
  in
  let bias = Workloads.Bias_zero_tc.cell () in
  let bias_probe = Stability.Probe.prepare bias in
  let dev, term = Workloads.Opamp_2mhz.feedback_break in
  let tests =
    [ Test.make ~name:"table1: closed forms"
        (Staged.stage (fun () -> Control.Second_order.table1 ()));
      Test.make ~name:"fig1: netlist build + compile"
        (Staged.stage (fun () ->
             Engine.Mna.compile (Workloads.Opamp_2mhz.buffer ())));
      Test.make ~name:"fig2: transient (1 us)"
        (Staged.stage (fun () ->
             Engine.Transient.run ~tstop:1e-6 ~tstep:4e-9 opamp));
      Test.make ~name:"fig3: middlebrook margins"
        (Staged.stage (fun () ->
             Engine.Loopgain.middlebrook
               ~sweep:(Numerics.Sweep.decade 1e4 1e8 10)
               opamp ~device:dev ~terminal:term));
      Test.make ~name:"fig4: single-node stability"
        (Staged.stage (fun () ->
             Stability.Analysis.single_node_prepared ~options:quick_opts
               opamp_probe Workloads.Opamp_2mhz.node_out));
      Test.make ~name:"table2: all-nodes scan"
        (Staged.stage (fun () ->
             Stability.Analysis.all_nodes_prepared ~options:quick_opts
               opamp_probe));
      Test.make ~name:"fig5: bias-cell all-nodes"
        (Staged.stage (fun () ->
             Stability.Analysis.all_nodes_prepared ~options:quick_opts
               bias_probe));
      Test.make ~name:"s1.2: rlc single-node"
        (Staged.stage (fun () ->
             Stability.Analysis.single_node ~options:quick_opts
               (sec12_circuit ()) "n"));
      Test.make ~name:"ext: exact poles (op-amp)"
        (Staged.stage (fun () -> Engine.Poles.of_circuit opamp));
      Test.make ~name:"ext: noise spectrum (op-amp)"
        (Staged.stage (fun () ->
             Engine.Noise.run ~sweep:(Numerics.Sweep.decade 1e4 1e8 5)
               ~output:"out" opamp)) ]
  in
  let benchmark test =
    let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 1.0) () in
    Benchmark.all cfg Instance.[ monotonic_clock ] test
  in
  let analyze raw =
    Analyze.all
      (Analyze.ols ~bootstrap:0 ~r_square:false
         ~predictors:[| Measure.run |])
      Instance.monotonic_clock raw
  in
  Printf.printf "%-36s %16s\n" "kernel" "time/run";
  List.iter
    (fun test ->
      let raw = benchmark test in
      let results = analyze raw in
      Hashtbl.iter
        (fun name ols ->
          let ns =
            match Bechamel.Analyze.OLS.estimates ols with
            | Some [ est ] -> est
            | _ -> Float.nan
          in
          let time =
            if ns > 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
            else if ns > 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
            else if ns > 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
            else Printf.sprintf "%.0f ns" ns
          in
          Printf.printf "%-36s %16s\n" name time)
        results)
    tests

let () =
  let arg = if Array.length Sys.argv > 1 then Sys.argv.(1) else "" in
  if arg = "--pool" then begin
    (* Full pool benchmark alone: regenerates BENCH_pool.json without
       re-running the whole paper reproduction. *)
    run_pool_bench ~smoke:false ();
    print_summary ()
  end
  else if arg = "--scale" then begin
    (* Synthetic large-circuit scaling: regenerates BENCH_scale.json in
       full mode; with a second --smoke argument, a reduced run whose
       speedup gate (4 workers never slower than 1, the hardware-scaled
       target on real multicore) fails the process — the @bench-smoke
       leg that keeps the jobs curve from inverting again. *)
    let smoke = Array.length Sys.argv > 2 && Sys.argv.(2) = "--smoke" in
    run_scale_bench ~smoke ();
    print_summary ();
    if smoke && List.exists (fun (_, _, _, ok) -> not ok) !summary then
      exit 1
  end
  else if arg = "--kernel" then begin
    (* Compiled-kernel benchmark alone: regenerates BENCH_kernel.json in
       full mode and gates the speedup / bit-identity / counter
       contracts; with a second --smoke argument, a reduced run whose
       timing gate only asserts "never slower" — the @bench-smoke leg
       that keeps the kernel from regressing below the plan it
       specializes. *)
    let smoke = Array.length Sys.argv > 2 && Sys.argv.(2) = "--smoke" in
    run_kernel_bench ~smoke ();
    print_summary ();
    if List.exists (fun (_, _, _, ok) -> not ok) !summary then exit 1
  end
  else if arg = "--smoke" then begin
    (* Reduced run for the @bench-smoke alias: the pool's correctness
       contracts (determinism, plan-reuse counters, seed-stable
       Monte-Carlo) at low sweep density. Timing thresholds are skipped —
       only deterministic checks can gate a test alias. *)
    run_pool_bench ~smoke:true ();
    run_obs_smoke ();
    run_health_smoke ();
    print_summary ();
    if List.exists (fun (_, _, _, ok) -> not ok) !summary then exit 1
  end
  else begin
    ignore (run_table1 ());
    let circ = run_fig1 () in
    ignore (run_fig2 circ);
    ignore (run_fig3 circ);
    ignore (run_fig4 circ);
    ignore (run_table2 circ);
    ignore (run_fig5 ());
    ignore (run_sec12 ());
    run_ablations ();
    run_ablation_sparse ();
    run_acplan_bench ();
    run_kernel_bench ~smoke:false ();
    run_pool_bench ~smoke:false ();
    run_obs_smoke ();
    run_health_smoke ();
    print_summary ();
    timing_benchmarks ()
  end
