(** RC-ladder chains: sparse, loop-free, arbitrarily sizeable.

    The system matrix is tridiagonal-ish, so ladders are the scaling
    fixture for sparse-vs-dense ablations, and — being loop-free with
    only real poles — a stable reference workload for the CI smoke runs
    and the seq-vs-par manifest diff (the analysis must produce
    identical manifests however it is scheduled). *)

val rc : ?sections:int -> ?r:float -> ?c:float -> unit -> Circuit.Netlist.t
(** [sections] RC stages (default 20, 1 kOhm / 1 nF) driven by an AC
    source on net ["n0"]; stage [k] is net ["n<k>"]. *)

val last_node : int -> Circuit.Netlist.node
(** Name of the final net of an [rc ~sections] ladder. *)
