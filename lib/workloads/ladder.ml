open Circuit.Netlist

let rc ?(sections = 20) ?(r = 1e3) ?(c = 1e-9) () =
  let circ =
    empty ~title:(Printf.sprintf "rc ladder %d" sections) ()
  in
  let circ = vsource circ "V1" "n0" "0" (ac_source 1.) in
  let rec build circ k =
    if k > sections then circ
    else begin
      let circ =
        resistor circ (Printf.sprintf "R%d" k)
          (Printf.sprintf "n%d" (k - 1))
          (Printf.sprintf "n%d" k)
          r
      in
      let circ =
        capacitor circ (Printf.sprintf "C%d" k) (Printf.sprintf "n%d" k) "0"
          c
      in
      build circ (k + 1)
    end
  in
  build circ 1

let last_node sections = Printf.sprintf "n%d" sections
