open Circuit.Netlist

(* Parameterised synthetic circuits for production-scale benchmarking:
   every generator is linear (R/C/controlled sources only), lint-clean,
   fully connected, and has a closed-form unknown count, so benches can
   dial in 1k-10k+ unknowns and tests can verify well-formedness by
   construction. *)

(* ---- RC mesh ---- *)

let mesh_node i j = Printf.sprintf "m%d_%d" i j
let mesh_unknowns ~rows ~cols = (rows * cols) + 1

let rc_mesh ?(r = 1e3) ?(c = 1e-9) ~rows ~cols () =
  if rows < 1 || cols < 1 then
    invalid_arg "Synth.rc_mesh: rows and cols must be >= 1";
  let circ =
    empty ~title:(Printf.sprintf "rc mesh %dx%d" rows cols) ()
  in
  (* Drive the corner; the source branch is the mesh's only non-node
     unknown. *)
  let circ = vsource circ "V1" (mesh_node 0 0) "0" (ac_source 1.) in
  let circ = ref circ in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      let n = mesh_node i j in
      circ :=
        capacitor !circ (Printf.sprintf "C%d_%d" i j) n "0" c;
      if j + 1 < cols then
        circ :=
          resistor !circ
            (Printf.sprintf "RH%d_%d" i j)
            n (mesh_node i (j + 1)) r;
      if i + 1 < rows then
        circ :=
          resistor !circ
            (Printf.sprintf "RV%d_%d" i j)
            n (mesh_node (i + 1) j) r
    done
  done;
  !circ

(* ---- RC tree ---- *)

let tree_node k = Printf.sprintf "t%d" k

let tree_count ~depth ~fanout =
  let n = ref 0 and level = ref 1 in
  for _ = 0 to depth do
    n := !n + !level;
    level := !level * fanout
  done;
  !n

let tree_unknowns ~depth ~fanout = tree_count ~depth ~fanout + 1

let rc_tree ?(r = 1e3) ?(c = 1e-9) ~depth ~fanout () =
  if depth < 0 || fanout < 1 then
    invalid_arg "Synth.rc_tree: depth must be >= 0 and fanout >= 1";
  let count = tree_count ~depth ~fanout in
  let circ =
    empty
      ~title:
        (Printf.sprintf "rc tree depth %d fanout %d" depth fanout)
      ()
  in
  let circ = vsource circ "V1" (tree_node 0) "0" (ac_source 1.) in
  let circ = ref circ in
  (* Heap layout: the parent of node [k >= 1] is [(k - 1) / fanout]. *)
  for k = 0 to count - 1 do
    circ := capacitor !circ (Printf.sprintf "C%d" k) (tree_node k) "0" c;
    if k > 0 then
      circ :=
        resistor !circ (Printf.sprintf "R%d" k)
          (tree_node ((k - 1) / fanout))
          (tree_node k) r
  done;
  !circ

(* ---- multi-stage amplifier array ---- *)

(* Each stage replicates the shipped two-pole behavioural feedback loop
   (circuits/two_pole_loop.sp): an ideal gain block, two RC poles, a
   unity buffer and a resistive feedback tap. Chaining the closed-loop
   outputs gives a deck full of genuine resonant loops — the workload
   the probe-every-node methodology exists for — at any size. *)

let amp_stage_out s = Printf.sprintf "fb_%d" s
let amp_array_unknowns ~stages = (7 * stages) + 2

let amp_array ?(av = 1000.) ~stages () =
  if stages < 1 then invalid_arg "Synth.amp_array: stages must be >= 1";
  let circ =
    empty ~title:(Printf.sprintf "amp array %d stages" stages) ()
  in
  let circ = vsource circ "VIN" "in" "0" (ac_source 1.) in
  let circ = ref circ in
  for s = 0 to stages - 1 do
    let n suffix = Printf.sprintf "%s_%d" suffix s in
    let input = if s = 0 then "in" else amp_stage_out (s - 1) in
    circ :=
      vcvs !circ (Printf.sprintf "EAMP_%d" s) (n "x1") "0" input (n "fb") av;
    circ := resistor !circ (Printf.sprintf "R1_%d" s) (n "x1") (n "x2") 1e3;
    circ := capacitor !circ (Printf.sprintf "C1_%d" s) (n "x2") "0" 1e-9;
    circ :=
      vcvs !circ (Printf.sprintf "EBUF_%d" s) (n "x2b") "0" (n "x2") "0" 1.;
    circ := resistor !circ (Printf.sprintf "R2_%d" s) (n "x2b") (n "x3") 1e4;
    circ := capacitor !circ (Printf.sprintf "C2_%d" s) (n "x3") "0" 1e-11;
    circ :=
      resistor !circ (Printf.sprintf "RFB_%d" s) (n "x3") (n "fb") 1e-3;
    circ := resistor !circ (Printf.sprintf "RL_%d" s) (n "fb") "0" 1e6
  done;
  !circ
