(** Parameterised synthetic circuits for production-scale benchmarking.

    The shipped op-amp decks have ~15-40 unknowns — fine for golden
    reports, useless for measuring scheduler and sparse-solver scaling.
    These generators produce linear, lint-clean, connected decks with
    closed-form unknown counts, from hundreds to tens of thousands of
    unknowns:

    - {!rc_mesh}: a rows x cols resistor grid with a capacitor to
      ground at every node — 2-D sparsity, the stress case for fill-in.
    - {!rc_tree}: a fanout-ary RC tree ({!Ladder.rc} generalised from a
      chain to a tree) — extreme sparsity, long signal paths.
    - {!amp_array}: chained copies of the shipped two-pole behavioural
      feedback loop — every stage a genuine resonant loop, the workload
      the paper's probe-every-node methodology targets.

    All three are exportable via [acstab synth] and drive the [--scale]
    bench section ([BENCH_scale.json]). *)

val rc_mesh :
  ?r:float -> ?c:float -> rows:int -> cols:int -> unit ->
  Circuit.Netlist.t
(** [rows * cols] grid nodes [m<i>_<j>], 1 kOhm between lattice
    neighbours, 1 nF from every node to ground, AC-driven at
    [m0_0]. *)

val mesh_node : int -> int -> Circuit.Netlist.node
(** [mesh_node i j] is the grid net name ["m<i>_<j>"]. *)

val mesh_unknowns : rows:int -> cols:int -> int
(** Unknown count of {!rc_mesh}: [rows * cols + 1] (nodes plus the
    source branch). *)

val rc_tree :
  ?r:float -> ?c:float -> depth:int -> fanout:int -> unit ->
  Circuit.Netlist.t
(** Complete [fanout]-ary RC tree of the given depth (root = depth 0),
    AC-driven at the root [t0]; node [k]'s parent is [(k-1)/fanout]. *)

val tree_node : int -> Circuit.Netlist.node
(** [tree_node k] is the tree net name ["t<k>"]. *)

val tree_count : depth:int -> fanout:int -> int
(** Number of tree nodes: [sum over l <= depth of fanout^l]. *)

val tree_unknowns : depth:int -> fanout:int -> int
(** Unknown count of {!rc_tree}: [tree_count + 1]. *)

val amp_array : ?av:float -> stages:int -> unit -> Circuit.Netlist.t
(** [stages] copies of the two-pole behavioural feedback loop (gain
    block, two RC poles, unity buffer, resistive feedback), each stage's
    input chained to the previous stage's closed-loop output, the first
    driven by an AC source on net ["in"]. *)

val amp_stage_out : int -> Circuit.Netlist.node
(** Closed-loop output net of stage [s]: ["fb_<s>"]. *)

val amp_array_unknowns : stages:int -> int
(** Unknown count of {!amp_array}: [7 * stages + 2] (five nodes and two
    controlled-source branches per stage, plus the input net and source
    branch). *)
