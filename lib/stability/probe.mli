(** AC current-probe excitation of circuit nets (paper section 2).

    "The technique excites selected or all circuit nodes consecutively by
    applying an AC-current signal source to the tested node without
    changing the circuit under inspection at all." The measured response is
    the net's driving-point transimpedance Z(j w): an ideal current probe
    adds nothing to the system matrix, only to the excitation vector, so
    the all-nodes mode factors the matrix once per frequency and back-
    substitutes one RHS per net. A netlist-level path (attach a real
    [Isource] probe and run a plain AC analysis) is kept as the reference
    implementation; both agree to solver precision. *)

type t = {
  mna : Engine.Mna.t;
  op : Engine.Dcop.t;
}

val prepare :
  ?dc_options:Engine.Dcop.options -> Circuit.Netlist.t -> t
(** Compile the design and find its operating point once. Pre-existing AC
    stimuli are irrelevant to probing (the probe provides its own
    excitation and ignores the sources' AC values — the tool's "auto-zero
    all AC sources" feature). *)

val response :
  ?gmin:float -> t -> sweep:Numerics.Sweep.t -> Circuit.Netlist.node ->
  Numerics.Waveform.Freq.t
(** Driving-point transimpedance of one net across a sweep. *)

val plan : ?gmin:float -> t -> sweep:Numerics.Sweep.t -> Engine.Ac_plan.t
(** Compile the probe's MNA system into an AC solve plan seeded at the
    sweep's mid-band frequency. The plan is valid for {e any} sweep of
    the same circuit — hand it to several {!response_many} calls (a
    coarse scan plus its zoom refinements) to pay for exactly one
    symbolic analysis in total. *)

val auto_threshold : int
(** Arithmetic volume (unknowns x points x probed nets) above which
    [`Auto] distributes a sweep over the {!Parallel.Pool}. *)

val estimated_work : unknowns:int -> points:int -> nets:int -> int
(** The volume proxy behind the [`Auto] decision:
    [unknowns * points * max 1 nets]. *)

val auto_decision : unknowns:int -> points:int -> nets:int -> bool
(** Exactly the seq/par choice [`Auto] makes for a sweep of this shape:
    true iff {!estimated_work} clears {!auto_threshold}, the calling
    domain is not already a pool worker, and
    [Parallel.Pool.effective_jobs () > 1] — the {e effective} count, so
    [`Auto] never selects pooled execution that the core-count clamp
    would make pointless (or, before the clamp existed, actively
    harmful). Counters: every sweep increments [probe.sweeps]; sweeps
    that actually run pooled also increment [probe.sweeps_par], so a
    manifest or [--metrics] snapshot records which mode really ran. *)

val response_many :
  ?gmin:float -> ?backend:[ `Dense | `Sparse | `Plan | `Kernel ] ->
  ?parallel:[ `Auto | `Seq | `Par ] -> ?plan:Engine.Ac_plan.t ->
  ?kernel:Engine.Kernel.t -> ?health:Engine.Health.meter ->
  t -> sweep:Numerics.Sweep.t -> Circuit.Netlist.node list ->
  (Circuit.Netlist.node * Numerics.Waveform.Freq.t) list
(** Shared-factorisation probing of many nets.

    [`Plan] — the default above {!Engine.Ac_plan.dense_cutoff}
    unknowns — compiles the sweep once into an {!Engine.Ac_plan}: one
    symbolic analysis per sweep, one O(nnz) numeric fill and
    refactorisation per frequency point, and all probed nets solved as
    one multi-RHS batch per point. [`Sparse] keeps a fresh
    Gilbert-Peierls factorisation per point over the same compiled
    skeleton; [`Dense] (the default for tiny systems) is the oracle
    path. [`Kernel] compiles the plan one step further into an
    {!Engine.Kernel} — the flattened, allocation-free factor/solve
    program — and advances the sweep in chunks of
    {!Engine.Kernel.chunk} points per kernel invocation; its results
    are bit-identical to [`Plan]. Passing [plan] (see {!val:plan})
    skips compilation entirely and implies the [`Plan] backend unless
    [backend] overrides it; passing [kernel] likewise implies
    [`Kernel] and skips both compilations.

    [parallel] spreads the independent frequency points over the
    persistent {!Parallel.Pool} in dynamically stolen chunks (the
    paper's "distributed run" capability at multicore scale). [`Auto]
    (the default) goes parallel only when the pool has workers and the
    sweep's volume clears {!auto_threshold}; results are bit-identical
    to sequential either way.

    [health] accumulates sampled per-factorisation health (see
    {!Engine.Health}) across the sweep; the analysis layer turns its
    worst-case values into per-node quality grades. *)

val response_via_netlist :
  ?gmin:float -> ?dc_options:Engine.Dcop.options -> Circuit.Netlist.t ->
  sweep:Numerics.Sweep.t -> Circuit.Netlist.node -> Numerics.Waveform.Freq.t
(** Reference path: zero the design's AC stimuli, attach a unit AC current
    source to the net ({!Circuit.Transform.with_ac_current_probe}) and run
    a normal AC analysis. *)
