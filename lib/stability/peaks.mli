(** Classification of stability-plot extrema.

    Mirrors the tool's report semantics (paper section 4.1): complex poles
    (negative peaks) and complex zeros (positive peaks), plus the "special
    cases" the All-Nodes report flags — "end-of-range" extrema that sit on
    the sweep boundary and "min/max" pole/zero doublets whose natural
    frequencies nearly coincide (footnote 2 of the paper: a complex zero
    close to a complex pole changes the pole's significance). Shallow
    extrema indistinguishable from real-pole curvature (|P| <= 1) are
    marked [Real_pole_like]. *)

type kind = Complex_pole | Complex_zero

type notice =
  | End_of_range     (** extremum at the first/last sweep point *)
  | Min_max_doublet  (** a pole and a zero within [doublet_ratio] in freq *)
  | Real_pole_like   (** |P| <= 1: explainable by real poles alone *)
  | Pole_shoulder
      (** positive side-lobe of a sharp pole dip, not a genuine complex
          zero: the second derivative of a resonance dip has positive
          flanks of up to ~1/8 of the dip depth within a small frequency
          ratio. Suppressed from {!analyze} output unless
          [keep_shoulders] is set. *)

type peak = {
  kind : kind;
  freq : float;        (** natural frequency (refined) *)
  value : float;       (** performance index: P at the peak *)
  notices : notice list;
  zeta : float option;       (** 1/sqrt(-P), poles deeper than -1 only *)
  phase_margin_deg : float option;  (** exact second-order PM from zeta *)
  overshoot_pct : float option;
  bracket_ratio : float;
  (** conditioning of the parabolic refinement: ratio of the grid
      frequencies bracketing the extremum ([1.0] when the peak was not
      refined). Near 1, the bracket is tight and the interpolated
      frequency is well determined; a wide bracket on a sharp peak means
      the grid barely resolved it. *)
  curvature : float;
  (** relative change of the plot's slope across the bracket (0 for an
      unrefined or flat extremum). Strong curvature with a tight bracket
      is a well-conditioned fit; weak curvature means the interpolated
      apex rests on nearly-cancelling differences. *)
}

val analyze :
  ?min_magnitude:float -> ?doublet_ratio:float -> ?keep_shoulders:bool ->
  Stability_plot.t -> peak list
(** Extrema of the plot with |P| >= [min_magnitude] (default 0.2), in
    ascending frequency. [doublet_ratio] (default 3.0) sets how close a
    pole and zero must be to be flagged as a doublet. Positive peaks
    identified as mere shoulders of a deep pole dip (within frequency
    ratio 3 and shallower than a fifth of the dip) are dropped unless
    [keep_shoulders] (default false). *)

val dominant : peak list -> peak option
(** The deepest complex-pole peak — the loop the node most strongly
    participates in (what the All-Nodes report lists per node). *)

val pp : Format.formatter -> peak -> unit
