(** Run modes of the stability tool (paper sections 4 and 6).

    "Single Node" probes one selected net, builds its stability plot,
    detects the peaks and estimates the phase margin. "All Nodes" probes
    every net of the design and produces the per-node peak list that the
    report generator turns into the paper's Table 2.

    Peaks found on the coarse sweep are optionally refined by re-probing a
    narrow log window around each peak at a much finer grid (the coarse
    grid alone biases sharp peaks low). Refinement is batched: nodes
    observing the same feedback loop peak at (nearly) the same natural
    frequency — the paper's loop-clustering insight — so their zoom
    windows are merged and re-probed together through one multi-RHS
    {!Probe.response_many} call per frequency group, sharing each
    per-point factorisation across every node of the loop.

    On the plan-backed solver paths a run mode compiles exactly one
    {!Engine.Ac_plan} and reuses it for the coarse scan and every zoom
    window — one symbolic analysis for an entire all-nodes run,
    refinement included ({!Engine.Ac_plan.totals} counters verify it). *)

type options = {
  sweep : Numerics.Sweep.t;      (** coarse sweep (default 1 kHz - 1 GHz,
                                     30 points/decade) *)
  refine : bool;                 (** zoom re-probe around peaks (true) *)
  refine_ratio : float;          (** half-width of the zoom window as a
                                     frequency ratio (2.0); also the gap
                                     within which refinement jobs are
                                     merged into one batched window *)
  refine_per_decade : int;       (** zoom grid density (600) *)
  min_peak : float;              (** report peaks with |P| above this (0.2) *)
  dc_options : Engine.Dcop.options;
  parallel : [ `Auto | `Seq | `Par ];
  (** distribution of the sweeps over the persistent {!Parallel.Pool}.
      [`Auto] (the default) parallelises when the pool has workers and
      the sweep's volume clears {!Probe.auto_threshold}; [`Par] forces
      pooled execution, [`Seq] forces sequential. Results are
      bit-identical in every mode. *)
  backend : [ `Auto | `Dense | `Sparse | `Plan | `Kernel ];
  (** linear-solver path handed to {!Probe.response_many}. [`Auto] (the
      default) lets the probe layer pick: the compiled AC plan above
      {!Engine.Ac_plan.dense_cutoff} unknowns, dense below. The explicit
      values force one path — useful for cross-checking backends against
      each other on the same design. [`Kernel] compiles the plan one
      step further into the flattened {!Engine.Kernel} factor/solve
      program (bit-identical results to [`Plan], compiled once per run
      and shared by the coarse scan and every zoom window). *)
}

val default_options : options

type quality = Good | Degraded | Suspect
(** Numerical trustworthiness of a node's analysis, derived from the
    worst sampled factorisation health (reciprocal condition estimate,
    scaled residual — see {!Engine.Health}) across the run's sweeps plus
    the node's own clamp count. [Good]: nothing noteworthy. [Degraded]:
    rcond below 1e-8, scaled residual above 1e-9, or clamped samples —
    peak numbers carry fewer digits than usual. [Suspect]: rcond below
    1e-11 or residual above 1e-5 — the linear solves themselves are not
    trustworthy and neither are the peaks derived from them. *)

val quality_string : quality -> string
(** ["good" | "degraded" | "suspect"] — the spelling used by reports,
    manifests and [acstab diff]. *)

type node_result = {
  node : Circuit.Netlist.node;
  plot : Stability_plot.t;       (** coarse plot (kept for plotting) *)
  peaks : Peaks.peak list;       (** refined peaks *)
  dominant : Peaks.peak option;  (** deepest complex-pole peak *)
  degraded : int;
  (** number of coarse-sweep magnitude samples that had to be clamped
      (underflowed notch, non-finite solve). [> 0] means the plot around
      those samples is a floor artefact: the node completed analysis but
      its peaks deserve scrutiny. Reports flag such nodes. *)
  quality : quality;
  (** numerical-health grade of this node's analysis (see {!quality}).
      The factorisation-health component is shared by all nodes of a run
      (every node's solves go through the same per-point factors); the
      clamp component is per-node. *)
}

val single_node :
  ?options:options -> Circuit.Netlist.t -> Circuit.Netlist.node ->
  node_result

val all_nodes :
  ?options:options -> ?nodes:Circuit.Netlist.node list -> Circuit.Netlist.t ->
  node_result list
(** Probe every non-ground net (or the given subset). Nets the tool cannot
    probe meaningfully (probing reveals no finite response) are skipped.
    Results come back in net-name order. *)

val single_node_prepared :
  ?options:options -> ?plan:Engine.Ac_plan.t -> ?kernel:Engine.Kernel.t ->
  Probe.t -> Circuit.Netlist.node -> node_result
(** As {!single_node} with a pre-computed operating point. [plan] hands
    in an already-compiled solve plan (see {!shared_plan}) so a caller
    holding one — the fingerprint-keyed [Tool.Cache] across repeated
    requests on the same deck — pays zero further symbolic analyses;
    [kernel] does the same for the compiled kernel program (see
    {!shared_kernel}) on the [`Kernel] backend. *)

val all_nodes_prepared :
  ?options:options -> ?nodes:Circuit.Netlist.node list ->
  ?plan:Engine.Ac_plan.t -> ?kernel:Engine.Kernel.t -> Probe.t ->
  node_result list

val shared_plan : options -> Probe.t -> Engine.Ac_plan.t option
(** The plan a run mode would compile for these options: [Some] exactly
    when the configured backend is plan-backed ([`Plan], [`Sparse],
    [`Kernel], or [`Auto] above {!Engine.Ac_plan.dense_cutoff}
    unknowns), [None] on the dense paths. Compiling costs one symbolic
    analysis; the result is valid for any sweep of the same prepared
    circuit. *)

val shared_kernel :
  options -> Engine.Ac_plan.t option -> Engine.Kernel.t option
(** The kernel a run mode would compile from that plan: [Some] exactly
    when the configured backend is [`Kernel] and a plan exists.
    Compilation is cheap (array flattening, no factorisation) and the
    kernel, like the plan, is valid for any sweep of the same prepared
    circuit. *)
