open Numerics

type options = {
  sweep : Numerics.Sweep.t;
  refine : bool;
  refine_ratio : float;
  refine_per_decade : int;
  min_peak : float;
  dc_options : Engine.Dcop.options;
  parallel : [ `Auto | `Seq | `Par ];
  backend : [ `Auto | `Dense | `Sparse | `Plan | `Kernel ];
}

let default_options =
  { sweep = Sweep.decade 1e3 1e9 30;
    refine = true;
    refine_ratio = 2.0;
    refine_per_decade = 600;
    min_peak = 0.2;
    dc_options = Engine.Dcop.default_options;
    parallel = `Auto;
    backend = `Auto }

let probe_backend opts =
  match opts.backend with
  | `Auto -> None
  | (`Dense | `Sparse | `Plan | `Kernel) as b -> Some b

(* One compiled plan for the whole run mode: the coarse scan and every
   zoom window share the circuit's MNA pattern, so they share its
   symbolic analysis too. [None] on the dense paths. *)
let shared_plan opts probe =
  let plan_backed =
    match opts.backend with
    | `Plan | `Sparse | `Kernel -> true
    | `Dense -> false
    | `Auto ->
      probe.Probe.mna.Engine.Mna.size > Engine.Ac_plan.dense_cutoff
  in
  if plan_backed then Some (Probe.plan probe ~sweep:opts.sweep) else None

(* One compiled kernel per run mode, for the same reason: coarse scan
   and zoom windows share the plan's symbolic analysis, hence also its
   flattened kernel program. [None] unless the kernel backend is
   selected. *)
let shared_kernel opts plan =
  match (opts.backend, plan) with
  | `Kernel, Some p -> Some (Engine.Kernel.compile p)
  | _ -> None

let response_many opts ?plan ?kernel ?health probe nodes ~sweep =
  Probe.response_many ?backend:(probe_backend opts)
    ~parallel:opts.parallel ?plan ?kernel ?health probe ~sweep nodes

type quality = Good | Degraded | Suspect

let quality_string = function
  | Good -> "good"
  | Degraded -> "degraded"
  | Suspect -> "suspect"

(* Grade thresholds on the worst sampled health of the run's sweeps
   (documented in MANUAL section 8). rcond 1e-8 leaves ~8 trustworthy
   digits — enough for 3-digit peak numbers with margin; below 1e-11
   the solve carries the answer's leading digits away. The scaled
   residual of a backward-stable solve sits near machine epsilon times
   the pivot growth, so 1e-9 already signals real element growth and
   1e-5 means the "solution" barely satisfies the system. *)
let rcond_degraded = 1e-8
let rcond_suspect = 1e-11
let residual_degraded = 1e-9
let residual_suspect = 1e-5

(* The health meter is shared by every sweep of a run (all nodes of a
   sweep share each frequency point's factorisation, so factorisation
   health is genuinely collective); the clamp count is the per-node
   signal layered on top. *)
let grade health degraded =
  let by_health =
    match health with
    | Some m when Engine.Health.samples m > 0 ->
        let r = Engine.Health.worst_rcond m in
        let res = Engine.Health.worst_residual m in
        if r < rcond_suspect || res > residual_suspect then Suspect
        else if r < rcond_degraded || res > residual_degraded then Degraded
        else Good
    | _ -> Good
  in
  match by_health with
  | Suspect -> Suspect
  | Degraded -> Degraded
  | Good -> if degraded > 0 then Degraded else Good

type node_result = {
  node : Circuit.Netlist.node;
  plot : Stability_plot.t;
  peaks : Peaks.peak list;
  dominant : Peaks.peak option;
  degraded : int;
  quality : quality;
}

let zoom_windows_counter = Obs.Counter.make "analysis.zoom_windows"
let degraded_counter = Obs.Counter.make "analysis.degraded_nodes"

let sweep_bounds sweep =
  let pts = Sweep.points sweep in
  (pts.(0), pts.(Array.length pts - 1))

(* Nets held by ideal sources have an essentially zero probe response
   (the injected current sinks entirely into the source): such nets are
   unobservable and reported as dead. On live nets, samples many orders of
   magnitude below the response maximum (numerical residue of a pinned
   frequency range, or a notch deeper than the solver resolves) are
   clamped so the logarithmic differentiation stays finite; the clamp sits
   far below anything a real pole/zero produces. *)
(* Returns the cleaned response together with the number of clamped
   samples — a node with any clamp is reported as degraded rather than
   silently dropped (one underflowed notch or non-finite solve must not
   lose the node, let alone kill an all-nodes run). *)
let live_window (w : Waveform.Freq.t) =
  let mag = Waveform.Freq.mag w in
  let max_mag =
    Array.fold_left
      (fun acc m -> if Float.is_finite m then Float.max acc m else acc)
      0. mag
  in
  (* A driving-point impedance below a nano-ohm is not a physical node
     response; it is LU solver residue on a net pinned by an ideal
     source. *)
  if max_mag < 1e-9 then None
  else begin
    let floor = max_mag *. 1e-14 in
    let clamped = ref 0 in
    let h =
      Array.mapi
        (fun k z ->
          if Float.is_finite mag.(k) && mag.(k) >= floor then z
          else begin
            incr clamped;
            { Complex.re = floor; im = 0. }
          end)
        w.Waveform.Freq.h
    in
    Some (Waveform.Freq.make w.Waveform.Freq.freqs h, !clamped)
  end

(* Select the refined peak from a zoom-window response: the candidate of
   the same kind closest to the coarse estimate in log frequency. Edge
   hits in the zoom window mean the coarse peak was spurious curvature,
   in which case keep the coarse data. *)
let refined_from opts (coarse : Peaks.peak) w =
  match live_window w with
  | None -> coarse
  | Some (w, _) ->
    let center = coarse.Peaks.freq in
    let plot = Stability_plot.of_response w in
    let candidates =
      Peaks.analyze ~min_magnitude:(opts.min_peak /. 2.) plot
      |> List.filter (fun (p : Peaks.peak) -> p.kind = coarse.kind)
    in
    candidates
    |> List.filter (fun (p : Peaks.peak) ->
        not (List.mem Peaks.End_of_range p.notices))
    |> List.sort (fun (a : Peaks.peak) b ->
        compare
          (Float.abs (log (a.freq /. center)))
          (Float.abs (log (b.freq /. center))))
    |> function
    | best :: _ ->
      (* Keep coarse-plot notices that still apply (end-of-range refers to
         the full sweep, not the zoom window). *)
      let notices =
        (if List.mem Peaks.End_of_range coarse.notices then
           [ Peaks.End_of_range ]
         else [])
        @ List.filter (fun n -> n <> Peaks.End_of_range) best.Peaks.notices
      in
      { best with notices }
    | [] -> coarse

(* A refinement job: one coarse peak of one node, keyed so the refined
   result lands back in that node's peak list. *)
type refine_job = {
  rj_node : Circuit.Netlist.node;
  rj_slot : int;                  (* index within the node's peak list *)
  rj_coarse : Peaks.peak;
}

(* Batched zoom refinement. Nodes of one feedback loop peak at (nearly)
   the same natural frequency — the paper's loop-clustering insight — so
   their zoom windows coincide. Grouping the jobs by coarse frequency
   and re-probing each merged window once with a multi-RHS
   {!Probe.response_many} call shares the per-point factorisation across
   every node of the loop instead of re-probing one node at a time. The
   zoom windows additionally reuse [plan] — the coarse sweep's compiled
   solve plan — so the whole refinement pass performs zero further
   symbolic analyses. *)
let refine_batched opts ?plan ?kernel ?health probe jobs =
  let fmin, fmax = sweep_bounds opts.sweep in
  let sorted =
    List.sort
      (fun a b -> compare a.rj_coarse.Peaks.freq b.rj_coarse.Peaks.freq)
      jobs
  in
  (* Chain-group: a job joins the current group while its center lies
     within [refine_ratio] of the previous one, so windows that would
     overlap anyway are merged. *)
  let rec group acc current = function
    | [] -> List.rev (match current with [] -> acc | c -> List.rev c :: acc)
    | j :: rest ->
      (match current with
       | [] -> group acc [ j ] rest
       | prev :: _
         when j.rj_coarse.Peaks.freq /. prev.rj_coarse.Peaks.freq
              <= opts.refine_ratio ->
         group acc (j :: current) rest
       | _ -> group (List.rev current :: acc) [ j ] rest)
  in
  let groups = group [] [] sorted in
  List.concat_map
    (fun grp ->
      let centers = List.map (fun j -> j.rj_coarse.Peaks.freq) grp in
      let cmin = List.fold_left Float.min Float.infinity centers in
      let cmax = List.fold_left Float.max 0. centers in
      let lo = Float.max fmin (cmin /. opts.refine_ratio) in
      let hi = Float.min fmax (cmax *. opts.refine_ratio) in
      if hi <= lo *. 1.01 then
        List.map (fun j -> (j, j.rj_coarse)) grp
      else begin
        let zoom = Sweep.decade lo hi opts.refine_per_decade in
        let nodes =
          List.sort_uniq compare (List.map (fun j -> j.rj_node) grp)
        in
        Obs.Counter.incr zoom_windows_counter;
        let t0 = Obs.Span.enter () in
        let responses =
          response_many opts ?plan ?kernel ?health probe nodes ~sweep:zoom
        in
        Obs.Span.leave "analysis.zoom"
          ~args:
            [ ("nets", List.length nodes);
              ("points", Array.length (Sweep.points zoom)) ]
          t0;
        List.map
          (fun j ->
            let w = List.assoc j.rj_node responses in
            (j, refined_from opts j.rj_coarse w))
          grp
      end)
    groups

(* Coarse analysis of every live net, then one batched refinement pass
   over all (node, peak) jobs at once. *)
let analyze_many opts ?plan ?kernel ?health probe entries =
  let t_classify = Obs.Span.enter () in
  let coarse =
    List.filter_map
      (fun (node, w) ->
        match live_window w with
        | None ->
          (* Pinned by an ideal source: unobservable, skipped — as the
             paper's tool skips nets it cannot stimulate. *)
          None
        | Some (response, degraded) ->
          if degraded > 0 then Obs.Counter.incr degraded_counter;
          let plot = Stability_plot.of_response response in
          let peaks = Peaks.analyze ~min_magnitude:opts.min_peak plot in
          Some (node, plot, degraded, peaks))
      entries
  in
  Obs.Span.leave "analysis.classify" ~args:[ ("nets", List.length coarse) ]
    t_classify;
  let refined_of =
    if not opts.refine then fun _ _ coarse_pk -> coarse_pk
    else begin
      let jobs =
        List.concat_map
          (fun (node, _, _, peaks) ->
            List.mapi
              (fun slot pk ->
                { rj_node = node; rj_slot = slot; rj_coarse = pk })
              peaks)
          coarse
      in
      let table = Hashtbl.create 32 in
      List.iter
        (fun (j, refined) -> Hashtbl.replace table (j.rj_node, j.rj_slot)
            refined)
        (refine_batched opts ?plan ?kernel ?health probe jobs);
      fun node slot coarse_pk ->
        match Hashtbl.find_opt table (node, slot) with
        | Some refined -> refined
        | None -> coarse_pk
    end
  in
  List.map
    (fun (node, plot, degraded, peaks) ->
      let peaks = List.mapi (fun slot pk -> refined_of node slot pk) peaks in
      { node; plot; peaks; dominant = Peaks.dominant peaks; degraded;
        quality = grade health degraded })
    coarse

let analyze_node opts ?plan ?kernel ?health probe node response =
  match analyze_many opts ?plan ?kernel ?health probe [ (node, response) ] with
  | [ r ] -> r
  | _ ->
    failwith
      (Printf.sprintf
         "Stability.Analysis: net %S shows no finite AC response (held by \
          an ideal source?)"
         node)

let single_node_prepared ?(options = default_options) ?plan ?kernel probe
    node =
  let plan =
    match plan with Some _ as p -> p | None -> shared_plan options probe
  in
  let kernel =
    match kernel with
    | Some _ as k -> k
    | None -> shared_kernel options plan
  in
  let health = Engine.Health.meter () in
  let t0 = Obs.Span.enter () in
  let w =
    match
      response_many options ?plan ?kernel ~health probe [ node ]
        ~sweep:options.sweep
    with
    | [ (_, w) ] -> w
    | _ -> assert false
  in
  Obs.Span.leave "analysis.coarse" ~args:[ ("nets", 1) ] t0;
  analyze_node options ?plan ?kernel ~health probe node w

let all_nodes_prepared ?(options = default_options) ?nodes ?plan ?kernel
    probe =
  let all =
    match nodes with
    | Some ns -> ns
    | None ->
      Array.to_list (Circuit.Topology.nodes probe.Probe.mna.Engine.Mna.topo)
  in
  let plan =
    match plan with Some _ as p -> p | None -> shared_plan options probe
  in
  let kernel =
    match kernel with
    | Some _ as k -> k
    | None -> shared_kernel options plan
  in
  let health = Engine.Health.meter () in
  let t0 = Obs.Span.enter () in
  let responses =
    response_many options ?plan ?kernel ~health probe all ~sweep:options.sweep
  in
  Obs.Span.leave "analysis.coarse" ~args:[ ("nets", List.length all) ] t0;
  analyze_many options ?plan ?kernel ~health probe responses

let single_node ?(options = default_options) circ node =
  let probe = Probe.prepare ~dc_options:options.dc_options circ in
  single_node_prepared ~options probe node

let all_nodes ?(options = default_options) ?nodes circ =
  let probe = Probe.prepare ~dc_options:options.dc_options circ in
  all_nodes_prepared ~options ?nodes probe
