open Numerics

type t = {
  mna : Engine.Mna.t;
  op : Engine.Dcop.t;
}

let prepare ?dc_options circ =
  let mna = Engine.Mna.compile circ in
  let op = Engine.Dcop.solve ?options:dc_options mna in
  { mna; op }

(* Unit current pushed into node index [k]: rhs = +1 at k (the KCL
   convention of the engine counts injected current positive). *)
let excitation size k =
  let b = Array.make size Cx.zero in
  b.(k) <- Cx.one;
  b

let response_many ?(gmin = 1e-12) ?backend ?(parallel = false) t ~sweep
    nodes =
  let size = t.mna.Engine.Mna.size in
  let backend =
    match backend with
    | Some b -> b
    | None ->
      (* The compiled plan is the fast path for anything non-trivial;
         tiny systems keep the dense oracle's simplicity. *)
      if size <= Engine.Ac_plan.dense_cutoff then `Dense else `Plan
  in
  let indexed =
    List.map
      (fun n ->
        let i = Engine.Mna.node_index t.mna n in
        if i < 0 then
          invalid_arg "Probe.response_many: cannot probe the ground net";
        (n, i))
      nodes
  in
  let freqs = Sweep.points sweep in
  let per_node = List.map (fun (n, i) -> (n, i, Array.make
                                            (Array.length freqs) Cx.zero))
                   indexed in
  (* One plan compilation — and thus exactly one symbolic analysis —
     per sweep; sparse and plan backends both fill its O(nnz) skeleton
     instead of stamping a dense matrix and harvesting triplets. *)
  let plan =
    match backend with
    | `Dense -> None
    | `Sparse | `Plan ->
      let omega_ref =
        if Array.length freqs = 0 then 2e6 *. Float.pi
        else
          2. *. Float.pi
          *. sqrt (freqs.(0) *. freqs.(Array.length freqs - 1))
      in
      Some (Engine.Ac_plan.compile ~gmin ~omega_ref ~op:t.op t.mna)
  in
  (* The probe excitations carry no frequency dependence; build the
     multi-RHS batch once per sweep (solves never mutate their RHS, and
     the array is only read after this, so sharing it across domains is
     safe). *)
  let bs =
    match backend with
    | `Plan ->
      Array.of_list (List.map (fun (_, i, _) -> excitation size i) per_node)
    | `Dense | `Sparse -> [||]
  in
  let run_point fk f =
    let omega = 2. *. Float.pi *. f in
    match (backend, plan) with
    | `Plan, Some plan ->
      (* One numeric refactorisation, then every probed node as one
         multi-RHS batch against the same factor. *)
      let xs = Engine.Ac_plan.solve_many plan ~omega bs in
      List.iteri (fun q (_, i, out) -> out.(fk) <- xs.(q).(i)) per_node
    | `Sparse, Some plan ->
      (* Fresh pivoting factorisation per point (no symbolic reuse);
         kept as the mid-way reference between dense and plan. *)
      let a = Engine.Ac_plan.matrix_at plan ~omega in
      let lu = Scmat.lu_factor a in
      List.iter
        (fun (_, i, out) ->
          out.(fk) <- (Scmat.lu_solve lu (excitation size i)).(i))
        per_node
    | `Dense, _ | _, None ->
      let lu = Engine.Ac.factor_at ~gmin ~op:t.op ~omega t.mna in
      List.iter
        (fun (_, i, out) ->
          out.(fk) <- (Cmat.lu_solve lu (excitation size i)).(i))
        per_node
  in
  if not parallel then Array.iteri run_point freqs
  else begin
    (* Frequency points are independent; spread them over domains. Each
       domain writes disjoint columns of the (pre-allocated) result
       arrays, so no synchronisation is needed — the shared plan is
       immutable after compilation. Never spawn more workers than there
       are points. *)
    let workers =
      Int.max 1
        (Int.min (Array.length freqs)
           (Domain.recommended_domain_count () - 1))
    in
    let domains =
      List.init workers (fun w ->
          Domain.spawn (fun () ->
              let fk = ref w in
              while !fk < Array.length freqs do
                run_point !fk freqs.(!fk);
                fk := !fk + workers
              done))
    in
    List.iter Domain.join domains
  end;
  List.map (fun (n, _, h) -> (n, Waveform.Freq.make freqs h)) per_node

let response ?gmin t ~sweep node =
  match response_many ?gmin t ~sweep [ node ] with
  | [ (_, w) ] -> w
  | _ -> assert false

let response_via_netlist ?gmin ?dc_options circ ~sweep node =
  let probed = Circuit.Transform.with_ac_current_probe circ node in
  let ac = Engine.Ac.run ?dc_options ?gmin ~sweep probed in
  Engine.Ac.v ac node
