open Numerics

type t = {
  mna : Engine.Mna.t;
  op : Engine.Dcop.t;
}

let sweeps_counter = Obs.Counter.make "probe.sweeps"
let sweeps_par_counter = Obs.Counter.make "probe.sweeps_par"
let points_counter = Obs.Counter.make "probe.points"

let prepare ?dc_options circ =
  let t0 = Obs.Span.enter () in
  let mna = Engine.Mna.compile circ in
  Obs.Span.leave "mna.compile" ~args:[ ("unknowns", mna.Engine.Mna.size) ] t0;
  let t1 = Obs.Span.enter () in
  let op = Engine.Dcop.solve ?options:dc_options mna in
  Obs.Span.leave "dc.op" t1;
  { mna; op }

(* Unit current pushed into node index [k]: rhs = +1 at k (the KCL
   convention of the engine counts injected current positive). *)
let excitation size k =
  let b = Array.make size Cx.zero in
  b.(k) <- Cx.one;
  b

(* Mid-band reference frequency of a sweep: seeds the plan's pivot
   order. *)
let omega_ref_of freqs =
  if Array.length freqs = 0 then 2e6 *. Float.pi
  else
    2. *. Float.pi *. sqrt (freqs.(0) *. freqs.(Array.length freqs - 1))

let plan ?(gmin = 1e-12) t ~sweep =
  Engine.Ac_plan.compile ~gmin ~omega_ref:(omega_ref_of (Sweep.points sweep))
    ~op:t.op t.mna

(* Below this many point-solves (unknowns x points x nets, a proxy for
   the sweep's arithmetic volume) the pool's chunking overhead outweighs
   the win and [`Auto] stays sequential. A 25-unknown op-amp swept at 30
   points/decade over six decades with every net probed sits well above
   it; a single-node toy tank stays under. *)
let auto_threshold = 50_000

let estimated_work ~unknowns ~points ~nets =
  unknowns * points * Int.max 1 nets

(* The [`Auto] seq/par decision, exposed whole so tests can pin it:
   distribute only when the sweep carries real arithmetic volume AND the
   pool will actually run worker domains. The second condition uses
   [effective_jobs] (requested jobs clamped to the core count), not the
   requested value — on a machine with fewer cores than [-j] asked for,
   "parallel" used to mean oversubscribed domains fighting the
   stop-the-world minor GC, the one mode that loses to sequential. *)
let auto_decision ~unknowns ~points ~nets =
  Parallel.Pool.effective_jobs () > 1
  && (not (Parallel.Pool.in_worker ()))
  && estimated_work ~unknowns ~points ~nets >= auto_threshold

let response_many ?(gmin = 1e-12) ?backend ?(parallel = `Auto) ?plan:shared
    ?kernel:shared_kernel ?health t ~sweep nodes =
  let size = t.mna.Engine.Mna.size in
  let backend =
    match (backend, shared_kernel, shared) with
    | Some b, _, _ -> b
    | None, Some _, _ ->
      (* A caller handing in a compiled kernel wants it used. *)
      `Kernel
    | None, None, Some _ ->
      (* A caller handing in a compiled plan wants it used. *)
      `Plan
    | None, None, None ->
      (* The compiled plan is the fast path for anything non-trivial;
         tiny systems keep the dense oracle's simplicity. *)
      if size <= Engine.Ac_plan.dense_cutoff then `Dense else `Plan
  in
  let indexed =
    List.map
      (fun n ->
        let i = Engine.Mna.node_index t.mna n in
        if i < 0 then
          invalid_arg "Probe.response_many: cannot probe the ground net";
        (n, i))
      nodes
  in
  let freqs = Sweep.points sweep in
  let per_node = List.map (fun (n, i) -> (n, i, Array.make
                                            (Array.length freqs) Cx.zero))
                   indexed in
  (* One plan compilation — and thus exactly one symbolic analysis — per
     sweep, unless the caller shares one across sweeps (the refinement
     pass re-probes many zoom windows of one circuit: same MNA pattern,
     same symbolic analysis, zero recompilation). Sparse and plan
     backends both fill the plan's O(nnz) skeleton instead of stamping a
     dense matrix and harvesting triplets. *)
  let plan =
    match backend with
    | `Dense -> None
    | `Sparse | `Plan | `Kernel ->
      (match shared with
       | Some p -> Some p
       | None ->
         (match shared_kernel with
          | Some _ when backend = `Kernel ->
            (* The kernel carries its plan; no need for another. *)
            None
          | _ ->
            Some
              (Engine.Ac_plan.compile ~gmin ~omega_ref:(omega_ref_of freqs)
                 ~op:t.op t.mna)))
  in
  (* The kernel backend compiles the plan one step further: the frozen
     elimination schedule flattened into a straight-line factor/solve
     program (cheap — no factorisation — and fingerprint-cached by
     Tool.Cache when the pipeline drives this). *)
  let kernel =
    match backend with
    | `Kernel ->
      (match shared_kernel with
       | Some k -> Some k
       | None -> Some (Engine.Kernel.compile (Option.get plan)))
    | `Dense | `Sparse | `Plan -> None
  in
  (* The probe excitations carry no frequency dependence; build the
     multi-RHS batch once per sweep for every backend (solves never
     mutate their RHS, and the batch is only read afterwards, so sharing
     it across domains is safe). *)
  let bs =
    Array.of_list (List.map (fun (_, i, _) -> excitation size i) per_node)
  in
  let run_point fk =
    let omega = 2. *. Float.pi *. freqs.(fk) in
    match (backend, plan) with
    | `Plan, Some plan ->
      (* One numeric refactorisation, then every probed node as one
         multi-RHS batch against the same factor. Health recording
         happens inside [solve_many], sampled — the per-point body
         itself stays instrumentation-free. *)
      let xs = Engine.Ac_plan.solve_many ?health plan ~omega bs in
      List.iteri (fun q (_, i, out) -> out.(fk) <- xs.(q).(i)) per_node
    | `Sparse, Some plan ->
      (* Fresh pivoting factorisation per point (no symbolic reuse);
         kept as the mid-way reference between dense and plan. *)
      let a = Engine.Ac_plan.matrix_at plan ~omega in
      let lu = Scmat.lu_factor a in
      List.iteri
        (fun q (_, i, out) -> out.(fk) <- (Scmat.lu_solve lu bs.(q)).(i))
        per_node;
      if Engine.Health.tick () && Array.length bs > 0 then begin
        let x = Scmat.lu_solve lu bs.(0) in
        let mag_inf v =
          Array.fold_left (fun acc z -> Float.max acc (Cx.mag z)) 0. v
        in
        Engine.Health.record ?meter:health
          ~rcond:(Cond.rcond (Cond.sparse a lu))
          ~growth:(Scmat.pivot_growth a lu)
          ~residual:
            (Engine.Health.relative_residual ~norm1:(Scmat.norm1 a)
               ~residual_inf:(Scmat.residual_inf a x bs.(0))
               ~x_inf:(mag_inf x) ~b_inf:(mag_inf bs.(0)))
          ()
      end
    | `Kernel, Some _ ->
      (* Kernel sweeps never route through the per-point body — they run
         chunked below. *)
      assert false
    | `Dense, _ | _, None ->
      let a = Engine.Ac.matrix_of ~gmin ~op:t.op ~omega t.mna in
      let lu = Cmat.lu_factor a in
      List.iteri
        (fun q (_, i, out) -> out.(fk) <- (Cmat.lu_solve lu bs.(q)).(i))
        per_node;
      if Engine.Health.tick () && Array.length bs > 0 then
        Engine.Ac.dense_health ?meter:health a lu
          ~x:(Cmat.lu_solve lu bs.(0)) ~b:bs.(0)
  in
  let go_parallel =
    match parallel with
    | `Seq -> false
    | `Par -> true
    | `Auto ->
      auto_decision ~unknowns:size ~points:(Array.length freqs)
        ~nets:(List.length nodes)
  in
  (* Frequency points are independent, and each point writes disjoint
     cells of the pre-allocated result arrays — the shared plan is
     immutable after compilation, so pooled execution is bit-identical
     to sequential. Chunks are dealt dynamically over the persistent
     pool: no per-sweep domain spawns, and stealing rebalances the
     tail. The span wraps the whole sweep, never the per-point body:
     [run_point] must stay allocation-free of instrumentation. *)
  Obs.Counter.incr sweeps_counter;
  if go_parallel then Obs.Counter.incr sweeps_par_counter;
  Obs.Counter.add points_counter (Array.length freqs);
  let t0 = Obs.Span.enter () in
  (match kernel with
   | Some kern ->
     (* Kernel execution is chunked: one workspace advances [chunk]
        consecutive points per invocation, so workspace setup amortises
        and the pool deals whole chunks. Chunks write disjoint cells of
        the preallocated outputs, and chunk boundaries do not enter the
        arithmetic — parallel stays bit-identical to sequential. *)
     let sel = Array.of_list (List.map (fun (_, i, _) -> i) per_node) in
     let outs = Array.of_list (List.map (fun (_, _, out) -> out) per_node) in
     let npts = Array.length freqs in
     let cp = Engine.Kernel.chunk in
     let nchunks = (npts + cp - 1) / cp in
     let run_chunk ck =
       let lo = ck * cp in
       let hi = Int.min npts (lo + cp) in
       let ws = Engine.Kernel.workspace kern ~rhs:bs in
       Engine.Kernel.run ?health ws ~freqs ~lo ~hi ~sel ~outs
     in
     if go_parallel then Parallel.Pool.parallel_for ~n:nchunks run_chunk
     else
       for ck = 0 to nchunks - 1 do
         run_chunk ck
       done
   | None ->
     if go_parallel then
       Parallel.Pool.parallel_for ~n:(Array.length freqs) run_point
     else
       for fk = 0 to Array.length freqs - 1 do
         run_point fk
       done);
  Obs.Span.leave "probe.sweep"
    ~args:
      [ ("points", Array.length freqs);
        ("nets", List.length nodes);
        ("parallel", if go_parallel then 1 else 0) ]
    t0;
  List.map (fun (n, _, h) -> (n, Waveform.Freq.make freqs h)) per_node

let response ?gmin t ~sweep node =
  match response_many ?gmin t ~sweep [ node ] with
  | [ (_, w) ] -> w
  | _ -> assert false

let response_via_netlist ?gmin ?dc_options circ ~sweep node =
  let probed = Circuit.Transform.with_ac_current_probe circ node in
  let ac = Engine.Ac.run ?dc_options ?gmin ~sweep probed in
  Engine.Ac.v ac node
