let fmt_freq f = Printf.sprintf "%.2E" f

let notice_suffix (p : Peaks.peak) =
  match p.Peaks.notices with
  | [] -> ""
  | ns ->
    let s =
      List.map
        (function
          | Peaks.End_of_range -> "end-of-range"
          | Peaks.Min_max_doublet -> "min/max"
          | Peaks.Real_pole_like -> "real-pole-like"
          | Peaks.Pole_shoulder -> "pole-shoulder")
        ns
    in
    "  ! " ^ String.concat ", " s

let all_nodes ?rel_gap ppf results =
  let loops = Loops.cluster ?rel_gap results in
  Format.fprintf ppf
    "Stability Plot peak values for all circuit nodes sorted by loop's \
     natural frequency.@.@.";
  Format.fprintf ppf "%-16s %-16s %-20s@." "Node" "Stability Peak"
    "Natural Frequency, Hz";
  List.iter
    (fun (l : Loops.loop) ->
      Format.fprintf ppf "Loop at %sHz" (Numerics.Engnum.format l.natural_freq);
      (match Loops.estimated_phase_margin l with
       | Some pm ->
         Format.fprintf ppf "   (est. zeta %.2f, phase margin %.0f deg)"
           (Option.value ~default:Float.nan l.worst.peak.Peaks.zeta)
           pm
       | None -> ());
      Format.fprintf ppf "@.";
      List.iter
        (fun (m : Loops.member) ->
          Format.fprintf ppf "%-16s %-16.6f %-20s%s@." m.node
            (Float.abs m.peak.Peaks.value)
            (fmt_freq m.peak.Peaks.freq)
            (notice_suffix m.peak))
        l.members)
    loops;
  let silent =
    List.filter (fun (r : Analysis.node_result) -> r.dominant = None) results
  in
  if silent <> [] then begin
    Format.fprintf ppf "@.Nodes with no complex-pole peak above threshold:@.";
    List.iter
      (fun (r : Analysis.node_result) -> Format.fprintf ppf "  %s@." r.node)
      silent
  end;
  let degraded =
    List.filter (fun (r : Analysis.node_result) -> r.degraded > 0) results
  in
  if degraded <> [] then begin
    Format.fprintf ppf
      "@.Degraded nodes (underflowed/non-finite response samples clamped; \
       peaks near the clamp are floor artefacts):@.";
    List.iter
      (fun (r : Analysis.node_result) ->
        Format.fprintf ppf "  %-16s %d sample(s) clamped@." r.node r.degraded)
      degraded
  end;
  let flagged =
    List.filter (fun (r : Analysis.node_result) -> r.quality <> Analysis.Good) results
  in
  if flagged <> [] then begin
    Format.fprintf ppf
      "@.Numerical health (worst sampled factorisation rcond/residual of \
       the run, plus per-node clamps):@.";
    List.iter
      (fun (r : Analysis.node_result) ->
        Format.fprintf ppf "  %-16s %s@." r.node
          (Analysis.quality_string r.quality))
      flagged
  end

let single_node ppf (r : Analysis.node_result) =
  Format.fprintf ppf "Stability analysis of node %S@." r.node;
  if r.quality <> Analysis.Good then
    Format.fprintf ppf "  numerical health: %s@."
      (Analysis.quality_string r.quality);
  if r.degraded > 0 then
    Format.fprintf ppf
      "  DEGRADED: %d response sample(s) clamped (underflowed notch or \
       non-finite solve); nearby peaks are floor artefacts@."
      r.degraded;
  (match r.peaks with
   | [] ->
     Format.fprintf ppf
       "  no significant stability-plot peaks (no complex roots seen from \
        this node)@."
   | peaks ->
     List.iter
       (fun (p : Peaks.peak) -> Format.fprintf ppf "  %a@." Peaks.pp p)
       peaks);
  match r.dominant with
  | Some d ->
    Format.fprintf ppf "  dominant: peak %.3f at %sHz" d.Peaks.value
      (Numerics.Engnum.format d.Peaks.freq);
    (match (d.zeta, d.phase_margin_deg, d.overshoot_pct) with
     | Some z, Some pm, Some os ->
       Format.fprintf ppf
         " -> zeta %.3f, est. phase margin %.1f deg (Table 1 rule: %.0f \
          deg), est. overshoot %.0f%%"
         z pm
         (Control.Second_order.phase_margin_rule z)
         os
     | _ -> ());
    Format.fprintf ppf "@."
  | None -> Format.fprintf ppf "  no dominant complex pole.@."

let all_nodes_string ?rel_gap results =
  Format.asprintf "%a" (fun ppf -> all_nodes ?rel_gap ppf) results

let single_node_string r = Format.asprintf "%a" single_node r
