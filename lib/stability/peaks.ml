open Numerics

type kind = Complex_pole | Complex_zero

type notice =
  | End_of_range
  | Min_max_doublet
  | Real_pole_like
  | Pole_shoulder

type peak = {
  kind : kind;
  freq : float;
  value : float;
  notices : notice list;
  zeta : float option;
  phase_margin_deg : float option;
  overshoot_pct : float option;
  bracket_ratio : float;
  curvature : float;
}

let analyze ?(min_magnitude = 0.2) ?(doublet_ratio = 3.0)
    ?(keep_shoulders = false) (plot : Stability_plot.t) =
  let raw =
    Peak.find ~min_prominence:(min_magnitude /. 2.) ~x:plot.freqs ~y:plot.p ()
  in
  let relevant =
    List.filter
      (fun (e : Peak.t) ->
        match e.kind with
        | Peak.Minimum -> e.y <= -.min_magnitude
        | Peak.Maximum -> e.y >= min_magnitude)
      raw
  in
  let classified =
    List.map
      (fun (e : Peak.t) ->
        let kind =
          match e.kind with
          | Peak.Minimum -> Complex_pole
          | Peak.Maximum -> Complex_zero
        in
        let notices =
          (if e.at_edge then [ End_of_range ] else [])
          @ (if Float.abs e.y <= 1. then [ Real_pole_like ] else [])
        in
        let estimates =
          if kind = Complex_pole && e.y < -1. then
            Control.Second_order.estimate_from_peak e.y
          else None
        in
        match estimates with
        | Some (zeta, pm, os) ->
          { kind; freq = e.x; value = e.y; notices; zeta = Some zeta;
            phase_margin_deg = Some pm; overshoot_pct = Some os;
            bracket_ratio = e.bracket_ratio; curvature = e.curvature }
        | None ->
          { kind; freq = e.x; value = e.y; notices; zeta = None;
            phase_margin_deg = None; overshoot_pct = None;
            bracket_ratio = e.bracket_ratio; curvature = e.curvature })
      relevant
  in
  (* Shoulder suppression: the second derivative of a sharp pole dip has
     positive flanks of up to ~1/8 of the dip depth within a small
     frequency ratio; a genuine complex zero this close to a pole would
     produce a comparable positive peak instead. *)
  let near ratio a b = Float.max (a /. b) (b /. a) <= ratio in
  let is_shoulder p =
    p.kind = Complex_zero
    && List.exists
         (fun q ->
           q.kind = Complex_pole
           && near 3.0 q.freq p.freq
           && Float.abs q.value >= 5. *. p.value)
         classified
  in
  let classified =
    if keep_shoulders then
      List.map
        (fun p ->
          if is_shoulder p then
            { p with notices = p.notices @ [ Pole_shoulder ] }
          else p)
        classified
    else List.filter (fun p -> not (is_shoulder p)) classified
  in
  (* Doublet detection: a pole and a zero closer than [doublet_ratio]. *)
  let is_doublet p =
    List.exists
      (fun q ->
        q.kind <> p.kind && near doublet_ratio q.freq p.freq)
      classified
  in
  List.map
    (fun p ->
      if is_doublet p then { p with notices = p.notices @ [ Min_max_doublet ] }
      else p)
    classified

let dominant peaks =
  peaks
  |> List.filter (fun p -> p.kind = Complex_pole)
  |> List.sort (fun a b -> compare a.value b.value)
  |> function
  | [] -> None
  | deepest :: _ -> Some deepest

let notice_string = function
  | End_of_range -> "end-of-range"
  | Min_max_doublet -> "min/max doublet"
  | Real_pole_like -> "real-pole-like"
  | Pole_shoulder -> "pole shoulder"

let pp ppf p =
  let kind = match p.kind with
    | Complex_pole -> "pole"
    | Complex_zero -> "zero"
  in
  Format.fprintf ppf "%s at %sHz, P = %.3f" kind (Engnum.format p.freq)
    p.value;
  Option.iter (fun z -> Format.fprintf ppf ", zeta = %.3f" z) p.zeta;
  Option.iter (fun pm -> Format.fprintf ppf ", PM = %.1f deg" pm)
    p.phase_margin_deg;
  match p.notices with
  | [] -> ()
  | ns ->
    Format.fprintf ppf " [%s]"
      (String.concat "; " (List.map notice_string ns))
