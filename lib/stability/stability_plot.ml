open Numerics

type t = {
  freqs : float array;
  mag : float array;
  p : float array;
  clamped : int;
}

let of_magnitude ~freqs ~mag =
  let p, clamped = Deriv.stability_function_clamped ~freq:freqs ~mag in
  { freqs = Array.copy freqs; mag = Array.copy mag; p; clamped }

let of_response w =
  of_magnitude ~freqs:w.Waveform.Freq.freqs ~mag:(Waveform.Freq.mag w)

let degraded t = t.clamped > 0

let value_at_opt t f = Interp.semilogx_opt ~x:t.freqs ~y:t.p f

let value_at t f =
  match value_at_opt t f with
  | Some v -> v
  | None -> invalid_arg "Stability_plot.value_at: frequency outside the sweep"

let global_minimum t =
  let pk = Peak.global_minimum ~x:t.freqs ~y:t.p in
  (pk.Peak.x, pk.Peak.y)

let pp ppf t =
  Format.fprintf ppf "%14s %14s %12s@." "freq [Hz]" "|T|" "P";
  Array.iteri
    (fun k f ->
      Format.fprintf ppf "%14s %14.6g %12.4f@." (Engnum.format f) t.mag.(k)
        t.p.(k))
    t.freqs;
  if t.clamped > 0 then
    Format.fprintf ppf "(degraded: %d magnitude sample(s) clamped)@." t.clamped
