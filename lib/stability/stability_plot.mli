(** The stability plot (paper eq 1.3).

    Given the magnitude of a node's AC response to a current-probe
    excitation, the stability function
    {v P(w) = d2 ln|T| / d (ln w)2 v}
    filters out real poles and zeros (shallow -0.5/+0.5 excursions) while
    every complex-pole pair produces a sharp negative peak of value
    -1/zeta^2 at its natural frequency (eq 1.4) and every complex-zero pair
    a positive peak. *)

type t = {
  freqs : float array;
  mag : float array;   (** |T(j 2 pi f)| — the probed response *)
  p : float array;     (** the stability function at each frequency *)
  clamped : int;       (** magnitude samples clamped before the log-log
                           derivative (underflowed notches, non-finite
                           solver output); [> 0] marks the plot degraded *)
}

val of_response : Numerics.Waveform.Freq.t -> t
(** Compute the plot from a complex response. Magnitude samples that are
    zero, negative, or non-finite (deep-notch underflow, ill-conditioned
    solves) are clamped to a floor instead of raising; the count is
    recorded in [clamped]. *)

val of_magnitude : freqs:float array -> mag:float array -> t

val degraded : t -> bool
(** True when any magnitude sample was clamped; P near those samples is
    a floor artefact, not circuit behaviour. *)

val value_at : t -> float -> float
(** Log-frequency interpolation of the stability function. Raises
    [Invalid_argument] for frequencies outside the swept range — the
    previous behaviour silently clamped to the endpoint value, fabricating
    P beyond the sweep. Use {!value_at_opt} to probe the range. *)

val value_at_opt : t -> float -> float option
(** {!value_at} returning [None] outside the swept range. *)

val global_minimum : t -> float * float
(** [(frequency, value)] of the most negative point (parabolically
    refined when interior). *)

val pp : Format.formatter -> t -> unit
(** Tabular dump (frequency, |T|, P). *)
