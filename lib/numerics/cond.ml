(* 1-norm condition estimation after Hager (1984) as refined by Higham
   (TOMS 1988, the LAPACK [zlacon] scheme): estimate ||A^{-1}||_1 from a
   handful of solves with A and A^T — never forming the inverse — then
   multiply by the directly computed ||A||_1. The estimate is a lower
   bound that is almost always within a small factor of the truth, which
   is exactly the fidelity a health grade needs: it tells us how many
   digits a solve can be trusted to, at the cost of ~5 extra solves on
   an already-computed factor.

   Complex systems use the conjugate-transpose iteration; A^{-H} x is
   obtained from the plain transpose solve as conj(A^{-T} conj(x)). *)

let norm1_vec x = Array.fold_left (fun acc v -> acc +. Cx.mag v) 0. x

let max_iter = 5

let est_inv_1norm ~n ~solve ~solve_t =
  if n <= 0 then 0.
  else begin
    let solve_h x = Array.map Cx.conj (solve_t (Array.map Cx.conj x)) in
    let sign v =
      let m = Cx.mag v in
      if m = 0. then Cx.one else Cx.scale (1. /. m) v
    in
    let x = ref (Array.make n (Cx.of_float (1. /. float_of_int n))) in
    let est = ref 0. in
    let j_prev = ref (-1) in
    (try
       for iter = 1 to max_iter do
         let y = solve !x in
         let e = norm1_vec y in
         if iter > 1 && e <= !est then raise Exit;
         est := Float.max !est e;
         let z = solve_h (Array.map sign y) in
         let j = ref 0 and zmax = ref (-1.) in
         Array.iteri
           (fun i v ->
             let m = Cx.mag v in
             if m > !zmax then begin
               zmax := m;
               j := i
             end)
           z;
         if !j = !j_prev then raise Exit;
         j_prev := !j;
         let ej = Array.make n Cx.zero in
         ej.(!j) <- Cx.one;
         x := ej
       done
     with Exit -> ());
    (* Higham's alternating test vector: a lower bound that catches the
       (rare) starting vectors the power-like iteration stalls on. *)
    let alt =
      Array.init n (fun i ->
          let s = if i land 1 = 0 then 1. else -1. in
          Cx.of_float
            (s *. (1. +. (float_of_int i /. float_of_int (Int.max 1 (n - 1))))))
    in
    let e = 2. *. norm1_vec (solve alt) /. (3. *. float_of_int n) in
    Float.max !est e
  end

let est_1norm ~n ~norm1 ~solve ~solve_t =
  norm1 *. est_inv_1norm ~n ~solve ~solve_t

let sparse a f =
  est_1norm ~n:(Scmat.rows a) ~norm1:(Scmat.norm1 a)
    ~solve:(Scmat.lu_solve f) ~solve_t:(Scmat.lu_solve_t f)

let dense a f =
  est_1norm ~n:(Cmat.rows a) ~norm1:(Cmat.norm1 a) ~solve:(Cmat.lu_solve f)
    ~solve_t:(Cmat.lu_solve_t f)

let rcond cond = if cond > 0. && Float.is_finite cond then 1. /. cond else 0.
