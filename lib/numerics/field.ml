(** Scalar fields over which dense linear algebra is instantiated. *)

module type S = sig
  type t

  val zero : t
  val one : t
  val add : t -> t -> t
  val sub : t -> t -> t
  val mul : t -> t -> t
  val div : t -> t -> t
  val neg : t -> t
  val abs : t -> float
  (** Magnitude used for pivot selection and singularity tests. *)

  val is_zero : t -> bool
  (** Exact-zero test ([abs x = 0.] without the magnitude computation —
      the zero-skip check of the sparse solve hot loops). *)

  val of_float : float -> t
  val pp : Format.formatter -> t -> unit
end

module Float_field : S with type t = float = struct
  type t = float

  let zero = 0.
  let one = 1.
  let add = ( +. )
  let sub = ( -. )
  let mul = ( *. )
  let div = ( /. )
  let neg x = -.x
  let abs = Float.abs
  let is_zero x = x = 0.
  let of_float x = x
  let pp ppf x = Format.fprintf ppf "%.6g" x
end

module Complex_field : S with type t = Complex.t = struct
  type t = Complex.t

  let zero = Complex.zero
  let one = Complex.one
  let add = Complex.add
  let sub = Complex.sub
  let mul = Complex.mul
  let div = Complex.div
  let neg = Complex.neg
  let abs = Complex.norm
  let is_zero (x : t) = x.re = 0. && x.im = 0.
  let of_float re = { Complex.re; im = 0. }
  let pp = Cx.pp
end
