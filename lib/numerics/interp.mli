(** Interpolation and root bracketing on sampled curves. *)

val linear : x:float array -> y:float array -> float -> float
(** Piecewise-linear interpolation; clamps outside the grid. [x] strictly
    increasing. *)

val loglog : x:float array -> y:float array -> float -> float
(** Linear interpolation in (log x, log y); both axes must be positive.
    Natural for magnitude-vs-frequency data. *)

val semilogx : x:float array -> y:float array -> float -> float
(** Linear in (log x, y): phase-vs-frequency data. *)

val linear_opt : x:float array -> y:float array -> float -> float option
(** {!linear} that returns [None] for queries outside [[x.(0), x.(n-1)]]
    instead of silently clamping to the endpoint value. *)

val loglog_opt : x:float array -> y:float array -> float -> float option
(** Out-of-range-aware {!loglog}. *)

val semilogx_opt : x:float array -> y:float array -> float -> float option
(** Out-of-range-aware {!semilogx}. *)

val crossings : x:float array -> y:float array -> float -> float list
(** Abscissae where the piecewise-linear curve crosses level [lvl],
    ascending. Exact sample hits are reported once. *)

val first_crossing : x:float array -> y:float array -> float -> float option

val table_lookup :
  x:float array -> y:float array -> ?clamp:bool -> float -> float
(** Monotone-table lookup used for Table-1-style conversions. With
    [clamp = false] (default [true]) raises [Invalid_argument] outside the
    table. [x] must be strictly monotone (either direction). *)
