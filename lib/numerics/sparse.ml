(** Sparse matrices with LU factorisation, over an arbitrary scalar field.

    Compressed-sparse-column storage and a left-looking Gilbert–Peierls LU
    with partial pivoting (the algorithm of CSparse's [cs_lu]): column j of
    the factors comes from one sparse triangular solve against the columns
    computed so far, with the nonzero pattern discovered by depth-first
    search. Complexity is proportional to the flops actually performed, so
    circuit matrices — a handful of entries per row — factor in near-linear
    time where the dense code pays O(n^3).

    The engine keeps dense LU for everyday circuits (tens of unknowns, see
    DESIGN.md section 6) and switches to this backend when the all-nodes
    scan meets boards with hundreds of nets. *)

exception Singular of int
(** No acceptable pivot in the given column. *)

module Make (F : Field.S) = struct
  type elt = F.t

  type t = {
    rows : int;
    cols : int;
    colptr : int array;   (* length cols+1 *)
    rowidx : int array;   (* length nnz, row index per entry *)
    values : elt array;
  }

  let rows m = m.rows
  let cols m = m.cols
  let nnz m = m.colptr.(m.cols)

  (* Wrap caller-built compressed-sparse-column arrays without copying.
     The plan compiler in the engine builds one pattern per sweep and
     refills a fresh [values] array per frequency point; sharing the
     pattern arrays is what makes the per-point fill O(nnz). *)
  let of_csc ~rows ~cols ~colptr ~rowidx values =
    if rows < 0 || cols < 0 then invalid_arg "Sparse.of_csc";
    if Array.length colptr <> cols + 1 then
      invalid_arg "Sparse.of_csc: colptr length";
    if colptr.(0) <> 0 then invalid_arg "Sparse.of_csc: colptr.(0)";
    for j = 0 to cols - 1 do
      if colptr.(j + 1) < colptr.(j) then
        invalid_arg "Sparse.of_csc: colptr not monotone"
    done;
    let n = colptr.(cols) in
    if Array.length rowidx <> n || Array.length values <> n then
      invalid_arg "Sparse.of_csc: nnz mismatch";
    Array.iter
      (fun i -> if i < 0 || i >= rows then invalid_arg "Sparse.of_csc: row")
      rowidx;
    { rows; cols; colptr; rowidx; values }

  let of_triplets ~rows ~cols triplets =
    if rows < 0 || cols < 0 then invalid_arg "Sparse.of_triplets";
    List.iter
      (fun (i, j, _) ->
        if i < 0 || i >= rows || j < 0 || j >= cols then
          invalid_arg "Sparse.of_triplets: index out of range")
      triplets;
    (* Sum duplicates via per-column accumulation. *)
    let per_col = Array.make cols [] in
    List.iter
      (fun (i, j, v) -> per_col.(j) <- (i, v) :: per_col.(j))
      triplets;
    let colptr = Array.make (cols + 1) 0 in
    let cells =
      Array.map
        (fun entries ->
          let tbl = Hashtbl.create 8 in
          List.iter
            (fun (i, v) ->
              let cur =
                try Hashtbl.find tbl i with Not_found -> F.zero
              in
              Hashtbl.replace tbl i (F.add cur v))
            entries;
          Hashtbl.fold (fun i v acc -> (i, v) :: acc) tbl []
          |> List.filter (fun (_, v) -> F.abs v <> 0.)
          |> List.sort (fun (a, _) (b, _) -> compare a b))
        per_col
    in
    Array.iteri
      (fun j cs -> colptr.(j + 1) <- colptr.(j) + List.length cs)
      cells;
    let n = colptr.(cols) in
    let rowidx = Array.make n 0 and values = Array.make n F.zero in
    Array.iteri
      (fun j cs ->
        List.iteri
          (fun k (i, v) ->
            rowidx.(colptr.(j) + k) <- i;
            values.(colptr.(j) + k) <- v)
          cs)
      cells;
    { rows; cols; colptr; rowidx; values }

  let mulvec m x =
    if Array.length x <> m.cols then invalid_arg "Sparse.mulvec";
    let y = Array.make m.rows F.zero in
    for j = 0 to m.cols - 1 do
      let xj = x.(j) in
      if F.abs xj <> 0. then
        for p = m.colptr.(j) to m.colptr.(j + 1) - 1 do
          let i = m.rowidx.(p) in
          y.(i) <- F.add y.(i) (F.mul m.values.(p) xj)
        done
    done;
    y

  (* Growable column store for the factors. *)
  type colbuf = {
    mutable idx : int array;
    mutable v : elt array;
    mutable len : int;
  }

  let colbuf_make () = { idx = Array.make 16 0; v = Array.make 16 F.zero; len = 0 }

  let colbuf_push cb i x =
    if cb.len = Array.length cb.idx then begin
      let n = 2 * cb.len in
      let idx = Array.make n 0 and v = Array.make n F.zero in
      Array.blit cb.idx 0 idx 0 cb.len;
      Array.blit cb.v 0 v 0 cb.len;
      cb.idx <- idx;
      cb.v <- v
    end;
    cb.idx.(cb.len) <- i;
    cb.v.(cb.len) <- x;
    cb.len <- cb.len + 1

  type factor = {
    n : int;
    l_cols : colbuf array;   (* unit-diagonal L, strictly-below entries,
                                keyed by ORIGINAL row index *)
    u_cols : colbuf array;   (* U incl. diagonal (last entry), keyed by
                                pivot position *)
    pinv : int array;        (* pinv.(orig_row) = pivot position, or -1
                                during factorisation *)
    rowperm : int array;     (* rowperm.(pivot_pos) = original row *)
  }

  (* Left-looking LU with partial pivoting. Rows are renamed lazily:
     pinv.(r) is the pivot position assigned to original row r, or -1.
     With [keep_zeros] every structurally reachable entry is stored even
     when its value is exactly zero — that closure is the frequency-
     independent symbolic pattern the refactorisation path relies on. *)
  let lu_factor_gen ~keep_zeros a =
    if a.rows <> a.cols then invalid_arg "Sparse.lu_factor: square required";
    let n = a.rows in
    let l_cols = Array.init n (fun _ -> colbuf_make ()) in
    let u_cols = Array.init n (fun _ -> colbuf_make ()) in
    let pinv = Array.make n (-1) in
    (* Dense work vector + visited stamp per column. *)
    let x = Array.make n F.zero in
    let mark = Array.make n (-1) in
    let order = Array.make n 0 in   (* DFS postorder of the pattern *)
    (* Iterative DFS over the pattern of L (in permuted row names):
       starting from the rows of A(:,j); an entry whose row r is already
       pivotal (pinv.(r) = k >= 0) depends on column k of L. *)
    let dfs j =
      let norder = ref 0 in
      for p = a.colptr.(j) to a.colptr.(j + 1) - 1 do
        let r0 = a.rowidx.(p) in
        if mark.(r0) <> j then begin
          (* Explicit DFS with a frontier stack of (row, next-child). *)
          let frontier = ref [ (r0, 0) ] in
          mark.(r0) <- j;
          while !frontier <> [] do
            match !frontier with
            | [] -> ()
            | (r, child) :: rest ->
              let k = pinv.(r) in
              if k < 0 then begin
                (* Non-pivotal row: a leaf. *)
                order.(!norder) <- r;
                incr norder;
                frontier := rest
              end
              else begin
                let lc = l_cols.(k) in
                if child < lc.len then begin
                  frontier := (r, child + 1) :: rest;
                  let rc = lc.idx.(child) in
                  if mark.(rc) <> j then begin
                    mark.(rc) <- j;
                    frontier := (rc, 0) :: !frontier
                  end
                end
                else begin
                  (* All children done: postorder emit. *)
                  order.(!norder) <- r;
                  incr norder;
                  frontier := rest
                end
              end
          done
        end
      done;
      !norder
    in
    for j = 0 to n - 1 do
      (* Symbolic: reachable pattern in topological (reverse post) order. *)
      let norder = dfs j in
      (* Numeric scatter of A(:,j). *)
      for p = a.colptr.(j) to a.colptr.(j + 1) - 1 do
        x.(a.rowidx.(p)) <- a.values.(p)
      done;
      (* Eliminate in topological order: process pivotal rows from the
         DFS postorder reversed (dependencies first). *)
      for o = norder - 1 downto 0 do
        let r = order.(o) in
        let k = pinv.(r) in
        if k >= 0 then begin
          let xk = x.(r) in
          if not (F.is_zero xk) then begin
            let lc = l_cols.(k) in
            for q = 0 to lc.len - 1 do
              let rr = lc.idx.(q) in
              x.(rr) <- F.sub x.(rr) (F.mul lc.v.(q) xk)
            done
          end
        end
      done;
      (* Pivot: the largest non-pivotal entry of the pattern. *)
      let pivot_row = ref (-1) in
      let pivot_mag = ref 0. in
      for o = 0 to norder - 1 do
        let r = order.(o) in
        if pinv.(r) < 0 then begin
          let m = F.abs x.(r) in
          if m > !pivot_mag then begin
            pivot_mag := m;
            pivot_row := r
          end
        end
      done;
      if !pivot_row < 0 || !pivot_mag = 0. || not (Float.is_finite !pivot_mag)
      then raise (Singular j);
      let pr = !pivot_row in
      let pv = x.(pr) in
      pinv.(pr) <- j;
      (* Store U(:,j): entries on pivotal rows (position < j), diagonal
         last. *)
      for o = 0 to norder - 1 do
        let r = order.(o) in
        let k = pinv.(r) in
        if k >= 0 && k < j && (keep_zeros || not (F.is_zero x.(r))) then
          colbuf_push u_cols.(j) k x.(r)
      done;
      colbuf_push u_cols.(j) j pv;
      (* Store L(:,j): non-pivotal rows, scaled by the pivot, keyed by
         ORIGINAL row index (renamed on the fly as rows become pivotal).
         One reciprocal per column, multiplies per entry. *)
      let ipv = F.div F.one pv in
      for o = 0 to norder - 1 do
        let r = order.(o) in
        if pinv.(r) < 0 && (keep_zeros || not (F.is_zero x.(r))) then
          colbuf_push l_cols.(j) r (F.mul x.(r) ipv)
      done;
      (* Clear the work vector. *)
      for o = 0 to norder - 1 do
        x.(order.(o)) <- F.zero
      done
    done;
    let rowperm = Array.make n 0 in
    Array.iteri (fun r k -> rowperm.(k) <- r) pinv;
    { n; l_cols; u_cols; pinv; rowperm }

  let lu_factor a = lu_factor_gen ~keep_zeros:false a

  (* ---- symbolic analysis + numeric refactorisation ----

     A pivoting factorisation discovers two frequency-independent things
     about an MNA system: the fill-in pattern of L and U and a pivot
     order that works for matrices of this structure. [analyze] runs the
     pivoting factorisation once, keeping every structurally reachable
     entry (numeric zeros included, so the pattern is a superset of the
     pattern at any other frequency), and freezes both. [refactor] then
     recomputes only the numeric values along the frozen pattern — no
     DFS, no pivot search — which is what turns the per-frequency cost
     of a sweep from "full factorisation" into "one sparse triangular
     replay". *)

  type symbolic = {
    sym_n : int;
    sym_pinv : int array;
    sym_rowperm : int array;
    l_pat : int array array;  (* per pivot column: original row indices *)
    u_pat : int array array;  (* per column: pivot positions ascending,
                                 diagonal (j itself) last *)
  }

  let analyze a =
    let f = lu_factor_gen ~keep_zeros:true a in
    let l_pat = Array.map (fun cb -> Array.sub cb.idx 0 cb.len) f.l_cols in
    let u_pat =
      Array.mapi
        (fun j cb ->
          (* Ascending pivot positions give a valid left-looking update
             order without re-deriving the DFS topological order. *)
          let deps = Array.sub cb.idx 0 (cb.len - 1) in
          Array.sort compare deps;
          Array.append deps [| j |])
        f.u_cols
    in
    ( { sym_n = f.n; sym_pinv = Array.copy f.pinv;
        sym_rowperm = Array.copy f.rowperm; l_pat; u_pat },
      f )

  (* The frozen elimination schedule, exported as plain arrays so a
     kernel compiler can flatten it further (Engine.Kernel bakes it into
     straight-line index programs). Copies: the symbolic analysis stays
     immutable whatever the caller does with the export. *)
  type schedule = {
    sched_n : int;
    sched_pinv : int array;
    sched_rowperm : int array;
    sched_l : int array array;
    sched_u : int array array;
  }

  let schedule_of s =
    { sched_n = s.sym_n;
      sched_pinv = Array.copy s.sym_pinv;
      sched_rowperm = Array.copy s.sym_rowperm;
      sched_l = Array.map Array.copy s.l_pat;
      sched_u = Array.map Array.copy s.u_pat }

  (* Numeric-only refactorisation along a frozen pattern. The matrix must
     have a pattern contained in the analyzed one (the plan layer shares
     the CSC pattern arrays outright, which guarantees it). The frozen
     pivot order performed well at the analysis matrix; [pivot_tol]
     guards the frequencies where it no longer does: a pivot smaller
     than [pivot_tol] times the largest eliminated entry of its column
     raises {!Singular} so the caller can fall back to a fresh pivoting
     factorisation at that point. *)
  let refactor ?(pivot_tol = 0.) sym a =
    if a.rows <> sym.sym_n || a.cols <> sym.sym_n then
      invalid_arg "Sparse.refactor: size mismatch";
    let n = sym.sym_n in
    let mkcols pat =
      Array.map
        (fun idx ->
          { idx; v = Array.make (Array.length idx) F.zero;
            len = Array.length idx })
        pat
    in
    let l_cols = mkcols sym.l_pat and u_cols = mkcols sym.u_pat in
    let x = Array.make n F.zero in
    for j = 0 to n - 1 do
      for p = a.colptr.(j) to a.colptr.(j + 1) - 1 do
        x.(a.rowidx.(p)) <- a.values.(p)
      done;
      let uc = u_cols.(j) in
      for q = 0 to uc.len - 2 do
        let k = uc.idx.(q) in
        let xk = x.(sym.sym_rowperm.(k)) in
        uc.v.(q) <- xk;
        if not (F.is_zero xk) then begin
          let lc = l_cols.(k) in
          for t = 0 to lc.len - 1 do
            let r = lc.idx.(t) in
            x.(r) <- F.sub x.(r) (F.mul lc.v.(t) xk)
          done
        end
      done;
      let pv = x.(sym.sym_rowperm.(j)) in
      let pmag = F.abs pv in
      if pmag = 0. || not (Float.is_finite pmag) then raise (Singular j);
      let lc = l_cols.(j) in
      if pivot_tol > 0. then begin
        let colmax = ref pmag in
        for t = 0 to lc.len - 1 do
          colmax := Float.max !colmax (F.abs x.(lc.idx.(t)))
        done;
        if pmag < pivot_tol *. !colmax then raise (Singular j)
      end;
      uc.v.(uc.len - 1) <- pv;
      let ipv = F.div F.one pv in
      for t = 0 to lc.len - 1 do
        lc.v.(t) <- F.mul x.(lc.idx.(t)) ipv
      done;
      (* The touched work entries are exactly the frozen column pattern
         (A's rows are a subset of it). *)
      for q = 0 to uc.len - 1 do
        x.(sym.sym_rowperm.(uc.idx.(q))) <- F.zero
      done;
      for t = 0 to lc.len - 1 do
        x.(lc.idx.(t)) <- F.zero
      done
    done;
    { n; l_cols; u_cols; pinv = sym.sym_pinv; rowperm = sym.sym_rowperm }

  let lu_solve f b =
    if Array.length b <> f.n then invalid_arg "Sparse.lu_solve";
    let n = f.n in
    (* Forward: y in pivot order; L columns hold original row names, so
       work on a copy indexed by original rows and read pivots through
       pinv. *)
    let w = Array.copy b in
    (* Row r with pinv.(r) = k means w.(r) is the k-th equation. Process
       columns in order: subtract L(:,k) * y_k. y_k lives at the pivot row
       of column k. *)
    for k = 0 to n - 1 do
      let yk = w.(f.rowperm.(k)) in
      if not (F.is_zero yk) then begin
        let lc = f.l_cols.(k) in
        for q = 0 to lc.len - 1 do
          let r = lc.idx.(q) in
          w.(r) <- F.sub w.(r) (F.mul lc.v.(q) yk)
        done
      end
    done;
    (* Back substitution on U (U is stored per column with the diagonal
       last, entries keyed by pivot position); the permuted intermediate
       y.(k) lives at w.(rowperm.(k)) — no separate copy. *)
    let xsol = Array.make n F.zero in
    for k = n - 1 downto 0 do
      let uc = f.u_cols.(k) in
      let diag = uc.v.(uc.len - 1) in
      let xk = F.div w.(f.rowperm.(k)) diag in
      xsol.(k) <- xk;
      (* U(:,k)'s above-diagonal entries feed earlier equations. *)
      if not (F.is_zero xk) then
        for q = 0 to uc.len - 2 do
          let i = f.rowperm.(uc.idx.(q)) in
          w.(i) <- F.sub w.(i) (F.mul uc.v.(q) xk)
        done
    done;
    xsol

  (* One factorisation serving many excitations: the all-nodes probing
     mode solves the same factor against one unit-current RHS per net.
     Batched column-outer / RHS-inner so each L and U column is walked
     once per frequency point, not once per net. *)
  let lu_solve_many f bs =
    let m = Array.length bs in
    if m <= 1 then Array.map (fun b -> lu_solve f b) bs
    else begin
      let n = f.n in
      Array.iter
        (fun b ->
          if Array.length b <> n then invalid_arg "Sparse.lu_solve_many")
        bs;
      let ws = Array.map Array.copy bs in
      for k = 0 to n - 1 do
        let pr = f.rowperm.(k) in
        let lc = f.l_cols.(k) in
        if lc.len > 0 then
          for s = 0 to m - 1 do
            let w = ws.(s) in
            let yk = w.(pr) in
            (* Unit-current probes keep the forward sweep sparse: most
               workspaces are still zero at most pivots. *)
            if not (F.is_zero yk) then
              for q = 0 to lc.len - 1 do
                let r = lc.idx.(q) in
                w.(r) <- F.sub w.(r) (F.mul lc.v.(q) yk)
              done
          done
      done;
      let xs = Array.init m (fun _ -> Array.make n F.zero) in
      for k = n - 1 downto 0 do
        let uc = f.u_cols.(k) in
        let pr = f.rowperm.(k) in
        (* One reciprocal per column amortised over the whole batch; the
           permuted intermediates stay in the forward workspaces. *)
        let idiag = F.div F.one uc.v.(uc.len - 1) in
        for s = 0 to m - 1 do
          let w = ws.(s) in
          let xk = F.mul w.(pr) idiag in
          xs.(s).(k) <- xk;
          if not (F.is_zero xk) then
            for q = 0 to uc.len - 2 do
              let i = f.rowperm.(uc.idx.(q)) in
              w.(i) <- F.sub w.(i) (F.mul uc.v.(q) xk)
            done
        done
      done;
      xs
    end

  (* Transpose solve A^T x = b from the same factor. With PA = LU
     (pivot-position rows, natural columns), A^T = U^T L^T P: a forward
     pass on U^T (lower triangular, one equation per natural column,
     read straight off the stored U columns), a backward pass on the
     unit-triangular L^T (rows of l_cols renamed through pinv are all
     later pivots), then un-permute. Needed by the Hager/Higham
     condition estimator, which alternates A^{-1} and A^{-T} products. *)
  let lu_solve_t f b =
    if Array.length b <> f.n then invalid_arg "Sparse.lu_solve_t";
    let n = f.n in
    let w = Array.make n F.zero in
    for j = 0 to n - 1 do
      let uc = f.u_cols.(j) in
      let acc = ref b.(j) in
      for q = 0 to uc.len - 2 do
        acc := F.sub !acc (F.mul uc.v.(q) w.(uc.idx.(q)))
      done;
      w.(j) <- F.div !acc uc.v.(uc.len - 1)
    done;
    for k = n - 1 downto 0 do
      let lc = f.l_cols.(k) in
      let acc = ref w.(k) in
      for q = 0 to lc.len - 1 do
        acc := F.sub !acc (F.mul lc.v.(q) w.(f.pinv.(lc.idx.(q))))
      done;
      w.(k) <- !acc
    done;
    let x = Array.make n F.zero in
    for k = 0 to n - 1 do
      x.(f.rowperm.(k)) <- w.(k)
    done;
    x

  let norm1 m =
    let worst = ref 0. in
    for j = 0 to m.cols - 1 do
      let s = ref 0. in
      for p = m.colptr.(j) to m.colptr.(j + 1) - 1 do
        s := !s +. F.abs m.values.(p)
      done;
      worst := Float.max !worst !s
    done;
    !worst

  (* Element growth through elimination: max |U| over max |A|. Large
     growth means the frozen pivot order is shedding digits even when no
     pivot trips the refactor tolerance. *)
  let pivot_growth a f =
    let amax = ref 0. in
    Array.iter (fun v -> amax := Float.max !amax (F.abs v)) a.values;
    let umax = ref 0. in
    Array.iter
      (fun uc ->
        for q = 0 to uc.len - 1 do
          umax := Float.max !umax (F.abs uc.v.(q))
        done)
      f.u_cols;
    if !amax = 0. then 0. else !umax /. !amax

  let residual_inf m x b =
    let ax = mulvec m x in
    let worst = ref 0. in
    Array.iteri
      (fun i v -> worst := Float.max !worst (F.abs (F.sub v b.(i))))
      ax;
    !worst
end
