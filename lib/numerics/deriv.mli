(** Numerical differentiation on (possibly non-uniform) sample grids.

    These operators are the numerical heart of the stability plot
    (paper eq. 1.3): derivatives of [ln |T|] with respect to [ln w]. *)

val first : x:float array -> y:float array -> float array
(** Three-point Lagrange first derivative dy/dx on a non-uniform grid;
    second-order accurate in the interior, one-sided at the ends. Requires
    at least 3 strictly increasing abscissae. *)

val second : x:float array -> y:float array -> float array
(** Three-point second derivative d2y/dx2 (first-order accurate on
    non-uniform grids, second-order on uniform ones). End points copy their
    neighbour's value. *)

val log_log_slope : freq:float array -> mag:float array -> float array
(** [d ln mag / d ln freq] — the normalised first derivative of eq. 1.3
    ("derivative of the magnitude normalised to frequency and magnitude").
    Requires strictly positive [freq] and [mag]. *)

val stability_function : freq:float array -> mag:float array -> float array
(** The paper's stability function P (eq. 1.3): the frequency-normalised
    derivative of {!log_log_slope}, i.e. [d2 ln mag / d (ln freq)2].
    Negative peaks mark complex-pole pairs, positive peaks complex zeros;
    at a pole's natural frequency P = -1/zeta^2 (eq. 1.4). *)

val stability_function_clamped :
  freq:float array -> mag:float array -> float array * int
(** Robust {!stability_function}: magnitude samples that are non-finite,
    non-positive, or more than 14 decades below the largest valid sample
    (deep-notch underflow) are clamped to that floor instead of raising
    [Invalid_argument]. Returns the stability function together with the
    number of clamped samples, so callers can flag the node as degraded.
    [freq] must still be strictly positive and increasing. If no sample
    is positive and finite the whole array is floored at [1e-300] and
    every sample counts as clamped. *)

val stability_function_two_pass : freq:float array -> mag:float array -> float array
(** Literal two-pass form of eq. 1.3 as the paper's waveform calculator
    computes it: first derivative of [mag], normalised by [freq/mag],
    differentiated again and normalised by [freq]. Agrees with
    {!stability_function} up to discretisation error; kept as an
    independently coded cross-check. *)
