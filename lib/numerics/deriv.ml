let check_grid name x y =
  let n = Array.length x in
  if n < 3 then invalid_arg (name ^ ": need at least 3 points");
  if Array.length y <> n then invalid_arg (name ^ ": x/y length mismatch");
  for k = 1 to n - 1 do
    if x.(k) <= x.(k - 1) then
      invalid_arg (name ^ ": abscissae must be strictly increasing")
  done

(* Derivative of the Lagrange parabola through (x0,y0) (x1,y1) (x2,y2),
   evaluated at [at]. *)
let parabola_slope x0 y0 x1 y1 x2 y2 at =
  (y0 *. ((2. *. at) -. x1 -. x2) /. ((x0 -. x1) *. (x0 -. x2)))
  +. (y1 *. ((2. *. at) -. x0 -. x2) /. ((x1 -. x0) *. (x1 -. x2)))
  +. (y2 *. ((2. *. at) -. x0 -. x1) /. ((x2 -. x0) *. (x2 -. x1)))

let first ~x ~y =
  check_grid "Deriv.first" x y;
  let n = Array.length x in
  Array.init n (fun i ->
      let j = if i = 0 then 1 else if i = n - 1 then n - 2 else i in
      parabola_slope x.(j - 1) y.(j - 1) x.(j) y.(j) x.(j + 1) y.(j + 1) x.(i))

(* Second derivative of the same parabola (constant over the stencil). *)
let parabola_curvature x0 y0 x1 y1 x2 y2 =
  2.
  *. ((y0 /. ((x0 -. x1) *. (x0 -. x2)))
     +. (y1 /. ((x1 -. x0) *. (x1 -. x2)))
     +. (y2 /. ((x2 -. x0) *. (x2 -. x1))))

let second ~x ~y =
  check_grid "Deriv.second" x y;
  let n = Array.length x in
  Array.init n (fun i ->
      let j = if i = 0 then 1 else if i = n - 1 then n - 2 else i in
      parabola_curvature x.(j - 1) y.(j - 1) x.(j) y.(j) x.(j + 1) y.(j + 1))

let check_positive name a =
  Array.iter
    (fun v ->
      if v <= 0. || not (Float.is_finite v) then
        invalid_arg (name ^ ": values must be positive and finite"))
    a

let log_log_slope ~freq ~mag =
  check_positive "Deriv.log_log_slope (freq)" freq;
  check_positive "Deriv.log_log_slope (mag)" mag;
  first ~x:(Array.map log freq) ~y:(Array.map log mag)

let stability_function ~freq ~mag =
  check_positive "Deriv.stability_function (freq)" freq;
  check_positive "Deriv.stability_function (mag)" mag;
  second ~x:(Array.map log freq) ~y:(Array.map log mag)

(* Deep notches underflow |T| to 0 (or the solver yields nan/inf on an
   ill-conditioned point); one such sample must degrade the node, not
   kill a whole all-nodes run. Non-positive and non-finite magnitudes
   are clamped to a floor 14 decades under the largest valid sample —
   far below any physical response yet safely inside log's domain. *)
let clamp_floor_ratio = 1e-14

let stability_function_clamped ~freq ~mag =
  check_positive "Deriv.stability_function_clamped (freq)" freq;
  let max_valid =
    Array.fold_left
      (fun acc v -> if Float.is_finite v && v > 0. then Float.max acc v else acc)
      0. mag
  in
  let floor =
    if max_valid > 0. then max_valid *. clamp_floor_ratio else 1e-300
  in
  let clamped = ref 0 in
  let safe =
    Array.map
      (fun v ->
        if Float.is_finite v && v >= floor then v
        else begin
          incr clamped;
          floor
        end)
      mag
  in
  (second ~x:(Array.map log freq) ~y:(Array.map log safe), !clamped)

let stability_function_two_pass ~freq ~mag =
  check_positive "Deriv.stability_function_two_pass (freq)" freq;
  check_positive "Deriv.stability_function_two_pass (mag)" mag;
  let dm = first ~x:freq ~y:mag in
  let inner = Array.mapi (fun k d -> d *. freq.(k) /. mag.(k)) dm in
  let outer = first ~x:freq ~y:inner in
  Array.mapi (fun k d -> d *. freq.(k)) outer
