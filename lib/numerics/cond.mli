(** 1-norm condition estimation (Hager/Higham) from an existing LU
    factor — about five extra solves, no inverse formed. The estimate is
    a lower bound on the true condition number, in practice within a
    small factor; see the implementation header. *)

val est_inv_1norm :
  n:int ->
  solve:(Cx.t array -> Cx.t array) ->
  solve_t:(Cx.t array -> Cx.t array) ->
  float
(** Estimate [||A^{-1}||_1] given solvers for [A x = b] ([solve]) and
    [A^T x = b] ([solve_t]). *)

val est_1norm :
  n:int ->
  norm1:float ->
  solve:(Cx.t array -> Cx.t array) ->
  solve_t:(Cx.t array -> Cx.t array) ->
  float
(** [est_1norm ~n ~norm1 ~solve ~solve_t] is the condition estimate
    [norm1 * est_inv_1norm ...], with [norm1 = ||A||_1]. *)

val sparse : Scmat.t -> Scmat.factor -> float
(** Condition estimate for a sparse complex system from its factor. *)

val dense : Cmat.t -> Cmat.factor -> float
(** Condition estimate for a dense complex system from its factor. *)

val rcond : float -> float
(** Reciprocal condition: [1/cond], or [0.] for non-positive or
    non-finite input. Small rcond = few trustworthy digits. *)
