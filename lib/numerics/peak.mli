(** Extremum detection on sampled curves, with parabolic refinement.

    Used to locate stability-plot peaks (complex poles/zeros) and to flag
    the paper's special cases: extrema sitting at the edge of the sweep
    range ("end-of-range") cannot be trusted as natural frequencies. *)

type kind = Minimum | Maximum

type t = {
  kind : kind;
  index : int;          (** Sample index of the discrete extremum. *)
  x : float;            (** Refined abscissa (parabolic, in log-x). *)
  y : float;            (** Refined extremum value. *)
  at_edge : bool;       (** True when the extremum is the first or last sample. *)
  bracket_ratio : float;
  (** Frequency ratio [x.(i+1)/x.(i-1)] of the refinement bracket;
      [1.0] for edge/unrefined extrema. Wide brackets mean the vertex
      interpolates over a coarse grid. *)
  curvature : float;
  (** Relative slope change across the stencil (the collinearity-guard
      quantity); near zero the refined position is noise-dominated.
      [0.0] for edge/unrefined extrema. *)
}

val find :
  ?min_prominence:float -> x:float array -> y:float array -> unit -> t list
(** All local extrema of [y] over [x], in ascending [x] order. A sample is a
    local minimum (maximum) when it is strictly below (above) both
    neighbours; plateaus are reported once at their centre. Extrema whose
    prominence (height above/below the higher/lower of the two neighbouring
    crossings of the same level) is below [min_prominence] (default 0) are
    dropped. Interior extrema are refined by fitting a parabola in
    [log x]; edge extrema are reported at their sample position with
    [at_edge = true]. [x] must be strictly increasing and positive. *)

val global_minimum : x:float array -> y:float array -> t
(** The most negative point of the curve as a (possibly edge) peak. *)

val refine_parabolic :
  x0:float -> y0:float -> x1:float -> y1:float -> x2:float -> y2:float ->
  float * float
(** Vertex of the parabola through three points (abscissae need not be
    uniform). Returns the vertex [(xv, yv)], clamped to [[x0, x2]]; falls
    back to the middle point when the three points are collinear to within
    a relative tolerance (the slope difference is below [1e-9] of the
    larger chord slope). *)

val refine_quality :
  x0:float -> y0:float -> x1:float -> y1:float -> x2:float -> y2:float ->
  float
(** Conditioning of the parabolic fit: relative slope change across the
    stencil, [0.] when the samples are flat. *)
