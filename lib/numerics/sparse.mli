(** Sparse matrices with LU factorisation over an arbitrary scalar field
    (left-looking Gilbert-Peierls with partial pivoting). See the
    implementation header for the algorithm; {!Srmat} and {!Scmat} are the
    real and complex instantiations. *)

exception Singular of int

module Make (F : Field.S) : sig
  type elt = F.t
  type t

  val of_triplets : rows:int -> cols:int -> (int * int * elt) list -> t
  (** Duplicate entries are summed; exact zeros dropped. *)

  val of_csc :
    rows:int -> cols:int -> colptr:int array -> rowidx:int array ->
    elt array -> t
  (** Wrap caller-built compressed-sparse-column arrays (no copy; the
      caller must not mutate [colptr]/[rowidx] afterwards). Row indices
      within a column need not be sorted. The AC plan compiler builds one
      pattern per sweep and re-wraps a fresh value array per frequency
      point — an O(nnz) numeric fill with no triplet harvesting. *)

  val rows : t -> int
  val cols : t -> int
  val nnz : t -> int
  val mulvec : t -> elt array -> elt array

  type factor

  val lu_factor : t -> factor
  (** Raises {!Singular} when a column has no usable pivot. *)

  type symbolic
  (** Frequency-independent part of a factorisation: fill-in pattern of
      L and U plus the pivot order, frozen by {!analyze}. *)

  val analyze : t -> symbolic * factor
  (** Pivoting factorisation that also freezes the symbolic analysis.
      Every structurally reachable entry is kept (numeric zeros
      included), so the frozen pattern covers the matrix at any other
      parameter value with the same structure. Returns the factor at the
      analysis values too, so the first point of a sweep is not paid
      twice. Raises {!Singular} like {!lu_factor}. *)

  val refactor : ?pivot_tol:float -> symbolic -> t -> factor
  (** Numeric-only refactorisation along the frozen pattern: no DFS, no
      pivot search — the per-frequency cost of a sweep. The matrix
      pattern must be contained in the analyzed one (sharing the
      {!of_csc} pattern arrays guarantees it). Raises {!Singular} when a
      frozen pivot is exactly zero, non-finite, or — with [pivot_tol]
      > 0 — smaller than [pivot_tol] times the largest eliminated entry
      of its column; callers fall back to a fresh {!analyze} then. *)

  type schedule = {
    sched_n : int;
    sched_pinv : int array;     (** original row -> pivot position *)
    sched_rowperm : int array;  (** pivot position -> original row *)
    sched_l : int array array;
    (** per pivot column: original row indices of the strictly-lower
        entries, in elimination storage order *)
    sched_u : int array array;
    (** per column: dependency pivot positions in ascending order, with
        the diagonal position appended last — the exact order
        {!refactor} replays *)
  }
  (** The frozen elimination schedule behind a {!symbolic}, exported as
      plain arrays so kernel compilers ({!Engine.Kernel}) can flatten it
      into straight-line index programs. *)

  val schedule_of : symbolic -> schedule
  (** Copies — the symbolic analysis stays immutable whatever the caller
      does with the export. *)

  val lu_solve : factor -> elt array -> elt array

  val lu_solve_many : factor -> elt array array -> elt array array
  (** Solve one factor against many right-hand sides (the multi-RHS
      batch of the all-nodes probing mode). *)

  val lu_solve_t : factor -> elt array -> elt array
  (** Solve [A^T x = b] from the same factor (no transposed copy). Used
      by the Hager/Higham condition estimator. *)

  val norm1 : t -> float
  (** Maximum column absolute sum. *)

  val pivot_growth : t -> factor -> float
  (** Element growth [max|U| / max|A|] of a factorisation of [t]; large
      values mean the (possibly frozen) pivot order is losing digits. *)

  val residual_inf : t -> elt array -> elt array -> float
end
