type kind = Minimum | Maximum

type t = {
  kind : kind;
  index : int;
  x : float;
  y : float;
  at_edge : bool;
  bracket_ratio : float;
  curvature : float;
}

let refine_parabolic ~x0 ~y0 ~x1 ~y1 ~x2 ~y2 =
  (* Vertex of the Lagrange parabola; derived from setting its derivative
     to zero. Denominator vanishes for collinear points. The collinearity
     guard must be relative: with nearly (but not exactly) collinear
     points the slope difference is pure rounding noise, and dividing by
     it throws the vertex arbitrarily far from the stencil. *)
  let d01 = (y1 -. y0) /. (x1 -. x0) in
  let d12 = (y2 -. y1) /. (x2 -. x1) in
  let slope_scale = Float.max (Float.abs d01) (Float.abs d12) in
  let curvature = (d12 -. d01) /. (x2 -. x0) in
  if Float.abs (d12 -. d01) <= 1e-9 *. slope_scale || curvature = 0. then
    (x1, y1)
  else begin
    let xv = ((x0 +. x1) /. 2.) -. (d01 /. (2. *. curvature)) in
    (* The true extremum lies inside the bracket; a vertex outside it is a
       conditioning artefact, so clamp before evaluating. *)
    let xv = Float.min x2 (Float.max x0 xv) in
    (* Evaluate the parabola (Newton form) at the vertex. *)
    let yv = y0 +. (d01 *. (xv -. x0)) +. (curvature *. (xv -. x0) *. (xv -. x1)) in
    (xv, yv)
  end

(* How well-conditioned the parabolic vertex is: the relative slope
   change across the stencil, the same quantity the collinearity guard
   above compares to 1e-9. Near zero the vertex position is dominated
   by rounding noise in the samples. *)
let refine_quality ~x0 ~y0 ~x1 ~y1 ~x2 ~y2 =
  let d01 = (y1 -. y0) /. (x1 -. x0) in
  let d12 = (y2 -. y1) /. (x2 -. x1) in
  let slope_scale = Float.max (Float.abs d01) (Float.abs d12) in
  if slope_scale = 0. then 0. else Float.abs (d12 -. d01) /. slope_scale

(* Refine an interior extremum at sample [i] using log-x abscissae, which is
   the natural axis for frequency-domain peaks. Also reports the
   conditioning of the fit: bracket width as a frequency ratio, and the
   relative curvature of the stencil. *)
let refined x y i =
  let lx k = log x.(k) in
  let xv, yv =
    refine_parabolic ~x0:(lx (i - 1)) ~y0:y.(i - 1) ~x1:(lx i) ~y1:y.(i)
      ~x2:(lx (i + 1)) ~y2:y.(i + 1)
  in
  let quality =
    refine_quality ~x0:(lx (i - 1)) ~y0:y.(i - 1) ~x1:(lx i) ~y1:y.(i)
      ~x2:(lx (i + 1)) ~y2:y.(i + 1)
  in
  (exp xv, yv, x.(i + 1) /. x.(i - 1), quality)

let prominence_of y i kind =
  (* Height of the extremum above/below its key saddle: walk outward on
     each side, tracking the most opposing level reached, until a more
     extreme sample appears (the saddle closes) or the data ends. A side
     with no samples at all (extremum at the array edge) imposes no
     barrier. *)
  let n = Array.length y in
  let better a b = match kind with Minimum -> a < b | Maximum -> a > b in
  let walk step =
    let rec go k saddle =
      if k < 0 || k >= n then saddle
      else if better y.(k) y.(i) then saddle
      else
        let saddle =
          match saddle with
          | Some s when better y.(k) s -> saddle
          | _ -> Some y.(k)
        in
        go (k + step) saddle
    in
    go (i + step) None
  in
  let barrier =
    match (walk (-1), walk 1) with
    | Some l, Some r -> Some (if better l r then l else r)
    | Some l, None -> Some l
    | None, Some r -> Some r
    | None, None -> None
  in
  match barrier with
  | Some b -> Float.abs (b -. y.(i))
  | None -> Float.infinity

let find ?(min_prominence = 0.) ~x ~y () =
  let n = Array.length x in
  if Array.length y <> n then invalid_arg "Peak.find: x/y length mismatch";
  if n < 3 then []
  else begin
    let out = ref [] in
    let emit kind i at_edge =
      let xr, yr, bracket_ratio, curvature =
        if at_edge || i = 0 || i = n - 1 then (x.(i), y.(i), 1., 0.)
        else refined x y i
      in
      if prominence_of y i kind >= min_prominence then
        out :=
          { kind; index = i; x = xr; y = yr; at_edge; bracket_ratio; curvature }
          :: !out
    in
    (* Interior extrema, treating plateaus as a single extremum at their
       centre. *)
    let i = ref 1 in
    while !i < n - 1 do
      let j = ref !i in
      while !j < n - 1 && y.(!j + 1) = y.(!i) do incr j done;
      let left = y.(!i - 1) and here = y.(!i) and right = y.(Int.min (n - 1) (!j + 1)) in
      let centre = (!i + !j) / 2 in
      if here < left && here < right then emit Minimum centre false
      else if here > left && here > right then emit Maximum centre false;
      i := !j + 1
    done;
    (* Edge extrema: monotone approach into the boundary. Derivative-based
       curves often end in a short run of equal samples (one-sided stencils
       copy their neighbour), so compare against the first differing
       sample. *)
    let first_differing start step =
      let rec go k =
        if k < 0 || k >= n then None
        else if y.(k) <> y.(start) then Some y.(k)
        else go (k + step)
      in
      go (start + step)
    in
    (match first_differing 0 1 with
     | Some inner when y.(0) < inner -> emit Minimum 0 true
     | Some inner when y.(0) > inner -> emit Maximum 0 true
     | _ -> ());
    (match first_differing (n - 1) (-1) with
     | Some inner when y.(n - 1) < inner -> emit Minimum (n - 1) true
     | Some inner when y.(n - 1) > inner -> emit Maximum (n - 1) true
     | _ -> ());
    List.sort (fun a b -> compare a.x b.x) !out
  end

let global_minimum ~x ~y =
  let i = Vec.argmin y in
  let n = Array.length y in
  let at_edge = i = 0 || i = n - 1 in
  let xr, yr, bracket_ratio, curvature =
    if at_edge then (x.(i), y.(i), 1., 0.) else refined x y i
  in
  { kind = Minimum; index = i; x = xr; y = yr; at_edge; bracket_ratio;
    curvature }
