let check name x y =
  let n = Array.length x in
  if n < 2 then invalid_arg (name ^ ": need at least 2 points");
  if Array.length y <> n then invalid_arg (name ^ ": x/y length mismatch")

let bracket x v =
  (* Largest i with x.(i) <= v, clamped to [0, n-2]; x ascending. *)
  let n = Array.length x in
  if v <= x.(0) then 0
  else if v >= x.(n - 1) then n - 2
  else begin
    let lo = ref 0 and hi = ref (n - 1) in
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if x.(mid) <= v then lo := mid else hi := mid
    done;
    !lo
  end

let linear ~x ~y v =
  check "Interp.linear" x y;
  let n = Array.length x in
  if v <= x.(0) then y.(0)
  else if v >= x.(n - 1) then y.(n - 1)
  else begin
    let i = bracket x v in
    let t = (v -. x.(i)) /. (x.(i + 1) -. x.(i)) in
    y.(i) +. (t *. (y.(i + 1) -. y.(i)))
  end

(* Option-returning variants: [None] outside [x.(0), x.(n-1)] instead of
   clamping to the endpoint value. Callers that would otherwise fabricate
   data beyond the swept range (e.g. P(w) past the sweep edges) use
   these. *)
let linear_opt ~x ~y v =
  check "Interp.linear_opt" x y;
  let n = Array.length x in
  if v < x.(0) || v > x.(n - 1) then None else Some (linear ~x ~y v)

let loglog ~x ~y v =
  check "Interp.loglog" x y;
  exp (linear ~x:(Array.map log x) ~y:(Array.map log y) (log v))

let loglog_opt ~x ~y v =
  check "Interp.loglog_opt" x y;
  let n = Array.length x in
  if v < x.(0) || v > x.(n - 1) then None
  else Some (exp (linear ~x:(Array.map log x) ~y:(Array.map log y) (log v)))

let semilogx ~x ~y v =
  check "Interp.semilogx" x y;
  linear ~x:(Array.map log x) ~y (log v)

let semilogx_opt ~x ~y v =
  check "Interp.semilogx_opt" x y;
  let n = Array.length x in
  if v < x.(0) || v > x.(n - 1) then None
  else Some (linear ~x:(Array.map log x) ~y (log v))

let crossings ~x ~y lvl =
  check "Interp.crossings" x y;
  let out = ref [] in
  let n = Array.length x in
  for i = 0 to n - 2 do
    let a = y.(i) -. lvl and b = y.(i + 1) -. lvl in
    if a = 0. then begin
      (* Count an exact hit only once (at the left end of its segment). *)
      if i = 0 || y.(i - 1) -. lvl <> 0. then out := x.(i) :: !out
    end
    else if (a < 0. && b > 0.) || (a > 0. && b < 0.) then begin
      let t = a /. (a -. b) in
      out := (x.(i) +. (t *. (x.(i + 1) -. x.(i)))) :: !out
    end
  done;
  if y.(n - 1) -. lvl = 0. && (n < 2 || y.(n - 2) -. lvl <> 0.) then
    out := x.(n - 1) :: !out;
  List.sort compare !out

let first_crossing ~x ~y lvl =
  match crossings ~x ~y lvl with [] -> None | c :: _ -> Some c

let table_lookup ~x ~y ?(clamp = true) v =
  check "Interp.table_lookup" x y;
  let ascending = x.(1) > x.(0) in
  let x', y' =
    if ascending then (x, y)
    else begin
      let n = Array.length x in
      ( Array.init n (fun k -> x.(n - 1 - k)),
        Array.init n (fun k -> y.(n - 1 - k)) )
    end
  in
  let n = Array.length x' in
  if (v < x'.(0) || v > x'.(n - 1)) && not clamp then
    invalid_arg "Interp.table_lookup: out of range";
  linear ~x:x' ~y:y' v
