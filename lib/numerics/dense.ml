(** Dense matrices with LU factorisation over an arbitrary scalar field.

    Circuit matrices in this project are small (tens to a few hundred
    unknowns), so a dense row-major representation with partial-pivoting LU
    is both simple and fast enough; see DESIGN.md section 6. *)

exception Singular of int
(** Raised by factorisation when no usable pivot exists; the payload is the
    elimination column at which the matrix was found singular. *)

module Make (F : Field.S) = struct
  type elt = F.t

  type t = { rows : int; cols : int; data : elt array }

  let create rows cols =
    if rows < 0 || cols < 0 then invalid_arg "Dense.create";
    { rows; cols; data = Array.make (rows * cols) F.zero }

  let init rows cols f =
    { rows; cols;
      data = Array.init (rows * cols) (fun k -> f (k / cols) (k mod cols)) }

  let identity n = init n n (fun i j -> if i = j then F.one else F.zero)
  let rows m = m.rows
  let cols m = m.cols
  let get m i j = m.data.((i * m.cols) + j)
  let set m i j v = m.data.((i * m.cols) + j) <- v
  let update m i j f = set m i j (f (get m i j))
  let add_to m i j v = update m i j (fun x -> F.add x v)
  let copy m = { m with data = Array.copy m.data }

  let of_arrays a =
    let rows = Array.length a in
    if rows = 0 then { rows = 0; cols = 0; data = [||] }
    else begin
      let cols = Array.length a.(0) in
      Array.iter
        (fun r -> if Array.length r <> cols then invalid_arg "Dense.of_arrays")
        a;
      init rows cols (fun i j -> a.(i).(j))
    end

  let to_arrays m = Array.init m.rows (fun i -> Array.init m.cols (get m i))

  let transpose m = init m.cols m.rows (fun i j -> get m j i)

  let mul a b =
    if a.cols <> b.rows then invalid_arg "Dense.mul: dimensions";
    let c = create a.rows b.cols in
    for i = 0 to a.rows - 1 do
      for k = 0 to a.cols - 1 do
        let aik = get a i k in
        if F.abs aik <> 0. then
          for j = 0 to b.cols - 1 do
            add_to c i j (F.mul aik (get b k j))
          done
      done
    done;
    c

  let mulvec m x =
    if m.cols <> Array.length x then invalid_arg "Dense.mulvec: dimensions";
    Array.init m.rows (fun i ->
        let s = ref F.zero in
        for j = 0 to m.cols - 1 do
          s := F.add !s (F.mul (get m i j) x.(j))
        done;
        !s)

  type factor = { lu : t; perm : int array }

  (* Doolittle LU with partial pivoting; L has a unit diagonal and is stored
     strictly below it, U on and above. *)
  let lu_factor m =
    if m.rows <> m.cols then invalid_arg "Dense.lu_factor: square required";
    let n = m.rows in
    let a = copy m in
    let perm = Array.init n (fun i -> i) in
    for col = 0 to n - 1 do
      let pivot = ref col in
      let best = ref (F.abs (get a col col)) in
      for r = col + 1 to n - 1 do
        let v = F.abs (get a r col) in
        if v > !best then begin best := v; pivot := r end
      done;
      if !best = 0. || not (Float.is_finite !best) then raise (Singular col);
      if !pivot <> col then begin
        for j = 0 to n - 1 do
          let tmp = get a col j in
          set a col j (get a !pivot j);
          set a !pivot j tmp
        done;
        let tmp = perm.(col) in
        perm.(col) <- perm.(!pivot);
        perm.(!pivot) <- tmp
      end;
      let d = get a col col in
      for r = col + 1 to n - 1 do
        let factor = F.div (get a r col) d in
        set a r col factor;
        if F.abs factor <> 0. then
          for j = col + 1 to n - 1 do
            set a r j (F.sub (get a r j) (F.mul factor (get a col j)))
          done
      done
    done;
    { lu = a; perm }

  let lu_solve { lu; perm } b =
    let n = lu.rows in
    if Array.length b <> n then invalid_arg "Dense.lu_solve: dimensions";
    let x = Array.init n (fun i -> b.(perm.(i))) in
    (* Forward substitution with unit-diagonal L. *)
    for i = 0 to n - 1 do
      for j = 0 to i - 1 do
        x.(i) <- F.sub x.(i) (F.mul (get lu i j) x.(j))
      done
    done;
    (* Back substitution with U. *)
    for i = n - 1 downto 0 do
      for j = i + 1 to n - 1 do
        x.(i) <- F.sub x.(i) (F.mul (get lu i j) x.(j))
      done;
      x.(i) <- F.div x.(i) (get lu i i)
    done;
    x

  let solve m b = lu_solve (lu_factor m) b

  (* Transpose solve A^T x = b from the same factor: with PA = LU,
     A^T = U^T L^T P — forward on U^T, backward on the unit-triangular
     L^T, then un-permute. Drives the Hager/Higham condition
     estimator. *)
  let lu_solve_t { lu; perm } b =
    let n = lu.rows in
    if Array.length b <> n then invalid_arg "Dense.lu_solve_t: dimensions";
    let w = Array.make n F.zero in
    for i = 0 to n - 1 do
      let acc = ref b.(i) in
      for j = 0 to i - 1 do
        acc := F.sub !acc (F.mul (get lu j i) w.(j))
      done;
      w.(i) <- F.div !acc (get lu i i)
    done;
    for i = n - 1 downto 0 do
      for j = i + 1 to n - 1 do
        w.(i) <- F.sub w.(i) (F.mul (get lu j i) w.(j))
      done
    done;
    let x = Array.make n F.zero in
    for i = 0 to n - 1 do
      x.(perm.(i)) <- w.(i)
    done;
    x

  let norm1 m =
    let worst = ref 0. in
    for j = 0 to m.cols - 1 do
      let s = ref 0. in
      for i = 0 to m.rows - 1 do
        s := !s +. F.abs (get m i j)
      done;
      worst := Float.max !worst !s
    done;
    !worst

  (* Element growth through elimination: max |U| over max |A|. *)
  let pivot_growth a { lu; perm = _ } =
    let amax = ref 0. in
    Array.iter (fun v -> amax := Float.max !amax (F.abs v)) a.data;
    let umax = ref 0. in
    for i = 0 to lu.rows - 1 do
      for j = i to lu.cols - 1 do
        umax := Float.max !umax (F.abs (get lu i j))
      done
    done;
    if !amax = 0. then 0. else !umax /. !amax

  let residual_inf m x b =
    let ax = mulvec m x in
    let worst = ref 0. in
    Array.iteri
      (fun i v -> worst := Float.max !worst (F.abs (F.sub v b.(i))))
      ax;
    !worst

  let pp ppf m =
    for i = 0 to m.rows - 1 do
      Format.fprintf ppf "[";
      for j = 0 to m.cols - 1 do
        if j > 0 then Format.fprintf ppf ", ";
        F.pp ppf (get m i j)
      done;
      Format.fprintf ppf "]@."
    done
end
