(* A process-wide persistent parallel runtime.

   The tool's heavy workloads — all-nodes probing, Monte-Carlo, corners —
   are embarrassingly parallel, but `Domain.spawn` costs milliseconds
   (domain-local heap setup plus a stop-the-world handshake), which dwarfs
   a chunk of frequency-point solves. Spawning per sweep therefore loses
   exactly where parallelism should win: many small independent batches.

   This module keeps one process-wide pool of worker domains, started
   lazily on the first parallel submission and reused for every subsequent
   one. Scheduling is work stealing over per-worker chunked deques: a
   submission splits its index range into chunks, deals them round-robin
   across the worker deques, and then participates itself by stealing;
   a worker prefers the back of its own deque (LIFO, cache-warm) and
   steals from the front of the longest other deque (FIFO, oldest work).
   One slow chunk — a corner whose DC solve limps through the homotopy
   ladder, say — no longer serialises a static bucket: idle participants
   drain the remaining chunks around it.

   Locking is per worker: each worker owns a deque guarded by its own
   mutex and sleeps on its own condition variable, so the common path —
   owner pops the back of its own deque — never contends with other
   workers. Thieves use [Mutex.try_lock] first (a failed attempt is
   counted, not waited on) and fall back to a blocking verification scan
   before sleeping. Job completion is an atomic countdown; only the
   chunk that drops it to zero takes the submitter's per-job mutex to
   signal. The old design funnelled every deque operation and every
   chunk completion through one global mutex + broadcast, which
   serialised the scheduler exactly when all workers were busy. *)

(* ---- double-ended chunk queue (owner back, thief front) ---- *)

module Deque = struct
  type 'a t = {
    mutable front : 'a list;    (* front-to-back order *)
    mutable back : 'a list;     (* back-to-front order *)
    mutable len : int;
    (* Padding so two workers' deque records never share a cache line
       even when the allocator places them back to back: the mutable
       fields above are written on every push/pop, and a neighbour's
       writes would otherwise ping-pong the line between cores. Nine
       words of fields + header ≥ 80 bytes. *)
    mutable pad0 : int;
    mutable pad1 : int;
    mutable pad2 : int;
    mutable pad3 : int;
    mutable pad4 : int;
    mutable pad5 : int;
  }

  let create () =
    { front = []; back = []; len = 0;
      pad0 = 0; pad1 = 0; pad2 = 0; pad3 = 0; pad4 = 0; pad5 = 0 }

  let length d = d.len

  let push_back d x =
    d.back <- x :: d.back;
    d.len <- d.len + 1

  let pop_back d =
    match d.back with
    | x :: r ->
      d.back <- r;
      d.len <- d.len - 1;
      Some x
    | [] ->
      (match List.rev d.front with
       | [] -> None
       | x :: r ->
         d.front <- [];
         d.back <- r;
         d.len <- d.len - 1;
         Some x)

  let pop_front d =
    match d.front with
    | x :: r ->
      d.front <- r;
      d.len <- d.len - 1;
      Some x
    | [] ->
      (match List.rev d.back with
       | [] -> None
       | x :: r ->
         d.back <- [];
         d.front <- r;
         d.len <- d.len - 1;
         Some x)
end

(* ---- jobs and chunks ---- *)

type job = {
  body : int -> unit;
  unfinished : int Atomic.t;     (* chunks not yet fully executed *)
  failed : (exn * Printexc.raw_backtrace) option Atomic.t;
      (* first failure wins; later chunks of the job are skipped *)
  done_lock : Mutex.t;
  done_cv : Condition.t;
      (* the submitter parks here; signalled once, by whichever chunk
         drops [unfinished] to zero *)
}

type chunk = { job : job; lo : int; hi : int }   (* [lo, hi) *)

(* Per-worker scheduler state. Each worker's hot mutable state lives in
   its own heap blocks (deque, mutex, condition, busy counter), so
   workers never write into a block another worker reads on its fast
   path. *)
type wstate = {
  deque : chunk Deque.t;
  lock : Mutex.t;                (* guards [deque] *)
  cond : Condition.t;            (* this worker sleeps here when idle *)
  busy : Obs.Counter.t;
}

type pool = {
  workers : wstate array;
  mutable domains : unit Domain.t array;
  stop : bool Atomic.t;
  epoch : int Atomic.t;
      (* bumped on every deal (and on stop); a worker that found every
         deque empty re-checks the epoch under its own lock before
         sleeping, so a deal that raced with its scan is never missed *)
}

(* Pool health counters. Always on: all sit on the coarse per-chunk /
   per-submission paths, never inside a chunk body. *)
let jobs_counter = Obs.Counter.make "pool.jobs"
let chunks_counter = Obs.Counter.make "pool.chunks"
let steals_counter = Obs.Counter.make "pool.steals"
let steal_fails_counter = Obs.Counter.make "pool.steal_fails"
let lock_wait_counter = Obs.Counter.make "pool.lock_wait_ns"
let queue_high_water_counter = Obs.Counter.make "pool.queue_high_water"
let main_busy_counter = Obs.Counter.make "pool.main.busy_ns"

let worker_busy_counter k =
  Obs.Counter.make (Printf.sprintf "pool.worker%d.busy_ns" k)

(* Participants currently inside a chunk body — point-in-time state
   (a gauge, not a counter), sampled by the serve daemon's background
   tick as pool.busy_workers. *)
let busy_now = Atomic.make 0
let busy_workers () = Atomic.get busy_now

(* Every index of a pool job executes with this flag set — on a worker
   domain or on the submitter while it helps drain chunks — so a nested
   submission (a Monte-Carlo sample fanning out its own sweep) detects it
   and runs inline instead of oversubscribing the machine. *)
let worker_flag = Domain.DLS.new_key (fun () -> false)
let in_worker () = Domain.DLS.get worker_flag

(* ---- configuration ---- *)

let env_flag name =
  match Sys.getenv_opt name with
  | Some ("1" | "true" | "yes" | "on") -> true
  | _ -> false

(* The accepted grammar of each ACSTAB_* tuning knob, as a pure function
   so tests can pin exactly what the environment parser accepts without
   mutating the environment. Both trim surrounding whitespace (an
   exported CHUNK_MS=" 2.5 " from a shell script should not disable
   adaptive chunking) and reject rather than clamp out-of-range
   values — a clamped typo would silently run at the wrong setting. *)
let parse_jobs s =
  match int_of_string_opt (String.trim s) with
  | Some n when n >= 1 -> Some n
  | _ -> None

let parse_chunk_ms s =
  match float_of_string_opt (String.trim s) with
  | Some ms when ms > 0. && Float.is_finite ms -> Some ms
  | _ -> None

(* One warning shape for every knob: name the rejected value, what was
   expected, and the fallback actually used. Routed through
   [Obs.Events.warn_once] keyed by the variable name, so a daemon that
   re-reads a bad knob warns on stderr once (and records a structured
   [Warn] event) instead of repeating per call. *)
let env_parse name ~parse ~expected ~show fallback =
  match Sys.getenv_opt name with
  | None -> fallback
  | Some s ->
    (match parse s with
     | Some v -> v
     | None ->
       Obs.Events.warn_once ~key:name
         (Printf.sprintf
            "acstab: warning: invalid %s=%S (expected %s); using %s"
            name s expected (show fallback));
       fallback)

let default_jobs () =
  env_parse "ACSTAB_JOBS" ~parse:parse_jobs
    ~expected:"an integer >= 1" ~show:string_of_int
    (Domain.recommended_domain_count ())

(* Guards [requested], [oversub] and [pool] below (configuration only —
   never touched on the scheduling fast path). *)
let config = Mutex.create ()

(* Total parallelism, submitting domain included: [effective_jobs () - 1]
   worker domains are kept. *)
let requested = ref (default_jobs ())
let oversub = ref (env_flag "ACSTAB_OVERSUBSCRIBE")
let pool : pool option ref = ref None

let jobs () =
  Mutex.lock config;
  let n = !requested in
  Mutex.unlock config;
  n

(* Chunks dealt but not yet claimed, summed over the worker deques.
   Length reads are unsynchronised on purpose (same racy-read contract
   as the steal victim scan): this is a gauge sample, and a value one
   chunk stale cannot corrupt anything. *)
let queued_chunks () =
  Mutex.lock config;
  let p = !pool in
  Mutex.unlock config;
  match p with
  | None -> 0
  | Some p ->
    Array.fold_left (fun acc w -> acc + Deque.length w.deque) 0 p.workers

let set_oversubscribe b =
  Mutex.lock config;
  oversub := b;
  Mutex.unlock config

let oversubscribe () =
  Mutex.lock config;
  let b = !oversub in
  Mutex.unlock config;
  b

(* OCaml 5 minor collections are stop-the-world across all domains, so
   running more domains than cores does not just time-slice — every
   minor GC waits for the descheduled domains, and the whole process
   runs at the speed of the slowest time slice. That is what made the
   original jobs curve *invert* on small machines: `-j 4` on one core
   was ~2.3x slower than `-j 1`. The pool therefore clamps the domain
   count to the hardware unless oversubscription is explicitly forced
   ([set_oversubscribe] / ACSTAB_OVERSUBSCRIBE=1 — used by the
   scheduler's own tests to exercise real stealing on small CI boxes). *)
let effective_jobs () =
  Mutex.lock config;
  let n = !requested and o = !oversub in
  Mutex.unlock config;
  if o then n
  else Int.min n (Int.max 1 (Domain.recommended_domain_count ()))

(* ---- adaptive chunk granularity ---- *)

(* EWMA of the cost of one [body i] call in ns, updated after every
   chunk. 0 = no estimate yet. A lossy single compare-and-set is enough:
   this is a heuristic, and a dropped update under contention is cheaper
   than a retry loop. *)
let item_cost_ns = Atomic.make 0

let chunk_target_ns =
  let ms =
    env_parse "ACSTAB_CHUNK_MS" ~parse:parse_chunk_ms
      ~expected:"a positive number of milliseconds"
      ~show:(Printf.sprintf "%g")
      1.0 (* 1 ms of work per chunk *)
  in
  Atomic.make (int_of_float (ms *. 1e6))

let set_chunk_target_ms ms =
  if ms > 0. then Atomic.set chunk_target_ns (int_of_float (ms *. 1e6))

let chunk_target_ms () = float_of_int (Atomic.get chunk_target_ns) *. 1e-6

let note_item_cost ~items dt =
  if items > 0 && dt > 0 then begin
    let per = dt / items in
    let old = Atomic.get item_cost_ns in
    let next = if old = 0 then per else old + ((per - old) / 8) in
    ignore (Atomic.compare_and_set item_cost_ns old next)
  end

(* Chunk size targeting [chunk_target_ns] of work per chunk, so tiny
   items get batched (dealing/stealing overhead amortised) and huge
   items still split fine enough to balance. Capped at half a deal per
   participant — at least two chunks each — so stealing can still even
   out a straggler. Before the first estimate exists, fall back to the
   fixed ~8-chunks-per-participant split. *)
let default_chunk ~participants n =
  let cost = Atomic.get item_cost_ns in
  if cost <= 0 then Int.max 1 (n / (participants * 8))
  else begin
    let ideal = Atomic.get chunk_target_ns / cost in
    let cap = Int.max 1 (n / (participants * 2)) in
    Int.max 1 (Int.min ideal cap)
  end

(* ---- chunk execution ---- *)

let chunk_ms_histogram = Obs.Histogram.make "pool.chunk_ms"

let run_chunk ~busy c =
  Obs.Counter.incr chunks_counter;
  Atomic.incr busy_now;
  (* One span per chunk, recorded on the executing domain: the Chrome
     trace then shows every worker's lane ([tid] = domain id) filled
     with its chunks — the visual form of the busy-time counters. Cheap
     enough because a chunk amortises many [body] calls. *)
  let span = Obs.Span.enter () in
  let t0 = Obs.Clock.now_ns () in
  let j = c.job in
  (try
     let i = ref c.lo in
     (* Stop early once a sibling chunk failed: the submitter only
        reports the first exception, so the rest is wasted work. *)
     while !i < c.hi && Atomic.get j.failed = None do
       j.body !i;
       incr i
     done
   with e ->
     let bt = Printexc.get_raw_backtrace () in
     ignore (Atomic.compare_and_set j.failed None (Some (e, bt))));
  let dt = Obs.Clock.now_ns () - t0 in
  Atomic.decr busy_now;
  Obs.Span.leave "pool.chunk" ~args:[ ("items", c.hi - c.lo) ] span;
  Obs.Histogram.observe chunk_ms_histogram (float_of_int dt *. 1e-6);
  Obs.Counter.add busy dt;
  note_item_cost ~items:(c.hi - c.lo) dt;
  (* Atomic countdown; only the last chunk takes the submitter's lock. *)
  if Atomic.fetch_and_add j.unfinished (-1) = 1 then begin
    Mutex.lock j.done_lock;
    Condition.signal j.done_cv;
    Mutex.unlock j.done_lock
  end

(* ---- finding work ---- *)

(* Pop the back of our own deque ([me >= 0]); else steal from the front
   of the longest other deque, [try_lock] only — a busy victim costs a
   counted failure, not a wait. Length reads are racy by design: a stale
   length wastes one attempt, it cannot corrupt the deque (every
   mutation is under the owner's lock). *)
let try_find p me =
  let own =
    if me >= 0 then begin
      let w = p.workers.(me) in
      Mutex.lock w.lock;
      let c = Deque.pop_back w.deque in
      Mutex.unlock w.lock;
      c
    end
    else None
  in
  match own with
  | Some _ as c -> c
  | None ->
    let nw = Array.length p.workers in
    let attempt k =
      let w = p.workers.(k) in
      if Mutex.try_lock w.lock then begin
        let c = Deque.pop_front w.deque in
        Mutex.unlock w.lock;
        (match c with
         | Some _ when me >= 0 -> Obs.Counter.incr steals_counter
         | _ -> ());
        c
      end
      else begin
        Obs.Counter.incr steal_fails_counter;
        None
      end
    in
    let victim = ref (-1) and best = ref 0 in
    for k = 0 to nw - 1 do
      if k <> me then begin
        let len = Deque.length p.workers.(k).deque in
        if len > !best then begin
          victim := k;
          best := len
        end
      end
    done;
    if !victim < 0 then None
    else begin
      match attempt !victim with
      | Some _ as c -> c
      | None ->
        let got = ref None in
        let k = ref 0 in
        while !got = None && !k < nw do
          if !k <> me && !k <> !victim
             && Deque.length p.workers.(!k).deque > 0
          then got := attempt !k;
          incr k
        done;
        !got
    end

(* Blocking verification scan: take every other deque's lock in turn
   (waits are measured into [pool.lock_wait_ns]) and pop the first chunk
   found. A [None] from here is authoritative — every queued chunk has
   been claimed — so the caller may park. *)
let find_verified p me =
  let nw = Array.length p.workers in
  let got = ref None in
  let k = ref 0 in
  while !got = None && !k < nw do
    if !k <> me then begin
      let w = p.workers.(!k) in
      let t0 = Obs.Clock.now_ns () in
      Mutex.lock w.lock;
      Obs.Counter.add lock_wait_counter (Obs.Clock.now_ns () - t0);
      let c = Deque.pop_front w.deque in
      Mutex.unlock w.lock;
      (match c with
       | Some _ when me >= 0 -> Obs.Counter.incr steals_counter
       | _ -> ());
      got := c
    end;
    incr k
  done;
  !got

let worker p me () =
  Domain.DLS.set worker_flag true;
  let w = p.workers.(me) in
  let busy = w.busy in
  let rec loop () =
    if Atomic.get p.stop then ()
    else begin
      (* Sample the epoch before scanning: a deal that lands mid-scan
         bumps it, and the re-check under our own lock below turns the
         would-be sleep into a rescan. *)
      let seen = Atomic.get p.epoch in
      let c =
        match try_find p me with
        | Some _ as c -> c
        | None -> find_verified p me
      in
      match c with
      | Some c ->
        run_chunk ~busy c;
        loop ()
      | None ->
        Mutex.lock w.lock;
        if Atomic.get p.stop
           || Atomic.get p.epoch <> seen
           || Deque.length w.deque > 0
        then Mutex.unlock w.lock
        else begin
          Condition.wait w.cond w.lock;
          Mutex.unlock w.lock
        end;
        loop ()
    end
  in
  loop ()

(* ---- lifecycle ---- *)

(* Ask the current workers to exit and join them. Submissions are
   synchronous ([run] returns only once its job is drained), so there are
   never pending chunks here. *)
let shutdown () =
  Mutex.lock config;
  let p = !pool in
  pool := None;
  Mutex.unlock config;
  match p with
  | None -> ()
  | Some p ->
    Atomic.set p.stop true;
    Atomic.incr p.epoch;
    Array.iter
      (fun w ->
        Mutex.lock w.lock;
        Condition.broadcast w.cond;
        Mutex.unlock w.lock)
      p.workers;
    Array.iter Domain.join p.domains

let set_jobs n =
  let n = Int.max 1 n in
  Mutex.lock config;
  let changed = !requested <> n in
  requested := n;
  Mutex.unlock config;
  (* Resize eagerly only downward-to-idle; the next submission respawns
     lazily at the new size either way. *)
  if changed then shutdown ()

(* Lazily (re)start the workers. Returns [None] when the effective
   parallelism is 1 — callers then run inline with zero overhead. *)
let ensure_pool () =
  let target = effective_jobs () - 1 in
  Mutex.lock config;
  let current = !pool in
  Mutex.unlock config;
  let ok =
    match current with
    | Some p -> Array.length p.domains = target
    | None -> target < 1
  in
  if ok then current
  else begin
    shutdown ();
    if target < 1 then None
    else begin
      let workers =
        Array.init target (fun k ->
          { deque = Deque.create ();
            lock = Mutex.create ();
            cond = Condition.create ();
            busy = worker_busy_counter k })
      in
      let p =
        { workers;
          domains = [||];
          stop = Atomic.make false;
          epoch = Atomic.make 0 }
      in
      p.domains <- Array.init target (fun k -> Domain.spawn (worker p k));
      Mutex.lock config;
      pool := Some p;
      Mutex.unlock config;
      Some p
    end
  end

(* ---- submission ---- *)

(* Inline execution still marks the calling domain as a worker for the
   duration: nested submissions from the body stay inline, and callers
   asking [in_worker ()] inside a submission get a consistent answer
   whether the pool ran their batch on domains or (clamped to one core,
   or sized to 1) on the calling domain. *)
let run_inline n body =
  let saved = Domain.DLS.get worker_flag in
  Domain.DLS.set worker_flag true;
  Fun.protect
    ~finally:(fun () -> Domain.DLS.set worker_flag saved)
    (fun () ->
      for i = 0 to n - 1 do
        body i
      done)

(* Split [0, n) into chunks of [csize] and deal them round-robin over the
   worker deques; participate by stealing until our own job is drained.
   Rethrows the first failure with its original backtrace. *)
let run_pooled p ~csize n body =
  let nw = Array.length p.workers in
  let nchunks = (n + csize - 1) / csize in
  let job =
    { body;
      unfinished = Atomic.make nchunks;
      failed = Atomic.make None;
      done_lock = Mutex.create ();
      done_cv = Condition.create () }
  in
  Obs.Counter.incr jobs_counter;
  Obs.Counter.record_max queue_high_water_counter nchunks;
  for k = 0 to nchunks - 1 do
    let lo = k * csize in
    let hi = Int.min n (lo + csize) in
    let w = p.workers.(k mod nw) in
    Mutex.lock w.lock;
    Deque.push_back w.deque { job; lo; hi };
    Mutex.unlock w.lock
  done;
  (* Publish, then wake everyone: even a worker whose own deque got
     nothing (fewer chunks than workers) must wake to steal. *)
  Atomic.incr p.epoch;
  Array.iter
    (fun w ->
      Mutex.lock w.lock;
      Condition.signal w.cond;
      Mutex.unlock w.lock)
    p.workers;
  let rec participate () =
    if Atomic.get job.unfinished = 0 then ()
    else begin
      let c =
        match try_find p (-1) with
        | Some _ as c -> c
        | None -> find_verified p (-1)
      in
      match c with
      | Some c ->
        (* The submitter counts as a worker while it executes chunks, so
           nested submissions from the body run inline here too. *)
        Domain.DLS.set worker_flag true;
        Fun.protect
          ~finally:(fun () -> Domain.DLS.set worker_flag false)
          (fun () -> run_chunk ~busy:main_busy_counter c);
        participate ()
      | None ->
        (* Verified-empty: the remaining chunks are in flight on
           workers. Park until the countdown signals; the re-check
           under [done_lock] closes the race with a completion that
           landed between the scan and the lock. *)
        Mutex.lock job.done_lock;
        if Atomic.get job.unfinished > 0 then
          Condition.wait job.done_cv job.done_lock;
        Mutex.unlock job.done_lock;
        participate ()
    end
  in
  participate ();
  match Atomic.get job.failed with
  | Some (e, bt) -> Printexc.raise_with_backtrace e bt
  | None -> ()

let parallel_for ?chunk ~n body =
  if n <= 0 then ()
  else if n = 1 || in_worker () then run_inline n body
  else
    match ensure_pool () with
    | None -> run_inline n body
    | Some p ->
      let participants = Array.length p.workers + 1 in
      let csize =
        match chunk with
        | Some c when c >= 1 -> c
        | _ -> default_chunk ~participants n
      in
      run_pooled p ~csize n body

let map_array ?chunk f a =
  let n = Array.length a in
  if n = 0 then [||]
  else begin
    let out = Array.make n None in
    parallel_for ?chunk ~n (fun i -> out.(i) <- Some (f a.(i)));
    Array.map
      (function Some v -> v | None -> assert false)
      out
  end

let map_list ?chunk f l =
  Array.to_list (map_array ?chunk f (Array.of_list l))
