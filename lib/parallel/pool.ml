(* A process-wide persistent parallel runtime.

   The tool's heavy workloads — all-nodes probing, Monte-Carlo, corners —
   are embarrassingly parallel, but `Domain.spawn` costs milliseconds
   (domain-local heap setup plus a stop-the-world handshake), which dwarfs
   a chunk of frequency-point solves. Spawning per sweep therefore loses
   exactly where parallelism should win: many small independent batches.

   This module keeps one process-wide pool of worker domains, started
   lazily on the first parallel submission and reused for every subsequent
   one. Scheduling is work stealing over per-worker chunked deques: a
   submission splits its index range into chunks, deals them round-robin
   across the worker deques, and then participates itself by stealing;
   a worker prefers the back of its own deque (LIFO, cache-warm) and
   steals from the front of the longest other deque (FIFO, oldest work).
   One slow chunk — a corner whose DC solve limps through the homotopy
   ladder, say — no longer serialises a static bucket: idle participants
   drain the remaining chunks around it.

   All deque operations happen under one global mutex. Chunks are coarse
   (a chunk is many matrix factorisations), so the lock is touched a few
   hundred times per second at most; the simplicity buys an easy proof of
   the completion and exception invariants. *)

(* ---- double-ended chunk queue (owner back, thief front) ---- *)

module Deque = struct
  type 'a t = {
    mutable front : 'a list;    (* front-to-back order *)
    mutable back : 'a list;     (* back-to-front order *)
    mutable len : int;
  }

  let create () = { front = []; back = []; len = 0 }
  let length d = d.len

  let push_back d x =
    d.back <- x :: d.back;
    d.len <- d.len + 1

  let pop_back d =
    match d.back with
    | x :: r ->
      d.back <- r;
      d.len <- d.len - 1;
      Some x
    | [] ->
      (match List.rev d.front with
       | [] -> None
       | x :: r ->
         d.front <- [];
         d.back <- r;
         d.len <- d.len - 1;
         Some x)

  let pop_front d =
    match d.front with
    | x :: r ->
      d.front <- r;
      d.len <- d.len - 1;
      Some x
    | [] ->
      (match List.rev d.back with
       | [] -> None
       | x :: r ->
         d.back <- [];
         d.front <- r;
         d.len <- d.len - 1;
         Some x)
end

(* ---- jobs and chunks ---- *)

type job = {
  body : int -> unit;
  mutable unfinished : int;      (* chunks not yet fully executed *)
  failed : (exn * Printexc.raw_backtrace) option Atomic.t;
      (* first failure wins; later chunks of the job are skipped *)
}

type chunk = { job : job; lo : int; hi : int }   (* [lo, hi) *)

type pool = {
  deques : chunk Deque.t array;          (* one per worker domain *)
  mutable domains : unit Domain.t array;
  mutable stop : bool;
}

let mutex = Mutex.create ()
let work_cv = Condition.create ()   (* workers: chunks arrived / stop *)
let done_cv = Condition.create ()   (* submitters: some job completed *)
let pool : pool option ref = ref None

(* Pool health counters. Always on: all sit on the coarse per-chunk /
   per-submission paths, never inside a chunk body. *)
let jobs_counter = Obs.Counter.make "pool.jobs"
let chunks_counter = Obs.Counter.make "pool.chunks"
let steals_counter = Obs.Counter.make "pool.steals"
let queue_max_counter = Obs.Counter.make "pool.queue_max"
let main_busy_counter = Obs.Counter.make "pool.main.busy_ns"

let worker_busy_counter k =
  Obs.Counter.make (Printf.sprintf "pool.worker%d.busy_ns" k)

(* Every index of a pool job executes with this flag set — on a worker
   domain or on the submitter while it helps drain chunks — so a nested
   submission (a Monte-Carlo sample fanning out its own sweep) detects it
   and runs inline instead of oversubscribing the machine. *)
let worker_flag = Domain.DLS.new_key (fun () -> false)
let in_worker () = Domain.DLS.get worker_flag

(* ---- pool size ---- *)

let default_jobs () =
  match Sys.getenv_opt "ACSTAB_JOBS" with
  | Some s ->
    (match int_of_string_opt (String.trim s) with
     | Some n when n >= 1 -> n
     | _ ->
       let fallback = Domain.recommended_domain_count () in
       Printf.eprintf
         "acstab: warning: invalid ACSTAB_JOBS=%S (expected an integer >= \
          1); using %d\n\
          %!"
         s fallback;
       fallback)
  | None -> Domain.recommended_domain_count ()

(* Total parallelism, submitting domain included: [jobs () - 1] worker
   domains are kept. Guarded by [mutex]. *)
let requested = ref (default_jobs ())

let jobs () =
  Mutex.lock mutex;
  let n = !requested in
  Mutex.unlock mutex;
  n

(* ---- chunk execution ---- *)

let chunk_ms_histogram = Obs.Histogram.make "pool.chunk_ms"

let run_chunk ~busy c =
  Obs.Counter.incr chunks_counter;
  (* One span per chunk, recorded on the executing domain: the Chrome
     trace then shows every worker's lane ([tid] = domain id) filled
     with its chunks — the visual form of the busy-time counters. Cheap
     enough because a chunk amortises many [body] calls. *)
  let span = Obs.Span.enter () in
  let t0 = Obs.Clock.now_ns () in
  let j = c.job in
  (try
     let i = ref c.lo in
     (* Stop early once a sibling chunk failed: the submitter only
        reports the first exception, so the rest is wasted work. *)
     while !i < c.hi && Atomic.get j.failed = None do
       j.body !i;
       incr i
     done
   with e ->
     let bt = Printexc.get_raw_backtrace () in
     ignore (Atomic.compare_and_set j.failed None (Some (e, bt))));
  let dt = Obs.Clock.now_ns () - t0 in
  Obs.Span.leave "pool.chunk" ~args:[ ("items", c.hi - c.lo) ] span;
  Obs.Histogram.observe chunk_ms_histogram (float_of_int dt *. 1e-6);
  Obs.Counter.add busy dt;
  Mutex.lock mutex;
  j.unfinished <- j.unfinished - 1;
  if j.unfinished = 0 then Condition.broadcast done_cv;
  Mutex.unlock mutex

(* Pop from our own deque's back; else steal from the front of the
   longest other deque. [me = -1] (a submitter) only steals. Caller holds
   [mutex]. *)
let find_chunk p me =
  let own =
    if me >= 0 then Deque.pop_back p.deques.(me) else None
  in
  match own with
  | Some _ as c -> c
  | None ->
    let victim = ref (-1) and best = ref 0 in
    Array.iteri
      (fun k d ->
        if k <> me && Deque.length d > !best then begin
          victim := k;
          best := Deque.length d
        end)
      p.deques;
    if !victim < 0 then None
    else begin
      (* A worker draining another worker's deque is a steal; the
         submitter taking chunks back is just participation. *)
      if me >= 0 then Obs.Counter.incr steals_counter;
      Deque.pop_front p.deques.(!victim)
    end

let worker p me () =
  Domain.DLS.set worker_flag true;
  let busy = worker_busy_counter me in
  Mutex.lock mutex;
  let rec loop () =
    if p.stop then Mutex.unlock mutex
    else
      match find_chunk p me with
      | Some c ->
        Mutex.unlock mutex;
        run_chunk ~busy c;
        Mutex.lock mutex;
        loop ()
      | None ->
        Condition.wait work_cv mutex;
        loop ()
  in
  loop ()

(* ---- lifecycle ---- *)

(* Ask the current workers to exit and join them. Submissions are
   synchronous ([run] returns only once its job is drained), so there are
   never pending chunks here. *)
let shutdown () =
  Mutex.lock mutex;
  let p = !pool in
  pool := None;
  (match p with
   | Some p ->
     p.stop <- true;
     Condition.broadcast work_cv
   | None -> ());
  Mutex.unlock mutex;
  match p with
  | Some p -> Array.iter Domain.join p.domains
  | None -> ()

let set_jobs n =
  let n = Int.max 1 n in
  Mutex.lock mutex;
  let changed = !requested <> n in
  requested := n;
  Mutex.unlock mutex;
  (* Resize eagerly only downward-to-idle; the next submission respawns
     lazily at the new size either way. *)
  if changed then shutdown ()

(* Lazily (re)start the workers. Returns [None] when the configured
   parallelism is 1 — callers then run inline with zero overhead. *)
let ensure_pool () =
  Mutex.lock mutex;
  let target = !requested - 1 in
  let current = !pool in
  let ok =
    match current with
    | Some p -> Array.length p.domains = target
    | None -> false
  in
  Mutex.unlock mutex;
  if ok then current
  else begin
    shutdown ();
    if target < 1 then None
    else begin
      let deques = Array.init target (fun _ -> Deque.create ()) in
      let p = { deques; domains = [||]; stop = false } in
      p.domains <- Array.init target (fun k -> Domain.spawn (worker p k));
      Mutex.lock mutex;
      pool := Some p;
      Mutex.unlock mutex;
      Some p
    end
  end

(* ---- submission ---- *)

let run_inline n body =
  for i = 0 to n - 1 do
    body i
  done

(* Split [0, n) into chunks of [csize] and deal them round-robin over the
   worker deques; participate by stealing until our own job is drained.
   Rethrows the first failure with its original backtrace. *)
let run_pooled p ~csize n body =
  let workers = Array.length p.deques in
  let nchunks = (n + csize - 1) / csize in
  let job = { body; unfinished = nchunks; failed = Atomic.make None } in
  Obs.Counter.incr jobs_counter;
  Mutex.lock mutex;
  for k = 0 to nchunks - 1 do
    let lo = k * csize in
    let hi = Int.min n (lo + csize) in
    Deque.push_back p.deques.(k mod workers) { job; lo; hi }
  done;
  let depth = Array.fold_left (fun acc d -> acc + Deque.length d) 0 p.deques in
  Obs.Counter.record_max queue_max_counter depth;
  Condition.broadcast work_cv;
  let rec participate () =
    if job.unfinished = 0 then Mutex.unlock mutex
    else
      match find_chunk p (-1) with
      | Some c ->
        Mutex.unlock mutex;
        (* The submitter counts as a worker while it executes chunks, so
           nested submissions from the body run inline here too. *)
        Domain.DLS.set worker_flag true;
        Fun.protect
          ~finally:(fun () -> Domain.DLS.set worker_flag false)
          (fun () -> run_chunk ~busy:main_busy_counter c);
        Mutex.lock mutex;
        participate ()
      | None ->
        if job.unfinished = 0 then Mutex.unlock mutex
        else begin
          Condition.wait done_cv mutex;
          participate ()
        end
  in
  participate ();
  match Atomic.get job.failed with
  | Some (e, bt) -> Printexc.raise_with_backtrace e bt
  | None -> ()

(* Default chunking: enough chunks for stealing to balance uneven work
   (~8 per participant), but never finer than one index. *)
let default_chunk ~participants n =
  Int.max 1 (n / (participants * 8))

let parallel_for ?chunk ~n body =
  if n <= 0 then ()
  else if n = 1 || in_worker () then run_inline n body
  else
    match ensure_pool () with
    | None -> run_inline n body
    | Some p ->
      let participants = Array.length p.deques + 1 in
      let csize =
        match chunk with
        | Some c when c >= 1 -> c
        | _ -> default_chunk ~participants n
      in
      run_pooled p ~csize n body

let map_array ?chunk f a =
  let n = Array.length a in
  if n = 0 then [||]
  else begin
    let out = Array.make n None in
    parallel_for ?chunk ~n (fun i -> out.(i) <- Some (f a.(i)));
    Array.map
      (function Some v -> v | None -> assert false)
      out
  end

let map_list ?chunk f l =
  Array.to_list (map_array ?chunk f (Array.of_list l))
