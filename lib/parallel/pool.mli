(** Process-wide persistent worker-domain pool with work stealing.

    The paper lists "distributed / computer farm run capability" as a
    feature in development; at workstation scale the bottleneck is not
    raw cores but scheduling: [Domain.spawn] costs milliseconds, so
    spawning fresh domains per frequency sweep (as the tool's first
    parallel path did) burns more time than the solves it distributes.

    This pool starts its worker domains lazily on the first parallel
    submission and keeps them for the life of the process. Work arrives
    as index ranges split into chunks and dealt over per-worker deques;
    idle participants (the submitting domain included) steal chunks from
    the front of the fullest deque, so an uneven batch — one slow corner
    among fast ones — rebalances dynamically instead of serialising a
    static bucket.

    Submissions made from inside a pool task run inline on the calling
    domain: an outer Monte-Carlo fan-out does not oversubscribe the
    machine with inner sweep parallelism.

    Results are deterministic: a task writes only cells of its own index,
    so pooled and sequential executions perform bit-identical arithmetic. *)

val jobs : unit -> int
(** Configured parallelism, the submitting domain included. Defaults to
    [ACSTAB_JOBS] when set to a positive integer, else
    [Domain.recommended_domain_count ()]. [jobs () = 1] means every
    submission runs inline and no worker domain is ever started. *)

val set_jobs : int -> unit
(** Reconfigure the parallelism (clamped to at least 1) — the [--jobs N]
    CLI flag lands here. Existing workers are stopped; the next
    submission restarts the pool at the new size. Call only between
    submissions. *)

val in_worker : unit -> bool
(** Whether the calling domain is currently executing a pool task (a
    worker domain, or the submitter while it helps drain chunks). *)

val parallel_for : ?chunk:int -> n:int -> (int -> unit) -> unit
(** [parallel_for ~n body] runs [body i] for every [i] in [0, n),
    distributed over the pool. [chunk] overrides the chunk size (default:
    about 8 chunks per participant). Runs inline when [n <= 1], when
    [jobs () = 1], or when called from inside a pool task. If any [body]
    raises, remaining chunks are skipped (best effort) and the first
    exception is re-raised on the submitter with its original
    backtrace. *)

val map_array : ?chunk:int -> ('a -> 'b) -> 'a array -> 'b array
(** Parallel [Array.map]; element order is preserved. *)

val map_list : ?chunk:int -> ('a -> 'b) -> 'a list -> 'b list
(** Parallel [List.map]; element order is preserved. *)

val shutdown : unit -> unit
(** Stop and join the worker domains. The pool restarts lazily on the
    next submission; useful before [exit] or in tests. *)

(** {1 Observability}

    The pool feeds [Obs.Counter]s (always on, coarse-grained — per chunk
    and per submission, never inside a task body):

    - [pool.jobs] — pooled submissions
    - [pool.chunks] — chunks executed (by workers or the submitter)
    - [pool.steals] — chunks a worker took from another worker's deque
    - [pool.queue_max] — high-water mark of queued chunks after a deal
    - [pool.worker<k>.busy_ns] / [pool.main.busy_ns] — cumulative time
      spent executing chunk bodies per participant

    Invalid [ACSTAB_JOBS] values (zero, negative, garbage) print a
    one-line warning to stderr naming the rejected value and the
    fallback, instead of being silently ignored. *)
