(** Process-wide persistent worker-domain pool with work stealing.

    The paper lists "distributed / computer farm run capability" as a
    feature in development; at workstation scale the bottleneck is not
    raw cores but scheduling: [Domain.spawn] costs milliseconds, so
    spawning fresh domains per frequency sweep (as the tool's first
    parallel path did) burns more time than the solves it distributes.

    This pool starts its worker domains lazily on the first parallel
    submission and keeps them for the life of the process. Work arrives
    as index ranges split into chunks and dealt over per-worker deques;
    idle participants (the submitting domain included) steal chunks from
    the front of the fullest deque, so an uneven batch — one slow corner
    among fast ones — rebalances dynamically instead of serialising a
    static bucket.

    Each worker owns its deque under its own lock and parks on its own
    condition variable; job completion is an atomic countdown. There is
    no global scheduler lock: the only cross-worker traffic is stealing
    (optimistic [try_lock], failures counted not waited on) and the
    single wake-up signal per deal.

    Submissions made from inside a pool task run inline on the calling
    domain: an outer Monte-Carlo fan-out does not oversubscribe the
    machine with inner sweep parallelism.

    Results are deterministic: a task writes only cells of its own index,
    so pooled and sequential executions perform bit-identical arithmetic. *)

val jobs : unit -> int
(** Configured parallelism, the submitting domain included. Defaults to
    [ACSTAB_JOBS] when set to a positive integer, else
    [Domain.recommended_domain_count ()]. [jobs () = 1] means every
    submission runs inline and no worker domain is ever started. *)

val set_jobs : int -> unit
(** Reconfigure the parallelism (clamped to at least 1) — the [--jobs N]
    CLI flag lands here. Existing workers are stopped; the next
    submission restarts the pool at the new size. Call only between
    submissions. *)

val effective_jobs : unit -> int
(** The parallelism the pool will actually use:
    [min (jobs ()) (Domain.recommended_domain_count ())] unless
    oversubscription is forced. OCaml 5 minor collections are
    stop-the-world across every domain, so running more domains than
    cores makes each GC wait on descheduled domains — asking for
    [-j 4] on one core used to run ~2.3x {e slower} than [-j 1]. The
    pool sizes itself to [effective_jobs ()] and runs inline when that
    is 1. *)

val set_oversubscribe : bool -> unit
(** Force the pool to honour [jobs ()] even beyond the core count
    (also enabled by [ACSTAB_OVERSUBSCRIBE=1]). Meant for scheduler
    tests that need real worker domains and stealing on small CI
    machines; never an optimisation. *)

val oversubscribe : unit -> bool
(** Whether oversubscription is currently forced. *)

val parse_jobs : string -> int option
(** The exact grammar [ACSTAB_JOBS] accepts: an integer [>= 1] with
    optional surrounding whitespace. [None] for anything else (zero,
    negative, non-numeric, empty) — the environment reader then warns
    and falls back rather than silently clamping. Exposed pure so tests
    can pin the accepted grammar without mutating the environment. *)

val parse_chunk_ms : string -> float option
(** The exact grammar [ACSTAB_CHUNK_MS] accepts: a finite float [> 0.]
    with optional surrounding whitespace, in milliseconds. Same warn-
    and-fall-back contract as {!parse_jobs}. *)

val set_chunk_target_ms : float -> unit
(** Set the adaptive chunking target: the pool sizes default chunks so
    one chunk holds about this many milliseconds of work, using a
    running estimate of per-item cost ([ACSTAB_CHUNK_MS] sets the
    initial value; default 1.0). Non-positive values are ignored. *)

val chunk_target_ms : unit -> float
(** The current adaptive chunking target in milliseconds. *)

val busy_workers : unit -> int
(** Participants (workers or the submitter) currently executing a
    chunk body — point-in-time state for the [pool.busy_workers]
    gauge sampled by the serve daemon. *)

val queued_chunks : unit -> int
(** Chunks dealt to the worker deques and not yet claimed, racy-read
    (a gauge sample, not a synchronised count). [0] when the pool is
    not running. *)

val in_worker : unit -> bool
(** Whether the calling domain is currently executing a pool task (a
    worker domain, or the submitter while it helps drain chunks, or any
    domain inside an inline submission). *)

val parallel_for : ?chunk:int -> n:int -> (int -> unit) -> unit
(** [parallel_for ~n body] runs [body i] for every [i] in [0, n),
    distributed over the pool. [chunk] overrides the chunk size
    (default: adaptive — about [chunk_target_ms] of work per chunk once
    the pool has a per-item cost estimate, else ~8 chunks per
    participant). Runs inline when [n <= 1], when
    [effective_jobs () = 1], or when called from inside a pool task;
    inline runs still set the worker flag for their duration. If any
    [body] raises, remaining chunks are skipped (best effort) and the
    first exception is re-raised on the submitter with its original
    backtrace. *)

val map_array : ?chunk:int -> ('a -> 'b) -> 'a array -> 'b array
(** Parallel [Array.map]; element order is preserved. *)

val map_list : ?chunk:int -> ('a -> 'b) -> 'a list -> 'b list
(** Parallel [List.map]; element order is preserved. *)

val shutdown : unit -> unit
(** Stop and join the worker domains. The pool restarts lazily on the
    next submission; useful before [exit] or in tests. *)

(** {1 Observability}

    The pool feeds [Obs.Counter]s (always on, coarse-grained — per chunk
    and per submission, never inside a task body):

    - [pool.jobs] — pooled submissions
    - [pool.chunks] — chunks executed (by workers or the submitter)
    - [pool.steals] — chunks a participant took from another worker's
      deque
    - [pool.steal_fails] — optimistic steal attempts that found the
      victim's lock held (contention indicator; failures fall back to a
      blocking scan, they are never spun on)
    - [pool.lock_wait_ns] — cumulative time spent blocking on deque
      locks in the pre-sleep verification scan
    - [pool.queue_high_water] — largest number of chunks dealt by one
      submission
    - [pool.worker<k>.busy_ns] / [pool.main.busy_ns] — cumulative time
      spent executing chunk bodies per participant

    Invalid [ACSTAB_JOBS] / [ACSTAB_CHUNK_MS] values print a one-line
    warning to stderr naming the rejected value and the fallback,
    instead of being silently ignored — via [Obs.Events.warn_once]
    keyed by the variable name, so a long-running daemon warns once
    (and records a structured [Warn] event) rather than per call. *)
