type node = string

let ground = "0"

let is_ground n =
  match String.lowercase_ascii n with "0" | "gnd" -> true | _ -> false

type wave =
  | Dc of float
  | Pulse of {
      v1 : float;
      v2 : float;
      delay : float;
      rise : float;
      fall : float;
      width : float;
      period : float;
    }
  | Sine of { offset : float; ampl : float; freq : float; delay : float;
              damping : float }
  | Pwl of (float * float) list

type source_spec = {
  dc : float;
  ac_mag : float;
  ac_phase_deg : float;
  wave : wave option;
}

let dc_source dc = { dc; ac_mag = 0.; ac_phase_deg = 0.; wave = None }

let ac_source ?(dc = 0.) ?(phase_deg = 0.) ac_mag =
  { dc; ac_mag; ac_phase_deg = phase_deg; wave = None }

let wave_source ?(dc = 0.) ?(ac_mag = 0.) wave =
  { dc; ac_mag; ac_phase_deg = 0.; wave = Some wave }

type model_kind = Dmodel | Npn | Pnp | Nmos | Pmos

type model = {
  model_name : string;
  kind : model_kind;
  params : (string * float) list;
}

let model_param m name ~default =
  match List.assoc_opt (String.lowercase_ascii name) m.params with
  | Some v -> v
  | None -> default

type device =
  | Resistor of { name : string; n1 : node; n2 : node; r : float;
                  tc1 : float; tc2 : float }
  | Capacitor of { name : string; n1 : node; n2 : node; c : float;
                   ic : float option }
  | Inductor of { name : string; n1 : node; n2 : node; l : float;
                  ic : float option }
  | Vsource of { name : string; npos : node; nneg : node; spec : source_spec }
  | Isource of { name : string; npos : node; nneg : node; spec : source_spec }
  | Vcvs of { name : string; npos : node; nneg : node; cpos : node;
              cneg : node; gain : float }
  | Vccs of { name : string; npos : node; nneg : node; cpos : node;
              cneg : node; gm : float }
  | Cccs of { name : string; npos : node; nneg : node; vname : string;
              gain : float }
  | Ccvs of { name : string; npos : node; nneg : node; vname : string;
              rm : float }
  | Diode of { name : string; npos : node; nneg : node; model : string;
               area : float }
  | Bjt of { name : string; nc : node; nb : node; ne : node; model : string;
             area : float }
  | Mosfet of { name : string; nd : node; ng : node; ns : node; nb : node;
                model : string; w : float; l : float }
  | Mutual of { name : string; l1 : string; l2 : string; k : float }

let device_name = function
  | Resistor { name; _ } | Capacitor { name; _ } | Inductor { name; _ }
  | Vsource { name; _ } | Isource { name; _ } | Vcvs { name; _ }
  | Vccs { name; _ } | Cccs { name; _ } | Ccvs { name; _ }
  | Diode { name; _ } | Bjt { name; _ } | Mosfet { name; _ }
  | Mutual { name; _ } -> name

let device_nodes = function
  | Resistor { n1; n2; _ } | Capacitor { n1; n2; _ } | Inductor { n1; n2; _ }
    -> [ n1; n2 ]
  | Vsource { npos; nneg; _ } | Isource { npos; nneg; _ }
  | Cccs { npos; nneg; _ } | Ccvs { npos; nneg; _ } -> [ npos; nneg ]
  | Vcvs { npos; nneg; cpos; cneg; _ } | Vccs { npos; nneg; cpos; cneg; _ }
    -> [ npos; nneg; cpos; cneg ]
  | Diode { npos; nneg; _ } -> [ npos; nneg ]
  | Bjt { nc; nb; ne; _ } -> [ nc; nb; ne ]
  | Mosfet { nd; ng; ns; nb; _ } -> [ nd; ng; ns; nb ]
  | Mutual _ -> []

let rename_node d ~from_ ~to_ =
  let r n = if String.equal n from_ then to_ else n in
  match d with
  | Resistor x -> Resistor { x with n1 = r x.n1; n2 = r x.n2 }
  | Capacitor x -> Capacitor { x with n1 = r x.n1; n2 = r x.n2 }
  | Inductor x -> Inductor { x with n1 = r x.n1; n2 = r x.n2 }
  | Vsource x -> Vsource { x with npos = r x.npos; nneg = r x.nneg }
  | Isource x -> Isource { x with npos = r x.npos; nneg = r x.nneg }
  | Vcvs x ->
    Vcvs { x with npos = r x.npos; nneg = r x.nneg; cpos = r x.cpos;
                  cneg = r x.cneg }
  | Vccs x ->
    Vccs { x with npos = r x.npos; nneg = r x.nneg; cpos = r x.cpos;
                  cneg = r x.cneg }
  | Cccs x -> Cccs { x with npos = r x.npos; nneg = r x.nneg }
  | Ccvs x -> Ccvs { x with npos = r x.npos; nneg = r x.nneg }
  | Diode x -> Diode { x with npos = r x.npos; nneg = r x.nneg }
  | Bjt x -> Bjt { x with nc = r x.nc; nb = r x.nb; ne = r x.ne }
  | Mosfet x ->
    Mosfet { x with nd = r x.nd; ng = r x.ng; ns = r x.ns; nb = r x.nb }
  | Mutual x -> Mutual x

type directive =
  | Op
  | Ac of Numerics.Sweep.t
  | Tran of { tstop : float; tstep : float }
  | Stab_node of node
  | Stab_all
  | Nodeset of (node * float) list

module Smap = Map.Make (String)

type t = {
  title : string;
  temp : float;  (* Celsius *)
  rev_devices : device list;
  by_name : device Smap.t;  (* keyed by lower-cased device name *)
  models_map : model Smap.t;
  params_map : float Smap.t;
  rev_params : (string * float) list;
  rev_directives : directive list;
  options_map : float Smap.t;
  lines_map : int Smap.t;  (* device name -> source line (parser-recorded) *)
}

let empty ?(title = "untitled") () =
  { title; temp = 27.; rev_devices = []; by_name = Smap.empty;
    models_map = Smap.empty; params_map = Smap.empty; rev_params = [];
    rev_directives = []; options_map = Smap.empty; lines_map = Smap.empty }

let title c = c.title
let temp_celsius c = c.temp
let with_temp temp c = { c with temp }
let key s = String.lowercase_ascii s

let add c d =
  let k = key (device_name d) in
  if Smap.mem k c.by_name then
    invalid_arg (Printf.sprintf "Netlist.add: duplicate device %S" (device_name d));
  { c with rev_devices = d :: c.rev_devices; by_name = Smap.add k d c.by_name }

let add_model c m =
  { c with models_map = Smap.add (key m.model_name) m c.models_map }

let add_param c name v =
  { c with params_map = Smap.add (key name) v c.params_map;
           rev_params = (name, v) :: c.rev_params }

let add_directive c d = { c with rev_directives = d :: c.rev_directives }

let add_option c k v = { c with options_map = Smap.add (key k) v c.options_map }

let option_value c k ~default =
  match Smap.find_opt (key k) c.options_map with
  | Some v -> v
  | None -> default

let set_device_line c name line =
  { c with lines_map = Smap.add (key name) line c.lines_map }

let device_line c name = Smap.find_opt (key name) c.lines_map

let options c = Smap.bindings c.options_map
let devices c = List.rev c.rev_devices
let models c = List.map snd (Smap.bindings c.models_map)
let params c = List.rev c.rev_params
let directives c = List.rev c.rev_directives
let find_device c name = Smap.find_opt (key name) c.by_name
let find_model c name = Smap.find_opt (key name) c.models_map

let remove_device c name =
  let k = key name in
  { c with
    rev_devices =
      List.filter (fun d -> key (device_name d) <> k) c.rev_devices;
    by_name = Smap.remove k c.by_name;
    lines_map = Smap.remove k c.lines_map }

let replace_device c d =
  let line = device_line c (device_name d) in
  let c = remove_device c (device_name d) in
  let c = add c d in
  match line with
  | Some l -> set_device_line c (device_name d) l
  | None -> c

let map_devices f c =
  let rev_devices = List.rev_map f (List.rev c.rev_devices) in
  let by_name =
    List.fold_left
      (fun m d -> Smap.add (key (device_name d)) d m)
      Smap.empty rev_devices
  in
  { c with rev_devices; by_name }

let node_names c =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun d ->
      List.iter
        (fun n -> if not (is_ground n) then Hashtbl.replace tbl n ())
        (device_nodes d))
    c.rev_devices;
  List.sort compare (Hashtbl.fold (fun n () acc -> n :: acc) tbl [])

let uses_ground c =
  List.exists
    (fun d -> List.exists is_ground (device_nodes d))
    c.rev_devices

let resistor c name n1 n2 r =
  add c (Resistor { name; n1; n2; r; tc1 = 0.; tc2 = 0. })
let capacitor ?ic c name n1 n2 cap = add c (Capacitor { name; n1; n2; c = cap; ic })
let inductor ?ic c name n1 n2 l = add c (Inductor { name; n1; n2; l; ic })
let vsource c name npos nneg spec = add c (Vsource { name; npos; nneg; spec })
let isource c name npos nneg spec = add c (Isource { name; npos; nneg; spec })

let vcvs c name npos nneg cpos cneg gain =
  add c (Vcvs { name; npos; nneg; cpos; cneg; gain })

let vccs c name npos nneg cpos cneg gm =
  add c (Vccs { name; npos; nneg; cpos; cneg; gm })

let diode ?(area = 1.) c name npos nneg model =
  add c (Diode { name; npos; nneg; model; area })

let bjt ?(area = 1.) c name ~c:nc ~b:nb ~e:ne model =
  add c (Bjt { name; nc; nb; ne; model; area })

let mosfet ?(w = 10e-6) ?(l = 1e-6) c name ~d:nd ~g:ng ~s:ns ~b:nb model =
  add c (Mosfet { name; nd; ng; ns; nb; model; w; l })

let mutual c name ~l1 ~l2 ~k = add c (Mutual { name; l1; l2; k })

let fmt_f = Numerics.Engnum.format

let pp_spec ppf spec =
  Format.fprintf ppf "DC %s" (fmt_f spec.dc);
  if spec.ac_mag <> 0. then begin
    Format.fprintf ppf " AC %s" (fmt_f spec.ac_mag);
    if spec.ac_phase_deg <> 0. then
      Format.fprintf ppf " %s" (fmt_f spec.ac_phase_deg)
  end;
  match spec.wave with
  | None | Some (Dc _) -> ()
  | Some (Pulse { v1; v2; delay; rise; fall; width; period }) ->
    Format.fprintf ppf " PULSE(%s %s %s %s %s %s %s)" (fmt_f v1) (fmt_f v2)
      (fmt_f delay) (fmt_f rise) (fmt_f fall) (fmt_f width) (fmt_f period)
  | Some (Sine { offset; ampl; freq; delay; damping }) ->
    Format.fprintf ppf " SIN(%s %s %s %s %s)" (fmt_f offset) (fmt_f ampl)
      (fmt_f freq) (fmt_f delay) (fmt_f damping)
  | Some (Pwl pts) ->
    Format.fprintf ppf " PWL(";
    List.iteri
      (fun i (t, v) ->
        if i > 0 then Format.fprintf ppf " ";
        Format.fprintf ppf "%s %s" (fmt_f t) (fmt_f v))
      pts;
    Format.fprintf ppf ")"

let pp_device ppf = function
  | Resistor { name; n1; n2; r; tc1; tc2 } ->
    Format.fprintf ppf "%s %s %s %s" name n1 n2 (fmt_f r);
    if tc1 <> 0. then Format.fprintf ppf " TC1=%s" (fmt_f tc1);
    if tc2 <> 0. then Format.fprintf ppf " TC2=%s" (fmt_f tc2)
  | Capacitor { name; n1; n2; c; ic } ->
    Format.fprintf ppf "%s %s %s %s" name n1 n2 (fmt_f c);
    Option.iter (fun v -> Format.fprintf ppf " IC=%s" (fmt_f v)) ic
  | Inductor { name; n1; n2; l; ic } ->
    Format.fprintf ppf "%s %s %s %s" name n1 n2 (fmt_f l);
    Option.iter (fun v -> Format.fprintf ppf " IC=%s" (fmt_f v)) ic
  | Vsource { name; npos; nneg; spec } ->
    Format.fprintf ppf "%s %s %s %a" name npos nneg pp_spec spec
  | Isource { name; npos; nneg; spec } ->
    Format.fprintf ppf "%s %s %s %a" name npos nneg pp_spec spec
  | Vcvs { name; npos; nneg; cpos; cneg; gain } ->
    Format.fprintf ppf "%s %s %s %s %s %s" name npos nneg cpos cneg
      (fmt_f gain)
  | Vccs { name; npos; nneg; cpos; cneg; gm } ->
    Format.fprintf ppf "%s %s %s %s %s %s" name npos nneg cpos cneg (fmt_f gm)
  | Cccs { name; npos; nneg; vname; gain } ->
    Format.fprintf ppf "%s %s %s %s %s" name npos nneg vname (fmt_f gain)
  | Ccvs { name; npos; nneg; vname; rm } ->
    Format.fprintf ppf "%s %s %s %s %s" name npos nneg vname (fmt_f rm)
  | Diode { name; npos; nneg; model; area } ->
    Format.fprintf ppf "%s %s %s %s" name npos nneg model;
    if area <> 1. then Format.fprintf ppf " %s" (fmt_f area)
  | Bjt { name; nc; nb; ne; model; area } ->
    Format.fprintf ppf "%s %s %s %s %s" name nc nb ne model;
    if area <> 1. then Format.fprintf ppf " %s" (fmt_f area)
  | Mosfet { name; nd; ng; ns; nb; model; w; l } ->
    Format.fprintf ppf "%s %s %s %s %s %s W=%s L=%s" name nd ng ns nb model
      (fmt_f w) (fmt_f l)
  | Mutual { name; l1; l2; k } ->
    Format.fprintf ppf "%s %s %s %s" name l1 l2 (fmt_f k)

let kind_string = function
  | Dmodel -> "d"
  | Npn -> "npn"
  | Pnp -> "pnp"
  | Nmos -> "nmos"
  | Pmos -> "pmos"

let pp ppf c =
  Format.fprintf ppf "* %s@." c.title;
  if c.temp <> 27. then Format.fprintf ppf ".temp %s@." (fmt_f c.temp);
  (match options c with
   | [] -> ()
   | opts ->
     Format.fprintf ppf ".options";
     List.iter (fun (k, v) -> Format.fprintf ppf " %s=%s" k (fmt_f v)) opts;
     Format.fprintf ppf "@.");
  List.iter
    (function
      | Nodeset entries ->
        Format.fprintf ppf ".nodeset";
        List.iter
          (fun (n, v) -> Format.fprintf ppf " %s=%s" n (fmt_f v))
          entries;
        Format.fprintf ppf "@."
      | Op | Ac _ | Tran _ | Stab_node _ | Stab_all -> ())
    (directives c);
  List.iter
    (fun (n, v) -> Format.fprintf ppf ".param %s=%s@." n (fmt_f v))
    (params c);
  List.iter (fun d -> Format.fprintf ppf "%a@." pp_device d) (devices c);
  List.iter
    (fun m ->
      Format.fprintf ppf ".model %s %s (" m.model_name (kind_string m.kind);
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Format.fprintf ppf " ";
          Format.fprintf ppf "%s=%s" k (fmt_f v))
        m.params;
      Format.fprintf ppf ")@.")
    (models c);
  Format.fprintf ppf ".end@."

let to_spice c = Format.asprintf "%a" pp c
