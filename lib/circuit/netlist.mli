(** Circuit netlist data model.

    A {!circuit} is an ordered collection of device instances plus device
    model cards and design variables (parameters). Nets are identified by
    name; ["0"] and ["gnd"] (any case) denote ground. The model is
    immutable: building and editing return new circuits, which lets the
    stability tool attach probes and zero stimuli without mutating the
    user's design (the paper's "without changing the circuit under
    inspection"). *)

type node = string

val ground : node
val is_ground : node -> bool

(** Transient waveform of an independent source. *)
type wave =
  | Dc of float
  | Pulse of {
      v1 : float;      (** initial value *)
      v2 : float;      (** pulsed value *)
      delay : float;
      rise : float;
      fall : float;
      width : float;
      period : float;  (** 0 or infinite means single pulse *)
    }
  | Sine of { offset : float; ampl : float; freq : float; delay : float;
              damping : float }
  | Pwl of (float * float) list  (** (time, value) corners, ascending time *)

(** Small-signal and bias description of an independent source. *)
type source_spec = {
  dc : float;          (** operating-point value *)
  ac_mag : float;      (** AC analysis magnitude (0 = silent in AC) *)
  ac_phase_deg : float;
  wave : wave option;  (** transient shape; [None] holds [dc] *)
}

val dc_source : float -> source_spec
val ac_source : ?dc:float -> ?phase_deg:float -> float -> source_spec
val wave_source : ?dc:float -> ?ac_mag:float -> wave -> source_spec

type model_kind = Dmodel | Npn | Pnp | Nmos | Pmos

type model = {
  model_name : string;
  kind : model_kind;
  params : (string * float) list;  (** lower-case parameter names *)
}

val model_param : model -> string -> default:float -> float

type device =
  | Resistor of { name : string; n1 : node; n2 : node; r : float;
                  tc1 : float; tc2 : float }
      (** value at 27 C with linear/quadratic temperature coefficients:
          R(T) = r (1 + tc1 dT + tc2 dT^2), dT = T - 27 *)
  | Capacitor of { name : string; n1 : node; n2 : node; c : float;
                   ic : float option }
  | Inductor of { name : string; n1 : node; n2 : node; l : float;
                  ic : float option }
  | Vsource of { name : string; npos : node; nneg : node; spec : source_spec }
  | Isource of { name : string; npos : node; nneg : node; spec : source_spec }
      (** Positive current flows out of [npos], through the source, into
          [nneg] — i.e. a positive value pushes current into the external
          circuit at [nneg]. This matches SPICE conventions. *)
  | Vcvs of { name : string; npos : node; nneg : node; cpos : node;
              cneg : node; gain : float }
  | Vccs of { name : string; npos : node; nneg : node; cpos : node;
              cneg : node; gm : float }
  | Cccs of { name : string; npos : node; nneg : node; vname : string;
              gain : float }
  | Ccvs of { name : string; npos : node; nneg : node; vname : string;
              rm : float }
  | Diode of { name : string; npos : node; nneg : node; model : string;
               area : float }
  | Bjt of { name : string; nc : node; nb : node; ne : node; model : string;
             area : float }
  | Mosfet of { name : string; nd : node; ng : node; ns : node; nb : node;
                model : string; w : float; l : float }
  | Mutual of { name : string; l1 : string; l2 : string; k : float }
      (** coupling between two named inductors, |k| < 1 (SPICE K card);
          carries no terminals of its own *)

val device_name : device -> string
val device_nodes : device -> node list
(** Terminal nets in declaration order (controlling nets included). *)

val rename_node : device -> from_:node -> to_:node -> device
(** Replace every occurrence of a net name on the device's terminals. *)

(** Analysis directives as read from netlist cards (used by the CLI). *)
type directive =
  | Op
  | Ac of Numerics.Sweep.t
  | Tran of { tstop : float; tstep : float }
  | Stab_node of node
  | Stab_all
  | Nodeset of (node * float) list
      (** initial-guess hints for the DC solver; circuits with more than
          one stable operating point (e.g. self-biased references, buffers
          with class-A output stages) use these to select the intended
          one *)

type t

val empty : ?title:string -> unit -> t
val title : t -> string
val temp_celsius : t -> float
val with_temp : float -> t -> t

val add : t -> device -> t
(** Raises [Invalid_argument] on duplicate device name. *)

val add_model : t -> model -> t
val add_param : t -> string -> float -> t
val add_directive : t -> directive -> t

val add_option : t -> string -> float -> t
(** Simulator options (".options gmin=1e-10 reltol=1e-4 ..."); consumed by
    the DC solver. Later settings override earlier ones. *)

val option_value : t -> string -> default:float -> float
val options : t -> (string * float) list

val devices : t -> device list
val models : t -> model list
val params : t -> (string * float) list
val directives : t -> directive list

val set_device_line : t -> string -> int -> t
(** Record the source line a device came from (used by the parser; lint
    findings and elaboration errors cite it). *)

val device_line : t -> string -> int option
(** Source line recorded for a device, if the circuit was parsed from
    text. Programmatically built devices have no line. *)

val find_device : t -> string -> device option
val find_model : t -> string -> model option
val remove_device : t -> string -> t
val replace_device : t -> device -> t
(** Replace the device with the same name; adds it if absent. *)

val map_devices : (device -> device) -> t -> t

val node_names : t -> node list
(** All non-ground nets, sorted, deduplicated. *)

val uses_ground : t -> bool

(* Convenience builders used by the workload library. *)
val resistor : t -> string -> node -> node -> float -> t
val capacitor : ?ic:float -> t -> string -> node -> node -> float -> t
val inductor : ?ic:float -> t -> string -> node -> node -> float -> t
val vsource : t -> string -> node -> node -> source_spec -> t
val isource : t -> string -> node -> node -> source_spec -> t
val vcvs : t -> string -> node -> node -> node -> node -> float -> t
val vccs : t -> string -> node -> node -> node -> node -> float -> t
val diode : ?area:float -> t -> string -> node -> node -> string -> t
val bjt : ?area:float -> t -> string -> c:node -> b:node -> e:node -> string -> t
val mosfet :
  ?w:float -> ?l:float -> t -> string ->
  d:node -> g:node -> s:node -> b:node -> string -> t
val mutual : t -> string -> l1:string -> l2:string -> k:float -> t

val pp_device : Format.formatter -> device -> unit
(** One SPICE card. *)

val pp : Format.formatter -> t -> unit
(** SPICE-format listing of the circuit (round-trips through
    {!Parser.parse_string}). *)

val to_spice : t -> string
