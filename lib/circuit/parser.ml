exception Parse_error of { line : int; message : string }

let fail line fmt =
  Printf.ksprintf (fun message -> raise (Parse_error { line; message })) fmt

(* ------------------------------------------------------------------ *)
(* Logical lines: strip comments, join continuations.                  *)

type lline = { num : int; text : string }

let strip_comment s =
  let cut = ref (String.length s) in
  String.iteri
    (fun i c ->
      if i < !cut
         && (c = ';' || (c = '$' && i + 1 < String.length s && s.[i + 1] = ' '))
      then cut := i)
    s;
  String.sub s 0 !cut

(* .include expansion happens on raw text so included cards participate in
   subckt extraction and the param pre-pass like inline text. *)
let rec expand_includes ~base_dir ~depth text =
  if depth > 8 then failwith "netlist .include nesting deeper than 8";
  String.split_on_char '\n' text
  |> List.map (fun line ->
      let t = String.trim line in
      let lowered = String.lowercase_ascii t in
      if String.length lowered >= 9
         && String.sub lowered 0 9 = ".include " then begin
        let path = String.trim (String.sub t 9 (String.length t - 9)) in
        let path = try Scanf.sscanf path "%S" (fun s -> s) with _ -> path in
        let full =
          if Filename.is_relative path then Filename.concat base_dir path
          else path
        in
        let ic = open_in full in
        let len = in_channel_length ic in
        let body = really_input_string ic len in
        close_in ic;
        expand_includes ~base_dir:(Filename.dirname full) ~depth:(depth + 1)
          body
      end
      else line)
  |> String.concat "\n"

let logical_lines ?(first_num = 1) text =
  let raw = String.split_on_char '\n' text in
  let numbered = List.mapi (fun i s -> (i + first_num, s)) raw in
  let keep (_, s) =
    let t = String.trim s in
    t <> "" && t.[0] <> '*'
  in
  let cleaned =
    List.filter keep numbered
    |> List.map (fun (n, s) -> (n, String.trim (strip_comment s)))
    |> List.filter (fun (_, s) -> s <> "")
  in
  let rec join acc = function
    | [] -> List.rev acc
    | (n, s) :: rest when String.length s > 0 && s.[0] = '+' ->
      (match acc with
       | [] -> fail n "continuation line with nothing to continue"
       | { num; text } :: acc' ->
         join ({ num; text = text ^ " " ^ String.sub s 1 (String.length s - 1) }
               :: acc')
         rest)
    | (n, s) :: rest -> join ({ num = n; text = s } :: acc) rest
  in
  join [] cleaned

(* ------------------------------------------------------------------ *)
(* Tokenisation: whitespace-separated, with '(' ')' ',' treated as
   separators and '{...}' kept as single tokens. 'k=v' splits into
   "k=" handling via later pairing; we keep '=' inside tokens.        *)

let tokenize line text =
  let out = ref [] in
  let buf = Buffer.create 16 in
  let flush () =
    if Buffer.length buf > 0 then begin
      out := Buffer.contents buf :: !out;
      Buffer.clear buf
    end
  in
  let depth = ref 0 in
  String.iter
    (fun c ->
      if !depth > 0 then begin
        if c = '}' then decr depth;
        Buffer.add_char buf c;
        if !depth = 0 then flush ()
      end
      else
        match c with
        | '{' ->
          (* A brace opening right after 'key=' belongs to that token
             ("rbot={rtop*3}"); otherwise it starts a fresh token. *)
          let continues_assignment =
            Buffer.length buf > 0
            && Buffer.nth buf (Buffer.length buf - 1) = '='
          in
          if not continues_assignment then flush ();
          incr depth;
          Buffer.add_char buf c
        | ' ' | '\t' | '(' | ')' | ',' | '\r' -> flush ()
        | _ -> Buffer.add_char buf c)
    text;
  if !depth > 0 then fail line "unbalanced '{' in %S" text;
  flush ();
  List.rev !out

let split_eq tok =
  match String.index_opt tok '=' with
  | Some i when i > 0 ->
    Some
      ( String.lowercase_ascii (String.sub tok 0 i),
        String.sub tok (i + 1) (String.length tok - i - 1) )
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Subcircuit definitions.                                             *)

type subckt = {
  formals : string list;
  defaults : (string * string) list;  (* parameter name -> default expr *)
  body : lline list;
}

let lower = String.lowercase_ascii

(* Split lines into (subckt table, toplevel lines); handles nesting by
   collecting the body verbatim and re-entering [collect] for inner defs. *)
let extract_subckts lines =
  let table = Hashtbl.create 8 in
  let rec go acc = function
    | [] -> List.rev acc
    | ({ num; text } as l) :: rest ->
      let toks = tokenize num text in
      (match toks with
       | card :: name :: args when lower card = ".subckt" ->
         let formals, defaults =
           List.partition (fun t -> split_eq t = None) args
         in
         let defaults =
           List.map
             (fun t ->
               match split_eq t with
               | Some kv -> kv
               | None -> assert false)
             defaults
         in
         let rec grab depth body = function
           | [] -> fail num "missing .ends for subckt %s" name
           | ({ num = n2; text = t2 } as l2) :: rest2 ->
             let k = lower (List.nth_opt (tokenize n2 t2) 0 |> Option.value ~default:"") in
             if k = ".subckt" then grab (depth + 1) (l2 :: body) rest2
             else if k = ".ends" then
               if depth = 0 then (List.rev body, rest2)
               else grab (depth - 1) (l2 :: body) rest2
             else grab depth (l2 :: body) rest2
         in
         let body, rest' = grab 0 [] rest in
         Hashtbl.replace table (lower name) { formals; defaults; body };
         go acc rest'
       | card :: _ when lower card = ".ends" -> fail num ".ends without .subckt"
       | _ -> go (l :: acc) rest)
  in
  let top = go [] lines in
  (table, top)

(* ------------------------------------------------------------------ *)
(* Value parsing helpers.                                              *)

let value_of env line s =
  try Expr.value ~env s with Expr.Error m -> fail line "%s" m

let model_kind_of line s =
  match lower s with
  | "d" -> Netlist.Dmodel
  | "npn" -> Netlist.Npn
  | "pnp" -> Netlist.Pnp
  | "nmos" -> Netlist.Nmos
  | "pmos" -> Netlist.Pmos
  | other -> fail line "unknown model kind %S" other

(* Parse a source specification token list (after the two node names). *)
let parse_source_spec env line toks =
  let dc = ref 0. and ac_mag = ref 0. and ac_phase = ref 0. in
  let wave = ref None in
  let num t = value_of env line t in
  let rec go = function
    | [] -> ()
    | t :: rest ->
      (match lower t with
       | "dc" ->
         (match rest with
          | v :: rest' -> dc := num v; go rest'
          | [] -> fail line "DC needs a value")
       | "ac" ->
         (match rest with
          | m :: p :: rest' when Option.is_some (Numerics.Engnum.parse p) ->
            ac_mag := num m;
            ac_phase := num p;
            go rest'
          | m :: rest' -> ac_mag := num m; go rest'
          | [] -> fail line "AC needs a magnitude")
       | "pulse" ->
         let take n =
           let rec grab k acc = function
             | rest' when k = 0 -> (List.rev acc, rest')
             | [] -> fail line "PULSE needs %d arguments" n
             | v :: rest' -> grab (k - 1) (num v :: acc) rest'
           in
           grab n [] rest
         in
         let args, rest' = take 7 in
         (match args with
          | [ v1; v2; delay; rise; fall; width; period ] ->
            wave := Some (Netlist.Pulse { v1; v2; delay; rise; fall; width;
                                          period });
            go rest'
          | _ -> assert false)
       | "sin" ->
         let rec grab acc = function
           | v :: rest' when Option.is_some (Numerics.Engnum.parse v)
                             || (String.length v > 0 && v.[0] = '{') ->
             grab (num v :: acc) rest'
           | rest' -> (List.rev acc, rest')
         in
         let args, rest' = grab [] rest in
         let nth k d = match List.nth_opt args k with Some v -> v | None -> d in
         if List.length args < 3 then fail line "SIN needs >= 3 arguments";
         wave := Some (Netlist.Sine { offset = nth 0 0.; ampl = nth 1 0.;
                                      freq = nth 2 1.; delay = nth 3 0.;
                                      damping = nth 4 0. });
         go rest'
       | "pwl" ->
         let rec grab acc = function
           | v :: rest' when Option.is_some (Numerics.Engnum.parse v)
                             || (String.length v > 0 && v.[0] = '{') ->
             grab (num v :: acc) rest'
           | rest' -> (List.rev acc, rest')
         in
         let args, rest' = grab [] rest in
         let rec pair = function
           | [] -> []
           | t0 :: v0 :: more -> (t0, v0) :: pair more
           | [ _ ] -> fail line "PWL needs an even number of arguments"
         in
         wave := Some (Netlist.Pwl (pair args));
         go rest'
       | _ ->
         (* A bare leading number is the DC value. *)
         (match Numerics.Engnum.parse t with
          | Some _ -> dc := num t; go rest
          | None ->
            if String.length t > 0 && t.[0] = '{' then (dc := num t; go rest)
            else fail line "unexpected token %S in source" t))
  in
  go toks;
  { Netlist.dc = !dc; ac_mag = !ac_mag; ac_phase_deg = !ac_phase;
    wave = !wave }

(* ------------------------------------------------------------------ *)
(* Device card parsing.                                                *)

let parse_kv_args env line toks =
  List.filter_map
    (fun t ->
      match split_eq t with
      | Some (k, v) -> Some (k, value_of env line v)
      | None -> None)
    toks

let positional toks = List.filter (fun t -> split_eq t = None) toks

let prefixed prefix name = if prefix = "" then name else prefix ^ name

(* Map a net through subcircuit port bindings / hierarchical prefixes. *)
let map_node bindings prefix n =
  if Netlist.is_ground n then Netlist.ground
  else
    match List.assoc_opt (lower n) bindings with
    | Some actual -> actual
    | None -> prefixed prefix n

type context = {
  subckts : (string, subckt) Hashtbl.t;
  mutable circ : Netlist.t;
}

let rec process_line ctx ~env ~bindings ~prefix { num; text } =
  let toks = tokenize num text in
  match toks with
  | [] -> ()
  | first :: rest ->
    let node = map_node bindings prefix in
    let value = value_of env num in
    let kv = parse_kv_args env num rest in
    let pos = positional rest in
    let c0 = Char.lowercase_ascii first.[0] in
    if c0 = '.' then process_directive ctx ~env num (lower first) rest
    else begin
      let name = prefixed prefix first in
      let dev =
        match c0 with
        | 'r' ->
          (match pos with
           | [ n1; n2; v ] ->
             Netlist.Resistor
               { name; n1 = node n1; n2 = node n2; r = value v;
                 tc1 = Option.value ~default:0. (List.assoc_opt "tc1" kv);
                 tc2 = Option.value ~default:0. (List.assoc_opt "tc2" kv) }
           | _ -> fail num "resistor: Rname n1 n2 value [TC1=] [TC2=]")
        | 'c' ->
          (match pos with
           | [ n1; n2; v ] ->
             Netlist.Capacitor { name; n1 = node n1; n2 = node n2;
                                 c = value v;
                                 ic = List.assoc_opt "ic" kv }
           | _ -> fail num "capacitor: Cname n1 n2 value")
        | 'l' ->
          (match pos with
           | [ n1; n2; v ] ->
             Netlist.Inductor { name; n1 = node n1; n2 = node n2; l = value v;
                                ic = List.assoc_opt "ic" kv }
           | _ -> fail num "inductor: Lname n1 n2 value")
        | 'v' ->
          (match pos with
           | npos :: nneg :: spec_toks ->
             Netlist.Vsource { name; npos = node npos; nneg = node nneg;
                               spec = parse_source_spec env num spec_toks }
           | _ -> fail num "vsource: Vname n+ n- spec")
        | 'i' ->
          (match pos with
           | npos :: nneg :: spec_toks ->
             Netlist.Isource { name; npos = node npos; nneg = node nneg;
                               spec = parse_source_spec env num spec_toks }
           | _ -> fail num "isource: Iname n+ n- spec")
        | 'e' ->
          (match pos with
           | [ np; nn; cp; cn; g ] ->
             Netlist.Vcvs { name; npos = node np; nneg = node nn;
                            cpos = node cp; cneg = node cn; gain = value g }
           | _ -> fail num "vcvs: Ename n+ n- c+ c- gain")
        | 'g' ->
          (match pos with
           | [ np; nn; cp; cn; g ] ->
             Netlist.Vccs { name; npos = node np; nneg = node nn;
                            cpos = node cp; cneg = node cn; gm = value g }
           | _ -> fail num "vccs: Gname n+ n- c+ c- gm")
        | 'f' ->
          (match pos with
           | [ np; nn; v; g ] ->
             Netlist.Cccs { name; npos = node np; nneg = node nn;
                            vname = prefixed prefix v; gain = value g }
           | _ -> fail num "cccs: Fname n+ n- vsrc gain")
        | 'h' ->
          (match pos with
           | [ np; nn; v; r ] ->
             Netlist.Ccvs { name; npos = node np; nneg = node nn;
                            vname = prefixed prefix v; rm = value r }
           | _ -> fail num "ccvs: Hname n+ n- vsrc rm")
        | 'd' ->
          (match pos with
           | [ np; nn; m ] ->
             Netlist.Diode { name; npos = node np; nneg = node nn; model = m;
                             area = 1. }
           | [ np; nn; m; a ] ->
             Netlist.Diode { name; npos = node np; nneg = node nn; model = m;
                             area = value a }
           | _ -> fail num "diode: Dname n+ n- model [area]")
        | 'q' ->
          (match pos with
           | [ nc; nb; ne; m ] ->
             Netlist.Bjt { name; nc = node nc; nb = node nb; ne = node ne;
                           model = m; area = 1. }
           | [ nc; nb; ne; m; a ] ->
             Netlist.Bjt { name; nc = node nc; nb = node nb; ne = node ne;
                           model = m; area = value a }
           | _ -> fail num "bjt: Qname nc nb ne model [area]")
        | 'm' ->
          (match pos with
           | [ nd; ng; ns; nb; m ] ->
             Netlist.Mosfet { name; nd = node nd; ng = node ng; ns = node ns;
                              nb = node nb; model = m;
                              w = Option.value ~default:10e-6
                                    (List.assoc_opt "w" kv);
                              l = Option.value ~default:1e-6
                                    (List.assoc_opt "l" kv) }
           | _ -> fail num "mosfet: Mname nd ng ns nb model [W= L=]")
        | 'k' ->
          (match pos with
           | [ l1; l2; kv ] ->
             let k = value kv in
             if Float.abs k >= 1. then
               fail num "mutual coupling must satisfy |k| < 1";
             Netlist.Mutual { name; l1 = prefixed prefix l1;
                              l2 = prefixed prefix l2; k }
           | _ -> fail num "mutual: Kname L1 L2 k")
        | 'x' ->
          expand_subckt ctx ~env ~bindings ~prefix num first rest;
          (* Devices were added by the expansion; nothing more to add. *)
          raise Exit
        | _ -> fail num "unknown element %S" first
      in
      (try ctx.circ <- Netlist.add ctx.circ dev
       with Invalid_argument m -> fail num "%s" m);
      (* Remember where the card came from so lint findings and
         elaboration errors can cite file:line. *)
      ctx.circ <- Netlist.set_device_line ctx.circ name num
    end

and expand_subckt ctx ~env ~bindings ~prefix num xname rest =
  let pos = positional rest in
  let overrides = List.filter (fun t -> split_eq t <> None) rest in
  match List.rev pos with
  | [] | [ _ ] -> fail num "subckt call: Xname nodes... NAME"
  | sub_name :: rev_actuals ->
    let actuals = List.rev rev_actuals in
    (match Hashtbl.find_opt ctx.subckts (lower sub_name) with
     | None -> fail num "unknown subcircuit %S" sub_name
     | Some { formals; defaults; body } ->
       if List.length formals <> List.length actuals then
         fail num "subckt %s expects %d nodes, got %d" sub_name
           (List.length formals) (List.length actuals);
       let inner_prefix = prefixed prefix xname ^ "." in
       let actual_nodes = List.map (map_node bindings prefix) actuals in
       let port_bindings =
         List.map2 (fun f a -> (lower f, a)) formals actual_nodes
       in
       (* Parameter environment: caller env + defaults + overrides. *)
       let defaults_env =
         List.map (fun (k, vexpr) -> (k, value_of env num vexpr)) defaults
       in
       let override_env =
         List.filter_map
           (fun t ->
             match split_eq t with
             | Some (k, v) -> Some (k, value_of env num v)
             | None -> None)
           overrides
       in
       let env' = override_env @ defaults_env @ env in
       List.iter
         (fun l ->
           try
             process_line ctx ~env:env' ~bindings:port_bindings
               ~prefix:inner_prefix l
           with Exit -> ())
         body)

and process_directive ctx ~env num card rest =
  let value = value_of env num in
  match card with
  | ".model" ->
    (match positional rest with
     | name :: kind :: _ ->
       let params =
         List.filter_map
           (fun t ->
             match split_eq t with
             | Some (k, v) -> Some (k, value v)
             | None -> None)
           rest
       in
       ctx.circ <-
         Netlist.add_model ctx.circ
           { Netlist.model_name = name; kind = model_kind_of num kind; params }
     | _ -> fail num ".model NAME kind k=v ...")
  | ".param" ->
    List.iter
      (fun t ->
        match split_eq t with
        | Some (k, v) ->
          let current = Netlist.params ctx.circ in
          let v = value_of (current @ env) num v in
          ctx.circ <- Netlist.add_param ctx.circ k v
        | None -> fail num ".param needs k=v entries")
      rest
  | ".temp" ->
    (match positional rest with
     | [ t ] -> ctx.circ <- Netlist.with_temp (value t) ctx.circ
     | _ -> fail num ".temp t")
  | ".op" -> ctx.circ <- Netlist.add_directive ctx.circ Netlist.Op
  | ".nodeset" ->
    (* Accept both "v(node)=val" and "node=val" entries. With parentheses
       stripped by the tokeniser, "v(out)=2.5" arrives as "v" "out=2.5". *)
    let entries =
      List.filter_map
        (fun t ->
          match split_eq t with
          | Some (k, v) ->
            let k =
              if String.length k > 2 && String.sub k 0 2 = "v(" then
                String.sub k 2 (String.length k - 2)
              else k
            in
            Some (k, value_of env num v)
          | None -> None)
        rest
    in
    if entries = [] then fail num ".nodeset needs node=value entries";
    ctx.circ <- Netlist.add_directive ctx.circ (Netlist.Nodeset entries)
  | ".ac" ->
    (match positional rest with
     | [ mode; n; f1; f2 ] ->
       let n = int_of_float (value n) in
       let f1 = value f1 and f2 = value f2 in
       let sweep =
         match lower mode with
         | "dec" -> Numerics.Sweep.decade f1 f2 n
         | "lin" -> Numerics.Sweep.linear f1 f2 n
         | other -> fail num "unsupported .ac mode %S" other
       in
       ctx.circ <- Netlist.add_directive ctx.circ (Netlist.Ac sweep)
     | _ -> fail num ".ac dec|lin n f1 f2")
  | ".tran" ->
    (match positional rest with
     | [ tstep; tstop ] ->
       ctx.circ <-
         Netlist.add_directive ctx.circ
           (Netlist.Tran { tstep = value tstep; tstop = value tstop })
     | _ -> fail num ".tran tstep tstop")
  | ".stab" ->
    (match positional rest with
     | [ n ] when lower n = "all" ->
       ctx.circ <- Netlist.add_directive ctx.circ Netlist.Stab_all
     | [ n ] -> ctx.circ <- Netlist.add_directive ctx.circ (Netlist.Stab_node n)
     | _ -> fail num ".stab node|all")
  | ".options" | ".option" ->
    List.iter
      (fun t ->
        match split_eq t with
        | Some (k, v) -> ctx.circ <- Netlist.add_option ctx.circ k (value v)
        | None -> fail num "%s needs k=v entries" card)
      rest
  | ".end" -> ()
  | ".ends" -> fail num ".ends outside a subckt"
  | ".lib" -> fail num "%s is not supported in this reader" card
  | other -> fail num "unknown card %S" other

(* Heuristic used only to decide whether the first line of a string netlist
   is a SPICE title or already a card: element cards start with a known
   element letter and have at least 4 fields, directives with '.'. *)
let looks_like_card s =
  match String.trim s with
  | "" -> false
  | t ->
    let c = Char.lowercase_ascii t.[0] in
    let fields =
      List.filter (( <> ) "") (String.split_on_char ' ' t)
    in
    c = '.'
    || (String.contains "rclvieghfdqmxk" c && List.length fields >= 4)

let parse_string ?(name = "netlist") ?(base_dir = Filename.current_dir_name)
    ?(first_line_title = false) text =
  let text = expand_includes ~base_dir ~depth:0 text in
  let lines = String.split_on_char '\n' text in
  (* When the first line is consumed as the title, keep numbering the
     body by physical line so recorded positions match the file. *)
  let title, body_first_num, body_text =
    match lines with
    | first :: rest
      when String.trim first <> ""
           && (String.trim first).[0] <> '.'
           && (String.trim first).[0] <> '*'
           && (first_line_title || not (looks_like_card first)) ->
      (String.trim first, 2, String.concat "\n" rest)
    | _ -> (name, 1, text)
  in
  let llines = logical_lines ~first_num:body_first_num body_text in
  let subckts, top = extract_subckts llines in
  let ctx = { subckts; circ = Netlist.empty ~title () } in
  (* First pass: collect .param cards so devices can reference them in any
     order, mirroring SPICE behaviour. *)
  List.iter
    (fun { num; text } ->
      match tokenize num text with
      | card :: rest when lower card = ".param" ->
        process_directive ctx ~env:[] num ".param" rest
      | _ -> ())
    top;
  let env = Netlist.params ctx.circ in
  List.iter
    (fun ({ num; text } as l) ->
      match tokenize num text with
      | [] -> ()
      | card :: _ when lower card = ".param" -> ()
      | _ ->
        (try process_line ctx ~env ~bindings:[] ~prefix:"" l
         with Exit -> () | Parse_error _ as e -> raise e
            | Invalid_argument m -> fail num "%s" m))
    top;
  ctx.circ

let parse_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  (* Files follow the strict SPICE convention: the first line is always the
     title (unless it is a comment or a dot-card, tolerated for headless
     decks). *)
  parse_string ~name:(Filename.basename path)
    ~base_dir:(Filename.dirname path) ~first_line_title:true text
