(** Lint rule model: severities, findings and the rule interface.

    A rule is a named static check over a parsed netlist (and, when
    elaboration succeeds, the compiled MNA system). It reports findings
    that speak the designer's vocabulary — net and device names plus the
    netlist source line — instead of matrix indices. *)

type severity = Error | Warning | Info

val severity_string : severity -> string
(** ["error"], ["warning"], ["info"]. *)

val severity_rank : severity -> int
(** Error < Warning < Info (for sorting, most severe first). *)

type finding = {
  rule_id : string;          (** stable rule identifier, e.g. "vsource-loop" *)
  severity : severity;
  message : string;          (** one-line, human-readable explanation *)
  nets : string list;        (** nets involved, most relevant first *)
  devices : string list;     (** devices involved, most relevant first *)
  line : int option;         (** netlist source line of the lead device *)
}

val finding :
  ?nets:string list -> ?devices:string list -> ?line:int ->
  id:string -> severity -> string -> finding

(** Everything a rule may inspect. [mna] is [None] when elaboration
    failed (e.g. a missing model card); rules needing the compiled system
    then simply skip. [static] is the signal-flow report — lazy, so a
    pass with no graph-powered rule never builds the graph, and one pass
    builds it at most once. *)
type ctx = {
  circ : Circuit.Netlist.t;
  mna : Engine.Mna.t option;
  static : Staticanalysis.Report.t Lazy.t;
}

val make_ctx : Circuit.Netlist.t -> ctx
(** Compile the circuit when possible; never raises. *)

type t = {
  id : string;               (** stable identifier, also the CLI name *)
  title : string;            (** one-line description for the catalogue *)
  severity : severity;       (** default severity of this rule's findings *)
  check : ctx -> finding list;
}

val pp_finding : ?file:string -> Format.formatter -> finding -> unit
(** ["file:line: severity[rule-id]: message (nets: ...; devices: ...)"].
    Omits the location prefix when no line was recorded. *)
