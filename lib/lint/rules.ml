open Circuit
open Rule

let fmt_f = Numerics.Engnum.format

let canon n = if Netlist.is_ground n then Netlist.ground else n

let line_of circ name = Netlist.device_line circ name

let mk ctx ?nets ?devices ?lead ~id severity fmt =
  Printf.ksprintf
    (fun message ->
      let line = Option.bind lead (line_of ctx.circ) in
      finding ?nets ?devices ?line ~id severity message)
    fmt

(* ---- ports of the Topology.check rules, one lint rule per issue ---- *)

let topo_rule ~id ~title ~severity select =
  { id; title; severity;
    check =
      (fun ctx ->
        Topology.check ctx.circ
        |> List.filter_map (fun issue -> select ctx issue)) }

let no_ground =
  topo_rule ~id:"no-ground" ~title:"nothing connects to ground (node 0)"
    ~severity:Error (fun ctx -> function
    | Topology.No_ground ->
      Some
        (mk ctx ~id:"no-ground" Error
           "no device connects to ground (node 0); every analysis needs a \
            reference net")
    | _ -> None)

let dangling_net =
  topo_rule ~id:"dangling-net" ~title:"net with a single connection"
    ~severity:Warning (fun ctx -> function
    | Topology.Dangling_node n ->
      Some
        (mk ctx ~nets:[ n ] ~id:"dangling-net" Warning
           "net %S has a single connection (dead end, possibly a \
            misspelled net name)" n)
    | _ -> None)

let floating_net =
  topo_rule ~id:"floating-net" ~title:"nets with no path to ground"
    ~severity:Error (fun ctx -> function
    | Topology.Disconnected ns ->
      Some
        (mk ctx ~nets:ns ~id:"floating-net" Error
           "nets with no conductive path to ground: their voltages are \
            undefined")
    | _ -> None)

let no_dc_path =
  topo_rule ~id:"no-dc-path" ~title:"nets isolated from ground at DC"
    ~severity:Warning (fun ctx -> function
    | Topology.No_dc_path ns ->
      Some
        (mk ctx ~nets:ns ~id:"no-dc-path" Warning
           "every path from these nets to ground crosses a capacitor: the \
            DC matrix is singular up to gmin and the bias point is \
            arbitrary")
    | _ -> None)

(* ---- naming ---- *)

let duplicate_name =
  { id = "duplicate-name"; title = "two devices share a name";
    severity = Error;
    check =
      (fun ctx ->
        (* The parser rejects duplicates, but circuits built or rewritten
           through the API (map_devices renames) can still collide. *)
        let seen = Hashtbl.create 64 in
        List.filter_map
          (fun d ->
            let name = Netlist.device_name d in
            let k = String.lowercase_ascii name in
            if Hashtbl.mem seen k then
              Some
                (mk ctx ~devices:[ name ] ~lead:name ~id:"duplicate-name"
                   Error
                   "device name %S is used more than once \
                    (case-insensitive)" name)
            else begin
              Hashtbl.add seen k ();
              None
            end)
          (Netlist.devices ctx.circ)) }

(* ---- element-local value and wiring checks ---- *)

(* Output terminals of a device: the pair whose short circuit degrades
   the stamped equations (control pins sense only). *)
let output_pair = function
  | Netlist.Resistor { name; n1; n2; _ } -> Some (name, n1, n2, `Passive)
  | Netlist.Capacitor { name; n1; n2; _ } -> Some (name, n1, n2, `Passive)
  | Netlist.Inductor { name; n1; n2; _ } -> Some (name, n1, n2, `Vdefined)
  | Netlist.Vsource { name; npos; nneg; _ } ->
    Some (name, npos, nneg, `Vdefined)
  | Netlist.Isource { name; npos; nneg; _ } ->
    Some (name, npos, nneg, `Passive)
  | Netlist.Vcvs { name; npos; nneg; _ } -> Some (name, npos, nneg, `Vdefined)
  | Netlist.Ccvs { name; npos; nneg; _ } -> Some (name, npos, nneg, `Vdefined)
  | Netlist.Vccs { name; npos; nneg; _ } -> Some (name, npos, nneg, `Passive)
  | Netlist.Cccs { name; npos; nneg; _ } -> Some (name, npos, nneg, `Passive)
  | Netlist.Diode { name; npos; nneg; _ } -> Some (name, npos, nneg, `Passive)
  | Netlist.Bjt _ | Netlist.Mosfet _ | Netlist.Mutual _ -> None

let shorted_element =
  { id = "shorted-element"; title = "both terminals of an element on one net";
    severity = Error;
    check =
      (fun ctx ->
        List.filter_map
          (fun d ->
            match output_pair d with
            | Some (name, a, b, kind) when String.equal (canon a) (canon b)
              ->
              let sev, why =
                match kind with
                | `Vdefined ->
                  ( Error,
                    "its branch equation becomes 0 = 0 and the MNA matrix \
                     is singular" )
                | `Passive -> (Warning, "it contributes nothing")
              in
              Some
                (mk ctx ~nets:[ canon a ] ~devices:[ name ] ~lead:name
                   ~id:"shorted-element" sev
                   "both terminals of %S are on net %S: %s" name (canon a)
                   why)
            | _ -> None)
          (Netlist.devices ctx.circ)) }

let zero_value =
  { id = "zero-value"; title = "zero-valued R/L/C"; severity = Error;
    check =
      (fun ctx ->
        List.filter_map
          (fun d ->
            match d with
            | Netlist.Resistor { name; r; _ } when r = 0. ->
              Some
                (mk ctx ~devices:[ name ] ~lead:name ~id:"zero-value" Error
                   "resistor %S has zero resistance (no conductance stamp \
                    exists; use a V source of 0 V for an ideal short)"
                   name)
            | Netlist.Capacitor { name; c; _ } when c = 0. ->
              Some
                (mk ctx ~devices:[ name ] ~lead:name ~id:"zero-value"
                   Warning "capacitor %S has zero capacitance (it is \
                             invisible to every analysis)" name)
            | Netlist.Inductor { name; l; _ } when l = 0. ->
              Some
                (mk ctx ~devices:[ name ] ~lead:name ~id:"zero-value"
                   Warning "inductor %S has zero inductance (a pure short \
                             at all frequencies)" name)
            | _ -> None)
          (Netlist.devices ctx.circ)) }

let suspicious_value =
  { id = "suspicious-value";
    title = "component magnitude suggests a unit typo"; severity = Warning;
    check =
      (fun ctx ->
        List.filter_map
          (fun d ->
            match d with
            | Netlist.Capacitor { name; c; _ } when Float.abs c >= 0.1 ->
              Some
                (mk ctx ~devices:[ name ] ~lead:name ~id:"suspicious-value"
                   Warning
                   "capacitor %S is %sF — farad-scale values usually mean \
                    a missing unit suffix (10 means 10 F, not 10 pF)" name
                   (fmt_f c))
            | Netlist.Inductor { name; l; _ } when Float.abs l >= 100. ->
              Some
                (mk ctx ~devices:[ name ] ~lead:name ~id:"suspicious-value"
                   Warning
                   "inductor %S is %sH — hecto-henry values usually mean \
                    a missing unit suffix" name (fmt_f l))
            | Netlist.Resistor { name; r; _ } when Float.abs r >= 1e12 ->
              Some
                (mk ctx ~devices:[ name ] ~lead:name ~id:"suspicious-value"
                   Info
                   "resistor %S is %sOhm — tera-ohm values are beyond \
                    realistic leakage and may starve the DC solver" name
                   (fmt_f r))
            | _ -> None)
          (Netlist.devices ctx.circ)) }

(* ---- reference checks (models, controlling devices, mutuals) ---- *)

let unknown_model =
  { id = "unknown-model"; title = "device references a missing model card";
    severity = Error;
    check =
      (fun ctx ->
        let check_model name mname what ok_kind =
          match Netlist.find_model ctx.circ mname with
          | None ->
            Some
              (mk ctx ~devices:[ name ] ~lead:name ~id:"unknown-model" Error
                 "%s %S references model %S but no .model card defines it"
                 what name mname)
          | Some m when not (ok_kind m.Netlist.kind) ->
            Some
              (mk ctx ~devices:[ name ] ~lead:name ~id:"unknown-model" Error
                 "%s %S references model %S, which has the wrong kind for \
                  a %s" what name mname what)
          | Some _ -> None
        in
        List.filter_map
          (fun d ->
            match d with
            | Netlist.Diode { name; model; _ } ->
              check_model name model "diode" (( = ) Netlist.Dmodel)
            | Netlist.Bjt { name; model; _ } ->
              check_model name model "bjt" (fun k ->
                  k = Netlist.Npn || k = Netlist.Pnp)
            | Netlist.Mosfet { name; model; _ } ->
              check_model name model "mosfet" (fun k ->
                  k = Netlist.Nmos || k = Netlist.Pmos)
            | _ -> None)
          (Netlist.devices ctx.circ)) }

let has_branch = function
  | Netlist.Vsource _ | Netlist.Inductor _ | Netlist.Vcvs _
  | Netlist.Ccvs _ -> true
  | _ -> false

let unknown_control =
  { id = "unknown-control";
    title = "F/H element names a missing controlling source";
    severity = Error;
    check =
      (fun ctx ->
        List.filter_map
          (fun d ->
            match d with
            | Netlist.Cccs { name; vname; _ }
            | Netlist.Ccvs { name; vname; _ } -> (
              match Netlist.find_device ctx.circ vname with
              | None ->
                Some
                  (mk ctx ~devices:[ name; vname ] ~lead:name
                     ~id:"unknown-control" Error
                     "%S senses the current of %S, but no such device \
                      exists" name vname)
              | Some c when not (has_branch c) ->
                Some
                  (mk ctx ~devices:[ name; vname ] ~lead:name
                     ~id:"unknown-control" Error
                     "%S senses the current of %S, which carries no \
                      branch current (only V, L, E, H do)" name vname)
              | Some _ -> None)
            | _ -> None)
          (Netlist.devices ctx.circ)) }

let bad_mutual =
  { id = "bad-mutual"; title = "K element with bad inductor refs or |k|>=1";
    severity = Error;
    check =
      (fun ctx ->
        List.concat_map
          (fun d ->
            match d with
            | Netlist.Mutual { name; l1; l2; k } ->
              let ind ln =
                match Netlist.find_device ctx.circ ln with
                | Some (Netlist.Inductor _) -> []
                | Some _ ->
                  [ mk ctx ~devices:[ name; ln ] ~lead:name ~id:"bad-mutual"
                      Error "K element %S couples %S, which is not an \
                             inductor" name ln ]
                | None ->
                  [ mk ctx ~devices:[ name; ln ] ~lead:name ~id:"bad-mutual"
                      Error "K element %S couples %S, but no such inductor \
                             exists" name ln ]
              in
              let kval =
                if Float.abs k >= 1. then
                  [ mk ctx ~devices:[ name ] ~lead:name ~id:"bad-mutual"
                      Error
                      "K element %S has |k| = %s >= 1: the inductance \
                       matrix is not positive definite" name
                      (fmt_f (Float.abs k)) ]
                else []
              in
              ind l1 @ ind l2 @ kval
            | _ -> [])
          (Netlist.devices ctx.circ)) }

(* ---- connection-pattern rules ---- *)

(* Electrical (current-carrying) terminals of a device; control pins
   excluded. *)
let electrical_nodes = function
  | Netlist.Vcvs { npos; nneg; _ } | Netlist.Vccs { npos; nneg; _ } ->
    [ npos; nneg ]
  | d -> Netlist.device_nodes d

let is_source = function
  | Netlist.Vsource _ | Netlist.Isource _ -> true
  | _ -> false

let source_only_net =
  { id = "source-only-net";
    title = "net touched only by independent sources/probes";
    severity = Warning;
    check =
      (fun ctx ->
        let touches : (string, bool list ref) Hashtbl.t =
          Hashtbl.create 64
        in
        (* A net sensed by an E/G control pin is observed, hence useful
           even when only a source drives it (standard input pattern). *)
        let sensed = Hashtbl.create 8 in
        List.iter
          (fun d ->
            (match d with
             | Netlist.Vcvs { cpos; cneg; _ } | Netlist.Vccs { cpos; cneg; _ }
               ->
               Hashtbl.replace sensed (canon cpos) ();
               Hashtbl.replace sensed (canon cneg) ()
             | _ -> ());
            List.iter
              (fun n ->
                if not (Netlist.is_ground n) then begin
                  let cell =
                    match Hashtbl.find_opt touches n with
                    | Some c -> c
                    | None ->
                      let c = ref [] in
                      Hashtbl.add touches n c;
                      c
                  in
                  cell := is_source d :: !cell
                end)
              (electrical_nodes d))
          (Netlist.devices ctx.circ);
        Hashtbl.fold
          (fun n kinds acc ->
            if
              !kinds <> []
              && List.for_all Fun.id !kinds
              && not (Hashtbl.mem sensed (canon n))
            then
              mk ctx ~nets:[ n ] ~id:"source-only-net" Warning
                "net %S is touched only by independent sources/probes: \
                 nothing loads it" n
              :: acc
            else acc)
          touches []) }

let unconnected_control =
  { id = "unconnected-control";
    title = "controlled source senses an otherwise-unused net";
    severity = Warning;
    check =
      (fun ctx ->
        (* Nets some element electrically drives or loads. *)
        let driven = Hashtbl.create 64 in
        List.iter
          (fun d ->
            List.iter
              (fun n -> Hashtbl.replace driven (canon n) ())
              (electrical_nodes d))
          (Netlist.devices ctx.circ);
        List.concat_map
          (fun d ->
            match d with
            | Netlist.Vcvs { name; cpos; cneg; _ }
            | Netlist.Vccs { name; cpos; cneg; _ } ->
              List.filter_map
                (fun n ->
                  if Hashtbl.mem driven (canon n) then None
                  else
                    Some
                      (mk ctx ~nets:[ n ] ~devices:[ name ] ~lead:name
                         ~id:"unconnected-control" Warning
                         "%S senses net %S, which no element drives or \
                          loads (misspelled net name?)" name n))
                [ cpos; cneg ]
            | _ -> [])
          (Netlist.devices ctx.circ)) }

(* Union-find over net names. *)
module Uf = struct
  type t = (string, string) Hashtbl.t

  let create () : t = Hashtbl.create 64

  let rec find (t : t) x =
    match Hashtbl.find_opt t x with
    | None | Some "" -> x
    | Some p ->
      let r = find t p in
      if r <> p then Hashtbl.replace t x r;
      r

  let union t a b =
    let ra = find t a and rb = find t b in
    if ra <> rb then Hashtbl.replace t ra rb
end

(* Voltage-defined elements fix the voltage between their terminals; a
   cycle of them over-determines KVL and the MNA matrix is singular for
   all but measure-zero element values. *)
let vsource_loop =
  { id = "vsource-loop";
    title = "loop of voltage-defined elements (V/L/E/H)"; severity = Error;
    check =
      (fun ctx ->
        let edges =
          List.filter_map
            (fun d ->
              match d with
              | Netlist.Vsource { name; npos; nneg; _ }
              | Netlist.Vcvs { name; npos; nneg; _ }
              | Netlist.Ccvs { name; npos; nneg; _ } ->
                Some (name, canon npos, canon nneg)
              | Netlist.Inductor { name; n1; n2; _ } ->
                Some (name, canon n1, canon n2)
              | _ -> None)
            (Netlist.devices ctx.circ)
        in
        let uf = Uf.create () in
        let closers =
          List.filter_map
            (fun (name, a, b) ->
              if String.equal a b then None (* shorted-element's case *)
              else if Uf.find uf a = Uf.find uf b then Some (name, a, b)
              else begin
                Uf.union uf a b;
                None
              end)
            edges
        in
        List.map
          (fun (name, a, b) ->
            (* Name the loop companions: every voltage-defined device in
               the same connected component. *)
            let root = Uf.find uf a in
            let members =
              List.filter_map
                (fun (n, x, _) ->
                  if n <> name && Uf.find uf x = root then Some n else None)
                edges
            in
            mk ctx ~nets:[ a; b ] ~devices:(name :: members) ~lead:name
              ~id:"vsource-loop" Error
              "%S closes a loop of voltage-defined elements between nets \
               %S and %S: KVL around the loop is over-determined and the \
               matrix is singular" name a b)
          closers) }

(* DC-current-path edges: everything that can carry DC current with a
   defined branch relation. Capacitors (open), current sources (fixed
   current) and controlled-current-source outputs are excluded. *)
let dc_path_pairs = function
  | Netlist.Resistor { n1; n2; _ } | Netlist.Inductor { n1; n2; _ } ->
    [ (n1, n2) ]
  | Netlist.Vsource { npos; nneg; _ } | Netlist.Vcvs { npos; nneg; _ }
  | Netlist.Ccvs { npos; nneg; _ } -> [ (npos, nneg) ]
  | Netlist.Diode { npos; nneg; _ } -> [ (npos, nneg) ]
  | Netlist.Bjt { nc; nb; ne; _ } -> [ (nc, nb); (nb, ne) ]
  | Netlist.Mosfet { nd; ns; nb; _ } -> [ (nd, ns); (ns, nb) ]
  | Netlist.Capacitor _ | Netlist.Isource _ | Netlist.Vccs _
  | Netlist.Cccs _ | Netlist.Mutual _ -> []

let isource_cutset =
  { id = "isource-cutset";
    title = "subcircuit fed only through current sources/capacitors";
    severity = Error;
    check =
      (fun ctx ->
        let uf = Uf.create () in
        let all_nets = Hashtbl.create 64 in
        List.iter
          (fun d ->
            List.iter
              (fun n -> Hashtbl.replace all_nets (canon n) ())
              (electrical_nodes d);
            List.iter
              (fun (a, b) -> Uf.union uf (canon a) (canon b))
              (dc_path_pairs d))
          (Netlist.devices ctx.circ);
        let groot = Uf.find uf Netlist.ground in
        (* Components with no DC return path, keyed by root. *)
        let comps : (string, string list ref) Hashtbl.t =
          Hashtbl.create 8
        in
        Hashtbl.iter
          (fun n () ->
            let r = Uf.find uf n in
            if r <> groot then begin
              let cell =
                match Hashtbl.find_opt comps r with
                | Some c -> c
                | None ->
                  let c = ref [] in
                  Hashtbl.add comps r c;
                  c
              in
              cell := n :: !cell
            end)
          all_nets;
        Hashtbl.fold
          (fun root nets acc ->
            let inside n = Uf.find uf (canon n) = root in
            (* The devices forcing or coupling current across the cut. *)
            let drivers, caps =
              List.fold_left
                (fun (drv, caps) d ->
                  match d with
                  | Netlist.Isource { name; npos; nneg; _ }
                  | Netlist.Vccs { name; npos; nneg; _ }
                  | Netlist.Cccs { name; npos; nneg; _ }
                    when inside npos || inside nneg -> (name :: drv, caps)
                  | Netlist.Capacitor { name; n1; n2; _ }
                    when inside n1 || inside n2 -> (drv, name :: caps)
                  | _ -> (drv, caps))
                ([], []) (Netlist.devices ctx.circ)
            in
            (* With no current forced in, this is a plain floating/cap
               island: floating-net / no-dc-path already report it. *)
            if drivers = [] then acc
            else
              let nets = List.sort_uniq compare !nets in
              mk ctx ~nets
                ~devices:(List.rev drivers @ List.rev caps)
                ~id:"isource-cutset" Error
                "nets %s have no DC current path to ground, yet current \
                 is forced into them through %s: KCL cannot balance at DC"
                (String.concat ", " nets)
                (String.concat ", " (List.rev drivers))
              :: acc)
          comps []) }

(* ---- structural singularity over the compiled MNA pattern ---- *)

let singular_structure =
  { id = "singular-structure";
    title = "MNA pattern admits no perfect row/column matching";
    severity = Error;
    check =
      (fun ctx ->
        match ctx.mna with
        | None -> []
        | Some mna ->
          let size = mna.Engine.Mna.size in
          if size = 0 then []
          else begin
            let adj = Array.make size [] in
            List.iter
              (fun (i, j) -> adj.(i) <- j :: adj.(i))
              (Engine.Mna.structural_pattern mna);
            let m = Matching.max_matching ~rows:size ~cols:size ~adj in
            if m.Matching.size >= size then []
            else begin
              let name = Engine.Mna.unknown_name mna in
              let rows =
                List.map name (Matching.unmatched_rows m)
              in
              let cols =
                List.map name (Matching.unmatched_cols m)
              in
              let split names =
                List.partition_map
                  (fun s ->
                    let n = String.length s in
                    if n > 3 && String.sub s 0 2 = "V(" then
                      Left (String.sub s 2 (n - 3))
                    else if n > 3 && String.sub s 0 2 = "I(" then
                      Right (String.sub s 2 (n - 3))
                    else Right s)
                  names
              in
              let rnets, rdevs = split rows and cnets, cdevs = split cols in
              let nets = List.sort_uniq compare (rnets @ cnets) in
              let devices = List.sort_uniq compare (rdevs @ cdevs) in
              [ mk ctx ~nets ~devices ~id:"singular-structure" Error
                  "the MNA system is structurally singular (rank \
                   deficiency %d): no pivot assignment covers equation%s \
                   %s / unknown%s %s — the matrix is singular for every \
                   element value"
                  (size - m.Matching.size)
                  (if List.length rows = 1 then "" else "s")
                  (String.concat ", " rows)
                  (if List.length cols = 1 then "" else "s")
                  (String.concat ", " cols) ]
            end
          end) }

(* ---- graph-powered rules over the static signal-flow report ----

   These force [ctx.static] (built at most once per lint pass). The
   report is deterministic and never raises on a parseable netlist; the
   runner's crash containment covers the rest. *)

let loop_no_compensation =
  { id = "loop-no-compensation";
    title = "global feedback loop with no capacitor on any member net";
    severity = Warning;
    check =
      (fun ctx ->
        let report = Lazy.force ctx.static in
        let cap_nets =
          List.concat_map
            (fun d ->
              match d with
              | Netlist.Capacitor { n1; n2; _ } -> [ canon n1; canon n2 ]
              | _ -> [])
            (Netlist.devices ctx.circ)
        in
        List.filter_map
          (fun (l : Staticanalysis.Report.loop) ->
            match l.kind with
            | Staticanalysis.Report.Local _ -> None
            | Staticanalysis.Report.Global ->
              if List.exists (fun n -> List.mem n cap_nets) l.nets then None
              else
                Some
                  (mk ctx ~nets:l.nets ~devices:l.devices
                     ~id:"loop-no-compensation" Warning
                     "global feedback loop %s has no capacitor on any \
                      member net: no compensation shapes its response"
                     l.id))
          report.loops) }

let gain_outside_loop =
  { id = "gain-outside-loop";
    title = "gain device closing no feedback loop"; severity = Info;
    check =
      (fun ctx ->
        let report = Lazy.force ctx.static in
        List.map
          (fun d ->
            mk ctx ~devices:[ d ] ~lead:d ~id:"gain-outside-loop" Info
              "%S contributes gain but closes no cycle in the signal-flow \
               graph: it runs open-loop (bias distribution, or a missing \
               feedback connection)" d)
          report.open_gain) }

let loop_through_suspect =
  { id = "loop-through-suspect";
    title = "feedback loop runs through a value-flagged device";
    severity = Warning;
    check =
      (fun ctx ->
        let flagged =
          List.concat_map
            (fun (f : finding) -> f.devices)
            (zero_value.check ctx @ suspicious_value.check ctx)
          |> List.sort_uniq compare
        in
        if flagged = [] then []
        else
          let report = Lazy.force ctx.static in
          List.filter_map
            (fun (l : Staticanalysis.Report.loop) ->
              match List.filter (fun d -> List.mem d flagged) l.devices with
              | [] -> None
              | bad ->
                Some
                  (mk ctx ~nets:l.nets ~devices:bad
                     ~id:"loop-through-suspect" Warning
                     "feedback loop %s runs through %s, flagged by the \
                      value checks: its loop gain is untrustworthy" l.id
                     (String.concat ", " bad)))
            report.loops) }

let undrivable_probe =
  { id = "undrivable-probe";
    title = ".stab target unknown, voltage-pinned or source-unreachable";
    severity = Error;
    check =
      (fun ctx ->
        let report = Lazy.force ctx.static in
        let g = report.Staticanalysis.Report.graph in
        let reach = Staticanalysis.Sfg.reachable_from_sources g in
        List.filter_map
          (fun n ->
            if Netlist.is_ground n then
              Some
                (mk ctx ~nets:[ n ] ~id:"undrivable-probe" Warning
                   ".stab targets ground, the AC reference: its response \
                    is identically zero")
            else
              match Staticanalysis.Sfg.index g n with
              | None ->
                Some
                  (mk ctx ~nets:[ n ] ~id:"undrivable-probe" Error
                     ".stab names net %S, which does not exist in the \
                      design" n)
              | Some v ->
                if Staticanalysis.Sfg.is_pinned g v then
                  let driver =
                    Option.value ~default:"?"
                      (Staticanalysis.Sfg.pinning_driver g v)
                  in
                  Some
                    (mk ctx ~nets:[ n ] ~devices:[ driver ]
                       ~id:"undrivable-probe" Warning
                       ".stab target %S is voltage-pinned by %S: its \
                        driving-point response reveals nothing" n driver)
                else (
                  match reach with
                  | Some seen when not seen.(v) ->
                    Some
                      (mk ctx ~nets:[ n ] ~id:"undrivable-probe" Warning
                         ".stab target %S is unreachable from every \
                          independent source: stimulus cannot excite it" n)
                  | _ -> None))
          (Staticanalysis.Sfg.stab_targets g)) }

let unobservable_loop =
  { id = "unobservable-loop";
    title = "feedback loop with no probeable member net"; severity = Warning;
    check =
      (fun ctx ->
        let report = Lazy.force ctx.static in
        List.map
          (fun (l : Staticanalysis.Report.loop) ->
            mk ctx ~nets:l.nets ~devices:l.devices ~id:"unobservable-loop"
              Warning
              "every member net of feedback loop %s is voltage-pinned: no \
               probe can observe it and --nodes auto will not analyze it"
              l.id)
          report.Staticanalysis.Report.uncovered) }

let all =
  [ no_ground; floating_net; dangling_net; no_dc_path; duplicate_name;
    shorted_element; zero_value; suspicious_value; unknown_model;
    unknown_control; bad_mutual; source_only_net; unconnected_control;
    vsource_loop; isource_cutset; singular_structure; loop_no_compensation;
    gain_outside_loop; loop_through_suspect; undrivable_probe;
    unobservable_loop ]

let find id = List.find_opt (fun r -> String.equal r.Rule.id id) all
