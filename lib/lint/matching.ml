type result = {
  size : int;
  row_match : int array;
  col_match : int array;
}

(* Hopcroft–Karp: repeat { BFS to layer free rows by shortest alternating
   path, DFS along strictly increasing layers to augment a maximal set of
   vertex-disjoint paths } until no augmenting path exists. *)
let max_matching ~rows ~cols ~adj =
  if Array.length adj <> rows then invalid_arg "Matching.max_matching";
  let row_match = Array.make rows (-1) in
  let col_match = Array.make cols (-1) in
  let inf = max_int in
  let dist = Array.make rows inf in
  let queue = Queue.create () in
  let bfs () =
    Queue.clear queue;
    let found = ref false in
    for r = 0 to rows - 1 do
      if row_match.(r) = -1 then begin
        dist.(r) <- 0;
        Queue.add r queue
      end
      else dist.(r) <- inf
    done;
    while not (Queue.is_empty queue) do
      let r = Queue.pop queue in
      List.iter
        (fun c ->
          match col_match.(c) with
          | -1 -> found := true
          | r' ->
            if dist.(r') = inf then begin
              dist.(r') <- dist.(r) + 1;
              Queue.add r' queue
            end)
        adj.(r)
    done;
    !found
  in
  let rec dfs r =
    let rec try_cols = function
      | [] ->
        dist.(r) <- inf;
        false
      | c :: rest ->
        let ok =
          match col_match.(c) with
          | -1 -> true
          | r' -> dist.(r') = dist.(r) + 1 && dfs r'
        in
        if ok then begin
          row_match.(r) <- c;
          col_match.(c) <- r;
          true
        end
        else try_cols rest
    in
    try_cols adj.(r)
  in
  let size = ref 0 in
  while bfs () do
    for r = 0 to rows - 1 do
      if row_match.(r) = -1 && dfs r then incr size
    done
  done;
  { size = !size; row_match; col_match }

let unmatched_rows t =
  let acc = ref [] in
  for r = Array.length t.row_match - 1 downto 0 do
    if t.row_match.(r) = -1 then acc := r :: !acc
  done;
  !acc

let unmatched_cols t =
  let acc = ref [] in
  for c = Array.length t.col_match - 1 downto 0 do
    if t.col_match.(c) = -1 then acc := c :: !acc
  done;
  !acc
