type config = {
  disabled : string list;
}

let default = { disabled = [] }

let enabled cfg (r : Rule.t) =
  not (List.exists (String.equal r.Rule.id) cfg.disabled)

let compare_finding (a : Rule.finding) (b : Rule.finding) =
  let c =
    compare (Rule.severity_rank a.severity) (Rule.severity_rank b.severity)
  in
  if c <> 0 then c
  else
    let c =
      match (a.line, b.line) with
      | Some la, Some lb -> compare la lb
      | Some _, None -> -1
      | None, Some _ -> 1
      | None, None -> 0
    in
    if c <> 0 then c else compare a.rule_id b.rule_id

let run ?(config = default) circ =
  let ctx = Rule.make_ctx circ in
  Rules.all
  |> List.concat_map (fun (r : Rule.t) ->
         if not (enabled config r) then []
         else
           (* A crashing rule must not take the whole lint pass down. *)
           match r.check ctx with
           | fs -> fs
           | exception e ->
             [ Rule.finding ~id:r.id Rule.Warning
                 (Printf.sprintf "rule crashed: %s" (Printexc.to_string e))
             ])
  |> List.stable_sort compare_finding

let errors fs =
  List.filter (fun (f : Rule.finding) -> f.severity = Rule.Error) fs

let has_errors fs = errors fs <> []

let explain_singular ?index circ =
  let fs = run circ |> errors in
  let relevant =
    match index with
    | None -> fs
    | Some k -> (
      (* Prefer findings that mention the failing unknown by name. *)
      match Engine.Mna.compile circ with
      | exception _ -> fs
      | mna ->
        let name = Engine.Mna.unknown_name mna k in
        let strip s =
          let n = String.length s in
          if n > 3 && (String.sub s 0 2 = "V(" || String.sub s 0 2 = "I(")
          then String.sub s 2 (n - 3)
          else s
        in
        let target = strip name in
        let mentions (f : Rule.finding) =
          List.exists (String.equal target) f.nets
          || List.exists (String.equal target) f.devices
        in
        let hits = List.filter mentions fs in
        if hits <> [] then hits else fs)
  in
  relevant
