(** Maximum bipartite matching (Hopcroft–Karp).

    Used to predict structural singularity of the MNA matrix: a square
    sparsity pattern admits a zero-free diagonal permutation iff its
    row/column bipartite graph has a perfect matching. A deficiency names
    the equations (rows) and unknowns (columns) that no pivot assignment
    can cover — the matrix is singular for {e every} numeric value of its
    entries. *)

type result = {
  size : int;                 (** matching cardinality *)
  row_match : int array;      (** row -> matched column, or -1 *)
  col_match : int array;      (** column -> matched row, or -1 *)
}

val max_matching : rows:int -> cols:int -> adj:int list array -> result
(** [adj.(r)] lists the columns structurally reachable from row [r].
    O(E sqrt(V)). *)

val unmatched_rows : result -> int list
val unmatched_cols : result -> int list
