(** JSON rendering of lint reports (hand-rolled; no external dependency).

    Schema:
    {v
    { "file": "...",              // present when a path was given
      "errors": <int>, "warnings": <int>,
      "findings": [
        { "rule": "<rule-id>", "severity": "error|warning|info",
          "message": "...", "line": <int>,   // line omitted when unknown
          "nets": ["..."], "devices": ["..."] } ] }
    v} *)

val of_finding : Rule.finding -> string
val report : ?file:string -> Rule.finding list -> string
