type severity = Error | Warning | Info

let severity_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

type finding = {
  rule_id : string;
  severity : severity;
  message : string;
  nets : string list;
  devices : string list;
  line : int option;
}

let finding ?(nets = []) ?(devices = []) ?line ~id severity message =
  { rule_id = id; severity; message; nets; devices; line }

type ctx = {
  circ : Circuit.Netlist.t;
  mna : Engine.Mna.t option;
  static : Staticanalysis.Report.t Lazy.t;
}

let make_ctx circ =
  let mna =
    (* Elaboration can fail for reasons lint itself reports (missing
       models, zero resistors, unknown controlling sources); rules that
       need the compiled system skip gracefully. *)
    match Engine.Mna.compile circ with
    | mna -> Some mna
    | exception _ -> None
  in
  (* Lazy: forced the first time a graph-powered rule runs, shared by
     all of them within one lint pass. *)
  { circ; mna; static = lazy (Staticanalysis.Report.analyze circ) }

type t = {
  id : string;
  title : string;
  severity : severity;
  check : ctx -> finding list;
}

let pp_finding ?file ppf f =
  (match (file, f.line) with
   | Some p, Some l -> Format.fprintf ppf "%s:%d: " p l
   | Some p, None -> Format.fprintf ppf "%s: " p
   | None, Some l -> Format.fprintf ppf "line %d: " l
   | None, None -> ());
  Format.fprintf ppf "%s[%s]: %s" (severity_string f.severity) f.rule_id
    f.message;
  let aux label = function
    | [] -> ()
    | xs -> Format.fprintf ppf " (%s: %s)" label (String.concat ", " xs)
  in
  aux "nets" f.nets;
  aux "devices" f.devices
