(** The built-in rule catalogue.

    Stable rule IDs (severity in parentheses):

    - [no-ground] (error) — nothing connects to node 0
    - [floating-net] (error) — nets with no conductive path to ground
    - [dangling-net] (warning) — net with a single terminal attachment
    - [no-dc-path] (warning) — nets reaching ground only through capacitors
    - [duplicate-name] (error) — two devices share a name (case-insensitive)
    - [shorted-element] (error) — both output terminals on one net
    - [zero-value] (error) — zero-valued R (error) / L or C (warning)
    - [suspicious-value] (warning) — magnitudes that suggest unit typos
    - [source-only-net] (warning) — net touched only by sources/probes
    - [unconnected-control] (warning) — controlled source senses an
      otherwise-unused net (likely a misspelled net name)
    - [unknown-control] (error) — F/H element names a missing or
      branch-less controlling device
    - [unknown-model] (error) — D/Q/M names a missing or wrong-kind model
    - [bad-mutual] (error) — K element with missing inductors or |k| >= 1
    - [vsource-loop] (error) — cycle of voltage-defined elements (V/L/E/H)
    - [isource-cutset] (error) — subcircuit cut off from any DC return
      path and driven only through current sources/capacitors
    - [singular-structure] (error) — the MNA sparsity pattern admits no
      perfect row/column matching (singular for every element value)

    Graph-powered rules, over the static signal-flow report
    ({!Staticanalysis.Report}, built lazily at most once per pass):

    - [loop-no-compensation] (warning) — a global feedback loop with no
      capacitor touching any member net: nothing shapes its response
    - [gain-outside-loop] (info) — a controlled source or transistor
      whose gain closes no cycle (bias distribution, or a feedback
      connection that was meant to exist)
    - [loop-through-suspect] (warning) — a feedback loop running through
      a device flagged by [zero-value] / [suspicious-value]
    - [undrivable-probe] (error/warning) — a [.stab] card naming an
      unknown net (error), a voltage-pinned net, or a net unreachable
      from every independent source (warnings; reachability is skipped
      for source-free fixtures)
    - [unobservable-loop] (warning) — a loop all of whose member nets are
      voltage-pinned: no probe observes it, [--nodes auto] skips it *)

val all : Rule.t list
(** Every built-in rule, catalogue order. *)

val find : string -> Rule.t option
(** Look a rule up by ID. *)
