(* Minimal JSON emission — just enough for lint reports, no dependency. *)

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let str s = "\"" ^ escape s ^ "\""

let arr items = "[" ^ String.concat "," items ^ "]"

let obj fields =
  "{"
  ^ String.concat "," (List.map (fun (k, v) -> str k ^ ":" ^ v) fields)
  ^ "}"

let of_finding (f : Rule.finding) =
  obj
    ([ ("rule", str f.rule_id);
       ("severity", str (Rule.severity_string f.severity));
       ("message", str f.message) ]
    @ (match f.line with
      | Some l -> [ ("line", string_of_int l) ]
      | None -> [])
    @ [ ("nets", arr (List.map str f.nets));
        ("devices", arr (List.map str f.devices)) ])

let report ?file findings =
  let errors = List.length (Runner.errors findings) in
  obj
    ((match file with Some p -> [ ("file", str p) ] | None -> [])
    @ [ ("errors", string_of_int errors);
        ("warnings",
         string_of_int
           (List.length
              (List.filter
                 (fun (f : Rule.finding) -> f.severity = Rule.Warning)
                 findings)));
        ("findings", arr (List.map of_finding findings)) ])
