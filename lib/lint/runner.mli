(** Running the rule catalogue over a circuit. *)

type config = { disabled : string list (** rule IDs switched off *) }

val default : config

val run : ?config:config -> Circuit.Netlist.t -> Rule.finding list
(** Run every enabled rule; findings sorted by severity, then source
    line, then rule ID. A rule that raises is reported as a warning
    finding rather than aborting the pass. *)

val errors : Rule.finding list -> Rule.finding list
val has_errors : Rule.finding list -> bool

val explain_singular : ?index:int -> Circuit.Netlist.t -> Rule.finding list
(** Error-severity findings explaining why a factorization raised
    [Singular]. When [index] (the failing MNA pivot) is given, findings
    naming that unknown's net or device are preferred; falls back to all
    error findings so the user always sees a structural cause when one
    exists. *)
