(* Chrome trace-event JSON (the "JSON object format": {"traceEvents":[...]}).
   Spans become "X" complete events with microsecond ts/dur; the counter
   registry is appended as one "C" event per counter, stamped at the end
   of the trace so chrome://tracing and Perfetto show the final totals.
   Hand-rolled emission: values are only strings and ints, no JSON
   dependency needed. *)

let add_json_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let add_args buf args =
  Buffer.add_char buf '{';
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char buf ',';
      add_json_string buf k;
      Buffer.add_char buf ':';
      Buffer.add_string buf (string_of_int v))
    args;
  Buffer.add_char buf '}'

let us_of_ns ns = Printf.sprintf "%.3f" (float_of_int ns /. 1e3)

let add_span buf (e : Span.event) =
  Buffer.add_string buf "{\"name\":";
  add_json_string buf e.name;
  Buffer.add_string buf ",\"cat\":\"acstab\",\"ph\":\"X\",\"pid\":1,\"tid\":";
  Buffer.add_string buf (string_of_int e.tid);
  Buffer.add_string buf ",\"ts\":";
  Buffer.add_string buf (us_of_ns e.ts_ns);
  Buffer.add_string buf ",\"dur\":";
  Buffer.add_string buf (us_of_ns e.dur_ns);
  if e.args <> [] then begin
    Buffer.add_string buf ",\"args\":";
    add_args buf e.args
  end;
  Buffer.add_char buf '}'

let add_counter buf ~ts_ns (name, v) =
  Buffer.add_string buf "{\"name\":";
  add_json_string buf name;
  Buffer.add_string buf ",\"ph\":\"C\",\"pid\":1,\"tid\":0,\"ts\":";
  Buffer.add_string buf (us_of_ns ts_ns);
  Buffer.add_string buf ",\"args\":{\"value\":";
  Buffer.add_string buf (string_of_int v);
  Buffer.add_string buf "}}"

let add_float buf v =
  (* %.17g round-trips; shorter forms are fine for a trace viewer. *)
  Buffer.add_string buf (Printf.sprintf "%.6g" v)

let add_histogram buf ~ts_ns (name, (s : Histogram.summary)) =
  Buffer.add_string buf "{\"name\":";
  add_json_string buf ("hist:" ^ name);
  Buffer.add_string buf ",\"ph\":\"C\",\"pid\":1,\"tid\":0,\"ts\":";
  Buffer.add_string buf (us_of_ns ts_ns);
  Buffer.add_string buf ",\"args\":{\"count\":";
  Buffer.add_string buf (string_of_int s.count);
  Buffer.add_string buf ",\"p50\":";
  add_float buf s.p50;
  Buffer.add_string buf ",\"p90\":";
  add_float buf s.p90;
  Buffer.add_string buf ",\"p99\":";
  add_float buf s.p99;
  Buffer.add_string buf ",\"max\":";
  add_float buf s.max;
  Buffer.add_string buf "}}"

let to_string_events events =
  let counters = Counter.snapshot () in
  let end_ns =
    List.fold_left
      (fun acc (e : Span.event) -> max acc (e.ts_ns + e.dur_ns))
      (Clock.now_ns ()) events
  in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"traceEvents\":[";
  Buffer.add_string buf
    "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\
     \"args\":{\"name\":\"acstab\"}}";
  List.iter
    (fun e ->
      Buffer.add_char buf ',';
      add_span buf e)
    events;
  List.iter
    (fun kv ->
      Buffer.add_char buf ',';
      add_counter buf ~ts_ns:end_ns kv)
    counters;
  List.iter
    (fun h ->
      Buffer.add_char buf ',';
      add_histogram buf ~ts_ns:end_ns h)
    (Histogram.snapshot ());
  Buffer.add_string buf "]}\n";
  Buffer.contents buf

let to_string () = to_string_events (Span.events ())

let write_events path events =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string_events events))

let write path = write_events path (Span.events ())
