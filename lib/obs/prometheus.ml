(* Prometheus text exposition (format 0.0.4) over the observability
   registries, plus a small validating parser for tests and `acstab
   top`.

   Mapping:
   - every metric name is sanitised ([.] and any other non-alphanumeric
     byte become [_]) and prefixed [acstab_];
   - counters render as [# TYPE ... counter] with a [_total] suffix;
     the [*_ns] counters (cumulative nanoseconds, e.g.
     [pool.lock_wait_ns]) are converted to milliseconds and renamed
     [*_ms_total] so every exported duration — counter, histogram or
     span table — reads in the same unit;
   - gauges render as [# TYPE ... gauge];
   - histograms render as summaries: [{quantile="0.5"|"0.9"|"0.99"}]
     rows from the bucketed percentiles, a [_count] row, and a
     companion [<name>_max] gauge for the exact observed maximum
     (which a Prometheus summary has no slot for).

   The explicit-list entry points exist so tests can golden the exact
   text for a fixed registry without scrubbing ambient counters. *)

let sanitize name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' -> c
      | _ -> '_')
    name

let metric name = "acstab_" ^ sanitize name

(* Deterministic float rendering: integral values print with no
   fraction so goldens are stable across platforms. *)
let number v =
  if Float.is_nan v then "NaN"
  else if v = Float.infinity then "+Inf"
  else if v = Float.neg_infinity then "-Inf"
  else if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.9g" v

let ns_counter name =
  String.length name > 3
  && String.sub name (String.length name - 3) 3 = "_ns"

let add_counter b (name, v) =
  let base, value =
    if ns_counter name then
      (String.sub name 0 (String.length name - 3) ^ "_ms",
       float_of_int v /. 1e6)
    else (name, float_of_int v)
  in
  let m = metric base ^ "_total" in
  Buffer.add_string b (Printf.sprintf "# TYPE %s counter\n" m);
  Buffer.add_string b (Printf.sprintf "%s %s\n" m (number value))

let add_gauge b (name, v) =
  let m = metric name in
  Buffer.add_string b (Printf.sprintf "# TYPE %s gauge\n" m);
  Buffer.add_string b (Printf.sprintf "%s %s\n" m (number v))

let add_histogram b (name, (s : Histogram.summary)) =
  let m = metric name in
  Buffer.add_string b (Printf.sprintf "# TYPE %s summary\n" m);
  List.iter
    (fun (q, v) ->
      Buffer.add_string b
        (Printf.sprintf "%s{quantile=\"%s\"} %s\n" m q (number v)))
    [ ("0.5", s.Histogram.p50); ("0.9", s.Histogram.p90);
      ("0.99", s.Histogram.p99) ];
  Buffer.add_string b
    (Printf.sprintf "%s_count %s\n" m (number (float_of_int s.Histogram.count)));
  Buffer.add_string b (Printf.sprintf "# TYPE %s_max gauge\n" m);
  Buffer.add_string b
    (Printf.sprintf "%s_max %s\n" m (number s.Histogram.max))

let render ?counters ?gauges ?histograms () =
  let counters =
    match counters with Some c -> c | None -> Counter.snapshot ()
  in
  let gauges = match gauges with Some g -> g | None -> Gauge.snapshot () in
  let histograms =
    match histograms with Some h -> h | None -> Histogram.snapshot ()
  in
  let b = Buffer.create 1024 in
  List.iter (add_counter b) counters;
  List.iter (add_gauge b) gauges;
  List.iter (add_histogram b) histograms;
  Buffer.contents b

(* ---- parser ---- *)

type sample = {
  metric_name : string;
  labels : (string * string) list;
  value : float;
}

let parse_labels s =
  (* k=<quoted>,k2=<quoted>; values contain no escapes we ever emit,
     but accept backslash escapes for robustness. *)
  let n = String.length s in
  let rec skip_ws i = if i < n && s.[i] = ' ' then skip_ws (i + 1) else i in
  let rec pairs i acc =
    let i = skip_ws i in
    if i >= n then Error "unterminated label set"
    else if s.[i] = '}' then Ok (List.rev acc, i + 1)
    else begin
      match String.index_from_opt s i '=' with
      | None -> Error "label without '='"
      | Some eq ->
        let key = String.trim (String.sub s i (eq - i)) in
        if eq + 1 >= n || s.[eq + 1] <> '"' then Error "label value not quoted"
        else begin
          let buf = Buffer.create 16 in
          let rec value j =
            if j >= n then Error "unterminated label value"
            else
              match s.[j] with
              | '"' -> Ok (j + 1)
              | '\\' when j + 1 < n ->
                Buffer.add_char buf s.[j + 1];
                value (j + 2)
              | c ->
                Buffer.add_char buf c;
                value (j + 1)
          in
          match value (eq + 2) with
          | Error _ as e -> e
          | Ok j ->
            let acc = (key, Buffer.contents buf) :: acc in
            let j = skip_ws j in
            if j < n && s.[j] = ',' then pairs (j + 1) acc
            else if j < n && s.[j] = '}' then Ok (List.rev acc, j + 1)
            else Error "expected ',' or '}' after label"
        end
    end
  in
  pairs 0 []

let valid_name s =
  s <> ""
  && String.for_all
       (fun c ->
         match c with
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true
         | _ -> false)
       s
  && (match s.[0] with '0' .. '9' -> false | _ -> true)

let parse_line line =
  match String.index_opt line '{' with
  | Some brace ->
    let name = String.sub line 0 brace in
    if not (valid_name name) then Error ("bad metric name: " ^ name)
    else begin
      let rest =
        String.sub line (brace + 1) (String.length line - brace - 1)
      in
      match parse_labels rest with
      | Error e -> Error e
      | Ok (labels, consumed) ->
        let v = String.trim (String.sub rest consumed
                               (String.length rest - consumed)) in
        (match float_of_string_opt v with
         | Some value -> Ok { metric_name = name; labels; value }
         | None -> Error ("bad sample value: " ^ v))
    end
  | None ->
    (match String.index_opt line ' ' with
     | None -> Error ("sample line without value: " ^ line)
     | Some sp ->
       let name = String.sub line 0 sp in
       let v = String.trim (String.sub line sp (String.length line - sp)) in
       if not (valid_name name) then Error ("bad metric name: " ^ name)
       else
         (match float_of_string_opt v with
          | Some value -> Ok { metric_name = name; labels = []; value }
          | None -> Error ("bad sample value: " ^ v)))

let parse text =
  let lines = String.split_on_char '\n' text in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest ->
      let line = String.trim line in
      if line = "" || (String.length line > 0 && line.[0] = '#') then
        go acc rest
      else begin
        match parse_line line with
        | Ok s -> go (s :: acc) rest
        | Error e -> Error e
      end
  in
  go [] lines

let find ?(labels = []) name samples =
  List.find_opt
    (fun s ->
      s.metric_name = name
      && List.for_all
           (fun (k, v) -> List.assoc_opt k s.labels = Some v)
           labels)
    samples
  |> Option.map (fun s -> s.value)
