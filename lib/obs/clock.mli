(** Monotonic clock for span timing. *)

val now_ns : unit -> int
(** Nanoseconds on the monotonic clock (arbitrary epoch). Allocation-free
    on native builds apart from the transient [int64] box. *)
