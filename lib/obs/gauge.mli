(** Named sampled gauges with a process-global registry.

    A gauge carries point-in-time state (cache occupancy, queue depth,
    in-flight requests) rather than a monotonic count: the owner of the
    state {!set}s it when sampling — the serve daemon does so on a
    background tick — and exporters read it back via {!snapshot}.
    [make] is idempotent like {!Counter.make}; all operations are a
    single atomic access and safe from any domain. *)

type t

val make : string -> t
(** [make name] returns the gauge registered under [name], creating it
    at [0.] on first use. *)

val name : t -> string
val value : t -> float

val set : t -> float -> unit
(** Overwrite the gauge with the freshly sampled value. *)

val find : string -> t option

val snapshot : unit -> (string * float) list
(** All registered gauges with their current values, sorted by name. *)

val reset : unit -> unit
(** Zero every registered gauge (tests). *)
