(** Chrome trace-event JSON export.

    Produces the [{"traceEvents":[...]}] object format readable by
    [chrome://tracing] and Perfetto. Every drained span becomes a ["X"]
    (complete) event with microsecond timestamps; every registered
    counter becomes a ["C"] (counter) event carrying its final value. *)

val to_string : unit -> string
(** Serialize the current span buffers and counter registry. *)

val write : string -> unit
(** [write path] writes {!to_string} to [path], truncating. *)
