(** Chrome trace-event JSON export.

    Produces the [{"traceEvents":[...]}] object format readable by
    [chrome://tracing] and Perfetto. Every drained span becomes a ["X"]
    (complete) event with microsecond timestamps; every registered
    counter becomes a ["C"] (counter) event carrying its final value. *)

val to_string : unit -> string
(** Serialize the current span buffers, counter registry and histogram
    summaries (the latter as ["C"] events named [hist:<name>]). *)

val to_string_events : Span.event list -> string
(** Serialize an explicit snapshot from {!Span.events}, so one snapshot
    can feed both this export and {!Metrics.pp_events}. *)

val write : string -> unit
(** [write path] writes {!to_string} to [path], truncating. *)

val write_events : string -> Span.event list -> unit
(** [write_events path events] writes {!to_string_events} to [path]. *)
