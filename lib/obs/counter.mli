(** Named monotonic counters with a process-global registry.

    Counters are always on (independent of {!Span.enabled}); incrementing
    one is a single atomic fetch-and-add and never allocates. [make] is
    idempotent: the same name always yields the same counter, so modules
    may create their counters at load time and tools may re-[make] them by
    name to read values. All operations are safe under
    [Parallel.Pool] domains. *)

type t

val make : string -> t
(** [make name] returns the counter registered under [name], creating it
    at zero on first use. Dotted names ([acplan.symbolic],
    [pool.steals]) group related counters in reports. *)

val name : t -> string
val value : t -> int

val incr : t -> unit
val add : t -> int -> unit

val record_max : t -> int -> unit
(** [record_max t v] raises the counter to [v] if it is currently lower —
    use for high-water marks (queue depth, batch size). *)

val find : string -> t option
(** Look up a counter without creating it. *)

val snapshot : unit -> (string * int) list
(** All registered counters with their current values, sorted by name. *)

val reset : unit -> unit
(** Zero every registered counter (tests and bench sections). *)
