(** Human-readable metrics summary ([--metrics], bench output). *)

type row = { name : string; count : int; total_ns : int; max_ns : int }

val rows : unit -> row list
(** Spans aggregated by name, sorted by total time descending. *)

val pp : Format.formatter -> unit -> unit
(** Print the span table followed by all non-zero counters. *)
