(** Human-readable metrics summary ([--metrics], bench output). *)

type row = { name : string; count : int; total_ns : int; max_ns : int }

val rows : unit -> row list
(** Spans aggregated by name, sorted by total time descending. *)

val rows_of : Span.event list -> row list
(** Same aggregation over an explicit snapshot from {!Span.events}. *)

val domain_rows : unit -> (int * int * int) list
(** Per-domain rollup [(tid, span count, total busy ns)], sorted by
    domain id — makes pool imbalance visible next to the [pool.*]
    counters. *)

val domain_rows_of : Span.event list -> (int * int * int) list

val pp : Format.formatter -> unit -> unit
(** Print the span table (with a per-domain rollup when more than one
    domain recorded), all non-zero counters, and histogram summaries. *)

val pp_events : Span.event list -> Format.formatter -> unit -> unit
(** {!pp} over an explicit snapshot, so one [Span.events ()] call can
    feed both the trace writer and this summary. *)
