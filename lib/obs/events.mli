(** Structured event log (NDJSON, schema [acstab-log/1]).

    One event per occurrence — a served request, a warning, a daemon
    lifecycle transition — with a monotonic timestamp, a severity
    level and key=value fields. Events land in a fixed-size lock-free
    ring (recent history for in-process consumers) and, when a sink
    is attached ([--log FILE] / [ACSTAB_LOG]), are written through as
    one JSON object per line.

    Emission follows the same cost discipline as {!Span}: with no
    sink attached and the ring off, {!emit} returns after a single
    atomic load and allocates nothing (bench-asserted), so hot paths
    may call it unconditionally. *)

type level = Debug | Info | Warn | Error

type value = Str of string | Int of int | Float of float | Bool of bool

type event = {
  seq : int;  (** global emission order *)
  ts_ns : int;  (** monotonic, same clock as spans *)
  level : level;
  name : string;  (** dotted event name, e.g. [server.request] *)
  fields : (string * value) list;
}

val schema : string
(** ["acstab-log/1"]: one self-contained JSON object per line with
    [ts_ns], [seq], [level], [event] plus the event's fields. The
    first line written to a fresh sink is a [log.open] event naming
    this schema. *)

val enabled : unit -> bool
(** Whether {!emit} currently does any work (ring on or sink
    attached). One atomic load — use to guard field-list building. *)

val emit : ?level:level -> string -> (string * value) list -> unit
(** [emit name fields] records one event. Free when {!enabled} is
    false. Safe from any domain. *)

val level_name : level -> string

val line_of : event -> string
(** The NDJSON line for one event (no trailing newline). *)

(** {1 Ring buffer} *)

val enable_ring : unit -> unit
(** Keep the most recent events in memory even without a sink. *)

val disable_ring : unit -> unit

val recent : ?max:int -> unit -> event list
(** Snapshot of the ring, oldest first (at most the ring size, 1024). *)

val clear : unit -> unit
(** Drop the ring contents (sinks are unaffected). *)

(** {1 Sinks} *)

val set_sink : out_channel option -> unit
(** Attach (or with [None] detach) the NDJSON sink; a previously
    attached channel is closed. Each event is written and flushed as
    one line under a mutex. *)

val to_file : string -> unit
(** Open [path] for append and attach it as the sink. Raises
    [Sys_error] if the file cannot be opened. *)

val close_sink : unit -> unit

(** {1 Warn-once}

    Rate-limited operator warnings: the first call for a given [key]
    prints [message] to stderr and emits a [Warn] event; repeats are
    counted silently. Replaces per-call-site [Printf.eprintf] warnings
    that could repeat unboundedly in a long-running service. *)

val warn_once : key:string -> string -> unit

val warn_count : string -> int
(** How many times [key] has been warned about (0 = never). *)

val reset_warnings : unit -> unit
(** Forget all warn-once keys (tests). *)
