(** Prometheus text exposition (format 0.0.4) for the observability
    registries, plus a validating parser for tests and [acstab top].

    Naming: every metric is the dotted registry name with
    non-alphanumeric bytes mapped to [_], prefixed [acstab_]. Counters
    gain a [_total] suffix; cumulative-nanosecond counters ([*_ns],
    e.g. [pool.lock_wait_ns]) are exported in milliseconds as
    [*_ms_total] so all exported durations share one unit. Histograms
    render as summaries ([quantile="0.5"|"0.9"|"0.99"] rows plus
    [_count]) with a companion [<name>_max] gauge for the exact
    maximum. *)

val render :
  ?counters:(string * int) list ->
  ?gauges:(string * float) list ->
  ?histograms:(string * Histogram.summary) list ->
  unit ->
  string
(** The exposition text. Each omitted argument defaults to the live
    registry snapshot ({!Counter.snapshot}, {!Gauge.snapshot},
    {!Histogram.snapshot}); pass explicit lists to golden-test the
    exact output for a fixed registry. *)

val metric : string -> string
(** [metric "pool.chunk_ms"] = ["acstab_pool_chunk_ms"] — the exported
    base name for a registry name (before any [_total] suffix). *)

type sample = {
  metric_name : string;
  labels : (string * string) list;
  value : float;
}

val parse : string -> (sample list, string) result
(** Parse exposition text back into samples: comments and blank lines
    are skipped, every other line must be
    [name[{k="v",...}] value]. [Error] on the first malformed line. *)

val find : ?labels:(string * string) list -> string -> sample list -> float option
(** First sample whose name matches and whose labels include all of
    [labels]. *)
