(* Spans: timed intervals recorded into per-domain buffers and merged on
   drain. The enter/leave pair is split (instead of only offering a
   [with_] combinator) so hot loops can hoist the enabled check: [enter]
   returns an immediate int — 0 when tracing is off — and [leave] is a
   no-op for 0, so a disabled span costs one atomic load and allocates
   nothing. Each domain appends to its own buffer; the global mutex is
   only taken when a new domain first records a span, and on drain. *)

type event = {
  name : string;
  ts_ns : int;
  dur_ns : int;
  tid : int;  (** recording domain id *)
  args : (string * int) list;
}

let enabled_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag
let enable () = Atomic.set enabled_flag true
let disable () = Atomic.set enabled_flag false

type buffer = { tid : int; mutable events : event list }

let buffers_mutex = Mutex.create ()
let buffers : buffer list ref = ref []

let buffer_key : buffer Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let b = { tid = (Domain.self () :> int); events = [] } in
      Mutex.lock buffers_mutex;
      buffers := b :: !buffers;
      Mutex.unlock buffers_mutex;
      b)

let enter () = if Atomic.get enabled_flag then Clock.now_ns () else 0

let leave ?(args = []) name t0 =
  if t0 <> 0 && Atomic.get enabled_flag then begin
    let dur_ns = Clock.now_ns () - t0 in
    let b = Domain.DLS.get buffer_key in
    b.events <- { name; ts_ns = t0; dur_ns; tid = b.tid; args } :: b.events
  end

let with_ ?args name f =
  let t0 = enter () in
  match f () with
  | v ->
      leave ?args name t0;
      v
  | exception e ->
      leave ?args name t0;
      raise e

let drain () =
  Mutex.lock buffers_mutex;
  let events = List.concat_map (fun b -> b.events) !buffers in
  Mutex.unlock buffers_mutex;
  List.sort (fun a b -> compare a.ts_ns b.ts_ns) events

(* Alias with the non-destructive name: consumers that need the same
   snapshot twice (--trace and --metrics in one run) should take
   [events ()] once and feed both sinks from it. *)
let events = drain

let clear () =
  Mutex.lock buffers_mutex;
  List.iter (fun b -> b.events <- []) !buffers;
  Mutex.unlock buffers_mutex
