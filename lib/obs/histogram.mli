(** Lock-free log-bucketed histograms.

    A fixed 64-bucket layout (half a decade per bucket, spanning 1e-24
    to 1e8) shared by every histogram; recording is one atomic increment
    per sample with no allocation, safe from any domain. Percentiles are
    read out as the geometric midpoint of the bucket that crosses the
    requested rank, so they carry about half a decade of quantisation —
    plenty for health triage, not for timing micro-benchmarks.

    Like {!Counter}, histograms live in a process-global registry keyed
    by name so independent subsystems can share one instance. *)

type t

type summary = {
  count : int;
  p50 : float;
  p90 : float;
  p99 : float;
  max : float;  (** exact maximum observed, not bucket-quantised *)
}

val make : string -> t
(** Create or fetch the histogram registered under [name]. *)

val name : t -> string

val observe : t -> float -> unit
(** Record one sample. Non-positive values land in the lowest bucket,
    NaN in the highest; safe to call concurrently from any domain. *)

val count : t -> int

val merge : into:t -> t -> unit
(** [merge ~into src] adds every sample of [src] into [into] (bin-wise:
    the shared bucket layout makes the merge exact, max included).
    [src] is unchanged; merging a histogram into itself is a no-op.
    Safe under concurrent [observe]s on either histogram. *)

val summary : t -> summary
(** Percentile readout from the current bins. All-zero when empty. *)

val find : string -> t option

val snapshot : unit -> (string * summary) list
(** Every registered histogram with at least one sample, sorted by
    name. *)

val reset : unit -> unit
(** Zero all bins of every registered histogram (for tests/bench). *)

val bucket_of : float -> int
(** Bucket index a value lands in (exposed for tests). *)

val value_of : int -> float
(** Representative (geometric-midpoint) value of a bucket. *)
