(* CLOCK_MONOTONIC via the bechamel stub: immune to wall-clock steps, so
   span durations stay truthful across NTP adjustments. Nanoseconds since
   an arbitrary epoch fit a 63-bit int for ~292 years of uptime. *)
let now_ns () = Int64.to_int (Monotonic_clock.now ())
