(* Named sampled gauges: point-in-time state (cache occupancy, pool
   queue depth, in-flight requests), as opposed to the monotonic
   [Counter]s. A gauge is set, not incremented; whoever owns the state
   samples it into the registry (the serve daemon does this on a
   background tick) and exporters read the registry like they read
   counters. Same process-global idempotent registry as [Counter]. *)

type t = { name : string; cell : float Atomic.t }

let registry : (string, t) Hashtbl.t = Hashtbl.create 16
let registry_mutex = Mutex.create ()

let make name =
  Mutex.lock registry_mutex;
  let g =
    match Hashtbl.find_opt registry name with
    | Some g -> g
    | None ->
        let g = { name; cell = Atomic.make 0. } in
        Hashtbl.add registry name g;
        g
  in
  Mutex.unlock registry_mutex;
  g

let name g = g.name
let value g = Atomic.get g.cell
let set g v = Atomic.set g.cell v

let find name =
  Mutex.lock registry_mutex;
  let g = Hashtbl.find_opt registry name in
  Mutex.unlock registry_mutex;
  g

let snapshot () =
  Mutex.lock registry_mutex;
  let rows =
    Hashtbl.fold
      (fun name g acc -> (name, Atomic.get g.cell) :: acc)
      registry []
  in
  Mutex.unlock registry_mutex;
  List.sort (fun (a, _) (b, _) -> String.compare a b) rows

let reset () =
  Mutex.lock registry_mutex;
  Hashtbl.iter (fun _ g -> Atomic.set g.cell 0.) registry;
  Mutex.unlock registry_mutex
