(* Human-readable rollup of the span buffers, counter registry and
   histogram registry, for [--metrics] and bench output. Spans aggregate
   by name; durations print in the largest natural unit. Every entry
   point takes an explicit event snapshot so one [Span.events ()] call
   can feed both the trace writer and this summary. *)

type row = { name : string; count : int; total_ns : int; max_ns : int }

let rows_of events =
  let tbl : (string, row ref) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun (e : Span.event) ->
      match Hashtbl.find_opt tbl e.name with
      | Some r ->
          r :=
            {
              !r with
              count = !r.count + 1;
              total_ns = !r.total_ns + e.dur_ns;
              max_ns = max !r.max_ns e.dur_ns;
            }
      | None ->
          Hashtbl.add tbl e.name
            (ref
               {
                 name = e.name;
                 count = 1;
                 total_ns = e.dur_ns;
                 max_ns = e.dur_ns;
               }))
    events;
  Hashtbl.fold (fun _ r acc -> !r :: acc) tbl []
  |> List.sort (fun a b -> compare b.total_ns a.total_ns)

let rows () = rows_of (Span.events ())

let domain_rows_of events =
  (* Busy-time rollup per recording domain, so pool imbalance shows up
     next to the pool.* counters. Only leaf-ish span time is meaningful
     per domain, but summing everything a domain recorded is still a
     usable imbalance signal — nesting inflates every domain equally. *)
  let tbl : (int, (int * int) ref) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (e : Span.event) ->
      match Hashtbl.find_opt tbl e.tid with
      | Some r ->
          let c, t = !r in
          r := (c + 1, t + e.dur_ns)
      | None -> Hashtbl.add tbl e.tid (ref (1, e.dur_ns)))
    events;
  Hashtbl.fold (fun tid r acc -> (tid, fst !r, snd !r) :: acc) tbl []
  |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)

let domain_rows () = domain_rows_of (Span.events ())

let pp_ns ppf ns =
  let f = float_of_int ns in
  if f >= 1e9 then Format.fprintf ppf "%8.3f s " (f /. 1e9)
  else if f >= 1e6 then Format.fprintf ppf "%8.3f ms" (f /. 1e6)
  else if f >= 1e3 then Format.fprintf ppf "%8.3f us" (f /. 1e3)
  else Format.fprintf ppf "%8d ns" ns

let pp_events events ppf () =
  let spans = rows_of events in
  if spans <> [] then begin
    Format.fprintf ppf "%-28s %8s %11s %11s@." "span" "count" "total" "max";
    List.iter
      (fun r ->
        Format.fprintf ppf "%-28s %8d %a %a@." r.name r.count pp_ns r.total_ns
          pp_ns r.max_ns)
      spans
  end;
  (match domain_rows_of events with
  | [] | [ _ ] -> ()
  | domains ->
      Format.fprintf ppf "@.%-28s %8s %11s@." "domain" "spans" "busy";
      List.iter
        (fun (tid, count, total_ns) ->
          Format.fprintf ppf "%-28s %8d %a@."
            (Printf.sprintf "domain %d" tid)
            count pp_ns total_ns)
        domains);
  let counters = List.filter (fun (_, v) -> v <> 0) (Counter.snapshot ()) in
  if counters <> [] then begin
    if spans <> [] then Format.fprintf ppf "@.";
    Format.fprintf ppf "%-28s %12s@." "counter" "value";
    List.iter
      (fun (name, v) ->
        (* Cumulative-nanosecond counters ([*_ns]) render through the
           duration pretty-printer, so pool.lock_wait_ns reads in the
           same unit family as the span table and the *_ms histograms
           instead of as a raw nanosecond integer. *)
        let is_ns =
          String.length name > 3
          && String.sub name (String.length name - 3) 3 = "_ns"
        in
        if is_ns then Format.fprintf ppf "%-28s %a@." name pp_ns v
        else Format.fprintf ppf "%-28s %12d@." name v)
      counters
  end;
  let gauges =
    List.filter (fun (_, v) -> v <> 0.) (Gauge.snapshot ())
  in
  if gauges <> [] then begin
    if spans <> [] || counters <> [] then Format.fprintf ppf "@.";
    Format.fprintf ppf "%-28s %12s@." "gauge" "value";
    List.iter
      (fun (name, v) -> Format.fprintf ppf "%-28s %12g@." name v)
      gauges
  end;
  let hists = Histogram.snapshot () in
  if hists <> [] then begin
    if spans <> [] || counters <> [] || gauges <> [] then
      Format.fprintf ppf "@.";
    Format.fprintf ppf "%-28s %8s %9s %9s %9s %9s@." "histogram" "count" "p50"
      "p90" "p99" "max";
    List.iter
      (fun (name, (s : Histogram.summary)) ->
        Format.fprintf ppf "%-28s %8d %9.2g %9.2g %9.2g %9.2g@." name s.count
          s.p50 s.p90 s.p99 s.max)
      hists
  end;
  if spans = [] && counters = [] && gauges = [] && hists = [] then
    Format.fprintf ppf "no spans or counters recorded@."

let pp ppf () = pp_events (Span.events ()) ppf ()
