(* Human-readable rollup of the span buffers and counter registry, for
   [--metrics] and bench output. Spans aggregate by name; durations print
   in the largest natural unit. *)

type row = { name : string; count : int; total_ns : int; max_ns : int }

let rows () =
  let tbl : (string, row ref) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun (e : Span.event) ->
      match Hashtbl.find_opt tbl e.name with
      | Some r ->
          r :=
            {
              !r with
              count = !r.count + 1;
              total_ns = !r.total_ns + e.dur_ns;
              max_ns = max !r.max_ns e.dur_ns;
            }
      | None ->
          Hashtbl.add tbl e.name
            (ref
               {
                 name = e.name;
                 count = 1;
                 total_ns = e.dur_ns;
                 max_ns = e.dur_ns;
               }))
    (Span.drain ());
  Hashtbl.fold (fun _ r acc -> !r :: acc) tbl []
  |> List.sort (fun a b -> compare b.total_ns a.total_ns)

let pp_ns ppf ns =
  let f = float_of_int ns in
  if f >= 1e9 then Format.fprintf ppf "%8.3f s " (f /. 1e9)
  else if f >= 1e6 then Format.fprintf ppf "%8.3f ms" (f /. 1e6)
  else if f >= 1e3 then Format.fprintf ppf "%8.3f us" (f /. 1e3)
  else Format.fprintf ppf "%8d ns" ns

let pp ppf () =
  let spans = rows () in
  if spans <> [] then begin
    Format.fprintf ppf "%-28s %8s %11s %11s@." "span" "count" "total" "max";
    List.iter
      (fun r ->
        Format.fprintf ppf "%-28s %8d %a %a@." r.name r.count pp_ns r.total_ns
          pp_ns r.max_ns)
      spans
  end;
  let counters = List.filter (fun (_, v) -> v <> 0) (Counter.snapshot ()) in
  if counters <> [] then begin
    if spans <> [] then Format.fprintf ppf "@.";
    Format.fprintf ppf "%-28s %12s@." "counter" "value";
    List.iter
      (fun (name, v) -> Format.fprintf ppf "%-28s %12d@." name v)
      counters
  end;
  if spans = [] && counters = [] then
    Format.fprintf ppf "no spans or counters recorded@."
