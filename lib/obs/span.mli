(** Timed spans with per-domain buffers.

    Tracing is off by default. When off, {!enter} returns [0] and
    {!leave} returns immediately, so instrumented hot paths pay one
    atomic load and zero allocations (asserted in the bench smoke).
    When on, each domain records into its own buffer; {!drain} merges
    all buffers into one timestamp-sorted list. *)

type event = {
  name : string;
  ts_ns : int;  (** start, monotonic ns *)
  dur_ns : int;
  tid : int;  (** recording domain id *)
  args : (string * int) list;  (** small integer annotations *)
}

val enabled : unit -> bool
val enable : unit -> unit
val disable : unit -> unit

val enter : unit -> int
(** Start timestamp for a span, or [0] when tracing is disabled. *)

val leave : ?args:(string * int) list -> string -> int -> unit
(** [leave name t0] records a span begun at [t0 = enter ()]. No-op when
    [t0] is [0] or tracing was disabled in between. *)

val with_ : ?args:(string * int) list -> string -> (unit -> 'a) -> 'a
(** [with_ name f] wraps [f ()] in a span; records on exception too. *)

val drain : unit -> event list
(** All recorded events from every domain, sorted by start time.
    Does not clear the buffers. *)

val events : unit -> event list
(** Non-destructive snapshot, identical to {!drain}. Take it once and
    feed every consumer (trace export, metrics) from the same list. *)

val clear : unit -> unit
(** Discard all recorded events. *)
