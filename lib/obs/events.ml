(* Structured event log: the service-side complement of spans.

   Spans answer "where did the time go inside one process lifetime";
   a long-running daemon also needs a durable, per-occurrence record —
   one line per request, per warning, per lifecycle transition — that
   an operator can tail, grep and parse. Events are that record:
   monotonic-timestamped, levelled, key=value structured, serialised
   as NDJSON (schema [acstab-log/1], one self-contained JSON object
   per line).

   Cost discipline mirrors {!Span}: emission is guarded by one atomic
   load, so an instrumented hot path with no sink configured and the
   ring disabled pays nothing and allocates nothing (asserted in the
   bench smoke alongside the disabled-span budget). When enabled,
   every event lands in a fixed-size lock-free ring (recent history
   for in-process consumers) and, if a sink is attached, is written
   through as one NDJSON line under a mutex — sinks are line-buffered
   I/O, not a hot path.

   The warn-once helper lives here too: subsystem warnings (invalid
   environment knobs, degraded fallbacks) print to stderr exactly once
   per key and are recorded as [Warn] events, replacing ad-hoc
   [Printf.eprintf] call sites that could repeat per call. *)

type level = Debug | Info | Warn | Error

let level_name = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

type value = Str of string | Int of int | Float of float | Bool of bool

type event = {
  seq : int;
  ts_ns : int;
  level : level;
  name : string;
  fields : (string * value) list;
}

let schema = "acstab-log/1"

(* ---- NDJSON rendering (self-contained: obs sits below Tool.Json) ---- *)

let escape b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let add_value b = function
  | Str s ->
    Buffer.add_char b '"';
    escape b s;
    Buffer.add_char b '"'
  | Int n -> Buffer.add_string b (string_of_int n)
  | Float f ->
    if Float.is_finite f then Buffer.add_string b (Printf.sprintf "%.6g" f)
    else Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")

let line_of e =
  let b = Buffer.create 128 in
  Buffer.add_string b (Printf.sprintf "{\"ts_ns\":%d,\"seq\":%d" e.ts_ns e.seq);
  Buffer.add_string b (Printf.sprintf ",\"level\":%S" (level_name e.level));
  Buffer.add_string b ",\"event\":\"";
  escape b e.name;
  Buffer.add_char b '"';
  List.iter
    (fun (k, v) ->
      Buffer.add_string b ",\"";
      escape b k;
      Buffer.add_string b "\":";
      add_value b v)
    e.fields;
  Buffer.add_char b '}';
  Buffer.contents b

(* ---- state ---- *)

(* True iff emission must do work: the ring is switched on or a sink
   is attached. The only thing the disabled fast path reads. *)
let armed = Atomic.make false

let ring_size = 1024
let ring : event option array = Array.make ring_size None
let ring_on = Atomic.make false

(* Next ring slot; also the event sequence number. Writers claim a slot
   with fetch-and-add and store without a lock — a torn read by [recent]
   during a wrap can at worst surface a stale event, which is fine for a
   diagnostic ring. *)
let cursor = Atomic.make 0

let sink : out_channel option ref = ref None
let sink_mutex = Mutex.create ()

let rearm () = Atomic.set armed (Atomic.get ring_on || !sink <> None)

let enabled () = Atomic.get armed

let enable_ring () =
  Atomic.set ring_on true;
  rearm ()

let disable_ring () =
  Atomic.set ring_on false;
  rearm ()

let emit_unguarded level name fields =
  let seq = Atomic.fetch_and_add cursor 1 in
  let e = { seq; ts_ns = Clock.now_ns (); level; name; fields } in
  if Atomic.get ring_on then ring.(seq mod ring_size) <- Some e;
  Mutex.lock sink_mutex;
  (match !sink with
   | Some oc ->
     (try
        output_string oc (line_of e);
        output_char oc '\n';
        flush oc
      with Sys_error _ -> ())
   | None -> ());
  Mutex.unlock sink_mutex

let emit ?(level = Info) name fields =
  if Atomic.get armed then emit_unguarded level name fields

let recent ?(max = ring_size) () =
  (* Oldest-first snapshot of the ring. Reads race with writers by
     design; order by sequence number repairs any interleaving. *)
  let all =
    Array.fold_left
      (fun acc slot -> match slot with Some e -> e :: acc | None -> acc)
      [] ring
  in
  let sorted = List.sort (fun a b -> compare a.seq b.seq) all in
  let n = List.length sorted in
  if n <= max then sorted
  else List.filteri (fun i _ -> i >= n - max) sorted

let clear () =
  Array.fill ring 0 ring_size None

(* ---- sinks ---- *)

let set_sink oc =
  Mutex.lock sink_mutex;
  (match !sink with
   | Some old when Some old != oc -> (try close_out old with Sys_error _ -> ())
   | _ -> ());
  sink := oc;
  Mutex.unlock sink_mutex;
  rearm ();
  (* The first line of every log names the schema, so a reader can
     refuse a future format instead of misparsing it. *)
  if oc <> None then
    emit ~level:Info "log.open" [ ("schema", Str schema) ]

let to_file path =
  let oc = open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 path in
  set_sink (Some oc)

let close_sink () = set_sink None

(* ---- warn-once ---- *)

let seen : (string, int) Hashtbl.t = Hashtbl.create 8
let seen_mutex = Mutex.create ()

let warn_once ~key message =
  Mutex.lock seen_mutex;
  let n = Option.value ~default:0 (Hashtbl.find_opt seen key) in
  Hashtbl.replace seen key (n + 1);
  Mutex.unlock seen_mutex;
  if n = 0 then begin
    Printf.eprintf "%s\n%!" message;
    emit ~level:Warn "warn" [ ("key", Str key); ("message", Str message) ]
  end

let warn_count key =
  Mutex.lock seen_mutex;
  let n = Option.value ~default:0 (Hashtbl.find_opt seen key) in
  Mutex.unlock seen_mutex;
  n

let reset_warnings () =
  Mutex.lock seen_mutex;
  Hashtbl.reset seen;
  Mutex.unlock seen_mutex
