(* Named monotonic counters. Counters are always on: a single atomic
   fetch-and-add is cheap enough for every call site we instrument, and
   keeping them unconditional means bench asserts and diagnostics reports
   see the same numbers whether or not tracing is enabled. The registry is
   process-global so any layer can look a counter up by name without
   threading handles through APIs. *)

type t = { name : string; cell : int Atomic.t }

let registry : (string, t) Hashtbl.t = Hashtbl.create 64
let registry_mutex = Mutex.create ()

let make name =
  Mutex.lock registry_mutex;
  let c =
    match Hashtbl.find_opt registry name with
    | Some c -> c
    | None ->
        let c = { name; cell = Atomic.make 0 } in
        Hashtbl.add registry name c;
        c
  in
  Mutex.unlock registry_mutex;
  c

let name t = t.name
let value t = Atomic.get t.cell
let incr t = ignore (Atomic.fetch_and_add t.cell 1)
let add t n = ignore (Atomic.fetch_and_add t.cell n)

(* High-water mark: raise the cell to [v] if it is currently lower. *)
let record_max t v =
  let rec go () =
    let cur = Atomic.get t.cell in
    if v > cur && not (Atomic.compare_and_set t.cell cur v) then go ()
  in
  go ()

let find name =
  Mutex.lock registry_mutex;
  let c = Hashtbl.find_opt registry name in
  Mutex.unlock registry_mutex;
  c

let snapshot () =
  Mutex.lock registry_mutex;
  let rows =
    Hashtbl.fold (fun name c acc -> (name, Atomic.get c.cell) :: acc) registry []
  in
  Mutex.unlock registry_mutex;
  List.sort (fun (a, _) (b, _) -> String.compare a b) rows

let reset () =
  Mutex.lock registry_mutex;
  Hashtbl.iter (fun _ c -> Atomic.set c.cell 0) registry;
  Mutex.unlock registry_mutex
