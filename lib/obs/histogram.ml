(* Lock-free log-bucketed histograms for positive floats (condition
   numbers, residuals, chunk durations). A fixed 64-bucket layout covers
   half a decade per bucket from 1e-24 to 1e8 — wide enough for rcond at
   one end and nanosecond-scale seconds at the other — so every histogram
   shares one bucket→value mapping and recording is a single atomic
   increment with no allocation. Domains record concurrently into the
   same atomic bins; there is no per-domain buffer to merge, which is
   what makes the pool's per-worker recording safe. The registry mirrors
   [Counter]'s: process-global, idempotent [make], snapshot by name. *)

let buckets = 64
let log10_lo = -24.

(* Half a decade per bucket: 64 buckets * 0.5 = 32 decades. *)
let buckets_per_decade = 2.

type t = {
  name : string;
  bins : int Atomic.t array;
  total : int Atomic.t;
  max_cell : float Atomic.t;
}

type summary = { count : int; p50 : float; p90 : float; p99 : float; max : float }

let bucket_of v =
  if Float.is_nan v then buckets - 1
  else if v <= 0. then 0
  else
    let i = int_of_float (Float.floor ((Float.log10 v -. log10_lo) *. buckets_per_decade)) in
    if i < 0 then 0 else if i > buckets - 1 then buckets - 1 else i

(* Geometric midpoint of bucket [i]'s bounds: the representative value
   reported for percentiles. *)
let value_of i = Float.pow 10. (log10_lo +. ((float_of_int i +. 0.5) /. buckets_per_decade))

let registry : (string, t) Hashtbl.t = Hashtbl.create 16
let registry_mutex = Mutex.create ()

let make name =
  Mutex.lock registry_mutex;
  let h =
    match Hashtbl.find_opt registry name with
    | Some h -> h
    | None ->
        let h =
          {
            name;
            bins = Array.init buckets (fun _ -> Atomic.make 0);
            total = Atomic.make 0;
            max_cell = Atomic.make neg_infinity;
          }
        in
        Hashtbl.add registry name h;
        h
  in
  Mutex.unlock registry_mutex;
  h

let name h = h.name

let observe h v =
  Atomic.incr h.bins.(bucket_of v);
  Atomic.incr h.total;
  (* CAS loop like [Counter.record_max]; floats are boxed so
     compare_and_set works on the exact value we read. *)
  let rec bump () =
    let cur = Atomic.get h.max_cell in
    if v > cur && not (Atomic.compare_and_set h.max_cell cur v) then bump ()
  in
  bump ()

let count h = Atomic.get h.total

(* Bucketed histograms merge exactly: same layout everywhere, so
   merging is bin-wise addition. Used to fold per-shard histograms
   (e.g. per-daemon request latencies) into one readout. Concurrent
   [observe]s on either side can at worst be missed by this pass, as
   with [summary]. *)
let merge ~into src =
  if into != src then begin
    Array.iteri
      (fun i b ->
        let n = Atomic.get b in
        if n > 0 then ignore (Atomic.fetch_and_add into.bins.(i) n))
      src.bins;
    let n = Atomic.get src.total in
    if n > 0 then ignore (Atomic.fetch_and_add into.total n);
    let m = Atomic.get src.max_cell in
    let rec bump () =
      let cur = Atomic.get into.max_cell in
      if m > cur && not (Atomic.compare_and_set into.max_cell cur m) then
        bump ()
    in
    bump ()
  end

let percentile_from bins total q =
  (* Smallest bucket whose cumulative count reaches q * total. *)
  let target =
    let t = Float.to_int (Float.ceil (q *. float_of_int total)) in
    if t < 1 then 1 else if t > total then total else t
  in
  let rec go i acc =
    if i >= buckets then value_of (buckets - 1)
    else
      let acc = acc + bins.(i) in
      if acc >= target then value_of i else go (i + 1) acc
  in
  go 0 0

let summary h =
  (* Counts are monotone, so a racing [observe] can at worst make the
     snapshot one sample short — fine for a diagnostic readout. *)
  let bins = Array.map Atomic.get h.bins in
  let total = Array.fold_left ( + ) 0 bins in
  if total = 0 then { count = 0; p50 = 0.; p90 = 0.; p99 = 0.; max = 0. }
  else
    {
      count = total;
      p50 = percentile_from bins total 0.50;
      p90 = percentile_from bins total 0.90;
      p99 = percentile_from bins total 0.99;
      max = (let m = Atomic.get h.max_cell in if m = neg_infinity then 0. else m);
    }

let find name =
  Mutex.lock registry_mutex;
  let h = Hashtbl.find_opt registry name in
  Mutex.unlock registry_mutex;
  h

let snapshot () =
  Mutex.lock registry_mutex;
  let all = Hashtbl.fold (fun _ h acc -> h :: acc) registry [] in
  Mutex.unlock registry_mutex;
  all
  |> List.filter_map (fun h ->
         let s = summary h in
         if s.count = 0 then None else Some (h.name, s))
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let reset () =
  Mutex.lock registry_mutex;
  Hashtbl.iter
    (fun _ h ->
      Array.iter (fun b -> Atomic.set b 0) h.bins;
      Atomic.set h.total 0;
      Atomic.set h.max_cell neg_infinity)
    registry;
  Mutex.unlock registry_mutex
