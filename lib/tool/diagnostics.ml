type report = {
  timestamp : string;
  tool_version : string;
  operation : string;
  session_summary : string option;
  error : string;
  backtrace : string;
  findings : string list;
  counters : (string * int) list;
  manifest : string option;
}

let tool_version = "acstab 1.0.0 (AC-stability analysis tool)"

let iso8601_now () =
  let t = Unix.gmtime (Unix.gettimeofday ()) in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (t.Unix.tm_year + 1900)
    (t.Unix.tm_mon + 1) t.Unix.tm_mday t.Unix.tm_hour t.Unix.tm_min
    t.Unix.tm_sec

let summarize_session s =
  Printf.sprintf "session %d (%s): simulator=%s temp=%g vars=[%s] analyses=%d"
    (Session.id s) (Session.name s) (Session.simulator s) (Session.temp s)
    (String.concat "; "
       (List.map
          (fun (k, v) -> Printf.sprintf "%s=%g" k v)
          (Session.design_variables s)))
    (List.length (Session.analyses s))

let to_text r =
  String.concat "\n"
    [ "=== automatic diagnostic report ===";
      "time:      " ^ r.timestamp;
      "tool:      " ^ r.tool_version;
      "operation: " ^ r.operation;
      (match r.session_summary with
       | Some s -> "session:   " ^ s
       | None -> "session:   (none)");
      "error:     " ^ r.error;
      (match r.findings with
       | [] -> "lint:      (no findings)"
       | fs ->
         "lint:\n"
         ^ String.concat "\n" (List.map (fun f -> "  " ^ f) fs));
      (match r.counters with
       | [] -> "counters:  (none recorded)"
       | cs ->
         "counters:\n"
         ^ String.concat "\n"
             (List.map (fun (k, v) -> Printf.sprintf "  %s = %d" k v) cs));
      (match r.manifest with
       | None -> "manifest:  (none)"
       | Some m -> "manifest:  " ^ m);
      "backtrace:";
      r.backtrace;
      "" ]

let pp_report ppf r = Format.pp_print_string ppf (to_text r)

let counter = ref 0

let write_report dir r =
  incr counter;
  let path =
    Filename.concat dir
      (Printf.sprintf "acstab-diag-%d-%d.txt" (Unix.getpid ()) !counter)
  in
  try
    let oc = open_out path in
    output_string oc (to_text r);
    close_out oc
  with Sys_error m -> Printf.eprintf "diagnostics: cannot write %s: %s\n" path m

let guard ?session ~operation ?(findings = []) ?manifest ?(report_dir = ".")
    f =
  try Ok (f ())
  with e ->
    let backtrace = Printexc.get_backtrace () in
    let r =
      { timestamp = iso8601_now ();
        tool_version;
        operation;
        session_summary = Option.map summarize_session session;
        error = Printexc.to_string e;
        backtrace = (if backtrace = "" then "(not recorded)" else backtrace);
        findings;
        (* The counter snapshot captures how far the pipeline got before
           the failure (sweeps run, factorisations done, pool activity) —
           often enough to localise a crash without reproducing it. *)
        counters =
          List.filter (fun (_, v) -> v <> 0) (Obs.Counter.snapshot ());
        (* The manifest thunk runs only on failure: it snapshots
           whatever run record the caller can assemble at crash time
           (typically a manifest with no node results yet), and its own
           failures must not mask the original exception. *)
        manifest =
          Option.bind manifest (fun f -> try Some (f ()) with _ -> None) }
    in
    write_report report_dir r;
    Error r
