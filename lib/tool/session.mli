(** Simulation-environment sessions — the Analog Artist substitute.

    A session holds everything the paper's tool reads from the "current
    Analog Artist session" (section 6): the design, the simulator choice,
    design variables, temperature, the analyses to run, the scale factor
    for result annotation and the results directory. Sessions can be saved
    to and restored from state files, standing in for sevSaveState /
    sevLoadState. *)

type analysis_spec =
  | Op
  | Ac of Numerics.Sweep.t
  | Tran of { tstop : float; tstep : float }
  | Stab_single of Circuit.Netlist.node
  | Stab_all
  | Noise of { sweep : Numerics.Sweep.t; output : Circuit.Netlist.node }
  | Poles

type t

val create : ?name:string -> unit -> t
(** A fresh session; a unique session id is assigned (the stand-in for
    asiGetCurrentSession). *)

val name : t -> string
val id : t -> int

val cache : t -> Cache.t
(** The session's fingerprint-keyed analysis cache, created lazily on
    first use. {!Ocean.run} memoizes its stability analyses through it,
    so re-running a session whose design and options have not changed
    costs zero DC solves and zero symbolic analyses — the session-reuse
    economics the paper's resident tool gets from Analog Artist. *)

val set_design : t -> Circuit.Netlist.t -> unit
val design : t -> Circuit.Netlist.t
(** Raises [Failure] when no design was loaded. *)

val set_simulator : t -> string -> unit
(** Only ["builtin"] is available; other names (e.g. ["spectre"]) are
    accepted and recorded, with a warning, to keep OCEAN scripts portable. *)

val simulator : t -> string

val set_design_variable : t -> string -> float -> unit
val design_variables : t -> (string * float) list
(** Design variables are applied as netlist parameters when the design is
    elaborated by {!Ocean.run}. *)

val set_temp : t -> float -> unit
val temp : t -> float

val set_scale : t -> float -> unit
(** The Analog Artist "scale" environment variable (annotation scaling). *)

val scale : t -> float

val set_results_dir : t -> string -> unit
val results_dir : t -> string

val add_analysis : t -> analysis_spec -> unit
val clear_analyses : t -> unit
val analyses : t -> analysis_spec list

val save_state : t -> string -> unit
(** Write the session configuration (not the design) to a state file. *)

val load_state : t -> string -> unit
(** Restore configuration from a state file written by {!save_state}.
    Raises [Failure] on malformed files. *)
