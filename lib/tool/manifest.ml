(* Run manifests: one JSON document capturing what was analysed (deck
   fingerprint, options), what came out (per-node peak numbers and
   health grades) and how the run behaved (counters, health histograms,
   timing). Two manifests of the same deck are comparable artefacts —
   [diff] below is what [acstab diff] runs, and the CI smoke gates on
   it. *)

let schema_version = "acstab-manifest/1"

type node_entry = {
  node : string;
  f_n : float option;
  zeta : float option;
  phase_margin_deg : float option;
  peak : float option;
  quality : string;
}

type loop_record = {
  loop_id : string;
  loop_kind : string;
  loop_gain_order : int;
  loop_nets : string list;
}

type loops_section = {
  loop_list : loop_record list;
  cover : string list;
  loops_truncated : bool;
}

type t = {
  deck_file : string;
  deck_sha256 : string;
  stats : (string * int) list;
  options : (string * string) list;
  lint : Json.t;
  nodes : node_entry list;
  loops : loops_section option;
  counters : (string * int) list;
  histograms : (string * Obs.Histogram.summary) list;
  wall_s : float;
  cpu_s : float;
}

let entry_of_result (r : Stability.Analysis.node_result) =
  let dominant f = Option.map f r.dominant in
  { node = r.node;
    f_n = dominant (fun d -> d.Stability.Peaks.freq);
    zeta = Option.join (dominant (fun d -> d.Stability.Peaks.zeta));
    phase_margin_deg =
      Option.join (dominant (fun d -> d.Stability.Peaks.phase_margin_deg));
    peak = dominant (fun d -> d.Stability.Peaks.value);
    quality = Stability.Analysis.quality_string r.quality }

let build ~deck_file ~deck_text ?circ ?(options = []) ?lint_json ?loops
    ~results ~wall_s ~cpu_s () =
  let lint =
    match lint_json with
    | None -> Json.Arr []
    | Some s ->
      (* Pre-rendered by the lint library (the tool layer does not link
         it); malformed input degrades to the raw string rather than
         poisoning the manifest. *)
      (match Json.of_string s with Ok v -> v | Error _ -> Json.Str s)
  in
  let stats =
    match circ with
    | None -> []
    | Some c ->
      [ ("nodes", Circuit.Topology.node_count (Circuit.Topology.build c));
        ("devices", List.length (Circuit.Netlist.devices c)) ]
  in
  { deck_file;
    deck_sha256 = Sha256.digest deck_text;
    stats;
    options;
    lint;
    nodes = List.map entry_of_result results;
    loops;
    counters = List.filter (fun (_, v) -> v <> 0) (Obs.Counter.snapshot ());
    histograms = Obs.Histogram.snapshot ();
    wall_s;
    cpu_s }

(* --- JSON round trip --- *)

let opt_num = function Some v -> Json.Num v | None -> Json.Null

let json_of_entry e =
  Json.Obj
    [ ("node", Json.Str e.node);
      ("f_n", opt_num e.f_n);
      ("zeta", opt_num e.zeta);
      ("phase_margin_deg", opt_num e.phase_margin_deg);
      ("peak", opt_num e.peak);
      ("quality", Json.Str e.quality) ]

let json_of_loop l =
  Json.Obj
    [ ("id", Json.Str l.loop_id);
      ("kind", Json.Str l.loop_kind);
      ("gain_order", Json.Num (float_of_int l.loop_gain_order));
      ("nets", Json.Arr (List.map (fun n -> Json.Str n) l.loop_nets)) ]

let json_of_loops s =
  Json.Obj
    [ ("loops", Json.Arr (List.map json_of_loop s.loop_list));
      ("cover", Json.Arr (List.map (fun n -> Json.Str n) s.cover));
      ("truncated", Json.Bool s.loops_truncated) ]

let json_of_summary (s : Obs.Histogram.summary) =
  Json.Obj
    [ ("count", Json.Num (float_of_int s.count));
      ("p50", Json.Num s.p50);
      ("p90", Json.Num s.p90);
      ("p99", Json.Num s.p99);
      ("max", Json.Num s.max) ]

let json m =
  (Json.Obj
      ([ ("schema", Json.Str schema_version);
         ("deck",
          Json.Obj
            ([ ("file", Json.Str m.deck_file);
               ("sha256", Json.Str m.deck_sha256) ]
            @ List.map
                (fun (k, v) -> (k, Json.Num (float_of_int v)))
                m.stats));
         ("options",
          Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) m.options));
         ("lint", m.lint);
         ("nodes", Json.Arr (List.map json_of_entry m.nodes)) ]
       (* The loops section is optional: manifests written before static
          analysis existed simply lack it, and [diff] only compares it
          when both sides carry one. *)
       @ (match m.loops with
          | None -> []
          | Some s -> [ ("loops", json_of_loops s) ])
       @ [ ("counters",
          Json.Obj
            (List.map
               (fun (k, v) -> (k, Json.Num (float_of_int v)))
               m.counters));
         ("histograms",
          Json.Obj
            (List.map (fun (k, s) -> (k, json_of_summary s)) m.histograms));
         ("timing",
          Json.Obj
            [ ("wall_s", Json.Num m.wall_s); ("cpu_s", Json.Num m.cpu_s) ])
       ]))

let to_json m = Json.to_string (json m)

let write path m =
  let oc = open_out path in
  output_string oc (to_json m);
  output_char oc '\n';
  close_out oc

(* Loading validates as it decodes: every [Error] names the offending
   field, so a truncated or hand-edited manifest fails loudly in
   [acstab diff] instead of comparing garbage. *)

let ( let* ) = Result.bind

let field name conv v =
  match Option.bind (Json.member name v) conv with
  | Some x -> Ok x
  | None -> Error (Printf.sprintf "manifest: missing or ill-typed %S" name)

let opt_float name v =
  match Json.member name v with
  | None | Some Json.Null -> Ok None
  | Some (Json.Num x) -> Ok (Some x)
  | Some _ -> Error (Printf.sprintf "manifest: ill-typed %S" name)

let entry_of_json v =
  let* node = field "node" Json.to_str v in
  let* f_n = opt_float "f_n" v in
  let* zeta = opt_float "zeta" v in
  let* phase_margin_deg = opt_float "phase_margin_deg" v in
  let* peak = opt_float "peak" v in
  let* quality = field "quality" Json.to_str v in
  match quality with
  | "good" | "degraded" | "suspect" ->
    Ok { node; f_n; zeta; phase_margin_deg; peak; quality }
  | q -> Error (Printf.sprintf "manifest: unknown quality grade %S" q)

let str_list name v =
  match Json.member name v with
  | Some (Json.Arr items) ->
    let strs = List.filter_map Json.to_str items in
    if List.length strs = List.length items then Ok strs
    else Error (Printf.sprintf "manifest: %S must hold strings" name)
  | _ -> Error (Printf.sprintf "manifest: missing or ill-typed %S" name)

let rec collect f = function
  | [] -> Ok []
  | x :: rest ->
    let* y = f x in
    let* ys = collect f rest in
    Ok (y :: ys)

let loop_of_json v =
  let* loop_id = field "id" Json.to_str v in
  let* loop_kind = field "kind" Json.to_str v in
  let* gain = field "gain_order" Json.to_float v in
  let* loop_nets = str_list "nets" v in
  Ok { loop_id; loop_kind; loop_gain_order = int_of_float gain; loop_nets }

let loops_of_json v =
  let* items = field "loops" Json.to_list v in
  let* loop_list = collect loop_of_json items in
  let* cover = str_list "cover" v in
  let* loops_truncated = field "truncated" Json.to_bool v in
  Ok { loop_list; cover; loops_truncated }

let summary_of_json v =
  let* count = field "count" Json.to_float v in
  let* p50 = field "p50" Json.to_float v in
  let* p90 = field "p90" Json.to_float v in
  let* p99 = field "p99" Json.to_float v in
  let* max = field "max" Json.to_float v in
  Ok { Obs.Histogram.count = int_of_float count; p50; p90; p99; max }

let assoc_of name conv v =
  match Json.member name v with
  | Some (Json.Obj fields) ->
    collect
      (fun (k, x) ->
        match conv x with
        | Ok y -> Ok (k, y)
        | Error e -> Error (Printf.sprintf "%s (in %S)" e name))
      fields
  | _ -> Error (Printf.sprintf "manifest: missing or ill-typed %S" name)

let num_field v =
  match v with
  | Json.Num x -> Ok x
  | _ -> Error "manifest: expected number"

let of_json_string text =
  let* v = Json.of_string text in
  let* schema = field "schema" Json.to_str v in
  if schema <> schema_version then
    Error
      (Printf.sprintf "manifest: schema %S, this tool reads %S" schema
         schema_version)
  else
    let* deck = field "deck" Option.some v in
    let* deck_file = field "file" Json.to_str deck in
    let* deck_sha256 = field "sha256" Json.to_str deck in
    let stats =
      match deck with
      | Json.Obj fields ->
        List.filter_map
          (fun (k, x) ->
            match x with
            | Json.Num n when k <> "file" && k <> "sha256" ->
              Some (k, int_of_float n)
            | _ -> None)
          fields
      | _ -> []
    in
    let* options =
      assoc_of "options"
        (fun x ->
          match Json.to_str x with
          | Some s -> Ok s
          | None -> Error "manifest: option values must be strings")
        v
    in
    let lint = Option.value ~default:(Json.Arr []) (Json.member "lint" v) in
    let* node_items = field "nodes" Json.to_list v in
    let* nodes = collect entry_of_json node_items in
    let* loops =
      match Json.member "loops" v with
      | None -> Ok None
      | Some s -> Result.map Option.some (loops_of_json s)
    in
    let* counters =
      assoc_of "counters"
        (fun x -> Result.map int_of_float (num_field x))
        v
    in
    let* histograms = assoc_of "histograms" summary_of_json v in
    let* timing = field "timing" Option.some v in
    let* wall_s = field "wall_s" Json.to_float timing in
    let* cpu_s = field "cpu_s" Json.to_float timing in
    Ok
      { deck_file; deck_sha256; stats; options; lint; nodes; loops;
        counters; histograms; wall_s; cpu_s }

let load path =
  match In_channel.with_open_bin path In_channel.input_all with
  | text -> of_json_string text
  | exception Sys_error m -> Error m

(* --- diffing --- *)

type diff_options = { rtol_fn : float; rtol_zeta : float }

let default_diff_options = { rtol_fn = 1e-3; rtol_zeta = 1e-3 }

type change =
  | Added_peak of string
  | Removed_peak of string
  | Shifted of { node : string; field : string; a : float; b : float }
  | Downgraded of { node : string; from_ : string; to_ : string }
  | Loop_removed of string
  | Loop_added of string

let quality_rank = function
  | "good" -> 0
  | "degraded" -> 1
  | "suspect" -> 2
  | _ -> 3

let rel_exceeds rtol a b =
  let scale = Float.max (Float.abs a) (Float.abs b) in
  scale > 0. && Float.abs (a -. b) /. scale > rtol

(* A is the reference, B the candidate: changes read as "B relative to
   A". Quality improvements are not regressions; only downgrades are
   reported. *)
let diff ?(options = default_diff_options) a b =
  let tbl = Hashtbl.create 64 in
  List.iter (fun e -> Hashtbl.replace tbl e.node e) b.nodes;
  let of_b node = Hashtbl.find_opt tbl node in
  let in_a = Hashtbl.create 64 in
  List.iter (fun e -> Hashtbl.replace in_a e.node ()) a.nodes;
  let changes =
    List.concat_map
      (fun ea ->
        match of_b ea.node with
        | None ->
          if ea.f_n = None then [] else [ Removed_peak ea.node ]
        | Some eb ->
          let shifted field rtol va vb =
            match (va, vb) with
            | Some x, Some y when rel_exceeds rtol x y ->
              [ Shifted { node = ea.node; field; a = x; b = y } ]
            | _ -> []
          in
          (match (ea.f_n, eb.f_n) with
           | Some _, None -> [ Removed_peak ea.node ]
           | None, Some _ -> [ Added_peak ea.node ]
           | _ ->
             shifted "f_n" options.rtol_fn ea.f_n eb.f_n
             @ shifted "zeta" options.rtol_zeta ea.zeta eb.zeta)
          @
          if quality_rank eb.quality > quality_rank ea.quality then
            [ Downgraded
                { node = ea.node; from_ = ea.quality; to_ = eb.quality } ]
          else [])
      a.nodes
  in
  (* Structural loops are compared only when both manifests carry the
     section: a reference written before static analysis existed cannot
     be read as "the design had no loops". A loop that disappears is a
     gated regression just like a vanished peak — a topology edit has
     broken (or opened) a feedback path the reference knew about. *)
  let loop_changes =
    match (a.loops, b.loops) with
    | Some la, Some lb ->
      let ids s = List.map (fun l -> l.loop_id) s.loop_list in
      let ida = ids la and idb = ids lb in
      List.filter_map
        (fun i -> if List.mem i idb then None else Some (Loop_removed i))
        ida
      @ List.filter_map
          (fun i -> if List.mem i ida then None else Some (Loop_added i))
          idb
    | _ -> []
  in
  changes
  @ List.filter_map
      (fun eb ->
        if Hashtbl.mem in_a eb.node || eb.f_n = None then None
        else Some (Added_peak eb.node))
      b.nodes
  @ loop_changes

(* Machine-readable changes: what `acstab diff --json` prints and what
   the serve daemon returns for a diff request, so CI consumes verdicts
   without parsing the human text. *)
let change_json = function
  | Added_peak n ->
    Json.Obj [ ("kind", Json.Str "added_peak"); ("node", Json.Str n) ]
  | Removed_peak n ->
    Json.Obj [ ("kind", Json.Str "removed_peak"); ("node", Json.Str n) ]
  | Shifted { node; field; a; b } ->
    Json.Obj
      [ ("kind", Json.Str "shifted"); ("node", Json.Str node);
        ("field", Json.Str field); ("a", Json.Num a); ("b", Json.Num b);
        ("relative",
         Json.Num
           (Float.abs (a -. b) /. Float.max (Float.abs a) (Float.abs b))) ]
  | Downgraded { node; from_; to_ } ->
    Json.Obj
      [ ("kind", Json.Str "quality_downgraded"); ("node", Json.Str node);
        ("from", Json.Str from_); ("to", Json.Str to_) ]
  | Loop_removed i ->
    Json.Obj [ ("kind", Json.Str "loop_removed"); ("loop", Json.Str i) ]
  | Loop_added i ->
    Json.Obj [ ("kind", Json.Str "loop_added"); ("loop", Json.Str i) ]

let diff_json ~a ~b changes =
  Json.Obj
    [ ("schema", Json.Str "acstab-diff/1");
      ("reference", Json.Str a.deck_file);
      ("candidate", Json.Str b.deck_file);
      ("same_deck", Json.Bool (a.deck_sha256 = b.deck_sha256));
      ("nodes_compared", Json.Num (float_of_int (List.length a.nodes)));
      ("agree", Json.Bool (changes = []));
      ("changes", Json.Arr (List.map change_json changes)) ]

let pp_change ppf = function
  | Added_peak n -> Format.fprintf ppf "peak added on node %s" n
  | Removed_peak n -> Format.fprintf ppf "peak removed on node %s" n
  | Shifted { node; field; a; b } ->
    Format.fprintf ppf "%s shifted on node %s: %.6g -> %.6g (%.2g relative)"
      field node a b
      (Float.abs (a -. b) /. Float.max (Float.abs a) (Float.abs b))
  | Downgraded { node; from_; to_ } ->
    Format.fprintf ppf "quality downgraded on node %s: %s -> %s" node from_
      to_
  | Loop_removed i -> Format.fprintf ppf "feedback loop removed: %s" i
  | Loop_added i -> Format.fprintf ppf "feedback loop added: %s" i
