(** Self-contained JSON values: printer {e and} parser.

    Run manifests must round-trip — [acstab diff] reads back what
    [--manifest] wrote — so unlike the emit-only JSON in the lint
    library this one parses too. Numbers are doubles; non-finite floats
    print as [null]. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (single-line) serialisation. *)

val of_string : string -> (t, string) result
(** Parse a complete JSON document; [Error] carries a byte-offset
    message. *)

val member : string -> t -> t option
(** Field of an object; [None] on missing key or non-object. *)

val salvage_member : string -> string -> t option
(** [salvage_member key text] best-effort extraction of one member's
    value from text that may not parse as a whole (a half-written
    NDJSON request, say): finds a quoted [key] followed by [:] and a
    parseable value. Nesting is not tracked — the first syntactic
    match wins — so use only for diagnostics such as echoing a request
    id, never for real decoding. *)

val to_float : t -> float option
val to_str : t -> string option
val to_list : t -> t list option
val to_bool : t -> bool option

val to_int : t -> int option
(** Integral numbers only ([Num 3.] yes, [Num 3.5] no). *)

(** [member]+accessor in one step — the request decoders of the serve
    protocol read almost every field this way. *)

val mem_str : string -> t -> string option
val mem_float : string -> t -> float option
val mem_int : string -> t -> int option
val mem_bool : string -> t -> bool option
