(** Monte-Carlo stability verification.

    Samples component mismatch (relative Gaussian perturbations on the
    passive components and selected model parameters), re-runs a
    user-supplied analysis for each sample through the {!Job} queue, and
    summarises the spread — the statistical counterpart of corner analysis
    for questions like "what fraction of parts ring worse than zeta 0.3?".
    The generator is seeded explicitly so runs are reproducible. *)

type spec = {
  passive_sigma : float;       (** relative sigma on R/C/L values (0.05) *)
  model_sigma : (string * string * float) list;
      (** (model, parameter, relative sigma) triples, e.g.
          [("MN", "vto", 0.03)] *)
}

val default_spec : spec

val sample : seed:int -> spec -> Circuit.Netlist.t -> Circuit.Netlist.t
(** One mismatch sample of the circuit (deterministic in [seed]). *)

type 'a run = {
  samples : (int * ('a, exn) Result.t) list;  (** seed, outcome *)
}

val run :
  ?parallel:[ `Auto | `Seq | `Par ] -> ?spec:spec -> n:int -> seed:int ->
  Circuit.Netlist.t -> (Circuit.Netlist.t -> 'a) -> 'a run
(** Samples run through {!Job.run_all}; [`Auto] (the default) fans them
    out over the persistent worker pool when it has more than one slot.
    Per-sample results are deterministic in [seed] regardless of the
    execution mode. *)

type stats = {
  count : int;
  failures : int;
  mean : float;
  sigma : float;
  minimum : float;
  maximum : float;
}

val stats : float run -> stats
(** Raises [Invalid_argument] if every sample failed. *)

val yield : float run -> ok:(float -> bool) -> float
(** Fraction of successful samples satisfying the acceptance predicate
    (failed samples count as rejects). *)

val pp_stats : Format.formatter -> stats -> unit
