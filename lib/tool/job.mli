(** Simulation job control.

    The paper lists "remote simulation / distributed / computer farm run
    capability" as a feature in development; this module provides the
    scheduling semantics at workstation scale: a named queue of independent
    simulation jobs executed sequentially or across OCaml domains, with
    per-job outcomes (result or captured exception) and wall-clock times.
    All-nodes stability scans and corner sweeps submit through it. *)

type 'a outcome = {
  job_name : string;
  result : ('a, exn) Result.t;
  elapsed_s : float;
}

val run_all :
  ?parallel:bool -> (string * (unit -> 'a)) list -> 'a outcome list
(** Execute the jobs. With [parallel] (default false) jobs are distributed
    over [min (job count) (Domain.recommended_domain_count () - 1)] worker
    domains (at least one) — never more domains than jobs; results come
    back in submission order either way. Jobs must not share mutable state
    when run in parallel. *)

val results_exn : 'a outcome list -> 'a list
(** Extract every result, re-raising the first failure. *)

val pp_summary : Format.formatter -> 'a outcome list -> unit
