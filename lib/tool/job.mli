(** Simulation job control.

    The paper lists "remote simulation / distributed / computer farm run
    capability" as a feature in development; this module provides the
    scheduling semantics at workstation scale: a named queue of independent
    simulation jobs executed sequentially or over the persistent
    {!Parallel.Pool} of worker domains, with per-job outcomes (result or
    captured exception with its backtrace) and wall-clock times.
    All-nodes stability scans, Monte-Carlo runs and corner sweeps submit
    through it. *)

type 'a outcome = {
  job_name : string;
  result : ('a, exn) Result.t;
  backtrace : Printexc.raw_backtrace option;
      (** crash-site backtrace of a failed job, for re-raising *)
  elapsed_s : float;
}

val run_all :
  ?parallel:[ `Auto | `Seq | `Par ] ->
  (string * (unit -> 'a)) list -> 'a outcome list
(** Execute the jobs. [`Auto] (the default) runs over the pool whenever
    there is more than one job and {!Parallel.Pool.jobs} exceeds 1 —
    each job is one stealable chunk, so uneven job durations rebalance
    dynamically. [`Seq] forces in-order sequential execution, [`Par]
    forces pooled execution. Results come back in submission order
    either way. Jobs must not share mutable state when run in
    parallel. A job submitted from inside another pool task runs inline
    (no oversubscription). *)

val results_exn : 'a outcome list -> 'a list
(** Extract every result, re-raising the first failure with the
    backtrace captured at its original crash site. *)

val pp_summary : Format.formatter -> 'a outcome list -> unit
