(** The canonical analysis run, expressed as a value.

    One code path from deck to results, shared by the CLI subcommands,
    the [acstab serve] daemon and OCEAN sessions:

    {v deck -> load (parse + lint gate) -> analyze (DC op -> plan ->
       sweep -> peaks) -> results + manifest v}

    Failures are data ({!failure}, with {!exit_code} carrying the CLI's
    exit-code contract) rather than [exit] calls, so a resident server
    can answer a broken request and keep serving.

    [analyze] memoizes through {!Cache}, keyed by the deck's SHA-256
    fingerprint and the options in force, at three grains: the prepared
    probe (MNA + DC operating point), the compiled {!Engine.Ac_plan}
    (the symbolic analysis) and the complete result set with its run
    manifest. A warm repeat of an identical request performs zero DC
    solves and zero symbolic analyses; a request that changes only the
    sweep or the probed nodes still reuses the operating point and the
    plan. *)

type deck =
  | Deck_file of string                 (** parse a netlist file *)
  | Deck_text of { name : string; text : string }
      (** parse netlist text (the serve protocol's inline decks) *)
  | Deck_circuit of { name : string; circ : Circuit.Netlist.t }
      (** an already-built design, fingerprinted through its canonical
          SPICE rendering (temperature included) *)

type lint_policy = { no_lint : bool; strict : bool }

val default_lint_policy : lint_policy
(** Gate on lint errors; warnings pass. *)

type loaded = {
  deck_name : string;
  deck_text : string;
  sha256 : string;              (** deck fingerprint — every cache key's prefix *)
  circ : Circuit.Netlist.t;
  findings : Lint.Rule.finding list;
      (** what the gate ran (and the CLI prints); [[]] under [no_lint] *)
}

type failure =
  | Parse_failed of { message : string }        (** exit 2 *)
  | Usage_failed of { message : string }        (** exit 2 *)
  | Lint_blocked of { findings : Lint.Rule.finding list }  (** exit 4 *)
  | Analysis_failed of {
      message : string;
      likely_cause : Lint.Rule.finding list;
          (** lint findings that predicted the failure (singular-matrix
              translation), printed under a "likely cause:" header *)
    }  (** exit 3 *)

val exit_code : failure -> int
val failure_message : failure -> string

val load : ?policy:lint_policy -> deck -> (loaded, failure) result
(** Parse and lint-gate a deck. [Error Lint_blocked] when a finding
    blocks under [policy] (errors always; warnings under [strict]). *)

val guard : loaded -> (unit -> 'a) -> ('a, failure) result
(** Run an engine computation, translating its exceptions
    ([Dcop.No_convergence], dense/sparse [Singular], [Mna.Compile_error],
    [Invalid_argument]) into {!failure} values, with singular pivots
    named via {!Engine.Mna.unknown_name} and explained by the lint
    rules that predicted them. The long-tail CLI subcommands (ac, tran,
    noise, poles, ...) run their engine calls under this guard. *)

val static_report :
  ?cache:Cache.t -> ?bounds:Staticanalysis.Cycles.bounds -> loaded ->
  Staticanalysis.Report.t * bool
(** The deck's static signal-flow report (loops, probe cover,
    reachability), memoized in the [sfg] cache family keyed by the deck
    fingerprint and the cycle bounds. The [bool] is the hit flag; a warm
    hit performs zero graph rebuilds ([sfg.builds] stays flat). *)

val manifest_of :
  ?cache:Cache.t -> loaded -> options:(string * string) list ->
  results:Stability.Analysis.node_result list -> wall_s:float ->
  cpu_s:float -> Manifest.t
(** The single manifest-emission helper: fingerprint, options, results,
    lint report, structural loops section, telemetry snapshot — used by
    [analyze] itself, by the run command's crash reports, and by
    anything else that must record a run. *)

val cpu_seconds : unit -> float
(** Process CPU time (user + system), the manifest's [cpu_s] clock. *)

(** {1 Stability analyses (the cached path)} *)

type analysis =
  | Single_node of Circuit.Netlist.node
  | All_nodes of Circuit.Netlist.node list option
      (** [None] probes every net, [Some] a subset *)
  | Auto_nodes
      (** probe the static report's greedy cover — every enumerated
          feedback loop observed with the fewest probes; falls back to
          every net when the deck has no coverable loops *)

type outcome = {
  loaded : loaded;
  analysis : analysis;
  options : Stability.Analysis.options;
  results : Stability.Analysis.node_result list;
  manifest : Manifest.t;
  wall_s : float;   (** of the run that produced [results] (a cache hit
                        reports the original, cold timing) *)
  cpu_s : float;
  cache : [ `Hit | `Miss ];
}

val analyze :
  ?cache:Cache.t -> ?options:Stability.Analysis.options -> loaded ->
  analysis -> (outcome, failure) result
(** The canonical run on a loaded deck, under {!guard}, memoized in
    [cache] (default: the process-global {!Cache.global}). *)

val analyze_exn :
  ?cache:Cache.t -> ?options:Stability.Analysis.options -> loaded ->
  analysis -> outcome
(** As {!analyze} but letting engine exceptions propagate — for callers
    with their own exception contract ({!Ocean.run} under
    {!Diagnostics.guard}). *)

(** {1 One-step requests} *)

type request = {
  deck : deck;
  analysis : analysis;
  options : Stability.Analysis.options;
  policy : lint_policy;
}

val request :
  ?options:Stability.Analysis.options -> ?policy:lint_policy -> deck ->
  analysis -> request

val run : ?cache:Cache.t -> request -> (outcome, failure) result
(** [load] then [analyze]. *)
