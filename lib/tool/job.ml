type 'a outcome = {
  job_name : string;
  result : ('a, exn) Result.t;
  backtrace : Printexc.raw_backtrace option;
  elapsed_s : float;
}

let execute (job_name, thunk) =
  let t_span = Obs.Span.enter () in
  let t0 = Unix.gettimeofday () in
  match thunk () with
  | v ->
    Obs.Span.leave ("job:" ^ job_name) t_span;
    { job_name; result = Ok v; backtrace = None;
      elapsed_s = Unix.gettimeofday () -. t0 }
  | exception e ->
    (* Capture the backtrace before any further allocation disturbs it:
       a failing Monte-Carlo sample should name the real crash site, not
       the scheduler frame that re-raised it. *)
    let bt = Printexc.get_raw_backtrace () in
    Obs.Span.leave ~args:[ ("failed", 1) ] ("job:" ^ job_name) t_span;
    { job_name; result = Error e; backtrace = Some bt;
      elapsed_s = Unix.gettimeofday () -. t0 }

let run_sequential jobs = List.map execute jobs

(* Work-stealing execution over the persistent domain pool, one chunk
   per job: a slow corner in the middle of the queue no longer holds up
   the jobs behind it (the old static round-robin buckets serialised
   exactly that way), and outcomes still come back in submission order.
   [execute] already converts exceptions into outcomes, so nothing
   escapes into the pool's abort path. *)
let run_parallel jobs = Parallel.Pool.map_list ~chunk:1 execute jobs

let run_all ?(parallel = `Auto) jobs =
  let pooled =
    match parallel with
    | `Seq -> false
    | `Par -> List.length jobs > 1
    | `Auto -> List.length jobs > 1 && Parallel.Pool.jobs () > 1
  in
  if pooled then run_parallel jobs else run_sequential jobs

let results_exn outcomes =
  List.map
    (fun o ->
      match o.result with
      | Ok v -> v
      | Error e ->
        (match o.backtrace with
         | Some bt -> Printexc.raise_with_backtrace e bt
         | None -> raise e))
    outcomes

let pp_summary ppf outcomes =
  let ok, failed =
    List.partition (fun o -> Result.is_ok o.result) outcomes
  in
  let total = List.fold_left (fun acc o -> acc +. o.elapsed_s) 0. outcomes in
  Format.fprintf ppf "%d job(s): %d ok, %d failed, %.2f s total CPU@."
    (List.length outcomes) (List.length ok) (List.length failed) total;
  List.iter
    (fun o ->
      match o.result with
      | Ok _ -> ()
      | Error e ->
        Format.fprintf ppf "  FAILED %s: %s@." o.job_name
          (Printexc.to_string e))
    outcomes
