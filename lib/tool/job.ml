type 'a outcome = {
  job_name : string;
  result : ('a, exn) Result.t;
  elapsed_s : float;
}

let execute (job_name, thunk) =
  let t0 = Unix.gettimeofday () in
  let result = try Ok (thunk ()) with e -> Error e in
  { job_name; result; elapsed_s = Unix.gettimeofday () -. t0 }

let run_sequential jobs = List.map execute jobs

(* Static round-robin partition over worker domains; each worker returns
   its outcomes tagged with the original index so submission order is
   restored at the end. *)
let run_parallel jobs =
  let indexed = List.mapi (fun i j -> (i, j)) jobs in
  (* Never spawn more domains than there are jobs — a two-job batch on a
     16-core machine gets two workers, not fifteen idle ones. *)
  let workers =
    Int.max 1
      (Int.min (List.length jobs) (Domain.recommended_domain_count () - 1))
  in
  let buckets = Array.make workers [] in
  List.iter
    (fun (i, j) -> buckets.(i mod workers) <- (i, j) :: buckets.(i mod workers))
    indexed;
  let domains =
    Array.to_list buckets
    |> List.filter (fun bucket -> bucket <> [])
    |> List.map (fun bucket ->
        Domain.spawn (fun () ->
            List.map (fun (i, j) -> (i, execute j)) bucket))
  in
  let tagged = List.concat_map Domain.join domains in
  List.sort (fun (a, _) (b, _) -> compare a b) tagged |> List.map snd

let run_all ?(parallel = false) jobs =
  if parallel && List.length jobs > 1 then run_parallel jobs
  else run_sequential jobs

let results_exn outcomes =
  List.map
    (fun o -> match o.result with Ok v -> v | Error e -> raise e)
    outcomes

let pp_summary ppf outcomes =
  let ok, failed =
    List.partition (fun o -> Result.is_ok o.result) outcomes
  in
  let total = List.fold_left (fun acc o -> acc +. o.elapsed_s) 0. outcomes in
  Format.fprintf ppf "%d job(s): %d ok, %d failed, %.2f s total CPU@."
    (List.length outcomes) (List.length ok) (List.length failed) total;
  List.iter
    (fun o ->
      match o.result with
      | Ok _ -> ()
      | Error e ->
        Format.fprintf ppf "  FAILED %s: %s@." o.job_name
          (Printexc.to_string e))
    outcomes
