(* The canonical analysis run, as a value.

   Every front end — each CLI subcommand, the serve daemon, OCEAN
   scripts — used to re-derive the same imperative sequence: read the
   deck, gate it on lint, find the operating point, compile the solve
   plan, sweep, report, write the manifest. This module owns that
   sequence once, as [load] (deck -> gated circuit) and [analyze]
   (gated circuit -> results + manifest), with failures as data
   ([failure] carries the exit-code contract) instead of [exit] calls
   buried in command bodies.

   [analyze] is memoized through {!Cache} at three grains keyed by the
   deck's SHA-256 fingerprint plus the options in force: the prepared
   probe (DC operating point), the compiled plan (symbolic analysis)
   and the complete result set with its manifest. A warm repeat of the
   same request performs zero DC solves and zero symbolic analyses;
   a request that only changes the sweep or the probed nodes still
   reuses the operating point and the plan. *)

type deck =
  | Deck_file of string
  | Deck_text of { name : string; text : string }
  | Deck_circuit of { name : string; circ : Circuit.Netlist.t }

type lint_policy = { no_lint : bool; strict : bool }

let default_lint_policy = { no_lint = false; strict = false }

type loaded = {
  deck_name : string;
  deck_text : string;
  sha256 : string;
  circ : Circuit.Netlist.t;
  findings : Lint.Rule.finding list;
}

type failure =
  | Parse_failed of { message : string }
  | Usage_failed of { message : string }
  | Lint_blocked of { findings : Lint.Rule.finding list }
  | Analysis_failed of {
      message : string;
      likely_cause : Lint.Rule.finding list;
    }

(* The CLI's exit-code contract: 2 bad input, 3 analysis failure,
   4 lint gate. (1 is cmdliner usage, 5 is `acstab diff` regressions.) *)
let exit_code = function
  | Parse_failed _ | Usage_failed _ -> 2
  | Analysis_failed _ -> 3
  | Lint_blocked _ -> 4

let failure_message = function
  | Parse_failed { message }
  | Usage_failed { message }
  | Analysis_failed { message; _ } -> message
  | Lint_blocked _ ->
    "lint: blocking findings; fix the netlist or pass --no-lint to force \
     the run"

(* ---- load: parse + lint gate ---- *)

let blocking policy (f : Lint.Rule.finding) =
  match f.severity with
  | Lint.Rule.Error -> true
  | Lint.Rule.Warning -> policy.strict
  | Lint.Rule.Info -> false

let load ?(policy = default_lint_policy) deck =
  match
    (match deck with
     | Deck_file path ->
       let circ =
         Obs.Span.with_ "parse" (fun () -> Circuit.Parser.parse_file path)
       in
       let text = In_channel.with_open_bin path In_channel.input_all in
       (path, text, circ)
     | Deck_text { name; text } ->
       let circ =
         Obs.Span.with_ "parse" (fun () ->
             Circuit.Parser.parse_string ~name text)
       in
       (name, text, circ)
     | Deck_circuit { name; circ } ->
       (* Fingerprint the in-memory design through its canonical SPICE
          rendering (temperature included), so an OCEAN session's
          repeated runs hit the same cache rows as the CLI on the
          exported deck. *)
       (name, Circuit.Netlist.to_spice circ, circ))
  with
  | exception Circuit.Parser.Parse_error { line; message } ->
    let file =
      match deck with
      | Deck_file p -> p
      | Deck_text { name; _ } | Deck_circuit { name; _ } -> name
    in
    Error
      (Parse_failed
         { message = Printf.sprintf "%s:%d: %s" file line message })
  | exception Sys_error m -> Error (Parse_failed { message = m })
  | deck_name, deck_text, circ ->
    let findings =
      if policy.no_lint then []
      else Obs.Span.with_ "lint" (fun () -> Lint.Runner.run circ)
    in
    if List.exists (blocking policy) findings then
      Error (Lint_blocked { findings })
    else
      Ok
        { deck_name; deck_text; sha256 = Sha256.digest deck_text; circ;
          findings }

(* ---- guard: engine exceptions -> failure values ---- *)

(* Translate a Singular exception into the lint findings that predicted
   it, so the user sees net/branch names instead of a matrix index. *)
let singular_failure ~what circ index =
  let message =
    match Engine.Mna.compile circ with
    | mna ->
      Printf.sprintf "%s: singular matrix at %s" what
        (Engine.Mna.unknown_name mna index)
    | exception _ -> Printf.sprintf "%s: singular matrix (pivot %d)" what index
  in
  Analysis_failed
    { message; likely_cause = Lint.Runner.explain_singular ~index circ }

let guard loaded f =
  match f () with
  | v -> Ok v
  | exception Engine.Dcop.No_convergence m ->
    Error
      (Analysis_failed
         { message = Printf.sprintf "DC convergence failure: %s" m;
           likely_cause = Lint.Runner.explain_singular loaded.circ })
  | exception Numerics.Dense.Singular k ->
    Error (singular_failure ~what:"dense factorization failed" loaded.circ k)
  | exception Numerics.Sparse.Singular k ->
    Error (singular_failure ~what:"sparse factorization failed" loaded.circ k)
  | exception Engine.Mna.Compile_error m ->
    Error (Usage_failed { message = Printf.sprintf "elaboration error: %s" m })
  | exception Invalid_argument m ->
    (* Unknown or ground nets (Ac.v, Probe.response_many) are user input
       errors, not internal failures. *)
    Error (Usage_failed { message = Printf.sprintf "error: %s" m })

(* ---- static signal-flow report (cached per deck + bounds) ---- *)

let bounds_fingerprint (b : Staticanalysis.Cycles.bounds) =
  Printf.sprintf "len=%d,cycles=%d" b.max_len b.max_cycles

let static_report ?cache ?(bounds = Staticanalysis.Report.default_bounds)
    loaded =
  let c = match cache with Some c -> c | None -> Cache.global () in
  let key = loaded.sha256 ^ "|sfg|" ^ bounds_fingerprint bounds in
  Cache.sfg c ~key (fun () -> Staticanalysis.Report.analyze ~bounds loaded.circ)

(* ---- manifest emission (the one helper every mode shares) ---- *)

let cpu_seconds () =
  let t = Unix.times () in
  t.Unix.tms_utime +. t.Unix.tms_stime

let manifest_of ?cache loaded ~options ~results ~wall_s ~cpu_s =
  (* The lint findings go in as the lint library's JSON report,
     independent of the gate policy: a --no-lint run still records what
     the linter would have said. Likewise the structural loops section:
     it records what the deck's signal-flow graph says regardless of the
     analysis mode, so `acstab diff` can gate on vanished loops. *)
  let lint_json =
    Lint.Json.report ~file:loaded.deck_name (Lint.Runner.run loaded.circ)
  in
  let loops = Loops_report.section (fst (static_report ?cache loaded)) in
  Manifest.build ~deck_file:loaded.deck_name ~deck_text:loaded.deck_text
    ~circ:loaded.circ ~options ~lint_json ~loops ~results ~wall_s ~cpu_s ()

(* ---- analyze: the cached stability run ---- *)

type analysis =
  | Single_node of Circuit.Netlist.node
  | All_nodes of Circuit.Netlist.node list option
  | Auto_nodes

type outcome = {
  loaded : loaded;
  analysis : analysis;
  options : Stability.Analysis.options;
  results : Stability.Analysis.node_result list;
  manifest : Manifest.t;
  wall_s : float;
  cpu_s : float;
  cache : [ `Hit | `Miss ];
}

let sweep_fingerprint = function
  | Numerics.Sweep.Dec { start; stop; per_decade } ->
    Printf.sprintf "dec:%.17g:%.17g:%d" start stop per_decade
  | Numerics.Sweep.Lin { start; stop; points } ->
    Printf.sprintf "lin:%.17g:%.17g:%d" start stop points
  | Numerics.Sweep.List pts ->
    "list:"
    ^ String.concat ","
        (Array.to_list (Array.map (Printf.sprintf "%.17g") pts))

let dc_fingerprint (o : Engine.Dcop.options) =
  Printf.sprintf "gmin=%.17g,reltol=%.17g,vntol=%.17g,abstol=%.17g,itl=%d,step=%.17g"
    o.gmin o.reltol o.vntol o.abstol o.max_iter o.max_step

let backend_tag = function
  | `Auto -> "auto"
  | `Dense -> "dense"
  | `Sparse -> "sparse"
  | `Plan -> "plan"
  | `Kernel -> "kernel"

(* Everything that can change the numbers goes into the key; [parallel]
   does not (scheduling is bit-identical by contract, and the
   seq-vs-par manifest diff in @bench-smoke keeps it honest). *)
let options_fingerprint (o : Stability.Analysis.options) =
  Printf.sprintf "sweep=%s;refine=%b,%.17g,%d;min_peak=%.17g;dc=%s;be=%s;hs=%d"
    (sweep_fingerprint o.sweep) o.refine o.refine_ratio o.refine_per_decade
    o.min_peak (dc_fingerprint o.dc_options) (backend_tag o.backend)
    (Engine.Health.sample_every ())

let analysis_fingerprint = function
  | Single_node n -> "single:" ^ n
  | All_nodes None -> "all"
  | All_nodes (Some ns) -> "all:" ^ String.concat "," ns
  | Auto_nodes -> "auto"

(* Manifest option lines, spelled exactly as the pre-pipeline CLI
   spelled them so manifests stay diff-compatible across the refactor. *)
let manifest_options analysis (o : Stability.Analysis.options) =
  let sweep_opts =
    (match o.sweep with
     | Numerics.Sweep.Dec { start; stop; per_decade } ->
       [ ("fmin", Printf.sprintf "%g" start);
         ("fmax", Printf.sprintf "%g" stop);
         ("ppd", string_of_int per_decade) ]
     | sw -> [ ("sweep", sweep_fingerprint sw) ])
    @ [ ("health_sample", string_of_int (Engine.Health.sample_every ()));
        (* Scheduling cannot change the numbers (it is excluded from the
           cache fingerprint for that reason), but a manifest should
           still explain its own wall-clock: record what was asked for
           and what the pool would actually use. The pool counter
           snapshot (pool.steals, pool.queue_high_water, per-worker
           busy times, probe.sweeps_par) rides along in the manifest's
           counters section automatically. *)
        ("jobs", string_of_int (Parallel.Pool.jobs ()));
        ("jobs_effective", string_of_int (Parallel.Pool.effective_jobs ()));
        ("parallel",
         match o.parallel with
         | `Auto -> "auto"
         | `Seq -> "seq"
         | `Par -> "par") ]
  in
  match analysis with
  | Single_node n -> ("mode", "single-node") :: ("node", n) :: sweep_opts
  | All_nodes _ -> ("mode", "all-nodes") :: sweep_opts
  | Auto_nodes -> ("mode", "all-nodes") :: ("nodes", "auto") :: sweep_opts

let analyze_uncached ?cache ~options loaded analysis =
  let cache = match cache with Some c -> c | None -> Cache.global () in
  let op_key =
    loaded.sha256 ^ "|op|" ^ dc_fingerprint options.Stability.Analysis.dc_options
  in
  let plan_key =
    op_key ^ "|plan|" ^ backend_tag options.Stability.Analysis.backend
  in
  let w0 = Unix.gettimeofday () and c0 = cpu_seconds () in
  let probe, _ =
    Cache.op cache ~key:op_key (fun () ->
        Stability.Probe.prepare
          ~dc_options:options.Stability.Analysis.dc_options loaded.circ)
  in
  let plan, _ =
    Cache.plan cache ~key:plan_key (fun () ->
        Stability.Analysis.shared_plan options probe)
  in
  (* The kernel sits one compilation below the plan and is keyed one
     level deeper; consulted only when the options actually select the
     kernel backend, so the family stays empty (and its counters flat)
     on every other path. Warm repeat on the same deck + options =
     zero kernel compiles, which the serve smoke test asserts from the
     [kernel.compiles] counter. *)
  let kernel =
    match options.Stability.Analysis.backend with
    | `Kernel ->
      fst
        (Cache.kernel cache ~key:(plan_key ^ "|kernel") (fun () ->
             Stability.Analysis.shared_kernel options plan))
    | _ -> None
  in
  let results =
    match analysis with
    | Single_node node ->
      [ Stability.Analysis.single_node_prepared ~options ?plan ?kernel probe
          node ]
    | All_nodes nodes ->
      Stability.Analysis.all_nodes_prepared ~options ?nodes ?plan ?kernel
        probe
    | Auto_nodes ->
      (* Probe only the static report's cover set — every enumerated
         loop stays observed. A loop-free (or all-pinned) deck has an
         empty cover; probing nothing would be useless, so fall back to
         every net. *)
      let report, _ = static_report ~cache loaded in
      let nodes =
        match report.Staticanalysis.Report.cover with
        | [] -> None
        | cover -> Some cover
      in
      Stability.Analysis.all_nodes_prepared ~options ?nodes ?plan ?kernel
        probe
  in
  let wall_s = Unix.gettimeofday () -. w0
  and cpu_s = cpu_seconds () -. c0 in
  let manifest =
    manifest_of ~cache loaded ~options:(manifest_options analysis options)
      ~results ~wall_s ~cpu_s
  in
  { Cache.results; manifest }

let analyze_exn ?cache ?(options = Stability.Analysis.default_options) loaded
    analysis =
  let c = match cache with Some c -> c | None -> Cache.global () in
  let result_key =
    loaded.sha256 ^ "|" ^ analysis_fingerprint analysis ^ "|"
    ^ options_fingerprint options
  in
  let entry, hit =
    Cache.result c ~key:result_key (fun () ->
        Obs.Span.with_ "pipeline.analyze" (fun () ->
            analyze_uncached ~cache:c ~options loaded analysis))
  in
  (* One structured event per analysis (CLI one-shots with --log get a
     record too, not just the daemon); guarded so runs without a sink
     pay one atomic load, not a field-list allocation. *)
  if Obs.Events.enabled () then
    Obs.Events.emit "pipeline.analyze"
      [ ("deck", Obs.Events.Str loaded.deck_name);
        ("sha256", Obs.Events.Str loaded.sha256);
        ("cache", Obs.Events.Str (if hit then "hit" else "miss"));
        ("wall_ms",
         Obs.Events.Float (entry.Cache.manifest.Manifest.wall_s *. 1e3)) ];
  { loaded; analysis; options; results = entry.Cache.results;
    manifest = entry.Cache.manifest;
    wall_s = entry.Cache.manifest.Manifest.wall_s;
    cpu_s = entry.Cache.manifest.Manifest.cpu_s;
    cache = (if hit then `Hit else `Miss) }

let analyze ?cache ?options loaded analysis =
  guard loaded (fun () -> analyze_exn ?cache ?options loaded analysis)

(* ---- one-step convenience for front ends ---- *)

type request = {
  deck : deck;
  analysis : analysis;
  options : Stability.Analysis.options;
  policy : lint_policy;
}

let request ?(options = Stability.Analysis.default_options)
    ?(policy = default_lint_policy) deck analysis =
  { deck; analysis; options; policy }

let run ?cache { deck; analysis; options; policy } =
  match load ~policy deck with
  | Error f -> Error f
  | Ok loaded ->
    (match analyze ?cache ~options loaded analysis with
     | Ok outcome -> Ok outcome
     | Error f -> Error f)
