(** OCEAN-style procedural interface (paper sections 5-6).

    The paper's tool drives DFII through OCEAN calls — [simulator],
    [design], [analysis], [desVar], [temp], [run], [value] — and processes
    the results through the waveform calculator. This module exposes the
    same verbs over the built-in engine so the program-flow of the paper
    maps one-to-one:

    {[
      let s = Ocean.simulator "spectre" in
      Ocean.design_text s my_netlist_text;
      Ocean.des_var s "rzero" 1e3;
      Ocean.analysis s (Session.Ac (Numerics.Sweep.decade 1e3 1e9 30));
      Ocean.analysis s Session.Stab_all;
      let r = Ocean.run s in
      print_string (Ocean.stab_report r)
    ]} *)

type results = {
  op : Engine.Dcop.t option;
  ac : Engine.Ac.result option;
  tran : Engine.Transient.result option;
  stab : Stability.Analysis.node_result list;  (** [] when not run *)
  noise : Engine.Noise.result option;
  poles : Engine.Poles.pole list option;
  elaborated : Circuit.Netlist.t;  (** the circuit actually simulated *)
}

val simulator : string -> Session.t
(** Open a session for the named simulator (only the built-in engine
    actually runs; see {!Session.set_simulator}). *)

val design : Session.t -> Circuit.Netlist.t -> unit
(** Load an already-built design. Design variables set through {!des_var}
    do not affect it (its values are already numbers). *)

val design_text : Session.t -> string -> unit
(** Load a SPICE-format design as text; it is re-elaborated at every
    {!run} with the session's design variables bound as netlist
    parameters, exactly like desVar in the original flow. *)

val analysis : Session.t -> Session.analysis_spec -> unit
val des_var : Session.t -> string -> float -> unit
val temperature : Session.t -> float -> unit

val loops : Session.t -> Staticanalysis.Report.t
(** Static signal-flow report (feedback loops, probe cover,
    reachability) of the session's elaborated design — no solve, and
    memoized in the session's cache like every other grain, so a
    re-run on an unchanged design rebuilds nothing. Raises [Failure]
    when the design text does not parse. *)

val run : Session.t -> results
(** Execute every configured analysis; analyses read from the design's own
    directive cards are honoured too when none were configured explicitly.
    Raises the underlying engine exceptions on failure (see
    {!Diagnostics.guard} for the reporting wrapper). *)

(* Result access (OCEAN value()/v() equivalents). *)

val vdc : results -> Circuit.Netlist.node -> float
val v : results -> Circuit.Netlist.node -> Numerics.Waveform.Freq.t
val vt : results -> Circuit.Netlist.node -> Numerics.Waveform.Real.t
val stab_report : results -> string
val stab_annotated : results -> string
