(** In-tool corners and sweeps (paper section 4.2, "features in
    development": in-tool corners setup, in-tool sweeps (TEMP etc.)).

    A corner is a named set of model-parameter overrides plus an optional
    temperature; applying one returns a modified copy of the circuit.
    Sweeps run a user analysis across corners or across a temperature
    range, through the {!Job} queue. *)

type t = {
  corner_name : string;
  temp_c : float option;
  model_overrides : (string * (string * float) list) list;
      (** model name -> parameter overrides *)
}

val make :
  ?temp_c:float -> ?models:(string * (string * float) list) list ->
  string -> t

val typical : t
val fast : t
(** Higher transconductance, lower capacitance, -40 C. *)

val slow : t
(** Lower transconductance, higher capacitance, +125 C. *)

val apply : t -> Circuit.Netlist.t -> Circuit.Netlist.t
(** Raises [Invalid_argument] when an override names a model the circuit
    does not carry. *)

val across :
  ?parallel:[ `Auto | `Seq | `Par ] -> t list -> Circuit.Netlist.t ->
  (Circuit.Netlist.t -> 'a) -> (string * ('a, exn) Result.t) list
(** Run an analysis at every corner. *)

val temp_sweep :
  ?parallel:[ `Auto | `Seq | `Par ] -> temps:float list -> Circuit.Netlist.t ->
  (Circuit.Netlist.t -> 'a) -> (float * ('a, exn) Result.t) list
