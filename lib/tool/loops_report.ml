(* Rendering of the static signal-flow report: the text `acstab loops`
   prints (and the @staticcheck goldens byte-compare), the
   [acstab-loops/1] JSON document, and the manifest section. Every
   collection in the underlying report is deterministically ordered, so
   both renderings are byte-stable for a given deck. *)

let schema_version = "acstab-loops/1"

let section (r : Staticanalysis.Report.t) =
  { Manifest.loop_list =
      List.map
        (fun (l : Staticanalysis.Report.loop) ->
          { Manifest.loop_id = l.id;
            loop_kind = Staticanalysis.Report.kind_string l.kind;
            loop_gain_order = l.gain_order;
            loop_nets = l.nets })
        r.loops;
    cover = r.cover;
    loops_truncated = r.truncated }

let names = function [] -> "none" | l -> String.concat " " l

let render ~deck (r : Staticanalysis.Report.t) =
  let buf = Buffer.create 1024 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let g = r.graph in
  pr "static signal-flow report: %s\n" deck;
  pr "nets: %d  edges: %d  pinned: %s\n" (Staticanalysis.Sfg.size g)
    (List.length (Staticanalysis.Sfg.edges g))
    (names (Staticanalysis.Sfg.pinned_nets g));
  pr "loops: %d%s\n" (List.length r.loops)
    (if r.truncated then "  (truncated: enumeration bounds hit)" else "");
  List.iteri
    (fun i (l : Staticanalysis.Report.loop) ->
      pr "  [%d] %s gain=%d %s\n" (i + 1)
        (Staticanalysis.Report.kind_string l.kind)
        l.gain_order l.id;
      pr "      devices: %s\n" (names l.devices);
      pr "      cover net: %s\n"
        (match Staticanalysis.Report.covers r l with
         | Some n -> n
         | None -> "unobservable"))
    r.loops;
  pr "probe cover: %s\n" (names r.cover);
  (match r.undrivable with
   | None -> pr "undrivable: n/a (no independent sources)\n"
   | Some nets -> pr "undrivable: %s\n" (names nets));
  pr "open gain: %s\n" (names r.open_gain);
  Buffer.contents buf

let json ~deck ~sha256 (r : Staticanalysis.Report.t) =
  let g = r.graph in
  let strs l = Json.Arr (List.map (fun s -> Json.Str s) l) in
  let loop (l : Staticanalysis.Report.loop) =
    Json.Obj
      [ ("id", Json.Str l.id);
        ("kind", Json.Str (Staticanalysis.Report.kind_string l.kind));
        ("gain_order", Json.Num (float_of_int l.gain_order));
        ("nets", strs l.nets);
        ("devices", strs l.devices);
        ("probeable", strs l.probeable);
        ("cover_net",
         match Staticanalysis.Report.covers r l with
         | Some n -> Json.Str n
         | None -> Json.Null) ]
  in
  Json.Obj
    [ ("schema", Json.Str schema_version);
      ("deck",
       Json.Obj [ ("file", Json.Str deck); ("sha256", Json.Str sha256) ]);
      ("nets", Json.Num (float_of_int (Staticanalysis.Sfg.size g)));
      ("edges",
       Json.Num (float_of_int (List.length (Staticanalysis.Sfg.edges g))));
      ("pinned", strs (Staticanalysis.Sfg.pinned_nets g));
      ("truncated", Json.Bool r.truncated);
      ("loops", Json.Arr (List.map loop r.loops));
      ("cover", strs r.cover);
      ("uncovered",
       strs (List.map (fun (l : Staticanalysis.Report.loop) -> l.id) r.uncovered));
      ("undrivable",
       match r.undrivable with None -> Json.Null | Some nets -> strs nets);
      ("open_gain", strs r.open_gain) ]
