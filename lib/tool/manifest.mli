(** Run manifests: reproducible JSON records of an analysis run.

    A manifest (schema ["acstab-manifest/1"]) captures the deck's
    SHA-256 fingerprint and size stats, the options in force, the lint
    findings, every probed node's headline numbers ([f_n], [zeta],
    phase margin, peak depth) with its numerical-health grade, the
    {!Obs.Counter} snapshot, the {!Obs.Histogram} summaries and
    wall/CPU time. [--manifest FILE] writes one on every analysis
    command; [acstab diff] compares two (see the manual, section 8). *)

val schema_version : string

type node_entry = {
  node : string;
  f_n : float option;           (** dominant-peak natural frequency, Hz *)
  zeta : float option;
  phase_margin_deg : float option;
  peak : float option;          (** stability-peak value (signed) *)
  quality : string;             (** "good" | "degraded" | "suspect" *)
}

type loop_record = {
  loop_id : string;         (** member nets joined with [">"] *)
  loop_kind : string;       (** ["global"] or ["local:DEV"] *)
  loop_gain_order : int;
  loop_nets : string list;
}

type loops_section = {
  loop_list : loop_record list;
  cover : string list;      (** greedy probe cover, selection order *)
  loops_truncated : bool;   (** a cycle-enumeration bound was hit *)
}

type t = {
  deck_file : string;
  deck_sha256 : string;
  stats : (string * int) list;       (** netlist size: nodes, devices *)
  options : (string * string) list;
  lint : Json.t;                     (** findings as emitted by the CLI *)
  nodes : node_entry list;
  loops : loops_section option;
      (** static signal-flow summary; [None] in manifests written before
          static analysis existed (the JSON field is simply absent) *)
  counters : (string * int) list;    (** non-zero counters at build time *)
  histograms : (string * Obs.Histogram.summary) list;
  wall_s : float;
  cpu_s : float;
}

val entry_of_result : Stability.Analysis.node_result -> node_entry

val build :
  deck_file:string -> deck_text:string -> ?circ:Circuit.Netlist.t ->
  ?options:(string * string) list -> ?lint_json:string ->
  ?loops:loops_section ->
  results:Stability.Analysis.node_result list -> wall_s:float ->
  cpu_s:float -> unit -> t
(** Assemble a manifest from run results, snapshotting the observability
    registries. [lint_json] is the lint library's JSON report (the tool
    layer embeds it verbatim rather than linking the linter). *)

val json : t -> Json.t
(** The manifest as a JSON value — what the serve daemon embeds in
    analyze responses. [to_json] is its string rendering. *)

val to_json : t -> string
val write : string -> t -> unit

val of_json_string : string -> (t, string) result
(** Parse and validate; errors name the offending field. Rejects
    unknown schema versions and quality grades. *)

val load : string -> (t, string) result

(** {1 Diffing} *)

type diff_options = {
  rtol_fn : float;    (** relative tolerance on natural frequency (1e-3) *)
  rtol_zeta : float;  (** relative tolerance on damping (1e-3) *)
}

val default_diff_options : diff_options

type change =
  | Added_peak of string     (** node gained a dominant peak in B *)
  | Removed_peak of string   (** node lost its dominant peak in B *)
  | Shifted of { node : string; field : string; a : float; b : float }
  | Downgraded of { node : string; from_ : string; to_ : string }
  | Loop_removed of string   (** loop id in A's loops section, absent in B *)
  | Loop_added of string     (** loop id in B's loops section, absent in A *)

val diff : ?options:diff_options -> t -> t -> change list
(** Changes of [b] relative to the reference [a]. Peak numbers within
    tolerance and quality {e upgrades} are not changes; an empty list
    means the runs agree ([acstab diff] exit 0, otherwise 5). Structural
    loop records are compared only when {e both} manifests carry a loops
    section — references written before static analysis existed gate
    nothing. *)

val pp_change : Format.formatter -> change -> unit

val change_json : change -> Json.t

val diff_json : a:t -> b:t -> change list -> Json.t
(** Machine-readable diff verdict (schema ["acstab-diff/1"]): the
    compared decks, an [agree] flag and the change list — the payload
    of [acstab diff --json] and of the serve daemon's diff responses. *)
