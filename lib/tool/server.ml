(* `acstab serve` — the persistent analysis service.

   A Unix-domain-socket daemon speaking newline-delimited JSON: each
   request is one line, each response one line, so any language with a
   socket and a JSON parser is a client (`nc -U` included). Requests
   run through the same {!Pipeline} as the CLI subcommands and share
   one fingerprint-keyed {!Cache}, so a designer's edit loop — analyze,
   tweak the deck, analyze again — pays for parsing, DC solve and
   symbolic analysis only when the deck or the options actually
   changed; an unchanged request is answered from the cache without
   touching the engine.

   Concurrency: the accept/read side is a single [select] loop (no
   thread juggling, deterministic shutdown), and each batch of complete
   request lines gathered in one wakeup is dispatched over
   {!Parallel.Pool.map_list}, so simultaneous requests from several
   clients analyze in parallel. Nested parallelism is safe: pool
   submissions made from inside a pool task run inline.

   The protocol never kills the daemon: a malformed or failing request
   produces an ["ok": false] response carrying the same exit-code
   contract the CLI uses (2 bad input, 3 analysis failure, 4 lint
   block), and the loop keeps serving. *)

let log_src = Logs.Src.create "tool.server" ~doc:"acstab serve daemon"

module Log = (val Logs.src_log log_src : Logs.LOG)

let n_connections = Obs.Counter.make "serve.connections"
let n_requests = Obs.Counter.make "serve.requests"
let n_batches = Obs.Counter.make "serve.batches"
let batch_max = Obs.Counter.make "serve.batch_max"

(* ---- request handling (protocol layer over Pipeline) ---- *)

let protocol_version = "acstab-serve/1"

let respond_fields ?id fields =
  let id_field = match id with None -> [] | Some v -> [ ("id", v) ] in
  Json.Obj (id_field @ fields)

let findings_strings ~file findings =
  List.map
    (fun f -> Format.asprintf "%a" (Lint.Rule.pp_finding ~file) f)
    findings

let failure_response ?id ~file failure =
  let findings =
    match failure with
    | Pipeline.Lint_blocked { findings } -> findings_strings ~file findings
    | Pipeline.Analysis_failed { likely_cause; _ } ->
      findings_strings ~file likely_cause
    | _ -> []
  in
  respond_fields ?id
    [ ("ok", Json.Bool false);
      ("error",
       Json.Obj
         [ ("code", Json.Num (float_of_int (Pipeline.exit_code failure)));
           ("message", Json.Str (Pipeline.failure_message failure));
           ("findings", Json.Arr (List.map (fun s -> Json.Str s) findings))
         ]) ]

let error_response ?id ~code message =
  respond_fields ?id
    [ ("ok", Json.Bool false);
      ("error",
       Json.Obj
         [ ("code", Json.Num (float_of_int code));
           ("message", Json.Str message); ("findings", Json.Arr []) ]) ]

let deck_of_request v =
  match (Json.mem_str "deck" v, Json.mem_str "deck_text" v) with
  | Some path, _ -> Ok (Pipeline.Deck_file path, path)
  | None, Some text ->
    let name = Option.value ~default:"<inline>" (Json.mem_str "name" v) in
    Ok (Pipeline.Deck_text { name; text }, name)
  | None, None -> Error "request needs \"deck\" (a path) or \"deck_text\""

let policy_of_request v =
  { Pipeline.no_lint =
      Option.value ~default:false (Json.mem_bool "no_lint" v);
    strict = Option.value ~default:false (Json.mem_bool "strict" v) }

let options_of_request v =
  let fmin = Option.value ~default:1e3 (Json.mem_float "fmin" v) in
  let fmax = Option.value ~default:1e9 (Json.mem_float "fmax" v) in
  let ppd = Option.value ~default:30 (Json.mem_int "ppd" v) in
  (* "backend" mirrors the CLI's --backend enum; an unknown name is a
     protocol error, not a silent fallback to auto. *)
  match Option.value ~default:"auto" (Json.mem_str "backend" v) with
  | "auto" | "dense" | "sparse" | "plan" | "kernel" as b ->
    let backend =
      match b with
      | "dense" -> `Dense
      | "sparse" -> `Sparse
      | "plan" -> `Plan
      | "kernel" -> `Kernel
      | _ -> `Auto
    in
    Ok
      { Stability.Analysis.default_options with
        sweep = Numerics.Sweep.decade fmin fmax ppd; backend }
  | b -> Error (Printf.sprintf "unknown backend %S" b)

let analysis_of_request v =
  match Option.value ~default:"all-nodes" (Json.mem_str "mode" v) with
  | "single-node" ->
    (match Json.mem_str "node" v with
     | Some n -> Ok (Pipeline.Single_node n)
     | None -> Error "single-node requests need \"node\"")
  | "all-nodes" ->
    (* "nodes": "auto" (a string, not a list) selects the static
       report's probe cover, mirroring the CLI's --nodes auto. *)
    if Json.mem_str "nodes" v = Some "auto" then Ok Pipeline.Auto_nodes
    else
      let nodes =
        Option.bind (Json.member "nodes" v) Json.to_list
        |> Option.map (List.filter_map Json.to_str)
      in
      Ok (Pipeline.All_nodes nodes)
  | m -> Error (Printf.sprintf "unknown mode %S" m)

let handle_analyze cache ?id v =
  match deck_of_request v with
  | Error m -> error_response ?id ~code:2 m
  | Ok (deck, file) ->
    (match analysis_of_request v with
     | Error m -> error_response ?id ~code:2 m
     | Ok analysis ->
       (match options_of_request v with
        | Error m -> error_response ?id ~code:2 m
        | Ok options ->
       let req =
         Pipeline.request ~options ~policy:(policy_of_request v) deck
           analysis
       in
       (match Pipeline.run ~cache req with
        | Error failure -> failure_response ?id ~file failure
        | Ok o ->
          let mjson = Manifest.json o.Pipeline.manifest in
          respond_fields ?id
            [ ("ok", Json.Bool true);
              ("cache",
               Json.Str (match o.Pipeline.cache with
                         | `Hit -> "hit" | `Miss -> "miss"));
              ("deck_sha256", Json.Str o.Pipeline.loaded.Pipeline.sha256);
              ("wall_s", Json.Num o.Pipeline.wall_s);
              ("nodes",
               Option.value ~default:(Json.Arr [])
                 (Json.member "nodes" mjson));
              ("manifest", mjson) ])))

let handle_lint cache ?id v =
  ignore cache;
  match deck_of_request v with
  | Error m -> error_response ?id ~code:2 m
  | Ok (deck, file) ->
    (* Lint only: no gate, the findings themselves are the answer. *)
    (match Pipeline.load ~policy:{ Pipeline.no_lint = true; strict = false }
             deck with
     | Error failure -> failure_response ?id ~file failure
     | Ok loaded ->
       let findings = Lint.Runner.run loaded.Pipeline.circ in
       let report =
         match Json.of_string (Lint.Json.report ~file findings) with
         | Ok j -> j
         | Error _ -> Json.Null
       in
       respond_fields ?id
         [ ("ok", Json.Bool true);
           ("deck_sha256", Json.Str loaded.Pipeline.sha256);
           ("report", report) ])

let handle_loops cache ?id v =
  match deck_of_request v with
  | Error m -> error_response ?id ~code:2 m
  | Ok (deck, file) ->
    (* Like lint: the report is itself a static diagnostic, no gate. *)
    (match
       Pipeline.load ~policy:{ Pipeline.no_lint = true; strict = false } deck
     with
     | Error failure -> failure_response ?id ~file failure
     | Ok loaded ->
       let d = Staticanalysis.Report.default_bounds in
       let bounds =
         { Staticanalysis.Cycles.max_len =
             Option.value ~default:d.Staticanalysis.Cycles.max_len
               (Json.mem_int "max_len" v);
           max_cycles =
             Option.value ~default:d.Staticanalysis.Cycles.max_cycles
               (Json.mem_int "max_cycles" v) }
       in
       let report, hit = Pipeline.static_report ~cache ~bounds loaded in
       respond_fields ?id
         [ ("ok", Json.Bool true);
           ("cache", Json.Str (if hit then "hit" else "miss"));
           ("deck_sha256", Json.Str loaded.Pipeline.sha256);
           ("report",
            Loops_report.json ~deck:file ~sha256:loaded.Pipeline.sha256
              report) ])

let handle_diff ?id v =
  match (Json.mem_str "a" v, Json.mem_str "b" v) with
  | Some a_path, Some b_path ->
    let load path k =
      match Manifest.load path with
      | Ok m -> k m
      | Error e ->
        error_response ?id ~code:2 (Printf.sprintf "%s: %s" path e)
    in
    load a_path @@ fun a ->
    load b_path @@ fun b ->
    let options =
      { Manifest.rtol_fn =
          Option.value ~default:Manifest.default_diff_options.Manifest.rtol_fn
            (Json.mem_float "rtol_fn" v);
        rtol_zeta =
          Option.value
            ~default:Manifest.default_diff_options.Manifest.rtol_zeta
            (Json.mem_float "rtol_zeta" v) }
    in
    let changes = Manifest.diff ~options a b in
    respond_fields ?id
      (("ok", Json.Bool true)
       ::
       (match Manifest.diff_json ~a ~b changes with
        | Json.Obj fields -> fields
        | j -> [ ("diff", j) ]))
  | _ -> error_response ?id ~code:2 "diff requests need \"a\" and \"b\" paths"

let handle_counters ?id () =
  respond_fields ?id
    [ ("ok", Json.Bool true);
      ("counters",
       Json.Obj
         (List.map
            (fun (k, n) -> (k, Json.Num (float_of_int n)))
            (Obs.Counter.snapshot ()))) ]

let handle_stats cache ?id () =
  respond_fields ?id
    [ ("ok", Json.Bool true);
      ("protocol", Json.Str protocol_version);
      ("jobs", Json.Num (float_of_int (Parallel.Pool.jobs ())));
      ("cache",
       Json.Obj
         (List.map
            (fun (s : Cache.family_stats) ->
              (s.family,
               Json.Obj
                 [ ("entries", Json.Num (float_of_int s.entries));
                   ("capacity", Json.Num (float_of_int s.capacity));
                   ("hits", Json.Num (float_of_int s.hits));
                   ("misses", Json.Num (float_of_int s.misses));
                   ("evictions", Json.Num (float_of_int s.evictions)) ]))
            (Cache.stats cache))) ]

(* [`Stop] tells the serve loop to finish writing and exit. *)
let handle cache line =
  Obs.Counter.incr n_requests;
  match Json.of_string line with
  | Error e ->
    (error_response ~code:2 (Printf.sprintf "bad request JSON: %s" e), `Go)
  | Ok v ->
    let id = Json.member "id" v in
    (match Json.mem_str "cmd" v with
     | Some "analyze" -> (handle_analyze cache ?id v, `Go)
     | Some "lint" -> (handle_lint cache ?id v, `Go)
     | Some "loops" -> (handle_loops cache ?id v, `Go)
     | Some "diff" -> (handle_diff ?id v, `Go)
     | Some "counters" -> (handle_counters ?id (), `Go)
     | Some "stats" -> (handle_stats cache ?id (), `Go)
     | Some "ping" ->
       (respond_fields ?id
          [ ("ok", Json.Bool true); ("pong", Json.Bool true);
            ("protocol", Json.Str protocol_version) ],
        `Go)
     | Some "shutdown" ->
       (respond_fields ?id [ ("ok", Json.Bool true); ("bye", Json.Bool true) ],
        `Stop)
     | Some c ->
       (error_response ?id ~code:2 (Printf.sprintf "unknown cmd %S" c), `Go)
     | None -> (error_response ?id ~code:2 "request needs \"cmd\"", `Go))

(* ---- the select loop ---- *)

type conn = {
  fd : Unix.file_descr;
  pending : Buffer.t;  (* bytes read, not yet terminated by '\n' *)
}

let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let rec go off =
    if off < n then
      match Unix.write fd b off (n - off) with
      | written -> go (off + written)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

(* Split [buf] into complete lines plus the unterminated remainder. *)
let complete_lines buf =
  let s = Buffer.contents buf in
  match String.rindex_opt s '\n' with
  | None -> []
  | Some last ->
    Buffer.clear buf;
    Buffer.add_string buf
      (String.sub s (last + 1) (String.length s - last - 1));
    String.split_on_char '\n' (String.sub s 0 last)
    |> List.filter (fun l -> String.trim l <> "")

exception Stop_serving

(* A socket file already existing at the path is either a live daemon
   (stealing its path would silently split clients between two caches)
   or the remains of one that died without [finally]. A probe connect
   tells them apart: a live daemon accepts, a stale file refuses. *)
let claim_socket socket =
  match Unix.lstat socket with
  | { Unix.st_kind = Unix.S_SOCK; _ } -> (
    let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let close_probe () =
      try Unix.close probe with Unix.Unix_error _ -> ()
    in
    match Unix.connect probe (Unix.ADDR_UNIX socket) with
    | () ->
      close_probe ();
      failwith
        (Printf.sprintf
           "a daemon is already serving on %s; shut it down first or \
            pick another --socket path"
           socket)
    | exception Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _) ->
      close_probe ();
      Log.app (fun f -> f "removing stale socket %s" socket);
      (try Unix.unlink socket with
       | Unix.Unix_error (Unix.ENOENT, _, _) -> ())
    | exception e -> close_probe (); raise e)
  | _ -> failwith (Printf.sprintf "%s exists and is not a socket" socket)
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let serve ?(capacity = Cache.default_capacity) ~socket () =
  claim_socket socket;
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listen_fd (Unix.ADDR_UNIX socket);
  Unix.listen listen_fd 16;
  let cache = Cache.create ~capacity () in
  Log.app (fun f -> f "listening on %s (protocol %s)" socket protocol_version);
  let conns = ref [] in
  let close_conn c =
    conns := List.filter (fun c' -> c'.fd != c.fd) !conns;
    try Unix.close c.fd with Unix.Unix_error _ -> ()
  in
  let read_chunk = Bytes.create 65536 in
  let finally () =
    List.iter (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ())
      !conns;
    (try Unix.close listen_fd with Unix.Unix_error _ -> ());
    (try Unix.unlink socket with Unix.Unix_error _ -> ())
  in
  (try
     while true do
       let fds = listen_fd :: List.map (fun c -> c.fd) !conns in
       let readable, _, _ =
         match Unix.select fds [] [] (-1.) with
         | r -> r
         | exception Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
       in
       if List.memq listen_fd readable then begin
         match Unix.accept listen_fd with
         | fd, _ ->
           Obs.Counter.incr n_connections;
           conns := { fd; pending = Buffer.create 256 } :: !conns
         | exception Unix.Unix_error _ -> ()
       end;
       (* Drain every readable connection, then dispatch the gathered
          batch in parallel: requests that arrive together analyze
          together. *)
       let batch = ref [] in
       List.iter
         (fun c ->
           if List.memq c.fd readable then begin
             match Unix.read c.fd read_chunk 0 (Bytes.length read_chunk) with
             | 0 -> close_conn c
             | n ->
               Buffer.add_subbytes c.pending read_chunk 0 n;
               List.iter
                 (fun line -> batch := (c, line) :: !batch)
                 (complete_lines c.pending)
             | exception Unix.Unix_error (Unix.ECONNRESET, _, _) ->
               close_conn c
             | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
           end)
         !conns;
       let batch = List.rev !batch in
       if batch <> [] then begin
         Obs.Counter.incr n_batches;
         Obs.Counter.record_max batch_max (List.length batch);
         let t0 = Obs.Span.enter () in
         let responses =
           Parallel.Pool.map_list
             (fun (c, line) ->
               let response, verdict = handle cache line in
               (c, response, verdict))
             batch
         in
         Obs.Span.leave "serve.batch"
           ~args:[ ("requests", List.length batch) ] t0;
         let stop = ref false in
         List.iter
           (fun (c, response, verdict) ->
             (try write_all c.fd (Json.to_string response ^ "\n")
              with Unix.Unix_error _ -> close_conn c);
             if verdict = `Stop then stop := true)
           responses;
         if !stop then raise Stop_serving
       end
     done
   with
   | Stop_serving -> finally ()
   | e -> finally (); raise e);
  Log.app (fun f -> f "shut down cleanly")

(* ---- a minimal client, for tests and scripting ---- *)

module Client = struct
  type t = { fd : Unix.file_descr; ic : in_channel }

  let connect path =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.connect fd (Unix.ADDR_UNIX path);
    { fd; ic = Unix.in_channel_of_descr fd }

  let send t req = write_all t.fd (Json.to_string req ^ "\n")

  let recv t =
    match input_line t.ic with
    | line ->
      (match Json.of_string line with
       | Ok v -> v
       | Error e -> failwith (Printf.sprintf "bad response JSON: %s" e))
    | exception End_of_file -> failwith "server closed the connection"

  let request t req = send t req; recv t

  let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()
end
