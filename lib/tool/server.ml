(* `acstab serve` — the persistent analysis service.

   A Unix-domain-socket daemon speaking newline-delimited JSON: each
   request is one line, each response one line, so any language with a
   socket and a JSON parser is a client (`nc -U` included). Requests
   run through the same {!Pipeline} as the CLI subcommands and share
   one fingerprint-keyed {!Cache}, so a designer's edit loop — analyze,
   tweak the deck, analyze again — pays for parsing, DC solve and
   symbolic analysis only when the deck or the options actually
   changed; an unchanged request is answered from the cache without
   touching the engine.

   Concurrency: the accept/read side is a single [select] loop (no
   thread juggling, deterministic shutdown), and each batch of complete
   request lines gathered in one wakeup is dispatched over
   {!Parallel.Pool.map_list}, so simultaneous requests from several
   clients analyze in parallel. Nested parallelism is safe: pool
   submissions made from inside a pool task run inline.

   The protocol never kills the daemon: a malformed or failing request
   produces an ["ok": false] response carrying the same exit-code
   contract the CLI uses (2 bad input, 3 analysis failure, 4 lint
   block), and the loop keeps serving.

   Observability: every request gets a daemon-unique request id echoed
   in its response, a server.request span, a line in the structured
   event log (outcome, latency, cache verdict) and a sample in the
   server.request_ms histogram; requests crossing --slow-ms dump
   their span tree as a server.slow_request event. The `metrics`
   command exposes the counter/gauge/histogram registries as
   Prometheus text (gauges refreshed by a background tick), and
   `trace` starts/stops an on-demand Chrome-trace capture of the live
   daemon. *)

let log_src = Logs.Src.create "tool.server" ~doc:"acstab serve daemon"

module Log = (val Logs.src_log log_src : Logs.LOG)

let n_connections = Obs.Counter.make "server.connections"
let n_requests = Obs.Counter.make "server.requests"
let n_errors = Obs.Counter.make "server.errors"
let n_batches = Obs.Counter.make "server.batches"
let batch_max = Obs.Counter.make "server.batch_max"
let inflight_hw = Obs.Counter.make "server.inflight_high_water"
let request_ms = Obs.Histogram.make "server.request_ms"

(* Requests currently being handled (gauge state; the counter above
   keeps the high-water mark so one-shot snapshots see it too). *)
let inflight = Atomic.make 0

let inflight_gauge = Obs.Gauge.make "server.inflight"
let pool_busy_gauge = Obs.Gauge.make "pool.busy_workers"
let pool_queue_gauge = Obs.Gauge.make "pool.queue_depth"

(* Request ids are daemon-unique by construction (one atomic sequence)
   and echoed in every response and event-log line, so a client
   report, the NDJSON log and a captured trace can be joined on one
   key. *)
let request_seq = Atomic.make 0

let next_request_id () =
  Printf.sprintf "r%06d" (Atomic.fetch_and_add request_seq 1 + 1)

(* Daemon-side state threaded through request handling. [capturing]
   guards the on-demand trace capture (toggled over the protocol from
   pool domains, hence the mutex). *)
type state = {
  cache : Cache.t;
  slow_ms : float option;
  trace_lock : Mutex.t;
  mutable capturing : bool;
}

(* ---- request handling (protocol layer over Pipeline) ---- *)

let protocol_version = "acstab-serve/1"

let respond_fields ?id fields =
  let id_field = match id with None -> [] | Some v -> [ ("id", v) ] in
  Json.Obj (id_field @ fields)

let findings_strings ~file findings =
  List.map
    (fun f -> Format.asprintf "%a" (Lint.Rule.pp_finding ~file) f)
    findings

let failure_response ?id ~file failure =
  let findings =
    match failure with
    | Pipeline.Lint_blocked { findings } -> findings_strings ~file findings
    | Pipeline.Analysis_failed { likely_cause; _ } ->
      findings_strings ~file likely_cause
    | _ -> []
  in
  respond_fields ?id
    [ ("ok", Json.Bool false);
      ("error",
       Json.Obj
         [ ("code", Json.Num (float_of_int (Pipeline.exit_code failure)));
           ("message", Json.Str (Pipeline.failure_message failure));
           ("findings", Json.Arr (List.map (fun s -> Json.Str s) findings))
         ]) ]

let error_response ?id ~code message =
  respond_fields ?id
    [ ("ok", Json.Bool false);
      ("error",
       Json.Obj
         [ ("code", Json.Num (float_of_int code));
           ("message", Json.Str message); ("findings", Json.Arr []) ]) ]

let deck_of_request v =
  match (Json.mem_str "deck" v, Json.mem_str "deck_text" v) with
  | Some path, _ -> Ok (Pipeline.Deck_file path, path)
  | None, Some text ->
    let name = Option.value ~default:"<inline>" (Json.mem_str "name" v) in
    Ok (Pipeline.Deck_text { name; text }, name)
  | None, None -> Error "request needs \"deck\" (a path) or \"deck_text\""

let policy_of_request v =
  { Pipeline.no_lint =
      Option.value ~default:false (Json.mem_bool "no_lint" v);
    strict = Option.value ~default:false (Json.mem_bool "strict" v) }

let options_of_request v =
  let fmin = Option.value ~default:1e3 (Json.mem_float "fmin" v) in
  let fmax = Option.value ~default:1e9 (Json.mem_float "fmax" v) in
  let ppd = Option.value ~default:30 (Json.mem_int "ppd" v) in
  (* "backend" mirrors the CLI's --backend enum; an unknown name is a
     protocol error, not a silent fallback to auto. *)
  match Option.value ~default:"auto" (Json.mem_str "backend" v) with
  | "auto" | "dense" | "sparse" | "plan" | "kernel" as b ->
    let backend =
      match b with
      | "dense" -> `Dense
      | "sparse" -> `Sparse
      | "plan" -> `Plan
      | "kernel" -> `Kernel
      | _ -> `Auto
    in
    Ok
      { Stability.Analysis.default_options with
        sweep = Numerics.Sweep.decade fmin fmax ppd; backend }
  | b -> Error (Printf.sprintf "unknown backend %S" b)

let analysis_of_request v =
  match Option.value ~default:"all-nodes" (Json.mem_str "mode" v) with
  | "single-node" ->
    (match Json.mem_str "node" v with
     | Some n -> Ok (Pipeline.Single_node n)
     | None -> Error "single-node requests need \"node\"")
  | "all-nodes" ->
    (* "nodes": "auto" (a string, not a list) selects the static
       report's probe cover, mirroring the CLI's --nodes auto. *)
    if Json.mem_str "nodes" v = Some "auto" then Ok Pipeline.Auto_nodes
    else
      let nodes =
        Option.bind (Json.member "nodes" v) Json.to_list
        |> Option.map (List.filter_map Json.to_str)
      in
      Ok (Pipeline.All_nodes nodes)
  | m -> Error (Printf.sprintf "unknown mode %S" m)

let handle_analyze cache ?id v =
  match deck_of_request v with
  | Error m -> error_response ?id ~code:2 m
  | Ok (deck, file) ->
    (match analysis_of_request v with
     | Error m -> error_response ?id ~code:2 m
     | Ok analysis ->
       (match options_of_request v with
        | Error m -> error_response ?id ~code:2 m
        | Ok options ->
       let req =
         Pipeline.request ~options ~policy:(policy_of_request v) deck
           analysis
       in
       (match Pipeline.run ~cache req with
        | Error failure -> failure_response ?id ~file failure
        | Ok o ->
          let mjson = Manifest.json o.Pipeline.manifest in
          respond_fields ?id
            [ ("ok", Json.Bool true);
              ("cache",
               Json.Str (match o.Pipeline.cache with
                         | `Hit -> "hit" | `Miss -> "miss"));
              ("deck_sha256", Json.Str o.Pipeline.loaded.Pipeline.sha256);
              ("wall_s", Json.Num o.Pipeline.wall_s);
              ("nodes",
               Option.value ~default:(Json.Arr [])
                 (Json.member "nodes" mjson));
              ("manifest", mjson) ])))

let handle_lint cache ?id v =
  ignore cache;
  match deck_of_request v with
  | Error m -> error_response ?id ~code:2 m
  | Ok (deck, file) ->
    (* Lint only: no gate, the findings themselves are the answer. *)
    (match Pipeline.load ~policy:{ Pipeline.no_lint = true; strict = false }
             deck with
     | Error failure -> failure_response ?id ~file failure
     | Ok loaded ->
       let findings = Lint.Runner.run loaded.Pipeline.circ in
       let report =
         match Json.of_string (Lint.Json.report ~file findings) with
         | Ok j -> j
         | Error _ -> Json.Null
       in
       respond_fields ?id
         [ ("ok", Json.Bool true);
           ("deck_sha256", Json.Str loaded.Pipeline.sha256);
           ("report", report) ])

let handle_loops cache ?id v =
  match deck_of_request v with
  | Error m -> error_response ?id ~code:2 m
  | Ok (deck, file) ->
    (* Like lint: the report is itself a static diagnostic, no gate. *)
    (match
       Pipeline.load ~policy:{ Pipeline.no_lint = true; strict = false } deck
     with
     | Error failure -> failure_response ?id ~file failure
     | Ok loaded ->
       let d = Staticanalysis.Report.default_bounds in
       let bounds =
         { Staticanalysis.Cycles.max_len =
             Option.value ~default:d.Staticanalysis.Cycles.max_len
               (Json.mem_int "max_len" v);
           max_cycles =
             Option.value ~default:d.Staticanalysis.Cycles.max_cycles
               (Json.mem_int "max_cycles" v) }
       in
       let report, hit = Pipeline.static_report ~cache ~bounds loaded in
       respond_fields ?id
         [ ("ok", Json.Bool true);
           ("cache", Json.Str (if hit then "hit" else "miss"));
           ("deck_sha256", Json.Str loaded.Pipeline.sha256);
           ("report",
            Loops_report.json ~deck:file ~sha256:loaded.Pipeline.sha256
              report) ])

let handle_diff ?id v =
  match (Json.mem_str "a" v, Json.mem_str "b" v) with
  | Some a_path, Some b_path ->
    let load path k =
      match Manifest.load path with
      | Ok m -> k m
      | Error e ->
        error_response ?id ~code:2 (Printf.sprintf "%s: %s" path e)
    in
    load a_path @@ fun a ->
    load b_path @@ fun b ->
    let options =
      { Manifest.rtol_fn =
          Option.value ~default:Manifest.default_diff_options.Manifest.rtol_fn
            (Json.mem_float "rtol_fn" v);
        rtol_zeta =
          Option.value
            ~default:Manifest.default_diff_options.Manifest.rtol_zeta
            (Json.mem_float "rtol_zeta" v) }
    in
    let changes = Manifest.diff ~options a b in
    respond_fields ?id
      (("ok", Json.Bool true)
       ::
       (match Manifest.diff_json ~a ~b changes with
        | Json.Obj fields -> fields
        | j -> [ ("diff", j) ]))
  | _ -> error_response ?id ~code:2 "diff requests need \"a\" and \"b\" paths"

let handle_counters ?id () =
  respond_fields ?id
    [ ("ok", Json.Bool true);
      ("counters",
       Json.Obj
         (List.map
            (fun (k, n) -> (k, Json.Num (float_of_int n)))
            (Obs.Counter.snapshot ()))) ]

let handle_stats cache ?id () =
  respond_fields ?id
    [ ("ok", Json.Bool true);
      ("protocol", Json.Str protocol_version);
      ("jobs", Json.Num (float_of_int (Parallel.Pool.jobs ())));
      ("cache",
       Json.Obj
         (List.map
            (fun (s : Cache.family_stats) ->
              (s.family,
               Json.Obj
                 [ ("entries", Json.Num (float_of_int s.entries));
                   ("capacity", Json.Num (float_of_int s.capacity));
                   ("hits", Json.Num (float_of_int s.hits));
                   ("misses", Json.Num (float_of_int s.misses));
                   ("evictions", Json.Num (float_of_int s.evictions)) ]))
            (Cache.stats cache))) ]

(* Refresh the sampled gauges (cache occupancy, pool busy/queue depth,
   in-flight requests). Runs on the background tick and again inside
   a `metrics` request, so a one-shot scrape never reads stale zeros. *)
let sample_gauges state =
  Cache.sample_gauges state.cache;
  Obs.Gauge.set pool_busy_gauge
    (float_of_int (Parallel.Pool.busy_workers ()));
  Obs.Gauge.set pool_queue_gauge
    (float_of_int (Parallel.Pool.queued_chunks ()));
  Obs.Gauge.set inflight_gauge (float_of_int (Atomic.get inflight))

let handle_metrics state ?id () =
  sample_gauges state;
  respond_fields ?id
    [ ("ok", Json.Bool true);
      ("content_type", Json.Str "text/plain; version=0.0.4");
      ("metrics", Json.Str (Obs.Prometheus.render ())) ]

(* On-demand Chrome-trace capture of the live daemon: `start` clears
   the span buffers and switches recording on, `stop` drains them into
   the trace JSON and (unless --slow-ms needs spans for its own dumps)
   switches recording back off. No restart, no file on the daemon's
   disk — the trace rides back over the protocol. *)
let handle_trace state ?id v =
  let locked f =
    Mutex.lock state.trace_lock;
    let r = f () in
    Mutex.unlock state.trace_lock;
    r
  in
  match Option.value ~default:"status" (Json.mem_str "action" v) with
  | "start" ->
    locked (fun () ->
        if state.capturing then
          error_response ?id ~code:2 "trace capture already running"
        else begin
          Obs.Span.clear ();
          Obs.Span.enable ();
          state.capturing <- true;
          respond_fields ?id
            [ ("ok", Json.Bool true); ("capturing", Json.Bool true) ]
        end)
  | "stop" ->
    locked (fun () ->
        if not state.capturing then
          error_response ?id ~code:2 "no trace capture running"
        else begin
          let events = Obs.Span.events () in
          if state.slow_ms = None then Obs.Span.disable ();
          Obs.Span.clear ();
          state.capturing <- false;
          respond_fields ?id
            [ ("ok", Json.Bool true); ("capturing", Json.Bool false);
              ("spans", Json.Num (float_of_int (List.length events)));
              ("trace", Json.Str (Obs.Trace.to_string_events events)) ]
        end)
  | "status" ->
    locked (fun () ->
        respond_fields ?id
          [ ("ok", Json.Bool true);
            ("capturing", Json.Bool state.capturing) ])
  | a ->
    error_response ?id ~code:2
      (Printf.sprintf "unknown trace action %S (start|stop|status)" a)

(* Indented one-line rendering of the spans this domain recorded
   inside [t0, t1] — the request's span tree, dumped into the event
   log when a request crosses --slow-ms. Depth comes from interval
   containment, which is exact for the single-domain case (a request
   body runs on one pool domain). *)
let render_request_spans ~tid ~t0 ~t1 events =
  let mine =
    List.filter
      (fun (e : Obs.Span.event) ->
        e.tid = tid && e.ts_ns >= t0 && e.ts_ns <= t1)
      events
  in
  let b = Buffer.create 128 in
  let stack = ref [] in
  List.iteri
    (fun i (e : Obs.Span.event) ->
      let fin = e.ts_ns + e.dur_ns in
      stack := List.filter (fun end_ns -> end_ns > e.ts_ns) !stack;
      if i > 0 then Buffer.add_string b "; ";
      Buffer.add_string b (String.make (List.length !stack) '.');
      Buffer.add_string b
        (Printf.sprintf "%s=%.3fms" e.name
           (float_of_int e.dur_ns /. 1e6));
      stack := fin :: !stack)
    mine;
  Buffer.contents b

let dispatch state ?id v =
  match Json.mem_str "cmd" v with
  | Some "analyze" -> (handle_analyze state.cache ?id v, `Go)
  | Some "lint" -> (handle_lint state.cache ?id v, `Go)
  | Some "loops" -> (handle_loops state.cache ?id v, `Go)
  | Some "diff" -> (handle_diff ?id v, `Go)
  | Some "counters" -> (handle_counters ?id (), `Go)
  | Some "stats" -> (handle_stats state.cache ?id (), `Go)
  | Some "metrics" -> (handle_metrics state ?id (), `Go)
  | Some "trace" -> (handle_trace state ?id v, `Go)
  | Some "ping" ->
    (respond_fields ?id
       [ ("ok", Json.Bool true); ("pong", Json.Bool true);
         ("protocol", Json.Str protocol_version) ],
     `Go)
  | Some "shutdown" ->
    (respond_fields ?id [ ("ok", Json.Bool true); ("bye", Json.Bool true) ],
     `Stop)
  | Some c ->
    (error_response ?id ~code:2 (Printf.sprintf "unknown cmd %S" c), `Go)
  | None -> (error_response ?id ~code:2 "request needs \"cmd\"", `Go)

(* Per-request instrumentation around [dispatch]: counters, the
   latency histogram, the request-id stitched into the response, one
   event-log line per request (outcome, latency, cache verdict), and
   the slow-request span dump. [`Stop] tells the serve loop to finish
   writing and exit. *)
let handle state line =
  Obs.Counter.incr n_requests;
  let rid = next_request_id () in
  let infl = 1 + Atomic.fetch_and_add inflight 1 in
  Obs.Counter.record_max inflight_hw infl;
  let t0 = Obs.Clock.now_ns () in
  let span = Obs.Span.enter () in
  let parsed = Json.of_string line in
  let response, verdict =
    match parsed with
    | Error e ->
      (* Malformed NDJSON (a half-written line, say) still gets a
         structured error carrying the client's "id" when one can be
         salvaged from the broken text — so a pipelining client can
         correlate the failure — and never kills the connection. *)
      let id = Json.salvage_member "id" line in
      (error_response ?id ~code:2 (Printf.sprintf "bad request JSON: %s" e),
       `Go)
    | Ok v -> dispatch state ?id:(Json.member "id" v) v
  in
  Obs.Span.leave "server.request" span;
  let t1 = Obs.Clock.now_ns () in
  ignore (Atomic.fetch_and_add inflight (-1));
  let ms = float_of_int (t1 - t0) /. 1e6 in
  Obs.Histogram.observe request_ms ms;
  let ok = Json.mem_bool "ok" response <> Some false in
  if not ok then Obs.Counter.incr n_errors;
  let response =
    match response with
    | Json.Obj fields -> Json.Obj (("request_id", Json.Str rid) :: fields)
    | other -> other
  in
  if Obs.Events.enabled () then begin
    let cmd =
      match parsed with
      | Ok v -> Option.value ~default:"?" (Json.mem_str "cmd" v)
      | Error _ -> "malformed"
    in
    let fields =
      [ ("request_id", Obs.Events.Str rid); ("cmd", Obs.Events.Str cmd);
        ("ok", Obs.Events.Bool ok); ("ms", Obs.Events.Float ms) ]
      @ (match Json.mem_str "cache" response with
         | Some verdict -> [ ("cache", Obs.Events.Str verdict) ]
         | None -> [])
      @ (match
           Option.bind (Json.member "error" response) (Json.mem_int "code")
         with
         | Some code -> [ ("code", Obs.Events.Int code) ]
         | None -> [])
    in
    Obs.Events.emit
      ~level:(if ok then Obs.Events.Info else Obs.Events.Warn)
      "server.request" fields
  end;
  (match state.slow_ms with
   | Some limit when ms >= limit ->
     let tid = (Domain.self () :> int) in
     Obs.Events.emit ~level:Obs.Events.Warn "server.slow_request"
       [ ("request_id", Obs.Events.Str rid);
         ("ms", Obs.Events.Float ms);
         ("limit_ms", Obs.Events.Float limit);
         ("spans",
          Obs.Events.Str
            (render_request_spans ~tid ~t0 ~t1 (Obs.Span.events ()))) ]
   | _ -> ());
  (response, verdict)

(* ---- the select loop ---- *)

type conn = {
  fd : Unix.file_descr;
  pending : Buffer.t;  (* bytes read, not yet terminated by '\n' *)
}

let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let rec go off =
    if off < n then
      match Unix.write fd b off (n - off) with
      | written -> go (off + written)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

(* Split [buf] into complete lines plus the unterminated remainder. *)
let complete_lines buf =
  let s = Buffer.contents buf in
  match String.rindex_opt s '\n' with
  | None -> []
  | Some last ->
    Buffer.clear buf;
    Buffer.add_string buf
      (String.sub s (last + 1) (String.length s - last - 1));
    String.split_on_char '\n' (String.sub s 0 last)
    |> List.filter (fun l -> String.trim l <> "")

exception Stop_serving

(* A socket file already existing at the path is either a live daemon
   (stealing its path would silently split clients between two caches)
   or the remains of one that died without [finally]. A probe connect
   tells them apart: a live daemon accepts, a stale file refuses. *)
let claim_socket socket =
  match Unix.lstat socket with
  | { Unix.st_kind = Unix.S_SOCK; _ } -> (
    let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let close_probe () =
      try Unix.close probe with Unix.Unix_error _ -> ()
    in
    match Unix.connect probe (Unix.ADDR_UNIX socket) with
    | () ->
      close_probe ();
      failwith
        (Printf.sprintf
           "a daemon is already serving on %s; shut it down first or \
            pick another --socket path"
           socket)
    | exception Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _) ->
      close_probe ();
      Log.app (fun f -> f "removing stale socket %s" socket);
      (try Unix.unlink socket with
       | Unix.Unix_error (Unix.ENOENT, _, _) -> ())
    | exception e -> close_probe (); raise e)
  | _ -> failwith (Printf.sprintf "%s exists and is not a socket" socket)
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let serve ?(capacity = Cache.default_capacity) ?log ?slow_ms
    ?(tick_s = 1.0) ~socket () =
  claim_socket socket;
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listen_fd (Unix.ADDR_UNIX socket);
  Unix.listen listen_fd 16;
  let cache = Cache.create ~capacity () in
  Option.iter Obs.Events.to_file log;
  let state =
    { cache; slow_ms; trace_lock = Mutex.create (); capturing = false }
  in
  (* Slow-request dumps need span recording on for every request; the
     loop clears the buffers after each batch (below) so memory stays
     bounded over a long-lived daemon. *)
  if slow_ms <> None then Obs.Span.enable ();
  Obs.Events.emit "server.start"
    [ ("socket", Obs.Events.Str socket);
      ("protocol", Obs.Events.Str protocol_version) ];
  Log.app (fun f -> f "listening on %s (protocol %s)" socket protocol_version);
  let conns = ref [] in
  let close_conn c =
    conns := List.filter (fun c' -> c'.fd != c.fd) !conns;
    try Unix.close c.fd with Unix.Unix_error _ -> ()
  in
  let read_chunk = Bytes.create 65536 in
  let finally () =
    List.iter (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ())
      !conns;
    (try Unix.close listen_fd with Unix.Unix_error _ -> ());
    (try Unix.unlink socket with Unix.Unix_error _ -> ());
    Obs.Events.emit "server.stop"
      [ ("socket", Obs.Events.Str socket);
        ("requests", Obs.Events.Int (Obs.Counter.value n_requests)) ]
  in
  (* Background gauge sampling: the select sleeps at most one tick, and
     the gauges refresh whenever a tick has elapsed — with or without
     traffic — so scrapes between requests still see live occupancy. *)
  let tick_ns = int_of_float (Float.max 0.01 tick_s *. 1e9) in
  let last_tick = ref (Obs.Clock.now_ns ()) in
  sample_gauges state;
  (try
     while true do
       let fds = listen_fd :: List.map (fun c -> c.fd) !conns in
       let readable, _, _ =
         match Unix.select fds [] [] (Float.max 0.01 tick_s) with
         | r -> r
         | exception Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
       in
       let now = Obs.Clock.now_ns () in
       if now - !last_tick >= tick_ns then begin
         last_tick := now;
         sample_gauges state
       end;
       if List.memq listen_fd readable then begin
         match Unix.accept listen_fd with
         | fd, _ ->
           Obs.Counter.incr n_connections;
           conns := { fd; pending = Buffer.create 256 } :: !conns
         | exception Unix.Unix_error _ -> ()
       end;
       (* Drain every readable connection, then dispatch the gathered
          batch in parallel: requests that arrive together analyze
          together. *)
       let batch = ref [] in
       List.iter
         (fun c ->
           if List.memq c.fd readable then begin
             match Unix.read c.fd read_chunk 0 (Bytes.length read_chunk) with
             | 0 -> close_conn c
             | n ->
               Buffer.add_subbytes c.pending read_chunk 0 n;
               List.iter
                 (fun line -> batch := (c, line) :: !batch)
                 (complete_lines c.pending)
             | exception Unix.Unix_error (Unix.ECONNRESET, _, _) ->
               close_conn c
             | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
           end)
         !conns;
       let batch = List.rev !batch in
       if batch <> [] then begin
         Obs.Counter.incr n_batches;
         Obs.Counter.record_max batch_max (List.length batch);
         let t0 = Obs.Span.enter () in
         let responses =
           Parallel.Pool.map_list
             (fun (c, line) ->
               let response, verdict = handle state line in
               (c, response, verdict))
             batch
         in
         Obs.Span.leave "server.batch"
           ~args:[ ("requests", List.length batch) ] t0;
         let stop = ref false in
         List.iter
           (fun (c, response, verdict) ->
             (try write_all c.fd (Json.to_string response ^ "\n")
              with Unix.Unix_error _ -> close_conn c);
             if verdict = `Stop then stop := true)
           responses;
         (* With --slow-ms on (and no client-driven capture running)
            spans exist only to feed the slow dumps, which have been
            taken by now — drop them so a busy daemon's buffers do not
            grow without bound. *)
         if slow_ms <> None then begin
           Mutex.lock state.trace_lock;
           let capturing = state.capturing in
           Mutex.unlock state.trace_lock;
           if not capturing then Obs.Span.clear ()
         end;
         if !stop then raise Stop_serving
       end
     done
   with
   | Stop_serving -> finally ()
   | e -> finally (); raise e);
  Log.app (fun f -> f "shut down cleanly")

(* ---- a minimal client, for tests and scripting ---- *)

module Client = struct
  type t = { fd : Unix.file_descr; ic : in_channel }

  let connect path =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.connect fd (Unix.ADDR_UNIX path);
    { fd; ic = Unix.in_channel_of_descr fd }

  let send t req = write_all t.fd (Json.to_string req ^ "\n")

  let recv t =
    match input_line t.ic with
    | line ->
      (match Json.of_string line with
       | Ok v -> v
       | Error e -> failwith (Printf.sprintf "bad response JSON: %s" e))
    | exception End_of_file -> failwith "server closed the connection"

  let request t req = send t req; recv t

  let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()
end
