(** The sampling and rendering behind [acstab top SOCKET]: a live
    dashboard over a running serve daemon.

    Entirely client-side — each refresh is two protocol requests
    ([stats] and [metrics]) against the live daemon, no restart and no
    daemon-side state. Rates come from differencing two samples. *)

type cache_row = {
  family : string;
  entries : int;
  capacity : int;
  hits : int;
  misses : int;
  evictions : int;
}

type latency = {
  p50_ms : float;
  p90_ms : float;
  p99_ms : float;
  max_ms : float;
  count : int;
}

type sample = {
  at : float;  (** [Unix.gettimeofday] at sampling, for rates *)
  protocol : string;
  jobs : int;
  requests : int;
  errors : int;
  connections : int;
  inflight : int;
  inflight_high_water : int;
  latency : latency;
  cache : cache_row list;
  pool_busy : int;
  pool_queue : int;
}

val schema : string
(** ["acstab-top/1"], carried by {!to_json} output. *)

val sample : Server.Client.t -> (sample, string) result
(** One snapshot over an open client connection: [stats] for
    protocol/jobs/cache families, [metrics] parsed back from the
    Prometheus exposition for counters, gauges and latency quantiles. *)

val request_rate : prev:sample -> sample -> float option
(** Requests per second between two samples ([None] when no time has
    passed). *)

val hit_ratio : cache_row -> float option
(** hits / (hits + misses); [None] before any traffic. *)

val to_json : ?prev:sample -> sample -> Json.t
(** The [--once --json] document (schema [acstab-top/1]); [prev] adds
    a [requests_per_s] rate. *)

val render : ?prev:sample -> socket:string -> sample -> string
(** The multi-line text dashboard frame. *)
