(* JSON values with a parser and printer — just enough for run
   manifests ([acstab diff] must read back what [--manifest] wrote, so
   unlike the emit-only lint reports this needs the round trip). No
   dependency; numbers are floats (manifests never carry integers large
   enough to care). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

(* --- printing --- *)

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let num_string v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else if Float.is_finite v then Printf.sprintf "%.17g" v
  else "null" (* JSON has no inf/nan; absent is the honest spelling *)

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num v -> Buffer.add_string buf (num_string v)
  | Str s ->
    Buffer.add_char buf '"';
    Buffer.add_string buf (escape s);
    Buffer.add_char buf '"'
  | Arr items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_char buf ',';
        write buf v)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        write buf (Str k);
        Buffer.add_char buf ':';
        write buf v)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 1024 in
  write buf v;
  Buffer.contents buf

(* --- parsing: plain recursive descent over a string --- *)

type state = { src : string; mutable pos : int }

let fail st msg =
  raise (Parse_error (Printf.sprintf "%s at byte %d" msg st.pos))

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos]
  else None

let advance st = st.pos <- st.pos + 1

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
    advance st;
    skip_ws st
  | _ -> ()

let expect st c =
  match peek st with
  | Some d when d = c -> advance st
  | _ -> fail st (Printf.sprintf "expected %C" c)

let parse_literal st word value =
  let n = String.length word in
  if st.pos + n <= String.length st.src
     && String.sub st.src st.pos n = word then begin
    st.pos <- st.pos + n;
    value
  end
  else fail st (Printf.sprintf "expected %s" word)

let parse_string_raw st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> fail st "unterminated string"
    | Some '"' -> advance st
    | Some '\\' ->
      advance st;
      (match peek st with
       | Some '"' -> Buffer.add_char buf '"'; advance st; go ()
       | Some '\\' -> Buffer.add_char buf '\\'; advance st; go ()
       | Some '/' -> Buffer.add_char buf '/'; advance st; go ()
       | Some 'n' -> Buffer.add_char buf '\n'; advance st; go ()
       | Some 'r' -> Buffer.add_char buf '\r'; advance st; go ()
       | Some 't' -> Buffer.add_char buf '\t'; advance st; go ()
       | Some 'b' -> Buffer.add_char buf '\b'; advance st; go ()
       | Some 'f' -> Buffer.add_char buf '\012'; advance st; go ()
       | Some 'u' ->
         advance st;
         let hex4 () =
           if st.pos + 4 > String.length st.src then
             fail st "short \\u escape";
           let hex = String.sub st.src st.pos 4 in
           let code =
             try int_of_string ("0x" ^ hex)
             with _ -> fail st "bad \\u escape"
           in
           st.pos <- st.pos + 4;
           code
         in
         let code = hex4 () in
         (* JSON strings carry non-BMP code points as UTF-16 surrogate
            pairs (RFC 8259 section 7): a high surrogate is only valid
            immediately followed by an escaped low surrogate, and the
            pair decodes to ONE code point — emitting each half as its
            own 3-byte sequence would produce invalid UTF-8. Unpaired
            surrogates in either order are malformed input. *)
         let code =
           if code >= 0xd800 && code <= 0xdbff then begin
             if
               st.pos + 2 <= String.length st.src
               && st.src.[st.pos] = '\\'
               && st.src.[st.pos + 1] = 'u'
             then begin
               st.pos <- st.pos + 2;
               let low = hex4 () in
               if low >= 0xdc00 && low <= 0xdfff then
                 0x10000 + ((code - 0xd800) lsl 10) + (low - 0xdc00)
               else fail st "unpaired surrogate in \\u escape"
             end
             else fail st "unpaired surrogate in \\u escape"
           end
           else if code >= 0xdc00 && code <= 0xdfff then
             fail st "unpaired surrogate in \\u escape"
           else code
         in
         (* UTF-8 encode the code point; manifests only ever escape
            control characters but accept all of Unicode. *)
         if code < 0x80 then Buffer.add_char buf (Char.chr code)
         else if code < 0x800 then begin
           Buffer.add_char buf (Char.chr (0xc0 lor (code lsr 6)));
           Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
         end
         else if code < 0x10000 then begin
           Buffer.add_char buf (Char.chr (0xe0 lor (code lsr 12)));
           Buffer.add_char buf
             (Char.chr (0x80 lor ((code lsr 6) land 0x3f)));
           Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
         end
         else begin
           Buffer.add_char buf (Char.chr (0xf0 lor (code lsr 18)));
           Buffer.add_char buf
             (Char.chr (0x80 lor ((code lsr 12) land 0x3f)));
           Buffer.add_char buf
             (Char.chr (0x80 lor ((code lsr 6) land 0x3f)));
           Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
         end;
         go ()
       | _ -> fail st "bad escape")
    | Some c ->
      Buffer.add_char buf c;
      advance st;
      go ()
  in
  go ();
  Buffer.contents buf

let parse_number st =
  let start = st.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while (match peek st with Some c -> is_num_char c | None -> false) do
    advance st
  done;
  let text = String.sub st.src start (st.pos - start) in
  match float_of_string_opt text with
  | Some v -> Num v
  | None -> fail st (Printf.sprintf "bad number %S" text)

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some '{' ->
    advance st;
    skip_ws st;
    if peek st = Some '}' then begin advance st; Obj [] end
    else begin
      let rec fields acc =
        skip_ws st;
        let key = parse_string_raw st in
        skip_ws st;
        expect st ':';
        let v = parse_value st in
        skip_ws st;
        match peek st with
        | Some ',' -> advance st; fields ((key, v) :: acc)
        | Some '}' -> advance st; List.rev ((key, v) :: acc)
        | _ -> fail st "expected ',' or '}'"
      in
      Obj (fields [])
    end
  | Some '[' ->
    advance st;
    skip_ws st;
    if peek st = Some ']' then begin advance st; Arr [] end
    else begin
      let rec items acc =
        let v = parse_value st in
        skip_ws st;
        match peek st with
        | Some ',' -> advance st; items (v :: acc)
        | Some ']' -> advance st; List.rev (v :: acc)
        | _ -> fail st "expected ',' or ']'"
      in
      Arr (items [])
    end
  | Some '"' -> Str (parse_string_raw st)
  | Some 't' -> parse_literal st "true" (Bool true)
  | Some 'f' -> parse_literal st "false" (Bool false)
  | Some 'n' -> parse_literal st "null" Null
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some c -> fail st (Printf.sprintf "unexpected %C" c)

let of_string s =
  let st = { src = s; pos = 0 } in
  match parse_value st with
  | v ->
    skip_ws st;
    if st.pos <> String.length s then
      Error (Printf.sprintf "trailing garbage at byte %d" st.pos)
    else Ok v
  | exception Parse_error msg -> Error msg

(* Best-effort recovery of one member's value from a malformed
   document. The serve protocol wants to echo a client's "id" even
   when the request line itself failed to parse (half-written NDJSON),
   so this scans for a quoted [key] followed by ':' and a value that
   does parse; nesting is not tracked and the first syntactic match
   wins — acceptable for a diagnostic echo, never for real decoding. *)
let salvage_member key s =
  let n = String.length s in
  let rec scan i =
    if i >= n then None
    else
      match String.index_from_opt s i '"' with
      | None -> None
      | Some q ->
        let st = { src = s; pos = q } in
        (match parse_string_raw st with
         | k when k = key ->
           (skip_ws st;
            match peek st with
            | Some ':' ->
              advance st;
              (match parse_value st with
               | v -> Some v
               | exception Parse_error _ -> scan (q + 1))
            | _ -> scan (q + 1))
         | _ -> scan (q + 1)
         | exception Parse_error _ -> scan (q + 1))
  in
  scan 0

(* --- accessors used by manifest loading --- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_float = function
  | Num v -> Some v
  | _ -> None

let to_str = function
  | Str s -> Some s
  | _ -> None

let to_list = function
  | Arr items -> Some items
  | _ -> None

let to_bool = function
  | Bool b -> Some b
  | _ -> None

let to_int = function
  | Num v when Float.is_integer v && Float.abs v < 1e15 ->
    Some (int_of_float v)
  | _ -> None

let mem_str key v = Option.bind (member key v) to_str
let mem_float key v = Option.bind (member key v) to_float
let mem_int key v = Option.bind (member key v) to_int
let mem_bool key v = Option.bind (member key v) to_bool
