(** Rendering of {!Staticanalysis.Report}s for the tool layer.

    [acstab loops] prints {!render} (byte-stable — the root
    [@staticcheck] alias compares it against committed goldens) or the
    [acstab-loops/1] document from {!json}; {!section} is the loops
    record embedded in run manifests and gated by [acstab diff]. *)

val schema_version : string
(** ["acstab-loops/1"]. *)

val section : Staticanalysis.Report.t -> Manifest.loops_section
(** The manifest's structural summary: loop records (id, kind, gain
    order, member nets), the probe cover, and the truncation flag. *)

val render : deck:string -> Staticanalysis.Report.t -> string
(** Human-readable report: graph size, pinned nets, every loop with its
    devices and cover net, the probe cover, undrivable nets and
    open-gain devices. Deterministic for a given deck. *)

val json : deck:string -> sha256:string -> Staticanalysis.Report.t -> Json.t
(** The [acstab-loops/1] document ([acstab loops --json] and the serve
    daemon's [loops] responses). *)
