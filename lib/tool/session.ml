type analysis_spec =
  | Op
  | Ac of Numerics.Sweep.t
  | Tran of { tstop : float; tstep : float }
  | Stab_single of Circuit.Netlist.node
  | Stab_all
  | Noise of { sweep : Numerics.Sweep.t; output : Circuit.Netlist.node }
  | Poles

type t = {
  session_name : string;
  session_id : int;
  mutable design : Circuit.Netlist.t option;
  mutable simulator : string;
  mutable variables : (string * float) list;
  mutable temp : float;
  mutable scale : float;
  mutable results_dir : string;
  mutable analyses : analysis_spec list;  (* reversed *)
  mutable cache : Cache.t option;         (* lazily created *)
}

let log_src = Logs.Src.create "tool.session" ~doc:"simulation sessions"

module Log = (val Logs.src_log log_src : Logs.LOG)

let next_id = ref 0

let create ?(name = "session") () =
  incr next_id;
  { session_name = name; session_id = !next_id; design = None;
    simulator = "builtin"; variables = []; temp = 27.; scale = 1.;
    results_dir = "."; analyses = []; cache = None }

(* One cache per session, created on first use: a session's repeated
   runs are exactly the warm-request pattern the fingerprint-keyed
   cache exists for, and per-session isolation keeps a long-lived
   environment from seeing another session's evictions. *)
let cache s =
  match s.cache with
  | Some c -> c
  | None ->
    let c = Cache.create () in
    s.cache <- Some c;
    c

let name s = s.session_name
let id s = s.session_id
let set_design s d = s.design <- Some d

let design s =
  match s.design with
  | Some d -> d
  | None -> failwith (Printf.sprintf "session %S: no design loaded" s.session_name)

let set_simulator s sim =
  let sim = String.lowercase_ascii sim in
  if sim <> "builtin" then
    Log.warn (fun f ->
        f "simulator %S is not available; the built-in engine will run" sim);
  s.simulator <- sim

let simulator s = s.simulator

let set_design_variable s k v =
  s.variables <- (k, v) :: List.remove_assoc k s.variables

let design_variables s = List.rev s.variables
let set_temp s t = s.temp <- t
let temp s = s.temp
let set_scale s v = s.scale <- v
let scale s = s.scale
let set_results_dir s d = s.results_dir <- d
let results_dir s = s.results_dir
let add_analysis s a = s.analyses <- a :: s.analyses
let clear_analyses s = s.analyses <- []
let analyses s = List.rev s.analyses

(* State files: one "key value..." line per setting; analyses use a small
   sexp-free encoding. *)
let save_state s path =
  let oc = open_out path in
  (try
     Printf.fprintf oc "simulator %s\n" s.simulator;
     Printf.fprintf oc "temp %.17g\n" s.temp;
     Printf.fprintf oc "scale %.17g\n" s.scale;
     Printf.fprintf oc "results_dir %s\n" s.results_dir;
     List.iter
       (fun (k, v) -> Printf.fprintf oc "var %s %.17g\n" k v)
       (design_variables s);
     List.iter
       (fun a ->
         match a with
         | Op -> Printf.fprintf oc "analysis op\n"
         | Ac sw ->
           (match sw with
            | Numerics.Sweep.Dec { start; stop; per_decade } ->
              Printf.fprintf oc "analysis ac dec %.17g %.17g %d\n" start stop
                per_decade
            | Numerics.Sweep.Lin { start; stop; points } ->
              Printf.fprintf oc "analysis ac lin %.17g %.17g %d\n" start stop
                points
            | Numerics.Sweep.List pts ->
              Printf.fprintf oc "analysis ac list";
              Array.iter (fun p -> Printf.fprintf oc " %.17g" p) pts;
              Printf.fprintf oc "\n")
         | Tran { tstop; tstep } ->
           Printf.fprintf oc "analysis tran %.17g %.17g\n" tstep tstop
         | Stab_single n -> Printf.fprintf oc "analysis stab %s\n" n
         | Stab_all -> Printf.fprintf oc "analysis stab all\n"
         | Noise { sweep; output } ->
           (match sweep with
            | Numerics.Sweep.Dec { start; stop; per_decade } ->
              Printf.fprintf oc "analysis noise %s dec %.17g %.17g %d\n"
                output start stop per_decade
            | _ ->
              (* Only decade sweeps round-trip; others are re-created by
                 the script that configured them. *)
              Printf.fprintf oc "analysis noise %s dec 1e3 1e9 30\n" output)
         | Poles -> Printf.fprintf oc "analysis poles\n")
       (analyses s);
     close_out oc
   with e -> close_out_noerr oc; raise e)

let load_state s path =
  let ic = open_in path in
  let fail line msg =
    close_in_noerr ic;
    failwith (Printf.sprintf "state file %s, line %d: %s" path line msg)
  in
  let fl line v =
    match float_of_string_opt v with
    | Some x -> x
    | None -> fail line (Printf.sprintf "bad number %S" v)
  in
  (* Integer fields get the same located failure as floats: a corrupt
     points-per-decade used to escape as a bare [Failure "int_of_string"]
     with no file or line, the one parse error this loop didn't own. *)
  let it line v =
    match int_of_string_opt v with
    | Some x -> x
    | None -> fail line (Printf.sprintf "bad integer %S" v)
  in
  s.variables <- [];
  s.analyses <- [];
  (try
     let lineno = ref 0 in
     (try
        while true do
          incr lineno;
          let line = input_line ic in
          let n = !lineno in
          match String.split_on_char ' ' (String.trim line) with
          | [] | [ "" ] -> ()
          | "simulator" :: [ sim ] -> s.simulator <- sim
          | "temp" :: [ v ] -> s.temp <- fl n v
          | "scale" :: [ v ] -> s.scale <- fl n v
          | "results_dir" :: [ d ] -> s.results_dir <- d
          | "var" :: k :: [ v ] -> set_design_variable s k (fl n v)
          | "analysis" :: "op" :: [] -> add_analysis s Op
          | [ "analysis"; "ac"; "dec"; f1; f2; ppd ] ->
            add_analysis s
              (Ac (Numerics.Sweep.decade (fl n f1) (fl n f2) (it n ppd)))
          | [ "analysis"; "ac"; "lin"; f1; f2; pts ] ->
            add_analysis s
              (Ac (Numerics.Sweep.linear (fl n f1) (fl n f2) (it n pts)))
          | "analysis" :: "ac" :: "list" :: pts ->
            add_analysis s
              (Ac (Numerics.Sweep.List
                     (Array.of_list (List.map (fl n) pts))))
          | [ "analysis"; "tran"; tstep; tstop ] ->
            add_analysis s (Tran { tstep = fl n tstep; tstop = fl n tstop })
          | [ "analysis"; "stab"; "all" ] -> add_analysis s Stab_all
          | [ "analysis"; "stab"; node ] -> add_analysis s (Stab_single node)
          | [ "analysis"; "noise"; output; "dec"; f1; f2; ppd ] ->
            add_analysis s
              (Noise { sweep = Numerics.Sweep.decade (fl n f1) (fl n f2)
                               (it n ppd);
                       output })
          | [ "analysis"; "poles" ] -> add_analysis s Poles
          | tok :: _ -> fail n (Printf.sprintf "unknown entry %S" tok)
        done
      with End_of_file -> ());
     close_in ic
   with e -> close_in_noerr ic; raise e)
