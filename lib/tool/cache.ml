(* Fingerprint-keyed memoization of the expensive pipeline stages.

   The paper's tool is a resident environment: a designer's session
   re-runs the same analysis many times with small edits, so the
   operating point, the compiled solve plan and whole result sets are
   worth keeping between requests. Keys are strings built by
   [Pipeline] from the deck's SHA-256 fingerprint plus the options in
   force — an edited deck or a changed option is a different key, which
   is all the invalidation a content-addressed cache needs.

   Five families, one per pipeline stage:
   - [op]     : prepared probes (MNA compile + DC operating point)
   - [plan]   : compiled {!Engine.Ac_plan} symbolic analyses ([None]
                when the options select a dense backend)
   - [kernel] : compiled {!Engine.Kernel} solve programs ([None] unless
                the options select the kernel backend)
   - [result] : full analysis outcomes (node results + run manifest)
   - [sfg]    : static signal-flow reports (loops + probe cover)

   Every family feeds always-on {!Obs.Counter}s ([cache.<family>.hits]
   / [.misses] / [.evictions]) so traces, [--metrics] and the serve
   daemon's counters command expose cache behaviour, and tests assert
   it. Lookups are mutex-protected (the serve daemon calls in from
   [Parallel.Pool] workers); the compute thunk itself runs outside the
   lock, so two simultaneous cold requests for the same key may both
   compute — the second insert wins, which is harmless because values
   of the same key are equivalent. *)

type 'a slot = {
  value : 'a;
  mutable last_used : int;  (* generation stamp for LRU eviction *)
}

type 'a family = {
  fname : string;
  hits : Obs.Counter.t;
  misses : Obs.Counter.t;
  evictions : Obs.Counter.t;
  table : (string, 'a slot) Hashtbl.t;
}

type result_entry = {
  results : Stability.Analysis.node_result list;
  manifest : Manifest.t;
}

type t = {
  mutex : Mutex.t;
  capacity : int;
  mutable tick : int;
  ops : Stability.Probe.t family;
  plans : Engine.Ac_plan.t option family;
  kernels : Engine.Kernel.t option family;
  results : result_entry family;
  sfgs : Staticanalysis.Report.t family;
}

let family fname =
  { fname;
    hits = Obs.Counter.make (Printf.sprintf "cache.%s.hits" fname);
    misses = Obs.Counter.make (Printf.sprintf "cache.%s.misses" fname);
    evictions = Obs.Counter.make (Printf.sprintf "cache.%s.evictions" fname);
    table = Hashtbl.create 16 }

let default_capacity = 64

let create ?(capacity = default_capacity) () =
  { mutex = Mutex.create ();
    capacity = max 1 capacity;
    tick = 0;
    ops = family "op";
    plans = family "plan";
    kernels = family "kernel";
    results = family "result";
    sfgs = family "sfg" }

let the_global = lazy (create ())
let global () = Lazy.force the_global

let locked c f =
  Mutex.lock c.mutex;
  match f () with
  | v -> Mutex.unlock c.mutex; v
  | exception e -> Mutex.unlock c.mutex; raise e

let stamp c = c.tick <- c.tick + 1; c.tick

(* Evict the least-recently-used slot once a family exceeds the
   capacity. Linear scan: capacities are tens of entries, and eviction
   only runs on insert. *)
let evict_lru c fam =
  if Hashtbl.length fam.table > c.capacity then begin
    let victim = ref None in
    Hashtbl.iter
      (fun k s ->
        match !victim with
        | Some (_, age) when age <= s.last_used -> ()
        | _ -> victim := Some (k, s.last_used))
      fam.table;
    match !victim with
    | Some (k, _) ->
      Hashtbl.remove fam.table k;
      Obs.Counter.incr fam.evictions
    | None -> ()
  end

let find c fam key =
  locked c (fun () ->
      match Hashtbl.find_opt fam.table key with
      | Some slot ->
        slot.last_used <- stamp c;
        Obs.Counter.incr fam.hits;
        Some slot.value
      | None ->
        Obs.Counter.incr fam.misses;
        None)

let insert c fam key value =
  locked c (fun () ->
      Hashtbl.replace fam.table key { value; last_used = stamp c };
      evict_lru c fam)

let memo c fam ~key compute =
  match find c fam key with
  | Some v -> (v, true)
  | None ->
    let v = compute () in
    insert c fam key v;
    (v, false)

let op c ~key compute = memo c c.ops ~key compute
let plan c ~key compute = memo c c.plans ~key compute
let kernel c ~key compute = memo c c.kernels ~key compute
let result c ~key compute = memo c c.results ~key compute
let sfg c ~key compute = memo c c.sfgs ~key compute

let clear c =
  locked c (fun () ->
      Hashtbl.reset c.ops.table;
      Hashtbl.reset c.plans.table;
      Hashtbl.reset c.kernels.table;
      Hashtbl.reset c.results.table;
      Hashtbl.reset c.sfgs.table)

let capacity c = c.capacity

type family_stats = {
  family : string;
  entries : int;
  capacity : int;
  hits : int;
  misses : int;
  evictions : int;
}

let family_stat (c : t) (fam : _ family) =
  { family = fam.fname;
    entries = Hashtbl.length fam.table;
    capacity = c.capacity;
    hits = Obs.Counter.value fam.hits;
    misses = Obs.Counter.value fam.misses;
    evictions = Obs.Counter.value fam.evictions }

let stats c =
  locked c (fun () ->
      [ family_stat c c.ops; family_stat c c.plans;
        family_stat c c.kernels; family_stat c c.results;
        family_stat c c.sfgs ])

(* Occupancy is state, not a monotonic count, so live exposition reads
   it through [Obs.Gauge]: the serve daemon calls this on its
   background tick (and on demand for a `metrics` request) to publish
   cache.<family>.entries / .capacity next to the hit/miss counters. *)
let sample_gauges c =
  List.iter
    (fun s ->
      Obs.Gauge.set
        (Obs.Gauge.make (Printf.sprintf "cache.%s.entries" s.family))
        (float_of_int s.entries);
      Obs.Gauge.set
        (Obs.Gauge.make (Printf.sprintf "cache.%s.capacity" s.family))
        (float_of_int s.capacity))
    (stats c)
