(** The [acstab serve] daemon: {!Pipeline} behind a Unix socket.

    Newline-delimited JSON over a Unix-domain socket — one request per
    line, one response per line. Commands: [analyze] (single-node or
    all-nodes stability, answered from the shared {!Cache} when the
    deck fingerprint and options match a previous request), [lint],
    [loops], [diff] (two manifest files), [counters], [stats],
    [metrics] (Prometheus text exposition), [trace] (on-demand live
    Chrome-trace capture), [ping] and [shutdown]. See MANUAL section 9
    for the request/response schema.

    Failures never kill the daemon: a bad or failing request yields an
    ["ok": false] response whose [error.code] carries the CLI's
    exit-code contract (2 bad input, 3 analysis failure, 4 lint block).
    Even a request line that is not valid JSON gets a structured error,
    carrying the client's [id] when one can be salvaged from the
    broken text.

    Every response additionally carries a daemon-unique [request_id],
    which also keys the per-request line in the structured event log
    ({!Obs.Events}, schema [acstab-log/1]) and the [server.request]
    span, so logs, traces and client reports join on one value.

    Requests that arrive together are dispatched together through
    {!Parallel.Pool.map_list}, so concurrent clients analyze in
    parallel. *)

val protocol_version : string
(** ["acstab-serve/1"], echoed by [ping] and [stats]. *)

val serve :
  ?capacity:int ->
  ?log:string ->
  ?slow_ms:float ->
  ?tick_s:float ->
  socket:string ->
  unit ->
  unit
(** Bind [socket] (unlinking a stale socket file left by a dead
    daemon), serve until a [shutdown] request, then close every
    connection and remove the socket file. [capacity] sizes each family
    of the daemon's LRU cache (default {!Cache.default_capacity}).
    [log] attaches the structured event log to a file (NDJSON, one
    line per request plus lifecycle events). [slow_ms] keeps span
    recording on and dumps the span tree of any request that takes at
    least that many milliseconds as a [server.slow_request] event.
    [tick_s] (default 1.0) is the background gauge-sampling interval
    (cache occupancy, pool busy/queue depth, in-flight requests).
    Raises [Failure] if [socket] exists and is not a socket;
    [Unix.Unix_error] on bind failures. *)

(** A minimal blocking client — the smoke test and scripting hook. *)
module Client : sig
  type t

  val connect : string -> t
  (** Connect to a daemon's socket path. *)

  val send : t -> Json.t -> unit
  (** Write one request line without waiting — several [send]s on
      distinct connections put several requests in flight at once. *)

  val recv : t -> Json.t
  (** Read one response line (blocking). Raises [Failure] on EOF or
      malformed JSON. *)

  val request : t -> Json.t -> Json.t
  (** [send] then [recv]. *)

  val close : t -> unit
end
