(** The [acstab serve] daemon: {!Pipeline} behind a Unix socket.

    Newline-delimited JSON over a Unix-domain socket — one request per
    line, one response per line. Commands: [analyze] (single-node or
    all-nodes stability, answered from the shared {!Cache} when the
    deck fingerprint and options match a previous request), [lint],
    [diff] (two manifest files), [counters], [stats], [ping] and
    [shutdown]. See MANUAL section 9 for the request/response schema.

    Failures never kill the daemon: a bad or failing request yields an
    ["ok": false] response whose [error.code] carries the CLI's
    exit-code contract (2 bad input, 3 analysis failure, 4 lint block).

    Requests that arrive together are dispatched together through
    {!Parallel.Pool.map_list}, so concurrent clients analyze in
    parallel. *)

val protocol_version : string
(** ["acstab-serve/1"], echoed by [ping] and [stats]. *)

val serve : ?capacity:int -> socket:string -> unit -> unit
(** Bind [socket] (unlinking a stale socket file left by a dead
    daemon), serve until a [shutdown] request, then close every
    connection and remove the socket file. [capacity] sizes each family
    of the daemon's LRU cache (default {!Cache.default_capacity}).
    Raises [Failure] if [socket] exists and is not a socket;
    [Unix.Unix_error] on bind failures. *)

(** A minimal blocking client — the smoke test and scripting hook. *)
module Client : sig
  type t

  val connect : string -> t
  (** Connect to a daemon's socket path. *)

  val send : t -> Json.t -> unit
  (** Write one request line without waiting — several [send]s on
      distinct connections put several requests in flight at once. *)

  val recv : t -> Json.t
  (** Read one response line (blocking). Raises [Failure] on EOF or
      malformed JSON. *)

  val request : t -> Json.t -> Json.t
  (** [send] then [recv]. *)

  val close : t -> unit
end
