type results = {
  op : Engine.Dcop.t option;
  ac : Engine.Ac.result option;
  tran : Engine.Transient.result option;
  stab : Stability.Analysis.node_result list;
  noise : Engine.Noise.result option;
  poles : Engine.Poles.pole list option;
  elaborated : Circuit.Netlist.t;
}

(* The session type has no slot for a text design, so keep a side table
   keyed by session id. *)
let text_designs : (int, string) Hashtbl.t = Hashtbl.create 4

let simulator name =
  let s = Session.create () in
  Session.set_simulator s name;
  s

let design s circ =
  Hashtbl.remove text_designs (Session.id s);
  Session.set_design s circ

let design_text s text = Hashtbl.replace text_designs (Session.id s) text
let analysis = Session.add_analysis
let des_var = Session.set_design_variable
let temperature = Session.set_temp

let elaborate s =
  let circ =
    match Hashtbl.find_opt text_designs (Session.id s) with
    | Some text ->
      (* Bind design variables as netlist parameters: prepend .param cards
         (later .param lines in the deck override where the deck insists). *)
      let prelude =
        Session.design_variables s
        |> List.map (fun (k, v) -> Printf.sprintf ".param %s=%.17g" k v)
        |> String.concat "\n"
      in
      let text =
        match String.index_opt text '\n' with
        | Some i when prelude <> "" ->
          (* Keep the title line first (SPICE convention). *)
          String.sub text 0 (i + 1) ^ prelude ^ "\n"
          ^ String.sub text (i + 1) (String.length text - i - 1)
        | _ -> if prelude = "" then text else prelude ^ "\n" ^ text
      in
      Circuit.Parser.parse_string ~name:(Session.name s) text
    | None -> Session.design s
  in
  Circuit.Netlist.with_temp (Session.temp s) circ

let directive_analyses circ =
  List.filter_map
    (function
      | Circuit.Netlist.Op -> Some Session.Op
      | Circuit.Netlist.Ac sw -> Some (Session.Ac sw)
      | Circuit.Netlist.Tran { tstop; tstep } ->
        Some (Session.Tran { tstop; tstep })
      | Circuit.Netlist.Stab_node n -> Some (Session.Stab_single n)
      | Circuit.Netlist.Stab_all -> Some Session.Stab_all
      | Circuit.Netlist.Nodeset _ -> None)
    (Circuit.Netlist.directives circ)

(* Stability analyses go through the shared pipeline, memoized in the
   session's cache: re-running an unchanged session is a warm request
   (no DC re-solve, no fresh symbolic analysis), which is the whole
   point of a resident environment. Engine exceptions propagate raw —
   [run]'s contract with [Diagnostics.guard]. *)
let stab s circ analysis =
  let loaded =
    match
      Pipeline.load ~policy:{ Pipeline.no_lint = true; strict = false }
        (Pipeline.Deck_circuit { name = Session.name s; circ })
    with
    | Ok l -> l
    | Error f -> failwith (Pipeline.failure_message f)
  in
  (Pipeline.analyze_exn ~cache:(Session.cache s) loaded analysis)
    .Pipeline.results

(* The static signal-flow report of the session's elaborated design,
   memoized through the session cache like any other analysis grain. *)
let loops s =
  let circ = elaborate s in
  let loaded =
    match
      Pipeline.load ~policy:{ Pipeline.no_lint = true; strict = false }
        (Pipeline.Deck_circuit { name = Session.name s; circ })
    with
    | Ok l -> l
    | Error f -> failwith (Pipeline.failure_message f)
  in
  fst (Pipeline.static_report ~cache:(Session.cache s) loaded)

let run s =
  let circ = elaborate s in
  let specs =
    match Session.analyses s with
    | [] -> directive_analyses circ
    | l -> l
  in
  let acc =
    ref { op = None; ac = None; tran = None; stab = []; noise = None;
          poles = None; elaborated = circ }
  in
  List.iter
    (fun spec ->
      match spec with
      | Session.Op ->
        let op = Engine.Dcop.solve (Engine.Mna.compile circ) in
        acc := { !acc with op = Some op }
      | Session.Ac sweep ->
        let ac = Engine.Ac.run ~sweep circ in
        acc := { !acc with ac = Some ac; op = Some ac.Engine.Ac.op }
      | Session.Tran { tstop; tstep } ->
        let tr = Engine.Transient.run ~tstop ~tstep circ in
        acc := { !acc with tran = Some tr }
      | Session.Stab_single node ->
        let r = stab s circ (Pipeline.Single_node node) in
        acc := { !acc with stab = !acc.stab @ r }
      | Session.Stab_all ->
        let rs = stab s circ (Pipeline.All_nodes None) in
        acc := { !acc with stab = !acc.stab @ rs }
      | Session.Noise { sweep; output } ->
        let r = Engine.Noise.run ~sweep ~output circ in
        acc := { !acc with noise = Some r }
      | Session.Poles ->
        let ps = Engine.Poles.of_circuit circ in
        acc := { !acc with poles = Some ps })
    specs;
  !acc

let vdc r n =
  match r.op with
  | Some op -> Engine.Dcop.node_v op n
  | None -> failwith "Ocean.vdc: no operating point in results"

let v r n =
  match r.ac with
  | Some ac -> Engine.Ac.v ac n
  | None -> failwith "Ocean.v: no AC analysis in results"

let vt r n =
  match r.tran with
  | Some tr -> Engine.Transient.v tr n
  | None -> failwith "Ocean.vt: no transient analysis in results"

let stab_report r = Stability.Report.all_nodes_string r.stab
let stab_annotated r = Stability.Annotate.netlist_string r.elaborated r.stab
