(** SHA-256 (FIPS 180-4) of a string, as 64 lowercase hex digits.

    Used to fingerprint netlist decks in run manifests so two manifests
    can prove they analysed the same input; matches [sha256sum] on the
    deck file's bytes. *)

val digest : string -> string
