(** Fingerprint-keyed caching of the analysis pipeline's expensive
    stages.

    Keys are opaque strings built by {!Pipeline} from the deck's
    SHA-256 fingerprint plus the options in force, so an edited deck or
    a changed option is simply a different key — content addressing is
    the whole invalidation story. Five families are memoized
    independently: prepared probes (MNA compile + DC operating point),
    compiled {!Engine.Ac_plan} symbolic analyses, compiled
    {!Engine.Kernel} solve programs, complete result sets with their
    run manifests, and static signal-flow reports
    ({!Staticanalysis.Report.t}). A warm [result] hit therefore costs
    zero DC solves and zero symbolic analyses — the serve smoke test
    asserts exactly that from the [dcop.solves] / [acplan.symbolic]
    counters — and a warm [kernel] hit costs zero kernel compiles
    ([kernel.compiles] stays flat).

    Hit/miss/eviction telemetry flows through always-on
    {!Obs.Counter}s: [cache.op.hits], [cache.op.misses],
    [cache.op.evictions], and likewise for the [plan], [kernel],
    [result] and [sfg] families.

    All operations are safe to call concurrently (the serve daemon
    calls in from {!Parallel.Pool} workers). The compute thunk runs
    outside the lock: two simultaneous cold requests for one key may
    both compute, and the later insert wins — equivalent values, so
    only duplicated work, never a wrong answer. *)

type t

type result_entry = {
  results : Stability.Analysis.node_result list;
  manifest : Manifest.t;
}

val default_capacity : int
(** Per-family LRU capacity when [create] is not told otherwise (64). *)

val create : ?capacity:int -> unit -> t
(** A fresh cache; [capacity] bounds each family separately, evicting
    least-recently-used entries on insert. *)

val global : unit -> t
(** The process-wide cache shared by CLI one-shots and {!Session}s. The
    serve daemon uses it too, so a daemon and in-process sessions agree
    on warm state. *)

(** Each accessor returns the cached or computed value plus a hit flag
    ([true] = served from cache, compute not called). *)

val op :
  t -> key:string -> (unit -> Stability.Probe.t) ->
  Stability.Probe.t * bool

val plan :
  t -> key:string -> (unit -> Engine.Ac_plan.t option) ->
  Engine.Ac_plan.t option * bool
(** [None] is a cacheable answer: it records "these options select the
    dense backend", sparing the decision logic on the next request. *)

val kernel :
  t -> key:string -> (unit -> Engine.Kernel.t option) ->
  Engine.Kernel.t option * bool
(** Compiled kernel programs, keyed one step below [plan] (same
    fingerprint plus the kernel tag); [None] records "these options do
    not select the kernel backend". *)

val result :
  t -> key:string -> (unit -> result_entry) -> result_entry * bool

val sfg :
  t -> key:string -> (unit -> Staticanalysis.Report.t) ->
  Staticanalysis.Report.t * bool
(** Static signal-flow reports: loop enumeration and probe cover are
    pure functions of the deck text and the cycle bounds, so a warm hit
    is a zero-rebuild answer — the [sfg.builds] counter stays flat. *)

val clear : t -> unit

val capacity : t -> int
(** The per-family LRU bound this cache was created with. *)

type family_stats = {
  family : string;
  (** ["op"], ["plan"], ["kernel"], ["result"] or ["sfg"] *)
  entries : int;       (** live entries right now *)
  capacity : int;      (** LRU bound (same for every family) *)
  hits : int;
  misses : int;
  evictions : int;
}

val stats : t -> family_stats list
(** One record per family, in declaration order. Hit/miss/eviction
    counts read the process-global counters, so they aggregate across
    caches that share the registry. *)

val sample_gauges : t -> unit
(** Publish each family's occupancy into the [Obs.Gauge] registry as
    [cache.<family>.entries] and [cache.<family>.capacity] — called by
    the serve daemon's background tick so Prometheus exposition and
    [acstab top] see live occupancy without touching the cache lock on
    every scrape. *)
