(** Automatic error and diagnostic reporting.

    The paper's tool mails auto-generated diagnostics to the support team;
    this substitute captures the same information — tool identity, session
    configuration, the failing operation, the exception and its backtrace —
    into a structured report written to a file (and returned), which a
    support pipeline could forward. *)

type report = {
  timestamp : string;       (** UTC, ISO-8601 *)
  tool_version : string;
  operation : string;
  session_summary : string option;
  error : string;
  backtrace : string;
  findings : string list;
      (** rendered lint findings attached by the caller, giving support
          the structural context around the failure *)
  counters : (string * int) list;
      (** non-zero [Obs.Counter] values at failure time: how far the
          pipeline got (sweeps, factorisations, pool activity) before
          the exception *)
  manifest : string option;
      (** run-manifest JSON rendered at failure time (see {!Manifest}),
          when the caller supplied a thunk *)
}

val tool_version : string

val guard :
  ?session:Session.t -> operation:string -> ?findings:string list ->
  ?manifest:(unit -> string) -> ?report_dir:string -> (unit -> 'a) ->
  ('a, report) Result.t
(** Run the operation; on exception build a {!report}, write it to
    [report_dir] (default ["."]) as [acstab-diag-<pid>-<n>.txt] and return
    it. Never raises (short of filesystem errors while writing, which are
    reported on stderr and swallowed). *)

val pp_report : Format.formatter -> report -> unit
val to_text : report -> string
