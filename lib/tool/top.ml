(* `acstab top` — live terminal dashboard over a serve daemon.

   Pure client-side: it speaks the daemon's own protocol (`stats` for
   protocol/jobs/cache families, `metrics` for the Prometheus
   exposition) and derives rates by differencing two samples, so
   attaching it costs the daemon nothing beyond two requests per
   refresh and needs no restart. The same sampling backs `--once
   --json` for scripting, keyed by schema acstab-top/1. *)

type cache_row = {
  family : string;
  entries : int;
  capacity : int;
  hits : int;
  misses : int;
  evictions : int;
}

type latency = {
  p50_ms : float;
  p90_ms : float;
  p99_ms : float;
  max_ms : float;
  count : int;
}

type sample = {
  at : float;  (* Unix time of the sample, for rate differencing *)
  protocol : string;
  jobs : int;
  requests : int;
  errors : int;
  connections : int;
  inflight : int;
  inflight_high_water : int;
  latency : latency;
  cache : cache_row list;
  pool_busy : int;
  pool_queue : int;
}

let schema = "acstab-top/1"

(* ---- sampling ---- *)

let ask client cmd =
  let r = Server.Client.request client (Json.Obj [ ("cmd", Json.Str cmd) ]) in
  match Json.mem_bool "ok" r with
  | Some true -> Ok r
  | _ ->
    Error
      (Printf.sprintf "%s request failed: %s" cmd
         (Option.value ~default:"unknown error"
            (Option.bind (Json.member "error" r) (Json.mem_str "message"))))

let cache_rows stats =
  match Json.member "cache" stats with
  | Some (Json.Obj families) ->
    List.map
      (fun (family, f) ->
        let int name = Option.value ~default:0 (Json.mem_int name f) in
        { family; entries = int "entries"; capacity = int "capacity";
          hits = int "hits"; misses = int "misses";
          evictions = int "evictions" })
      families
  | _ -> []

let sample client =
  match ask client "stats" with
  | Error _ as e -> e
  | Ok stats ->
    (match ask client "metrics" with
     | Error _ as e -> e
     | Ok metrics ->
       (match Json.mem_str "metrics" metrics with
        | None -> Error "metrics response carries no exposition text"
        | Some text ->
          (match Obs.Prometheus.parse text with
           | Error e -> Error (Printf.sprintf "bad metrics exposition: %s" e)
           | Ok samples ->
             let v ?labels name =
               Option.value ~default:0.
                 (Obs.Prometheus.find ?labels name samples)
             in
             let quantile q =
               v ~labels:[ ("quantile", q) ] "acstab_server_request_ms"
             in
             Ok
               { at = Unix.gettimeofday ();
                 protocol =
                   Option.value ~default:"?" (Json.mem_str "protocol" stats);
                 jobs = Option.value ~default:1 (Json.mem_int "jobs" stats);
                 requests =
                   int_of_float (v "acstab_server_requests_total");
                 errors = int_of_float (v "acstab_server_errors_total");
                 connections =
                   int_of_float (v "acstab_server_connections_total");
                 inflight = int_of_float (v "acstab_server_inflight");
                 inflight_high_water =
                   int_of_float
                     (v "acstab_server_inflight_high_water_total");
                 latency =
                   { p50_ms = quantile "0.5"; p90_ms = quantile "0.9";
                     p99_ms = quantile "0.99";
                     max_ms = v "acstab_server_request_ms_max";
                     count =
                       int_of_float (v "acstab_server_request_ms_count") };
                 cache = cache_rows stats;
                 pool_busy = int_of_float (v "acstab_pool_busy_workers");
                 pool_queue = int_of_float (v "acstab_pool_queue_depth") })))

(* ---- derived readouts ---- *)

let request_rate ~prev s =
  let dt = s.at -. prev.at in
  if dt <= 0. then None
  else Some (float_of_int (s.requests - prev.requests) /. dt)

let hit_ratio row =
  let total = row.hits + row.misses in
  if total = 0 then None
  else Some (float_of_int row.hits /. float_of_int total)

(* ---- JSON (for --once --json and scripting) ---- *)

let to_json ?prev s =
  let num n = Json.Num (float_of_int n) in
  Json.Obj
    ([ ("schema", Json.Str schema); ("protocol", Json.Str s.protocol);
       ("jobs", num s.jobs); ("requests", num s.requests);
       ("errors", num s.errors); ("connections", num s.connections);
       ("inflight", num s.inflight);
       ("inflight_high_water", num s.inflight_high_water) ]
     @ (match Option.bind prev (fun p -> request_rate ~prev:p s) with
        | Some r -> [ ("requests_per_s", Json.Num r) ]
        | None -> [])
     @ [ ("latency_ms",
          Json.Obj
            [ ("p50", Json.Num s.latency.p50_ms);
              ("p90", Json.Num s.latency.p90_ms);
              ("p99", Json.Num s.latency.p99_ms);
              ("max", Json.Num s.latency.max_ms);
              ("count", num s.latency.count) ]);
         ("pool",
          Json.Obj
            [ ("jobs", num s.jobs); ("busy", num s.pool_busy);
              ("queued", num s.pool_queue) ]);
         ("cache",
          Json.Obj
            (List.map
               (fun row ->
                 (row.family,
                  Json.Obj
                    ([ ("entries", num row.entries);
                       ("capacity", num row.capacity);
                       ("hits", num row.hits);
                       ("misses", num row.misses);
                       ("evictions", num row.evictions) ]
                     @
                     match hit_ratio row with
                     | Some r -> [ ("hit_ratio", Json.Num r) ]
                     | None -> [])))
               s.cache)) ])

(* ---- text dashboard ---- *)

let render ?prev ~socket s =
  let b = Buffer.create 512 in
  let line fmt = Printf.ksprintf (fun l -> Buffer.add_string b (l ^ "\n")) fmt in
  line "acstab top — %s (%s, jobs %d)" socket s.protocol s.jobs;
  let rate =
    match Option.bind prev (fun p -> request_rate ~prev:p s) with
    | Some r -> Printf.sprintf " (%.1f/s)" r
    | None -> ""
  in
  line "requests %d%s   errors %d   in-flight %d (hw %d)   connections %d"
    s.requests rate s.errors s.inflight s.inflight_high_water s.connections;
  line "latency ms   p50 %.3g   p90 %.3g   p99 %.3g   max %.3g   (n=%d)"
    s.latency.p50_ms s.latency.p90_ms s.latency.p99_ms s.latency.max_ms
    s.latency.count;
  line "pool         busy %d/%d   queued %d" s.pool_busy s.jobs s.pool_queue;
  line "%-8s %11s %8s %8s %8s %7s" "cache" "entries" "hits" "misses"
    "evicted" "hit%";
  List.iter
    (fun row ->
      line "%-8s %7d/%3d %8d %8d %8d %7s" row.family row.entries
        row.capacity row.hits row.misses row.evictions
        (match hit_ratio row with
         | Some r -> Printf.sprintf "%.1f%%" (100. *. r)
         | None -> "-"))
    s.cache;
  Buffer.contents b
