open Numerics

(* Compiled per-circuit solve kernel (ROADMAP item 3).

   [Ac_plan] already amortises the symbolic analysis: one DFS + pivot
   search per sweep, then a numeric refactorisation per frequency point.
   But that refactorisation still *interprets* the frozen pattern — per
   point it allocates fresh column buffers and a boxed [Complex.t] value
   array, walks CSC metadata through bounds-checked lookups, and pays a
   per-right-hand-side copy in the batched solve. This module treats the
   symbolic analysis as a compilation target instead: [compile] flattens
   the elimination schedule into straight-line index arrays once per
   circuit, and each frequency point then runs a fixed factor/solve
   program over preallocated unboxed float planes — no per-point CSC
   traversal, no closures, no allocation on the hot loop.

   Bit-identity with the plan backend is a hard contract (the bench and
   the qcheck suite assert it): every arithmetic step below replicates
   the exact float operation sequence of [Scmat.refactor] /
   [Scmat.lu_solve] / [Scmat.lu_solve_many] over the stdlib [Complex]
   field — Smith's division, [Float.hypot] magnitudes, the
   multiply-operand order of the saxpy updates, the [re = 0 && im = 0]
   sparsity skips, and the single-RHS back-substitution special case
   (divide by the diagonal rather than multiply by its reciprocal).
   Frequency points are batched: one [run] invocation advances a whole
   chunk of the sweep against one workspace, so chunk dispatch cost is
   amortised and Domain-parallel chunks write disjoint output cells. *)

type t = {
  plan : Ac_plan.t;        (* fallback + sampled-health path *)
  n : int;
  (* shared CSC skeleton (uncopied from the plan; read-only) *)
  colptr : int array;
  rowidx : int array;
  gvals : float array;
  cvals : float array;
  (* flattened elimination schedule *)
  rowperm : int array;     (* pivot position -> original row *)
  l_ptr : int array;       (* L columns, keyed by pivot column *)
  l_idx : int array;       (* original row indices *)
  u_ptr : int array;       (* U columns: deps ascending, diagonal last *)
  u_col : int array;       (* dependency pivot position (diag slot: j) *)
  u_row : int array;       (* rowperm.(u_col), the work cell it names *)
  lnnz : int;
  unnz : int;
}

type totals = {
  compiles : int;
  points : int;
  fallback : int;
  batch_max : int;
}

(* Registered with [Obs.Counter] so traces, --metrics summaries and the
   serve stats verb carry the same values the tests assert (warm cache
   repeat = zero compiles; one point per frequency). *)
let n_compiles = Obs.Counter.make "kernel.compiles"
let n_points = Obs.Counter.make "kernel.points"
let n_fallback = Obs.Counter.make "kernel.fallback"
let batch_max_counter = Obs.Counter.make "kernel.batch_max"

let totals () =
  { compiles = Obs.Counter.value n_compiles;
    points = Obs.Counter.value n_points;
    fallback = Obs.Counter.value n_fallback;
    batch_max = Obs.Counter.value batch_max_counter }

let size t = t.n

(* Frequency points handed to one workspace invocation. Large enough to
   amortise workspace setup and chunk dispatch, small enough that the
   pool still load-balances dense sweeps across workers. *)
let chunk = 32

let compile plan =
  let t0 = Obs.Span.enter () in
  let colptr, rowidx, gvals, cvals = Ac_plan.skeleton plan in
  let sch = Scmat.schedule_of (Ac_plan.symbolic plan) in
  let n = sch.Scmat.sched_n in
  let lnnz = Array.fold_left (fun a c -> a + Array.length c) 0
      sch.Scmat.sched_l in
  let unnz = Array.fold_left (fun a c -> a + Array.length c) 0
      sch.Scmat.sched_u in
  let l_ptr = Array.make (n + 1) 0 in
  let l_idx = Array.make (Int.max 1 lnnz) 0 in
  let u_ptr = Array.make (n + 1) 0 in
  let u_col = Array.make unnz 0 in
  let u_row = Array.make unnz 0 in
  let rowperm = sch.Scmat.sched_rowperm in
  for j = 0 to n - 1 do
    let lc = sch.Scmat.sched_l.(j) in
    let lj = Array.length lc in
    Array.blit lc 0 l_idx l_ptr.(j) lj;
    l_ptr.(j + 1) <- l_ptr.(j) + lj;
    let uc = sch.Scmat.sched_u.(j) in
    let uj = Array.length uc in
    let u0 = u_ptr.(j) in
    for q = 0 to uj - 1 do
      u_col.(u0 + q) <- uc.(q);
      u_row.(u0 + q) <- rowperm.(uc.(q))
    done;
    u_ptr.(j + 1) <- u0 + uj
  done;
  Obs.Counter.incr n_compiles;
  let k =
    { plan; n; colptr; rowidx; gvals; cvals; rowperm;
      l_ptr; l_idx; u_ptr; u_col; u_row; lnnz; unnz }
  in
  Obs.Span.leave "kernel.compile"
    ~args:[ ("unknowns", n); ("lnnz", lnnz); ("unnz", unnz) ]
    t0;
  k

type workspace = {
  k : t;
  rhs : Complex.t array array;  (* original batch: fallback + health *)
  m : int;
  rhs_re : float array array;   (* m x n unboxed right-hand-side planes *)
  rhs_im : float array array;
  w_re : float array array;     (* forward/backward work planes *)
  w_im : float array array;
  s_re : float array array;     (* solution planes, natural indexing *)
  s_im : float array array;
  x_re : float array;           (* factor work vector, original rows *)
  x_im : float array;
  l_vre : float array;          (* factored L values along l_idx *)
  l_vim : float array;
  u_vre : float array;          (* factored U values along u_col *)
  u_vim : float array;
  q : float array;              (* cdiv result cell, avoids tuple alloc *)
}

let workspace k ~rhs =
  let m = Array.length rhs in
  let n = k.n in
  Array.iter
    (fun b ->
      if Array.length b <> n then invalid_arg "Kernel.workspace: rhs size")
    rhs;
  let planes () = Array.init m (fun _ -> Array.make n 0.) in
  { k; rhs; m;
    rhs_re =
      Array.init m (fun s -> Array.init n (fun i -> rhs.(s).(i).Cx.re));
    rhs_im =
      Array.init m (fun s -> Array.init n (fun i -> rhs.(s).(i).Cx.im));
    w_re = planes (); w_im = planes ();
    s_re = planes (); s_im = planes ();
    x_re = Array.make n 0.; x_im = Array.make n 0.;
    l_vre = Array.make (Int.max 1 k.lnnz) 0.;
    l_vim = Array.make (Int.max 1 k.lnnz) 0.;
    u_vre = Array.make k.unnz 0.;
    u_vim = Array.make k.unnz 0.;
    q = Array.make 2 0. }

(* Smith's complex division, the exact float sequence of the stdlib
   [Complex.div]; the quotient lands in [ws.q] so the hot loop allocates
   nothing. *)
let[@inline] cdiv ws are aim bre bim =
  if Float.abs bre >= Float.abs bim then begin
    let r = bim /. bre in
    let d = bre +. (r *. bim) in
    ws.q.(0) <- (are +. (r *. aim)) /. d;
    ws.q.(1) <- (aim -. (r *. are)) /. d
  end
  else begin
    let r = bre /. bim in
    let d = bim +. (r *. bre) in
    ws.q.(0) <- ((r *. are) +. aim) /. d;
    ws.q.(1) <- ((r *. aim) -. are) /. d
  end

exception Stale

(* Numeric factorisation along the flattened schedule: the straight-line
   replay of [Scmat.refactor] with the frozen pivot order. Returns
   [false] (work vector cleared) when the frozen pivots go numerically
   stale at this frequency — the caller then falls back to a fresh
   pivoting factorisation exactly like [Ac_plan.factor_of]. *)
let factor ws ~omega =
  let k = ws.k in
  let n = k.n in
  let colptr = k.colptr and rowidx = k.rowidx in
  let gvals = k.gvals and cvals = k.cvals in
  let l_ptr = k.l_ptr and l_idx = k.l_idx in
  let u_ptr = k.u_ptr and u_col = k.u_col and u_row = k.u_row in
  let x_re = ws.x_re and x_im = ws.x_im in
  let l_vre = ws.l_vre and l_vim = ws.l_vim in
  let u_vre = ws.u_vre and u_vim = ws.u_vim in
  try
    for j = 0 to n - 1 do
      (* Scatter A(:,j) = G(:,j) + jw C(:,j). *)
      for p = colptr.(j) to colptr.(j + 1) - 1 do
        let r = Array.unsafe_get rowidx p in
        Array.unsafe_set x_re r (Array.unsafe_get gvals p);
        Array.unsafe_set x_im r (omega *. Array.unsafe_get cvals p)
      done;
      let u0 = u_ptr.(j) and u1 = u_ptr.(j + 1) in
      (* Eliminate against earlier pivot columns, ascending order. *)
      for q = u0 to u1 - 2 do
        let dep = Array.unsafe_get u_col q in
        let xr = Array.unsafe_get u_row q in
        let xkre = Array.unsafe_get x_re xr in
        let xkim = Array.unsafe_get x_im xr in
        Array.unsafe_set u_vre q xkre;
        Array.unsafe_set u_vim q xkim;
        if not (xkre = 0. && xkim = 0.) then begin
          let t0 = Array.unsafe_get l_ptr dep in
          let t1 = Array.unsafe_get l_ptr (dep + 1) in
          for t = t0 to t1 - 1 do
            let r = Array.unsafe_get l_idx t in
            let lre = Array.unsafe_get l_vre t in
            let lim = Array.unsafe_get l_vim t in
            Array.unsafe_set x_re r
              (Array.unsafe_get x_re r -. ((lre *. xkre) -. (lim *. xkim)));
            Array.unsafe_set x_im r
              (Array.unsafe_get x_im r -. ((lre *. xkim) +. (lim *. xkre)))
          done
        end
      done;
      let dr = Array.unsafe_get u_row (u1 - 1) in
      let pvre = Array.unsafe_get x_re dr in
      let pvim = Array.unsafe_get x_im dr in
      let pmag = Float.hypot pvre pvim in
      if pmag = 0. || not (Float.is_finite pmag) then raise_notrace Stale;
      let t0 = l_ptr.(j) and t1 = l_ptr.(j + 1) in
      (* Stale-pivot test, identical to refactor ~pivot_tol. *)
      let colmax = ref pmag in
      for t = t0 to t1 - 1 do
        let r = Array.unsafe_get l_idx t in
        colmax :=
          Float.max !colmax
            (Float.hypot (Array.unsafe_get x_re r) (Array.unsafe_get x_im r))
      done;
      if pmag < Ac_plan.pivot_tol *. !colmax then raise_notrace Stale;
      Array.unsafe_set u_vre (u1 - 1) pvre;
      Array.unsafe_set u_vim (u1 - 1) pvim;
      cdiv ws 1. 0. pvre pvim;
      let ipvre = ws.q.(0) and ipvim = ws.q.(1) in
      for t = t0 to t1 - 1 do
        let r = Array.unsafe_get l_idx t in
        let xre = Array.unsafe_get x_re r in
        let xim = Array.unsafe_get x_im r in
        Array.unsafe_set l_vre t ((xre *. ipvre) -. (xim *. ipvim));
        Array.unsafe_set l_vim t ((xre *. ipvim) +. (xim *. ipvre))
      done;
      (* The touched work entries are exactly the frozen column pattern. *)
      for q = u0 to u1 - 1 do
        let r = Array.unsafe_get u_row q in
        Array.unsafe_set x_re r 0.;
        Array.unsafe_set x_im r 0.
      done;
      for t = t0 to t1 - 1 do
        let r = Array.unsafe_get l_idx t in
        Array.unsafe_set x_re r 0.;
        Array.unsafe_set x_im r 0.
      done
    done;
    true
  with Stale ->
    (* Partial column state stays behind; wipe the work vector whole so
       the workspace is clean for the next point of the chunk. *)
    Array.fill x_re 0 n 0.;
    Array.fill x_im 0 n 0.;
    false

(* Forward + backward substitution for the whole batch against the
   factored planes. Mirrors [lu_solve_many] — including its single-RHS
   delegation to [lu_solve], whose back-substitution divides by the
   diagonal instead of multiplying by a precomputed reciprocal (not the
   same float, and single-node sweeps go through that path). *)
let solve_batch ws =
  let k = ws.k in
  let n = k.n and m = ws.m in
  let rowperm = k.rowperm in
  let l_ptr = k.l_ptr and l_idx = k.l_idx in
  let u_ptr = k.u_ptr and u_row = k.u_row in
  let l_vre = ws.l_vre and l_vim = ws.l_vim in
  let u_vre = ws.u_vre and u_vim = ws.u_vim in
  for s = 0 to m - 1 do
    Array.blit ws.rhs_re.(s) 0 ws.w_re.(s) 0 n;
    Array.blit ws.rhs_im.(s) 0 ws.w_im.(s) 0 n
  done;
  (* Forward: y in pivot order over the original-row-indexed work. *)
  for kc = 0 to n - 1 do
    let pr = Array.unsafe_get rowperm kc in
    let t0 = Array.unsafe_get l_ptr kc in
    let t1 = Array.unsafe_get l_ptr (kc + 1) in
    for s = 0 to m - 1 do
      let w_re = Array.unsafe_get ws.w_re s in
      let w_im = Array.unsafe_get ws.w_im s in
      let ykre = Array.unsafe_get w_re pr in
      let ykim = Array.unsafe_get w_im pr in
      if not (ykre = 0. && ykim = 0.) then
        for t = t0 to t1 - 1 do
          let r = Array.unsafe_get l_idx t in
          let lre = Array.unsafe_get l_vre t in
          let lim = Array.unsafe_get l_vim t in
          Array.unsafe_set w_re r
            (Array.unsafe_get w_re r -. ((lre *. ykre) -. (lim *. ykim)));
          Array.unsafe_set w_im r
            (Array.unsafe_get w_im r -. ((lre *. ykim) +. (lim *. ykre)))
        done
    done
  done;
  (* Backward on U (diagonal stored last, entries keyed by pivot
     position through u_row). *)
  for kc = n - 1 downto 0 do
    let u0 = Array.unsafe_get u_ptr kc in
    let u1 = Array.unsafe_get u_ptr (kc + 1) in
    let dre = Array.unsafe_get u_vre (u1 - 1) in
    let dim = Array.unsafe_get u_vim (u1 - 1) in
    let pr = Array.unsafe_get rowperm kc in
    if m > 1 then begin
      (* One reciprocal per column amortised over the batch. *)
      cdiv ws 1. 0. dre dim;
      let idre = ws.q.(0) and idim = ws.q.(1) in
      for s = 0 to m - 1 do
        let w_re = Array.unsafe_get ws.w_re s in
        let w_im = Array.unsafe_get ws.w_im s in
        let wre = Array.unsafe_get w_re pr in
        let wim = Array.unsafe_get w_im pr in
        let xkre = (wre *. idre) -. (wim *. idim) in
        let xkim = (wre *. idim) +. (wim *. idre) in
        (Array.unsafe_get ws.s_re s).(kc) <- xkre;
        (Array.unsafe_get ws.s_im s).(kc) <- xkim;
        if not (xkre = 0. && xkim = 0.) then
          for q = u0 to u1 - 2 do
            let i = Array.unsafe_get u_row q in
            let ure = Array.unsafe_get u_vre q in
            let uim = Array.unsafe_get u_vim q in
            Array.unsafe_set w_re i
              (Array.unsafe_get w_re i -. ((ure *. xkre) -. (uim *. xkim)));
            Array.unsafe_set w_im i
              (Array.unsafe_get w_im i -. ((ure *. xkim) +. (uim *. xkre)))
          done
      done
    end
    else if m = 1 then begin
      let w_re = ws.w_re.(0) and w_im = ws.w_im.(0) in
      cdiv ws (Array.unsafe_get w_re pr) (Array.unsafe_get w_im pr) dre dim;
      let xkre = ws.q.(0) and xkim = ws.q.(1) in
      ws.s_re.(0).(kc) <- xkre;
      ws.s_im.(0).(kc) <- xkim;
      if not (xkre = 0. && xkim = 0.) then
        for q = u0 to u1 - 2 do
          let i = Array.unsafe_get u_row q in
          let ure = Array.unsafe_get u_vre q in
          let uim = Array.unsafe_get u_vim q in
          Array.unsafe_set w_re i
            (Array.unsafe_get w_re i -. ((ure *. xkre) -. (uim *. xkim)));
          Array.unsafe_set w_im i
            (Array.unsafe_get w_im i -. ((ure *. xkim) +. (uim *. xkre)))
        done
    end
  done

let mag_inf v = Array.fold_left (fun acc z -> Float.max acc (Cx.mag z)) 0. v

(* One frequency point: flat factor + batched substitution, falling back
   to a fresh pivoting factorisation (the exact [Ac_plan.factor_of]
   fallback values) when the frozen order is stale here. Health is
   sampled on the same [Health.tick] cadence as the plan backend. *)
let solve_point ?health ws ~omega =
  if factor ws ~omega then begin
    solve_batch ws;
    if ws.m > 0 && Health.tick () then begin
      let n = ws.k.n in
      let x =
        Array.init n (fun i -> Cx.make ws.s_re.(0).(i) ws.s_im.(0).(i))
      in
      Ac_plan.point_health ?meter:health ws.k.plan ~omega ~x ~b:ws.rhs.(0)
    end;
    `Flat
  end
  else begin
    Obs.Counter.incr n_fallback;
    let a = Ac_plan.matrix_at ws.k.plan ~omega in
    let f = snd (Scmat.analyze a) in
    let xs = Scmat.lu_solve_many f ws.rhs in
    if ws.m > 0 && Health.tick () then begin
      let rcond = Cond.rcond (Cond.sparse a f) in
      let growth = Scmat.pivot_growth a f in
      let residual =
        Health.relative_residual ~norm1:(Scmat.norm1 a)
          ~residual_inf:(Scmat.residual_inf a xs.(0) ws.rhs.(0))
          ~x_inf:(mag_inf xs.(0)) ~b_inf:(mag_inf ws.rhs.(0))
      in
      Health.record ?meter:health ~rcond ~growth ~residual ()
    end;
    `Fallback xs
  end

let run ?health ws ~freqs ~lo ~hi ~sel ~outs =
  if Array.length sel <> ws.m || Array.length outs <> ws.m then
    invalid_arg "Kernel.run: sel/outs arity";
  Obs.Counter.add n_points (hi - lo);
  Obs.Counter.record_max batch_max_counter (hi - lo);
  for fk = lo to hi - 1 do
    let omega = 2. *. Float.pi *. freqs.(fk) in
    match solve_point ?health ws ~omega with
    | `Flat ->
      for q = 0 to ws.m - 1 do
        let i = sel.(q) in
        outs.(q).(fk) <- Cx.make ws.s_re.(q).(i) ws.s_im.(q).(i)
      done
    | `Fallback xs ->
      for q = 0 to ws.m - 1 do
        outs.(q).(fk) <- xs.(q).(sel.(q))
      done
  done

let solve_many ?health t ~omega bs =
  let ws = workspace t ~rhs:bs in
  Obs.Counter.add n_points 1;
  Obs.Counter.record_max batch_max_counter 1;
  match solve_point ?health ws ~omega with
  | `Flat ->
    Array.init ws.m (fun s ->
        Array.init t.n (fun i -> Cx.make ws.s_re.(s).(i) ws.s_im.(s).(i)))
  | `Fallback xs -> xs
