open Numerics

(* A compiled AC solve plan (DESIGN.md "AC solve pipeline").

   The small-signal MNA system of a linear(ised) circuit is
       A(w) = G + jw C
   where G collects every frequency-independent stamp (conductances,
   transconductances, controlled-source gains, source/inductor incidence
   rows, gmin) and C every reactive coefficient (capacitances, negated
   inductances and mutuals). Both share one sparsity pattern, and that
   pattern does not depend on frequency. Compiling the pattern once per
   sweep turns each frequency point into
     - an O(nnz) numeric fill of the shared CSC skeleton, and
     - one numeric refactorisation along the frozen symbolic analysis,
   with no dense matrix and no per-point triplet harvesting. One factor
   then serves every probed node at that frequency via a multi-RHS batch
   solve. *)

type totals = {
  symbolic : int;
  numeric : int;
  fallback : int;
  rhs : int;
}

(* Process-wide counters, registered with [Obs.Counter] so traces,
   [--metrics] summaries and diagnostics reports carry the same values
   the tests assert (atomic: the Domain-parallel sweep paths bump them
   concurrently). Tests and the benchmark assert the "one symbolic
   analysis per sweep, one numeric factorisation per frequency point"
   contract from deltas of these. *)
let n_symbolic = Obs.Counter.make "acplan.symbolic"
let n_numeric = Obs.Counter.make "acplan.numeric"
let n_fallback = Obs.Counter.make "acplan.fallback"
let n_rhs = Obs.Counter.make "acplan.rhs"
let rhs_batch_max = Obs.Counter.make "acplan.rhs_batch_max"

let totals () =
  { symbolic = Obs.Counter.value n_symbolic;
    numeric = Obs.Counter.value n_numeric;
    fallback = Obs.Counter.value n_fallback;
    rhs = Obs.Counter.value n_rhs }

type t = {
  size : int;
  colptr : int array;
  rowidx : int array;
  gvals : float array;     (* constant part G, aligned with rowidx *)
  cvals : float array;     (* reactive part C: A = G + jw C *)
  sym : Scmat.symbolic;    (* frozen ordering + fill-in pattern *)
}

let size t = t.size
let nnz t = t.colptr.(t.size)

(* Below this unknown count the dense path's simplicity wins over plan
   compilation; above it the plan is both the fast path and the default.
   (The crossover is shallow: even ~15-unknown systems refactor faster
   than they dense-LU, so the cutoff just keeps toy circuits on the
   simple oracle path.) *)
let dense_cutoff = 10

(* Relative pivot floor below which a frozen pivot order is declared
   stale for this frequency and the plan falls back to a fresh pivoting
   factorisation: bounds element growth (and thus the solve error) at
   ~1e6 while keeping fallbacks rare. *)
let pivot_tol = 1e-6

(* ---- skeleton compilation ---- *)

let compile ?(gmin = 1e-12) ?(omega_ref = 2e6 *. Float.pi) ~op mna =
  let t_compile = Obs.Span.enter () in
  let size = mna.Mna.size in
  (* Accumulate (g, c) per matrix entry; ground (-1) rows/columns drop. *)
  let tbl : (int, float ref * float ref) Hashtbl.t =
    Hashtbl.create (4 * size)
  in
  let add i j g c =
    if i >= 0 && j >= 0 then begin
      let key = (j * size) + i in
      let gr, cr =
        match Hashtbl.find_opt tbl key with
        | Some cell -> cell
        | None ->
          let cell = (ref 0., ref 0.) in
          Hashtbl.add tbl key cell;
          cell
      in
      gr := !gr +. g;
      cr := !cr +. c
    end
  in
  let quad i j g c =
    add i i g c;
    add j j g c;
    add i j (-.g) (-.c);
    add j i (-.g) (-.c)
  in
  let incidence i j br =
    add i br 1. 0.;
    add j br (-1.) 0.;
    add br i 1. 0.;
    add br j (-1.) 0.
  in
  Array.iter
    (fun (_, e) ->
      match e with
      | Mna.E_res { i; j; g } -> quad i j g 0.
      | Mna.E_cap { i; j; c; _ } -> quad i j 0. c
      | Mna.E_ind { i; j; l; br; _ } ->
        incidence i j br;
        add br br 0. (-.l)
      | Mna.E_vsrc { i; j; br; _ } -> incidence i j br
      | Mna.E_isrc _ -> ()
      | Mna.E_vcvs { i; j; ci; cj; br; gain } ->
        incidence i j br;
        add br ci (-.gain) 0.;
        add br cj gain 0.
      | Mna.E_vccs { i; j; ci; cj; gm } ->
        add i ci gm 0.;
        add i cj (-.gm) 0.;
        add j ci (-.gm) 0.;
        add j cj gm 0.
      | Mna.E_cccs { i; j; cbr; gain } ->
        add i cbr gain 0.;
        add j cbr (-.gain) 0.
      | Mna.E_ccvs { i; j; cbr; br; rm } ->
        incidence i j br;
        add br cbr (-.rm) 0.
      | Mna.E_mut { br1; br2; m } ->
        add br1 br2 0. (-.m);
        add br2 br1 0. (-.m)
      | Mna.E_diode _ | Mna.E_bjt _ | Mna.E_mos _ -> ())
    mna.Mna.elems;
  List.iter
    (function
      | Linearize.L_g { i; j; g } -> quad i j g 0.
      | Linearize.L_c { i; j; c } -> quad i j 0. c
      | Linearize.L_quad { out_p; out_m; ctrl_p; ctrl_m; gm } ->
        add out_p ctrl_p gm 0.;
        add out_p ctrl_m (-.gm) 0.;
        add out_m ctrl_p (-.gm) 0.;
        add out_m ctrl_m gm 0.)
    (Linearize.of_op op);
  for i = 0 to mna.Mna.n_nodes - 1 do
    add i i gmin 0.
  done;
  (* Flatten to CSC, columns then rows ascending. *)
  let entries =
    Hashtbl.fold (fun key (g, c) acc -> (key, !g, !c) :: acc) tbl []
    |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)
  in
  let n = List.length entries in
  let colptr = Array.make (size + 1) 0 in
  let rowidx = Array.make n 0 in
  let gvals = Array.make n 0. and cvals = Array.make n 0. in
  List.iteri
    (fun p (key, g, c) ->
      let j = key / size and i = key mod size in
      colptr.(j + 1) <- colptr.(j + 1) + 1;
      rowidx.(p) <- i;
      gvals.(p) <- g;
      cvals.(p) <- c)
    entries;
  for j = 0 to size - 1 do
    colptr.(j + 1) <- colptr.(j + 1) + colptr.(j)
  done;
  (* One symbolic analysis per plan (= per sweep). The reference
     frequency only seeds the pivot order; [omega_ref] defaults to
     1 MHz, mid-band for the tool's decade sweeps. *)
  let values =
    Array.init n (fun p -> Cx.make gvals.(p) (omega_ref *. cvals.(p)))
  in
  let a = Scmat.of_csc ~rows:size ~cols:size ~colptr ~rowidx values in
  let sym, _ = Scmat.analyze a in
  Obs.Counter.incr n_symbolic;
  let plan = { size; colptr; rowidx; gvals; cvals; sym } in
  Obs.Span.leave "acplan.compile"
    ~args:[ ("unknowns", size); ("nnz", n) ]
    t_compile;
  plan

let matrix_at t ~omega =
  let values =
    Array.init (nnz t) (fun p ->
        Cx.make t.gvals.(p) (omega *. t.cvals.(p)))
  in
  Scmat.of_csc ~rows:t.size ~cols:t.size ~colptr:t.colptr
    ~rowidx:t.rowidx values

let factor_of t a =
  let f =
    try Scmat.refactor ~pivot_tol t.sym a
    with Sparse.Singular _ ->
      (* Frozen pivots inadequate at this frequency: re-pivot here. The
         fresh analysis is used for this point only — the shared plan
         stays immutable so Domain-parallel sweeps need no locking. *)
      Obs.Counter.incr n_fallback;
      Obs.Counter.incr n_symbolic;
      snd (Scmat.analyze a)
  in
  Obs.Counter.incr n_numeric;
  f

(* Sampled health of a factorisation: a Hager/Higham rcond estimate
   (a handful of extra solves on the factor we already hold) plus
   element growth; the residual is only known to callers that solve. *)
let factor_health ?meter a f =
  let rcond = Cond.rcond (Cond.sparse a f) in
  let growth = Scmat.pivot_growth a f in
  Health.record ?meter ~rcond ~growth ~residual:0. ()

let factor_at ?health t ~omega =
  let a = matrix_at t ~omega in
  let f = factor_of t a in
  if Health.tick () then factor_health ?meter:health a f;
  f

let mag_inf v =
  Array.fold_left (fun acc z -> Float.max acc (Cx.mag z)) 0. v

let solve_many ?health t ~omega bs =
  let a = matrix_at t ~omega in
  let f = factor_of t a in
  Obs.Counter.add n_rhs (Array.length bs);
  Obs.Counter.record_max rhs_batch_max (Array.length bs);
  let xs = Scmat.lu_solve_many f bs in
  if Array.length bs > 0 && Health.tick () then begin
    let rcond = Cond.rcond (Cond.sparse a f) in
    let growth = Scmat.pivot_growth a f in
    let residual =
      Health.relative_residual ~norm1:(Scmat.norm1 a)
        ~residual_inf:(Scmat.residual_inf a xs.(0) bs.(0))
        ~x_inf:(mag_inf xs.(0)) ~b_inf:(mag_inf bs.(0))
    in
    Health.record ?meter:health ~rcond ~growth ~residual ()
  end;
  xs

let solve ?health t ~omega b = (solve_many ?health t ~omega [| b |]).(0)

(* ---- kernel-compiler exports ---- *)

(* The shared skeleton and frozen analysis, handed out uncopied so
   Engine.Kernel can flatten them without doubling the plan's footprint.
   Callers must treat every array as read-only: plans are shared across
   Domain-parallel sweep workers precisely because they are immutable. *)
let skeleton t = (t.colptr, t.rowidx, t.gvals, t.cvals)
let symbolic t = t.sym

(* Out-of-band health probe for compiled kernels: the kernel's hot loop
   keeps no Scmat factor around, so sampled points rebuild one here to
   price rcond/growth/residual. No counters move — this is telemetry,
   not part of the factorisation budget the tests assert. *)
let point_health ?meter t ~omega ~x ~b =
  let a = matrix_at t ~omega in
  let f =
    try Scmat.refactor ~pivot_tol t.sym a
    with Sparse.Singular _ -> snd (Scmat.analyze a)
  in
  let rcond = Cond.rcond (Cond.sparse a f) in
  let growth = Scmat.pivot_growth a f in
  let residual =
    Health.relative_residual ~norm1:(Scmat.norm1 a)
      ~residual_inf:(Scmat.residual_inf a x b)
      ~x_inf:(mag_inf x) ~b_inf:(mag_inf b)
  in
  Health.record ?meter ~rcond ~growth ~residual ()
