(** Compiled AC solve plan: the fast path of the sweep pipeline.

    Compiles {!Mna.elems} plus the linearised DC-operating-point
    primitives once into a frequency-parameterised sparse skeleton — a
    constant conductance part [G] and a reactive part [C] sharing one
    precomputed CSC pattern, so the system at angular frequency [w] is
    [G + jwC]. Each frequency point of a sweep then costs an O(nnz)
    numeric fill plus one numeric refactorisation along a symbolic
    analysis computed once per plan; one factor serves every probed node
    at that frequency through a multi-RHS batch solve.

    Plans are immutable after {!compile}, so one plan may be shared by
    Domain-parallel sweep workers without locking. *)

type t

val compile : ?gmin:float -> ?omega_ref:float -> op:Dcop.t -> Mna.t -> t
(** Build the skeleton and run the one-per-sweep symbolic analysis.
    [gmin] (default 1e-12) is added on node diagonals exactly as in the
    dense path. [omega_ref] (default 2*pi*1e6) seeds the pivot order;
    any in-band frequency works — frequencies where the frozen order
    goes numerically stale re-pivot automatically. *)

val size : t -> int
val nnz : t -> int

val dense_cutoff : int
(** Unknown count at or below which callers should prefer the dense
    oracle path over plan compilation. *)

val matrix_at : t -> omega:float -> Numerics.Scmat.t
(** Numeric fill [G + jwC] of the shared pattern (O(nnz); fresh value
    array per call, pattern arrays shared). *)

val factor_at : ?health:Health.meter -> t -> omega:float -> Numerics.Scmat.factor
(** One numeric refactorisation at [omega], falling back to a fresh
    pivoting factorisation when the frozen pivot order is numerically
    inadequate at this frequency (counted in {!totals}). With [health],
    sampled factorisations (see {!Health.tick}) record an rcond estimate
    and pivot growth. *)

val solve_many :
  ?health:Health.meter ->
  t -> omega:float -> Complex.t array array -> Complex.t array array
(** One factorisation, many right-hand sides: the batched probing
    solve. [solve_many t ~omega bs] factors once and solves every
    excitation of [bs]. With [health], sampled points additionally
    record a scaled residual of the first right-hand side. *)

val solve :
  ?health:Health.meter -> t -> omega:float -> Complex.t array ->
  Complex.t array

val pivot_tol : float
(** Relative pivot floor under which a frozen pivot order is declared
    stale for a frequency point ({!factor_at} then falls back to a fresh
    pivoting factorisation). Exported so {!Engine.Kernel} applies the
    identical stale-pivot test on its flattened schedule. *)

val skeleton : t -> int array * int array * float array * float array
(** [(colptr, rowidx, gvals, cvals)] — the shared CSC skeleton behind
    the plan, uncopied. Read-only: mutating any of these breaks every
    worker sharing the plan. Intended for {!Engine.Kernel.compile}. *)

val symbolic : t -> Numerics.Scmat.symbolic
(** The frozen one-per-plan symbolic analysis (same sharing caveat as
    {!skeleton}). *)

val point_health :
  ?meter:Health.meter -> t -> omega:float -> x:Complex.t array ->
  b:Complex.t array -> unit
(** Out-of-band health probe for sampled kernel points: rebuilds a
    factor at [omega] to record rcond/growth plus the scaled residual of
    solution [x] against right-hand side [b]. Moves no {!totals}
    counters. *)

type totals = {
  symbolic : int;  (** symbolic analyses (one per plan + fallbacks) *)
  numeric : int;   (** numeric factorisations (one per frequency point) *)
  fallback : int;  (** points where frozen pivots were re-derived *)
  rhs : int;       (** right-hand sides solved *)
}

val totals : unit -> totals
(** Process-wide counters since start-up; take deltas around a sweep to
    assert its factorisation budget (the benchmark and tests do). The
    counters live in the [Obs.Counter] registry as [acplan.symbolic],
    [acplan.numeric], [acplan.fallback] and [acplan.rhs] (plus the
    high-water mark [acplan.rhs_batch_max]), so traces, [--metrics]
    output and diagnostics reports carry the same values. Note that
    [Obs.Counter.reset] zeroes them. *)
