type options = {
  gmin : float;
  reltol : float;
  vntol : float;
  abstol : float;
  max_iter : int;
  max_step : float;
}

let default_options =
  { gmin = 1e-12; reltol = 1e-6; vntol = 1e-9; abstol = 1e-12;
    max_iter = 150; max_step = 5. }

type strategy = Direct | Gmin_stepping | Source_stepping

type t = {
  mna : Mna.t;
  x : float array;
  iterations : int;
  strategy : strategy;
}

exception No_convergence of string

let log_src = Logs.Src.create "engine.dcop" ~doc:"DC operating point"

module Log = (val Logs.src_log log_src : Logs.LOG)

(* Homotopy fallbacks, next to the acplan.* counters: a deck that only
   converges through the ladder is worth flagging in a manifest diff. *)
let n_gmin_fallback = Obs.Counter.make "dcop.fallback_gmin"
let n_source_fallback = Obs.Counter.make "dcop.fallback_source"

(* Every public operating-point solve, fallbacks or not. The cache layer
   ([Tool.Cache]) asserts this stays flat across warm requests: a cache
   hit must not re-solve DC. *)
let n_solves = Obs.Counter.make "dcop.solves"

(* Solves that went through the sparse linear fast path below. *)
let n_sparse_linear = Obs.Counter.make "dcop.sparse_linear"

let converged opts ~n_nodes x_old x_new =
  let ok = ref true in
  Array.iteri
    (fun i v_new ->
      let v_old = x_old.(i) in
      let atol = if i < n_nodes then opts.vntol else opts.abstol in
      let tol =
        (opts.reltol *. Float.max (Float.abs v_new) (Float.abs v_old)) +. atol
      in
      if Float.abs (v_new -. v_old) > tol then ok := false)
    x_new;
  !ok

let newton ?(unknown_name = fun k -> Printf.sprintf "unknown %d" k) ~size
    ~n_nodes ~load ~x0 opts =
  let x = Array.copy x0 in
  let result = ref None in
  let abort = ref None in
  let iter = ref 0 in
  (try
     while !result = None && !iter < opts.max_iter do
       incr iter;
       let a = Numerics.Rmat.create size size in
       let b = Array.make size 0. in
       let limited = load ~x a b in
       let x_new =
         try Numerics.Rmat.solve a b
         with Numerics.Dense.Singular col ->
           raise (No_convergence
                    (Printf.sprintf "singular matrix at %s"
                       (unknown_name col)))
       in
       if Array.exists (fun v -> not (Float.is_finite v)) x_new then
         raise (No_convergence "non-finite solution");
       (* Clamp huge node-voltage excursions; junction limiting already
          bounds the exponentials, this guards LC/controlled-source blowups
          during early iterations. *)
       let worst = ref 0. in
       for i = 0 to n_nodes - 1 do
         worst := Float.max !worst (Float.abs (x_new.(i) -. x.(i)))
       done;
       let damp =
         if !worst > opts.max_step then opts.max_step /. !worst else 1.
       in
       let x_next =
         if damp = 1. then x_new
         else Array.mapi (fun i v -> x.(i) +. (damp *. (v -. x.(i)))) x_new
       in
       if (not limited) && damp = 1. && converged opts ~n_nodes x x_next
       then begin
         (* One matvec on the final Jacobian: the scaled residual of the
            converged solve, into the health histograms. *)
         let vec_inf v =
           Array.fold_left (fun acc e -> Float.max acc (Float.abs e)) 0. v
         in
         Health.record_dc_residual
           (Health.relative_residual ~norm1:(Numerics.Rmat.norm1 a)
              ~residual_inf:(Numerics.Rmat.residual_inf a x_next b)
              ~x_inf:(vec_inf x_next) ~b_inf:(vec_inf b));
         result := Some (x_next, !iter)
       end
       else Array.blit x_next 0 x 0 size
     done
   with No_convergence m ->
     result := None;
     iter := opts.max_iter;
     abort := Some m;
     Log.debug (fun f -> f "newton aborted: %s" m));
  match (!result, !abort) with
  | Some (x, n), _ -> Ok (x, n)
  | None, Some m -> Error m
  | None, None ->
    Error (Printf.sprintf "no convergence in %d iterations" !iter)

(* One Newton attempt at a given gmin and source scale. *)
let attempt mna opts ~gmin ~src_scale ~x0 =
  let limst = Stamps.make_limit_state mna in
  let load ~x a b =
    Stamps.stamp_static mna
      ~src_value:(fun spec -> src_scale *. spec.Circuit.Netlist.dc)
      a b;
    (* Inductors are DC shorts: branch equation v_i - v_j = 0. *)
    Array.iter
      (fun (_, e) ->
        match e with
        | Mna.E_ind { i; j; br; _ } ->
          Mna.stamp_mat a i br 1.;
          Mna.stamp_mat a j br (-1.);
          Mna.stamp_mat a br i 1.;
          Mna.stamp_mat a br j (-1.)
        | _ -> ())
      mna.Mna.elems;
    Stamps.stamp_gmin mna ~gmin a;
    Stamps.stamp_nonlinear mna ~x ~limst a b
  in
  newton ~unknown_name:(Mna.unknown_name mna) ~size:mna.Mna.size
    ~n_nodes:mna.Mna.n_nodes ~load ~x0 opts

(* Initial guess from the circuit's .nodeset directives: Newton starts at
   the hinted voltages and, for a multi-stable circuit, converges to the
   intended operating point. *)
let nodeset_x0 mna =
  let x = Array.make mna.Mna.size 0. in
  List.iter
    (function
      | Circuit.Netlist.Nodeset entries ->
        List.iter
          (fun (n, v) ->
            match Mna.node_index mna n with
            | i when i >= 0 -> x.(i) <- v
            | _ -> ()
            | exception Mna.Compile_error _ -> ())
          entries
      | _ -> ())
    (Circuit.Netlist.directives mna.Mna.circ);
  x

(* Simulator options from the netlist's .options card, over the
   defaults. An explicit [options] argument wins over both. *)
let circuit_options circ =
  let o k ~default = Circuit.Netlist.option_value circ k ~default in
  { gmin = o "gmin" ~default:default_options.gmin;
    reltol = o "reltol" ~default:default_options.reltol;
    vntol = o "vntol" ~default:default_options.vntol;
    abstol = o "abstol" ~default:default_options.abstol;
    max_iter =
      int_of_float
        (o "itl1" ~default:(float_of_int default_options.max_iter));
    max_step = o "maxstep" ~default:default_options.max_step }

(* ---- sparse linear fast path ---- *)

(* A circuit without junction devices has a constant Jacobian: its
   operating point is one linear solve, not a Newton iteration. The
   dense path allocates an O(size^2) matrix per iteration, which is the
   wall between the shipped op-amps and the 1k-10k-unknown synthetic
   benchmark decks; above this cutoff linear circuits go through one
   sparse Gilbert-Peierls factorisation instead. Below it the dense
   Newton oracle is kept unconditionally, so the shipped small decks
   (and their golden reports) take exactly the code path they always
   did. *)
let sparse_linear_cutoff = 256

let is_linear mna =
  Array.for_all
    (fun (_, e) ->
      match e with
      | Mna.E_diode _ | Mna.E_bjt _ | Mna.E_mos _ -> false
      | _ -> true)
    mna.Mna.elems

(* Mirror of [attempt]'s static stamps as sparse triplets: resistors and
   controlled sources via [Stamps.stamp_static]'s conventions, inductors
   as DC shorts, gmin on the node diagonal. Capacitors and mutual
   inductances carry no DC stamp. Returns [None] (caller falls back to
   dense Newton) on a singular or non-finite solve. *)
let sparse_linear_attempt mna opts =
  let size = mna.Mna.size in
  let b = Array.make size 0. in
  let ts = ref [] in
  let add i j v = if i >= 0 && j >= 0 && v <> 0. then ts := (i, j, v) :: !ts in
  let add_g i j g =
    add i i g;
    add j j g;
    add i j (-.g);
    add j i (-.g)
  in
  let add_branch i j br =
    add i br 1.;
    add j br (-1.);
    add br i 1.;
    add br j (-1.)
  in
  let rhs i v = if i >= 0 then b.(i) <- b.(i) +. v in
  Array.iter
    (fun (_, e) ->
      match e with
      | Mna.E_res { i; j; g } -> add_g i j g
      | Mna.E_cap _ | Mna.E_mut _ -> ()
      | Mna.E_ind { i; j; br; _ } -> add_branch i j br
      | Mna.E_vsrc { i; j; br; spec } ->
        add_branch i j br;
        rhs br spec.Circuit.Netlist.dc
      | Mna.E_isrc { i; j; spec } ->
        let v = spec.Circuit.Netlist.dc in
        rhs i (-.v);
        rhs j v
      | Mna.E_vcvs { i; j; ci; cj; br; gain } ->
        add_branch i j br;
        add br ci (-.gain);
        add br cj gain
      | Mna.E_vccs { i; j; ci; cj; gm } ->
        add i ci gm;
        add i cj (-.gm);
        add j ci (-.gm);
        add j cj gm
      | Mna.E_cccs { i; j; cbr; gain } ->
        add i cbr gain;
        add j cbr (-.gain)
      | Mna.E_ccvs { i; j; cbr; br; rm } ->
        add_branch i j br;
        add br cbr (-.rm)
      | Mna.E_diode _ | Mna.E_bjt _ | Mna.E_mos _ ->
        (* [is_linear] gates this path. *)
        assert false)
    mna.Mna.elems;
  for i = 0 to mna.Mna.n_nodes - 1 do
    add i i opts.gmin
  done;
  match
    let a = Numerics.Srmat.of_triplets ~rows:size ~cols:size !ts in
    let x = Numerics.Srmat.lu_solve (Numerics.Srmat.lu_factor a) b in
    (a, x)
  with
  | exception Numerics.Sparse.Singular _ -> None
  | a, x ->
    if Array.exists (fun v -> not (Float.is_finite v)) x then None
    else begin
      let vec_inf v =
        Array.fold_left (fun acc e -> Float.max acc (Float.abs e)) 0. v
      in
      Health.record_dc_residual
        (Health.relative_residual ~norm1:(Numerics.Srmat.norm1 a)
           ~residual_inf:(Numerics.Srmat.residual_inf a x b)
           ~x_inf:(vec_inf x) ~b_inf:(vec_inf b));
      Some x
    end

let solve ?options ?x0 ?force_strategy mna =
  Obs.Counter.incr n_solves;
  let options =
    match options with
    | Some o -> o
    | None -> circuit_options mna.Mna.circ
  in
  let x0 =
    match x0 with Some x -> Array.copy x | None -> nodeset_x0 mna
  in
  let last_err = ref None in
  let finish strategy = function
    | Ok (x, iterations) -> Some { mna; x; iterations; strategy }
    | Error m ->
      last_err := Some m;
      None
  in
  (* 0. Sparse linear fast path: big circuits with a constant Jacobian
     are one sparse solve. Any trouble (singular, non-finite) falls
     straight through to the usual ladder. *)
  let sparse_direct =
    if force_strategy = None && mna.Mna.size >= sparse_linear_cutoff
       && is_linear mna
    then
      match sparse_linear_attempt mna options with
      | Some x ->
        Obs.Counter.incr n_sparse_linear;
        Some { mna; x; iterations = 1; strategy = Direct }
      | None -> None
    else None
  in
  match sparse_direct with
  | Some r -> r
  | None ->
  (* 1. Direct attempt (unless a fallback is being exercised). *)
  let direct =
    match force_strategy with
    | None ->
      finish Direct (attempt mna options ~gmin:options.gmin ~src_scale:1. ~x0)
    | Some _ -> None
  in
  match direct with
  | Some r -> r
  | None ->
    Log.info (fun f -> f "direct Newton failed; trying gmin stepping");
    Obs.Counter.incr n_gmin_fallback;
    (* 2. Gmin stepping: converge with a heavy shunt, then relax it. *)
    let rec gmin_steps x = function
      | [] -> Some x
      | g :: rest ->
        (match attempt mna options ~gmin:g ~src_scale:1. ~x0:x with
         | Ok (x', _) -> gmin_steps x' rest
         | Error _ -> None)
    in
    let gmin_ladder =
      [ 1e-2; 1e-3; 1e-4; 1e-5; 1e-6; 1e-7; 1e-8; 1e-9; 1e-10; 1e-11;
        options.gmin ]
    in
    let via_gmin =
      if force_strategy = Some `Source_stepping then None
      else
      match gmin_steps x0 gmin_ladder with
      | Some x ->
        finish Gmin_stepping
          (attempt mna options ~gmin:options.gmin ~src_scale:1. ~x0:x)
      | None -> None
    in
    (match via_gmin with
     | Some r -> r
     | None ->
       Log.info (fun f -> f "gmin stepping failed; trying source stepping");
       Obs.Counter.incr n_source_fallback;
       (* 3. Source stepping with adaptive step size. *)
       let x = ref x0 and alpha = ref 0. and step = ref 0.1 in
       let failed = ref false in
       while !alpha < 1. && not !failed do
         let target = Float.min 1. (!alpha +. !step) in
         match
           attempt mna options ~gmin:options.gmin ~src_scale:target ~x0:!x
         with
         | Ok (x', _) ->
           x := x';
           alpha := target;
           step := Float.min 0.5 (!step *. 1.5)
         | Error _ ->
           step := !step /. 4.;
           if !step < 1e-4 then failed := true
       done;
       if !failed then
         raise
           (No_convergence
              (Printf.sprintf
                 "DC operating point of %S: all strategies failed \
                  (source stepping stalled at scale %.4f%s)"
                 (Circuit.Netlist.title mna.Mna.circ) !alpha
                 (match !last_err with
                  | Some m -> "; last error: " ^ m
                  | None -> "")))
       else { mna; x = !x; iterations = 0; strategy = Source_stepping })

let node_v t n =
  let i = Mna.node_index t.mna n in
  if i < 0 then 0. else t.x.(i)

let branch_current t name = t.x.(Mna.branch_index t.mna name)

type device_op =
  | Op_diode of { vd : float; id : float; gd : float }
  | Op_bjt of { vbe : float; vbc : float; ic : float; ib : float;
                gm : float; gpi : float; go : float; region : string }
  | Op_mos of { vgs : float; vds : float; ids : float; gm : float;
                gds : float; region : string }

let v_at x i = if i < 0 then 0. else x.(i)

let device_ops t =
  let temp_c = t.mna.Mna.temp_c in
  let x = t.x in
  Array.to_list t.mna.Mna.elems
  |> List.filter_map (fun (name, e) ->
      match e with
      | Mna.E_diode { i; j; p; area } ->
        let vd = v_at x i -. v_at x j in
        let ss = Devices.Diode_model.small_signal p ~area ~temp_c ~vd in
        let r = Devices.Diode_model.dc p ~area ~temp_c ~vd ~vd_old:vd in
        Some (name, Op_diode { vd; id = r.id; gd = ss.gd })
      | Mna.E_bjt { c; b; e = ne; p; area; sign } ->
        let vbe = sign *. (v_at x b -. v_at x ne) in
        let vbc = sign *. (v_at x b -. v_at x c) in
        let d =
          Devices.Bjt_model.dc p ~area ~temp_c ~vbe ~vbc ~vbe_old:vbe
            ~vbc_old:vbc
        in
        let ss = Devices.Bjt_model.small_signal p ~area ~temp_c ~vbe ~vbc in
        let region =
          if vbe > 0.3 && vbc <= 0.3 then "forward-active"
          else if vbe > 0.3 && vbc > 0.3 then "saturation"
          else if vbe <= 0.3 && vbc <= 0.3 then "cutoff"
          else "reverse"
        in
        Some (name,
              Op_bjt { vbe; vbc; ic = sign *. d.ic; ib = sign *. d.ib;
                       gm = ss.gm; gpi = ss.gpi;
                       go = -.(ss.gout +. ss.gmu); region })
      | Mna.E_mos { d; g; s; p; w; l; sign; _ } ->
        let vgs = sign *. (v_at x g -. v_at x s) in
        let vds = sign *. (v_at x d -. v_at x s) in
        let r = Devices.Mos_model.dc p ~w ~l ~vgs ~vds in
        let ss = Devices.Mos_model.small_signal p ~w ~l ~vgs ~vds in
        let region =
          match r.region with
          | Devices.Mos_model.Cutoff -> "cutoff"
          | Devices.Mos_model.Triode -> "triode"
          | Devices.Mos_model.Saturation -> "saturation"
        in
        Some (name,
              Op_mos { vgs; vds; ids = sign *. r.ids; gm = ss.gm;
                       gds = ss.gds; region })
      | _ -> None)

let pp_report ppf t =
  let fmt = Numerics.Engnum.format in
  Format.fprintf ppf "Operating point of %S (%d unknowns)@."
    (Circuit.Netlist.title t.mna.Mna.circ)
    t.mna.Mna.size;
  Array.iter
    (fun n -> Format.fprintf ppf "  V(%s) = %sV@." n (fmt (node_v t n)))
    (Circuit.Topology.nodes t.mna.Mna.topo);
  List.iter
    (fun (name, op) ->
      match op with
      | Op_diode { vd; id; gd } ->
        Format.fprintf ppf "  %s: vd=%sV id=%sA gd=%sS@." name (fmt vd)
          (fmt id) (fmt gd)
      | Op_bjt { vbe; vbc; ic; ib; gm; gpi; go; region } ->
        Format.fprintf ppf
          "  %s: %s vbe=%sV vbc=%sV ic=%sA ib=%sA gm=%sS gpi=%sS go=%sS@."
          name region (fmt vbe) (fmt vbc) (fmt ic) (fmt ib) (fmt gm)
          (fmt gpi) (fmt go)
      | Op_mos { vgs; vds; ids; gm; gds; region } ->
        Format.fprintf ppf "  %s: %s vgs=%sV vds=%sV id=%sA gm=%sS gds=%sS@."
          name region (fmt vgs) (fmt vds) (fmt ids) (fmt gm) (fmt gds))
    (device_ops t)
