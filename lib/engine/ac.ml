open Numerics

type result = {
  mna : Mna.t;
  op : Dcop.t;
  freqs : float array;
  solutions : Complex.t array array;
}

let phasor (spec : Circuit.Netlist.source_spec) =
  if spec.ac_mag = 0. then Cx.zero
  else Cx.polar spec.ac_mag (spec.ac_phase_deg *. Float.pi /. 180.)

(* Stamp the matrix of the complex system at angular frequency [w]
   (source phasors go to the RHS separately: probing analyses reuse the
   same matrix with their own excitation). *)
let matrix_at mna prims ~gmin ~w a =
  let jw c = Cx.make 0. (w *. c) in
  let real g = Cx.of_float g in
  Array.iter
    (fun (_, e) ->
      match e with
      | Mna.E_res { i; j; g } -> Mna.stamp_gc a i j (real g)
      | Mna.E_cap { i; j; c; _ } -> Mna.stamp_gc a i j (jw c)
      | Mna.E_ind { i; j; l; br; _ } ->
        Mna.stamp_mat_c a i br Cx.one;
        Mna.stamp_mat_c a j br (Cx.of_float (-1.));
        Mna.stamp_mat_c a br i Cx.one;
        Mna.stamp_mat_c a br j (Cx.of_float (-1.));
        Mna.stamp_mat_c a br br (Cx.neg (jw l))
      | Mna.E_vsrc { i; j; br; _ } ->
        Mna.stamp_mat_c a i br Cx.one;
        Mna.stamp_mat_c a j br (Cx.of_float (-1.));
        Mna.stamp_mat_c a br i Cx.one;
        Mna.stamp_mat_c a br j (Cx.of_float (-1.))
      | Mna.E_isrc _ -> ()
      | Mna.E_vcvs { i; j; ci; cj; br; gain } ->
        Mna.stamp_mat_c a i br Cx.one;
        Mna.stamp_mat_c a j br (Cx.of_float (-1.));
        Mna.stamp_mat_c a br i Cx.one;
        Mna.stamp_mat_c a br j (Cx.of_float (-1.));
        Mna.stamp_mat_c a br ci (real (-.gain));
        Mna.stamp_mat_c a br cj (real gain)
      | Mna.E_vccs { i; j; ci; cj; gm } ->
        Mna.stamp_mat_c a i ci (real gm);
        Mna.stamp_mat_c a i cj (real (-.gm));
        Mna.stamp_mat_c a j ci (real (-.gm));
        Mna.stamp_mat_c a j cj (real gm)
      | Mna.E_cccs { i; j; cbr; gain } ->
        Mna.stamp_mat_c a i cbr (real gain);
        Mna.stamp_mat_c a j cbr (real (-.gain))
      | Mna.E_ccvs { i; j; cbr; br; rm } ->
        Mna.stamp_mat_c a i br Cx.one;
        Mna.stamp_mat_c a j br (Cx.of_float (-1.));
        Mna.stamp_mat_c a br i Cx.one;
        Mna.stamp_mat_c a br j (Cx.of_float (-1.));
        Mna.stamp_mat_c a br cbr (real (-.rm))
      | Mna.E_mut { br1; br2; m } ->
        (* v1 includes jwM i2 and v2 includes jwM i1. *)
        Mna.stamp_mat_c a br1 br2 (Cx.neg (jw m));
        Mna.stamp_mat_c a br2 br1 (Cx.neg (jw m))
      | Mna.E_diode _ | Mna.E_bjt _ | Mna.E_mos _ -> ())
    mna.Mna.elems;
  List.iter
    (function
      | Linearize.L_g { i; j; g } -> Mna.stamp_gc a i j (real g)
      | Linearize.L_c { i; j; c } -> Mna.stamp_gc a i j (jw c)
      | Linearize.L_quad { out_p; out_m; ctrl_p; ctrl_m; gm } ->
        let g = real gm in
        Mna.stamp_mat_c a out_p ctrl_p g;
        Mna.stamp_mat_c a out_p ctrl_m (Cx.neg g);
        Mna.stamp_mat_c a out_m ctrl_p (Cx.neg g);
        Mna.stamp_mat_c a out_m ctrl_m g)
    prims;
  for i = 0 to mna.Mna.n_nodes - 1 do
    Cmat.add_to a i i (real gmin)
  done

(* Independent-source excitation vector. *)
let source_rhs mna b =
  Array.iter
    (fun (_, e) ->
      match e with
      | Mna.E_vsrc { br; spec; _ } -> Mna.stamp_rhs_c b br (phasor spec)
      | Mna.E_isrc { i; j; spec } ->
        let p = phasor spec in
        Mna.stamp_rhs_c b i (Cx.neg p);
        Mna.stamp_rhs_c b j p
      | _ -> ())
    mna.Mna.elems

let matrix_of ?(gmin = 1e-12) ~op ~omega mna =
  let prims = Linearize.of_op op in
  let a = Cmat.create mna.Mna.size mna.Mna.size in
  matrix_at mna prims ~gmin ~w:omega a;
  a

let factor_at ?gmin ~op ~omega mna = Cmat.lu_factor (matrix_of ?gmin ~op ~omega mna)

let mag_inf v = Array.fold_left (fun acc z -> Float.max acc (Cx.mag z)) 0. v

(* Sampled health for the dense per-point path; mirrors
   [Ac_plan.solve_many]'s recording so node grades do not depend on the
   backend chosen. *)
let dense_health ?meter a f ~x ~b =
  let rcond = Cond.rcond (Cond.dense a f) in
  let growth = Cmat.pivot_growth a f in
  let residual =
    Health.relative_residual ~norm1:(Cmat.norm1 a)
      ~residual_inf:(Cmat.residual_inf a x b) ~x_inf:(mag_inf x)
      ~b_inf:(mag_inf b)
  in
  Health.record ?meter ~rcond ~growth ~residual ()

let run_compiled ?op ?(gmin = 1e-12) ?backend ~sweep mna =
  let op = match op with Some op -> op | None -> Dcop.solve mna in
  let freqs = Sweep.points sweep in
  let backend =
    match backend with
    | Some b -> b
    | None ->
      if mna.Mna.size <= Ac_plan.dense_cutoff then `Dense else `Plan
  in
  (* The independent-source excitation carries no frequency dependence
     (AC magnitudes and phases only), so one RHS serves the sweep. *)
  let b0 = Array.make mna.Mna.size Cx.zero in
  source_rhs mna b0;
  let solutions =
    match backend with
    | `Dense ->
      let prims = Linearize.of_op op in
      Array.map
        (fun f ->
          let w = 2. *. Float.pi *. f in
          let a = Cmat.create mna.Mna.size mna.Mna.size in
          matrix_at mna prims ~gmin ~w a;
          let lu = Cmat.lu_factor a in
          let x = Cmat.lu_solve lu b0 in
          if Health.tick () then dense_health a lu ~x ~b:b0;
          x)
        freqs
    | (`Plan | `Kernel) as b ->
      let omega_ref =
        if Array.length freqs = 0 then 2e6 *. Float.pi
        else
          2. *. Float.pi
          *. sqrt (freqs.(0) *. freqs.(Array.length freqs - 1))
      in
      let plan = Ac_plan.compile ~gmin ~omega_ref ~op mna in
      (match b with
       | `Plan ->
         Array.map
           (fun f -> Ac_plan.solve plan ~omega:(2. *. Float.pi *. f) b0)
           freqs
       | `Kernel ->
         (* Flattened program over the same plan; values bit-identical
            to [`Plan]. *)
         let kern = Kernel.compile plan in
         Array.map
           (fun f ->
             (Kernel.solve_many kern ~omega:(2. *. Float.pi *. f)
                [| b0 |]).(0))
           freqs)
  in
  { mna; op; freqs; solutions }

let run ?dc_options ?gmin ?backend ~sweep circ =
  let mna = Mna.compile circ in
  let op = Dcop.solve ?options:dc_options mna in
  run_compiled ~op ?gmin ?backend ~sweep mna

let unknown_wave r idx =
  Waveform.Freq.make r.freqs (Array.map (fun sol -> sol.(idx)) r.solutions)

let v r n =
  let i =
    try Mna.node_index r.mna n
    with Mna.Compile_error _ ->
      invalid_arg (Printf.sprintf "Ac.v: unknown net %S" n)
  in
  if i < 0 then
    (* Ground: identically zero by definition — matches
       Probe.response_many's rejection rather than fabricating a silent
       all-zero waveform for a net the caller may have simply
       misspelled. *)
    invalid_arg (Printf.sprintf "Ac.v: cannot read the ground net %S" n)
  else unknown_wave r i

let vdiff r np nm =
  let wp = v r np and wm = v r nm in
  Waveform.Freq.make r.freqs
    (Array.mapi (fun k z -> Complex.sub z wm.Waveform.Freq.h.(k))
       wp.Waveform.Freq.h)

let branch_i r name = unknown_wave r (Mna.branch_index r.mna name)
