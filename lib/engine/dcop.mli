(** DC operating-point analysis.

    Newton–Raphson with SPICE-style junction limiting, plus two homotopy
    fallbacks: gmin stepping and source stepping. *)

type options = {
  gmin : float;        (** shunt conductance on every node (1e-12) *)
  reltol : float;      (** relative convergence tolerance (1e-6) *)
  vntol : float;       (** node-voltage absolute tolerance (1e-9 V) *)
  abstol : float;      (** branch-current absolute tolerance (1e-12 A) *)
  max_iter : int;      (** Newton iterations per attempt (150) *)
  max_step : float;    (** per-iteration clamp on node-voltage change (5 V) *)
}

val default_options : options

type strategy = Direct | Gmin_stepping | Source_stepping

type t = {
  mna : Mna.t;
  x : float array;            (** converged unknown vector *)
  iterations : int;           (** Newton iterations of the final attempt *)
  strategy : strategy;
}

exception No_convergence of string

val solve :
  ?options:options -> ?x0:float array ->
  ?force_strategy:[ `Gmin_stepping | `Source_stepping ] -> Mna.t -> t
(** Find the operating point. When [options] is omitted, the circuit's
    [.options] card (gmin, reltol, vntol, abstol, itl1, maxstep) refines
    the defaults. [force_strategy] skips the earlier rungs of the homotopy
    ladder (used to exercise and test the fallback paths). Raises
    {!No_convergence} when every strategy fails.

    Every call increments the [dcop.solves] {!Obs.Counter} — the
    operating-point cache ([Tool.Cache]) asserts the counter stays flat
    across warm requests.

    Circuits with no junction devices have a constant Jacobian; at or
    above {!sparse_linear_cutoff} unknowns their operating point is
    computed as a single sparse LU solve (counted by
    [dcop.sparse_linear]) instead of dense Newton iterations — the
    enabler for 1k-10k-unknown synthetic benchmark decks, whose dense
    O(size^2) per-iteration matrix would dominate the whole analysis.
    Smaller circuits keep the dense path unconditionally. *)

val sparse_linear_cutoff : int
(** Unknown count at which linear circuits switch to the sparse direct
    operating-point solve. *)

val circuit_options : Circuit.Netlist.t -> options

val node_v : t -> Circuit.Netlist.node -> float
val branch_current : t -> string -> float

(** Per-device operating-point record, as a printed .op report would show. *)
type device_op =
  | Op_diode of { vd : float; id : float; gd : float }
  | Op_bjt of { vbe : float; vbc : float; ic : float; ib : float;
                gm : float; gpi : float; go : float; region : string }
  | Op_mos of { vgs : float; vds : float; ids : float; gm : float;
                gds : float; region : string }

val device_ops : t -> (string * device_op) list
val pp_report : Format.formatter -> t -> unit

(** Newton core, shared with the transient analysis. [load] must fill the
    (zeroed) matrix and RHS for the candidate [x] and return [true] when a
    device limited its step (postponing convergence). [unknown_name]
    translates an unknown-vector index for singular-matrix messages
    (pass {!Mna.unknown_name} to name nets/branches instead of raw
    indices). *)
val newton :
  ?unknown_name:(int -> string) ->
  size:int ->
  n_nodes:int ->
  load:(x:float array -> Numerics.Rmat.t -> float array -> bool) ->
  x0:float array ->
  options ->
  (float array * int, string) result
