(** Sampled numerical-health recording for the solve paths.

    Every Nth factorisation (default 16, [--health-sample] on the CLI)
    the engine estimates the factor's reciprocal condition number,
    element growth and a scaled solve residual, recording them into the
    process-wide histograms [health.rcond], [health.pivot_growth] and
    [health.residual] — and, when the caller passes a {!meter}, into
    per-sweep worst-case cells that the stability layer grades nodes
    from. All state is atomic; meters may be written concurrently by
    pooled sweep workers. *)

val default_sample_every : int

val set_sample_every : int -> unit
(** Set the sampling interval (clamped to at least 1 = every point). *)

val sample_every : unit -> int

val tick : unit -> bool
(** Advance the process-wide sample clock; true on sampled ticks. *)

type meter
(** Worst-case health accumulator for one logical unit of work (a
    sweep). *)

val meter : unit -> meter

val record :
  ?meter:meter -> rcond:float -> growth:float -> residual:float -> unit -> unit
(** Record one sampled factorisation into the histograms and, when
    given, the meter. *)

val record_dc_residual : float -> unit
(** Record the scaled residual of a converged DC solve into
    [health.dc_residual]. *)

val worst_rcond : meter -> float
(** Smallest sampled rcond; [infinity] when nothing was sampled. *)

val worst_residual : meter -> float
(** Largest sampled scaled residual; [0.] when nothing was sampled. *)

val samples : meter -> int

val relative_residual :
  norm1:float -> residual_inf:float -> x_inf:float -> b_inf:float -> float
(** Backward-error style scaling: [|Ax-b|_inf / (||A||_1 |x|_inf + |b|_inf)]. *)
