open Circuit

type elem =
  | E_res of { i : int; j : int; g : float }
  | E_cap of { i : int; j : int; c : float; ic : float option }
  | E_ind of { i : int; j : int; l : float; br : int; ic : float option }
  | E_vsrc of { i : int; j : int; br : int; spec : Netlist.source_spec }
  | E_isrc of { i : int; j : int; spec : Netlist.source_spec }
  | E_vcvs of { i : int; j : int; ci : int; cj : int; br : int; gain : float }
  | E_vccs of { i : int; j : int; ci : int; cj : int; gm : float }
  | E_cccs of { i : int; j : int; cbr : int; gain : float }
  | E_ccvs of { i : int; j : int; cbr : int; br : int; rm : float }
  | E_diode of { i : int; j : int; p : Devices.Diode_model.params;
                 area : float }
  | E_bjt of { c : int; b : int; e : int; p : Devices.Bjt_model.params;
               area : float; sign : float }
  | E_mos of { d : int; g : int; s : int; b : int;
               p : Devices.Mos_model.params; w : float; l : float;
               sign : float }
  | E_mut of { br1 : int; br2 : int; m : float }

type t = {
  circ : Netlist.t;
  topo : Topology.t;
  n_nodes : int;
  n_branches : int;
  size : int;
  elems : (string * elem) array;
  temp_c : float;
}

exception Compile_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Compile_error s)) fmt

let compile circ =
  if not (Netlist.uses_ground circ) then
    fail "circuit %S has no ground (node 0) connection" (Netlist.title circ);
  let topo = Topology.build circ in
  let n_nodes = Topology.node_count topo in
  let node n =
    if Netlist.is_ground n then -1
    else
      match Topology.index_opt topo n with
      | Some i -> i
      | None -> fail "unknown net %S" n
  in
  (* First pass: branch indices for voltage-defined elements. *)
  let branch_tbl = Hashtbl.create 16 in
  let next_branch = ref 0 in
  let devices = Netlist.devices circ in
  List.iter
    (fun d ->
      match d with
      | Netlist.Vsource _ | Netlist.Inductor _ | Netlist.Vcvs _
      | Netlist.Ccvs _ ->
        Hashtbl.replace branch_tbl
          (String.lowercase_ascii (Netlist.device_name d))
          (n_nodes + !next_branch);
        incr next_branch
      | _ -> ())
    devices;
  let n_branches = !next_branch in
  let branch name =
    match Hashtbl.find_opt branch_tbl (String.lowercase_ascii name) with
    | Some b -> b
    | None -> fail "device %S is not a voltage-defined element" name
  in
  let model kind_check what name =
    match Netlist.find_model circ name with
    | Some m when kind_check m.Netlist.kind -> m
    | Some _ -> fail "model %S has the wrong kind for a %s" name what
    | None -> fail "unknown %s model %S" what name
  in
  let compile_device d =
    let name = Netlist.device_name d in
    let elem =
      match d with
      | Netlist.Resistor { n1; n2; r; tc1; tc2; _ } ->
        (* Temperature coefficients apply relative to the 27 C nominal. *)
        let dt = Netlist.temp_celsius circ -. 27. in
        let r = r *. (1. +. (tc1 *. dt) +. (tc2 *. dt *. dt)) in
        if r = 0. then fail "resistor %S has zero resistance" name;
        E_res { i = node n1; j = node n2; g = 1. /. r }
      | Netlist.Capacitor { n1; n2; c; ic; _ } ->
        E_cap { i = node n1; j = node n2; c; ic }
      | Netlist.Inductor { n1; n2; l; ic; _ } ->
        E_ind { i = node n1; j = node n2; l; br = branch name; ic }
      | Netlist.Vsource { npos; nneg; spec; _ } ->
        E_vsrc { i = node npos; j = node nneg; br = branch name; spec }
      | Netlist.Isource { npos; nneg; spec; _ } ->
        E_isrc { i = node npos; j = node nneg; spec }
      | Netlist.Vcvs { npos; nneg; cpos; cneg; gain; _ } ->
        E_vcvs { i = node npos; j = node nneg; ci = node cpos;
                 cj = node cneg; br = branch name; gain }
      | Netlist.Vccs { npos; nneg; cpos; cneg; gm; _ } ->
        E_vccs { i = node npos; j = node nneg; ci = node cpos;
                 cj = node cneg; gm }
      | Netlist.Cccs { npos; nneg; vname; gain; _ } ->
        E_cccs { i = node npos; j = node nneg; cbr = branch vname; gain }
      | Netlist.Ccvs { npos; nneg; vname; rm; _ } ->
        E_ccvs { i = node npos; j = node nneg; cbr = branch vname;
                 br = branch name; rm }
      | Netlist.Diode { npos; nneg; model = mn; area; _ } ->
        let m = model (( = ) Netlist.Dmodel) "diode" mn in
        E_diode { i = node npos; j = node nneg;
                  p = Devices.Diode_model.params_of_model m; area }
      | Netlist.Bjt { nc; nb; ne; model = mn; area; _ } ->
        let m =
          model (fun k -> k = Netlist.Npn || k = Netlist.Pnp) "bjt" mn
        in
        E_bjt { c = node nc; b = node nb; e = node ne;
                p = Devices.Bjt_model.params_of_model m; area;
                sign = (if m.Netlist.kind = Netlist.Npn then 1. else -1.) }
      | Netlist.Mutual { l1; l2; k; _ } ->
        let ind_value lname =
          match Netlist.find_device circ lname with
          | Some (Netlist.Inductor { l; _ }) -> l
          | Some _ -> fail "K element %S: %S is not an inductor" name lname
          | None -> fail "K element %S: no inductor %S" name lname
        in
        let lv1 = ind_value l1 and lv2 = ind_value l2 in
        E_mut { br1 = branch l1; br2 = branch l2;
                m = k *. sqrt (lv1 *. lv2) }
      | Netlist.Mosfet { nd; ng; ns; nb; model = mn; w; l; _ } ->
        let m =
          model (fun k -> k = Netlist.Nmos || k = Netlist.Pmos) "mosfet" mn
        in
        E_mos { d = node nd; g = node ng; s = node ns; b = node nb;
                p = Devices.Mos_model.params_of_model m; w; l;
                sign = (if m.Netlist.kind = Netlist.Nmos then 1. else -1.) }
    in
    (name, elem)
  in
  (* Cite the netlist line of the offending card when the parser recorded
     one: "line 7: resistor "R1" has zero resistance". *)
  let compile_device d =
    try compile_device d
    with Compile_error m ->
      (match Netlist.device_line circ (Netlist.device_name d) with
       | Some line -> fail "line %d: %s" line m
       | None -> raise (Compile_error m))
  in
  { circ; topo; n_nodes; n_branches; size = n_nodes + n_branches;
    elems = Array.of_list (List.map compile_device devices);
    temp_c = Netlist.temp_celsius circ }

let node_index t n =
  if Netlist.is_ground n then -1
  else
    match Topology.index_opt t.topo n with
    | Some i -> i
    | None -> fail "unknown net %S" n

let branch_index t name =
  let target = String.lowercase_ascii name in
  let found = ref None in
  Array.iter
    (fun (n, e) ->
      if String.lowercase_ascii n = target then
        match e with
        | E_vsrc { br; _ } | E_ind { br; _ } | E_vcvs { br; _ }
        | E_ccvs { br; _ } -> found := Some br
        | _ -> ())
    t.elems;
  match !found with
  | Some b -> b
  | None -> fail "device %S has no branch current" name

let nonlinear t =
  Array.exists
    (fun (_, e) ->
      match e with E_diode _ | E_bjt _ | E_mos _ -> true | _ -> false)
    t.elems

(* Translate an unknown-vector index into the user's vocabulary: node
   voltages print as V(net), branch currents as I(device). *)
let unknown_name t k =
  if k >= 0 && k < t.n_nodes then
    Printf.sprintf "V(%s)" (Topology.name t.topo k)
  else begin
    let found = ref None in
    Array.iter
      (fun (name, e) ->
        match e with
        | E_vsrc { br; _ } | E_ind { br; _ } | E_vcvs { br; _ }
        | E_ccvs { br; _ } ->
          if br = k then found := Some name
        | _ -> ())
      t.elems;
    match !found with
    | Some name -> Printf.sprintf "I(%s)" name
    | None -> Printf.sprintf "unknown %d" k
  end

let structural_pattern ?(gmin = true) t =
  let tbl = Hashtbl.create (8 * t.size) in
  let add i j =
    if i >= 0 && j >= 0 then Hashtbl.replace tbl ((i * t.size) + j) ()
  in
  let quad i j =
    add i i; add j j; add i j; add j i
  in
  let incidence i j br =
    add i br; add j br; add br i; add br j
  in
  (* Footprint of every stamp the DC, transient and AC analyses may
     write. Semiconductor devices use their full terminal block (the
     small-signal primitives of Linearize land inside it), which can only
     overestimate the pattern — safe for structural-rank prediction: an
     extra entry can hide a deficiency but never invent one. *)
  Array.iter
    (fun (_, e) ->
      match e with
      | E_res { i; j; _ } | E_cap { i; j; _ } -> quad i j
      | E_ind { i; j; br; _ } ->
        incidence i j br;
        add br br
      | E_vsrc { i; j; br; _ } -> incidence i j br
      | E_isrc _ -> ()
      | E_vcvs { i; j; ci; cj; br; _ } ->
        incidence i j br;
        add br ci;
        add br cj
      | E_vccs { i; j; ci; cj; _ } ->
        add i ci; add i cj; add j ci; add j cj
      | E_cccs { i; j; cbr; _ } ->
        add i cbr;
        add j cbr
      | E_ccvs { i; j; cbr; br; _ } ->
        incidence i j br;
        add br cbr
      | E_mut { br1; br2; _ } ->
        add br1 br2;
        add br2 br1
      | E_diode { i; j; _ } -> quad i j
      | E_bjt { c; b; e; _ } ->
        List.iter (fun r -> List.iter (add r) [ c; b; e ]) [ c; b; e ]
      | E_mos { d; g; s; b; _ } ->
        List.iter (fun r -> List.iter (add r) [ d; g; s; b ]) [ d; g; s; b ])
    t.elems;
  if gmin then
    for i = 0 to t.n_nodes - 1 do
      add i i
    done;
  Hashtbl.fold (fun key () acc -> (key / t.size, key mod t.size) :: acc)
    tbl []
  |> List.sort compare

(* ---- stamp helpers ---- *)

let stamp_mat m i j v =
  if i >= 0 && j >= 0 then Numerics.Rmat.add_to m i j v

let stamp_g m i j g =
  stamp_mat m i i g;
  stamp_mat m j j g;
  stamp_mat m i j (-.g);
  stamp_mat m j i (-.g)

let stamp_rhs rhs i v = if i >= 0 then rhs.(i) <- rhs.(i) +. v

let stamp_mat_c m i j v =
  if i >= 0 && j >= 0 then Numerics.Cmat.add_to m i j v

let stamp_gc m i j g =
  stamp_mat_c m i i g;
  stamp_mat_c m j j g;
  stamp_mat_c m i j (Complex.neg g);
  stamp_mat_c m j i (Complex.neg g)

let stamp_rhs_c rhs i v = if i >= 0 then rhs.(i) <- Complex.add rhs.(i) v
