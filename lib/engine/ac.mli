(** Small-signal AC analysis.

    Linearises the circuit at its DC operating point and solves the complex
    MNA system at every sweep frequency, driven by the AC magnitudes/phases
    of the independent sources. *)

type result = {
  mna : Mna.t;
  op : Dcop.t;
  freqs : float array;
  solutions : Complex.t array array;  (** [solutions.(k)] at [freqs.(k)] *)
}

val run :
  ?dc_options:Dcop.options -> ?gmin:float ->
  ?backend:[ `Dense | `Plan | `Kernel ] ->
  sweep:Numerics.Sweep.t -> Circuit.Netlist.t -> result
(** Compile, find the operating point, and sweep. Raises
    {!Dcop.No_convergence} / {!Mna.Compile_error} like its parts. *)

val run_compiled :
  ?op:Dcop.t -> ?gmin:float -> ?backend:[ `Dense | `Plan | `Kernel ] ->
  sweep:Numerics.Sweep.t -> Mna.t -> result
(** Sweep a pre-compiled circuit, reusing a known operating point. The
    default backend compiles an {!Ac_plan} (one symbolic analysis per
    sweep, one numeric refactorisation per point) for systems above
    {!Ac_plan.dense_cutoff} unknowns and keeps the dense per-point LU
    below it; [`Dense] forces the oracle path, [`Kernel] further
    flattens the plan into the {!Kernel} straight-line program
    (bit-identical values to [`Plan]). *)

val matrix_at :
  Mna.t -> Linearize.prim list -> gmin:float -> w:float -> Numerics.Cmat.t ->
  unit
(** Stamp the complex system matrix at angular frequency [w] into a zeroed
    matrix (sources contribute nothing — excitations are separate RHS
    vectors). Exposed for the probing and noise analyses. *)

val matrix_of :
  ?gmin:float -> op:Dcop.t -> omega:float -> Mna.t -> Numerics.Cmat.t
(** Freshly stamped dense system at one angular frequency. *)

val factor_at :
  ?gmin:float -> op:Dcop.t -> omega:float -> Mna.t -> Numerics.Cmat.factor
(** LU factor of the small-signal system at one angular frequency. Probing
    analyses (the stability tool's all-nodes mode) solve this factor
    against many excitation vectors — a current probe only contributes to
    the right-hand side. *)

val dense_health :
  ?meter:Health.meter -> Numerics.Cmat.t -> Numerics.Cmat.factor ->
  x:Complex.t array -> b:Complex.t array -> unit
(** Record one sampled dense factorisation's health (rcond estimate,
    pivot growth, scaled residual of [x] against [b]); mirrors the
    recording done inside {!Ac_plan.solve_many} so node grades do not
    depend on the backend. *)

val v : result -> Circuit.Netlist.node -> Waveform.Freq.t
(** Node-voltage response across the sweep. Raises [Invalid_argument]
    naming the net when it is unknown or ground (matching
    {!Stability.Probe.response_many}) rather than returning a silent
    all-zero waveform. *)

val vdiff : result -> Circuit.Netlist.node -> Circuit.Netlist.node ->
  Waveform.Freq.t

val branch_i : result -> string -> Waveform.Freq.t
(** Branch current of a voltage-defined device. *)
