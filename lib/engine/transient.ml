type options = {
  dc_options : Dcop.options;
  max_newton_per_step : int;
  be_steps : int;
}

let default_options =
  { dc_options = Dcop.default_options; max_newton_per_step = 50; be_steps = 2 }

type result = {
  mna : Mna.t;
  times : float array;
  solutions : float array array;
}

exception Step_failure of { time : float; message : string }

let v_at x i = if i < 0 then 0. else x.(i)

(* Per-reactive-element integration state. *)
type state = {
  cap_v : float array;  (* capacitor voltages, indexed by elem position *)
  cap_i : float array;  (* capacitor currents *)
  ind_v : float array;  (* inductor voltages *)
}

let source_value_at t (spec : Circuit.Netlist.source_spec) =
  Devices.Waveshape.eval ~dc:spec.dc spec.wave t

(* Waveform breakpoints in (0, tstop]: the integrators must land on these
   exactly. *)
let breakpoints_of mna ~tstop =
  let bps = ref [ tstop ] in
  Array.iter
    (fun (_, e) ->
      match e with
      | Mna.E_vsrc { spec; _ } | Mna.E_isrc { spec; _ } ->
        bps := Devices.Waveshape.breakpoints spec.wave ~tstop @ !bps
      | _ -> ())
    mna.Mna.elems;
  List.sort_uniq compare (List.filter (fun t -> t > 0.) !bps)

(* DC start with every source at its t = 0 value, so a stimulus that fires
   later starts the run from true steady state. *)
let initial_op mna options circ =
  ignore mna;
  let circ0 =
    Circuit.Netlist.map_devices
      (fun d ->
        match d with
        | Circuit.Netlist.Vsource x ->
          Circuit.Netlist.Vsource
            { x with spec = { x.spec with dc = source_value_at 0. x.spec } }
        | Circuit.Netlist.Isource x ->
          Circuit.Netlist.Isource
            { x with spec = { x.spec with dc = source_value_at 0. x.spec } }
        | d -> d)
      circ
  in
  Dcop.solve ~options:options.dc_options (Mna.compile circ0)

let initial_state mna x =
  let n_elems = Array.length mna.Mna.elems in
  let st =
    { cap_v = Array.make n_elems 0.;
      cap_i = Array.make n_elems 0.;
      ind_v = Array.make n_elems 0. }
  in
  Array.iteri
    (fun k (_, e) ->
      match e with
      | Mna.E_cap { i; j; _ } -> st.cap_v.(k) <- v_at x i -. v_at x j
      | Mna.E_ind { i; j; _ } -> st.ind_v.(k) <- v_at x i -. v_at x j
      | _ -> ())
    mna.Mna.elems;
  st

(* One integration step from the accepted solution [x] (and reactive state
   [st]) to time [t_new = t + h]. Pure with respect to [st] and [x]; the
   caller commits on acceptance. *)
let attempt_step mna options ~limst ~st ~x ~t_new ~h ~use_be =
  let load ~x:xc a b =
    Stamps.stamp_static mna ~src_value:(source_value_at t_new) a b;
    Stamps.stamp_gmin mna ~gmin:options.dc_options.Dcop.gmin a;
    Array.iteri
      (fun ke (_, e) ->
        match e with
        | Mna.E_cap { i; j; c; _ } ->
          (* Companion: i = geq (v - v_n) [+ trap history]. *)
          let geq = if use_be then c /. h else 2. *. c /. h in
          let hist =
            if use_be then -.(geq *. st.cap_v.(ke))
            else -.((geq *. st.cap_v.(ke)) +. st.cap_i.(ke))
          in
          Mna.stamp_g a i j geq;
          (* Current leaving node i through the cap: geq*v + hist, so the
             constant part moves to the RHS with opposite sign. *)
          Mna.stamp_rhs b i (-.hist);
          Mna.stamp_rhs b j hist
        | Mna.E_ind { i; j; l; br; _ } ->
          (* v = L di/dt. BE: v_new = (L/h)(i_new - i_n);
             trap: v_new = (2L/h)(i_new - i_n) - v_n.
             Branch row: v_i - v_j - zeq*i_new = rhs_hist. *)
          let zeq = if use_be then l /. h else 2. *. l /. h in
          Mna.stamp_mat a i br 1.;
          Mna.stamp_mat a j br (-1.);
          Mna.stamp_mat a br i 1.;
          Mna.stamp_mat a br j (-1.);
          Mna.stamp_mat a br br (-.zeq);
          let i_n = x.(br) in
          let rhs_hist =
            if use_be then -.(zeq *. i_n)
            else -.(zeq *. i_n) -. st.ind_v.(ke)
          in
          Mna.stamp_rhs b br rhs_hist
        | Mna.E_mut { br1; br2; m } ->
          (* Coupled branches: v1 gains (2M/h)(i2 - i2_n) under the
             trapezoidal rule ((M/h) under BE), and symmetrically. The
             self-inductance history already carries -v_n, so only the
             M di/dt part appears here. *)
          let zeq = if use_be then m /. h else 2. *. m /. h in
          Mna.stamp_mat a br1 br2 (-.zeq);
          Mna.stamp_mat a br2 br1 (-.zeq);
          Mna.stamp_rhs b br1 (-.(zeq *. x.(br2)));
          Mna.stamp_rhs b br2 (-.(zeq *. x.(br1)))
        | _ -> ())
      mna.Mna.elems;
    Stamps.stamp_nonlinear mna ~x:xc ~limst a b
  in
  let opts_step =
    { options.dc_options with Dcop.max_iter = options.max_newton_per_step }
  in
  Dcop.newton ~unknown_name:(Mna.unknown_name mna) ~size:mna.Mna.size
    ~n_nodes:mna.Mna.n_nodes ~load ~x0:x opts_step

(* Commit an accepted step: update the reactive histories in place. *)
let commit_step mna ~st ~h ~use_be x_new =
  Array.iteri
    (fun ke (_, e) ->
      match e with
      | Mna.E_cap { i; j; c; _ } ->
        let v_new = v_at x_new i -. v_at x_new j in
        let geq = if use_be then c /. h else 2. *. c /. h in
        let i_new =
          if use_be then geq *. (v_new -. st.cap_v.(ke))
          else (geq *. (v_new -. st.cap_v.(ke))) -. st.cap_i.(ke)
        in
        st.cap_v.(ke) <- v_new;
        st.cap_i.(ke) <- i_new
      | Mna.E_ind { i; j; _ } -> st.ind_v.(ke) <- v_at x_new i -. v_at x_new j
      | _ -> ())
    mna.Mna.elems

(* ---------------- fixed-step driver ---------------- *)

let run ?(options = default_options) ~tstop ~tstep circ =
  if tstop <= 0. || tstep <= 0. then invalid_arg "Transient.run: times";
  let mna = Mna.compile circ in
  let op = initial_op mna options circ in
  let x = Array.copy op.Dcop.x in
  let st = initial_state mna x in
  (* Uniform grid segments between breakpoints. *)
  let bps = 0. :: breakpoints_of mna ~tstop in
  let times =
    let out = ref [] in
    let rec fill = function
      | a :: (b :: _ as rest) ->
        let n = Int.max 1 (int_of_float (ceil (((b -. a) /. tstep) -. 1e-9))) in
        for k = 0 to n - 1 do
          out := (a +. ((b -. a) *. float_of_int k /. float_of_int n)) :: !out
        done;
        fill rest
      | [ last ] -> out := last :: !out
      | [] -> ()
    in
    fill bps;
    Array.of_list (List.rev !out)
  in
  let is_breakpoint t =
    List.exists (fun b -> Float.abs (b -. t) < 1e-18) bps
  in
  let solutions = Array.make (Array.length times) [||] in
  solutions.(0) <- Array.copy x;
  let limst = Stamps.make_limit_state mna in
  let be_countdown = ref options.be_steps in
  for k = 1 to Array.length times - 1 do
    let t_new = times.(k) in
    let h = t_new -. times.(k - 1) in
    let use_be = !be_countdown > 0 in
    if use_be then decr be_countdown;
    (match attempt_step mna options ~limst ~st ~x ~t_new ~h ~use_be with
     | Ok (x_new, _) ->
       commit_step mna ~st ~h ~use_be x_new;
       Array.blit x_new 0 x 0 mna.Mna.size;
       solutions.(k) <- Array.copy x_new
     | Error m -> raise (Step_failure { time = t_new; message = m }));
    if is_breakpoint t_new then be_countdown := options.be_steps
  done;
  { mna; times; solutions }

(* ---------------- adaptive driver ---------------- *)

(* Quadratic extrapolation of the node voltages through the last three
   accepted points, used as the local-truncation-error reference: the
   trapezoidal corrector and the explicit predictor are both second order
   with different error constants, so their difference tracks the LTE. *)
let predict ~t0 ~x0 ~t1 ~x1 ~t2 ~x2 ~t n =
  Array.init n (fun i ->
      let l0 = (t -. t1) *. (t -. t2) /. ((t0 -. t1) *. (t0 -. t2)) in
      let l1 = (t -. t0) *. (t -. t2) /. ((t1 -. t0) *. (t1 -. t2)) in
      let l2 = (t -. t0) *. (t -. t1) /. ((t2 -. t0) *. (t2 -. t1)) in
      (l0 *. x0.(i)) +. (l1 *. x1.(i)) +. (l2 *. x2.(i)))

let run_adaptive ?(options = default_options) ?(lte_tol = 1e-3)
    ?(dt_min = 1e-15) ?dt_max ~tstop ~dt_start circ =
  if tstop <= 0. || dt_start <= 0. then
    invalid_arg "Transient.run_adaptive: times";
  let dt_max = Option.value dt_max ~default:(tstop /. 20.) in
  let mna = Mna.compile circ in
  let op = initial_op mna options circ in
  let x = Array.copy op.Dcop.x in
  let st = initial_state mna x in
  let limst = Stamps.make_limit_state mna in
  let bps = ref (breakpoints_of mna ~tstop) in
  let times = ref [ 0. ] in
  let sols = ref [ Array.copy x ] in
  (* History ring for the predictor. *)
  let hist = ref [ (0., Array.copy x) ] in
  let t = ref 0. in
  let h = ref dt_start in
  let be_countdown = ref options.be_steps in
  while !t < tstop -. 1e-18 do
    (* Never step across a breakpoint. *)
    let next_bp = match !bps with b :: _ -> b | [] -> tstop in
    let h_eff = Float.min !h (next_bp -. !t) in
    let t_new = !t +. h_eff in
    let use_be = !be_countdown > 0 in
    match
      attempt_step mna options ~limst ~st ~x ~t_new ~h:h_eff ~use_be
    with
    | Error m ->
      (* Newton failure: retry with a smaller step. *)
      h := h_eff /. 4.;
      if !h < dt_min then raise (Step_failure { time = t_new; message = m })
    | Ok (x_new, _) ->
      let err =
        match !hist with
        | (t2, x2) :: (t1, x1) :: (t0, x0) :: _ when not use_be ->
          let pred =
            predict ~t0 ~x0 ~t1 ~x1 ~t2 ~x2 ~t:t_new mna.Mna.n_nodes
          in
          let worst = ref 0. in
          for i = 0 to mna.Mna.n_nodes - 1 do
            let scale =
              (lte_tol *. Float.max 1. (Float.abs x_new.(i))) +. 1e-9
            in
            worst :=
              Float.max !worst (Float.abs (x_new.(i) -. pred.(i)) /. scale)
          done;
          !worst
        | _ -> 0.5 (* no history yet: accept and keep the step *)
      in
      if err > 1. && h_eff > dt_min then begin
        (* Reject: shrink towards the tolerance (LTE ~ h^3). *)
        h := Float.max dt_min (h_eff *. Float.max 0.2 (0.9 /. Float.cbrt err))
      end
      else begin
        if use_be then decr be_countdown;
        commit_step mna ~st ~h:h_eff ~use_be x_new;
        Array.blit x_new 0 x 0 mna.Mna.size;
        t := t_new;
        times := t_new :: !times;
        sols := Array.copy x_new :: !sols;
        hist :=
          (t_new, Array.copy x_new)
          :: (match !hist with a :: b :: _ -> [ a; b ] | l -> l);
        (match !bps with
         | b :: rest when Float.abs (b -. t_new) < 1e-18 ->
           bps := rest;
           be_countdown := options.be_steps;
           hist := [ (t_new, Array.copy x_new) ]
         | _ -> ());
        (* Grow gently when the error leaves room. *)
        let growth =
          if err < 0.1 then 2. else Float.min 2. (0.9 /. Float.cbrt err)
        in
        h := Float.min dt_max (Float.max dt_min (h_eff *. growth))
      end
  done;
  { mna;
    times = Array.of_list (List.rev !times);
    solutions = Array.of_list (List.rev !sols) }

let v r n =
  let i = Mna.node_index r.mna n in
  Waveform.Real.make r.times
    (Array.map (fun sol -> if i < 0 then 0. else sol.(i)) r.solutions)

let branch_i r name =
  let i = Mna.branch_index r.mna name in
  Waveform.Real.make r.times (Array.map (fun sol -> sol.(i)) r.solutions)
