(** Compiled per-circuit solve kernels: the sweep hot path, specialized.

    {!Ac_plan} amortises the symbolic analysis but still interprets the
    sparse factorisation point by point — per-point column buffers, a
    boxed value array, bounds-checked pattern walks, per-RHS copies.
    {!compile} flattens one plan's frozen elimination schedule (pivot
    order, fill pattern, update order) into preallocated index arrays
    once per circuit; every frequency point then runs a straight-line,
    allocation-free factor/solve program over unboxed float planes, and
    {!run} batches whole chunks of the sweep through one workspace.

    The kernel is bit-identical to the [`Plan] backend: it replays the
    exact float operation sequence of [Scmat.refactor] and the batched
    solves (Smith's division, hypot magnitudes, sparsity skips, the
    single-RHS back-substitution form), and frequencies where the frozen
    pivot order goes numerically stale fall back to the same fresh
    pivoting factorisation the plan uses. Kernels are immutable after
    {!compile} and safe to share across Domain-parallel workers; all
    mutable state lives in per-worker {!workspace}s. *)

type t

val compile : Ac_plan.t -> t
(** Flatten the plan's symbolic analysis into the kernel program. Cheap
    (array flattening, no factorisation) — but cached per fingerprint by
    [Tool.Cache] so warm repeats compile nothing at all. *)

val size : t -> int

val chunk : int
(** Suggested frequency points per {!run} invocation: large enough to
    amortise workspace setup, small enough to load-balance. *)

type workspace
(** Mutable per-worker scratch: unboxed RHS/solution planes plus the
    factor value arrays. Not thread-safe — one per concurrent chunk. *)

val workspace : t -> rhs:Complex.t array array -> workspace
(** Capture a right-hand-side batch (one column per probed node). The
    batch is read, never written. *)

val run :
  ?health:Health.meter -> workspace -> freqs:float array -> lo:int ->
  hi:int -> sel:int array -> outs:Complex.t array array -> unit
(** Advance sweep points [lo..hi-1]: for each frequency [freqs.(fk)]
    factor once, solve the whole batch, and write component [sel.(q)] of
    solution [q] to [outs.(q).(fk)]. Chunks over disjoint ranges write
    disjoint cells, so parallel execution is bit-identical to
    sequential. With [health], sampled points (see {!Health.tick})
    record rcond/growth/residual like the plan backend. *)

val solve_many :
  ?health:Health.meter -> t -> omega:float -> Complex.t array array ->
  Complex.t array array
(** Full solutions at one frequency (the {!Ac} backend and the
    equivalence tests); same values as [Ac_plan.solve_many] on the same
    plan, bit for bit. *)

type totals = {
  compiles : int;   (** kernel compilations (warm cache repeat: zero) *)
  points : int;     (** frequency points advanced *)
  fallback : int;   (** points re-pivoted because frozen pivots staled *)
  batch_max : int;  (** high-water points per invocation *)
}

val totals : unit -> totals
(** Process-wide counters since start-up; take deltas to assert the
    compile/point budget. Registered in the [Obs.Counter] registry as
    [kernel.compiles], [kernel.points], [kernel.fallback] and
    [kernel.batch_max]. *)
