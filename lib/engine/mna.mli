(** Modified nodal analysis: unknown layout and the compiled circuit.

    The unknown vector is [node voltages] (indices [0 .. n_nodes-1], ground
    excluded) followed by [branch currents] for every voltage-defined
    element: independent voltage sources, inductors, VCVS and CCVS. Ground
    is index [-1] and is skipped by all stamps. *)

type elem =
  | E_res of { i : int; j : int; g : float }
  | E_cap of { i : int; j : int; c : float; ic : float option }
  | E_ind of { i : int; j : int; l : float; br : int; ic : float option }
  | E_vsrc of { i : int; j : int; br : int; spec : Circuit.Netlist.source_spec }
  | E_isrc of { i : int; j : int; spec : Circuit.Netlist.source_spec }
  | E_vcvs of { i : int; j : int; ci : int; cj : int; br : int; gain : float }
  | E_vccs of { i : int; j : int; ci : int; cj : int; gm : float }
  | E_cccs of { i : int; j : int; cbr : int; gain : float }
  | E_ccvs of { i : int; j : int; cbr : int; br : int; rm : float }
  | E_diode of { i : int; j : int; p : Devices.Diode_model.params;
                 area : float }
  | E_bjt of { c : int; b : int; e : int; p : Devices.Bjt_model.params;
               area : float; sign : float }
      (** [sign] is +1 for NPN, -1 for PNP; junction voltages are multiplied
          by it before the NPN-referenced model is evaluated and terminal
          currents after. *)
  | E_mos of { d : int; g : int; s : int; b : int;
               p : Devices.Mos_model.params; w : float; l : float;
               sign : float }  (** +1 NMOS, -1 PMOS *)
  | E_mut of { br1 : int; br2 : int; m : float }
      (** mutual inductance M = k sqrt(L1 L2) between two inductor
          branches *)

type t = {
  circ : Circuit.Netlist.t;
  topo : Circuit.Topology.t;
  n_nodes : int;
  n_branches : int;
  size : int;
  elems : (string * elem) array;  (** device name, compiled element *)
  temp_c : float;
}

exception Compile_error of string

val compile : Circuit.Netlist.t -> t
(** Resolve node indices, branch indices and model cards. Raises
    {!Compile_error} for unknown models, controlling sources, or a circuit
    without ground. *)

val node_index : t -> Circuit.Netlist.node -> int
(** Index of a net; ground is [-1]. Raises {!Compile_error} for unknown
    nets. *)

val branch_index : t -> string -> int
(** Unknown-vector index ([n_nodes + k]) of a voltage-defined device's
    branch current. Raises {!Compile_error} if the device has no branch. *)

val nonlinear : t -> bool
(** True when the circuit contains diodes or transistors. *)

val unknown_name : t -> int -> string
(** User-facing name of unknown-vector index [k]: ["V(net)"] for node
    voltages, ["I(device)"] for branch currents, ["unknown k"] for an
    out-of-range index. Solver singularity diagnostics use this instead of
    dumping a raw matrix index. *)

val structural_pattern : ?gmin:bool -> t -> (int * int) list
(** Sorted, deduplicated (row, col) structural non-zeros of the MNA
    matrix: the union of every stamp footprint the analyses may write
    (linear elements exactly; semiconductor devices as their full terminal
    block). With [gmin] (default [true]) the per-node shunt diagonal the
    solvers always add is included. Lint's structural-singularity
    predictor runs bipartite matching over this pattern. *)

(* Stamp helpers shared by the analyses. [i]/[j] = -1 denotes ground. *)

val stamp_g : Numerics.Rmat.t -> int -> int -> float -> unit
(** Conductance [g] between nodes [i] and [j]. *)

val stamp_rhs : float array -> int -> float -> unit
(** Add a value to RHS row [i] (ignored for ground). *)

val stamp_mat : Numerics.Rmat.t -> int -> int -> float -> unit
(** Raw matrix add at (row, col), skipping ground rows/columns. *)

val stamp_gc : Numerics.Cmat.t -> int -> int -> Complex.t -> unit
val stamp_rhs_c : Complex.t array -> int -> Complex.t -> unit
val stamp_mat_c : Numerics.Cmat.t -> int -> int -> Complex.t -> unit
