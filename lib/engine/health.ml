(* Numerical-health recording for the solve paths. Every AC factor can
   silently lose digits — stale frozen pivots, a near-singular MNA at a
   sweep corner, a gmin-dominated node — and the downstream peak numbers
   would print with full confidence. This module samples the health of
   the hot loop (every Nth factorisation, default 16, so the loop stays
   hot) into process-wide histograms, and optionally into a per-sweep
   [meter] whose worst-case values the stability layer turns into a
   per-node quality grade.

   Everything here is atomics: meters are written concurrently by the
   pooled sweep workers, and the histograms are lock-free by
   construction. *)

let default_sample_every = 16
let interval = Atomic.make default_sample_every
let set_sample_every n = Atomic.set interval (max 1 n)
let sample_every () = Atomic.get interval

(* One process-wide tick stream: with K domains interleaving, each still
   lands every ~Nth of its own points on average, which is all the
   sampling needs. *)
let ticks = Atomic.make 0
let tick () = Atomic.fetch_and_add ticks 1 mod Atomic.get interval = 0

let h_rcond = Obs.Histogram.make "health.rcond"
let h_growth = Obs.Histogram.make "health.pivot_growth"
let h_residual = Obs.Histogram.make "health.residual"
let h_dc_residual = Obs.Histogram.make "health.dc_residual"

type meter = {
  least_rcond : float Atomic.t;
  most_residual : float Atomic.t;
  n_samples : int Atomic.t;
}

let meter () =
  {
    least_rcond = Atomic.make infinity;
    most_residual = Atomic.make 0.;
    n_samples = Atomic.make 0;
  }

let rec atomic_min cell v =
  let cur = Atomic.get cell in
  if v < cur && not (Atomic.compare_and_set cell cur v) then atomic_min cell v

let rec atomic_max cell v =
  let cur = Atomic.get cell in
  if v > cur && not (Atomic.compare_and_set cell cur v) then atomic_max cell v

let record ?meter ~rcond ~growth ~residual () =
  Obs.Histogram.observe h_rcond rcond;
  Obs.Histogram.observe h_growth growth;
  Obs.Histogram.observe h_residual residual;
  match meter with
  | None -> ()
  | Some m ->
      atomic_min m.least_rcond rcond;
      atomic_max m.most_residual residual;
      Atomic.incr m.n_samples

let record_dc_residual r = Obs.Histogram.observe h_dc_residual r
let worst_rcond m = Atomic.get m.least_rcond
let worst_residual m = Atomic.get m.most_residual
let samples m = Atomic.get m.n_samples

(* Scaled (backward-error style) residual: |Ax - b|_inf over
   ||A||_1 |x|_inf + |b|_inf. A backward-stable solve sits near machine
   epsilon regardless of how large the solution is — raw |Ax - b| would
   flag every high-impedance node whose voltages are legitimately
   huge. *)
let relative_residual ~norm1 ~residual_inf ~x_inf ~b_inf =
  let denom = (norm1 *. x_inf) +. b_inf in
  if denom > 0. then residual_inf /. denom else 0.
