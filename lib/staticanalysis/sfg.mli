(** Small-signal signal-flow graph of a netlist.

    Vertices are the circuit's non-ground nets; edges say "an AC signal
    on net A moves net B", read straight off the device stamps with no
    DC solve:

    - R, L, C, diodes: bidirectional {!Passive} edges between their
      terminals.
    - Controlled sources (E/G/F/H): directed {!Gain} edges from each
      controlling net to each output net — the only place direction
      (and therefore feedback) enters the graph.
    - Transistors: the canonical small-signal skeleton. A BJT
      contributes gain edges b->c, b->e and e->c plus passive b-e
      (rpi) and c-e (ro); a MOSFET g->d, g->s and s->d plus passive
      g-s (cgs) and d-s (ro). The b-c / g-d coupling capacitance is
      deliberately omitted: it would put a trivial two-net "Miller
      loop" on every single transistor and drown the report. A
      diode-connected BJT (base shorted to collector) contributes no
      gain edges at all.
    - V sources and E/H outputs: a {!Short} edge between their
      terminals (an AC short), and the terminals become {e pinned} —
      reachable from ground through voltage-defining branches, hence
      held at zero driving-point impedance. A pinned net still carries
      signal {e out} (amplifier outputs are pinned), but nothing other
      than its own driver can move it, so every edge into a pinned net
      except the driver's own is pruned, and pinned nets are excluded
      from probe-cover candidacy.
    - K elements: bidirectional {!Coupling} edges between the two
      coupled inductors' terminals.

    Ground never appears: it is the AC reference, so signal paths
    through it are not paths. *)

type edge_kind = Passive | Gain | Short | Coupling

val kind_string : edge_kind -> string

type edge = {
  device : string;    (** contributing device *)
  kind : edge_kind;
  src : int;
  dst : int;
}

type t

val build : Circuit.Netlist.t -> t
(** Never raises: devices with missing references (dangling mutuals,
    unknown controlling sources) simply contribute no edges — the lint
    reference rules own those complaints. *)

val size : t -> int
(** Vertex count (non-ground nets). *)

val net : t -> int -> string
val index : t -> string -> int option
val nets : t -> string array

val edges : t -> edge list
(** All kept edges, after pinned-net pruning. *)

val succ : t -> int list array
(** Simple-digraph adjacency (parallel edges deduplicated), the input
    {!Cycles.enumerate} wants. *)

val edges_between : t -> int -> int -> edge list
(** The parallel edges from one vertex to another (hop labelling). *)

val is_pinned : t -> int -> bool
val pinning_driver : t -> int -> string option
(** The voltage-defining device that pins this net, when pinned. *)

val pinned_nets : t -> string list
(** Sorted names of the pinned nets. *)

val has_sources : t -> bool
(** Whether the design contains any independent V/I source. *)

val source_seeds : t -> int list
(** Non-ground terminals of the independent sources — where stimulus
    enters for reachability. *)

val reachable_from_sources : t -> bool array option
(** Forward reachability over the kept edges from the source seeds;
    [None] when the design has no independent sources (autonomous
    fixtures such as a bare tank are not "undrivable", there is simply
    nothing to drive them with). *)

val gain_devices : t -> string list
(** Sorted names of the devices contributing at least one gain edge.
    A diode-connected BJT contributes none and is not listed. *)

val stab_targets : t -> string list
(** Nets named by [.stab] cards, in deck order. *)
