(** The static signal-flow report: loops, probe cover, reachability.

    [analyze] runs the three static passes over a netlist's {!Sfg} —
    no DC solve, no sweep:

    + {b Loop enumeration.} Elementary cycles ({!Cycles.enumerate})
      within the strongly connected components that contain at least
      one gain edge — purely passive meshes cannot produce a resonant
      feedback peak and are skipped wholesale. A cycle qualifies as a
      feedback loop when at least one of its hops carries a gain edge;
      loops are ranked by structural gain order (gain hops first),
      then by id, and classified {e local} (all member nets within one
      device's terminals — a follower or mirror loop) or {e global}.
    + {b Probe cover.} A greedy hitting set over the loops' probeable
      (non-pinned) member nets: probing every cover net observes every
      enumerated loop. This is what [--nodes auto] analyzes instead of
      every net of the design.
    + {b Reachability.} Nets not forward-reachable from any
      independent-source terminal are undrivable — stimulus cannot
      reach them. Skipped ([None]) for source-free fixtures.

    Each pass is timed by an {!Obs.Span} ([sfg.build], [sfg.cycles],
    [sfg.cover]) and every graph construction bumps the [sfg.builds]
    counter — the cache tests assert a warm repeat leaves it flat. *)

type loop_kind =
  | Global
  | Local of string  (** confined to this device's terminals *)

val kind_string : loop_kind -> string
(** ["global"] or ["local:DEV"] — the spelling used by reports,
    manifests and JSON. *)

type loop = {
  id : string;             (** member nets joined with [">"], starting at
                               the lexicographically smallest *)
  nets : string list;      (** cycle order, as in [id] *)
  devices : string list;   (** devices on the loop's hops, sorted *)
  gain_order : int;        (** hops carrying a gain edge (>= 1) *)
  kind : loop_kind;
  probeable : string list; (** non-pinned member nets, sorted *)
}

type t = {
  graph : Sfg.t;
  loops : loop list;            (** gain order descending, then id *)
  truncated : bool;             (** a {!Cycles.bounds} bound was hit *)
  cover : string list;          (** greedy probe cover, selection order *)
  uncovered : loop list;        (** loops with no probeable net *)
  undrivable : string list option;
      (** nets unreachable from every source terminal; [None] when the
          deck has no independent sources *)
  open_gain : string list;
      (** devices with gain edges, none of which lies inside any
          strongly connected component — controlled sources outside
          every loop *)
}

val default_bounds : Cycles.bounds

val analyze : ?bounds:Cycles.bounds -> Circuit.Netlist.t -> t
(** Build the graph and run all three passes. Never raises on a
    parseable netlist. *)

val covers : t -> loop -> string option
(** The cover net observing this loop, if any. *)
