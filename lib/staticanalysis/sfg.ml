(* Small-signal signal-flow graph, read straight off the device stamps.

   Two modelling choices matter for everything downstream:

   - Pinned nets. Nets reachable from ground through voltage-defining
     branches (independent V sources, E/H outputs) have zero
     driving-point impedance: probing them reveals nothing, and no
     device other than their own driver can move them. They stay in
     the graph as through-vertices (an amplifier output is pinned yet
     very much part of its loop), but every edge into them except
     their driver's own is pruned, and the probe cover never selects
     them.

   - Transistor skeletons omit the b-c / g-d coupling capacitor. With
     it, every transistor closes a private two-net "Miller loop" and
     the report drowns in one structural loop per device; without it,
     the loops that remain are the ones a designer would point at.
     The b-e / g-s branch is kept (it is how mirror- and
     follower-style local loops close). *)

open Circuit

type edge_kind = Passive | Gain | Short | Coupling

let kind_string = function
  | Passive -> "passive"
  | Gain -> "gain"
  | Short -> "short"
  | Coupling -> "coupling"

type edge = { device : string; kind : edge_kind; src : int; dst : int }

type t = {
  names : string array;
  idx : (string, int) Hashtbl.t;
  all_edges : edge list;
  adj : int list array;
  par : (int, edge list) Hashtbl.t; (* src * size + dst -> parallel edges *)
  pinned : string option array;     (* pinning driver, when pinned *)
  seeds : int list;
  has_src : bool;
  stabs : string list;
}

let canon n = if Netlist.is_ground n then Netlist.ground else n

(* Voltage-defining branches: the edges of the "stiff" graph whose
   ground-connected component is the pinned set. Inductors are
   voltage-defined in the MNA sense but not stiff at AC, so they do
   not pin. *)
let pinning_branches circ =
  List.filter_map
    (fun d ->
      match d with
      | Netlist.Vsource { name; npos; nneg; _ }
      | Netlist.Vcvs { name; npos; nneg; _ }
      | Netlist.Ccvs { name; npos; nneg; _ } ->
        Some (name, canon npos, canon nneg)
      | _ -> None)
    (Netlist.devices circ)

let build circ =
  let names = Array.of_list (Netlist.node_names circ) in
  let size = Array.length names in
  let idx = Hashtbl.create (2 * size + 1) in
  Array.iteri (fun i n -> Hashtbl.replace idx n i) names;
  let vid n = if Netlist.is_ground n then None else Hashtbl.find_opt idx n in
  (* -- pinned nets: fixpoint from ground over the stiff branches -- *)
  let pinned = Array.make size None in
  let is_pinned_name n =
    Netlist.is_ground n
    || match vid n with Some v -> pinned.(v) <> None | None -> false
  in
  let pin n driver =
    match vid n with
    | Some v when pinned.(v) = None ->
      pinned.(v) <- Some driver;
      true
    | _ -> false
  in
  let branches = pinning_branches circ in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (driver, a, b) ->
        let pa = is_pinned_name a and pb = is_pinned_name b in
        if pa && not pb then changed := pin b driver || !changed
        else if pb && not pa then changed := pin a driver || !changed)
      branches
  done;
  (* -- edges -- *)
  let acc = ref [] in
  let dir device kind a b =
    match (vid a, vid b) with
    | Some src, Some dst when src <> dst ->
      acc := { device; kind; src; dst } :: !acc
    | _ -> ()
  in
  let pair device kind a b =
    dir device kind a b;
    dir device kind b a
  in
  let gains device ctrls outs =
    List.iter (fun c -> List.iter (fun o -> dir device Gain c o) outs) ctrls
  in
  let sensed_terminals vname =
    match Netlist.find_device circ vname with
    | Some d -> (
      match Netlist.device_nodes d with a :: b :: _ -> [ a; b ] | l -> l)
    | None -> []
  in
  let inductor_terminals lname =
    match Netlist.find_device circ lname with
    | Some (Netlist.Inductor { n1; n2; _ }) -> [ n1; n2 ]
    | _ -> []
  in
  List.iter
    (fun d ->
      match d with
      | Netlist.Resistor { name; n1; n2; _ }
      | Netlist.Capacitor { name; n1; n2; _ }
      | Netlist.Inductor { name; n1; n2; _ } -> pair name Passive n1 n2
      | Netlist.Diode { name; npos; nneg; _ } -> pair name Passive npos nneg
      | Netlist.Vsource { name; npos; nneg; _ } -> pair name Short npos nneg
      | Netlist.Isource _ -> ()
      | Netlist.Vcvs { name; npos; nneg; cpos; cneg; _ } ->
        gains name [ cpos; cneg ] [ npos; nneg ];
        pair name Short npos nneg
      | Netlist.Vccs { name; npos; nneg; cpos; cneg; _ } ->
        gains name [ cpos; cneg ] [ npos; nneg ]
      | Netlist.Cccs { name; npos; nneg; vname; _ } ->
        gains name (sensed_terminals vname) [ npos; nneg ]
      | Netlist.Ccvs { name; npos; nneg; vname; _ } ->
        gains name (sensed_terminals vname) [ npos; nneg ];
        pair name Short npos nneg
      | Netlist.Bjt { name; nc; nb; ne; _ } ->
        if String.equal (canon nb) (canon nc) then
          (* diode-connected: a two-terminal junction, no gain *)
          pair name Passive nb ne
        else begin
          gains name [ nb ] [ nc; ne ];
          gains name [ ne ] [ nc ];
          pair name Passive nb ne; (* rpi *)
          pair name Passive nc ne  (* ro *)
        end
      | Netlist.Mosfet { name; nd; ng; ns; _ } ->
        if String.equal (canon ng) (canon nd) then
          pair name Passive ng ns
        else begin
          gains name [ ng ] [ nd; ns ];
          gains name [ ns ] [ nd ];
          pair name Passive ng ns; (* cgs *)
          pair name Passive nd ns  (* ro *)
        end
      | Netlist.Mutual { name; l1; l2; _ } ->
        List.iter
          (fun a ->
            List.iter
              (fun b -> pair name Coupling a b)
              (inductor_terminals l2))
          (inductor_terminals l1))
    (Netlist.devices circ);
  (* -- pinned-net pruning: only the driver moves a pinned net -- *)
  let kept =
    List.filter
      (fun e ->
        match pinned.(e.dst) with
        | None -> true
        | Some driver -> String.equal driver e.device)
      !acc
  in
  let adj = Array.make size [] in
  let par = Hashtbl.create 64 in
  List.iter
    (fun e ->
      let k = (e.src * size) + e.dst in
      (match Hashtbl.find_opt par k with
       | None ->
         adj.(e.src) <- e.dst :: adj.(e.src);
         Hashtbl.replace par k [ e ]
       | Some es -> Hashtbl.replace par k (e :: es)))
    kept;
  Array.iteri (fun v ws -> adj.(v) <- List.sort_uniq compare ws) adj;
  let seeds =
    List.concat_map
      (fun d ->
        match d with
        | Netlist.Vsource { npos; nneg; _ } | Netlist.Isource { npos; nneg; _ }
          ->
          List.filter_map vid [ npos; nneg ]
        | _ -> [])
      (Netlist.devices circ)
    |> List.sort_uniq compare
  in
  let has_src =
    List.exists
      (function Netlist.Vsource _ | Netlist.Isource _ -> true | _ -> false)
      (Netlist.devices circ)
  in
  let stabs =
    List.filter_map
      (function Netlist.Stab_node n -> Some n | _ -> None)
      (Netlist.directives circ)
  in
  { names; idx; all_edges = kept; adj; par; pinned; seeds; has_src; stabs }

let size t = Array.length t.names
let net t v = t.names.(v)
let index t n = Hashtbl.find_opt t.idx n
let nets t = t.names
let edges t = t.all_edges
let succ t = t.adj

let edges_between t u v =
  match Hashtbl.find_opt t.par ((u * size t) + v) with
  | Some es -> es
  | None -> []

let is_pinned t v = t.pinned.(v) <> None
let pinning_driver t v = t.pinned.(v)

let pinned_nets t =
  let acc = ref [] in
  Array.iteri
    (fun v d -> if d <> None then acc := t.names.(v) :: !acc)
    t.pinned;
  List.sort compare !acc

let has_sources t = t.has_src
let source_seeds t = t.seeds

let reachable_from_sources t =
  if not t.has_src then None
  else begin
    let n = size t in
    let seen = Array.make n false in
    let rec visit v =
      if not seen.(v) then begin
        seen.(v) <- true;
        List.iter visit t.adj.(v)
      end
    in
    List.iter visit t.seeds;
    Some seen
  end

let gain_devices t =
  List.filter_map
    (fun e -> if e.kind = Gain then Some e.device else None)
    t.all_edges
  |> List.sort_uniq compare

let stab_targets t = t.stabs
