(* Bounded elementary-cycle enumeration: Tarjan SCCs plus Johnson's
   blocked depth-first search.

   Johnson's guarantee — every elementary cycle exactly once, no
   re-exploration of dead subtrees — relies on the blocking discipline:
   a vertex stays blocked after a fruitless visit until some ancestor
   closes a cycle, at which point the B-sets cascade the unblocking.
   The two bounds interact with that discipline: when a bound stops an
   exploration we *treat the subtree as if it had yielded a cycle*
   (found := true), which keeps every vertex on the current path
   unblockable. That is conservative — some subtrees are re-explored —
   but it cannot lose a cycle that fits inside the bounds, which is the
   contract [enumerate] documents. *)

type bounds = { max_len : int; max_cycles : int }

let default_bounds = { max_len = 16; max_cycles = 4096 }

(* Tarjan, recursive: the graphs here are netlist-sized (at most a few
   thousand nets), well inside the OCaml stack. *)
let sccs adj =
  let n = Array.length adj in
  let index = Array.make n (-1) in
  let low = Array.make n 0 in
  let on_stack = Array.make n false in
  let stack = ref [] in
  let next = ref 0 in
  let comps = ref [] in
  let rec connect v =
    index.(v) <- !next;
    low.(v) <- !next;
    incr next;
    stack := v :: !stack;
    on_stack.(v) <- true;
    List.iter
      (fun w ->
        if index.(w) < 0 then begin
          connect w;
          if low.(w) < low.(v) then low.(v) <- low.(w)
        end
        else if on_stack.(w) && index.(w) < low.(v) then low.(v) <- index.(w))
      adj.(v);
    if low.(v) = index.(v) then begin
      let rec pop acc =
        match !stack with
        | w :: rest ->
          stack := rest;
          on_stack.(w) <- false;
          if w = v then w :: acc else pop (w :: acc)
        | [] -> acc
      in
      comps := List.sort compare (pop []) :: !comps
    end
  in
  for v = 0 to n - 1 do
    if index.(v) < 0 then connect v
  done;
  List.sort compare !comps

let enumerate ?(bounds = default_bounds) adj =
  let n = Array.length adj in
  let adj = Array.map (fun l -> List.sort_uniq compare l) adj in
  let cycles = ref [] in
  let count = ref 0 in
  let truncated = ref false in
  (* Every cycle is enumerated at s = its minimum vertex: the search
     for start [s] runs inside the subgraph induced on vertices >= s,
     restricted to the SCC containing s (a cycle through s cannot
     leave it). *)
  for s = 0 to n - 1 do
    let sub = Array.make n [] in
    for v = s to n - 1 do
      sub.(v) <- List.filter (fun w -> w >= s) adj.(v)
    done;
    let comp =
      match List.find_opt (List.mem s) (sccs sub) with
      | Some c -> c
      | None -> [ s ]
    in
    let in_comp = Array.make n false in
    List.iter (fun v -> in_comp.(v) <- true) comp;
    if List.exists (fun w -> in_comp.(w)) sub.(s) then begin
      if !count >= bounds.max_cycles then truncated := true
      else begin
        let blocked = Array.make n false in
        let bsets = Array.make n [] in
        let path = ref [] in
        let rec unblock v =
          if blocked.(v) then begin
            blocked.(v) <- false;
            let bs = bsets.(v) in
            bsets.(v) <- [];
            List.iter unblock bs
          end
        in
        (* [depth] counts the vertices on the current path, v included. *)
        let rec circuit v depth =
          let found = ref false in
          path := v :: !path;
          blocked.(v) <- true;
          List.iter
            (fun w ->
              if in_comp.(w) then begin
                if !count >= bounds.max_cycles then begin
                  truncated := true;
                  found := true
                end
                else if w = s then begin
                  cycles := List.rev !path :: !cycles;
                  incr count;
                  found := true
                end
                else if not blocked.(w) then begin
                  if depth >= bounds.max_len then begin
                    truncated := true;
                    found := true
                  end
                  else if circuit w (depth + 1) then found := true
                end
              end)
            sub.(v);
          if !found then unblock v
          else
            List.iter
              (fun w ->
                if in_comp.(w) && not (List.mem v bsets.(w)) then
                  bsets.(w) <- v :: bsets.(w))
              sub.(v);
          path := List.tl !path;
          !found
        in
        ignore (circuit s 1)
      end
    end
  done;
  (List.sort compare !cycles, !truncated)
