(* The three static passes over the signal-flow graph. Everything here
   is deterministic: ties break on net or device names, cycles come out
   of [Cycles.enumerate] canonically ordered, so the same deck always
   produces byte-identical reports (the @staticcheck goldens rely on
   it). *)

let n_builds = Obs.Counter.make "sfg.builds"

type loop_kind = Global | Local of string

let kind_string = function
  | Global -> "global"
  | Local d -> "local:" ^ d

type loop = {
  id : string;
  nets : string list;
  devices : string list;
  gain_order : int;
  kind : loop_kind;
  probeable : string list;
}

type t = {
  graph : Sfg.t;
  loops : loop list;
  truncated : bool;
  cover : string list;
  uncovered : loop list;
  undrivable : string list option;
  open_gain : string list;
}

let default_bounds = Cycles.default_bounds

(* Hops of a cycle, as (from, to) vertex pairs, wrap included. *)
let hops cycle =
  match cycle with
  | [] -> []
  | first :: _ ->
    let rec go = function
      | [ last ] -> [ (last, first) ]
      | a :: (b :: _ as rest) -> (a, b) :: go rest
      | [] -> []
    in
    go cycle

let loop_of_cycle circ g cycle =
  let hop_edges = List.map (fun (u, v) -> Sfg.edges_between g u v) (hops cycle) in
  let gain_order =
    List.length
      (List.filter
         (List.exists (fun (e : Sfg.edge) -> e.kind = Sfg.Gain))
         hop_edges)
  in
  let devices =
    List.concat_map (List.map (fun (e : Sfg.edge) -> e.device)) hop_edges
    |> List.sort_uniq compare
  in
  let nets = List.map (Sfg.net g) cycle in
  let probeable =
    List.filter_map
      (fun v -> if Sfg.is_pinned g v then None else Some (Sfg.net g v))
      cycle
    |> List.sort compare
  in
  (* Local: every member net lies on one device's terminals (the loop
     is the device's own small-signal skeleton — a follower or mirror
     loop), whichever loop device qualifies first alphabetically. *)
  let contained_in dname =
    match Circuit.Netlist.find_device circ dname with
    | None -> false
    | Some d ->
      let terms =
        List.filter
          (fun n -> not (Circuit.Netlist.is_ground n))
          (Circuit.Netlist.device_nodes d)
      in
      List.for_all (fun n -> List.mem n terms) nets
  in
  let kind =
    match List.find_opt contained_in devices with
    | Some d -> Local d
    | None -> Global
  in
  { id = String.concat ">" nets; nets; devices; gain_order; kind; probeable }

(* Greedy hitting set over the probeable member nets: pick the net
   covering the most still-uncovered loops, smallest name on ties, until
   every coverable loop is observed. *)
let greedy_cover loops =
  let coverable = List.filter (fun l -> l.probeable <> []) loops in
  let rec go chosen remaining =
    match remaining with
    | [] -> List.rev chosen
    | _ ->
      let tally = Hashtbl.create 32 in
      List.iter
        (fun l ->
          List.iter
            (fun n ->
              Hashtbl.replace tally n
                (1 + Option.value ~default:0 (Hashtbl.find_opt tally n)))
            l.probeable)
        remaining;
      let best =
        Hashtbl.fold
          (fun n c acc ->
            match acc with
            | Some (bn, bc) when bc > c || (bc = c && bn <= n) -> acc
            | _ -> Some (n, c))
          tally None
      in
      (match best with
       | None -> List.rev chosen
       | Some (n, _) ->
         go (n :: chosen)
           (List.filter (fun l -> not (List.mem n l.probeable)) remaining))
  in
  go [] coverable

let covers t loop =
  List.find_opt (fun n -> List.mem n loop.probeable) t.cover

let analyze ?(bounds = default_bounds) circ =
  let g =
    Obs.Span.with_ "sfg.build" (fun () ->
        Obs.Counter.incr n_builds;
        Sfg.build circ)
  in
  let loops, truncated =
    Obs.Span.with_ "sfg.cycles" (fun () ->
        let adj = Sfg.succ g in
        let n = Array.length adj in
        let scc_of = Array.make n (-1) in
        List.iteri
          (fun i comp -> List.iter (fun v -> scc_of.(v) <- i) comp)
          (Cycles.sccs adj);
        (* An SCC is worth enumerating only when a gain edge lives
           inside it: a purely passive mesh has (many) cycles but no
           feedback. *)
        let gainful = Hashtbl.create 8 in
        List.iter
          (fun (e : Sfg.edge) ->
            if e.kind = Sfg.Gain && scc_of.(e.src) = scc_of.(e.dst) then
              Hashtbl.replace gainful scc_of.(e.src) ())
          (Sfg.edges g);
        let sub =
          Array.mapi
            (fun v ws ->
              if Hashtbl.mem gainful scc_of.(v) then
                List.filter (fun w -> scc_of.(w) = scc_of.(v)) ws
              else [])
            adj
        in
        let cycles, truncated = Cycles.enumerate ~bounds sub in
        let loops =
          List.map (loop_of_cycle circ g) cycles
          |> List.filter (fun l -> l.gain_order >= 1)
          |> List.sort (fun a b ->
                 match compare b.gain_order a.gain_order with
                 | 0 -> compare a.id b.id
                 | c -> c)
        in
        (loops, truncated))
  in
  let cover =
    Obs.Span.with_ "sfg.cover" (fun () -> greedy_cover loops)
  in
  let uncovered = List.filter (fun l -> l.probeable = []) loops in
  let undrivable =
    Option.map
      (fun reach ->
        let acc = ref [] in
        Array.iteri
          (fun v ok -> if not ok then acc := Sfg.net g v :: !acc)
          reach;
        List.sort compare !acc)
      (Sfg.reachable_from_sources g)
  in
  let open_gain =
    let adj = Sfg.succ g in
    let n = Array.length adj in
    let scc_of = Array.make n (-1) in
    List.iteri
      (fun i comp -> List.iter (fun v -> scc_of.(v) <- i) comp)
      (Cycles.sccs adj);
    let in_loop = Hashtbl.create 16 in
    List.iter
      (fun (e : Sfg.edge) ->
        if e.kind = Sfg.Gain && scc_of.(e.src) = scc_of.(e.dst) then
          Hashtbl.replace in_loop e.device ())
      (Sfg.edges g);
    List.filter (fun d -> not (Hashtbl.mem in_loop d)) (Sfg.gain_devices g)
  in
  { graph = g; loops; truncated; cover; uncovered; undrivable; open_gain }
