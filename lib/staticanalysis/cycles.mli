(** Elementary-cycle enumeration over small directed graphs.

    The vertices of a graph are [0 .. n-1] and the graph itself is an
    adjacency array ([adj.(v)] lists the successors of [v], duplicates
    allowed — they are deduplicated internally). This is the engine
    behind the signal-flow feedback-loop report: {!Sfg} reduces a
    netlist to such a digraph and {!Report} names the cycles found
    here.

    [enumerate] is Johnson's algorithm (SCC preprocessing plus a
    blocked depth-first search), bounded so that pathological meshes —
    elementary-cycle counts grow exponentially with mesh size — cannot
    hang a lint pass. Within the bounds the enumeration is exhaustive
    and deterministic. *)

type bounds = {
  max_len : int;     (** longest cycle reported, in vertices *)
  max_cycles : int;  (** total cycles reported before giving up *)
}

val default_bounds : bounds
(** [{ max_len = 16; max_cycles = 4096 }] — far above any feedback
    structure a designer would recognise as a loop, far below a mesh
    blow-up. *)

val sccs : int list array -> int list list
(** Strongly connected components (Tarjan), singletons included. Each
    component is sorted ascending; components are ordered by their
    minimum vertex. *)

val enumerate : ?bounds:bounds -> int list array -> int list list * bool
(** All elementary cycles of the graph, within [bounds]. Every cycle is
    reported once, rotated to start at its minimum vertex (a self-loop
    is the one-vertex cycle [[v]]); the list is sorted lexicographically
    so equal graphs always enumerate identically. The flag is [true]
    when a bound was hit: cycles within the bounds are still all
    present, but longer or later ones may be missing. *)
