(* acstab — command-line interface of the AC-stability analysis tool.

   The paper's tool is a push-button GUI in DFII; this CLI exposes the same
   run modes over SPICE-format netlists: single-node and all-nodes
   stability analysis, the traditional baselines (operating point, AC,
   transient, open-loop margins), the Table 1 reference, and a self-
   contained demo on the paper's op-amp. *)

open Cmdliner

let setup_logs level =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level level

let log_term =
  Term.(const setup_logs $ Logs_cli.level ())

(* ---- Tool.Pipeline adapters ----

   Every analysis subcommand is a thin shell over [Tool.Pipeline]: the
   pipeline owns parse, lint gate, guard and manifest emission; the
   adapters below only translate its failure values back into the
   CLI's historical stderr text and exit codes (2 parse/usage, 3
   analysis, 4 lint gate). *)

type lint_opts = { no_lint : bool; strict : bool }

let lint_term =
  let no_lint =
    Arg.(value & flag
         & info [ "no-lint" ]
             ~doc:"Skip the pre-run lint gate (findings are not even \
                   printed).")
  in
  let strict =
    Arg.(value & flag
         & info [ "strict" ]
             ~doc:"Treat lint warnings as blocking errors.")
  in
  Term.(const (fun no_lint strict -> { no_lint; strict })
        $ no_lint $ strict)

let policy_of { no_lint; strict } = { Tool.Pipeline.no_lint; strict }

let print_findings ?file out findings =
  List.iter
    (fun f -> Format.fprintf out "%a@." (Lint.Rule.pp_finding ?file) f)
    findings

(* Print a pipeline failure exactly as the pre-pipeline CLI did, then
   exit with its code. Lint blocks print the gate's findings; analysis
   failures print the lint findings that predicted them (no file
   prefix, matching the old report_singular). *)
let fail_run ~file (failure : Tool.Pipeline.failure) =
  (match failure with
   | Tool.Pipeline.Lint_blocked { findings } ->
     print_findings ~file Format.err_formatter findings;
     Printf.eprintf
       "lint: blocking findings above; fix the netlist or pass \
        --no-lint to force the run\n"
   | Tool.Pipeline.Analysis_failed { message; likely_cause } ->
     Printf.eprintf "%s\n" message;
     (match likely_cause with
      | [] -> ()
      | findings ->
        Printf.eprintf "likely cause:\n";
        print_findings Format.err_formatter findings)
   | Tool.Pipeline.Parse_failed { message }
   | Tool.Pipeline.Usage_failed { message } ->
     Printf.eprintf "%s\n" message);
  exit (Tool.Pipeline.exit_code failure)

(* Parse + lint-gate a deck. Non-blocking findings still print to
   stderr — the gate is also a reporter. *)
let load_deck lint file =
  match
    Tool.Pipeline.load ~policy:(policy_of lint) (Tool.Pipeline.Deck_file file)
  with
  | Ok loaded ->
    if not lint.no_lint then
      print_findings ~file Format.err_formatter loaded.Tool.Pipeline.findings;
    loaded
  | Error failure -> fail_run ~file failure

(* Parse only (the lint and check subcommands run no gate). *)
let read_circuit path =
  match
    Tool.Pipeline.load
      ~policy:{ Tool.Pipeline.no_lint = true; strict = false }
      (Tool.Pipeline.Deck_file path)
  with
  | Ok loaded -> loaded.Tool.Pipeline.circ
  | Error failure -> fail_run ~file:path failure

let guarded loaded f =
  match Tool.Pipeline.guard loaded f with
  | Ok v -> v
  | Error failure -> fail_run ~file:loaded.Tool.Pipeline.deck_name failure

(* The cached stability run; failures render like any guarded call. *)
let analyze ?options loaded what =
  match Tool.Pipeline.analyze ?options loaded what with
  | Ok outcome -> outcome
  | Error failure -> fail_run ~file:loaded.Tool.Pipeline.deck_name failure

(* ---- common arguments ---- *)

let file_arg =
  Arg.(required & pos 0 (some file) None
       & info [] ~docv:"NETLIST" ~doc:"SPICE-format netlist file.")

let node_arg =
  Arg.(required & opt (some string) None
       & info [ "n"; "node" ] ~docv:"NODE" ~doc:"Circuit net to analyse.")

let fmin_arg =
  Arg.(value & opt float 1e3
       & info [ "fmin" ] ~docv:"HZ" ~doc:"Sweep start frequency.")

let fmax_arg =
  Arg.(value & opt float 1e9
       & info [ "fmax" ] ~docv:"HZ" ~doc:"Sweep stop frequency.")

let ppd_arg =
  Arg.(value & opt int 30
       & info [ "ppd" ] ~docv:"N" ~doc:"Frequency points per decade.")

let sweep_of fmin fmax ppd = Numerics.Sweep.decade fmin fmax ppd

let csv_arg =
  Arg.(value & opt (some string) None
       & info [ "csv" ] ~docv:"FILE"
           ~doc:"Also write the waveform to FILE as CSV.")

let write_csv path text =
  let oc = open_out path in
  output_string oc text;
  close_out oc

let options_of fmin fmax ppd =
  { Stability.Analysis.default_options with
    sweep = sweep_of fmin fmax ppd }

(* ---- parallelism ---- *)

(* [--jobs N] sizes the persistent worker pool (also: ACSTAB_JOBS). The
   term's value is unit so it composes like [log_term]: evaluating it
   configures the pool before the command body runs. *)
let jobs_term =
  let jobs =
    Arg.(value & opt (some int) None
         & info [ "j"; "jobs" ] ~docv:"N"
             ~doc:"Worker-pool parallelism (domains, the main one \
                   included). Defaults to $(b,ACSTAB_JOBS) or the \
                   machine's recommended domain count.")
  in
  Term.(const (fun j -> Option.iter Parallel.Pool.set_jobs j) $ jobs)

(* ---- observability ---- *)

(* [--trace FILE] / [--metrics] switch span recording on for the whole
   command; export happens in [at_exit] so the timeline survives the
   error-path exits (3/4) as well as normal completion. Unit-valued so it
   composes like [log_term]. *)
let obs_term =
  let trace =
    Arg.(value & opt (some string) None
         & info [ "trace" ] ~docv:"FILE"
             ~doc:"Write a Chrome trace-event JSON timeline of the run \
                   (pipeline spans plus solver/pool counters) to \
                   $(docv); view in chrome://tracing or Perfetto.")
  in
  let metrics =
    Arg.(value & flag
         & info [ "metrics" ]
             ~doc:"Print a span/counter summary table plus cache \
                   occupancy (entries/capacity per family) to stderr \
                   when the command finishes.")
  in
  let log =
    Arg.(value & opt (some string) None
         & info [ "log" ] ~docv:"FILE"
             ~doc:"Append the structured event log to $(docv) (NDJSON, \
                   schema acstab-log/1): one line per analysis or \
                   served request plus warnings and lifecycle events. \
                   Also enabled by $(b,ACSTAB_LOG).")
  in
  let setup trace metrics log =
    let log_path =
      match log with
      | Some _ -> log
      | None ->
        (match Sys.getenv_opt "ACSTAB_LOG" with
         | Some "" | None -> None
         | some -> some)
    in
    (match log_path with
     | None -> ()
     | Some path ->
       (try Obs.Events.to_file path
        with Sys_error m ->
          Printf.eprintf "acstab: cannot open --log %s: %s\n%!" path m;
          exit 2));
    if trace <> None || metrics then begin
      Obs.Span.enable ();
      at_exit (fun () ->
          (* One snapshot feeds both consumers: with the old
             per-consumer [Span.drain] calls, interleaved span recording
             between the two exports could leave the trace and the
             metrics table disagreeing about the same run. *)
          let events = Obs.Span.events () in
          Option.iter
            (fun path -> Obs.Trace.write_events path events)
            trace;
          if metrics then begin
            Format.eprintf "%a" (Obs.Metrics.pp_events events) ();
            (* Occupancy is state, not a monotonic counter, so it is
               read off the cache itself rather than the registry. *)
            List.iter
              (fun (s : Tool.Cache.family_stats) ->
                Format.eprintf
                  "cache.%s: %d/%d entries, %d hit(s), %d miss(es), %d \
                   eviction(s)@."
                  s.family s.entries s.capacity s.hits s.misses
                  s.evictions)
              (Tool.Cache.stats (Tool.Cache.global ()));
            Format.eprintf "@?"
          end)
    end
  in
  Term.(const setup $ trace $ metrics $ log)

(* [--health-sample N] tunes how often the solver layer pays for a
   condition estimate (every Nth factorisation); unit-valued so it
   composes like [jobs_term]. *)
let health_term =
  let sample =
    Arg.(value & opt (some int) None
         & info [ "health-sample" ] ~docv:"N"
             ~doc:"Record factorisation health (rcond, pivot growth, \
                   residual) every $(docv)th frequency point (default \
                   16; 1 = every point).")
  in
  Term.(const (fun n -> Option.iter Engine.Health.set_sample_every n)
        $ sample)

(* ---- run manifests ---- *)

let manifest_arg =
  Arg.(value & opt (some string) None
       & info [ "manifest" ] ~docv:"FILE"
           ~doc:"Write a run manifest (deck fingerprint, options, \
                 per-node results with health grades, counters, \
                 histogram summaries, timing) as JSON to $(docv); \
                 compare two with $(b,acstab diff).")

(* Solver backend selector, mirrored by the serve protocol's "backend"
   member. Auto picks the compiled plan above the dense cutoff; kernel
   additionally flattens it into the straight-line factor/solve program
   (bit-identical numbers, fastest sweeps). *)
let backend_arg =
  Arg.(value
       & opt
           (enum
              [ ("auto", `Auto); ("dense", `Dense); ("sparse", `Sparse);
                ("plan", `Plan); ("kernel", `Kernel) ])
           `Auto
       & info [ "backend" ] ~docv:"NAME"
           ~doc:"Linear-solver path: $(b,auto) (default), $(b,dense),                  $(b,sparse), $(b,plan), or $(b,kernel) (the compiled                  per-circuit solve kernel; identical numbers to                  $(b,plan), fastest dense sweeps).")

(* Tri-state parallel selector: the default Auto heuristic parallelises
   when the workload's volume warrants the pool; the flags force it. *)
let par_term =
  Arg.(value
       & vflag `Auto
           [ (`Par,
              info [ "parallel" ]
                ~doc:"Force pooled parallel execution.");
             (`Seq,
              info [ "sequential" ]
                ~doc:"Force sequential execution (results are identical \
                      either way).") ])

(* ---- single-node ---- *)

let html_arg =
  Arg.(value & opt (some string) None
       & info [ "html" ] ~docv:"FILE"
           ~doc:"Also write a self-contained HTML report with SVG plots.")

let single_node_cmd =
  let plot =
    Arg.(value & flag
         & info [ "plot" ] ~doc:"Print the full stability plot table.")
  in
  let run () () () () lint file node fmin fmax ppd plot html manifest
      parallel backend =
    let loaded = load_deck lint file in
    let options = { (options_of fmin fmax ppd) with
                    Stability.Analysis.parallel; backend } in
    let o = analyze ~options loaded (Tool.Pipeline.Single_node node) in
    let r = List.hd o.Tool.Pipeline.results in
    Stability.Report.single_node Format.std_formatter r;
    if plot then
      Stability.Stability_plot.pp Format.std_formatter
        r.Stability.Analysis.plot;
    Option.iter
      (fun path ->
        Tool.Html_report.write path
          (Tool.Html_report.single_node loaded.Tool.Pipeline.circ r))
      html;
    Option.iter
      (fun path -> Tool.Manifest.write path o.Tool.Pipeline.manifest)
      manifest
  in
  Cmd.v
    (Cmd.info "single-node"
       ~doc:"Stability peak and natural frequency of one net (paper \
             'Single Node' run mode).")
    Term.(const run $ log_term $ jobs_term $ obs_term $ health_term
          $ lint_term $ file_arg
          $ node_arg $ fmin_arg $ fmax_arg $ ppd_arg $ plot $ html_arg
          $ manifest_arg $ par_term $ backend_arg)

(* ---- all-nodes ---- *)

let all_nodes_cmd =
  let annotate =
    Arg.(value & flag
         & info [ "annotate" ]
             ~doc:"Also print the netlist annotated with per-net results.")
  in
  let nodes =
    Arg.(value & opt (some (list string)) None
         & info [ "nodes" ] ~docv:"N1,N2,..."
             ~doc:"Restrict the scan to these nets. The special value \
                   $(b,auto) probes the static signal-flow report's \
                   greedy cover instead: the fewest nets that still \
                   observe every enumerated feedback loop (see $(b,acstab \
                   loops)).")
  in
  let run () () () () lint file fmin fmax ppd nodes annotate html manifest
      parallel backend =
    let loaded = load_deck lint file in
    let options = { (options_of fmin fmax ppd) with
                    Stability.Analysis.parallel; backend } in
    let what =
      match nodes with
      | Some [ "auto" ] -> Tool.Pipeline.Auto_nodes
      | nodes -> Tool.Pipeline.All_nodes nodes
    in
    let o = analyze ~options loaded what in
    let results = o.Tool.Pipeline.results in
    let circ = loaded.Tool.Pipeline.circ in
    Stability.Report.all_nodes Format.std_formatter results;
    if annotate then
      Stability.Annotate.netlist Format.std_formatter circ results;
    Option.iter
      (fun path ->
        Tool.Html_report.write path (Tool.Html_report.all_nodes circ results))
      html;
    Option.iter
      (fun path -> Tool.Manifest.write path o.Tool.Pipeline.manifest)
      manifest
  in
  Cmd.v
    (Cmd.info "all-nodes"
       ~doc:"Stability peaks of every net, grouped by loop (paper 'All \
             Nodes' run mode, Table 2).")
    Term.(const run $ log_term $ jobs_term $ obs_term $ health_term
          $ lint_term $ file_arg
          $ fmin_arg $ fmax_arg $ ppd_arg $ nodes $ annotate $ html_arg
          $ manifest_arg $ par_term $ backend_arg)

(* ---- run (directive-driven) ---- *)

let run_cmd =
  let run () () () lint file manifest =
    let loaded = load_deck lint file in
    let circ = loaded.Tool.Pipeline.circ in
    guarded loaded @@ fun () ->
    let s = Tool.Ocean.simulator "builtin" in
    Tool.Ocean.design s circ;
    (* Directive-driven runs are the "push-button" mode; failures here
       produce a diagnostic report with the lint findings embedded so the
       structural context travels with the error. *)
    let findings =
      List.map
        (fun f -> Format.asprintf "%a" (Lint.Rule.pp_finding ~file) f)
        (Lint.Runner.run circ)
    in
    let w0 = Unix.gettimeofday () and c0 = Tool.Pipeline.cpu_seconds () in
    (* One manifest helper serves the crash report (results-free: the
       deck fingerprint, options and counter/histogram state still
       travel with the error) and the success path. *)
    let manifest_now results =
      Tool.Pipeline.manifest_of loaded ~options:[ ("mode", "run") ] ~results
        ~wall_s:(Unix.gettimeofday () -. w0)
        ~cpu_s:(Tool.Pipeline.cpu_seconds () -. c0)
    in
    let r =
      match
        Tool.Diagnostics.guard ~operation:("run " ^ file) ~findings
          ~manifest:(fun () -> Tool.Manifest.to_json (manifest_now []))
          (fun () -> Tool.Ocean.run s)
      with
      | Ok r -> r
      | Error report ->
        Format.eprintf "%a@." Tool.Diagnostics.pp_report report;
        exit 3
    in
    Option.iter
      (fun path -> Tool.Manifest.write path (manifest_now r.Tool.Ocean.stab))
      manifest;
    (match r.Tool.Ocean.op with
     | Some op -> Engine.Dcop.pp_report Format.std_formatter op
     | None -> ());
    (match r.Tool.Ocean.ac with
     | Some ac ->
       Printf.printf "AC analysis: %d frequency points (use `acstab ac`                       for tables)
"
         (Array.length ac.Engine.Ac.freqs)
     | None -> ());
    (match r.Tool.Ocean.tran with
     | Some tr ->
       Printf.printf "transient: %d time points to %gs
"
         (Array.length tr.Engine.Transient.times)
         tr.Engine.Transient.times.(Array.length tr.Engine.Transient.times - 1)
     | None -> ());
    if r.Tool.Ocean.stab <> [] then
      print_string (Tool.Ocean.stab_report r)
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:"Execute the analyses named by the deck's dot-cards (.op,              .ac, .tran, .stab).")
    Term.(const run $ log_term $ obs_term $ health_term $ lint_term
          $ file_arg $ manifest_arg)

(* ---- probe ---- *)

let probe_cmd =
  let run () () lint file node fmin fmax ppd csv =
    let loaded = load_deck lint file in
    let circ = loaded.Tool.Pipeline.circ in
    guarded loaded @@ fun () ->
    let probe = Stability.Probe.prepare circ in
    let w =
      Stability.Probe.response probe ~sweep:(sweep_of fmin fmax ppd) node
    in
    Option.iter
      (fun path -> write_csv path (Engine.Waveform.Freq.to_csv w))
      csv;
    let mag = Engine.Waveform.Freq.mag w in
    let ph = Engine.Waveform.Freq.phase_deg w in
    Printf.printf "%14s %14s %12s
" "freq [Hz]" "|Z| [Ohm]" "phase [deg]";
    Array.iteri
      (fun k f ->
        Printf.printf "%14s %14s %12.3f
" (Numerics.Engnum.format f)
          (Numerics.Engnum.format mag.(k))
          ph.(k))
      w.Engine.Waveform.Freq.freqs
  in
  Cmd.v
    (Cmd.info "probe"
       ~doc:"Driving-point impedance of a net (the raw quantity the              stability plot differentiates).")
    Term.(const run $ log_term $ obs_term $ lint_term $ file_arg $ node_arg
          $ fmin_arg $ fmax_arg $ ppd_arg $ csv_arg)

(* ---- op ---- *)

let op_cmd =
  let run () lint file =
    let loaded = load_deck lint file in
    let circ = loaded.Tool.Pipeline.circ in
    guarded loaded @@ fun () ->
    let op = Engine.Dcop.solve (Engine.Mna.compile circ) in
    Engine.Dcop.pp_report Format.std_formatter op
  in
  Cmd.v (Cmd.info "op" ~doc:"DC operating point report.")
    Term.(const run $ log_term $ lint_term $ file_arg)

(* ---- ac ---- *)

let ac_cmd =
  let run () lint file node fmin fmax ppd csv =
    let loaded = load_deck lint file in
    let circ = loaded.Tool.Pipeline.circ in
    guarded loaded @@ fun () ->
    let ac = Engine.Ac.run ~sweep:(sweep_of fmin fmax ppd) circ in
    let w = Engine.Ac.v ac node in
    let db = Engine.Waveform.Freq.db w in
    let ph = Engine.Waveform.Freq.phase_deg w in
    Printf.printf "%14s %12s %12s\n" "freq [Hz]" "mag [dB]" "phase [deg]";
    Array.iteri
      (fun k f ->
        Printf.printf "%14s %12.4f %12.3f\n" (Numerics.Engnum.format f)
          db.(k) ph.(k))
      w.Engine.Waveform.Freq.freqs;
    Option.iter
      (fun path -> write_csv path (Engine.Waveform.Freq.to_csv w))
      csv
  in
  Cmd.v (Cmd.info "ac" ~doc:"AC magnitude/phase of a net.")
    Term.(const run $ log_term $ lint_term $ file_arg $ node_arg $ fmin_arg
          $ fmax_arg $ ppd_arg $ csv_arg)

(* ---- tran ---- *)

let tran_cmd =
  let tstop =
    Arg.(required & opt (some float) None
         & info [ "tstop" ] ~docv:"S" ~doc:"Simulation end time.")
  in
  let tstep =
    Arg.(required & opt (some float) None
         & info [ "tstep" ] ~docv:"S" ~doc:"Nominal time step.")
  in
  let run () lint file node tstop tstep csv =
    let loaded = load_deck lint file in
    let circ = loaded.Tool.Pipeline.circ in
    guarded loaded @@ fun () ->
    let tr = Engine.Transient.run ~tstop ~tstep circ in
    let w = Engine.Transient.v tr node in
    Option.iter
      (fun path ->
        write_csv path
          (Engine.Waveform.Real.to_csv ~header:("time_s", "volts") w))
      csv;
    Array.iteri
      (fun k t ->
        Printf.printf "%.9e %.9e\n" t w.Engine.Waveform.Real.y.(k))
      w.Engine.Waveform.Real.x;
    let m = Engine.Measure.step_metrics w in
    Printf.eprintf
      "# final=%g peak=%g overshoot=%.1f%% rise=%gs settle=%gs\n"
      m.Engine.Measure.final m.Engine.Measure.peak
      m.Engine.Measure.overshoot_pct m.Engine.Measure.rise_time
      m.Engine.Measure.settle_time
  in
  Cmd.v (Cmd.info "tran" ~doc:"Transient waveform of a net (time value \
                               pairs on stdout, metrics on stderr).")
    Term.(const run $ log_term $ lint_term $ file_arg $ node_arg $ tstop
          $ tstep $ csv_arg)

(* ---- loopgain ---- *)

let loopgain_cmd =
  let device =
    Arg.(required & opt (some string) None
         & info [ "device" ] ~docv:"NAME"
             ~doc:"Device whose terminal wire is broken.")
  in
  let terminal =
    Arg.(value & opt int 1
         & info [ "terminal" ] ~docv:"K"
             ~doc:"Terminal index (device_nodes order, default 1).")
  in
  let meth =
    Arg.(value & opt (enum [ ("lc", `Lc); ("middlebrook", `Mb) ]) `Mb
         & info [ "method" ] ~doc:"lc (classic LC break) or middlebrook.")
  in
  let run () lint file device terminal meth fmin fmax ppd =
    let loaded = load_deck lint file in
    let circ = loaded.Tool.Pipeline.circ in
    guarded loaded @@ fun () ->
    let sweep = sweep_of fmin fmax ppd in
    let r =
      match meth with
      | `Lc -> Engine.Loopgain.lc_break ~sweep circ ~device ~terminal
      | `Mb -> Engine.Loopgain.middlebrook ~sweep circ ~device ~terminal
    in
    Format.printf "%a@." Engine.Measure.pp_margins (Engine.Loopgain.margins r)
  in
  Cmd.v
    (Cmd.info "loopgain"
       ~doc:"Open-loop gain/phase margins (the traditional baseline, \
             paper Fig 3).")
    Term.(const run $ log_term $ lint_term $ file_arg $ device $ terminal
          $ meth $ fmin_arg $ fmax_arg $ ppd_arg)

(* ---- poles ---- *)

let poles_cmd =
  let run () lint file =
    let loaded = load_deck lint file in
    let circ = loaded.Tool.Pipeline.circ in
    guarded loaded @@ fun () ->
    let poles = Engine.Poles.of_circuit circ in
    Printf.printf "%d finite poles; system is %s
" (List.length poles)
      (if Engine.Poles.is_stable poles then "stable" else "UNSTABLE");
    List.iter (fun p -> Format.printf "  %a@." Engine.Poles.pp p) poles;
    (match Engine.Poles.complex_pairs poles with
     | [] -> print_endline "no complex pairs (no resonant loops)"
     | pairs ->
       print_endline "complex pairs (one per conjugate pair):";
       List.iter
         (fun p -> Format.printf "  %a@." Engine.Poles.pp p)
         pairs)
  in
  Cmd.v
    (Cmd.info "poles"
       ~doc:"Exact small-signal poles of the whole system (eigenvalues of              the MNA pencil) -- ground truth for the stability plot.")
    Term.(const run $ log_term $ lint_term $ file_arg)

(* ---- noise ---- *)

let noise_cmd =
  let at =
    Arg.(value & opt (some float) None
         & info [ "at" ] ~docv:"HZ"
             ~doc:"Print the contribution breakdown at this frequency                    (default: the PSD maximum).")
  in
  let run () lint file node fmin fmax ppd at =
    let loaded = load_deck lint file in
    let circ = loaded.Tool.Pipeline.circ in
    guarded loaded @@ fun () ->
    let r =
      Engine.Noise.run ~sweep:(sweep_of fmin fmax ppd) ~output:node circ
    in
    Printf.printf "%14s %16s
" "freq [Hz]" "noise [V/rtHz]";
    Array.iteri
      (fun k f ->
        Printf.printf "%14s %16s
" (Numerics.Engnum.format f)
          (Numerics.Engnum.format (sqrt r.Engine.Noise.total.(k))))
      r.Engine.Noise.freqs;
    let at_hz =
      match at with
      | Some f -> f
      | None ->
        r.Engine.Noise.freqs.(Numerics.Vec.argmax r.Engine.Noise.total)
    in
    Format.printf "@.%a" (Engine.Noise.pp_summary ~at_hz) r
  in
  Cmd.v
    (Cmd.info "noise"
       ~doc:"Output noise spectrum of a net; an unstable loop's noise              peaks at its natural frequency (paper section 1.2).")
    Term.(const run $ log_term $ lint_term $ file_arg $ node_arg $ fmin_arg
          $ fmax_arg $ ppd_arg $ at)

(* ---- sensitivity ---- *)

let sensitivity_cmd =
  let run () lint file node fmin fmax ppd =
    let loaded = load_deck lint file in
    let circ = loaded.Tool.Pipeline.circ in
    guarded loaded @@ fun () ->
    let options = options_of fmin fmax ppd in
    (try
       let entries = Stability.Sensitivity.of_loop ~options circ ~node in
       Stability.Sensitivity.pp Format.std_formatter entries
     with Failure m ->
       Printf.eprintf "%s
" m;
       exit 1)
  in
  Cmd.v
    (Cmd.info "sensitivity"
       ~doc:"Rank the passive components by their influence on a loop's              damping (which part to change to fix the loop).")
    Term.(const run $ log_term $ lint_term $ file_arg $ node_arg $ fmin_arg
          $ fmax_arg $ ppd_arg)

(* ---- stab-track ---- *)

let stab_track_cmd =
  let device =
    Arg.(required & opt (some string) None
         & info [ "device" ] ~docv:"NAME"
             ~doc:"Passive component (R/C/L) to sweep.")
  in
  let from_v =
    Arg.(required & opt (some float) None
         & info [ "from" ] ~docv:"VAL" ~doc:"Start value.")
  in
  let to_v =
    Arg.(required & opt (some float) None
         & info [ "to" ] ~docv:"VAL" ~doc:"Stop value.")
  in
  let points =
    Arg.(value & opt int 9 & info [ "points" ] ~docv:"N" ~doc:"Steps.")
  in
  let zeta_target =
    Arg.(value & opt (some float) None
         & info [ "zeta" ] ~docv:"Z"
             ~doc:"Also report the value where damping crosses Z.")
  in
  let run () lint file node device from_v to_v points zeta_target fmin fmax
      ppd =
    let loaded = load_deck lint file in
    let circ = loaded.Tool.Pipeline.circ in
    guarded loaded @@ fun () ->
    let options = options_of fmin fmax ppd in
    let values =
      (* Log spacing when the endpoints allow it (component values). *)
      if from_v > 0. && to_v > from_v then
        Numerics.Vec.logspace from_v to_v points
      else Numerics.Vec.linspace from_v to_v points
    in
    let traj =
      Stability.Tracking.component ~options circ ~device ~values ~node
    in
    Stability.Tracking.pp Format.std_formatter traj;
    Option.iter
      (fun z ->
        match Stability.Tracking.critical_value traj ~zeta_target:z with
        | Some v ->
          Format.printf "damping crosses %.2f at %s = %s@." z device
            (Numerics.Engnum.format v)
        | None -> Format.printf "damping never crosses %.2f in range@." z)
      zeta_target
  in
  Cmd.v
    (Cmd.info "stab-track"
       ~doc:"Track a loop's natural frequency and damping across a              component sweep (compensation sizing).")
    Term.(const run $ log_term $ lint_term $ file_arg $ node_arg $ device
          $ from_v $ to_v $ points $ zeta_target $ fmin_arg $ fmax_arg
          $ ppd_arg)

(* ---- dcsweep ---- *)

let dcsweep_cmd =
  let source =
    Arg.(required & opt (some string) None
         & info [ "source" ] ~docv:"NAME" ~doc:"V/I source to sweep.")
  in
  let from_v =
    Arg.(required & opt (some float) None
         & info [ "from" ] ~docv:"V" ~doc:"Start value.")
  in
  let to_v =
    Arg.(required & opt (some float) None
         & info [ "to" ] ~docv:"V" ~doc:"Stop value.")
  in
  let points =
    Arg.(value & opt int 51 & info [ "points" ] ~docv:"N" ~doc:"Steps.")
  in
  let run () lint file node source from_v to_v points csv =
    let loaded = load_deck lint file in
    let circ = loaded.Tool.Pipeline.circ in
    guarded loaded @@ fun () ->
    let values = Numerics.Vec.linspace from_v to_v points in
    let r = Engine.Dcsweep.source circ ~name:source ~values in
    let w = Engine.Dcsweep.v r node in
    Option.iter
      (fun path ->
        write_csv path
          (Engine.Waveform.Real.to_csv ~header:("swept", "volts") w))
      csv;
    Printf.printf "%14s %14s\n" source ("V(" ^ node ^ ")");
    Array.iteri
      (fun k v ->
        Printf.printf "%14g %14.6g\n" v w.Engine.Waveform.Real.y.(k))
      w.Engine.Waveform.Real.x
  in
  Cmd.v
    (Cmd.info "dcsweep"
       ~doc:"Sweep a source's DC value and print a node's transfer curve.")
    Term.(const run $ log_term $ lint_term $ file_arg $ node_arg $ source
          $ from_v $ to_v $ points $ csv_arg)

(* ---- montecarlo ---- *)

let montecarlo_cmd =
  let n =
    Arg.(value & opt int 50
         & info [ "samples" ] ~docv:"N" ~doc:"Sample count.")
  in
  let seed =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"S" ~doc:"Base seed.")
  in
  let sigma =
    Arg.(value & opt float 0.05
         & info [ "sigma" ] ~docv:"REL"
             ~doc:"Relative sigma on every R/C/L value.")
  in
  let run () () () lint file node n seed sigma parallel =
    let loaded = load_deck lint file in
    let circ = loaded.Tool.Pipeline.circ in
    guarded loaded @@ fun () ->
    let spec =
      { Tool.Montecarlo.default_spec with passive_sigma = sigma }
    in
    let mc =
      Tool.Montecarlo.run ~parallel ~spec ~n ~seed circ (fun c ->
          match
            (Stability.Analysis.single_node c node)
              .Stability.Analysis.dominant
          with
          | Some d -> Option.value ~default:1. d.Stability.Peaks.zeta
          | None -> 1.)
    in
    let st = Tool.Montecarlo.stats mc in
    Format.printf "loop damping (zeta) at %s under %.1f%%-sigma mismatch:@."
      node (100. *. sigma);
    Format.printf "  %a@." Tool.Montecarlo.pp_stats st;
    List.iter
      (fun target ->
        Format.printf "  yield (zeta >= %.2f): %.1f%%@." target
          (100. *. Tool.Montecarlo.yield mc ~ok:(fun z -> z >= target)))
      [ 0.2; 0.3; 0.5 ]
  in
  Cmd.v
    (Cmd.info "montecarlo"
       ~doc:"Mismatch Monte Carlo on a loop's damping ratio.")
    Term.(const run $ log_term $ jobs_term $ obs_term $ lint_term $ file_arg
          $ node_arg $ n $ seed $ sigma $ par_term)

(* ---- table1 ---- *)

let table1_cmd =
  let run () =
    Control.Second_order.pp_table1 Format.std_formatter
      (Control.Second_order.table1 ())
  in
  Cmd.v
    (Cmd.info "table1"
       ~doc:"Second-order system characteristics (paper Table 1).")
    Term.(const run $ log_term)

(* ---- lint ---- *)

let lint_cmd =
  let json =
    Arg.(value & flag
         & info [ "json" ] ~doc:"Emit the report as JSON on stdout.")
  in
  let strict =
    Arg.(value & flag
         & info [ "strict" ] ~doc:"Exit non-zero on warnings too.")
  in
  let disable =
    Arg.(value & opt (list string) []
         & info [ "disable" ] ~docv:"ID1,ID2"
             ~doc:"Rule IDs to switch off for this run.")
  in
  let run () file json strict disable =
    List.iter
      (fun id ->
        if Lint.Rules.find id = None then begin
          Printf.eprintf "unknown rule ID %S (see the manual's rule \
                          catalogue)\n" id;
          exit 2
        end)
      disable;
    let circ = read_circuit file in
    let findings =
      Lint.Runner.run ~config:{ Lint.Runner.disabled = disable } circ
    in
    if json then print_endline (Lint.Json.report ~file findings)
    else begin
      print_findings ~file Format.std_formatter findings;
      let count sev =
        List.length
          (List.filter
             (fun (f : Lint.Rule.finding) -> f.severity = sev)
             findings)
      in
      Format.printf "%s: %d error(s), %d warning(s), %d info@." file
        (count Lint.Rule.Error) (count Lint.Rule.Warning)
        (count Lint.Rule.Info)
    end;
    let failing (f : Lint.Rule.finding) =
      f.severity = Lint.Rule.Error
      || (strict && f.severity = Lint.Rule.Warning)
    in
    if List.exists failing findings then exit 1
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:"Static analysis of a netlist: wiring mistakes, suspicious \
             values and structural singularities, with rule IDs and \
             source lines.")
    Term.(const run $ log_term $ file_arg $ json $ strict $ disable)

(* ---- loops ---- *)

let loops_cmd =
  let json =
    Arg.(value & flag
         & info [ "json" ]
             ~doc:"Emit the report as one JSON object (schema \
                   acstab-loops/1) on stdout.")
  in
  let max_len =
    Arg.(value & opt int Staticanalysis.Report.default_bounds.max_len
         & info [ "max-len" ] ~docv:"N"
             ~doc:"Longest elementary cycle enumerated (nets per loop).")
  in
  let max_cycles =
    Arg.(value & opt int Staticanalysis.Report.default_bounds.max_cycles
         & info [ "max-cycles" ] ~docv:"N"
             ~doc:"Stop after this many cycles (the report is flagged \
                   truncated).")
  in
  let run () () file json max_len max_cycles =
    (* No lint gate: the loops report is itself a static diagnostic, so
       it must work on exactly the decks lint complains about. *)
    let loaded =
      match
        Tool.Pipeline.load
          ~policy:{ Tool.Pipeline.no_lint = true; strict = false }
          (Tool.Pipeline.Deck_file file)
      with
      | Ok l -> l
      | Error failure -> fail_run ~file failure
    in
    let bounds = { Staticanalysis.Cycles.max_len; max_cycles } in
    let report, _ = Tool.Pipeline.static_report ~bounds loaded in
    if json then
      print_endline
        (Tool.Json.to_string
           (Tool.Loops_report.json ~deck:file
              ~sha256:loaded.Tool.Pipeline.sha256 report))
    else print_string (Tool.Loops_report.render ~deck:file report)
  in
  Cmd.v
    (Cmd.info "loops"
       ~doc:"Static signal-flow analysis of a netlist without solving \
             anything: enumerate the feedback loops (global vs. local, \
             ranked by structural gain order), compute the probe cover \
             that $(b,--nodes auto) analyzes, and flag undrivable nets \
             and open-loop gain devices.")
    Term.(const run $ log_term $ obs_term $ file_arg $ json $ max_len
          $ max_cycles)

(* ---- check ---- *)

let check_cmd =
  let run () file =
    let circ = read_circuit file in
    match Circuit.Topology.check circ with
    | [] -> print_endline "no structural issues found"
    | issues ->
      List.iter
        (fun i -> Format.printf "%a@." Circuit.Topology.pp_issue i)
        issues;
      exit 1
  in
  Cmd.v (Cmd.info "check" ~doc:"Structural sanity checks on a netlist.")
    Term.(const run $ log_term $ file_arg)

(* ---- diff ---- *)

let diff_cmd =
  let manifest_pos k doc =
    Arg.(required & pos k (some file) None & info [] ~docv:"MANIFEST" ~doc)
  in
  let rtol_fn =
    Arg.(value & opt float Tool.Manifest.default_diff_options.rtol_fn
         & info [ "rtol-fn" ] ~docv:"REL"
             ~doc:"Relative tolerance on natural frequencies.")
  in
  let rtol_zeta =
    Arg.(value & opt float Tool.Manifest.default_diff_options.rtol_zeta
         & info [ "rtol-zeta" ] ~docv:"REL"
             ~doc:"Relative tolerance on damping ratios.")
  in
  let json =
    Arg.(value & flag
         & info [ "json" ]
             ~doc:"Emit the comparison as one machine-readable JSON \
                   object (schema acstab-diff/1) on stdout instead of \
                   the human-readable change list. The exit-code \
                   contract is unchanged: 0 agree, 5 regressions.")
  in
  let run () a_path b_path rtol_fn rtol_zeta json =
    let load path =
      match Tool.Manifest.load path with
      | Ok m -> m
      | Error e ->
        Printf.eprintf "%s: %s\n" path e;
        exit 2
    in
    let a = load a_path and b = load b_path in
    if a.Tool.Manifest.deck_sha256 <> b.Tool.Manifest.deck_sha256 then
      Printf.eprintf
        "note: manifests fingerprint different decks (%s vs %s)\n"
        a.Tool.Manifest.deck_file b.Tool.Manifest.deck_file;
    let changes = Tool.Manifest.diff ~options:{ rtol_fn; rtol_zeta } a b in
    if json then begin
      print_endline
        (Tool.Json.to_string (Tool.Manifest.diff_json ~a ~b changes));
      if changes <> [] then exit 5
    end
    else
      match changes with
      | [] ->
        Printf.printf "manifests agree: %d node(s) within tolerance\n"
          (List.length a.Tool.Manifest.nodes)
      | changes ->
        List.iter
          (fun c -> Format.printf "%a@." Tool.Manifest.pp_change c)
          changes;
        Printf.printf "%d regression(s)\n" (List.length changes);
        (* Exit 5: regression found — distinct from parse/usage errors
           (2), analysis failures (3) and the lint gate (4), so CI can
           tell "the run changed" from "the run broke". *)
        exit 5
  in
  Cmd.v
    (Cmd.info "diff"
       ~doc:"Compare two run manifests: added/removed/shifted peaks and \
             quality downgrades. Exit 0 when B agrees with reference A \
             within tolerance, 5 on regressions.")
    Term.(const run $ log_term
          $ manifest_pos 0 "Reference manifest (A)."
          $ manifest_pos 1 "Candidate manifest (B)."
          $ rtol_fn $ rtol_zeta $ json)

(* ---- serve ---- *)

let serve_cmd =
  let socket =
    Arg.(required & opt (some string) None
         & info [ "socket" ] ~docv:"PATH"
             ~doc:"Unix-domain socket to listen on. A stale socket file \
                   left by a dead daemon is unlinked and replaced; if a \
                   live daemon already answers on it, this command \
                   refuses to start instead of stealing the path.")
  in
  let capacity =
    Arg.(value & opt int Tool.Cache.default_capacity
         & info [ "cache-capacity" ] ~docv:"N"
             ~doc:"Entries kept per cache family (operating points, \
                   solve plans, result sets, signal-flow reports) \
                   before LRU eviction.")
  in
  let slow_ms =
    Arg.(value & opt (some float) None
         & info [ "slow-ms" ] ~docv:"MS"
             ~doc:"Log any request taking at least $(docv) milliseconds \
                   as a server.slow_request event carrying the \
                   request's span tree (keeps span recording on for \
                   the life of the daemon).")
  in
  let tick =
    Arg.(value & opt float 1.0
         & info [ "tick" ] ~docv:"S"
             ~doc:"Background gauge-sampling interval in seconds \
                   (cache occupancy, pool busy/queue depth, in-flight \
                   requests) feeding the $(b,metrics) protocol \
                   command.")
  in
  let run () () () () socket capacity slow_ms tick =
    match Tool.Server.serve ~capacity ?slow_ms ~tick_s:tick ~socket () with
    | () -> ()
    | exception Failure m ->
      Printf.eprintf "%s\n" m;
      exit 2
    | exception Unix.Unix_error (e, fn, arg) ->
      Printf.eprintf "%s: %s (%s)\n" fn (Unix.error_message e) arg;
      exit 2
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the resident analysis daemon: newline-delimited JSON \
             requests over a Unix socket, analyzed through the shared \
             pipeline and answered from a fingerprint-keyed cache (a \
             warm request re-solves nothing). $(b,--log) appends one \
             structured event per request; the $(b,metrics) and \
             $(b,trace) protocol commands expose live Prometheus text \
             and on-demand Chrome traces; $(b,acstab top) renders \
             them. See the manual's serve section for the protocol.")
    Term.(const run $ log_term $ jobs_term $ obs_term $ health_term
          $ socket $ capacity $ slow_ms $ tick)

(* ---- top ---- *)

let top_cmd =
  let socket =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"SOCKET"
             ~doc:"Unix-domain socket of a running serve daemon.")
  in
  let once =
    Arg.(value & flag
         & info [ "once" ] ~doc:"Print a single sample and exit.")
  in
  let json =
    Arg.(value & flag
         & info [ "json" ]
             ~doc:"Emit samples as JSON (schema acstab-top/1) instead \
                   of the text dashboard — one document per refresh, \
                   one line each.")
  in
  let interval =
    Arg.(value & opt float 2.0
         & info [ "interval" ] ~docv:"S"
             ~doc:"Seconds between refreshes (looping mode).")
  in
  let run () socket once json interval =
    let client =
      match Tool.Server.Client.connect socket with
      | c -> c
      | exception Unix.Unix_error (e, _, _) ->
        Printf.eprintf "acstab top: cannot connect to %s: %s\n" socket
          (Unix.error_message e);
        exit 2
    in
    let take () =
      match Tool.Top.sample client with
      | Ok s -> s
      | Error m ->
        Printf.eprintf "acstab top: %s\n" m;
        exit 3
      | exception Failure m ->
        (* The daemon shut down under us: report, don't backtrace. *)
        Printf.eprintf "acstab top: %s\n" m;
        exit 3
    in
    let emit ?prev s =
      if json then
        print_endline (Tool.Json.to_string (Tool.Top.to_json ?prev s))
      else begin
        if not once then print_string "\027[2J\027[H";
        print_string (Tool.Top.render ?prev ~socket s)
      end;
      flush stdout
    in
    if once then emit (take ())
    else begin
      let interval = Float.max 0.1 interval in
      let prev = ref None in
      while true do
        let s = take () in
        emit ?prev:!prev s;
        prev := Some s;
        Unix.sleepf interval
      done
    end;
    Tool.Server.Client.close client
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:"Live dashboard over a running serve daemon: request rate, \
             latency percentiles (p50/p90/p99), per-family cache hit \
             ratios and pool utilization, sampled over the daemon's \
             own $(b,stats)/$(b,metrics) protocol commands — no \
             restart, no daemon-side cost beyond two requests per \
             refresh. $(b,--once --json) prints one machine-readable \
             sample for scripting.")
    Term.(const run $ log_term $ socket $ once $ json $ interval)

(* ---- export-builtin ---- *)

let export_cmd =
  let dir =
    Arg.(value & opt string "."
         & info [ "dir" ] ~docv:"DIR" ~doc:"Output directory.")
  in
  let run () dir =
    let dump name circ =
      let path = Filename.concat dir (name ^ ".sp") in
      let oc = open_out path in
      output_string oc (Circuit.Netlist.to_spice circ);
      close_out oc;
      Printf.printf "wrote %s\n" path
    in
    dump "opamp_2mhz_buffer" (Workloads.Opamp_2mhz.buffer ());
    dump "bias_zero_tc" (Workloads.Bias_zero_tc.cell ());
    dump "nmc_amp_buffer" (Workloads.Nmc_amp.buffer ());
    dump "rc_ladder_20" (Workloads.Ladder.rc ())
  in
  Cmd.v
    (Cmd.info "export-builtin"
       ~doc:"Write the built-in workload circuits (the paper's op-amp and              bias cell, the NMC amplifier) as SPICE decks.")
    Term.(const run $ log_term $ dir)

(* ---- synth ---- *)

let synth_cmd =
  let kind =
    Arg.(value
         & opt (enum [ ("mesh", `Mesh); ("tree", `Tree); ("amp", `Amp);
                       ("ladder", `Ladder) ])
             `Mesh
         & info [ "kind" ] ~docv:"KIND"
             ~doc:"Generator family: $(b,mesh) (rows x cols RC grid), \
                   $(b,tree) (fanout-ary RC tree), $(b,amp) (chained \
                   two-pole feedback amplifiers), $(b,ladder) (the RC \
                   ladder chain).")
  in
  let rows =
    Arg.(value & opt int 32
         & info [ "rows" ] ~docv:"N" ~doc:"Mesh rows (mesh kind).")
  in
  let cols =
    Arg.(value & opt int 32
         & info [ "cols" ] ~docv:"N" ~doc:"Mesh columns (mesh kind).")
  in
  let depth =
    Arg.(value & opt int 9
         & info [ "depth" ] ~docv:"N" ~doc:"Tree depth (tree kind).")
  in
  let fanout =
    Arg.(value & opt int 2
         & info [ "fanout" ] ~docv:"N" ~doc:"Tree fanout (tree kind).")
  in
  let stages =
    Arg.(value & opt int 150
         & info [ "stages" ] ~docv:"N"
             ~doc:"Amplifier stages (amp kind).")
  in
  let sections =
    Arg.(value & opt int 1000
         & info [ "sections" ] ~docv:"N"
             ~doc:"Ladder sections (ladder kind).")
  in
  let output =
    Arg.(value & opt (some string) None
         & info [ "o"; "output" ] ~docv:"FILE"
             ~doc:"Write the deck here instead of stdout.")
  in
  let run () kind rows cols depth fanout stages sections output =
    let circ, unknowns =
      match kind with
      | `Mesh ->
        (Workloads.Synth.rc_mesh ~rows ~cols (),
         Workloads.Synth.mesh_unknowns ~rows ~cols)
      | `Tree ->
        (Workloads.Synth.rc_tree ~depth ~fanout (),
         Workloads.Synth.tree_unknowns ~depth ~fanout)
      | `Amp ->
        (Workloads.Synth.amp_array ~stages (),
         Workloads.Synth.amp_array_unknowns ~stages)
      | `Ladder -> (Workloads.Ladder.rc ~sections (), (2 * sections) + 1)
    in
    let text = Circuit.Netlist.to_spice circ in
    match output with
    | None -> print_string text
    | Some path ->
      let oc = open_out path in
      output_string oc text;
      close_out oc;
      Printf.printf "wrote %s (%d unknowns)\n" path unknowns
  in
  Cmd.v
    (Cmd.info "synth"
       ~doc:"Generate a parameterised synthetic benchmark deck (RC mesh, \
             RC tree, chained feedback amplifiers, RC ladder) sized from \
             hundreds to tens of thousands of unknowns — the workloads \
             behind the $(b,--scale) bench and BENCH_scale.json.")
    Term.(const run $ log_term $ kind $ rows $ cols $ depth $ fanout
          $ stages $ sections $ output)

(* ---- demo ---- *)

let demo_cmd =
  let run () =
    let circ = Workloads.Opamp_2mhz.buffer () in
    let loaded =
      match
        Tool.Pipeline.load
          ~policy:{ Tool.Pipeline.no_lint = true; strict = false }
          (Tool.Pipeline.Deck_circuit { name = "opamp_2mhz_buffer"; circ })
      with
      | Ok l -> l
      | Error failure -> fail_run ~file:"opamp_2mhz_buffer" failure
    in
    guarded loaded @@ fun () ->
    print_endline "# The paper's 2 MHz op-amp buffer (Fig 1), all-nodes run:";
    let o = analyze loaded (Tool.Pipeline.All_nodes None) in
    Stability.Report.all_nodes Format.std_formatter o.Tool.Pipeline.results;
    let dev, term = Workloads.Opamp_2mhz.feedback_break in
    let sweep = Numerics.Sweep.decade 1e3 1e9 40 in
    let lg = Engine.Loopgain.middlebrook ~sweep circ ~device:dev
               ~terminal:term in
    Format.printf "@.# Traditional baseline (Fig 3): %a@."
      Engine.Measure.pp_margins (Engine.Loopgain.margins lg)
  in
  Cmd.v
    (Cmd.info "demo"
       ~doc:"End-to-end demo on the paper's built-in op-amp circuit.")
    Term.(const run $ log_term)

let main =
  Cmd.group
    (Cmd.info "acstab" ~version:"1.0.0"
       ~doc:"AC-stability analysis of continuous-time closed-loop circuits \
             without breaking the loop (Milev & Burt, DATE 2005).")
    [ single_node_cmd; all_nodes_cmd; run_cmd; probe_cmd; op_cmd; ac_cmd;
      tran_cmd;
      loopgain_cmd; poles_cmd; noise_cmd; sensitivity_cmd; stab_track_cmd;
      dcsweep_cmd;
      montecarlo_cmd; table1_cmd; lint_cmd; loops_cmd; check_cmd; diff_cmd;
      serve_cmd; top_cmd; export_cmd; synth_cmd; demo_cmd ]

let () = exit (Cmd.eval main)
