(* The observability layer: counters, spans, trace export, metrics
   aggregation. These run in one process sharing the global registry, so
   every test starts from a clean slate via reset/clear and leaves
   tracing disabled. *)

let reset_all () =
  Obs.Span.disable ();
  Obs.Span.clear ();
  Obs.Counter.reset ()

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

(* ---------- counters ---------- *)

let test_counter_basics () =
  reset_all ();
  let c = Obs.Counter.make "test.basic" in
  Alcotest.(check string) "name" "test.basic" (Obs.Counter.name c);
  Alcotest.(check int) "starts at zero" 0 (Obs.Counter.value c);
  Obs.Counter.incr c;
  Obs.Counter.add c 41;
  Alcotest.(check int) "incr + add" 42 (Obs.Counter.value c);
  (* make is idempotent: same name, same cell. *)
  let c' = Obs.Counter.make "test.basic" in
  Obs.Counter.incr c';
  Alcotest.(check int) "same counter through re-make" 43
    (Obs.Counter.value c);
  Alcotest.(check bool) "find sees it" true
    (match Obs.Counter.find "test.basic" with
     | Some f -> Obs.Counter.value f = 43
     | None -> false);
  Alcotest.(check bool) "find does not create" true
    (Obs.Counter.find "test.never-made" = None);
  Alcotest.(check bool) "snapshot lists it" true
    (List.mem ("test.basic", 43) (Obs.Counter.snapshot ()));
  Obs.Counter.reset ();
  Alcotest.(check int) "reset zeroes" 0 (Obs.Counter.value c)

let test_counter_record_max () =
  reset_all ();
  let c = Obs.Counter.make "test.hwm" in
  Obs.Counter.record_max c 7;
  Obs.Counter.record_max c 3;
  Alcotest.(check int) "keeps high water" 7 (Obs.Counter.value c);
  Obs.Counter.record_max c 11;
  Alcotest.(check int) "raises on new max" 11 (Obs.Counter.value c)

let test_counter_parallel () =
  (* Atomic increments from several domains must not lose updates. *)
  reset_all ();
  let c = Obs.Counter.make "test.par" in
  let per_domain = 10_000 and n_domains = 4 in
  let ds =
    List.init n_domains (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to per_domain do
              Obs.Counter.incr c
            done))
  in
  List.iter Domain.join ds;
  Alcotest.(check int) "no lost updates" (per_domain * n_domains)
    (Obs.Counter.value c)

(* ---------- spans ---------- *)

let test_span_disabled_is_silent () =
  reset_all ();
  Alcotest.(check bool) "disabled by default" false (Obs.Span.enabled ());
  let t0 = Obs.Span.enter () in
  Alcotest.(check int) "enter yields 0 when off" 0 t0;
  Obs.Span.leave "off" t0;
  ignore (Obs.Span.with_ "off2" (fun () -> 1 + 1));
  Alcotest.(check int) "nothing recorded" 0
    (List.length (Obs.Span.drain ()))

let test_span_records_when_enabled () =
  reset_all ();
  Obs.Span.enable ();
  let t0 = Obs.Span.enter () in
  Obs.Span.leave ~args:[ ("points", 5) ] "outer" t0;
  let v = Obs.Span.with_ "inner" (fun () -> 42) in
  Obs.Span.disable ();
  Alcotest.(check int) "with_ passes the result through" 42 v;
  let events = Obs.Span.drain () in
  Alcotest.(check int) "two spans" 2 (List.length events);
  let outer =
    List.find (fun e -> e.Obs.Span.name = "outer") events
  in
  Alcotest.(check bool) "args kept" true
    (outer.Obs.Span.args = [ ("points", 5) ]);
  Alcotest.(check bool) "duration non-negative" true
    (List.for_all (fun e -> e.Obs.Span.dur_ns >= 0) events);
  Obs.Span.clear ();
  Alcotest.(check int) "clear discards" 0 (List.length (Obs.Span.drain ()))

let test_span_records_on_exception () =
  reset_all ();
  Obs.Span.enable ();
  (try ignore (Obs.Span.with_ "failing" (fun () -> failwith "boom"))
   with Failure _ -> ());
  Obs.Span.disable ();
  Alcotest.(check bool) "span recorded despite the raise" true
    (List.exists
       (fun e -> e.Obs.Span.name = "failing")
       (Obs.Span.drain ()))

let test_span_multi_domain_drain () =
  reset_all ();
  Obs.Span.enable ();
  let ds =
    List.init 3 (fun k ->
        Domain.spawn (fun () ->
            Obs.Span.with_ (Printf.sprintf "worker%d" k) (fun () -> ())))
  in
  List.iter Domain.join ds;
  Obs.Span.with_ "main" (fun () -> ());
  Obs.Span.disable ();
  let events = Obs.Span.drain () in
  Alcotest.(check int) "all domains drained" 4 (List.length events);
  let tids =
    List.sort_uniq compare (List.map (fun e -> e.Obs.Span.tid) events)
  in
  Alcotest.(check bool) "distinct domain ids" true (List.length tids >= 2);
  let ts = List.map (fun e -> e.Obs.Span.ts_ns) events in
  Alcotest.(check bool) "sorted by start time" true
    (List.sort compare ts = ts)

(* ---------- trace export ---------- *)

let test_trace_json_shape () =
  reset_all ();
  Obs.Span.enable ();
  Obs.Span.with_ ~args:[ ("nets", 2) ] "sweep \"x\"\n" (fun () -> ());
  Obs.Span.disable ();
  Obs.Counter.add (Obs.Counter.make "test.trace") 9;
  let text = Obs.Trace.to_string () in
  Alcotest.(check bool) "object format" true
    (String.length text >= 16 && String.sub text 0 16 = "{\"traceEvents\":[");
  Alcotest.(check bool) "complete event" true (contains text "\"ph\":\"X\"");
  Alcotest.(check bool) "counter event" true
    (contains text "\"name\":\"test.trace\",\"ph\":\"C\"");
  Alcotest.(check bool) "counter value" true (contains text "\"value\":9");
  Alcotest.(check bool) "span args exported" true (contains text "\"nets\":2");
  (* The quote and newline in the span name must be escaped, never raw. *)
  Alcotest.(check bool) "escaped quote" true (contains text "sweep \\\"x\\\"");
  Alcotest.(check bool) "escaped newline" true (contains text "\\n");
  (* Valid enough for a strict parser: balanced braces/brackets outside
     strings. *)
  let depth = ref 0 and in_str = ref false and escaped = ref false in
  String.iter
    (fun ch ->
      if !escaped then escaped := false
      else if !in_str then begin
        if ch = '\\' then escaped := true else if ch = '"' then in_str := false
      end
      else
        match ch with
        | '"' -> in_str := true
        | '{' | '[' -> incr depth
        | '}' | ']' -> decr depth
        | _ -> ())
    text;
  Alcotest.(check int) "balanced structure" 0 !depth;
  Alcotest.(check bool) "not inside a string at EOF" false !in_str

let test_trace_write_roundtrip () =
  reset_all ();
  Obs.Span.enable ();
  Obs.Span.with_ "roundtrip" (fun () -> ());
  Obs.Span.disable ();
  let path = Filename.temp_file "acstab_trace" ".json" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Obs.Trace.write path;
      let ic = open_in_bin path in
      let text =
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      (* Counter events are stamped at serialisation time, so byte
         equality with a later to_string doesn't hold; check shape and
         content instead. *)
      Alcotest.(check bool) "object format" true
        (String.length text >= 16
         && String.sub text 0 16 = "{\"traceEvents\":[");
      Alcotest.(check bool) "span present" true
        (contains text "\"name\":\"roundtrip\""))

(* ---------- histograms ---------- *)

let test_histogram_buckets () =
  (* The log-bucket layout must be monotone and self-consistent: a
     bucket's representative value maps back to that bucket. *)
  let last = ref (-1) in
  for i = 0 to 63 do
    let v = Obs.Histogram.value_of i in
    Alcotest.(check int) (Printf.sprintf "roundtrip bucket %d" i) i
      (Obs.Histogram.bucket_of v);
    Alcotest.(check bool) "monotone" true (i > !last);
    last := i
  done;
  Alcotest.(check int) "non-positive -> lowest" 0
    (Obs.Histogram.bucket_of (-1.));
  Alcotest.(check int) "zero -> lowest" 0 (Obs.Histogram.bucket_of 0.);
  Alcotest.(check int) "nan -> highest" 63 (Obs.Histogram.bucket_of Float.nan);
  Alcotest.(check int) "huge -> highest" 63 (Obs.Histogram.bucket_of 1e300)

let test_histogram_summary () =
  Obs.Histogram.reset ();
  let h = Obs.Histogram.make "test.hist" in
  Alcotest.(check bool) "registry idempotent" true
    (Obs.Histogram.make "test.hist" == h);
  let s0 = Obs.Histogram.summary h in
  Alcotest.(check int) "empty count" 0 s0.Obs.Histogram.count;
  (* 90 samples at ~1e-6 and 10 at ~1e2: p50 must sit in the low mode,
     p99 in the high one, and max is exact (not bucket-quantised). *)
  for _ = 1 to 90 do
    Obs.Histogram.observe h 1.3e-6
  done;
  for _ = 1 to 10 do
    Obs.Histogram.observe h 137.
  done;
  let s = Obs.Histogram.summary h in
  Alcotest.(check int) "count" 100 s.Obs.Histogram.count;
  Alcotest.(check bool) "p50 in low mode" true
    (s.Obs.Histogram.p50 > 1e-7 && s.Obs.Histogram.p50 < 1e-5);
  Alcotest.(check bool) "p99 in high mode" true
    (s.Obs.Histogram.p99 > 10. && s.Obs.Histogram.p99 < 1e4);
  Alcotest.(check (float 0.)) "max exact" 137. s.Obs.Histogram.max;
  Alcotest.(check bool) "snapshot lists it" true
    (List.mem_assoc "test.hist" (Obs.Histogram.snapshot ()));
  Obs.Histogram.reset ();
  Alcotest.(check int) "reset zeroes" 0
    (Obs.Histogram.summary h).Obs.Histogram.count

let test_histogram_parallel () =
  (* Concurrent observation from several domains must not lose samples
     (bins are atomic, max is a CAS loop). *)
  Obs.Histogram.reset ();
  let h = Obs.Histogram.make "test.hist.par" in
  let per_domain = 10_000 and n_domains = 4 in
  let ds =
    List.init n_domains (fun k ->
        Domain.spawn (fun () ->
            for i = 1 to per_domain do
              Obs.Histogram.observe h (float_of_int ((k * per_domain) + i))
            done))
  in
  List.iter Domain.join ds;
  let s = Obs.Histogram.summary h in
  Alcotest.(check int) "no lost samples" (per_domain * n_domains)
    s.Obs.Histogram.count;
  Alcotest.(check (float 0.)) "max survives the race"
    (float_of_int (n_domains * per_domain))
    s.Obs.Histogram.max;
  Obs.Histogram.reset ()

let test_histogram_merge () =
  Obs.Histogram.reset ();
  let a = Obs.Histogram.make "test.merge.a" in
  let b = Obs.Histogram.make "test.merge.b" in
  for _ = 1 to 30 do
    Obs.Histogram.observe a 1.0
  done;
  for _ = 1 to 10 do
    Obs.Histogram.observe b 250.
  done;
  Obs.Histogram.merge ~into:a b;
  let s = Obs.Histogram.summary a in
  Alcotest.(check int) "counts add" 40 s.Obs.Histogram.count;
  Alcotest.(check (float 0.)) "max carried over" 250. s.Obs.Histogram.max;
  Alcotest.(check bool) "p50 still in the dominant mode" true
    (s.Obs.Histogram.p50 > 0.1 && s.Obs.Histogram.p50 < 10.);
  Alcotest.(check bool) "p99 from the merged-in tail" true
    (s.Obs.Histogram.p99 > 50.);
  (* src is untouched and self-merge must not double anything. *)
  Alcotest.(check int) "src unchanged" 10
    (Obs.Histogram.summary b).Obs.Histogram.count;
  Obs.Histogram.merge ~into:a a;
  Alcotest.(check int) "self-merge is a no-op" 40
    (Obs.Histogram.summary a).Obs.Histogram.count;
  Obs.Histogram.reset ()

let test_histogram_snapshot_under_add () =
  (* summary/snapshot taken while another domain observes must stay
     internally consistent (count never exceeds what was published,
     percentiles within the observed range) and never crash. *)
  Obs.Histogram.reset ();
  let h = Obs.Histogram.make "test.snap.par" in
  let total = 50_000 in
  let writer =
    Domain.spawn (fun () ->
        for i = 1 to total do
          Obs.Histogram.observe h (float_of_int i)
        done)
  in
  let last = ref 0 in
  for _ = 1 to 200 do
    let s = Obs.Histogram.summary h in
    Alcotest.(check bool) "count monotone under race" true
      (s.Obs.Histogram.count >= !last);
    last := s.Obs.Histogram.count;
    Alcotest.(check bool) "count bounded" true
      (s.Obs.Histogram.count <= total);
    if s.Obs.Histogram.count > 0 then begin
      Alcotest.(check bool) "max within range" true
        (s.Obs.Histogram.max <= float_of_int total);
      Alcotest.(check bool) "p99 plausible" true
        (s.Obs.Histogram.p99 >= 0.)
    end
  done;
  Domain.join writer;
  Alcotest.(check int) "all samples landed" total
    (Obs.Histogram.summary h).Obs.Histogram.count;
  Obs.Histogram.reset ()

(* ---------- prometheus exposition ---------- *)

let test_prometheus_golden () =
  (* Fixed registry -> byte-exact exposition. Covers the three metric
     kinds, the *_ns -> *_ms unit conversion and name sanitisation. *)
  let summary =
    { Obs.Histogram.count = 4; p50 = 1.; p90 = 2.; p99 = 4.; max = 4.5 }
  in
  let text =
    Obs.Prometheus.render
      ~counters:[ ("pool.lock_wait_ns", 2_500_000); ("server.requests", 7) ]
      ~gauges:[ ("cache.probe.entries", 12.) ]
      ~histograms:[ ("server.request_ms", summary) ]
      ()
  in
  let expected =
    String.concat "\n"
      [ "# TYPE acstab_pool_lock_wait_ms_total counter";
        "acstab_pool_lock_wait_ms_total 2.5";
        "# TYPE acstab_server_requests_total counter";
        "acstab_server_requests_total 7";
        "# TYPE acstab_cache_probe_entries gauge";
        "acstab_cache_probe_entries 12";
        "# TYPE acstab_server_request_ms summary";
        "acstab_server_request_ms{quantile=\"0.5\"} 1";
        "acstab_server_request_ms{quantile=\"0.9\"} 2";
        "acstab_server_request_ms{quantile=\"0.99\"} 4";
        "acstab_server_request_ms_count 4";
        "# TYPE acstab_server_request_ms_max gauge";
        "acstab_server_request_ms_max 4.5";
        "" ]
  in
  Alcotest.(check string) "golden exposition" expected text

let test_prometheus_parse_roundtrip () =
  let summary =
    { Obs.Histogram.count = 3; p50 = 0.25; p90 = 0.5; p99 = 0.5; max = 0.75 }
  in
  let text =
    Obs.Prometheus.render
      ~counters:[ ("server.requests", 11) ]
      ~gauges:[ ("pool.busy_workers", 2.) ]
      ~histograms:[ ("server.request_ms", summary) ]
      ()
  in
  match Obs.Prometheus.parse text with
  | Error e -> Alcotest.failf "render output rejected by parse: %s" e
  | Ok samples ->
    let find ?labels name = Obs.Prometheus.find ?labels name samples in
    Alcotest.(check (option (float 0.))) "counter" (Some 11.)
      (find "acstab_server_requests_total");
    Alcotest.(check (option (float 0.))) "gauge" (Some 2.)
      (find "acstab_pool_busy_workers");
    Alcotest.(check (option (float 0.))) "quantile row" (Some 0.25)
      (find ~labels:[ ("quantile", "0.5") ] "acstab_server_request_ms");
    Alcotest.(check (option (float 0.))) "count row" (Some 3.)
      (find "acstab_server_request_ms_count");
    Alcotest.(check (option (float 0.))) "max gauge" (Some 0.75)
      (find "acstab_server_request_ms_max");
    Alcotest.(check (option (float 0.))) "absent metric" None
      (find "acstab_never_made_total")

let test_prometheus_parse_rejects () =
  List.iter
    (fun bad ->
      match Obs.Prometheus.parse bad with
      | Ok _ -> Alcotest.failf "accepted malformed exposition: %S" bad
      | Error _ -> ())
    [ "9starts_with_digit 1\n"; "no_value\n"; "name{unterminated=\"x 1\n";
      "name bad_float\n" ]

(* ---------- events ---------- *)

let test_events_disarmed_and_ring () =
  Obs.Events.clear ();
  Alcotest.(check bool) "disarmed by default" false (Obs.Events.enabled ());
  Obs.Events.emit "quiet" [ ("k", Obs.Events.Int 1) ];
  Alcotest.(check int) "nothing kept when disarmed" 0
    (List.length (Obs.Events.recent ()));
  Obs.Events.enable_ring ();
  Obs.Events.emit "one" [ ("n", Obs.Events.Int 1) ];
  Obs.Events.emit ~level:Obs.Events.Warn "two" [];
  let evs = Obs.Events.recent () in
  Alcotest.(check int) "ring keeps both" 2 (List.length evs);
  Alcotest.(check bool) "oldest first" true
    ((List.nth evs 0).Obs.Events.name = "one"
     && (List.nth evs 1).Obs.Events.name = "two");
  Alcotest.(check bool) "sequence increases" true
    ((List.nth evs 0).Obs.Events.seq < (List.nth evs 1).Obs.Events.seq);
  Alcotest.(check bool) "level kept" true
    ((List.nth evs 1).Obs.Events.level = Obs.Events.Warn);
  Alcotest.(check int) "recent ~max trims from the old end" 1
    (List.length (Obs.Events.recent ~max:1 ()));
  Obs.Events.disable_ring ();
  Obs.Events.clear ();
  Alcotest.(check int) "clear drops history" 0
    (List.length (Obs.Events.recent ()))

let test_events_line_shape () =
  Obs.Events.enable_ring ();
  Obs.Events.clear ();
  Obs.Events.emit "req \"x\"\n"
    [ ("s", Obs.Events.Str "a\"b"); ("i", Obs.Events.Int (-3));
      ("f", Obs.Events.Float 1.5); ("b", Obs.Events.Bool true) ];
  let ev = List.hd (Obs.Events.recent ()) in
  let line = Obs.Events.line_of ev in
  Obs.Events.disable_ring ();
  Obs.Events.clear ();
  Alcotest.(check bool) "one line" true
    (not (String.contains line '\n'));
  Alcotest.(check bool) "header fields" true
    (contains line "\"ts_ns\":" && contains line "\"seq\":"
     && contains line "\"level\":\"info\"");
  Alcotest.(check bool) "name escaped" true
    (contains line "\"event\":\"req \\\"x\\\"\\n\"");
  Alcotest.(check bool) "string field escaped" true
    (contains line "\"s\":\"a\\\"b\"");
  Alcotest.(check bool) "int field" true (contains line "\"i\":-3");
  Alcotest.(check bool) "float field" true (contains line "\"f\":1.5");
  Alcotest.(check bool) "bool field" true (contains line "\"b\":true");
  (* And the whole line is JSON by the tool's own parser. *)
  Alcotest.(check bool) "line parses as a JSON object" true
    (String.length line > 0 && line.[0] = '{')

let test_events_sink_writes_ndjson () =
  let path = Filename.temp_file "acstab_events" ".ndjson" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Obs.Events.to_file path;
      Obs.Events.emit "first" [ ("n", Obs.Events.Int 1) ];
      Obs.Events.emit "second" [];
      Obs.Events.close_sink ();
      Alcotest.(check bool) "sink detached disarms" false
        (Obs.Events.enabled ());
      let ic = open_in path in
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> close_in ic);
      let lines = List.rev !lines in
      Alcotest.(check int) "log.open + two events" 3 (List.length lines);
      Alcotest.(check bool) "first line announces the schema" true
        (contains (List.nth lines 0) "\"event\":\"log.open\""
         && contains (List.nth lines 0)
              (Printf.sprintf "\"schema\":\"%s\"" Obs.Events.schema));
      Alcotest.(check bool) "events in order" true
        (contains (List.nth lines 1) "\"event\":\"first\""
         && contains (List.nth lines 2) "\"event\":\"second\""))

let test_events_warn_once () =
  Obs.Events.reset_warnings ();
  Obs.Events.enable_ring ();
  Obs.Events.clear ();
  Alcotest.(check int) "unknown key never warned" 0
    (Obs.Events.warn_count "k1");
  Obs.Events.warn_once ~key:"k1" "first message";
  Obs.Events.warn_once ~key:"k1" "suppressed repeat";
  Obs.Events.warn_once ~key:"k1" "suppressed repeat";
  Obs.Events.warn_once ~key:"k2" "other key still fires";
  Alcotest.(check int) "repeats counted" 3 (Obs.Events.warn_count "k1");
  Alcotest.(check int) "independent keys" 1 (Obs.Events.warn_count "k2");
  let warns =
    List.filter
      (fun e -> e.Obs.Events.level = Obs.Events.Warn)
      (Obs.Events.recent ())
  in
  Alcotest.(check int) "one event per key, not per call" 2
    (List.length warns);
  Obs.Events.reset_warnings ();
  Obs.Events.warn_once ~key:"k1" "fires again after reset";
  Alcotest.(check int) "reset forgets" 1 (Obs.Events.warn_count "k1");
  Obs.Events.disable_ring ();
  Obs.Events.clear ();
  Obs.Events.reset_warnings ()

(* ---------- metrics ---------- *)

let test_metrics_rows () =
  reset_all ();
  Obs.Span.enable ();
  Obs.Span.with_ "agg" (fun () -> ());
  Obs.Span.with_ "agg" (fun () -> ());
  Obs.Span.with_ "other" (fun () -> ());
  Obs.Span.disable ();
  let rows = Obs.Metrics.rows () in
  Alcotest.(check int) "aggregated by name" 2 (List.length rows);
  let agg = List.find (fun r -> r.Obs.Metrics.name = "agg") rows in
  Alcotest.(check int) "count folded" 2 agg.Obs.Metrics.count;
  Alcotest.(check bool) "max <= total" true
    (agg.Obs.Metrics.max_ns <= agg.Obs.Metrics.total_ns);
  Obs.Counter.add (Obs.Counter.make "test.metrics") 3;
  let text = Format.asprintf "%a" Obs.Metrics.pp () in
  Alcotest.(check bool) "span table printed" true (contains text "agg");
  Alcotest.(check bool) "counter printed" true (contains text "test.metrics")

let test_metrics_empty () =
  reset_all ();
  let text = Format.asprintf "%a" Obs.Metrics.pp () in
  Alcotest.(check bool) "empty notice" true
    (contains text "no spans or counters recorded")

(* Regression: --trace FILE --metrics together. Both exporters must see
   the same spans from one [Span.events] snapshot — the old shape called
   a drain per consumer, so spans recorded between the two exports made
   the trace and the table disagree about the same run. *)
let test_snapshot_feeds_both_consumers () =
  reset_all ();
  Obs.Span.enable ();
  Obs.Span.with_ "both" (fun () -> ());
  Obs.Span.disable ();
  let events = Obs.Span.events () in
  let trace = Obs.Trace.to_string_events events in
  let metrics = Format.asprintf "%a" (Obs.Metrics.pp_events events) () in
  Alcotest.(check bool) "trace populated" true
    (contains trace "\"name\":\"both\"");
  Alcotest.(check bool) "metrics populated" true (contains metrics "both");
  (* [events] is non-destructive: a second snapshot still carries the
     span, so consumer order cannot matter. *)
  Alcotest.(check int) "snapshot non-destructive" 1
    (List.length (Obs.Span.events ()))

let test_metrics_domain_rollup () =
  reset_all ();
  Obs.Span.enable ();
  Obs.Span.with_ "main.work" (fun () -> ());
  let d =
    Domain.spawn (fun () -> Obs.Span.with_ "worker.work" (fun () -> ()))
  in
  Domain.join d;
  Obs.Span.disable ();
  let events = Obs.Span.events () in
  let rollup = Obs.Metrics.domain_rows_of events in
  Alcotest.(check int) "one row per domain" 2 (List.length rollup);
  List.iter
    (fun (_, count, busy) ->
      Alcotest.(check int) "span count" 1 count;
      Alcotest.(check bool) "busy time recorded" true (busy >= 0))
    rollup;
  let text = Format.asprintf "%a" (Obs.Metrics.pp_events events) () in
  Alcotest.(check bool) "rollup printed for multi-domain runs" true
    (contains text "domain ")

(* A pooled all-nodes sweep with tracing on: every worker domain's
   chunks must land in the Chrome trace under its own [tid], and the
   spans of each domain must be well nested (a lane with partially
   overlapping spans renders as garbage in a trace viewer). *)
let test_pooled_trace_multi_domain () =
  reset_all ();
  (* Oversubscribe so real worker domains exist even on a single-core
     host — the production clamp would otherwise run `Par` inline and
     the trace would carry one lane only. *)
  Parallel.Pool.set_oversubscribe true;
  Parallel.Pool.set_jobs 4;
  let circ = Workloads.Ladder.rc ~sections:30 () in
  let probe = Stability.Probe.prepare circ in
  Obs.Span.enable ();
  let options =
    { Stability.Analysis.default_options with
      refine = false;
      parallel = `Par;
      sweep = Numerics.Sweep.decade 1e3 1e7 40 }
  in
  let results =
    Fun.protect
      ~finally:(fun () ->
        Parallel.Pool.set_oversubscribe false;
        Parallel.Pool.shutdown ())
      (fun () -> Stability.Analysis.all_nodes_prepared ~options probe)
  in
  Obs.Span.disable ();
  Alcotest.(check bool) "analysis produced results" true (results <> []);
  let events = Obs.Span.events () in
  let chunk_tids =
    List.sort_uniq compare
      (List.filter_map
         (fun e ->
           if e.Obs.Span.name = "pool.chunk" then Some e.Obs.Span.tid
           else None)
         events)
  in
  Alcotest.(check bool) "chunks on several domains" true
    (List.length chunk_tids >= 2);
  (* Well-nestedness per domain: sorted by start, each next span either
     starts after the previous ends or lies entirely within it. *)
  let tids =
    List.sort_uniq compare (List.map (fun e -> e.Obs.Span.tid) events)
  in
  List.iter
    (fun tid ->
      let lane =
        List.filter (fun e -> e.Obs.Span.tid = tid) events
        |> List.map (fun e ->
               (e.Obs.Span.ts_ns, e.Obs.Span.ts_ns + e.Obs.Span.dur_ns))
        |> List.sort compare
      in
      let rec well_nested open_stack = function
        | [] -> true
        | (s, e) :: rest ->
          let stack =
            List.filter (fun (_, e') -> e' > s) open_stack
          in
          (match stack with
           | (_, e') :: _ when e > e' -> false (* partial overlap *)
           | _ -> well_nested ((s, e) :: stack) rest)
      in
      Alcotest.(check bool)
        (Printf.sprintf "domain %d spans well nested" tid)
        true (well_nested [] lane))
    tids;
  (* And the serialized trace carries the worker lanes. *)
  let trace = Obs.Trace.to_string_events events in
  List.iter
    (fun tid ->
      Alcotest.(check bool)
        (Printf.sprintf "trace has tid %d" tid)
        true
        (contains trace (Printf.sprintf "\"tid\":%d" tid)))
    chunk_tids

let () =
  Alcotest.run "obs"
    [ ("counter",
       [ Alcotest.test_case "basics" `Quick test_counter_basics;
         Alcotest.test_case "record_max" `Quick test_counter_record_max;
         Alcotest.test_case "parallel increments" `Quick
           test_counter_parallel ]);
      ("span",
       [ Alcotest.test_case "disabled is silent" `Quick
           test_span_disabled_is_silent;
         Alcotest.test_case "records when enabled" `Quick
           test_span_records_when_enabled;
         Alcotest.test_case "records on exception" `Quick
           test_span_records_on_exception;
         Alcotest.test_case "multi-domain drain" `Quick
           test_span_multi_domain_drain ]);
      ("trace",
       [ Alcotest.test_case "json shape" `Quick test_trace_json_shape;
         Alcotest.test_case "write roundtrip" `Quick
           test_trace_write_roundtrip ]);
      ("histogram",
       [ Alcotest.test_case "bucket layout" `Quick test_histogram_buckets;
         Alcotest.test_case "summary percentiles" `Quick
           test_histogram_summary;
         Alcotest.test_case "parallel observe" `Quick
           test_histogram_parallel;
         Alcotest.test_case "merge" `Quick test_histogram_merge;
         Alcotest.test_case "snapshot under concurrent add" `Quick
           test_histogram_snapshot_under_add ]);
      ("prometheus",
       [ Alcotest.test_case "golden exposition" `Quick
           test_prometheus_golden;
         Alcotest.test_case "parse roundtrip" `Quick
           test_prometheus_parse_roundtrip;
         Alcotest.test_case "parse rejects malformed" `Quick
           test_prometheus_parse_rejects ]);
      ("events",
       [ Alcotest.test_case "disarmed + ring" `Quick
           test_events_disarmed_and_ring;
         Alcotest.test_case "line shape" `Quick test_events_line_shape;
         Alcotest.test_case "sink writes ndjson" `Quick
           test_events_sink_writes_ndjson;
         Alcotest.test_case "warn once" `Quick test_events_warn_once ]);
      ("metrics",
       [ Alcotest.test_case "rows" `Quick test_metrics_rows;
         Alcotest.test_case "empty" `Quick test_metrics_empty;
         Alcotest.test_case "one snapshot, both consumers" `Quick
           test_snapshot_feeds_both_consumers;
         Alcotest.test_case "domain rollup" `Quick
           test_metrics_domain_rollup;
         Alcotest.test_case "pooled trace multi-domain" `Quick
           test_pooled_trace_multi_domain ]) ]
