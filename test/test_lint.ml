(* Lint rule engine: rule catalogue over the shipped circuits and broken
   variants, Hopcroft–Karp matching, source-line tracking, JSON output,
   and the lint <-> dense-LU singularity agreement property. *)

open Circuit

let parse s = Parser.parse_string s

let ids findings =
  List.sort_uniq compare
    (List.map (fun (f : Lint.Rule.finding) -> f.rule_id) findings)

let error_ids findings = ids (Lint.Runner.errors findings)

let has_id id findings =
  List.exists (fun (f : Lint.Rule.finding) -> f.rule_id = id) findings

let check_ids msg expected findings =
  Alcotest.(check (list string)) msg expected (ids findings)

(* ---------- shipped circuits lint clean ---------- *)

let shipped =
  [ "double_tuned.sp"; "emitter_follower.sp"; "rlc_tank.sp";
    "sallen_key.sp"; "two_pole_loop.sp"; "wilson_mirror.sp" ]

let test_shipped_clean () =
  List.iter
    (fun name ->
      let circ = Parser.parse_file (Filename.concat "../circuits" name) in
      let findings = Lint.Runner.run circ in
      Alcotest.(check (list string))
        (name ^ " lints clean") [] (ids findings))
    shipped

(* ---------- broken variants: exact rule IDs ---------- *)

let test_floating_net () =
  let findings =
    Lint.Runner.run
      (parse "floating\nV1 a 0 DC 1\nR1 a 0 1k\nR2 x y 1k\n.end\n")
  in
  Alcotest.(check bool) "floating-net fires" true
    (has_id "floating-net" findings);
  let f =
    List.find
      (fun (f : Lint.Rule.finding) -> f.rule_id = "floating-net")
      findings
  in
  Alcotest.(check (list string)) "names both nets" [ "x"; "y" ]
    (List.sort compare f.nets)

let test_vsource_loop () =
  let findings =
    Lint.Runner.run (parse "vloop\nV1 a 0 DC 1\nV2 a 0 DC 1\nR1 a 0 1k\n")
  in
  check_ids "loop of two V sources"
    [ "singular-structure"; "vsource-loop" ]
    findings;
  let f =
    List.find
      (fun (f : Lint.Rule.finding) -> f.rule_id = "vsource-loop")
      findings
  in
  Alcotest.(check bool) "finding cites the source line" true
    (f.line = Some 3);
  Alcotest.(check bool) "loop members named" true
    (List.mem "V1" f.devices && List.mem "V2" f.devices)

let test_vl_loop () =
  (* An inductor is voltage-defined too: L parallel to V is a DC loop. *)
  let findings =
    Lint.Runner.run (parse "vl\nV1 a 0 DC 1\nL1 a 0 1u\nR1 a 0 1k\n")
  in
  Alcotest.(check bool) "V||L flagged" true
    (has_id "vsource-loop" findings)

let test_isource_cutset () =
  let findings =
    Lint.Runner.run
      (parse "cut\nI1 0 a DC 1m\nC1 a 0 1p\nR1 b 0 1k\nV1 b 0 DC 1\n")
  in
  Alcotest.(check bool) "isource-cutset fires" true
    (has_id "isource-cutset" findings);
  let f =
    List.find
      (fun (f : Lint.Rule.finding) -> f.rule_id = "isource-cutset")
      findings
  in
  Alcotest.(check bool) "names the isolated net" true (List.mem "a" f.nets);
  Alcotest.(check bool) "names the forcing source" true
    (List.mem "I1" f.devices)

let test_cap_island_is_warning () =
  (* The same island without a current source is only the no-dc-path
     warning (gmin rescues it numerically). *)
  let findings =
    Lint.Runner.run
      (parse "island\nV1 b 0 DC 1\nR1 b 0 1k\nC1 b a 1p\nC2 a 0 1p\n")
  in
  Alcotest.(check bool) "no-dc-path fires" true
    (has_id "no-dc-path" findings);
  Alcotest.(check (list string)) "but nothing is an error" []
    (error_ids findings)

let test_shorted () =
  let findings =
    Lint.Runner.run (parse "short\nV1 a 0 DC 1\nR1 a 0 1k\nL1 a a 1u\n")
  in
  Alcotest.(check bool) "shorted-element fires" true
    (has_id "shorted-element" findings);
  let f =
    List.find
      (fun (f : Lint.Rule.finding) -> f.rule_id = "shorted-element")
      findings
  in
  Alcotest.(check bool) "shorted inductor is an error" true
    (f.severity = Lint.Rule.Error)

let test_duplicate_via_api () =
  (* The parser rejects duplicates up front; API-level rewrites can still
     produce them, which is exactly what the rule is for. *)
  let c = Netlist.empty () in
  let c = Netlist.resistor c "R1" "a" "0" 1e3 in
  let c = Netlist.resistor c "R2" "a" "0" 2e3 in
  let c = Netlist.vsource c "V1" "a" "0" (Netlist.dc_source 1.) in
  let renamed =
    Netlist.map_devices
      (function
        | Netlist.Resistor r -> Netlist.Resistor { r with name = "R1" }
        | d -> d)
      c
  in
  let findings = Lint.Runner.run renamed in
  Alcotest.(check bool) "duplicate-name fires" true
    (has_id "duplicate-name" findings)

let test_values () =
  let findings =
    Lint.Runner.run
      (parse "vals\nV1 a 0 DC 1\nR1 a 0 0\nC1 a 0 10\nR2 a 0 1k\n")
  in
  Alcotest.(check bool) "zero-value fires on R1" true
    (has_id "zero-value" findings);
  Alcotest.(check bool) "suspicious-value fires on the 10 F cap" true
    (has_id "suspicious-value" findings);
  (* Milliohm-range parts are deliberate in loop-closure fixtures; they
     must not be flagged. *)
  let ok =
    Lint.Runner.run (parse "small\nV1 a 0 DC 1\nR1 a b 1m\nR2 b 0 1k\n")
  in
  Alcotest.(check bool) "1 mOhm not flagged" false
    (has_id "suspicious-value" ok)

let test_bad_mutual () =
  let findings =
    Lint.Runner.run
      (parse
         "mut\nV1 a 0 DC 1\nR1 a 0 1k\nL1 a 0 1u\nK1 L1 L9 0.5\n")
  in
  Alcotest.(check bool) "bad-mutual fires on missing inductor" true
    (has_id "bad-mutual" findings);
  (* The parser rejects |k| >= 1 outright, so an over-coupled K element
     can only reach lint through the building API. *)
  let c = Netlist.empty () in
  let c = Netlist.vsource c "V1" "a" "0" (Netlist.dc_source 1.) in
  let c = Netlist.resistor c "R1" "a" "0" 1e3 in
  let c = Netlist.resistor c "R2" "b" "0" 1e3 in
  let c = Netlist.inductor c "L1" "a" "0" 1e-6 in
  let c = Netlist.inductor c "L2" "b" "0" 1e-6 in
  let c = Netlist.mutual c "K1" ~l1:"L1" ~l2:"L2" ~k:1.5 in
  Alcotest.(check bool) "bad-mutual fires on |k|>=1" true
    (has_id "bad-mutual" (Lint.Runner.run c))

let test_unknown_refs () =
  let m =
    Lint.Runner.run (parse "dmod\nV1 a 0 DC 1\nD1 a 0 nosuch\nR1 a 0 1k\n")
  in
  Alcotest.(check bool) "unknown-model fires" true (has_id "unknown-model" m);
  let f =
    Lint.Runner.run
      (parse "fctl\nV1 a 0 DC 1\nR1 a 0 1k\nF1 a 0 V9 2\n")
  in
  Alcotest.(check bool) "unknown-control fires" true
    (has_id "unknown-control" f);
  let g =
    Lint.Runner.run
      (parse "gctl\nV1 a 0 DC 1\nR1 a 0 1k\nG1 a 0 sens 0 1m\n")
  in
  Alcotest.(check bool) "unconnected-control fires" true
    (has_id "unconnected-control" g)

let test_no_ground () =
  let findings = Lint.Runner.run (parse "ng\nV1 a b DC 1\nR1 a b 1k\n") in
  Alcotest.(check bool) "no-ground fires" true (has_id "no-ground" findings)

let test_disable () =
  let circ = parse "vloop\nV1 a 0 DC 1\nV2 a 0 DC 1\nR1 a 0 1k\n" in
  let findings =
    Lint.Runner.run
      ~config:{ Lint.Runner.disabled = [ "vsource-loop" ] }
      circ
  in
  Alcotest.(check bool) "disabled rule is silent" false
    (has_id "vsource-loop" findings);
  Alcotest.(check bool) "other rules still run" true
    (has_id "singular-structure" findings)

let test_rules_find () =
  Alcotest.(check bool) "find known" true (Lint.Rules.find "no-ground" <> None);
  Alcotest.(check bool) "find unknown" true (Lint.Rules.find "bogus" = None);
  (* IDs are unique across the catalogue. *)
  let all_ids = List.map (fun (r : Lint.Rule.t) -> r.id) Lint.Rules.all in
  Alcotest.(check int) "no duplicate rule IDs"
    (List.length all_ids)
    (List.length (List.sort_uniq compare all_ids))

(* ---------- Hopcroft–Karp ---------- *)

let test_matching_perfect () =
  let adj = [| [ 0; 1 ]; [ 1; 2 ]; [ 2 ] |] in
  let m = Lint.Matching.max_matching ~rows:3 ~cols:3 ~adj in
  Alcotest.(check int) "perfect" 3 m.Lint.Matching.size;
  Alcotest.(check (list int)) "no unmatched rows" []
    (Lint.Matching.unmatched_rows m)

let test_matching_deficient () =
  (* Rows 1 and 2 compete for column 1: deficiency 1. *)
  let adj = [| [ 0 ]; [ 1 ]; [ 1 ] |] in
  let m = Lint.Matching.max_matching ~rows:3 ~cols:3 ~adj in
  Alcotest.(check int) "deficient" 2 m.Lint.Matching.size;
  Alcotest.(check int) "one unmatched row" 1
    (List.length (Lint.Matching.unmatched_rows m));
  Alcotest.(check (list int)) "column 2 uncovered" [ 2 ]
    (Lint.Matching.unmatched_cols m)

let test_matching_wide () =
  (* A bigger instance with a known answer: bipartite crown graph minus
     one side's hub still has a perfect matching. *)
  let n = 50 in
  let adj =
    Array.init n (fun r -> [ r; (r + 1) mod n ])
  in
  let m = Lint.Matching.max_matching ~rows:n ~cols:n ~adj in
  Alcotest.(check int) "cycle cover" n m.Lint.Matching.size

(* ---------- source-line tracking ---------- *)

let test_lines_recorded () =
  let circ = parse "lines\nV1 a 0 DC 1\nR1 a b 1k\n\nR2 b 0 2k\n" in
  Alcotest.(check (option int)) "V1 line" (Some 2)
    (Netlist.device_line circ "V1");
  Alcotest.(check (option int)) "R2 line (blank skipped)" (Some 5)
    (Netlist.device_line circ "r2");
  Alcotest.(check (option int)) "absent device" None
    (Netlist.device_line circ "R9");
  (* API-built devices carry no line. *)
  let c = Netlist.resistor (Netlist.empty ()) "R1" "a" "0" 1. in
  Alcotest.(check (option int)) "built device" None
    (Netlist.device_line c "R1")

let test_compile_error_cites_line () =
  let circ = parse "badmodel\nV1 a 0 DC 1\nR1 a 0 1k\nD1 a 0 nosuch\n" in
  match Engine.Mna.compile circ with
  | _ -> Alcotest.fail "compile should fail"
  | exception Engine.Mna.Compile_error m ->
    Alcotest.(check bool)
      (Printf.sprintf "message %S cites line 4" m)
      true
      (String.length m >= 7 && String.sub m 0 7 = "line 4:")

(* ---------- solver diagnostics ---------- *)

let test_unknown_name () =
  let circ = parse "names\nV1 in 0 DC 1\nR1 in out 1k\nL1 out 0 1u\n" in
  let mna = Engine.Mna.compile circ in
  let names =
    List.init mna.Engine.Mna.size (Engine.Mna.unknown_name mna)
  in
  Alcotest.(check bool) "node unknowns named" true
    (List.mem "V(in)" names && List.mem "V(out)" names);
  Alcotest.(check bool) "branch unknowns named" true
    (List.mem "I(V1)" names && List.mem "I(L1)" names)

let test_dcop_singular_names_branch () =
  let circ = parse "par\nV1 a 0 DC 1\nV2 a 0 DC 2\nR1 a 0 1k\n" in
  let mna = Engine.Mna.compile circ in
  match Engine.Dcop.solve mna with
  | _ -> Alcotest.fail "parallel V sources must not solve"
  | exception Engine.Dcop.No_convergence m ->
    let mentions sub =
      let n = String.length sub and len = String.length m in
      let rec go i =
        i + n <= len && (String.sub m i n = sub || go (i + 1))
      in
      go 0
    in
    Alcotest.(check bool)
      (Printf.sprintf "error %S names a branch current" m)
      true
      (mentions "I(V1)" || mentions "I(V2)");
    Alcotest.(check bool) "never a bare index" false (mentions "unknown ")

let test_explain_singular () =
  let circ = parse "par\nV1 a 0 DC 1\nV2 a 0 DC 2\nR1 a 0 1k\n" in
  let fs = Lint.Runner.explain_singular circ in
  Alcotest.(check bool) "explanation found" true (fs <> []);
  Alcotest.(check bool) "vsource-loop among causes" true
    (has_id "vsource-loop" fs)

(* ---------- structural predictor vs the numeric factorization ---------- *)

(* The DC matrix exactly as Dcop's direct attempt builds it. *)
let dc_singular circ =
  let mna = Engine.Mna.compile circ in
  let a = Numerics.Rmat.create mna.Engine.Mna.size mna.Engine.Mna.size in
  let b = Array.make mna.Engine.Mna.size 0. in
  Engine.Stamps.stamp_static mna
    ~src_value:(fun s -> s.Netlist.dc)
    a b;
  Array.iter
    (fun (_, e) ->
      match e with
      | Engine.Mna.E_ind { i; j; br; _ } ->
        Engine.Mna.stamp_mat a i br 1.;
        Engine.Mna.stamp_mat a j br (-1.);
        Engine.Mna.stamp_mat a br i 1.;
        Engine.Mna.stamp_mat a br j (-1.)
      | _ -> ())
    mna.Engine.Mna.elems;
  Engine.Stamps.stamp_gmin mna ~gmin:1e-12 a;
  match Numerics.Rmat.solve a b with
  | _ -> false
  | exception Numerics.Dense.Singular _ -> true

(* Random linear ladder: V source into a chain of resistors, with a few
   extra Rs and Cs sprinkled between existing nets. Always solvable. *)
let base_circuit rand =
  let n = 2 + (rand mod 4) in
  let net k = Printf.sprintf "n%d" k in
  let c = Netlist.empty () in
  let c = Netlist.vsource c "V1" (net 0) "0" (Netlist.dc_source 1.) in
  let c =
    List.fold_left
      (fun c k ->
        Netlist.resistor c
          (Printf.sprintf "R%d" k)
          (net k)
          (if k = n - 1 then "0" else net (k + 1))
          (1e3 *. float_of_int (1 + (rand / (k + 1) mod 9))))
      c
      (List.init n Fun.id)
  in
  let c =
    if rand mod 3 = 0 then
      Netlist.capacitor c "Cx" (net (rand mod n)) "0" 1e-12
    else c
  in
  if rand mod 5 = 0 then
    Netlist.resistor c "Rx" (net (rand mod n)) (net (rand / 7 mod n)) 4.7e3
  else c

(* Injected defects from the exactly-singular family: each produces a
   structurally singular system (identical or dependent V-defined rows),
   so the dense LU hits an exact zero pivot regardless of values. *)
let inject_defect rand c =
  let net k = Printf.sprintf "n%d" k in
  match rand mod 3 with
  | 0 -> Netlist.vsource c "Vdup" (net 0) "0" (Netlist.dc_source 1.)
  | 1 -> Netlist.vsource c "Vshort" (net 0) (net 0) (Netlist.dc_source 0.)
  | _ ->
    let c = Netlist.inductor c "Ld1" (net 0) "0" 1e-6 in
    Netlist.inductor c "Ld2" (net 0) "0" 2.2e-6

let structurally_flagged findings =
  List.exists
    (fun (f : Lint.Rule.finding) ->
      f.severity = Lint.Rule.Error
      && List.mem f.rule_id
           [ "vsource-loop"; "shorted-element"; "singular-structure" ])
    findings

let prop_lint_predicts_singular =
  QCheck.Test.make
    ~name:"lint flags a structural defect iff the dense DC LU is singular"
    ~count:200
    QCheck.(int_range 0 1_000_000)
    (fun rand ->
      let healthy = base_circuit rand in
      let broken = inject_defect rand healthy in
      let healthy_singular = dc_singular healthy in
      let healthy_flagged = structurally_flagged (Lint.Runner.run healthy) in
      let broken_singular = dc_singular broken in
      let broken_flagged = structurally_flagged (Lint.Runner.run broken) in
      (healthy_singular = healthy_flagged)
      && (not healthy_singular)
      && broken_singular = broken_flagged && broken_singular)

(* ---------- JSON ---------- *)

let test_json () =
  let circ = parse "vloop\nV1 a 0 DC 1\nV2 a 0 DC 1\nR1 a 0 1k\n" in
  let findings = Lint.Runner.run circ in
  let js = Lint.Json.report ~file:"vloop.sp" findings in
  let mentions sub =
    let n = String.length sub and len = String.length js in
    let rec go i = i + n <= len && (String.sub js i n = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "file recorded" true
    (mentions "\"file\":\"vloop.sp\"");
  Alcotest.(check bool) "rule id present" true
    (mentions "\"rule\":\"vsource-loop\"");
  Alcotest.(check bool) "error count" true (mentions "\"errors\":2");
  Alcotest.(check bool) "line recorded" true (mentions "\"line\":3");
  Alcotest.(check bool) "quotes escaped" true (mentions "\\\"V2\\\"")

let test_json_escaping () =
  let f =
    Lint.Rule.finding ~id:"x" Lint.Rule.Info "tab\there \"and\" \\ nl\n"
  in
  Alcotest.(check string) "escapes"
    "{\"rule\":\"x\",\"severity\":\"info\",\"message\":\"tab\\there \
     \\\"and\\\" \\\\ nl\\n\",\"nets\":[],\"devices\":[]}"
    (Lint.Json.of_finding f)

(* ---------- graph-powered rules ---------- *)

(* A purely resistive gm ring: a genuine global loop with no capacitor
   anywhere on it. *)
let resistive_ring =
  "ring\nVIN in 0 DC 0 AC 1\nRIN in a 1k\nGA b 0 a 0 1m\nRA b 0 1k\n\
   GB c 0 b 0 1m\nRB c 0 1k\nGC a 0 c 0 1m\nRC2 a 0 1k\n.end\n"

let test_loop_no_compensation () =
  let findings = Lint.Runner.run (parse resistive_ring) in
  Alcotest.(check bool) "uncompensated ring flagged" true
    (has_id "loop-no-compensation" findings);
  (* A capacitor on any member net is taken as compensation. *)
  let comp =
    Lint.Runner.run
      (parse
         "ring\nVIN in 0 DC 0 AC 1\nRIN in a 1k\nGA b 0 a 0 1m\n\
          RA b 0 1k\nCB b 0 1p\nGB c 0 b 0 1m\nRB c 0 1k\n\
          GC a 0 c 0 1m\nRC2 a 0 1k\n.end\n")
  in
  Alcotest.(check bool) "compensated ring passes" false
    (has_id "loop-no-compensation" comp)

let test_gain_outside_loop () =
  let findings =
    Lint.Runner.run
      (parse
         "open\nVIN in 0 DC 0 AC 1\nR1 in out 1k\nC1 out 0 1n\n\
          G1 x 0 y 0 1m\nR2 y 0 1k\nR3 x 0 1k\n.end\n")
  in
  let open_gain =
    List.filter (fun (f : Lint.Rule.finding) ->
        f.rule_id = "gain-outside-loop") findings
  in
  Alcotest.(check int) "exactly the dangling VCCS" 1 (List.length open_gain);
  Alcotest.(check bool) "names G1" true
    (List.exists (fun (f : Lint.Rule.finding) ->
         List.mem "G1" f.devices) open_gain);
  (* Every gain device of the ring closes a cycle: nothing to report. *)
  Alcotest.(check bool) "ring devices all in-loop" false
    (has_id "gain-outside-loop" (Lint.Runner.run (parse resistive_ring)))

let test_loop_through_suspect () =
  (* A farad-scale capacitor closing a feedback pair: the value check
     flags it, so every loop through it is untrustworthy. *)
  let findings =
    Lint.Runner.run
      (parse
         "sus\nVIN in 0 DC 0 AC 1\nRIN in a 1k\nGA b 0 a 0 1m\n\
          RA b 0 1k\nCBAD a b 10\nRL a 0 1k\n.end\n")
  in
  Alcotest.(check bool) "loop through the 10 F cap flagged" true
    (has_id "loop-through-suspect" findings);
  Alcotest.(check bool) "clean ring not flagged" false
    (has_id "loop-through-suspect" (Lint.Runner.run (parse resistive_ring)))

let test_undrivable_probe () =
  let sev id sv findings =
    List.exists (fun (f : Lint.Rule.finding) ->
        f.rule_id = id && f.severity = sv) findings
  in
  (* Unknown net: an error (the analysis would reject it anyway). *)
  let bogus =
    Lint.Runner.run
      (parse "b\nVIN in 0 DC 0 AC 1\nR1 in out 1k\nC1 out 0 1n\n\
              .stab bogus\n.end\n")
  in
  Alcotest.(check bool) "unknown .stab target is an error" true
    (sev "undrivable-probe" Lint.Rule.Error bogus);
  (* Voltage-pinned target: a warning naming the pinning driver. *)
  let pinned =
    Lint.Runner.run
      (parse "p\nVIN in 0 DC 0 AC 1\nR1 in out 1k\nC1 out 0 1n\n\
              .stab in\n.end\n")
  in
  Alcotest.(check bool) "pinned .stab target warns" true
    (sev "undrivable-probe" Lint.Rule.Warning pinned);
  Alcotest.(check bool) "pinning driver named" true
    (List.exists (fun (f : Lint.Rule.finding) ->
         f.rule_id = "undrivable-probe" && List.mem "VIN" f.devices) pinned);
  (* Source-unreachable target: stimulus cannot excite it. *)
  let island =
    Lint.Runner.run
      (parse "i\nVIN in 0 DC 0 AC 1\nR1 in out 1k\nG1 x 0 y 0 1m\n\
              R2 y 0 1k\nR3 x 0 1k\n.stab x\n.end\n")
  in
  Alcotest.(check bool) "unreachable .stab target warns" true
    (sev "undrivable-probe" Lint.Rule.Warning island);
  (* A reachable, unpinned target is exactly what .stab is for. *)
  let ok =
    Lint.Runner.run
      (parse "ok\nVIN in 0 DC 0 AC 1\nR1 in out 1k\nC1 out 0 1n\n\
              .stab out\n.end\n")
  in
  Alcotest.(check bool) "healthy .stab target passes" false
    (has_id "undrivable-probe" ok)

let test_unobservable_loop () =
  (* Two cross-coupled E sources: both loop nets voltage-pinned, so no
     probe can observe the loop. *)
  let findings =
    Lint.Runner.run
      (parse "u\nEA a 0 b 0 1\nEB b 0 a 0 2\nRA a 0 1k\n.end\n")
  in
  Alcotest.(check bool) "all-pinned loop flagged" true
    (has_id "unobservable-loop" findings);
  Alcotest.(check bool) "probeable ring not flagged" false
    (has_id "unobservable-loop" (Lint.Runner.run (parse resistive_ring)))

(* ---------- suite ---------- *)

let () =
  Alcotest.run "lint"
    [ ( "rules",
        [ Alcotest.test_case "shipped circuits clean" `Quick
            test_shipped_clean;
          Alcotest.test_case "floating net" `Quick test_floating_net;
          Alcotest.test_case "V-source loop" `Quick test_vsource_loop;
          Alcotest.test_case "V parallel L loop" `Quick test_vl_loop;
          Alcotest.test_case "I-source cutset" `Quick test_isource_cutset;
          Alcotest.test_case "cap island only warns" `Quick
            test_cap_island_is_warning;
          Alcotest.test_case "shorted element" `Quick test_shorted;
          Alcotest.test_case "duplicate via API rename" `Quick
            test_duplicate_via_api;
          Alcotest.test_case "zero and suspicious values" `Quick
            test_values;
          Alcotest.test_case "bad mutual" `Quick test_bad_mutual;
          Alcotest.test_case "unknown model/control refs" `Quick
            test_unknown_refs;
          Alcotest.test_case "no ground" `Quick test_no_ground;
          Alcotest.test_case "per-rule disable" `Quick test_disable;
          Alcotest.test_case "catalogue lookup" `Quick test_rules_find ] );
      ( "graph rules",
        [ Alcotest.test_case "loop-no-compensation" `Quick
            test_loop_no_compensation;
          Alcotest.test_case "gain-outside-loop" `Quick
            test_gain_outside_loop;
          Alcotest.test_case "loop-through-suspect" `Quick
            test_loop_through_suspect;
          Alcotest.test_case "undrivable-probe" `Quick
            test_undrivable_probe;
          Alcotest.test_case "unobservable-loop" `Quick
            test_unobservable_loop ] );
      ( "matching",
        [ Alcotest.test_case "perfect" `Quick test_matching_perfect;
          Alcotest.test_case "deficient" `Quick test_matching_deficient;
          Alcotest.test_case "cycle cover" `Quick test_matching_wide ] );
      ( "lines",
        [ Alcotest.test_case "parser records lines" `Quick
            test_lines_recorded;
          Alcotest.test_case "compile error cites line" `Quick
            test_compile_error_cites_line ] );
      ( "diagnostics",
        [ Alcotest.test_case "unknown_name" `Quick test_unknown_name;
          Alcotest.test_case "singular names branch" `Quick
            test_dcop_singular_names_branch;
          Alcotest.test_case "explain_singular" `Quick
            test_explain_singular ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_lint_predicts_singular ] );
      ( "json",
        [ Alcotest.test_case "report shape" `Quick test_json;
          Alcotest.test_case "string escaping" `Quick test_json_escaping ]
      ) ]
