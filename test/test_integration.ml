(* End-to-end integration: the paper's complete experiment flow on the
   full op-amp + bias system, through every layer at once (parser, engine,
   stability tool, reports, OCEAN). *)

let check_close ?(tol = 1e-9) msg expected actual =
  let scale = Float.max 1. (Float.abs expected) in
  Alcotest.(check bool)
    (Printf.sprintf "%s: expected %.9g, got %.9g" msg expected actual)
    true
    (Float.abs (expected -. actual) <= tol *. scale)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

(* The full system survives a netlist round-trip: print the built op-amp
   as SPICE text, re-parse it, and get the same operating point and the
   same stability verdict. *)
let test_netlist_roundtrip_full_system () =
  let built = Workloads.Opamp_2mhz.buffer () in
  let text = Circuit.Netlist.to_spice built in
  let parsed = Circuit.Parser.parse_string text in
  let op_b = Engine.Dcop.solve (Engine.Mna.compile built) in
  let op_p = Engine.Dcop.solve (Engine.Mna.compile parsed) in
  List.iter
    (fun n ->
      check_close ~tol:2e-3
        (Printf.sprintf "V(%s) preserved" n)
        (Engine.Dcop.node_v op_b n)
        (Engine.Dcop.node_v op_p n))
    [ "out"; "o1"; "d1"; "nbias"; "vcasc" ];
  let r = Stability.Analysis.single_node parsed "out" in
  match r.Stability.Analysis.dominant with
  | Some d ->
    Alcotest.(check bool) "stability verdict preserved" true
      (d.Stability.Peaks.value < -25. && d.Stability.Peaks.value > -40.)
  | None -> Alcotest.fail "pole lost in round-trip"

(* Table 2 shape: the all-nodes report groups the main loop's nodes at one
   natural frequency and finds the bias cell's local loop above it. *)
let test_table2_shape () =
  let circ = Workloads.Opamp_2mhz.buffer () in
  let results = Stability.Analysis.all_nodes circ in
  let loops = Stability.Loops.cluster results in
  (* Main loop: the deepest loop overall, at ~3 MHz, with at least the
     three core nodes out/o1/d1. *)
  let main =
    List.fold_left
      (fun acc (l : Stability.Loops.loop) ->
        match acc with
        | None -> Some l
        | Some best ->
          if l.worst.peak.Stability.Peaks.value
             < best.Stability.Loops.worst.peak.Stability.Peaks.value
          then Some l
          else acc)
      None loops
    |> Option.get
  in
  Alcotest.(check bool) "main loop near 3 MHz" true
    (main.Stability.Loops.natural_freq > 2.5e6
     && main.Stability.Loops.natural_freq < 4e6);
  let member_nodes =
    List.map
      (fun (m : Stability.Loops.member) -> m.Stability.Loops.node)
      main.Stability.Loops.members
  in
  List.iter
    (fun n ->
      Alcotest.(check bool)
        (Printf.sprintf "%s in main loop" n)
        true
        (List.mem n member_nodes))
    [ "out"; "o1"; "d1" ];
  (* Local loop: a distinct loop above the main loop containing the bias
     line, with a genuine complex pair. *)
  let local =
    List.find_opt
      (fun (l : Stability.Loops.loop) ->
        List.exists
          (fun (m : Stability.Loops.member) ->
            m.Stability.Loops.node = Workloads.Bias_zero_tc.node_bias_line)
          l.Stability.Loops.members)
      loops
    |> Option.get
  in
  Alcotest.(check bool) "local loop above the main loop" true
    (local.Stability.Loops.natural_freq
     > 3. *. main.Stability.Loops.natural_freq);
  Alcotest.(check bool) "local loop underdamped" true
    (local.Stability.Loops.worst.peak.Stability.Peaks.value < -2.)

(* The estimation chain closes: plot peak -> zeta -> predicted overshoot
   matches the measured transient within the slewing tolerance, and
   -> predicted PM matches the measured open-loop PM tightly. *)
let test_estimation_chain_closes () =
  let circ = Workloads.Opamp_2mhz.buffer () in
  let d =
    (Stability.Analysis.single_node circ "out").Stability.Analysis.dominant
    |> Option.get
  in
  let zeta = Option.get d.Stability.Peaks.zeta in
  let dev, term = Workloads.Opamp_2mhz.feedback_break in
  let lg =
    Engine.Loopgain.middlebrook ~sweep:(Numerics.Sweep.decade 1e4 1e8 80)
      circ ~device:dev ~terminal:term
  in
  let pm =
    Option.get (Engine.Loopgain.margins lg).Engine.Measure.phase_margin_deg
  in
  check_close ~tol:0.08 "PM chain"
    (Control.Second_order.phase_margin_exact zeta)
    pm;
  let tr = Engine.Transient.run ~tstop:8e-6 ~tstep:2e-9 circ in
  let m =
    Engine.Measure.step_metrics ~initial:2.5 ~final:2.55
      (Engine.Transient.v tr "out")
  in
  let predicted = Control.Second_order.percent_overshoot zeta in
  Alcotest.(check bool)
    (Printf.sprintf "overshoot %.0f%% within 15 points of predicted %.0f%%"
       m.Engine.Measure.overshoot_pct predicted)
    true
    (Float.abs (m.Engine.Measure.overshoot_pct -. predicted) < 15.)

(* The whole flow through OCEAN + .stab directive cards, as a user script
   would drive it. *)
let test_ocean_end_to_end () =
  let s = Tool.Ocean.simulator "spectre" in
  Tool.Ocean.design s
    (Circuit.Netlist.add_directive (Workloads.Opamp_2mhz.buffer ())
       Circuit.Netlist.Stab_all);
  let r = Tool.Ocean.run s in
  let report = Tool.Ocean.stab_report r in
  Alcotest.(check bool) "report has the main loop" true
    (contains report "Loop at 3");
  let annotated = Tool.Ocean.stab_annotated r in
  Alcotest.(check bool) "annotation mentions out" true
    (contains annotated "out: peak")

(* Compensating the main loop moves every consistency metric together. *)
let test_fix_improves_everything () =
  let fixed =
    { Workloads.Opamp_2mhz.default_params with
      c1 = 15e-12; rzero = 2e3; cload = 47e-12 }
  in
  let circ = Workloads.Opamp_2mhz.buffer ~params:fixed () in
  let d =
    (Stability.Analysis.single_node circ "out").Stability.Analysis.dominant
    |> Option.get
  in
  Alcotest.(check bool) "peak shallower than -10" true
    (d.Stability.Peaks.value > -10.);
  let dev, term = Workloads.Opamp_2mhz.feedback_break in
  let lg =
    Engine.Loopgain.middlebrook ~sweep:(Numerics.Sweep.decade 1e4 1e9 60)
      circ ~device:dev ~terminal:term
  in
  let pm =
    Option.get (Engine.Loopgain.margins lg).Engine.Measure.phase_margin_deg
  in
  Alcotest.(check bool) (Printf.sprintf "PM %.0f > 45" pm) true (pm > 45.)

(* Exact eigenvalue analysis of the full system agrees with the
   stability-plot estimates — the strongest cross-validation available:
   the plot is a per-node numerical probe, the poles are ground truth. *)
let test_poles_vs_stability_plot () =
  let circ = Workloads.Opamp_2mhz.buffer () in
  let poles = Engine.Poles.of_circuit circ in
  Alcotest.(check bool) "closed loop is stable" true
    (Engine.Poles.is_stable poles);
  let pairs = Engine.Poles.complex_pairs poles in
  (* Main loop. *)
  let main =
    List.find
      (fun (p : Engine.Poles.pole) ->
        p.Engine.Poles.freq_hz > 1e6 && p.Engine.Poles.freq_hz < 10e6)
      pairs
  in
  let d =
    (Stability.Analysis.single_node circ "out").Stability.Analysis.dominant
    |> Option.get
  in
  check_close ~tol:2e-2 "main-loop fn: plot vs eigenvalues"
    main.Engine.Poles.freq_hz d.Stability.Peaks.freq;
  check_close ~tol:5e-2 "main-loop zeta: plot vs eigenvalues"
    main.Engine.Poles.zeta
    (Option.get d.Stability.Peaks.zeta);
  (* Bias local loop. *)
  let local =
    List.find
      (fun (p : Engine.Poles.pole) ->
        p.Engine.Poles.freq_hz > 15e6 && p.Engine.Poles.freq_hz < 80e6)
      pairs
  in
  let dl =
    (Stability.Analysis.single_node circ
       Workloads.Bias_zero_tc.node_bias_line)
      .Stability.Analysis.dominant
    |> Option.get
  in
  check_close ~tol:5e-2 "local-loop fn: plot vs eigenvalues"
    local.Engine.Poles.freq_hz dl.Stability.Peaks.freq;
  check_close ~tol:8e-2 "local-loop zeta: plot vs eigenvalues"
    local.Engine.Poles.zeta
    (Option.get dl.Stability.Peaks.zeta)

(* All-nodes via the job queue in parallel equals the sequential scan. *)
let test_parallel_scan_consistency () =
  let circ = Workloads.Bias_zero_tc.cell () in
  let seq = Stability.Analysis.all_nodes circ in
  let nodes =
    List.map (fun (r : Stability.Analysis.node_result) -> r.node) seq
  in
  let jobs =
    List.map
      (fun n ->
        ( n,
          fun () ->
            (Stability.Analysis.single_node circ n)
              .Stability.Analysis.dominant ))
      nodes
  in
  let par = Tool.Job.run_all ~parallel:`Par jobs |> Tool.Job.results_exn in
  List.iter2
    (fun (r : Stability.Analysis.node_result) p ->
      match (r.dominant, p) with
      | Some a, Some b ->
        check_close ~tol:5e-2
          (Printf.sprintf "%s peak agrees" r.node)
          a.Stability.Peaks.value b.Stability.Peaks.value
      | None, None -> ()
      | _ -> Alcotest.failf "presence mismatch on %s" r.node)
    seq par

(* A hierarchical board: four behavioural buffer channels instantiated
   through .subckt, each with its own compensation — exercising flattening
   at scale and the shared-factorisation all-nodes scan on a larger node
   set. Channel 3 is deliberately under-compensated; the scan must single
   it out. *)
let quad_board = {|quad buffer board
.subckt chan in out av=100 cl=68p
EAMP x1 0 in out {av}
R1 x1 x2 1k
C1 x2 0 100n
EBUF x2b 0 x2 0 1
R2 x2b x3 10k
C2 x3 0 {cl}
RFB x3 out 1m
RL out 0 1meg
.ends
V1 a1 0 DC 0 AC 1
X1 a1 o1 chan cl=68p
V2 a2 0 DC 0
X2 a2 o2 chan cl=68p
V3 a3 0 DC 0
X3 a3 o3 chan cl=1n
V4 a4 0 DC 0
X4 a4 o4 chan cl=68p
.end
|}

let test_quad_board_scan () =
  let circ = Circuit.Parser.parse_string quad_board in
  (* 4 channels x 8 devices + 4 drive sources. *)
  Alcotest.(check int) "36 flattened devices" 36
    (List.length (Circuit.Netlist.devices circ));
  let results = Stability.Analysis.all_nodes circ in
  let dominant_of node =
    List.find_map
      (fun (r : Stability.Analysis.node_result) ->
        if r.node = node then r.dominant else None)
      results
  in
  (* The sick channel rings hard; the healthy ones are mildly peaked. *)
  let sick = Option.get (dominant_of "o3") in
  Alcotest.(check bool)
    (Printf.sprintf "channel 3 flagged (%.1f)" sick.Stability.Peaks.value)
    true
    (sick.Stability.Peaks.value < -20.);
  List.iter
    (fun n ->
      match dominant_of n with
      | Some d ->
        Alcotest.(check bool)
          (Printf.sprintf "%s healthy (%.1f)" n d.Stability.Peaks.value)
          true
          (d.Stability.Peaks.value > -8.)
      | None -> ())
    [ "o1"; "o2"; "o4" ];
  (* Identical healthy channels must measure identically. *)
  let p1 = Option.get (dominant_of "o1") in
  let p4 = Option.get (dominant_of "o4") in
  check_close ~tol:1e-6 "replicated channels agree"
    p1.Stability.Peaks.value p4.Stability.Peaks.value

let () =
  Alcotest.run "integration"
    [ ("full-system",
       [ Alcotest.test_case "netlist round-trip" `Slow
           test_netlist_roundtrip_full_system;
         Alcotest.test_case "table 2 shape" `Slow test_table2_shape;
         Alcotest.test_case "estimation chain closes" `Slow
           test_estimation_chain_closes;
         Alcotest.test_case "ocean end-to-end" `Slow test_ocean_end_to_end;
         Alcotest.test_case "fix improves everything" `Slow
           test_fix_improves_everything;
         Alcotest.test_case "parallel scan consistency" `Slow
           test_parallel_scan_consistency;
         Alcotest.test_case "poles vs stability plot" `Slow
           test_poles_vs_stability_plot;
         Alcotest.test_case "hierarchical quad board" `Slow
           test_quad_board_scan ]) ]
