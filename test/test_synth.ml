(* Synthetic benchmark generators (Workloads.Synth): every generated deck
   must be lint-clean, structurally sound and have exactly the unknown
   count its closed-form formula promises — and scheduling must never
   change its analysis results (seq = par bit-identical, manifests
   diff-clean). *)

(* Force real worker domains even on a single-core container: the
   production clamp would otherwise fold `Par` back to inline
   execution and the test would not exercise the scheduler at all. *)
let with_real_workers n f =
  let saved = Parallel.Pool.jobs () in
  Parallel.Pool.set_oversubscribe true;
  Parallel.Pool.set_jobs n;
  Fun.protect
    ~finally:(fun () ->
      Parallel.Pool.set_jobs saved;
      Parallel.Pool.set_oversubscribe false;
      Parallel.Pool.shutdown ())
    f

let unknowns circ = (Engine.Mna.compile circ).Engine.Mna.size

let well_formed name circ expected =
  let findings = Lint.Runner.run circ in
  if findings <> [] then
    QCheck.Test.fail_reportf "%s: %d lint finding(s), first: %s" name
      (List.length findings)
      (Format.asprintf "%a" (Lint.Rule.pp_finding ?file:None)
         (List.hd findings));
  (match Circuit.Topology.check circ with
   | [] -> ()
   | issue :: _ ->
     QCheck.Test.fail_reportf "%s: topology issue: %a" name
       Circuit.Topology.pp_issue issue);
  let got = unknowns circ in
  if got <> expected then
    QCheck.Test.fail_reportf "%s: %d unknowns, formula says %d" name got
      expected;
  true

(* ---------- qcheck: generator well-formedness ---------- *)

let prop_mesh_well_formed =
  QCheck.Test.make ~name:"rc_mesh lint-clean, connected, counted" ~count:25
    QCheck.(pair (int_range 1 8) (int_range 1 8))
    (fun (rows, cols) ->
      well_formed
        (Printf.sprintf "mesh %dx%d" rows cols)
        (Workloads.Synth.rc_mesh ~rows ~cols ())
        (Workloads.Synth.mesh_unknowns ~rows ~cols))

let prop_tree_well_formed =
  QCheck.Test.make ~name:"rc_tree lint-clean, connected, counted" ~count:25
    QCheck.(pair (int_range 0 5) (int_range 1 3))
    (fun (depth, fanout) ->
      well_formed
        (Printf.sprintf "tree d%d f%d" depth fanout)
        (Workloads.Synth.rc_tree ~depth ~fanout ())
        (Workloads.Synth.tree_unknowns ~depth ~fanout))

let prop_amp_well_formed =
  QCheck.Test.make ~name:"amp_array lint-clean, connected, counted"
    ~count:20
    QCheck.(pair (int_range 1 8) (float_range 10. 1e4))
    (fun (stages, av) ->
      well_formed
        (Printf.sprintf "amp x%d av=%g" stages av)
        (Workloads.Synth.amp_array ~av ~stages ())
        (Workloads.Synth.amp_array_unknowns ~stages))

(* ---------- seq vs par: bit-identical node results ---------- *)

let fast_options parallel =
  { Stability.Analysis.default_options with
    sweep = Numerics.Sweep.decade 1e3 1e9 6;
    parallel }

let check_seq_par_identical name circ nodes =
  let seq =
    Stability.Analysis.all_nodes ~options:(fast_options `Seq) ~nodes circ
  in
  with_real_workers 4 (fun () ->
      let par =
        Stability.Analysis.all_nodes ~options:(fast_options `Par) ~nodes
          circ
      in
      Alcotest.(check bool)
        (name ^ ": par result count matches seq")
        true
        (List.length seq = List.length par);
      Alcotest.(check bool)
        (name ^ ": seq and par bit-identical")
        true (seq = par))

let test_mesh_seq_par () =
  let rows = 6 and cols = 6 in
  check_seq_par_identical "mesh 6x6"
    (Workloads.Synth.rc_mesh ~rows ~cols ())
    [ Workloads.Synth.mesh_node 0 0;
      Workloads.Synth.mesh_node 2 3;
      Workloads.Synth.mesh_node 5 5 ]

let test_tree_seq_par () =
  let depth = 4 and fanout = 2 in
  check_seq_par_identical "tree d4 f2"
    (Workloads.Synth.rc_tree ~depth ~fanout ())
    [ Workloads.Synth.tree_node 0;
      Workloads.Synth.tree_node 7;
      Workloads.Synth.tree_node (Workloads.Synth.tree_count ~depth ~fanout - 1) ]

let test_amp_seq_par () =
  let stages = 4 in
  check_seq_par_identical "amp x4"
    (Workloads.Synth.amp_array ~stages ())
    (List.init stages Workloads.Synth.amp_stage_out)

(* ---------- seq vs par: manifests diff-clean ---------- *)

(* Fresh caches on both sides: the run cache deliberately excludes the
   parallel mode from its fingerprint, so a shared cache would hand the
   second run the first run's results and prove nothing. *)
let manifest_for parallel name circ nodes =
  let cache = Tool.Cache.create () in
  let loaded =
    match
      Tool.Pipeline.load (Tool.Pipeline.Deck_circuit { name; circ })
    with
    | Ok l -> l
    | Error f -> Alcotest.failf "load %s: %s" name
                   (Tool.Pipeline.failure_message f)
  in
  let outcome =
    Tool.Pipeline.analyze_exn ~cache ~options:(fast_options parallel)
      loaded
      (Tool.Pipeline.All_nodes (Some nodes))
  in
  outcome.Tool.Pipeline.manifest

let check_manifests_clean name circ nodes =
  let m_seq = manifest_for `Seq name circ nodes in
  with_real_workers 4 (fun () ->
      let m_par = manifest_for `Par name circ nodes in
      let changes = Tool.Manifest.diff m_seq m_par in
      Alcotest.(check int)
        (name ^ ": manifest diff seq vs par clean")
        0 (List.length changes))

let test_mesh_manifest () =
  check_manifests_clean "synth_mesh_5x5"
    (Workloads.Synth.rc_mesh ~rows:5 ~cols:5 ())
    [ Workloads.Synth.mesh_node 0 0; Workloads.Synth.mesh_node 4 4 ]

let test_amp_manifest () =
  check_manifests_clean "synth_amp_3"
    (Workloads.Synth.amp_array ~stages:3 ())
    (List.init 3 Workloads.Synth.amp_stage_out)

let () =
  Alcotest.run "synth"
    [ ( "well-formed",
        List.map QCheck_alcotest.to_alcotest
          [ prop_mesh_well_formed; prop_tree_well_formed;
            prop_amp_well_formed ] );
      ( "seq-vs-par",
        [ Alcotest.test_case "mesh bit-identical" `Quick test_mesh_seq_par;
          Alcotest.test_case "tree bit-identical" `Quick test_tree_seq_par;
          Alcotest.test_case "amp bit-identical" `Quick test_amp_seq_par ] );
      ( "manifests",
        [ Alcotest.test_case "mesh diff-clean" `Quick test_mesh_manifest;
          Alcotest.test_case "amp diff-clean" `Quick test_amp_manifest ] ) ]
