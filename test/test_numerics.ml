(* Numerics substrate: linear algebra, polynomials, derivatives, peaks. *)

open Numerics

let check_close ?(tol = 1e-9) msg expected actual =
  let scale = Float.max 1. (Float.abs expected) in
  Alcotest.(check bool)
    (Printf.sprintf "%s: expected %.9g, got %.9g" msg expected actual)
    true
    (Float.abs (expected -. actual) <= tol *. scale)

(* ---------- engineering notation ---------- *)

let test_engnum_parse () =
  let cases =
    [ ("1k", 1e3); ("2.2k", 2.2e3); ("10meg", 1e7); ("0.5u", 0.5e-6);
      ("3p", 3e-12); ("1e-12", 1e-12); ("-4.7n", -4.7e-9); ("100", 100.);
      ("1.5K", 1.5e3); ("10kohm", 1e4); ("2m", 2e-3); ("3f", 3e-15);
      ("1g", 1e9); ("0.1", 0.1); ("5e3", 5e3); ("1E6", 1e6) ]
  in
  List.iter
    (fun (s, v) ->
      match Engnum.parse s with
      | Some got -> check_close ("parse " ^ s) v got
      | None -> Alcotest.failf "parse %S returned None" s)
    cases;
  Alcotest.(check (option (float 0.))) "garbage" None (Engnum.parse "abc");
  Alcotest.(check (option (float 0.))) "empty" None (Engnum.parse "")

let test_engnum_roundtrip () =
  List.iter
    (fun v ->
      let s = Engnum.format v in
      match Engnum.parse s with
      | Some got -> check_close ~tol:1e-3 ("roundtrip " ^ s) v got
      | None -> Alcotest.failf "roundtrip: %S unparseable" s)
    [ 1e3; 3.3e-12; 2.5e6; -4.7e-9; 0.15; 1e9; 123.45; 1e-15 ]

(* ---------- dense LU ---------- *)

let test_lu_known () =
  let a = Rmat.of_arrays [| [| 2.; 1. |]; [| 1.; 3. |] |] in
  let x = Rmat.solve a [| 5.; 10. |] in
  check_close "x0" 1. x.(0);
  check_close "x1" 3. x.(1)

let test_lu_pivoting () =
  (* Leading zero forces a row swap. *)
  let a = Rmat.of_arrays [| [| 0.; 1. |]; [| 1.; 0. |] |] in
  let x = Rmat.solve a [| 2.; 3. |] in
  check_close "x0" 3. x.(0);
  check_close "x1" 2. x.(1)

let test_lu_singular () =
  let a = Rmat.of_arrays [| [| 1.; 2. |]; [| 2.; 4. |] |] in
  Alcotest.check_raises "singular" (Dense.Singular 1) (fun () ->
      ignore (Rmat.solve a [| 1.; 1. |]))

let prop_lu_random =
  QCheck.Test.make ~name:"LU solves random diagonally-dominant systems"
    ~count:200
    QCheck.(pair (int_range 1 12) (int_range 0 10_000))
    (fun (n, seed) ->
      let st = Random.State.make [| seed; n |] in
      let a =
        Rmat.init n n (fun i j ->
            let v = Random.State.float st 2. -. 1. in
            if i = j then v +. (4. *. float_of_int n) else v)
      in
      let b = Array.init n (fun _ -> Random.State.float st 10. -. 5.) in
      let x = Rmat.solve a b in
      Rmat.residual_inf a x b < 1e-9)

let prop_complex_lu_random =
  QCheck.Test.make ~name:"complex LU solves random systems" ~count:200
    QCheck.(pair (int_range 1 10) (int_range 0 10_000))
    (fun (n, seed) ->
      let st = Random.State.make [| seed; n; 7 |] in
      let rnd () = Random.State.float st 2. -. 1. in
      let a =
        Cmat.init n n (fun i j ->
            let z = { Complex.re = rnd (); im = rnd () } in
            if i = j then Complex.add z { Complex.re = 4. *. float_of_int n; im = 0. }
            else z)
      in
      let b = Array.init n (fun _ -> { Complex.re = rnd (); im = rnd () }) in
      let x = Cmat.solve a b in
      Cmat.residual_inf a x b < 1e-9)

(* ---------- sparse LU ---------- *)

let random_sparse_system st n =
  (* Diagonally dominant with ~4 off-diagonal entries per column. *)
  let triplets = ref [] in
  for j = 0 to n - 1 do
    triplets := (j, j, 8. +. Random.State.float st 4.) :: !triplets;
    for _ = 1 to 4 do
      let i = Random.State.int st n in
      if i <> j then
        triplets := (i, j, Random.State.float st 2. -. 1.) :: !triplets
    done
  done;
  !triplets

let prop_sparse_lu_random =
  QCheck.Test.make ~name:"sparse LU solves random systems" ~count:100
    QCheck.(pair (int_range 2 60) (int_range 0 100_000))
    (fun (n, seed) ->
      let st = Random.State.make [| seed; n; 31 |] in
      let triplets = random_sparse_system st n in
      let a = Srmat.of_triplets ~rows:n ~cols:n triplets in
      let b = Array.init n (fun _ -> Random.State.float st 10. -. 5.) in
      let x = Srmat.lu_solve (Srmat.lu_factor a) b in
      Srmat.residual_inf a x b < 1e-9)

let prop_sparse_matches_dense =
  QCheck.Test.make ~name:"sparse and dense LU agree" ~count:60
    QCheck.(pair (int_range 2 25) (int_range 0 100_000))
    (fun (n, seed) ->
      let st = Random.State.make [| seed; n; 47 |] in
      let triplets = random_sparse_system st n in
      let a_sp = Srmat.of_triplets ~rows:n ~cols:n triplets in
      let a_d = Rmat.create n n in
      List.iter (fun (i, j, v) -> Rmat.add_to a_d i j v) triplets;
      let b = Array.init n (fun _ -> Random.State.float st 2.) in
      let xs = Srmat.lu_solve (Srmat.lu_factor a_sp) b in
      let xd = Rmat.solve a_d b in
      Vec.all_close ~tol:1e-9 xs xd)

let prop_sparse_complex =
  QCheck.Test.make ~name:"sparse complex LU" ~count:60
    QCheck.(pair (int_range 2 40) (int_range 0 100_000))
    (fun (n, seed) ->
      let st = Random.State.make [| seed; n; 53 |] in
      let rnd () = Random.State.float st 2. -. 1. in
      let triplets = ref [] in
      for j = 0 to n - 1 do
        triplets :=
          (j, j, { Complex.re = 8. +. Random.State.float st 2.; im = rnd () })
          :: !triplets;
        for _ = 1 to 3 do
          let i = Random.State.int st n in
          if i <> j then
            triplets := (i, j, { Complex.re = rnd (); im = rnd () })
              :: !triplets
        done
      done;
      let a = Scmat.of_triplets ~rows:n ~cols:n !triplets in
      let b = Array.init n (fun _ -> { Complex.re = rnd (); im = rnd () }) in
      let x = Scmat.lu_solve (Scmat.lu_factor a) b in
      Scmat.residual_inf a x b < 1e-9)

let test_sparse_needs_pivoting () =
  (* Zero diagonal forces row exchanges. *)
  let a =
    Srmat.of_triplets ~rows:2 ~cols:2 [ (0, 1, 1.); (1, 0, 1.) ]
  in
  let x = Srmat.lu_solve (Srmat.lu_factor a) [| 2.; 3. |] in
  check_close "x0" 3. x.(0);
  check_close "x1" 2. x.(1)

let test_sparse_singular () =
  let a =
    Srmat.of_triplets ~rows:2 ~cols:2
      [ (0, 0, 1.); (0, 1, 2.); (1, 0, 2.); (1, 1, 4.) ]
  in
  Alcotest.(check bool) "singular detected" true
    (try ignore (Srmat.lu_factor a); false with Sparse.Singular _ -> true)

let test_sparse_duplicates_summed () =
  let a =
    Srmat.of_triplets ~rows:1 ~cols:1 [ (0, 0, 1.); (0, 0, 2.) ]
  in
  Alcotest.(check int) "one entry" 1 (Srmat.nnz a);
  let x = Srmat.lu_solve (Srmat.lu_factor a) [| 6. |] in
  check_close "summed" 2. x.(0)

(* ---------- symbolic reuse / numeric refactorisation ---------- *)

(* Random MNA-like G + jwC skeleton: diagonally dominant conductances
   (resistors and gm diagonals), VCCS-style asymmetric off-diagonal
   couplings, and reactive entries sharing the same sparsity pattern. *)
let random_gc_skeleton st n =
  let tbl = Hashtbl.create (n * 6) in
  let add i j g c =
    let g0, c0 =
      match Hashtbl.find_opt tbl (i, j) with
      | Some gc -> gc
      | None -> (0., 0.)
    in
    Hashtbl.replace tbl (i, j) (g0 +. g, c0 +. c)
  in
  let rnd () = Random.State.float st 2. -. 1. in
  for j = 0 to n - 1 do
    (* Conductance + capacitance to ground on every node. *)
    add j j (6. +. Random.State.float st 4.) (1e-9 *. Random.State.float st 1.);
    for _ = 1 to 3 do
      let i = Random.State.int st n in
      if i <> j then begin
        (* VCCS-like stamp: off-diagonal conductance with its diagonal
           return, plus a coupling capacitor on the same entries. *)
        let g = rnd () and c = 1e-10 *. Random.State.float st 1. in
        add i j (-.g) (-.c);
        add i i g c
      end
    done
  done;
  (* Flatten to CSC sorted by (column, row). *)
  let entries =
    Hashtbl.fold (fun (i, j) (g, c) acc -> ((j, i), (g, c)) :: acc) tbl []
    |> List.sort compare
  in
  let nnz = List.length entries in
  let colptr = Array.make (n + 1) 0 in
  let rowidx = Array.make nnz 0 in
  let gvals = Array.make nnz 0. in
  let cvals = Array.make nnz 0. in
  List.iteri
    (fun p ((j, i), (g, c)) ->
      colptr.(j + 1) <- colptr.(j + 1) + 1;
      rowidx.(p) <- i;
      gvals.(p) <- g;
      cvals.(p) <- c)
    entries;
  for j = 0 to n - 1 do
    colptr.(j + 1) <- colptr.(j) + colptr.(j + 1)
  done;
  (colptr, rowidx, gvals, cvals)

let prop_symbolic_reuse =
  QCheck.Test.make
    ~name:"one symbolic analysis serves a sweep (refactor + multi-RHS)"
    ~count:60
    QCheck.(pair (int_range 3 40) (int_range 0 100_000))
    (fun (n, seed) ->
      let st = Random.State.make [| seed; n; 71 |] in
      let colptr, rowidx, gvals, cvals = random_gc_skeleton st n in
      let nnz = Array.length rowidx in
      let at omega =
        Scmat.of_csc ~rows:n ~cols:n ~colptr ~rowidx
          (Array.init nnz (fun p -> Complex.{ re = gvals.(p);
                                              im = omega *. cvals.(p) }))
      in
      (* Frequencies spanning six decades around the analysis point. *)
      let omegas = [| 2e3; 6.3e4; 2e6; 6.3e7; 2e9 |] in
      let sym, _ = Scmat.analyze (at 2e6) in
      let rnd () = Random.State.float st 2. -. 1. in
      let bs =
        Array.init 3 (fun _ ->
            Array.init n (fun _ -> Complex.{ re = rnd (); im = rnd () }))
      in
      Array.for_all
        (fun omega ->
          let a = at omega in
          (* Numeric-only replay along the frozen pattern... *)
          let f = Scmat.refactor ~pivot_tol:1e-6 sym a in
          let xs = Scmat.lu_solve_many f bs in
          (* ...must agree with a fresh dense LU at the same point. *)
          let d = Cmat.create n n in
          for j = 0 to n - 1 do
            for p = colptr.(j) to colptr.(j + 1) - 1 do
              Cmat.add_to d rowidx.(p) j
                Complex.{ re = gvals.(p); im = omega *. cvals.(p) }
            done
          done;
          Array.for_all2
            (fun x b ->
              let xd = Cmat.solve d b in
              Scmat.residual_inf a x b < 1e-9
              && Array.for_all2 (Cx.close ~tol:1e-7) x xd)
            xs bs)
        omegas)

(* ---------- condition estimation ---------- *)

let random_dense_complex st n =
  let rnd () = Random.State.float st 2. -. 1. in
  Cmat.init n n (fun i j ->
      let z = { Complex.re = rnd (); im = rnd () } in
      if i = j then
        Complex.add z { Complex.re = 4. *. float_of_int n; im = 0. }
      else z)

let prop_dense_transpose_solve =
  QCheck.Test.make ~name:"dense lu_solve_t solves the transposed system"
    ~count:100
    QCheck.(pair (int_range 1 12) (int_range 0 10_000))
    (fun (n, seed) ->
      let st = Random.State.make [| seed; n; 83 |] in
      let rnd () = Random.State.float st 2. -. 1. in
      let a = random_dense_complex st n in
      let b = Array.init n (fun _ -> { Complex.re = rnd (); im = rnd () }) in
      let x = Cmat.lu_solve_t (Cmat.lu_factor a) b in
      (* Residual of A^T x = b, formed against the transposed entries. *)
      let resid = ref 0. in
      for i = 0 to n - 1 do
        let acc = ref (Complex.neg b.(i)) in
        for j = 0 to n - 1 do
          acc := Complex.add !acc (Complex.mul (Cmat.get a j i) x.(j))
        done;
        resid := Float.max !resid (Cx.mag !acc)
      done;
      !resid < 1e-9)

let prop_sparse_transpose_solve =
  QCheck.Test.make ~name:"sparse lu_solve_t matches dense transpose solve"
    ~count:60
    QCheck.(pair (int_range 2 30) (int_range 0 100_000))
    (fun (n, seed) ->
      let st = Random.State.make [| seed; n; 89 |] in
      let rnd () = Random.State.float st 2. -. 1. in
      let triplets = ref [] in
      for j = 0 to n - 1 do
        triplets :=
          (j, j, { Complex.re = 8. +. Random.State.float st 2.; im = rnd () })
          :: !triplets;
        for _ = 1 to 3 do
          let i = Random.State.int st n in
          if i <> j then
            triplets := (i, j, { Complex.re = rnd (); im = rnd () })
              :: !triplets
        done
      done;
      let a = Scmat.of_triplets ~rows:n ~cols:n !triplets in
      let d = Cmat.create n n in
      List.iter (fun (i, j, v) -> Cmat.add_to d j i v) !triplets;
      let b = Array.init n (fun _ -> { Complex.re = rnd (); im = rnd () }) in
      let xs = Scmat.lu_solve_t (Scmat.lu_factor a) b in
      let xd = Cmat.solve d b in
      Array.for_all2 (Cx.close ~tol:1e-8) xs xd)

(* True 1-norm condition number via the explicit inverse: solve for each
   unit vector and take the worst column sum. O(n^3) but fine at test
   sizes; the Hager/Higham estimate must land within a small factor. *)
let true_cond_1norm a f n =
  let inv_norm = ref 0. in
  for j = 0 to n - 1 do
    let e =
      Array.init n (fun i -> if i = j then Complex.one else Complex.zero)
    in
    let col = Cmat.lu_solve f e in
    let s = Array.fold_left (fun acc z -> acc +. Cx.mag z) 0. col in
    inv_norm := Float.max !inv_norm s
  done;
  Cmat.norm1 a *. !inv_norm

let prop_cond_estimate =
  QCheck.Test.make
    ~name:"Hager estimate within a small factor of the true condition"
    ~count:100
    QCheck.(pair (int_range 2 15) (int_range 0 10_000))
    (fun (n, seed) ->
      let st = Random.State.make [| seed; n; 97 |] in
      let a = random_dense_complex st n in
      let f = Cmat.lu_factor a in
      let est = Cond.dense a f in
      let true_cond = true_cond_1norm a f n in
      (* The estimate is a lower bound (up to roundoff) and in practice
         lands within a modest factor; /10 keeps the floor loose. *)
      est <= true_cond *. 1.0001 && est >= true_cond /. 10.)

let test_cond_ill_conditioned () =
  (* A nearly-singular system: one row scaled down by 1e-12 pushes the
     condition number past 1e11, so rcond must collapse accordingly. *)
  let n = 4 in
  let a =
    Cmat.init n n (fun i j ->
        let base = if i = j then 5. else 1. /. float_of_int (i + j + 2) in
        let s = if i = n - 1 then 1e-12 else 1. in
        { Complex.re = base *. s; im = 0. })
  in
  let f = Cmat.lu_factor a in
  let rc = Cond.rcond (Cond.dense a f) in
  Alcotest.(check bool)
    (Printf.sprintf "rcond %.3g below 1e-9" rc)
    true
    (rc > 0. && rc < 1e-9)

let test_rcond_edge_cases () =
  check_close "rcond of 0" 0. (Cond.rcond 0.);
  check_close "rcond of -1" 0. (Cond.rcond (-1.));
  check_close "rcond of nan" 0. (Cond.rcond Float.nan);
  check_close "rcond of inf" 0. (Cond.rcond Float.infinity);
  check_close "rcond of 1e6" 1e-6 (Cond.rcond 1e6)

(* ---------- polynomials ---------- *)

let test_poly_eval () =
  (* p(s) = 1 + 2s + 3s^2 at s = 2 -> 17 *)
  let p = Poly.of_real_coeffs [| 1.; 2.; 3. |] in
  let v = Poly.eval p (Cx.of_float 2.) in
  check_close "eval" 17. v.Complex.re;
  check_close "eval imag" 0. v.Complex.im

let test_poly_arith () =
  let a = Poly.of_real_coeffs [| 1.; 1. |] in
  (* (1+s)^2 = 1 + 2s + s^2 *)
  let sq = Poly.mul a a in
  Alcotest.(check bool) "square" true
    (Poly.equal sq (Poly.of_real_coeffs [| 1.; 2.; 1. |]));
  let d = Poly.derivative sq in
  Alcotest.(check bool) "derivative" true
    (Poly.equal d (Poly.of_real_coeffs [| 2.; 2. |]))

let test_poly_roots_known () =
  (* roots of (s-1)(s-2)(s-3) *)
  let p = Poly.from_roots (List.map Cx.of_float [ 1.; 2.; 3. ]) in
  let roots = Poly.roots p |> List.map (fun z -> z.Complex.re)
              |> List.sort compare in
  match roots with
  | [ a; b; c ] ->
    check_close ~tol:1e-6 "root1" 1. a;
    check_close ~tol:1e-6 "root2" 2. b;
    check_close ~tol:1e-6 "root3" 3. c
  | _ -> Alcotest.fail "expected 3 roots"

let prop_poly_roots =
  QCheck.Test.make ~name:"roots of polynomials built from random roots"
    ~count:100
    QCheck.(pair (int_range 1 6) (int_range 0 100_000))
    (fun (n, seed) ->
      let st = Random.State.make [| seed; n; 13 |] in
      (* Random complex roots in an annulus, kept apart for conditioning. *)
      let rec gen acc k =
        if k = 0 then acc
        else begin
          let z =
            Cx.polar
              (0.5 +. Random.State.float st 2.)
              (Random.State.float st (2. *. Float.pi))
          in
          if List.exists (fun w -> Cx.mag (Complex.sub z w) < 0.3) acc then
            gen acc k
          else gen (z :: acc) (k - 1)
        end
      in
      let roots = gen [] n in
      let p = Poly.from_roots roots in
      let found = Poly.roots p in
      List.for_all
        (fun r ->
          List.exists (fun f -> Cx.mag (Complex.sub r f) < 1e-4) found)
        roots)

(* ---------- derivatives & stability function ---------- *)

let test_deriv_polynomial_exact () =
  (* d/dx of x^2 is exact for a 3-point parabola stencil. *)
  let x = Vec.linspace 1. 5. 9 in
  let y = Array.map (fun v -> v *. v) x in
  let d = Deriv.first ~x ~y in
  Array.iteri (fun k xv -> check_close "d(x^2)/dx" (2. *. xv) d.(k)) x;
  let d2 = Deriv.second ~x ~y in
  Array.iter (fun v -> check_close "d2(x^2)/dx2" 2. v) d2

let test_deriv_nonuniform () =
  let x = [| 1.; 1.5; 2.7; 3.1; 4.9; 5.0 |] in
  let y = Array.map (fun v -> (3. *. v *. v) -. (2. *. v) +. 7.) x in
  let d = Deriv.first ~x ~y in
  Array.iteri
    (fun k xv -> check_close "nonuniform parabola" ((6. *. xv) -. 2.) d.(k))
    x

let second_order_mag ~zeta x =
  (* |T| of eq 1.2 at normalised frequency x = w/wn. *)
  1. /. sqrt ((((1. -. (x *. x)) ** 2.) +. ((2. *. zeta *. x) ** 2.)))

let test_stability_function_peak () =
  (* Eq 1.4: P(wn) = -1/zeta^2 for the analytic second-order response. *)
  List.iter
    (fun zeta ->
      let freq = Vec.logspace 0.01 100. 2001 in
      let mag = Array.map (fun x -> second_order_mag ~zeta x) freq in
      let p = Deriv.stability_function ~freq ~mag in
      let i = Vec.argmin p in
      check_close ~tol:2e-2
        (Printf.sprintf "peak value (zeta=%g)" zeta)
        (-1. /. (zeta *. zeta))
        p.(i);
      check_close ~tol:2e-2 (Printf.sprintf "peak freq (zeta=%g)" zeta) 1.
        freq.(i))
    [ 0.1; 0.2; 0.3; 0.5; 0.7 ]

let test_stability_two_pass_agrees () =
  let zeta = 0.25 in
  let freq = Vec.logspace 0.01 100. 1501 in
  let mag = Array.map (fun x -> second_order_mag ~zeta x) freq in
  let a = Deriv.stability_function ~freq ~mag in
  let b = Deriv.stability_function_two_pass ~freq ~mag in
  (* The two discretisations differ at second order in the grid spacing;
     at 150 points/decade they agree to within about 1 percent. End points
     use one-sided stencils, so compare the interior. *)
  for k = 2 to Array.length a - 3 do
    check_close ~tol:2e-2 "two formulations agree" a.(k) b.(k)
  done

let prop_stability_eq14 =
  QCheck.Test.make
    ~name:"stability plot peak = -1/zeta^2 for random damping" ~count:60
    QCheck.(float_range 0.08 0.9)
    (fun zeta ->
      let freq = Vec.logspace 0.005 200. 3001 in
      let mag = Array.map (fun x -> second_order_mag ~zeta x) freq in
      let p = Deriv.stability_function ~freq ~mag in
      let i = Vec.argmin p in
      let expected = -1. /. (zeta *. zeta) in
      Float.abs (p.(i) -. expected) <= 0.03 *. Float.abs expected)

let prop_stability_eq14_grids =
  (* Eq 1.4 recovery across grid densities and the full zeta band down to
     0.05 (peak -400): the discrete peak value converges to -1/zeta^2
     with a sampling bias that shrinks as the grid refines, so the
     tolerance is tied to the density. The peak abscissa must also land
     on wn within one grid cell. *)
  QCheck.Test.make
    ~name:"eq 1.4 recovery across damping and grid density" ~count:80
    QCheck.(pair (float_range 0.05 1.0) (oneofl [ 3001; 5001; 8001 ]))
    (fun (zeta, n) ->
      let freq = Vec.logspace 0.02 50. n in
      let mag = Array.map (fun x -> second_order_mag ~zeta x) freq in
      let p = Deriv.stability_function ~freq ~mag in
      let i = Vec.argmin p in
      let expected = -1. /. (zeta *. zeta) in
      let tol = if n >= 8001 then 0.02 else if n >= 5001 then 0.03 else 0.05 in
      Float.abs (p.(i) -. expected) <= tol *. Float.abs expected)

let test_stability_clamped_notch () =
  (* Regression: one underflowed-to-zero (or non-finite) magnitude sample
     used to raise Invalid_argument through check_positive and kill the
     whole run; the clamped variant floors it and reports the count. *)
  let zeta = 0.3 in
  let freq = Vec.logspace 0.01 100. 801 in
  let mag = Array.map (fun x -> second_order_mag ~zeta x) freq in
  mag.(400) <- 0.;
  mag.(600) <- Float.nan;
  Alcotest.check_raises "strict form still raises"
    (Invalid_argument
       "Deriv.stability_function (mag): values must be positive and finite")
    (fun () -> ignore (Deriv.stability_function ~freq ~mag));
  let p, clamped = Deriv.stability_function_clamped ~freq ~mag in
  Alcotest.(check int) "two samples clamped" 2 clamped;
  Alcotest.(check bool) "result finite everywhere" true
    (Array.for_all Float.is_finite p);
  (* An untouched response reports zero clamps and matches the strict
     form exactly. *)
  let mag_ok = Array.map (fun x -> second_order_mag ~zeta x) freq in
  let p_ok, clamped_ok = Deriv.stability_function_clamped ~freq ~mag:mag_ok in
  Alcotest.(check int) "clean response: no clamps" 0 clamped_ok;
  let p_strict = Deriv.stability_function ~freq ~mag:mag_ok in
  Array.iteri (fun k v -> check_close "clean = strict" p_strict.(k) v) p_ok

let test_stability_clamped_all_dead () =
  (* Pathological: every sample invalid. The whole array floors at the
     absolute minimum and everything counts as clamped — no crash. *)
  let freq = Vec.logspace 0.1 10. 21 in
  let mag = Array.make 21 0. in
  let p, clamped = Deriv.stability_function_clamped ~freq ~mag in
  Alcotest.(check int) "all clamped" 21 clamped;
  Alcotest.(check bool) "finite" true (Array.for_all Float.is_finite p)

(* ---------- peaks ---------- *)

let test_peak_detection () =
  let x = Vec.logspace 1. 1e4 400 in
  (* A dip at 100 and a bump at 1000 on a flat baseline. *)
  let y =
    Array.map
      (fun v ->
        let lg = log10 v in
        (-2. *. exp (-.((lg -. 2.) ** 2.) /. 0.01))
        +. (1. *. exp (-.((lg -. 3.) ** 2.) /. 0.01)))
      x
  in
  let peaks = Peak.find ~min_prominence:0.5 ~x ~y () in
  (* The tail descending into the right boundary legitimately registers as
     an edge minimum (the stability tool's "end-of-range" case); count the
     interior extrema here. *)
  let interior = List.filter (fun p -> not p.Peak.at_edge) peaks in
  let minima = List.filter (fun p -> p.Peak.kind = Peak.Minimum) interior in
  let maxima = List.filter (fun p -> p.Peak.kind = Peak.Maximum) interior in
  (match minima with
   | [ p ] ->
     check_close ~tol:2e-2 "dip location" 100. p.Peak.x;
     check_close ~tol:2e-2 "dip value" (-2.) p.Peak.y;
     Alcotest.(check bool) "interior" false p.Peak.at_edge
   | _ -> Alcotest.failf "expected 1 minimum, got %d" (List.length minima));
  match maxima with
  | [ p ] -> check_close ~tol:2e-2 "bump location" 1000. p.Peak.x
  | _ -> Alcotest.failf "expected 1 maximum, got %d" (List.length maxima)

let test_peak_at_edge () =
  let x = Vec.logspace 1. 100. 50 in
  let y = Array.map (fun v -> -.v) x in
  let peaks = Peak.find ~x ~y () in
  Alcotest.(check bool) "edge minimum flagged" true
    (List.exists (fun p -> p.Peak.kind = Peak.Minimum && p.Peak.at_edge) peaks)

let test_parabolic_refine () =
  (* Vertex of y = (x-2)^2 + 1 from samples at 1, 2.5, 3. *)
  let f x = ((x -. 2.) ** 2.) +. 1. in
  let xv, yv =
    Peak.refine_parabolic ~x0:1. ~y0:(f 1.) ~x1:2.5 ~y1:(f 2.5) ~x2:3.
      ~y2:(f 3.)
  in
  check_close "vertex x" 2. xv;
  check_close "vertex y" 1. yv

let test_parabolic_vertex_clamp () =
  (* Regression: samples of a monotone, barely-curved function used to
     extrapolate the vertex far outside the bracket. f(x) = x + 0.001 x^2
     through 0/1/2 has its true parabola vertex near x = -500; the refined
     estimate must stay inside [x0, x2]. *)
  let f x = x +. (0.001 *. x *. x) in
  let xv, yv =
    Peak.refine_parabolic ~x0:0. ~y0:(f 0.) ~x1:1. ~y1:(f 1.) ~x2:2.
      ~y2:(f 2.)
  in
  Alcotest.(check bool) "vertex clamped into bracket" true
    (xv >= 0. && xv <= 2.);
  Alcotest.(check bool) "value finite" true (Float.is_finite yv);
  (* With the vertex pinned to the bracket edge the reported value is the
     parabola evaluated there, which stays near the sampled data. *)
  Alcotest.(check bool) "value near sampled range" true
    (yv >= -1. && yv <= f 2. +. 1.)

let test_parabolic_collinear_fallback () =
  (* Near-collinear samples: the curvature is dominated by rounding noise,
     so the refiner must return the middle sample instead of dividing by
     an essentially-zero curvature. *)
  let xv, yv =
    Peak.refine_parabolic ~x0:1. ~y0:10. ~x1:2. ~y1:20. ~x2:3.
      ~y2:(30. +. 2e-13)
  in
  check_close "falls back to middle x" 2. xv;
  check_close "falls back to middle y" 20. yv;
  (* Exactly collinear behaves the same. *)
  let xv', yv' =
    Peak.refine_parabolic ~x0:1. ~y0:10. ~x1:2. ~y1:20. ~x2:3. ~y2:30.
  in
  check_close "collinear x" 2. xv';
  check_close "collinear y" 20. yv'

(* ---------- eigenvalues ---------- *)

let test_eigen_known () =
  (* Block diagonal: eigenvalue 2 and the pair 3 +/- 4i. *)
  let a =
    Rmat.of_arrays
      [| [| 2.; 0.; 0. |]; [| 0.; 3.; 4. |]; [| 0.; -4.; 3. |] |]
  in
  let eigs =
    Eigen.eigenvalues a
    |> List.sort (fun x y -> compare (x.Complex.re, x.Complex.im)
                     (y.Complex.re, y.Complex.im))
  in
  match eigs with
  | [ e1; e2; e3 ] ->
    check_close "real eig" 2. e1.Complex.re;
    check_close "pair re" 3. e2.Complex.re;
    check_close "pair im" (-4.) e2.Complex.im;
    check_close "conj im" 4. e3.Complex.im
  | _ -> Alcotest.fail "expected 3 eigenvalues"

let test_eigen_triangular () =
  (* Upper triangular: eigenvalues are the diagonal. *)
  let a =
    Rmat.of_arrays
      [| [| 1.; 5.; -2. |]; [| 0.; -3.; 7. |]; [| 0.; 0.; 0.5 |] |]
  in
  let res =
    Eigen.eigenvalues a |> List.map (fun z -> z.Complex.re)
    |> List.sort compare
  in
  match res with
  | [ a1; a2; a3 ] ->
    check_close ~tol:1e-9 "diag 1" (-3.) a1;
    check_close ~tol:1e-9 "diag 2" 0.5 a2;
    check_close ~tol:1e-9 "diag 3" 1. a3
  | _ -> Alcotest.fail "expected 3 eigenvalues"

let test_hessenberg_structure () =
  let st = Random.State.make [| 42 |] in
  let a = Rmat.init 8 8 (fun _ _ -> Random.State.float st 2. -. 1.) in
  let h = Eigen.hessenberg a in
  for i = 2 to 7 do
    for j = 0 to i - 2 do
      check_close "below subdiagonal" 0. (Rmat.get h i j)
    done
  done

let prop_eigen_companion =
  (* Companion matrices of random polynomials: eigenvalues must match the
     polynomial's roots (computed by the independent Durand-Kerner path). *)
  QCheck.Test.make ~name:"companion-matrix eigenvalues = polynomial roots"
    ~count:50
    QCheck.(pair (int_range 2 7) (int_range 0 100_000))
    (fun (n, seed) ->
      let st = Random.State.make [| seed; n; 99 |] in
      let coeffs =
        Array.init n (fun _ -> Random.State.float st 4. -. 2.)
      in
      (* monic polynomial s^n + c_{n-1} s^{n-1} + ... + c_0 *)
      let a =
        Rmat.init n n (fun i j ->
            if i = 0 then -.coeffs.(n - 1 - j)
            else if i = j + 1 then 1.
            else 0.)
      in
      let eigs = Eigen.eigenvalues a in
      let poly =
        Poly.of_real_coeffs (Array.append coeffs [| 1. |])
      in
      let roots = Poly.roots poly in
      List.for_all
        (fun r ->
          List.exists
            (fun e -> Cx.mag (Complex.sub r e) < 1e-4 *. Float.max 1. (Cx.mag r))
            eigs)
        roots)

(* ---------- interpolation ---------- *)

let test_interp_linear () =
  let x = [| 0.; 1.; 2. |] and y = [| 0.; 10.; 40. |] in
  check_close "mid" 5. (Interp.linear ~x ~y 0.5);
  check_close "clamp low" 0. (Interp.linear ~x ~y (-1.));
  check_close "clamp high" 40. (Interp.linear ~x ~y 9.)

let test_interp_opt () =
  (* The option-returning variants answer None outside the abscissa range
     instead of silently clamping, and agree with the clamping forms
     inside it (endpoints included). *)
  let x = [| 0.; 1.; 2. |] and y = [| 0.; 10.; 40. |] in
  (match Interp.linear_opt ~x ~y 0.5 with
   | Some v -> check_close "inside matches linear" (Interp.linear ~x ~y 0.5) v
   | None -> Alcotest.fail "linear_opt: in-range query answered None");
  (match Interp.linear_opt ~x ~y 0. with
   | Some v -> check_close "left endpoint" 0. v
   | None -> Alcotest.fail "linear_opt: left endpoint answered None");
  (match Interp.linear_opt ~x ~y 2. with
   | Some v -> check_close "right endpoint" 40. v
   | None -> Alcotest.fail "linear_opt: right endpoint answered None");
  Alcotest.(check bool) "below range is None" true
    (Interp.linear_opt ~x ~y (-0.1) = None);
  Alcotest.(check bool) "above range is None" true
    (Interp.linear_opt ~x ~y 2.1 = None);
  let xf = [| 1.; 10.; 100. |] and yf = [| 1.; 100.; 10000. |] in
  (match Interp.loglog_opt ~x:xf ~y:yf 31.6227766 with
   | Some v ->
     check_close ~tol:1e-6 "loglog inside"
       (Interp.loglog ~x:xf ~y:yf 31.6227766) v
   | None -> Alcotest.fail "loglog_opt: in-range query answered None");
  Alcotest.(check bool) "loglog below range is None" true
    (Interp.loglog_opt ~x:xf ~y:yf 0.5 = None);
  (match Interp.semilogx_opt ~x:xf ~y:[| 0.; 1.; 2. |] 10. with
   | Some v -> check_close "semilogx inside" 1. v
   | None -> Alcotest.fail "semilogx_opt: in-range query answered None");
  Alcotest.(check bool) "semilogx above range is None" true
    (Interp.semilogx_opt ~x:xf ~y:[| 0.; 1.; 2. |] 101. = None)

let test_interp_crossings () =
  let x = [| 0.; 1.; 2.; 3. |] and y = [| -1.; 1.; -1.; 1. |] in
  match Interp.crossings ~x ~y 0. with
  | [ a; b; c ] ->
    check_close "c1" 0.5 a;
    check_close "c2" 1.5 b;
    check_close "c3" 2.5 c
  | l -> Alcotest.failf "expected 3 crossings, got %d" (List.length l)

let test_table_lookup_descending () =
  (* Table 1 style: zeta (descending peak) -> phase margin. *)
  let x = [| -100.; -25.; -11. |] and y = [| 10.; 20.; 30. |] in
  check_close "interpolated" 25. (Interp.table_lookup ~x ~y (-18.))

(* ---------- svg plots ---------- *)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let test_svgplot_basic () =
  let xs = Vec.logspace 1. 1e6 50 in
  let ys = Array.map (fun x -> 20. *. log10 (1. /. sqrt (1. +. x))) xs in
  let svg =
    Svgplot.render
      (Svgplot.config ~x_axis:Svgplot.Log ~title:"response"
         ~x_label:"f [Hz]" ~y_label:"dB" ())
      [ Svgplot.series "H" xs ys ]
  in
  Alcotest.(check bool) "svg document" true (contains svg "<svg");
  Alcotest.(check bool) "polyline present" true (contains svg "<path d=\"M");
  Alcotest.(check bool) "title shown" true (contains svg "response");
  Alcotest.(check bool) "legend entry" true (contains svg ">H</text>");
  (* Log decade ticks. *)
  Alcotest.(check bool) "decade tick" true (contains svg ">1k</text>")

let test_svgplot_gaps_and_errors () =
  let xs = [| 1.; 2.; 3.; 4. |] in
  let ys = [| 1.; Float.nan; 3.; 4. |] in
  let svg =
    Svgplot.render
      (Svgplot.config ~title:"gaps" ~x_label:"x" ~y_label:"y" ())
      [ Svgplot.series "s" xs ys ]
  in
  (* The NaN breaks the path: two MoveTos. *)
  let count_m =
    let n = ref 0 in
    String.iteri
      (fun i c ->
        if c = 'M' && i > 0 && svg.[i - 1] = '"' then incr n)
      svg;
    !n
  in
  Alcotest.(check bool) "path restarts after the gap" true (count_m >= 1);
  Alcotest.(check bool) "negative data on log axis rejected" true
    (try
       ignore
         (Svgplot.render
            (Svgplot.config ~y_axis:Svgplot.Log ~title:"t" ~x_label:"x"
               ~y_label:"y" ())
            [ Svgplot.series "s" [| 1.; 2. |] [| -1.; 2. |] ]);
       false
     with Invalid_argument _ -> true)

(* ---------- sweeps ---------- *)

let test_sweep_decade () =
  let pts = Sweep.points (Sweep.decade 1. 1000. 10) in
  check_close "first" 1. pts.(0);
  check_close "last" 1000. pts.(Array.length pts - 1);
  Alcotest.(check int) "count" 31 (Array.length pts)

let test_sweep_zoom () =
  let pts = Sweep.points (Sweep.zoom ~center:1e6 ~ratio:2. ~per_decade:100) in
  check_close ~tol:1e-9 "zoom start" 5e5 pts.(0);
  check_close ~tol:1e-9 "zoom stop" 2e6 pts.(Array.length pts - 1)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "numerics"
    [ ("engnum",
       [ Alcotest.test_case "parse" `Quick test_engnum_parse;
         Alcotest.test_case "roundtrip" `Quick test_engnum_roundtrip ]);
      ("dense",
       [ Alcotest.test_case "known system" `Quick test_lu_known;
         Alcotest.test_case "pivoting" `Quick test_lu_pivoting;
         Alcotest.test_case "singular detection" `Quick test_lu_singular ]);
      qsuite "dense-props" [ prop_lu_random; prop_complex_lu_random ];
      ("sparse",
       [ Alcotest.test_case "pivoting" `Quick test_sparse_needs_pivoting;
         Alcotest.test_case "singular detection" `Quick test_sparse_singular;
         Alcotest.test_case "duplicate summing" `Quick
           test_sparse_duplicates_summed ]);
      qsuite "sparse-props"
        [ prop_sparse_lu_random; prop_sparse_matches_dense;
          prop_sparse_complex; prop_symbolic_reuse ];
      ("cond",
       [ Alcotest.test_case "ill-conditioned rcond" `Quick
           test_cond_ill_conditioned;
         Alcotest.test_case "rcond edge cases" `Quick
           test_rcond_edge_cases ]);
      qsuite "cond-props"
        [ prop_dense_transpose_solve; prop_sparse_transpose_solve;
          prop_cond_estimate ];
      ("poly",
       [ Alcotest.test_case "eval" `Quick test_poly_eval;
         Alcotest.test_case "arithmetic" `Quick test_poly_arith;
         Alcotest.test_case "known roots" `Quick test_poly_roots_known ]);
      qsuite "poly-props" [ prop_poly_roots ];
      ("deriv",
       [ Alcotest.test_case "polynomial exact" `Quick
           test_deriv_polynomial_exact;
         Alcotest.test_case "nonuniform grid" `Quick test_deriv_nonuniform;
         Alcotest.test_case "stability peak eq 1.4" `Quick
           test_stability_function_peak;
         Alcotest.test_case "two-pass form agrees" `Quick
           test_stability_two_pass_agrees;
         Alcotest.test_case "clamped notch underflow" `Quick
           test_stability_clamped_notch;
         Alcotest.test_case "clamped all-dead response" `Quick
           test_stability_clamped_all_dead ]);
      qsuite "deriv-props" [ prop_stability_eq14; prop_stability_eq14_grids ];
      ("peak",
       [ Alcotest.test_case "detection" `Quick test_peak_detection;
         Alcotest.test_case "edge flag" `Quick test_peak_at_edge;
         Alcotest.test_case "parabolic refine" `Quick test_parabolic_refine;
         Alcotest.test_case "vertex clamp" `Quick test_parabolic_vertex_clamp;
         Alcotest.test_case "collinear fallback" `Quick
           test_parabolic_collinear_fallback ]);
      ("eigen",
       [ Alcotest.test_case "known spectrum" `Quick test_eigen_known;
         Alcotest.test_case "triangular" `Quick test_eigen_triangular;
         Alcotest.test_case "hessenberg structure" `Quick
           test_hessenberg_structure ]);
      qsuite "eigen-props" [ prop_eigen_companion ];
      ("interp",
       [ Alcotest.test_case "linear" `Quick test_interp_linear;
         Alcotest.test_case "option variants" `Quick test_interp_opt;
         Alcotest.test_case "crossings" `Quick test_interp_crossings;
         Alcotest.test_case "descending table" `Quick
           test_table_lookup_descending ]);
      ("svgplot",
       [ Alcotest.test_case "basic chart" `Quick test_svgplot_basic;
         Alcotest.test_case "gaps and log errors" `Quick
           test_svgplot_gaps_and_errors ]);
      ("sweep",
       [ Alcotest.test_case "decade" `Quick test_sweep_decade;
         Alcotest.test_case "zoom" `Quick test_sweep_zoom ]) ]
