(* The persistent worker pool: scheduling semantics, exception
   propagation, nested submission, and the determinism + plan-reuse
   contracts of the parallel stability pipeline. *)

let with_jobs n f =
  let saved = Parallel.Pool.jobs () in
  Parallel.Pool.set_jobs n;
  Fun.protect ~finally:(fun () -> Parallel.Pool.set_jobs saved) f

(* The pool clamps to the core count, so on a small CI machine [-j 4]
   runs inline and never exercises worker domains. Forcing
   oversubscription turns the real scheduler back on — domains, deals,
   steals — whatever the hardware. *)
let with_real_workers n f =
  let saved = Parallel.Pool.jobs () in
  Parallel.Pool.set_oversubscribe true;
  Parallel.Pool.set_jobs n;
  Fun.protect
    ~finally:(fun () ->
      Parallel.Pool.set_jobs saved;
      Parallel.Pool.set_oversubscribe false;
      Parallel.Pool.shutdown ())
    f

(* ---------- pool primitives ---------- *)

let test_pool_empty_and_tiny () =
  with_jobs 2 (fun () ->
      Alcotest.(check (list int)) "empty list" []
        (Parallel.Pool.map_list (fun x -> x) []);
      Alcotest.(check (list int)) "singleton runs inline" [ 42 ]
        (Parallel.Pool.map_list (fun x -> x * 2) [ 21 ]);
      Parallel.Pool.parallel_for ~n:0 (fun _ -> assert false))

let test_pool_order_preserved () =
  with_jobs 2 (fun () ->
      let xs = List.init 100 Fun.id in
      Alcotest.(check (list int)) "map_list order"
        (List.map (fun x -> x * x) xs)
        (Parallel.Pool.map_list ~chunk:1 (fun x -> x * x) xs);
      let a = Array.init 257 (fun i -> i - 128) in
      Alcotest.(check (array int)) "map_array order"
        (Array.map (fun x -> (3 * x) + 1) a)
        (Parallel.Pool.map_array (fun x -> (3 * x) + 1) a))

let test_pool_each_index_once () =
  with_jobs 2 (fun () ->
      let n = 50 in
      (* Each task touches only its own cell, so no synchronisation is
         needed to count executions. *)
      let hits = Array.make n 0 in
      Parallel.Pool.parallel_for ~chunk:1 ~n (fun i ->
          hits.(i) <- hits.(i) + 1);
      Alcotest.(check (array int)) "every index exactly once"
        (Array.make n 1) hits)

let test_pool_exception_propagation () =
  with_jobs 2 (fun () ->
      Alcotest.check_raises "body exception reaches submitter"
        (Failure "boom 37") (fun () ->
          Parallel.Pool.parallel_for ~chunk:1 ~n:64 (fun i ->
              if i = 37 then failwith "boom 37"));
      (* The pool survives a failed batch. *)
      Alcotest.(check (list int)) "pool usable after failure" [ 0; 1; 4 ]
        (Parallel.Pool.map_list (fun x -> x * x) [ 0; 1; 2 ]))

let test_pool_nested_runs_inline () =
  with_jobs 2 (fun () ->
      let outer = 4 and inner = 8 in
      let sums = Array.make outer 0 in
      Parallel.Pool.parallel_for ~chunk:1 ~n:outer (fun o ->
          Alcotest.(check bool) "body sees worker context" true
            (Parallel.Pool.in_worker ());
          (* Inner submission from a pool task must run inline (no
             oversubscription, no deadlock) and still compute. *)
          Parallel.Pool.parallel_for ~n:inner (fun i ->
              sums.(o) <- sums.(o) + i));
      Alcotest.(check (array int)) "nested loops computed"
        (Array.make outer (inner * (inner - 1) / 2))
        sums);
  Alcotest.(check bool) "not a worker outside submissions" false
    (Parallel.Pool.in_worker ())

let test_pool_set_jobs () =
  let saved = Parallel.Pool.jobs () in
  Parallel.Pool.set_jobs 3;
  Alcotest.(check int) "set_jobs 3" 3 (Parallel.Pool.jobs ());
  Parallel.Pool.set_jobs 0;
  Alcotest.(check int) "clamped to 1" 1 (Parallel.Pool.jobs ());
  Alcotest.(check (list int)) "jobs=1 runs inline" [ 1; 2; 3 ]
    (Parallel.Pool.map_list (fun x -> x + 1) [ 0; 1; 2 ]);
  Parallel.Pool.set_jobs saved

let test_pool_effective_jobs () =
  with_jobs 4 (fun () ->
      let cores = Domain.recommended_domain_count () in
      Alcotest.(check int) "clamped to the hardware"
        (Int.min 4 (Int.max 1 cores))
        (Parallel.Pool.effective_jobs ());
      Alcotest.(check int) "requested jobs still reported" 4
        (Parallel.Pool.jobs ());
      Parallel.Pool.set_oversubscribe true;
      Fun.protect
        ~finally:(fun () -> Parallel.Pool.set_oversubscribe false)
        (fun () ->
          Alcotest.(check int) "oversubscription honours the request" 4
            (Parallel.Pool.effective_jobs ())))

(* The same scheduling contracts as above, but with worker domains
   forced into existence (oversubscribed past the core count if need
   be): real deals, real steals, real per-worker locks. *)
let test_pool_real_workers () =
  with_real_workers 4 (fun () ->
      let n = 500 in
      let chunks0 =
        match Obs.Counter.find "pool.chunks" with
        | Some c -> Obs.Counter.value c
        | None -> Alcotest.fail "pool.chunks counter missing"
      in
      let hits = Array.make n 0 in
      Parallel.Pool.parallel_for ~chunk:1 ~n (fun i ->
          hits.(i) <- hits.(i) + 1);
      Alcotest.(check (array int)) "each index exactly once on domains"
        (Array.make n 1) hits;
      let chunks1 =
        match Obs.Counter.find "pool.chunks" with
        | Some c -> Obs.Counter.value c
        | None -> assert false
      in
      Alcotest.(check int) "every chunk executed exactly once" n
        (chunks1 - chunks0);
      let xs = List.init 200 Fun.id in
      Alcotest.(check (list int)) "order preserved on domains"
        (List.map (fun x -> x * 7) xs)
        (Parallel.Pool.map_list ~chunk:1 (fun x -> x * 7) xs);
      Alcotest.check_raises "exception crosses domains"
        (Failure "boom 11") (fun () ->
          Parallel.Pool.parallel_for ~chunk:1 ~n:64 (fun i ->
              if i = 11 then failwith "boom 11"));
      Alcotest.(check (list int)) "pool survives the failure" [ 0; 2; 4 ]
        (Parallel.Pool.map_list (fun x -> 2 * x) [ 0; 1; 2 ]))

let test_adaptive_chunk_target () =
  let saved = Parallel.Pool.chunk_target_ms () in
  Fun.protect
    ~finally:(fun () -> Parallel.Pool.set_chunk_target_ms saved)
    (fun () ->
      Parallel.Pool.set_chunk_target_ms 2.5;
      Alcotest.(check (float 1e-9)) "target readable" 2.5
        (Parallel.Pool.chunk_target_ms ());
      Parallel.Pool.set_chunk_target_ms (-1.);
      Alcotest.(check (float 1e-9)) "non-positive target ignored" 2.5
        (Parallel.Pool.chunk_target_ms ());
      (* Results must not depend on granularity: run the same batch at
         extreme targets (tiny -> many chunks, huge -> few) on real
         workers and require identical output. *)
      with_real_workers 3 (fun () ->
          let run () =
            Parallel.Pool.map_array
              (fun x -> (x * x) - x)
              (Array.init 300 Fun.id)
          in
          Parallel.Pool.set_chunk_target_ms 0.001;
          let fine = run () in
          Parallel.Pool.set_chunk_target_ms 50.;
          let coarse = run () in
          Alcotest.(check (array int))
            "chunk granularity never changes results" fine coarse))

(* ---------- environment knob grammar ---------- *)

(* The exact strings ACSTAB_JOBS / ACSTAB_CHUNK_MS accept, pinned via
   the exported pure parsers — no environment mutation, no respawned
   processes. Anything rejected here makes the reader warn and fall
   back instead of silently misconfiguring the pool. *)
let test_env_parse_grammar () =
  let jobs = Alcotest.(option int) and ms = Alcotest.(option (float 1e-9)) in
  Alcotest.check jobs "plain integer" (Some 4) (Parallel.Pool.parse_jobs "4");
  Alcotest.check jobs "surrounding whitespace trimmed" (Some 8)
    (Parallel.Pool.parse_jobs " 8 ");
  Alcotest.check jobs "one is the floor" (Some 1)
    (Parallel.Pool.parse_jobs "1");
  Alcotest.check jobs "zero rejected, not clamped" None
    (Parallel.Pool.parse_jobs "0");
  Alcotest.check jobs "negative rejected" None
    (Parallel.Pool.parse_jobs "-2");
  Alcotest.check jobs "non-numeric rejected" None
    (Parallel.Pool.parse_jobs "many");
  Alcotest.check jobs "empty rejected" None (Parallel.Pool.parse_jobs "");
  Alcotest.check jobs "float rejected for an integer knob" None
    (Parallel.Pool.parse_jobs "2.5");
  Alcotest.check ms "decimal milliseconds" (Some 2.5)
    (Parallel.Pool.parse_chunk_ms "2.5");
  Alcotest.check ms "scientific notation" (Some 1000.)
    (Parallel.Pool.parse_chunk_ms "1e3");
  Alcotest.check ms "whitespace trimmed" (Some 0.25)
    (Parallel.Pool.parse_chunk_ms " 0.25 ");
  Alcotest.check ms "integer spelling of a float knob" (Some 3.)
    (Parallel.Pool.parse_chunk_ms "3");
  Alcotest.check ms "zero rejected (target must be positive)" None
    (Parallel.Pool.parse_chunk_ms "0");
  Alcotest.check ms "negative rejected" None
    (Parallel.Pool.parse_chunk_ms "-1.5");
  Alcotest.check ms "infinity rejected" None
    (Parallel.Pool.parse_chunk_ms "inf");
  Alcotest.check ms "nan rejected" None (Parallel.Pool.parse_chunk_ms "nan");
  Alcotest.check ms "non-numeric rejected" None
    (Parallel.Pool.parse_chunk_ms "fast");
  Alcotest.check ms "empty rejected" None (Parallel.Pool.parse_chunk_ms "")

(* ---------- the `Auto seq/par decision ---------- *)

let test_auto_decision () =
  (* Shapes of a real tiny deck and a real >= 1k-unknown synthetic mesh:
     the tiny one must never clear the volume cutoff, the large one
     always does. *)
  let tiny_work = Stability.Probe.estimated_work ~unknowns:15 ~points:61 ~nets:1 in
  let mesh = Workloads.Synth.rc_mesh ~rows:32 ~cols:32 () in
  let unknowns = (Engine.Mna.compile mesh).Engine.Mna.size in
  let large_work =
    Stability.Probe.estimated_work ~unknowns ~points:61 ~nets:4
  in
  Alcotest.(check bool) "tiny deck under the cutoff" true
    (tiny_work < Stability.Probe.auto_threshold);
  Alcotest.(check bool) "mesh workload over the cutoff" true
    (large_work >= Stability.Probe.auto_threshold);
  (* Sequential pool => `Auto must be sequential even for huge sweeps. *)
  with_jobs 1 (fun () ->
      Alcotest.(check bool) "no workers -> seq" false
        (Stability.Probe.auto_decision ~unknowns ~points:61 ~nets:4));
  (* With jobs requested, the decision follows the *effective* count:
     never "parallel" into a pool the core clamp will run inline. *)
  with_jobs 4 (fun () ->
      Alcotest.(check bool) "decision tracks effective_jobs"
        (Parallel.Pool.effective_jobs () > 1)
        (Stability.Probe.auto_decision ~unknowns ~points:61 ~nets:4);
      Alcotest.(check bool) "tiny deck stays sequential" false
        (Stability.Probe.auto_decision ~unknowns:15 ~points:61 ~nets:1));
  (* Real workers available => the large deck must go parallel. *)
  with_real_workers 4 (fun () ->
      Alcotest.(check bool) "workers + volume -> par" true
        (Stability.Probe.auto_decision ~unknowns ~points:61 ~nets:4);
      Alcotest.(check bool) "tiny deck still seq" false
        (Stability.Probe.auto_decision ~unknowns:15 ~points:61 ~nets:1))

(* ---------- job queue rides the pool ---------- *)

let test_job_backtrace_captured () =
  let outcomes =
    Tool.Job.run_all ~parallel:`Seq
      [ ("ok", fun () -> 7); ("bad", fun () -> failwith "job crashed") ]
  in
  match outcomes with
  | [ ok; bad ] ->
    Alcotest.(check bool) "ok result" true (ok.Tool.Job.result = Ok 7);
    Alcotest.(check bool) "failure captured" true
      (match bad.Tool.Job.result with
       | Error (Failure m) -> m = "job crashed"
       | _ -> false);
    Alcotest.(check bool) "crash-site backtrace captured" true
      (bad.Tool.Job.backtrace <> None);
    Alcotest.check_raises "results_exn re-raises"
      (Failure "job crashed") (fun () ->
        ignore (Tool.Job.results_exn outcomes))
  | _ -> Alcotest.fail "expected two outcomes"

(* ---------- determinism of the stability pipeline ---------- *)

let quick_options =
  { Stability.Analysis.default_options with
    sweep = Numerics.Sweep.decade 1e3 1e9 10;
    refine_per_decade = 100 }

let check_deterministic name circ =
  let probe = Stability.Probe.prepare circ in
  let seq =
    Stability.Analysis.all_nodes_prepared
      ~options:{ quick_options with parallel = `Seq } probe
  in
  with_jobs 2 (fun () ->
      let par =
        Stability.Analysis.all_nodes_prepared
          ~options:{ quick_options with parallel = `Par } probe
      in
      (* Bit-identical, not merely close: pooled point-solves write
         disjoint cells with the same arithmetic as the sequential
         loop. *)
      Alcotest.(check bool)
        (name ^ ": pooled all-nodes equals sequential exactly") true
        (seq = par))

let test_determinism_opamp () =
  check_deterministic "opamp_2mhz" (Workloads.Opamp_2mhz.buffer ())

let test_determinism_nmc () =
  check_deterministic "nmc_amp" (Workloads.Nmc_amp.buffer ())

(* ---------- one symbolic analysis per run (plan reuse) ---------- *)

let test_one_symbolic_per_run () =
  let probe = Stability.Probe.prepare (Workloads.Opamp_2mhz.buffer ()) in
  let before = Engine.Ac_plan.totals () in
  ignore (Stability.Analysis.all_nodes_prepared ~options:quick_options probe);
  let after = Engine.Ac_plan.totals () in
  Alcotest.(check int)
    "coarse + every zoom window share one plan compilation" 1
    (after.Engine.Ac_plan.symbolic - before.Engine.Ac_plan.symbolic);
  Alcotest.(check int) "no pivot-order fallbacks" 0
    (after.Engine.Ac_plan.fallback - before.Engine.Ac_plan.fallback);
  let before = Engine.Ac_plan.totals () in
  ignore
    (Stability.Analysis.single_node_prepared ~options:quick_options probe
       Workloads.Opamp_2mhz.node_out);
  let after = Engine.Ac_plan.totals () in
  Alcotest.(check int) "single-node run compiles once too" 1
    (after.Engine.Ac_plan.symbolic - before.Engine.Ac_plan.symbolic)

let () =
  Fun.protect ~finally:Parallel.Pool.shutdown (fun () ->
      Alcotest.run "parallel"
        [ ("pool",
           [ Alcotest.test_case "empty and tiny inputs" `Quick
               test_pool_empty_and_tiny;
             Alcotest.test_case "order preserved" `Quick
               test_pool_order_preserved;
             Alcotest.test_case "each index exactly once" `Quick
               test_pool_each_index_once;
             Alcotest.test_case "exception propagation" `Quick
               test_pool_exception_propagation;
             Alcotest.test_case "nested submission inline" `Quick
               test_pool_nested_runs_inline;
             Alcotest.test_case "set_jobs" `Quick test_pool_set_jobs;
             Alcotest.test_case "effective_jobs clamp" `Quick
               test_pool_effective_jobs;
             Alcotest.test_case "real worker domains" `Quick
               test_pool_real_workers;
             Alcotest.test_case "adaptive chunk target" `Quick
               test_adaptive_chunk_target;
             Alcotest.test_case "env knob grammar" `Quick
               test_env_parse_grammar ]);
          ("auto",
           [ Alcotest.test_case "seq/par decision" `Quick
               test_auto_decision ]);
          ("jobs",
           [ Alcotest.test_case "backtrace capture" `Quick
               test_job_backtrace_captured ]);
          ("determinism",
           [ Alcotest.test_case "opamp_2mhz seq = par" `Quick
               test_determinism_opamp;
             Alcotest.test_case "nmc_amp seq = par" `Quick
               test_determinism_nmc ]);
          ("plan reuse",
           [ Alcotest.test_case "one symbolic per run" `Quick
               test_one_symbolic_per_run ]) ])
