(* The tool layer: sessions, OCEAN scripting, calculator, jobs, corners,
   diagnostics. *)

let check_close ?(tol = 1e-9) msg expected actual =
  let scale = Float.max 1. (Float.abs expected) in
  Alcotest.(check bool)
    (Printf.sprintf "%s: expected %.9g, got %.9g" msg expected actual)
    true
    (Float.abs (expected -. actual) <= tol *. scale)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

(* ---------- session ---------- *)

let test_session_basics () =
  let s = Tool.Session.create ~name:"t" () in
  let s2 = Tool.Session.create () in
  Alcotest.(check bool) "unique ids" true
    (Tool.Session.id s <> Tool.Session.id s2);
  Tool.Session.set_design_variable s "a" 1.;
  Tool.Session.set_design_variable s "b" 2.;
  Tool.Session.set_design_variable s "a" 3.;
  Alcotest.(check (list (pair string (float 0.)))) "vars deduplicated"
    [ ("b", 2.); ("a", 3.) ]
    (Tool.Session.design_variables s)

let test_session_state_roundtrip () =
  let s = Tool.Session.create () in
  Tool.Session.set_simulator s "spectre";
  Tool.Session.set_temp s 85.;
  Tool.Session.set_scale s 2.5;
  Tool.Session.set_design_variable s "rload" 4.7e3;
  Tool.Session.add_analysis s
    (Tool.Session.Ac (Numerics.Sweep.decade 10. 1e6 25));
  Tool.Session.add_analysis s (Tool.Session.Stab_single "out");
  Tool.Session.add_analysis s (Tool.Session.Tran { tstop = 1e-3; tstep = 1e-6 });
  Tool.Session.add_analysis s
    (Tool.Session.Noise { sweep = Numerics.Sweep.decade 1e2 1e7 15;
                          output = "out" });
  Tool.Session.add_analysis s Tool.Session.Poles;
  let path = Filename.temp_file "session" ".state" in
  Tool.Session.save_state s path;
  let s2 = Tool.Session.create () in
  Tool.Session.load_state s2 path;
  Sys.remove path;
  Alcotest.(check string) "simulator" "spectre" (Tool.Session.simulator s2);
  check_close "temp" 85. (Tool.Session.temp s2);
  check_close "scale" 2.5 (Tool.Session.scale s2);
  check_close "variable" 4.7e3
    (List.assoc "rload" (Tool.Session.design_variables s2));
  Alcotest.(check int) "analyses count" 5
    (List.length (Tool.Session.analyses s2));
  match Tool.Session.analyses s2 with
  | [ Tool.Session.Ac _; Tool.Session.Stab_single "out";
      Tool.Session.Tran { tstop; tstep };
      Tool.Session.Noise { output = "out"; _ }; Tool.Session.Poles ] ->
    check_close "tstop" 1e-3 tstop;
    check_close "tstep" 1e-6 tstep
  | _ -> Alcotest.fail "analyses not restored in order"

(* A corrupt integer field (points-per-decade, linear point count) used
   to escape [load_state] as a bare [Failure "int_of_string"] — no file,
   no line. Every analysis form carrying an integer must now fail with
   the same located message the float fields always produced. *)
let test_session_bad_int_located () =
  let load_line line =
    let path = Filename.temp_file "session" ".state" in
    let oc = open_out path in
    output_string oc (line ^ "\n");
    close_out oc;
    let s = Tool.Session.create () in
    let outcome =
      match Tool.Session.load_state s path with
      | () -> None
      | exception Failure msg -> Some msg
    in
    Sys.remove path;
    outcome
  in
  List.iter
    (fun line ->
      match load_line line with
      | None -> Alcotest.failf "corrupt state line %S accepted" line
      | Some msg ->
        Alcotest.(check bool)
          (Printf.sprintf "%S names the state file" line)
          true (contains msg "state file");
        Alcotest.(check bool)
          (Printf.sprintf "%S names the line" line)
          true (contains msg "line 1");
        Alcotest.(check bool)
          (Printf.sprintf "%S names the bad integer" line)
          true (contains msg "bad integer"))
    [ "analysis ac dec 1e3 1e9 bogus";
      "analysis ac lin 1e3 1e9 2.5";
      "analysis noise out dec 1e3 1e9 -" ];
  (* The valid spellings still parse. *)
  let path = Filename.temp_file "session" ".state" in
  let oc = open_out path in
  output_string oc "analysis ac dec 1e3 1e9 30\nanalysis ac lin 1 10 5\n";
  close_out oc;
  let s = Tool.Session.create () in
  Tool.Session.load_state s path;
  Sys.remove path;
  Alcotest.(check int) "valid integers accepted" 2
    (List.length (Tool.Session.analyses s))

(* ---------- ocean ---------- *)

let deck = {|divider bench
.param rtop=1k
V1 in 0 DC 10 AC 1
R1 in out {rtop}
R2 out 0 {rbot}
.end|}

let test_ocean_design_text_with_vars () =
  let s = Tool.Ocean.simulator "builtin" in
  Tool.Ocean.design_text s deck;
  Tool.Ocean.des_var s "rbot" 3e3;
  Tool.Ocean.analysis s Tool.Session.Op;
  let r = Tool.Ocean.run s in
  check_close "divider with desVar" 7.5 (Tool.Ocean.vdc r "out");
  (* Changing the variable and re-running re-elaborates. *)
  Tool.Ocean.des_var s "rbot" 1e3;
  let r2 = Tool.Ocean.run s in
  check_close "after desVar change" 5. (Tool.Ocean.vdc r2 "out")

let test_ocean_analyses () =
  let s = Tool.Ocean.simulator "builtin" in
  Tool.Ocean.design s (Workloads.Filters.parallel_rlc ());
  Tool.Ocean.analysis s
    (Tool.Session.Ac (Numerics.Sweep.decade 1e5 1e8 10));
  Tool.Ocean.analysis s (Tool.Session.Stab_single "n");
  let r = Tool.Ocean.run s in
  Alcotest.(check bool) "ac present" true (r.Tool.Ocean.ac <> None);
  Alcotest.(check int) "one stab result" 1 (List.length r.Tool.Ocean.stab);
  let report = Tool.Ocean.stab_report r in
  Alcotest.(check bool) "report built" true (contains report "Loop at")

let test_ocean_directives_fallback () =
  (* With no explicit analyses, directive cards in the deck drive the run. *)
  let s = Tool.Ocean.simulator "builtin" in
  Tool.Ocean.design_text s
    "bench\nV1 in 0 DC 2 AC 1\nR1 in out 1k\nR2 out 0 1k\n.op\n.ac dec 5 1 1meg\n.end\n";
  let r = Tool.Ocean.run s in
  check_close "op from directive" 1. (Tool.Ocean.vdc r "out");
  Alcotest.(check bool) "ac from directive" true (r.Tool.Ocean.ac <> None)

let test_ocean_temperature () =
  let s = Tool.Ocean.simulator "builtin" in
  Tool.Ocean.design s (Workloads.Bias_zero_tc.cell ~temp_c:85. ());
  Tool.Ocean.temperature s 85.;
  Tool.Ocean.analysis s Tool.Session.Op;
  let r = Tool.Ocean.run s in
  Alcotest.(check bool) "elaborated at 85C" true
    (Circuit.Netlist.temp_celsius r.Tool.Ocean.elaborated = 85.)

(* ---------- calculator ---------- *)

let test_calculator_ops () =
  let circ = Workloads.Filters.rc_lowpass () in
  let fc = Workloads.Filters.rc_lowpass_pole () in
  let ac =
    Engine.Ac.run ~sweep:(Numerics.Sweep.decade (fc /. 100.) (fc *. 100.) 40)
      circ
  in
  let w = Tool.Calculator.Freq (Engine.Ac.v ac "out") in
  check_close ~tol:1e-3 "db20 at fc"
    (-20. *. log10 (sqrt 2.))
    (Tool.Calculator.(value_at (db20 w) fc));
  check_close ~tol:1e-2 "phase at fc" (-45.)
    (Tool.Calculator.(value_at (phase_deg w) fc));
  (* -3 dB crossing of |H| is at fc. *)
  (match Tool.Calculator.cross (Tool.Calculator.mag w) (1. /. sqrt 2.) with
   | Some f -> check_close ~tol:1e-2 "crossing" fc f
   | None -> Alcotest.fail "no crossing");
  Alcotest.(check bool) "unknown op rejected" true
    (try ignore (Tool.Calculator.apply "nosuch" w); false
     with Invalid_argument _ -> true)

let test_calculator_stab_chain () =
  (* apply "stab" on the tank response = the analysis plot. *)
  let circ = Workloads.Filters.parallel_rlc () in
  let probe = Stability.Probe.prepare circ in
  let sweep = Numerics.Sweep.decade 1e5 1e8 100 in
  let resp = Stability.Probe.response probe ~sweep "n" in
  let via_calc = Tool.Calculator.apply "stab" (Tool.Calculator.Freq resp) in
  let fn, zeta = Workloads.Filters.parallel_rlc_theory () in
  check_close ~tol:3e-2 "stab op finds the peak"
    (Control.Second_order.performance_index zeta)
    (Tool.Calculator.value_at via_calc fn)

(* ---------- html report ---------- *)

let test_html_reports () =
  let circ = Workloads.Filters.parallel_rlc () in
  let results = Stability.Analysis.all_nodes circ in
  let html = Tool.Html_report.all_nodes circ results in
  Alcotest.(check bool) "has loop table" true (contains html "Loops (Table 2");
  Alcotest.(check bool) "has svg" true (contains html "<svg");
  Alcotest.(check bool) "has netlist" true (contains html "R1 n 0 100");
  let single = Tool.Html_report.single_node circ (List.hd results) in
  Alcotest.(check bool) "single has peaks table" true
    (contains single "Detected peaks");
  Alcotest.(check bool) "single has two plots" true
    (let rec count i acc =
       if i + 4 > String.length single then acc
       else if String.sub single i 4 = "<svg" then count (i + 4) (acc + 1)
       else count (i + 1) acc
     in
     count 0 0 = 2)

(* ---------- opstore ---------- *)

let test_opstore_roundtrip () =
  let circ = Workloads.Opamp_bjt.buffer () in
  let op = Engine.Dcop.solve (Engine.Mna.compile circ) in
  let path = Filename.temp_file "op" ".txt" in
  Tool.Opstore.save op path;
  (* Strip the hand-written nodesets and rely on the stored point. *)
  let reloaded = Tool.Opstore.load_nodeset circ path in
  Sys.remove path;
  let op2 = Engine.Dcop.solve (Engine.Mna.compile reloaded) in
  List.iter
    (fun n ->
      check_close ~tol:1e-6
        (Printf.sprintf "V(%s) reproduced" n)
        (Engine.Dcop.node_v op n)
        (Engine.Dcop.node_v op2 n))
    [ "out"; "o1"; "tail"; "nb" ];
  (* Direct Newton from the stored point, no homotopy needed. *)
  Alcotest.(check bool) "direct strategy" true
    (op2.Engine.Dcop.strategy = Engine.Dcop.Direct)

let test_calculator_group_delay () =
  (* One-pole RC: group delay at DC equals RC. *)
  let r = 1e3 and c = 1e-9 in
  let circ = Workloads.Filters.rc_lowpass ~r ~c () in
  let fc = Workloads.Filters.rc_lowpass_pole ~r ~c () in
  let ac =
    Engine.Ac.run ~sweep:(Numerics.Sweep.decade (fc /. 1e3) (fc *. 10.) 40)
      circ
  in
  let w = Tool.Calculator.Freq (Engine.Ac.v ac "out") in
  check_close ~tol:1e-3 "tg(0) = RC" (r *. c)
    (Tool.Calculator.(value_at (group_delay w) (fc /. 500.)));
  (* At the pole the delay halves. *)
  check_close ~tol:2e-2 "tg(fc) = RC/2" (r *. c /. 2.)
    (Tool.Calculator.(value_at (group_delay w) fc));
  (* real/imag split reassembles the magnitude. *)
  let re = Tool.Calculator.(value_at (apply "real" w) fc) in
  let im = Tool.Calculator.(value_at (apply "imag" w) fc) in
  check_close ~tol:1e-6 "sqrt(re^2+im^2) = |H(fc)|" (1. /. sqrt 2.)
    (sqrt ((re *. re) +. (im *. im)))

(* ---------- jobs ---------- *)

let test_jobs_sequential () =
  let outcomes =
    Tool.Job.run_all
      [ ("a", fun () -> 1); ("b", fun () -> 2); ("c", fun () -> 3) ]
  in
  Alcotest.(check (list int)) "in order" [ 1; 2; 3 ]
    (Tool.Job.results_exn outcomes)

let test_jobs_parallel_order_and_errors () =
  let jobs =
    List.init 12 (fun i ->
        ( Printf.sprintf "j%d" i,
          fun () -> if i = 7 then failwith "boom" else i * i ))
  in
  let outcomes = Tool.Job.run_all ~parallel:`Par jobs in
  Alcotest.(check int) "all came back" 12 (List.length outcomes);
  List.iteri
    (fun i (o : int Tool.Job.outcome) ->
      Alcotest.(check string) "submission order"
        (Printf.sprintf "j%d" i) o.Tool.Job.job_name;
      match o.Tool.Job.result with
      | Ok v -> Alcotest.(check int) "value" (i * i) v
      | Error _ -> Alcotest.(check int) "only job 7 fails" 7 i)
    outcomes

let test_jobs_parallel_simulations () =
  (* Real simulations across domains: per-temperature op of the bias cell. *)
  let temps = [ 0.; 27.; 85. ] in
  let jobs =
    List.map
      (fun t ->
        ( Printf.sprintf "%gC" t,
          fun () -> Workloads.Bias_zero_tc.reference_current ~temp_c:t () ))
      temps
  in
  let outcomes = Tool.Job.run_all ~parallel:`Par jobs in
  let currents = Tool.Job.results_exn outcomes in
  List.iter
    (fun i -> Alcotest.(check bool) "plausible" true (i > 20e-6 && i < 200e-6))
    currents

(* ---------- corners ---------- *)

let test_corners_apply () =
  let circ = Workloads.Opamp_2mhz.buffer () in
  let fast = Tool.Corners.apply Tool.Corners.fast circ in
  Alcotest.(check bool) "temp changed" true
    (Circuit.Netlist.temp_celsius fast = -40.);
  (match Circuit.Netlist.find_model fast "MN" with
   | Some m ->
     check_close "kp overridden" 120e-6
       (Circuit.Netlist.model_param m "kp" ~default:0.)
   | None -> Alcotest.fail "model MN missing");
  Alcotest.(check bool) "unknown model rejected" true
    (try
       ignore
         (Tool.Corners.apply
            (Tool.Corners.make ~models:[ ("NOPE", [ ("x", 1.) ]) ] "bad")
            circ);
       false
     with Invalid_argument _ -> true)

let test_corners_across () =
  (* Corners override transistor models, so the circuit must carry them. *)
  let circ = Workloads.Follower.emitter_follower () in
  let corners = [ Tool.Corners.typical; Tool.Corners.fast ] in
  let results =
    Tool.Corners.across corners circ (fun c ->
        let op = Engine.Dcop.solve (Engine.Mna.compile c) in
        Engine.Dcop.node_v op "out")
  in
  Alcotest.(check int) "both corners" 2 (List.length results);
  List.iter
    (fun (_, r) -> Alcotest.(check bool) "ran" true (Result.is_ok r))
    results

let test_temp_sweep () =
  let circ = Workloads.Filters.rc_lowpass () in
  let results =
    Tool.Corners.temp_sweep ~temps:[ 0.; 27.; 100. ] circ (fun c ->
        Circuit.Netlist.temp_celsius c)
  in
  Alcotest.(check (list (float 0.))) "temps propagated" [ 0.; 27.; 100. ]
    (List.map (fun (_, r) -> Result.get_ok r) results)

(* ---------- diagnostics ---------- *)

let test_diagnostics_guard () =
  let dir = Filename.get_temp_dir_name () in
  (match
     Tool.Diagnostics.guard ~operation:"ok op" ~report_dir:dir (fun () -> 42)
   with
   | Ok v -> Alcotest.(check int) "pass-through" 42 v
   | Error _ -> Alcotest.fail "spurious report");
  let s = Tool.Session.create ~name:"diag" () in
  Tool.Session.set_design_variable s "x" 1.;
  match
    Tool.Diagnostics.guard ~session:s ~operation:"failing op"
      ~report_dir:dir (fun () -> failwith "expected failure")
  with
  | Ok _ -> Alcotest.fail "should have failed"
  | Error r ->
    Alcotest.(check string) "operation recorded" "failing op"
      r.Tool.Diagnostics.operation;
    Alcotest.(check bool) "error captured" true
      (contains r.Tool.Diagnostics.error "expected failure");
    let text = Tool.Diagnostics.to_text r in
    Alcotest.(check bool) "session summarised" true (contains text "x=1")

(* ---------- sha256 ---------- *)

let test_sha256_vectors () =
  (* FIPS 180-4 test vectors. *)
  Alcotest.(check string) "empty"
    "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
    (Tool.Sha256.digest "");
  Alcotest.(check string) "abc"
    "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
    (Tool.Sha256.digest "abc");
  Alcotest.(check string) "two blocks"
    "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
    (Tool.Sha256.digest
       "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq");
  Alcotest.(check string) "million a's"
    "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
    (Tool.Sha256.digest (String.make 1_000_000 'a'))

(* ---------- json ---------- *)

let test_json_roundtrip () =
  let open Tool.Json in
  let doc =
    Obj
      [ ("s", Str "he\"llo\n"); ("n", Num 1.5); ("i", Num 42.);
        ("t", Bool true); ("z", Null);
        ("a", Arr [ Num 1.; Num (-2.5e-3); Str "x" ]) ]
  in
  match of_string (to_string doc) with
  | Error e -> Alcotest.failf "roundtrip parse failed: %s" e
  | Ok back ->
    Alcotest.(check bool) "roundtrip equal" true (back = doc);
    (match member "a" back with
     | Some (Arr l) -> Alcotest.(check int) "array length" 3 (List.length l)
     | _ -> Alcotest.fail "member lookup");
    check_close "float accessor" 1.5
      (Option.get (Option.bind (member "n" back) to_float))

let test_json_errors () =
  let bad s =
    match Tool.Json.of_string s with Ok _ -> false | Error _ -> true
  in
  Alcotest.(check bool) "truncated" true (bad "{\"a\": 1");
  Alcotest.(check bool) "trailing garbage" true (bad "1 2");
  Alcotest.(check bool) "bare word" true (bad "nope");
  Alcotest.(check bool) "non-finite rendered as null" true
    (Tool.Json.to_string (Tool.Json.Num Float.nan) = "null")

(* \u escapes: BMP code points decode to UTF-8, and non-BMP code points
   arrive as UTF-16 surrogate pairs (RFC 8259) that must combine into
   ONE code point. The decoder used to emit each surrogate half as its
   own 3-byte sequence — six bytes of invalid UTF-8 per emoji. *)
let test_json_unicode_escapes () =
  let dec s =
    match Tool.Json.of_string s with
    | Ok (Tool.Json.Str v) -> v
    | Ok _ -> Alcotest.failf "%S parsed to a non-string" s
    | Error e -> Alcotest.failf "%S rejected: %s" s e
  in
  Alcotest.(check string) "ASCII escape" "A" (dec "\"\\u0041\"");
  Alcotest.(check string) "2-byte code point" "\xc3\xa9" (dec "\"\\u00e9\"");
  Alcotest.(check string) "3-byte code point" "\xe2\x84\xa6"
    (dec "\"\\u2126\"");
  Alcotest.(check string) "surrogate pair is one 4-byte code point"
    "\xf0\x9f\x98\x80"
    (dec "\"\\ud83d\\ude00\"");
  Alcotest.(check string) "pair mid-string, neighbours intact" "a\xf0\x90\x80\x80b"
    (dec "\"a\\ud800\\udc00b\"");
  (* The encoder passes raw UTF-8 bytes through untouched, so a decoded
     pair survives a full round trip. *)
  let doc = Tool.Json.Str "\xf0\x9f\x98\x80 ok" in
  (match Tool.Json.of_string (Tool.Json.to_string doc) with
   | Ok back -> Alcotest.(check bool) "non-BMP round trip" true (back = doc)
   | Error e -> Alcotest.failf "round trip rejected: %s" e);
  let rejected s =
    match Tool.Json.of_string s with
    | Ok _ -> Alcotest.failf "%S accepted" s
    | Error e ->
      Alcotest.(check bool)
        (Printf.sprintf "%S names the surrogate" s)
        true (contains e "unpaired surrogate")
  in
  rejected "\"\\ud83d\"";            (* high surrogate at end of string *)
  rejected "\"\\ud83dx\"";           (* high followed by a plain char *)
  rejected "\"\\ud83d\\n\"";         (* high followed by another escape *)
  rejected "\"\\ud83d\\u0041\"";     (* high followed by a non-low escape *)
  rejected "\"\\ud800\\ud800\"";     (* high followed by another high *)
  rejected "\"\\ude00\""             (* lone low surrogate *)

(* ---------- manifests ---------- *)

let ladder_results () =
  let options =
    { Stability.Analysis.default_options with
      sweep = Numerics.Sweep.decade 1e3 1e6 10 }
  in
  Stability.Analysis.all_nodes ~options (Workloads.Ladder.rc ~sections:4 ())

let build_manifest results =
  Tool.Manifest.build ~deck_file:"ladder.sp"
    ~deck_text:"* rc ladder deck text\n" ~circ:(Workloads.Ladder.rc ~sections:4 ())
    ~options:[ ("mode", "all-nodes") ] ~results ~wall_s:0.25 ~cpu_s:0.5 ()

let test_manifest_roundtrip () =
  let m = build_manifest (ladder_results ()) in
  Alcotest.(check string) "deck hash matches digest"
    (Tool.Sha256.digest "* rc ladder deck text\n") m.Tool.Manifest.deck_sha256;
  Alcotest.(check bool) "has nodes" true
    (List.length m.Tool.Manifest.nodes > 0);
  match Tool.Manifest.of_json_string (Tool.Manifest.to_json m) with
  | Error e -> Alcotest.failf "manifest did not reload: %s" e
  | Ok back ->
    Alcotest.(check string) "deck file" m.Tool.Manifest.deck_file
      back.Tool.Manifest.deck_file;
    Alcotest.(check string) "sha" m.Tool.Manifest.deck_sha256
      back.Tool.Manifest.deck_sha256;
    Alcotest.(check int) "node count"
      (List.length m.Tool.Manifest.nodes)
      (List.length back.Tool.Manifest.nodes);
    List.iter2
      (fun (a : Tool.Manifest.node_entry) (b : Tool.Manifest.node_entry) ->
        Alcotest.(check string) "node name" a.node b.node;
        Alcotest.(check string) "quality" a.quality b.quality;
        match (a.f_n, b.f_n) with
        | Some x, Some y -> check_close ~tol:1e-12 ("f_n " ^ a.node) x y
        | None, None -> ()
        | _ -> Alcotest.failf "f_n presence mismatch on %s" a.node)
      m.Tool.Manifest.nodes back.Tool.Manifest.nodes;
    Alcotest.(check (list string)) "histogram names"
      (List.map fst m.Tool.Manifest.histograms)
      (List.map fst back.Tool.Manifest.histograms)

(* Replace the first occurrence of [sub] in [s] with [by]. *)
let replace_once s sub by =
  let n = String.length s and m = String.length sub in
  let rec find i =
    if i + m > n then None
    else if String.sub s i m = sub then Some i
    else find (i + 1)
  in
  match find 0 with
  | None -> s
  | Some i ->
    String.sub s 0 i ^ by ^ String.sub s (i + m) (n - i - m)

let test_manifest_diff () =
  let results = ladder_results () in
  let a = build_manifest results in
  Alcotest.(check int) "self-diff is empty" 0
    (List.length (Tool.Manifest.diff a a));
  (* Perturb one node's f_n beyond tolerance: must surface as Shifted. *)
  let perturb (e : Tool.Manifest.node_entry) =
    match e.f_n with
    | Some f when e.node = "n2" ->
      { e with Tool.Manifest.f_n = Some (f *. 1.01) }
    | _ -> e
  in
  let b = { a with Tool.Manifest.nodes = List.map perturb a.nodes } in
  let changes = Tool.Manifest.diff a b in
  Alcotest.(check bool) "perturbation detected" true
    (List.exists
       (function
         | Tool.Manifest.Shifted { node = "n2"; field = "f_n"; _ } -> true
         | _ -> false)
       changes);
  (* Within tolerance: no change. *)
  let tiny (e : Tool.Manifest.node_entry) =
    { e with Tool.Manifest.f_n = Option.map (fun f -> f *. (1. +. 1e-5)) e.f_n }
  in
  let c = { a with Tool.Manifest.nodes = List.map tiny a.nodes } in
  Alcotest.(check int) "sub-tolerance drift ignored" 0
    (List.length (Tool.Manifest.diff a c));
  (* Quality downgrade is a change; upgrade is not. *)
  let degrade (e : Tool.Manifest.node_entry) =
    if e.node = "n1" then { e with Tool.Manifest.quality = "suspect" } else e
  in
  let d = { a with Tool.Manifest.nodes = List.map degrade a.nodes } in
  Alcotest.(check bool) "downgrade detected" true
    (List.exists
       (function
         | Tool.Manifest.Downgraded { node = "n1"; to_ = "suspect"; _ } -> true
         | _ -> false)
       (Tool.Manifest.diff a d));
  Alcotest.(check int) "upgrade is not a change" 0
    (List.length (Tool.Manifest.diff d a));
  (* A node losing its dominant peak must surface as Removed_peak. *)
  let strip (e : Tool.Manifest.node_entry) =
    if e.node = "n3" then
      { e with Tool.Manifest.f_n = None; zeta = None;
               phase_margin_deg = None; peak = None }
    else e
  in
  let s = { a with Tool.Manifest.nodes = List.map strip a.nodes } in
  Alcotest.(check bool) "removed peak detected" true
    (List.exists
       (function
         | Tool.Manifest.Removed_peak "n3" -> true
         | _ -> false)
       (Tool.Manifest.diff a s))

let test_manifest_diff_json () =
  let a = build_manifest (ladder_results ()) in
  (* Self-comparison: the JSON must say "agree" with no changes. *)
  let j_ok = Tool.Manifest.diff_json ~a ~b:a (Tool.Manifest.diff a a) in
  Alcotest.(check (option string)) "schema" (Some "acstab-diff/1")
    (Tool.Json.mem_str "schema" j_ok);
  Alcotest.(check (option bool)) "agree" (Some true)
    (Tool.Json.mem_bool "agree" j_ok);
  Alcotest.(check (option bool)) "same deck" (Some true)
    (Tool.Json.mem_bool "same_deck" j_ok);
  Alcotest.(check (option int)) "nodes compared"
    (Some (List.length a.Tool.Manifest.nodes))
    (Tool.Json.mem_int "nodes_compared" j_ok);
  (* Shifted + downgraded + removed must each surface with its kind. *)
  let mutate (e : Tool.Manifest.node_entry) =
    match e.node with
    | "n2" -> { e with Tool.Manifest.f_n = Option.map (fun f -> f *. 1.01) e.f_n }
    | "n1" -> { e with Tool.Manifest.quality = "suspect" }
    | "n3" ->
      { e with Tool.Manifest.f_n = None; zeta = None;
               phase_margin_deg = None; peak = None }
    | _ -> e
  in
  let b = { a with Tool.Manifest.nodes = List.map mutate a.nodes } in
  let changes = Tool.Manifest.diff a b in
  let j = Tool.Manifest.diff_json ~a ~b changes in
  Alcotest.(check (option bool)) "disagree" (Some false)
    (Tool.Json.mem_bool "agree" j);
  let kinds =
    match Option.bind (Tool.Json.member "changes" j) Tool.Json.to_list with
    | Some l -> List.filter_map (Tool.Json.mem_str "kind") l
    | None -> []
  in
  Alcotest.(check int) "one JSON change per diff change"
    (List.length changes) (List.length kinds);
  List.iter
    (fun k ->
      Alcotest.(check bool) ("kind present: " ^ k) true (List.mem k kinds))
    [ "shifted"; "quality_downgraded"; "removed_peak" ];
  (* The document must round-trip through the parser. *)
  match Tool.Json.of_string (Tool.Json.to_string j) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "diff JSON does not reparse: %s" e

(* ---------- cache + pipeline ---------- *)

let counter_value name =
  match List.assoc_opt name (Obs.Counter.snapshot ()) with
  | Some n -> n
  | None -> 0

let ladder_loaded ?sections () =
  let circ = Workloads.Ladder.rc ?sections () in
  match
    Tool.Pipeline.load ~policy:{ Tool.Pipeline.no_lint = true; strict = false }
      (Tool.Pipeline.Deck_circuit { name = "rc_ladder"; circ })
  with
  | Ok l -> l
  | Error f ->
    Alcotest.failf "load failed: %s" (Tool.Pipeline.failure_message f)

let quick_options =
  { Stability.Analysis.default_options with
    sweep = Numerics.Sweep.decade 1e3 1e5 5 }

(* The cache contract the serve daemon relies on: a warm repeat of the
   same deck + options performs zero extra DC solves and zero extra
   symbolic analyses, and returns the identical manifest. *)
let test_pipeline_warm_hit () =
  let cache = Tool.Cache.create () in
  let loaded = ladder_loaded () in
  let run () =
    Tool.Pipeline.analyze_exn ~cache ~options:quick_options loaded
      (Tool.Pipeline.All_nodes None)
  in
  let o1 = run () in
  Alcotest.(check bool) "cold is a miss" true (o1.Tool.Pipeline.cache = `Miss);
  let dc = counter_value "dcop.solves"
  and sym = counter_value "acplan.symbolic" in
  let o2 = run () in
  Alcotest.(check bool) "warm is a hit" true (o2.Tool.Pipeline.cache = `Hit);
  Alcotest.(check int) "0 extra DC solves" dc (counter_value "dcop.solves");
  Alcotest.(check int) "0 extra symbolic analyses" sym
    (counter_value "acplan.symbolic");
  Alcotest.(check string) "identical manifest bytes"
    (Tool.Manifest.to_json o1.Tool.Pipeline.manifest)
    (Tool.Manifest.to_json o2.Tool.Pipeline.manifest)

(* The kernel cache family sits one step below [plan]: a warm repeat on
   the [`Kernel] backend compiles zero kernels, and a different request
   shape over the same deck + options (all-nodes, then one node) reuses
   the compiled kernel even though the result key differs. *)
let test_pipeline_kernel_warm () =
  let cache = Tool.Cache.create () in
  let loaded = ladder_loaded () in
  let options =
    { quick_options with Stability.Analysis.backend = `Kernel }
  in
  let analyze target =
    Tool.Pipeline.analyze_exn ~cache ~options loaded target
  in
  let o1 = analyze (Tool.Pipeline.All_nodes None) in
  Alcotest.(check bool) "cold is a miss" true (o1.Tool.Pipeline.cache = `Miss);
  Alcotest.(check bool) "cold run compiled a kernel" true
    (counter_value "kernel.compiles" > 0);
  let compiles = counter_value "kernel.compiles" in
  let o2 = analyze (Tool.Pipeline.All_nodes None) in
  Alcotest.(check bool) "warm is a hit" true (o2.Tool.Pipeline.cache = `Hit);
  Alcotest.(check int) "warm repeat compiles zero kernels" compiles
    (counter_value "kernel.compiles");
  Alcotest.(check string) "identical manifest bytes"
    (Tool.Manifest.to_json o1.Tool.Pipeline.manifest)
    (Tool.Manifest.to_json o2.Tool.Pipeline.manifest);
  (* New result key, same plan key: the kernel family answers. *)
  let o3 = analyze (Tool.Pipeline.Single_node (Workloads.Ladder.last_node 20)) in
  Alcotest.(check bool) "different request is a result miss" true
    (o3.Tool.Pipeline.cache = `Miss);
  Alcotest.(check int) "single-node reuses the compiled kernel" compiles
    (counter_value "kernel.compiles");
  (* The [`Plan] default never touches the kernel family. *)
  let cache' = Tool.Cache.create () in
  ignore
    (Tool.Pipeline.analyze_exn ~cache:cache' ~options:quick_options loaded
       (Tool.Pipeline.All_nodes None));
  let stats = Tool.Cache.stats cache' in
  (match
     List.find_opt (fun fs -> fs.Tool.Cache.family = "kernel") stats
   with
   | Some fs ->
     Alcotest.(check int) "kernel family untouched off-backend" 0
       fs.Tool.Cache.entries
   | None -> Alcotest.fail "kernel family missing from stats")

(* Invalidation is content addressing: a changed option is a different
   result key (but the operating point is reused), an edited deck is a
   different fingerprint (everything recomputes). *)
let test_pipeline_cache_keys () =
  let cache = Tool.Cache.create () in
  let loaded = ladder_loaded () in
  let analyze ~options loaded =
    Tool.Pipeline.analyze_exn ~cache ~options loaded
      (Tool.Pipeline.All_nodes None)
  in
  ignore (analyze ~options:quick_options loaded);
  let dc = counter_value "dcop.solves" in
  let wider =
    { quick_options with
      Stability.Analysis.sweep = Numerics.Sweep.decade 1e3 1e6 5 }
  in
  let o = analyze ~options:wider loaded in
  Alcotest.(check bool) "options change is a miss" true
    (o.Tool.Pipeline.cache = `Miss);
  Alcotest.(check int) "operating point reused across sweep change" dc
    (counter_value "dcop.solves");
  let loaded' = ladder_loaded ~sections:19 () in
  Alcotest.(check bool) "edited deck fingerprints differently" true
    (loaded.Tool.Pipeline.sha256 <> loaded'.Tool.Pipeline.sha256);
  let o' = analyze ~options:quick_options loaded' in
  Alcotest.(check bool) "edited deck is a miss" true
    (o'.Tool.Pipeline.cache = `Miss);
  Alcotest.(check bool) "edited deck re-solves DC" true
    (counter_value "dcop.solves" > dc)

let test_cache_eviction () =
  let c = Tool.Cache.create ~capacity:2 () in
  let m = build_manifest [] in
  let calls = ref 0 in
  let get k =
    snd
      (Tool.Cache.result c ~key:k (fun () ->
           incr calls;
           { Tool.Cache.results = []; manifest = m }))
  in
  Alcotest.(check bool) "cold miss" false (get "a");
  Alcotest.(check bool) "warm hit" true (get "a");
  Alcotest.(check bool) "b cold" false (get "b");
  Alcotest.(check bool) "c cold evicts LRU" false (get "c");
  Alcotest.(check bool) "evicted key recomputes" false (get "a");
  Alcotest.(check int) "compute count" 4 !calls;
  let entries =
    List.filter_map
      (fun (s : Tool.Cache.family_stats) ->
        if s.family = "result" then Some s.entries else None)
      (Tool.Cache.stats c)
  in
  Alcotest.(check (list int)) "capacity respected" [ 2 ] entries;
  Tool.Cache.clear c;
  Alcotest.(check bool) "clear forgets" false (get "c")

(* Pipeline failures are values carrying the CLI exit-code contract. *)
let test_pipeline_failures () =
  (match
     Tool.Pipeline.load
       (Tool.Pipeline.Deck_text { name = "bad.sp"; text = "* t\nR1 a\n.end\n" })
   with
   | Error (Tool.Pipeline.Parse_failed { message }) ->
     Alcotest.(check bool) "parse error names the deck" true
       (contains message "bad.sp")
   | _ -> Alcotest.fail "expected Parse_failed");
  (* A floating net is a lint error: blocked under the default policy,
     loadable under no_lint. *)
  let floating = "* t\nV1 in 0 1\nR1 in out 1k\nC1 out 0 1p\nR9 x y 1k\n.end\n" in
  (match
     Tool.Pipeline.load (Tool.Pipeline.Deck_text { name = "f.sp"; text = floating })
   with
   | Error (Tool.Pipeline.Lint_blocked { findings }) ->
     Alcotest.(check bool) "findings travel with the block" true
       (findings <> []);
     Alcotest.(check int) "exit code 4" 4
       (Tool.Pipeline.exit_code (Tool.Pipeline.Lint_blocked { findings }))
   | Ok _ -> Alcotest.fail "lint gate should have blocked"
   | Error f ->
     Alcotest.failf "expected Lint_blocked, got: %s"
       (Tool.Pipeline.failure_message f));
  match
    Tool.Pipeline.load
      ~policy:{ Tool.Pipeline.no_lint = true; strict = false }
      (Tool.Pipeline.Deck_text { name = "f.sp"; text = floating })
  with
  | Ok loaded ->
    Alcotest.(check (list string)) "no_lint runs no linter" []
      (List.map (fun (f : Lint.Rule.finding) -> f.rule_id)
         loaded.Tool.Pipeline.findings)
  | Error f ->
    Alcotest.failf "no_lint load failed: %s" (Tool.Pipeline.failure_message f)

let test_manifest_load_errors () =
  Alcotest.(check bool) "not json" true
    (Result.is_error (Tool.Manifest.of_json_string "not json"));
  let json = Tool.Manifest.to_json (build_manifest (ladder_results ())) in
  Alcotest.(check bool) "wrong schema rejected" true
    (Result.is_error
       (Tool.Manifest.of_json_string
          (replace_once json Tool.Manifest.schema_version
             "acstab-manifest/99")));
  Alcotest.(check bool) "unknown quality grade rejected" true
    (Result.is_error
       (Tool.Manifest.of_json_string
          (replace_once json "\"quality\":\"good\"" "\"quality\":\"amazing\"")))

let () =
  Alcotest.run "tool"
    [ ("session",
       [ Alcotest.test_case "basics" `Quick test_session_basics;
         Alcotest.test_case "state roundtrip" `Quick
           test_session_state_roundtrip;
         Alcotest.test_case "bad integers fail located" `Quick
           test_session_bad_int_located ]);
      ("ocean",
       [ Alcotest.test_case "design text + desVar" `Quick
           test_ocean_design_text_with_vars;
         Alcotest.test_case "analyses" `Quick test_ocean_analyses;
         Alcotest.test_case "directive fallback" `Quick
           test_ocean_directives_fallback;
         Alcotest.test_case "temperature" `Quick test_ocean_temperature ]);
      ("calculator",
       [ Alcotest.test_case "basic ops" `Quick test_calculator_ops;
         Alcotest.test_case "stab chain" `Quick test_calculator_stab_chain;
         Alcotest.test_case "group delay, real/imag" `Quick
           test_calculator_group_delay ]);
      ("html",
       [ Alcotest.test_case "reports render" `Quick test_html_reports ]);
      ("opstore",
       [ Alcotest.test_case "save/load roundtrip" `Quick
           test_opstore_roundtrip ]);
      ("jobs",
       [ Alcotest.test_case "sequential" `Quick test_jobs_sequential;
         Alcotest.test_case "parallel order and errors" `Quick
           test_jobs_parallel_order_and_errors;
         Alcotest.test_case "parallel simulations" `Quick
           test_jobs_parallel_simulations ]);
      ("corners",
       [ Alcotest.test_case "apply" `Quick test_corners_apply;
         Alcotest.test_case "across" `Quick test_corners_across;
         Alcotest.test_case "temp sweep" `Quick test_temp_sweep ]);
      ("diagnostics",
       [ Alcotest.test_case "guard" `Quick test_diagnostics_guard ]);
      ("sha256",
       [ Alcotest.test_case "FIPS vectors" `Quick test_sha256_vectors ]);
      ("json",
       [ Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
         Alcotest.test_case "errors" `Quick test_json_errors;
         Alcotest.test_case "unicode escapes" `Quick
           test_json_unicode_escapes ]);
      ("manifest",
       [ Alcotest.test_case "build/load roundtrip" `Quick
           test_manifest_roundtrip;
         Alcotest.test_case "diff semantics" `Quick test_manifest_diff;
         Alcotest.test_case "diff JSON" `Quick test_manifest_diff_json;
         Alcotest.test_case "load errors" `Quick
           test_manifest_load_errors ]);
      ("cache",
       [ Alcotest.test_case "warm hit re-solves nothing" `Quick
           test_pipeline_warm_hit;
         Alcotest.test_case "key granularity" `Quick
           test_pipeline_cache_keys;
         Alcotest.test_case "kernel family warm reuse" `Quick
           test_pipeline_kernel_warm;
         Alcotest.test_case "LRU eviction" `Quick test_cache_eviction ]);
      ("pipeline",
       [ Alcotest.test_case "failures as values" `Quick
           test_pipeline_failures ]) ]
