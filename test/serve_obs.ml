(* @serve-obs — end-to-end exercise of the daemon's observability
   surface.

   Boots `acstab serve` with an event-log sink, --slow-ms 0 (every
   request dumps its span tree) and a fast gauge tick, then over the
   wire: concurrent requests with unique request ids, a cold+warm
   analyze pair, the `metrics` command parsed back as Prometheus
   exposition, an on-demand `trace` capture yielding a valid Chrome
   trace, a malformed half-written request answered with a structured
   error that salvages the client's id (and the same connection kept
   serving), and a `Tool.Top` sample against the live daemon. After
   shutdown the event log must be valid NDJSON with exactly one
   server.request line per request, all ids unique. *)

let sock =
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "acstab-obs-%d.sock" (Unix.getpid ()))

let log_path =
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "acstab-obs-%d.ndjson" (Unix.getpid ()))

let cleanup () =
  List.iter
    (fun p -> try Sys.remove p with Sys_error _ -> ())
    [ sock; log_path ]

let fail fmt =
  Printf.ksprintf
    (fun m ->
      prerr_endline ("serve-obs: FAIL: " ^ m);
      cleanup ();
      exit 1)
    fmt

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let expect_ok j =
  match Tool.Json.mem_bool "ok" j with
  | Some true -> ()
  | _ -> fail "request not ok: %s" (Tool.Json.to_string j)

let request_id j =
  match Tool.Json.mem_str "request_id" j with
  | Some rid when String.length rid > 1 && rid.[0] = 'r' -> rid
  | Some rid -> fail "request_id %S is not of the r%%06d shape" rid
  | None -> fail "response lacks request_id: %s" (Tool.Json.to_string j)

let deck_text =
  "obs smoke\nVIN in 0 DC 0 AC 1\nR1 in out 1k\nC1 out 0 1n\n.end\n"

let analyze_req =
  Tool.Json.Obj
    [ ("cmd", Tool.Json.Str "analyze");
      ("mode", Tool.Json.Str "all-nodes");
      ("deck_text", Tool.Json.Str deck_text);
      ("name", Tool.Json.Str "obs_smoke.sp");
      ("fmin", Tool.Json.Num 1e3); ("fmax", Tool.Json.Num 1e6);
      ("ppd", Tool.Json.Num 10.) ]

let () =
  let server =
    Thread.create
      (fun () ->
        Tool.Server.serve ~socket:sock ~log:log_path ~slow_ms:0.0
          ~tick_s:0.05 ())
      ()
  in
  let rec wait_for_socket n =
    if n = 0 then fail "daemon socket never appeared"
    else if not (Sys.file_exists sock) then begin
      Unix.sleepf 0.05;
      wait_for_socket (n - 1)
    end
  in
  wait_for_socket 200;
  let c = Tool.Server.Client.connect sock in
  let sent = ref 0 in
  let ask req =
    incr sent;
    Tool.Server.Client.request c req
  in

  (* Every response carries a request id. *)
  let pong = ask (Tool.Json.Obj [ ("cmd", Tool.Json.Str "ping") ]) in
  expect_ok pong;
  let _ = request_id pong in

  (* Concurrent requests on distinct connections: all in flight before
     any response is read, ids still unique. *)
  let n_conc = 8 in
  let clients =
    List.init n_conc (fun _ -> Tool.Server.Client.connect sock)
  in
  List.iter
    (fun cl ->
      incr sent;
      Tool.Server.Client.send cl
        (Tool.Json.Obj [ ("cmd", Tool.Json.Str "ping") ]))
    clients;
  let rids =
    List.map
      (fun cl ->
        let r = Tool.Server.Client.recv cl in
        expect_ok r;
        Tool.Server.Client.close cl;
        request_id r)
      clients
  in
  if List.length (List.sort_uniq compare rids) <> n_conc then
    fail "concurrent request ids not unique: %s" (String.concat "," rids);

  (* Cold + warm analyze pair: the cache verdicts ride in the responses
     and (checked after shutdown) in the event log. *)
  let cold = ask analyze_req in
  expect_ok cold;
  let cold_rid = request_id cold in
  (match Tool.Json.mem_str "cache" cold with
   | Some "miss" -> ()
   | v -> fail "cold cache=%s" (Option.value ~default:"<absent>" v));
  let warm = ask analyze_req in
  expect_ok warm;
  let warm_rid = request_id warm in
  (match Tool.Json.mem_str "cache" warm with
   | Some "hit" -> ()
   | v -> fail "warm cache=%s" (Option.value ~default:"<absent>" v));
  if cold_rid = warm_rid then fail "cold and warm share a request id";

  (* metrics: Prometheus text 0.0.4 carrying the request-latency
     summary, sampled cache-occupancy gauges, pool gauges and the
     ns->ms-converted pool counters. *)
  let m = ask (Tool.Json.Obj [ ("cmd", Tool.Json.Str "metrics") ]) in
  expect_ok m;
  (match Tool.Json.mem_str "content_type" m with
   | Some "text/plain; version=0.0.4" -> ()
   | v ->
     fail "metrics content_type %s" (Option.value ~default:"<absent>" v));
  let exposition =
    match Tool.Json.mem_str "metrics" m with
    | Some t -> t
    | None -> fail "metrics response lacks the exposition text"
  in
  let samples =
    match Obs.Prometheus.parse exposition with
    | Ok s -> s
    | Error e -> fail "metrics text is not valid exposition: %s" e
  in
  let must ?labels name =
    match Obs.Prometheus.find ?labels name samples with
    | Some v -> v
    | None -> fail "metrics lack %s" name
  in
  if must "acstab_server_requests_total" < float_of_int !sent then
    fail "server_requests_total below the requests we sent";
  List.iter
    (fun q ->
      ignore
        (must ~labels:[ ("quantile", q) ] "acstab_server_request_ms"))
    [ "0.5"; "0.9"; "0.99" ];
  if must "acstab_server_request_ms_count" < 1. then
    fail "request_ms summary has no observations";
  List.iter
    (fun g -> ignore (must g))
    [ "acstab_cache_result_entries"; "acstab_cache_result_capacity";
      "acstab_cache_op_entries"; "acstab_pool_busy_workers";
      "acstab_pool_queue_depth"; "acstab_server_inflight";
      "acstab_pool_lock_wait_ms_total" ];
  if must "acstab_cache_result_entries" < 1. then
    fail "result cache shows no entries after an analyze";

  (* trace: start/stop capture of the live daemon, no restart. *)
  let status = ask (Tool.Json.Obj [ ("cmd", Tool.Json.Str "trace") ]) in
  expect_ok status;
  (match Tool.Json.mem_bool "capturing" status with
   | Some false -> ()
   | _ -> fail "capture running before start");
  let start =
    ask
      (Tool.Json.Obj
         [ ("cmd", Tool.Json.Str "trace");
           ("action", Tool.Json.Str "start") ])
  in
  expect_ok start;
  for _ = 1 to 3 do
    expect_ok (ask (Tool.Json.Obj [ ("cmd", Tool.Json.Str "ping") ]))
  done;
  expect_ok (ask analyze_req);
  let stop =
    ask
      (Tool.Json.Obj
         [ ("cmd", Tool.Json.Str "trace");
           ("action", Tool.Json.Str "stop") ])
  in
  expect_ok stop;
  (match Option.bind (Tool.Json.member "spans" stop) Tool.Json.to_float with
   | Some n when n >= 1. -> ()
   | _ -> fail "trace capture recorded no spans");
  let trace_text =
    match Tool.Json.mem_str "trace" stop with
    | Some t -> t
    | None -> fail "trace stop carries no trace"
  in
  if String.length trace_text < 16
     || String.sub trace_text 0 16 <> "{\"traceEvents\":["
  then fail "trace is not Chrome trace-event JSON";
  (match Tool.Json.of_string trace_text with
   | Ok _ -> ()
   | Error e -> fail "trace does not parse as JSON: %s" e);
  if not (contains trace_text "\"name\":\"server.request\"") then
    fail "trace lacks the server.request spans";
  let stop2 =
    ask
      (Tool.Json.Obj
         [ ("cmd", Tool.Json.Str "trace");
           ("action", Tool.Json.Str "stop") ])
  in
  (match
     Option.bind (Tool.Json.member "error" stop2) (Tool.Json.mem_int "code")
   with
   | Some 2 -> ()
   | _ -> fail "stop without a capture must be a code-2 error");

  (* Malformed NDJSON on a raw connection: a half-written line gets a
     structured code-2 error that salvages the client's id, and the
     same connection keeps serving. *)
  let raw_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect raw_fd (Unix.ADDR_UNIX sock);
  let raw_ic = Unix.in_channel_of_descr raw_fd in
  let raw_send s =
    incr sent;
    ignore (Unix.write_substring raw_fd s 0 (String.length s))
  in
  let raw_recv () =
    match Tool.Json.of_string (input_line raw_ic) with
    | Ok v -> v
    | Error e -> fail "raw response not JSON: %s" e
  in
  raw_send "{\"cmd\":\"ping\",\"id\":\"x1\"\n";
  let broken = raw_recv () in
  (match Tool.Json.mem_bool "ok" broken with
   | Some false -> ()
   | _ -> fail "malformed line accepted: %s" (Tool.Json.to_string broken));
  (match
     Option.bind (Tool.Json.member "error" broken) (Tool.Json.mem_int "code")
   with
   | Some 2 -> ()
   | _ -> fail "malformed line error is not code 2");
  (match Tool.Json.mem_str "id" broken with
   | Some "x1" -> ()
   | v ->
     fail "salvaged id %s, wanted x1" (Option.value ~default:"<absent>" v));
  let _ = request_id broken in
  raw_send "{\"cmd\":\"ping\",\"id\":\"x2\"}\n";
  let after = raw_recv () in
  expect_ok after;
  (match Tool.Json.mem_str "id" after with
   | Some "x2" -> ()
   | _ -> fail "connection did not survive the malformed line");
  Unix.close raw_fd;

  (* acstab top's sampler against the live daemon. *)
  sent := !sent + 2 (* Top.sample issues stats + metrics *);
  (match Tool.Top.sample c with
   | Error e -> fail "top sample failed: %s" e
   | Ok s ->
     if s.Tool.Top.requests < 1 then fail "top sees no requests";
     if s.Tool.Top.latency.Tool.Top.count < 1 then
       fail "top sees no latency observations";
     if s.Tool.Top.cache = [] then fail "top sees no cache families";
     let j = Tool.Json.to_string (Tool.Top.to_json s) in
     if not (contains j "\"schema\":\"acstab-top/1\"") then
       fail "top json lacks its schema";
     if not (contains j "\"latency_ms\"") then
       fail "top json lacks latency_ms";
     let txt = Tool.Top.render ~socket:sock s in
     if not (contains txt "latency ms") then
       fail "top render lacks the latency row");

  (* Shutdown, then audit the event log. *)
  let bye = ask (Tool.Json.Obj [ ("cmd", Tool.Json.Str "shutdown") ]) in
  expect_ok bye;
  Tool.Server.Client.close c;
  Thread.join server;
  if Sys.file_exists sock then fail "socket file survived shutdown";

  let ic = open_in log_path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  let lines = List.rev !lines in
  if lines = [] then fail "event log is empty";
  let parsed =
    List.map
      (fun line ->
        match Tool.Json.of_string line with
        | Ok v -> v
        | Error e -> fail "event log line is not JSON (%s): %s" e line)
      lines
  in
  List.iter
    (fun v ->
      List.iter
        (fun k ->
          if Tool.Json.member k v = None then
            fail "event log line lacks %S: %s" k (Tool.Json.to_string v))
        [ "ts_ns"; "seq"; "level"; "event" ])
    parsed;
  (match parsed with
   | first :: _ ->
     if Tool.Json.mem_str "event" first <> Some "log.open"
        || Tool.Json.mem_str "schema" first <> Some "acstab-log/1"
     then fail "event log does not open by announcing acstab-log/1"
   | [] -> assert false);
  let named n =
    List.filter (fun v -> Tool.Json.mem_str "event" v = Some n) parsed
  in
  if List.length (named "server.start") <> 1 then
    fail "event log lacks the server.start line";
  if List.length (named "server.stop") <> 1 then
    fail "event log lacks the server.stop line";
  let reqs = named "server.request" in
  if List.length reqs <> !sent then
    fail "event log has %d server.request lines for %d requests"
      (List.length reqs) !sent;
  let log_rids =
    List.map
      (fun v ->
        match Tool.Json.mem_str "request_id" v with
        | Some rid -> rid
        | None -> fail "server.request line lacks request_id")
      reqs
  in
  if List.length (List.sort_uniq compare log_rids) <> List.length log_rids
  then fail "event-log request ids are not unique";
  List.iter
    (fun v ->
      if Option.bind (Tool.Json.member "ms" v) Tool.Json.to_float = None
      then fail "server.request line lacks ms";
      if Tool.Json.mem_bool "ok" v = None then
        fail "server.request line lacks ok")
    reqs;
  let verdict_of rid =
    match
      List.find_opt
        (fun v -> Tool.Json.mem_str "request_id" v = Some rid)
        reqs
    with
    | Some v -> Tool.Json.mem_str "cache" v
    | None -> fail "no event-log line for request %s" rid
  in
  if verdict_of cold_rid <> Some "miss" then
    fail "cold analyze not logged as a miss";
  if verdict_of warm_rid <> Some "hit" then
    fail "warm analyze not logged as a hit";
  (* --slow-ms 0 dumps every request's span tree. *)
  (match named "server.slow_request" with
   | [] -> fail "slow_ms=0 produced no server.slow_request lines"
   | slow ->
     if
       not
         (List.exists
            (fun v ->
              match Tool.Json.mem_str "spans" v with
              | Some s -> contains s "server.request="
              | None -> false)
            slow)
     then fail "slow_request lines carry no span tree");

  cleanup ();
  print_endline
    "serve-obs: OK (request ids unique across 8 concurrent + serial \
     requests, cold miss / warm hit logged with latency, Prometheus \
     metrics over the socket with request_ms quantiles + cache/pool \
     gauges, live trace start/stop yields parseable Chrome trace, \
     malformed line answered with salvaged id on a surviving \
     connection, acstab top sample/json/render, NDJSON log audited \
     line-per-request)"
