(* The stability library — the paper's contribution — against circuits with
   exactly known complex poles and zeros. *)

let check_close ?(tol = 1e-9) msg expected actual =
  let scale = Float.max 1. (Float.abs expected) in
  Alcotest.(check bool)
    (Printf.sprintf "%s: expected %.9g, got %.9g" msg expected actual)
    true
    (Float.abs (expected -. actual) <= tol *. scale)

(* ---------- probing ---------- *)

let test_probe_paths_agree () =
  (* Shared-factorisation probing must equal the netlist-level reference
     (attach an Isource, run plain AC) to solver precision. *)
  let circ = Workloads.Filters.parallel_rlc () in
  let sweep = Numerics.Sweep.decade 1e5 1e8 20 in
  let probe = Stability.Probe.prepare circ in
  let fast = Stability.Probe.response probe ~sweep "n" in
  let slow = Stability.Probe.response_via_netlist circ ~sweep "n" in
  Array.iteri
    (fun k hf ->
      Alcotest.(check bool)
        (Printf.sprintf "agree at point %d" k)
        true
        (Numerics.Cx.close ~tol:1e-9 hf
           slow.Numerics.Waveform.Freq.h.(k)))
    fast.Numerics.Waveform.Freq.h

let test_probe_many_matches_single () =
  let circ = Workloads.Opamp_2mhz.buffer () in
  let sweep = Numerics.Sweep.decade 1e5 1e8 5 in
  let probe = Stability.Probe.prepare circ in
  let many = Stability.Probe.response_many probe ~sweep [ "out"; "o1" ] in
  let single = Stability.Probe.response probe ~sweep "o1" in
  let from_many = List.assoc "o1" many in
  Array.iteri
    (fun k h ->
      Alcotest.(check bool) "identical" true
        (Numerics.Cx.close ~tol:1e-12 h
           from_many.Numerics.Waveform.Freq.h.(k)))
    single.Numerics.Waveform.Freq.h

let test_probe_rejects_ground () =
  let circ = Workloads.Filters.parallel_rlc () in
  let probe = Stability.Probe.prepare circ in
  Alcotest.(check bool) "ground rejected" true
    (try
       ignore
         (Stability.Probe.response probe
            ~sweep:(Numerics.Sweep.List [| 1e6 |])
            "0");
       false
     with Invalid_argument _ -> true)

let test_probe_backends_agree () =
  (* Dense and sparse factorisations of the same system must agree to
     solver precision; force both on a mid-size circuit. *)
  let circ = Workloads.Opamp_2mhz.buffer () in
  let sweep = Numerics.Sweep.decade 1e4 1e8 10 in
  let probe = Stability.Probe.prepare circ in
  let nodes = [ "out"; "o1"; "vcasc" ] in
  let dense = Stability.Probe.response_many ~backend:`Dense probe ~sweep nodes in
  let sparse = Stability.Probe.response_many ~backend:`Sparse probe ~sweep nodes in
  List.iter2
    (fun (n1, w1) (n2, w2) ->
      Alcotest.(check string) "node order" n1 n2;
      Array.iteri
        (fun k h ->
          Alcotest.(check bool)
            (Printf.sprintf "%s agrees at point %d" n1 k)
            true
            (Numerics.Cx.close ~tol:1e-9 h
               w2.Numerics.Waveform.Freq.h.(k)))
        w1.Numerics.Waveform.Freq.h)
    dense sparse

let test_probe_parallel_agrees () =
  let circ = Workloads.Opamp_2mhz.buffer () in
  let sweep = Numerics.Sweep.decade 1e4 1e8 15 in
  let probe = Stability.Probe.prepare circ in
  let nodes = [ "out"; "o1" ] in
  let seq = Stability.Probe.response_many probe ~sweep nodes in
  let par = Stability.Probe.response_many ~parallel:`Par probe ~sweep nodes in
  List.iter2
    (fun (_, w1) (_, w2) ->
      Array.iteri
        (fun k h ->
          Alcotest.(check bool) "parallel equals sequential" true
            (Numerics.Cx.close ~tol:1e-14 h
               w2.Numerics.Waveform.Freq.h.(k)))
        w1.Numerics.Waveform.Freq.h)
    seq par

(* ---------- single-node on known circuits ---------- *)

let test_rlc_tank_estimates () =
  let r = 100. and l = 1e-6 and c = 1e-9 in
  let fn, zeta = Workloads.Filters.parallel_rlc_theory ~r ~l ~c () in
  let circ = Workloads.Filters.parallel_rlc ~r ~l ~c () in
  let res = Stability.Analysis.single_node circ "n" in
  match res.Stability.Analysis.dominant with
  | Some d ->
    check_close ~tol:1e-3 "natural frequency" fn d.Stability.Peaks.freq;
    check_close ~tol:1e-2 "performance index"
      (Control.Second_order.performance_index zeta)
      d.Stability.Peaks.value;
    (match d.Stability.Peaks.zeta with
     | Some z -> check_close ~tol:1e-2 "zeta" zeta z
     | None -> Alcotest.fail "no zeta estimate")
  | None -> Alcotest.fail "tank pole not found"

let prop_rlc_random =
  QCheck.Test.make ~name:"random RLC tanks measure their analytic zeta"
    ~count:40
    QCheck.(pair (float_range 30. 3000.) (float_range 0.2 5.))
    (fun (r, l_scale) ->
      let l = l_scale *. 1e-6 and c = 1e-9 in
      let fn, zeta = Workloads.Filters.parallel_rlc_theory ~r ~l ~c () in
      QCheck.assume (zeta > 0.03 && zeta < 0.95);
      QCheck.assume (fn > 5e3 && fn < 5e8);
      let circ = Workloads.Filters.parallel_rlc ~r ~l ~c () in
      let res = Stability.Analysis.single_node circ "n" in
      match res.Stability.Analysis.dominant with
      | Some d ->
        let ok_freq = Float.abs (d.Stability.Peaks.freq /. fn -. 1.) < 0.02 in
        let ok_peak =
          Float.abs
            (d.Stability.Peaks.value
             -. Control.Second_order.performance_index zeta)
          < 0.05 *. Float.abs (Control.Second_order.performance_index zeta)
          +. 0.1
        in
        ok_freq && ok_peak
      | None -> false)

let test_complex_zero_positive_peak () =
  let rser = 20. and l = 100e-6 and c = 1e-9 in
  let fz, zeta_z = Workloads.Filters.notch_zero_theory ~rser ~l ~c () in
  let circ = Workloads.Filters.notch_with_zero ~rser ~l ~c () in
  (* Probe the node where the notch appears. *)
  let res = Stability.Analysis.single_node circ "out" in
  let zeros =
    List.filter
      (fun (p : Stability.Peaks.peak) -> p.kind = Stability.Peaks.Complex_zero)
      res.Stability.Analysis.peaks
  in
  match zeros with
  | z :: _ ->
    check_close ~tol:2e-2 "zero frequency" fz z.Stability.Peaks.freq;
    (* A complex-zero pair mirrors eq 1.4: peak ~ +1/zeta_z^2. *)
    check_close ~tol:0.15 "zero peak ~ +1/zeta^2"
      (1. /. (zeta_z *. zeta_z))
      z.Stability.Peaks.value
  | [] -> Alcotest.fail "complex zero not reported"

let test_sallen_key_q () =
  let q = 2.5 in
  let fn, zeta = Workloads.Filters.sallen_key_theory ~q () in
  let circ = Workloads.Filters.sallen_key_lowpass ~q () in
  (* The amplifier output is pinned by the ideal VCVS, so it cannot be
     current-probed; the tool must say so clearly... *)
  Alcotest.(check bool) "pinned net rejected with a clear error" true
    (try ignore (Stability.Analysis.single_node circ "out"); false
     with Failure m ->
       let contains s sub =
         let n = String.length s and k = String.length sub in
         let rec go i = i + k <= n && (String.sub s i k = sub || go (i + 1)) in
         go 0
       in
       contains m "no finite AC response");
  (* ...and the filter's state node carries the complex pair. *)
  let res = Stability.Analysis.single_node circ "x2" in
  match res.Stability.Analysis.dominant with
  | Some d ->
    check_close ~tol:2e-2 "fn" fn d.Stability.Peaks.freq;
    (match d.Stability.Peaks.zeta with
     | Some z -> check_close ~tol:3e-2 "zeta = 1/(2q)" zeta z
     | None -> Alcotest.fail "no zeta")
  | None -> Alcotest.fail "sallen-key pole not found"

let test_shoulders_suppressed () =
  (* A single sharp pole pair must report exactly one significant peak:
     the side-lobes of the dip are not complex zeros. *)
  let circ = Workloads.Filters.parallel_rlc ~r:300. () in
  let res = Stability.Analysis.single_node circ "n" in
  let significant =
    List.filter
      (fun (p : Stability.Peaks.peak) -> Float.abs p.Stability.Peaks.value > 1.)
      res.Stability.Analysis.peaks
  in
  Alcotest.(check int) "one significant peak" 1 (List.length significant)

let test_end_of_range_notice () =
  (* Sweep that stops below the tank resonance: the stability function is
     still descending at the edge -> end-of-range notice. *)
  let circ = Workloads.Filters.parallel_rlc () in
  (* fn ~ 5 MHz; sweep to 4.8 MHz. *)
  let options =
    { Stability.Analysis.default_options with
      sweep = Numerics.Sweep.decade 1e4 4.8e6 60;
      refine = false }
  in
  let res = Stability.Analysis.single_node ~options circ "n" in
  Alcotest.(check bool) "end-of-range flagged" true
    (List.exists
       (fun (p : Stability.Peaks.peak) ->
         List.mem Stability.Peaks.End_of_range p.Stability.Peaks.notices)
       res.Stability.Analysis.peaks)

let test_refinement_improves_peak () =
  (* On a very sharp peak a coarse grid underestimates the depth; the zoom
     refinement must recover it. *)
  let r = 1000. in
  let _, zeta = Workloads.Filters.parallel_rlc_theory ~r () in
  let circ = Workloads.Filters.parallel_rlc ~r () in
  let coarse_opts =
    { Stability.Analysis.default_options with
      sweep = Numerics.Sweep.decade 1e3 1e9 10;
      refine = false }
  in
  let refined_opts = { coarse_opts with refine = true } in
  let expected = Control.Second_order.performance_index zeta in
  let peak_of opts =
    match
      (Stability.Analysis.single_node ~options:opts circ "n")
        .Stability.Analysis.dominant
    with
    | Some d -> d.Stability.Peaks.value
    | None -> Alcotest.fail "no peak"
  in
  let coarse = peak_of coarse_opts in
  let refined = peak_of refined_opts in
  Alcotest.(check bool)
    (Printf.sprintf "coarse %.0f misses the true %.0f" coarse expected)
    true
    (Float.abs (coarse -. expected) > 0.2 *. Float.abs expected);
  check_close ~tol:5e-2 "refined depth" expected refined

(* ---------- all-nodes, loops, reports ---------- *)

let test_all_nodes_rlc_cluster () =
  (* Two independent tanks -> two loops at their natural frequencies. *)
  let open Circuit.Netlist in
  let c = empty ~title:"two tanks" () in
  let c = resistor c "R1" "a" "0" 100. in
  let c = inductor c "L1" "a" "0" 1e-6 in
  let c = capacitor c "C1" "a" "0" 1e-9 in
  let c = resistor c "R2" "b" "0" 100. in
  let c = inductor c "L2" "b" "0" 10e-6 in
  let c = capacitor c "C2" "b" "0" 10e-9 in
  (* Weak coupling so both nets exist in one connected circuit. *)
  let c = resistor c "RC" "a" "b" 1e9 in
  let results = Stability.Analysis.all_nodes c in
  let loops = Stability.Loops.cluster results in
  Alcotest.(check int) "two loops" 2 (List.length loops);
  let fn1, _ = Workloads.Filters.parallel_rlc_theory () in
  let fn2, _ =
    Workloads.Filters.parallel_rlc_theory ~l:10e-6 ~c:10e-9 ()
  in
  (match loops with
   | [ l1; l2 ] ->
     check_close ~tol:2e-2 "slow tank" (Float.min fn1 fn2)
       l1.Stability.Loops.natural_freq;
     check_close ~tol:2e-2 "fast tank" (Float.max fn1 fn2)
       l2.Stability.Loops.natural_freq
   | _ -> Alcotest.fail "unexpected loop structure")

let test_report_format () =
  let circ = Workloads.Filters.parallel_rlc () in
  let results = Stability.Analysis.all_nodes circ in
  let report = Stability.Report.all_nodes_string results in
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "has header" true (contains report "Stability Peak");
  Alcotest.(check bool) "mentions the loop" true (contains report "Loop at");
  Alcotest.(check bool) "mentions the node" true (contains report "n");
  let single =
    Stability.Report.single_node_string (List.hd results)
  in
  Alcotest.(check bool) "single-node mentions dominant" true
    (contains single "dominant")

(* ---------- degraded nodes (clamped response samples) ---------- *)

let second_order_response ~zeta ~fn freqs =
  Array.map
    (fun f ->
      let x = f /. fn in
      let re = 1. -. (x *. x) and im = 2. *. zeta *. x in
      Complex.div Complex.one { Complex.re; im })
    freqs

let test_plot_degraded_completes () =
  (* Regression: a response with an underflowed-to-zero sample (deep notch)
     or a non-finite solve used to raise Invalid_argument out of
     Stability_plot and kill the whole run. It must now complete, flagged. *)
  let freqs = Numerics.Sweep.points (Numerics.Sweep.decade 1e4 1e8 60) in
  let h = second_order_response ~zeta:0.2 ~fn:1e6 freqs in
  h.(100) <- Complex.zero;
  h.(200) <- { Complex.re = Float.nan; im = 0. };
  let w = Numerics.Waveform.Freq.make freqs h in
  let plot = Stability.Stability_plot.of_response w in
  Alcotest.(check int) "two samples clamped" 2
    plot.Stability.Stability_plot.clamped;
  Alcotest.(check bool) "flagged degraded" true
    (Stability.Stability_plot.degraded plot);
  Alcotest.(check bool) "P finite everywhere" true
    (Array.for_all Float.is_finite plot.Stability.Stability_plot.p);
  (* The floor is 14 decades down, so the clamped notch dominates the
     plot: the global minimum is the floor artefact at the clamped sample,
     not the physical resonance — exactly why reports must flag these
     nodes instead of trusting their peaks. *)
  let fpk, vpk = Stability.Stability_plot.global_minimum plot in
  check_close ~tol:0.2 "global minimum sits at the clamp artefact"
    freqs.(100) fpk;
  Alcotest.(check bool) "artefact dwarfs any physical peak" true
    (vpk < -1000.);
  (* A clean response is not flagged. *)
  let clean =
    Stability.Stability_plot.of_response
      (Numerics.Waveform.Freq.make freqs
         (second_order_response ~zeta:0.2 ~fn:1e6 freqs))
  in
  Alcotest.(check bool) "clean plot not degraded" false
    (Stability.Stability_plot.degraded clean)

let test_plot_value_at_range () =
  let freqs = Numerics.Sweep.points (Numerics.Sweep.decade 1e4 1e8 30) in
  let w =
    Numerics.Waveform.Freq.make freqs
      (second_order_response ~zeta:0.3 ~fn:1e6 freqs)
  in
  let plot = Stability.Stability_plot.of_response w in
  (match Stability.Stability_plot.value_at_opt plot 1e6 with
   | Some v ->
     check_close "opt agrees with raising form"
       (Stability.Stability_plot.value_at plot 1e6) v
   | None -> Alcotest.fail "in-range query answered None");
  Alcotest.(check bool) "below sweep is None" true
    (Stability.Stability_plot.value_at_opt plot 1e3 = None);
  Alcotest.(check bool) "above sweep is None" true
    (Stability.Stability_plot.value_at_opt plot 1e9 = None);
  Alcotest.(check bool) "raising form raises out of range" true
    (try
       ignore (Stability.Stability_plot.value_at plot 1e3);
       false
     with Invalid_argument _ -> true)

let test_report_flags_degraded () =
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  let circ = Workloads.Filters.parallel_rlc () in
  let results = Stability.Analysis.all_nodes circ in
  let clean_report = Stability.Report.all_nodes_string results in
  Alcotest.(check bool) "clean run has no degraded section" false
    (contains clean_report "Degraded");
  (* Force one node's result into the degraded state and check both report
     flavours surface it. *)
  let degraded_results =
    List.map
      (fun r -> { r with Stability.Analysis.degraded = 3 })
      results
  in
  let report = Stability.Report.all_nodes_string degraded_results in
  Alcotest.(check bool) "all-nodes report flags degraded nodes" true
    (contains report "Degraded");
  Alcotest.(check bool) "clamp count shown" true
    (contains report "3 sample(s) clamped");
  let single =
    Stability.Report.single_node_string (List.hd degraded_results)
  in
  Alcotest.(check bool) "single-node report flags degradation" true
    (contains single "DEGRADED")

let test_annotation () =
  let circ = Workloads.Filters.parallel_rlc () in
  let results = Stability.Analysis.all_nodes circ in
  let text = Stability.Annotate.netlist_string circ results in
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "net annotated" true (contains text "n: peak");
  Alcotest.(check bool) "devices listed" true (contains text "R1");
  Alcotest.(check bool) "summary block" true (contains text "per-net summary")

(* ---------- limitations (documented) ---------- *)

let test_rhp_poles_look_stable_in_the_plot () =
  (* A known limitation of the method: the stability plot reads the peak
     magnitude, which depends on |Re(s)| but not its sign — a loop with
     right-half-plane poles produces the same deep peak as a stable loop
     with mirrored poles. The exact pole analysis disambiguates. *)
  let open Circuit.Netlist in
  let c = empty ~title:"negative-resistance tank" () in
  let c = inductor c "L1" "n" "0" 1e-6 in
  let c = capacitor c "C1" "n" "0" 1e-9 in
  let c = resistor c "R1" "n" "0" 100. in       (* zeta_R = +0.158 *)
  let c = vccs c "GNEG" "n" "0" "n" "0" (-15e-3) in (* tips net damping < 0 *)
  let poles = Engine.Poles.of_circuit c in
  Alcotest.(check bool) "eigenvalues see the instability" false
    (Engine.Poles.is_stable poles);
  let res = Stability.Analysis.single_node c "n" in
  match res.Stability.Analysis.dominant with
  | Some d ->
    (* The plot still reports a deep negative peak with a positive zeta
       estimate — it flags the loop as critical but cannot give the sign. *)
    Alcotest.(check bool) "plot flags the loop" true
      (d.Stability.Peaks.value < -5.);
    Alcotest.(check bool) "zeta estimate is unsigned" true
      (match d.Stability.Peaks.zeta with Some z -> z > 0. | None -> false)
  | None -> Alcotest.fail "plot missed the resonance entirely"

(* ---------- physical invariants ---------- *)

let test_reciprocity () =
  (* RLC networks are reciprocal: Z(k <- j) = Z(j <- k). Measured through
     the same factorisation path the probing uses. *)
  let open Circuit.Netlist in
  let c = empty ~title:"ladder" () in
  let c = resistor c "R1" "a" "b" 1e3 in
  let c = capacitor c "C1" "b" "0" 1e-9 in
  let c = inductor c "L1" "b" "c" 10e-6 in
  let c = resistor c "R2" "c" "0" 2e3 in
  let c = capacitor c "C2" "a" "0" 0.5e-9 in
  let c = resistor c "R3" "a" "0" 10e3 in
  let mna = Engine.Mna.compile c in
  let op = Engine.Dcop.solve mna in
  let ia = Engine.Mna.node_index mna "a" in
  let ic = Engine.Mna.node_index mna "c" in
  List.iter
    (fun f ->
      let lu =
        Engine.Ac.factor_at ~op ~omega:(2. *. Float.pi *. f) mna
      in
      let solve k =
        let b = Array.make mna.Engine.Mna.size Numerics.Cx.zero in
        b.(k) <- Numerics.Cx.one;
        Numerics.Cmat.lu_solve lu b
      in
      let z_ca = (solve ia).(ic) in
      let z_ac = (solve ic).(ia) in
      Alcotest.(check bool)
        (Printf.sprintf "Z(c<-a) = Z(a<-c) at %g Hz" f)
        true
        (Numerics.Cx.close ~tol:1e-12 z_ca z_ac))
    [ 1e3; 1e5; 1e7 ]

let test_transient_ring_frequency_matches_plot () =
  (* The buffer's transient ring period must match the natural frequency
     the AC-domain stability plot reports (time/frequency consistency). *)
  let circ = Workloads.Opamp_2mhz.buffer () in
  let d =
    (Stability.Analysis.single_node circ "out").Stability.Analysis.dominant
    |> Option.get
  in
  let fn = d.Stability.Peaks.freq in
  let zeta = Option.get d.Stability.Peaks.zeta in
  let fd = fn *. sqrt (1. -. (zeta *. zeta)) in
  let tr = Engine.Transient.run ~tstop:6e-6 ~tstep:2e-9 circ in
  let w = Engine.Transient.v tr "out" in
  (* Ring frequency from the crossings of the settled value after the
     step fires at 1 us. *)
  let crossings =
    Numerics.Interp.crossings ~x:w.Numerics.Waveform.Real.x
      ~y:w.Numerics.Waveform.Real.y 2.55
    |> List.filter (fun t -> t > 1.2e-6 && t < 4e-6)
  in
  Alcotest.(check bool) "enough ring cycles" true
    (List.length crossings >= 6);
  let rec spans = function
    | a :: (b :: _ as rest) -> (b -. a) :: spans rest
    | _ -> []
  in
  let half_periods = spans crossings in
  let mean =
    List.fold_left ( +. ) 0. half_periods
    /. float_of_int (List.length half_periods)
  in
  let f_ring = 1. /. (2. *. mean) in
  check_close ~tol:0.08 "ring frequency = damped natural frequency" fd
    f_ring

(* ---------- cross-validation against exact TF mathematics ---------- *)

let test_cross_validation_with_tf () =
  (* Closed-loop TF of a two-pole unity-feedback loop; the circuit-level
     stability plot at the loop output must find the TF's dominant pole. *)
  let gain_a = 300. and p1 = 1e4 and p2 = 3e6 in
  let l =
    Control.Tf.of_real_coeffs ~num:[| gain_a |]
      ~den:
        [| 1.;
           (1. /. (2. *. Float.pi *. p1)) +. (1. /. (2. *. Float.pi *. p2));
           1. /. (4. *. Float.pi *. Float.pi *. p1 *. p2) |]
  in
  let cl = Control.Tf.feedback l in
  let wn_tf, zeta_tf =
    match Control.Tf.dominant_complex_pole cl with
    | Some x -> x
    | None -> Alcotest.fail "TF has no complex pole"
  in
  (* Same loop as a circuit. *)
  let open Circuit.Netlist in
  let c = empty ~title:"tf cross-check" () in
  let c = vsource c "VIN" "in" "0" (ac_source 0.) in
  let c = vcvs c "EAMP" "x1" "0" "in" "fb" gain_a in
  let c = resistor c "R1" "x1" "x2" 1e3 in
  let c = capacitor c "C1" "x2" "0" (1. /. (2. *. Float.pi *. p1 *. 1e3)) in
  let c = vcvs c "EBUF" "x2b" "0" "x2" "0" 1. in
  let c = resistor c "R2" "x2b" "fb" 1e3 in
  let c = capacitor c "C2" "fb" "0" (1. /. (2. *. Float.pi *. p2 *. 1e3)) in
  let res = Stability.Analysis.single_node c "fb" in
  match res.Stability.Analysis.dominant with
  | Some d ->
    check_close ~tol:1e-2 "fn matches TF pole"
      (wn_tf /. (2. *. Float.pi))
      d.Stability.Peaks.freq;
    (match d.Stability.Peaks.zeta with
     | Some z -> check_close ~tol:2e-2 "zeta matches TF pole" zeta_tf z
     | None -> Alcotest.fail "no zeta estimate")
  | None -> Alcotest.fail "dominant pole not found"

(* ---------- AC-plan backends ---------- *)

(* The compiled-plan solve path is a pure performance refactor: forcing
   each backend over the same shipped deck must produce the same node
   set, the same peak structure, and numerically equivalent estimates. *)
let test_all_nodes_backends_agree () =
  let circ = Circuit.Parser.parse_file "../circuits/two_pole_loop.sp" in
  let run backend =
    let options =
      { Stability.Analysis.default_options with
        sweep = Numerics.Sweep.decade 1e2 1e8 20;
        backend }
    in
    Stability.Analysis.all_nodes ~options circ
  in
  let dense = run `Dense in
  let sparse = run `Sparse in
  let plan = run `Plan in
  Alcotest.(check bool) "some nets analysed" true (List.length dense > 0);
  let compare_results label a b =
    Alcotest.(check (list string)) (label ^ ": same nets")
      (List.map (fun r -> r.Stability.Analysis.node) a)
      (List.map (fun r -> r.Stability.Analysis.node) b);
    List.iter2
      (fun ra rb ->
        let pa = ra.Stability.Analysis.peaks
        and pb = rb.Stability.Analysis.peaks in
        Alcotest.(check int)
          (Printf.sprintf "%s: %s peak count" label
             ra.Stability.Analysis.node)
          (List.length pa) (List.length pb);
        List.iter2
          (fun (p : Stability.Peaks.peak) (q : Stability.Peaks.peak) ->
            Alcotest.(check bool)
              (Printf.sprintf "%s: %s same peak kind" label
                 ra.Stability.Analysis.node)
              true (p.kind = q.kind);
            check_close ~tol:1e-6
              (Printf.sprintf "%s: %s natural frequency" label
                 ra.Stability.Analysis.node)
              p.freq q.freq;
            check_close ~tol:1e-6
              (Printf.sprintf "%s: %s performance index" label
                 ra.Stability.Analysis.node)
              p.value q.value)
          pa pb)
      a b
  in
  compare_results "dense vs sparse" dense sparse;
  compare_results "dense vs plan" dense plan

(* The plan's whole point: one symbolic analysis per sweep and one
   numeric refactorisation per frequency point, however many nets are
   probed. Asserted through the factorisation counters. *)
let test_plan_factorisation_counts () =
  let circ = Workloads.Opamp_2mhz.buffer () in
  let sweep = Numerics.Sweep.decade 1e4 1e8 10 in
  let points = Array.length (Numerics.Sweep.points sweep) in
  let probe = Stability.Probe.prepare circ in
  let nodes = [ "out"; "o1"; "vcasc" ] in
  let before = Engine.Ac_plan.totals () in
  ignore (Stability.Probe.response_many ~backend:`Plan probe ~sweep nodes);
  let after = Engine.Ac_plan.totals () in
  Alcotest.(check int) "no pivot-order fallbacks" 0
    (after.Engine.Ac_plan.fallback - before.Engine.Ac_plan.fallback);
  Alcotest.(check int) "one symbolic analysis per sweep" 1
    (after.Engine.Ac_plan.symbolic - before.Engine.Ac_plan.symbolic);
  Alcotest.(check int) "one numeric refactorisation per point" points
    (after.Engine.Ac_plan.numeric - before.Engine.Ac_plan.numeric);
  Alcotest.(check int) "one RHS per probed net per point"
    (points * List.length nodes)
    (after.Engine.Ac_plan.rhs - before.Engine.Ac_plan.rhs)

(* ---------- compiled kernels ---------- *)

(* The kernel's contract is stronger than numerical agreement: it
   replays the plan backend's exact float operation sequence, so every
   comparison below is on the raw IEEE bits, not a tolerance. *)

let complex_bits z =
  (Int64.bits_of_float z.Complex.re, Int64.bits_of_float z.Complex.im)

let check_waves_bit_identical label a b =
  List.iter2
    (fun (n1, w1) (n2, w2) ->
      Alcotest.(check string) (label ^ ": node order") n1 n2;
      Array.iteri
        (fun k h ->
          if complex_bits h
             <> complex_bits w2.Numerics.Waveform.Freq.h.(k)
          then
            Alcotest.failf "%s: net %s differs bit-wise at point %d" label
              n1 k)
        w1.Numerics.Waveform.Freq.h)
    a b

(* Every shipped deck, every net, both batch shapes: the multi-RHS
   sweep (m > 1 reciprocal back-substitution) and the single-net sweep
   (m = 1 division form — a genuinely different float sequence the
   kernel must reproduce too). *)
let test_kernel_bits_shipped_decks () =
  List.iter
    (fun file ->
      let circ = Circuit.Parser.parse_file ("../circuits/" ^ file) in
      let probe = Stability.Probe.prepare circ in
      let sweep = Numerics.Sweep.decade 1e2 1e8 8 in
      let nodes = Circuit.Netlist.node_names circ in
      let run backend nodes =
        Stability.Probe.response_many ~backend probe ~sweep nodes
      in
      check_waves_bit_identical (file ^ " all nets")
        (run `Plan nodes) (run `Kernel nodes);
      let first = [ List.hd nodes ] in
      check_waves_bit_identical (file ^ " single net")
        (run `Plan first) (run `Kernel first))
    [ "two_pole_loop.sp"; "sallen_key.sp"; "double_tuned.sp";
      "emitter_follower.sp"; "wilson_mirror.sp" ]

(* Property: over the synthetic generator family (mesh / tree / amp
   array, varying shape), [Kernel.solve_many] is bit-identical to
   [Ac_plan.solve_many] on the same plan, across frequencies and for
   both batch shapes. *)
let prop_kernel_bits_synth =
  QCheck.Test.make ~name:"synth circuits: kernel = plan, bit for bit"
    ~count:9
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let circ =
        match seed mod 3 with
        | 0 ->
          Workloads.Synth.rc_mesh ~rows:(2 + (seed mod 3))
            ~cols:(2 + (seed / 3 mod 3)) ()
        | 1 ->
          Workloads.Synth.rc_tree ~depth:2 ~fanout:(2 + (seed mod 2)) ()
        | _ -> Workloads.Synth.amp_array ~stages:(1 + (seed mod 3)) ()
      in
      let mna = Engine.Mna.compile circ in
      let op = Engine.Dcop.solve mna in
      let plan =
        Engine.Ac_plan.compile ~gmin:1e-12 ~omega_ref:(2e6 *. Float.pi)
          ~op mna
      in
      let kern = Engine.Kernel.compile plan in
      let size = mna.Engine.Mna.size in
      let unit k =
        let b = Array.make size Numerics.Cx.zero in
        b.(k) <- Numerics.Cx.one;
        b
      in
      let bs = [| unit 0; unit (size / 2); unit (size - 1) |] in
      List.for_all
        (fun f ->
          let omega = 2. *. Float.pi *. f in
          let same xs ys =
            Array.for_all2
              (fun x y ->
                Array.for_all2
                  (fun a b -> complex_bits a = complex_bits b)
                  x y)
              xs ys
          in
          same
            (Engine.Ac_plan.solve_many plan ~omega bs)
            (Engine.Kernel.solve_many kern ~omega bs)
          && same
               (Engine.Ac_plan.solve_many plan ~omega [| bs.(0) |])
               (Engine.Kernel.solve_many kern ~omega [| bs.(0) |]))
        [ 1e2; 1e5; 1e9 ])

(* Chunked pooled execution writes disjoint cells and never enters the
   arithmetic, so parallel kernel sweeps are bit-identical to
   sequential — on real worker domains, not an inlined pool. *)
let test_kernel_seq_par_identical () =
  let saved = Parallel.Pool.jobs () in
  Parallel.Pool.set_oversubscribe true;
  Parallel.Pool.set_jobs 3;
  Fun.protect
    ~finally:(fun () ->
      Parallel.Pool.set_jobs saved;
      Parallel.Pool.set_oversubscribe false;
      Parallel.Pool.shutdown ())
    (fun () ->
      let circ = Workloads.Opamp_2mhz.buffer () in
      let probe = Stability.Probe.prepare circ in
      let sweep = Numerics.Sweep.decade 1e3 1e9 40 in
      let nodes = [ "out"; "o1"; "vcasc" ] in
      let seq =
        Stability.Probe.response_many ~backend:`Kernel ~parallel:`Seq probe
          ~sweep nodes
      in
      let par =
        Stability.Probe.response_many ~backend:`Kernel ~parallel:`Par probe
          ~sweep nodes
      in
      check_waves_bit_identical "kernel seq vs par" seq par)

(* The compile/point budget: one kernel compilation per sweep, every
   point advanced through the kernel, zero stale-pivot fallbacks on a
   healthy deck — and a shared pre-compiled kernel recompiles nothing. *)
let test_kernel_counter_budget () =
  let circ = Workloads.Opamp_2mhz.buffer () in
  let sweep = Numerics.Sweep.decade 1e4 1e8 10 in
  let points = Array.length (Numerics.Sweep.points sweep) in
  let probe = Stability.Probe.prepare circ in
  let nodes = [ "out"; "o1" ] in
  let before = Engine.Kernel.totals () in
  ignore
    (Stability.Probe.response_many ~backend:`Kernel probe ~sweep nodes);
  let after = Engine.Kernel.totals () in
  Alcotest.(check int) "one kernel compile per sweep" 1
    (after.Engine.Kernel.compiles - before.Engine.Kernel.compiles);
  Alcotest.(check int) "every point through the kernel" points
    (after.Engine.Kernel.points - before.Engine.Kernel.points);
  Alcotest.(check int) "no stale-pivot fallbacks" 0
    (after.Engine.Kernel.fallback - before.Engine.Kernel.fallback);
  Alcotest.(check bool) "batch high-water bounded by chunk" true
    (after.Engine.Kernel.batch_max <= Engine.Kernel.chunk
     && after.Engine.Kernel.batch_max > 0);
  (* Warm path: a caller holding a compiled kernel pays zero compiles,
     and the answers are the ones the cold path produced. *)
  let plan = Stability.Probe.plan probe ~sweep in
  let kern = Engine.Kernel.compile plan in
  let base = (Engine.Kernel.totals ()).Engine.Kernel.compiles in
  let shared =
    Stability.Probe.response_many ~kernel:kern probe ~sweep nodes
  in
  Alcotest.(check int) "shared kernel compiles nothing" base
    (Engine.Kernel.totals ()).Engine.Kernel.compiles;
  check_waves_bit_identical "shared kernel answers"
    (Stability.Probe.response_many ~backend:`Kernel probe ~sweep nodes)
    shared

(* ---------- numerical-health grading ---------- *)

(* A healthy deck must come back [Good]: the shipped RC ladder is as
   well-conditioned as AC analysis gets. *)
let test_quality_good_on_healthy_deck () =
  let circ = Workloads.Ladder.rc ~sections:8 () in
  let options =
    { Stability.Analysis.default_options with
      sweep = Numerics.Sweep.decade 1e3 1e6 10 }
  in
  let res = Stability.Analysis.single_node ~options circ "n8" in
  Alcotest.(check string) "healthy deck grades good" "good"
    (Stability.Analysis.quality_string res.Stability.Analysis.quality)

(* A gmin-starved capacitive divider: two femtofarad caps in series,
   no resistive path anywhere. At 1 Hz the cap admittances are ~1e-14
   while the source rows carry unit entries, so every factorisation is
   catastrophically ill-conditioned — the health meter must demote the
   node to [Suspect]. Sampling is forced to every point so the verdict
   does not depend on the global tick phase left by other tests. *)
let test_quality_suspect_on_starved_deck () =
  let circ =
    Circuit.Parser.parse_string
      "* gmin-starved capacitive divider\n\
       V1 n1 0 AC 1\n\
       C1 n1 n2 1e-15\n\
       C2 n2 0 1e-15\n"
  in
  Engine.Health.set_sample_every 1;
  Fun.protect
    ~finally:(fun () ->
      Engine.Health.set_sample_every Engine.Health.default_sample_every)
    (fun () ->
      let options =
        { Stability.Analysis.default_options with
          sweep = Numerics.Sweep.decade 1. 1e3 10;
          refine = false;
          backend = `Plan }
      in
      let res = Stability.Analysis.single_node ~options circ "n2" in
      Alcotest.(check string) "starved deck grades suspect" "suspect"
        (Stability.Analysis.quality_string res.Stability.Analysis.quality))

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "stability"
    [ ("probe",
       [ Alcotest.test_case "fast path = netlist path" `Quick
           test_probe_paths_agree;
         Alcotest.test_case "many = single" `Quick
           test_probe_many_matches_single;
         Alcotest.test_case "ground rejected" `Quick
           test_probe_rejects_ground;
         Alcotest.test_case "dense = sparse backend" `Quick
           test_probe_backends_agree;
         Alcotest.test_case "parallel = sequential" `Quick
           test_probe_parallel_agrees ]);
      ("single-node",
       [ Alcotest.test_case "rlc tank estimates" `Quick
           test_rlc_tank_estimates;
         Alcotest.test_case "complex zero positive peak" `Quick
           test_complex_zero_positive_peak;
         Alcotest.test_case "sallen-key q" `Quick test_sallen_key_q;
         Alcotest.test_case "shoulder suppression" `Quick
           test_shoulders_suppressed;
         Alcotest.test_case "end-of-range notice" `Quick
           test_end_of_range_notice;
         Alcotest.test_case "zoom refinement" `Quick
           test_refinement_improves_peak ]);
      qsuite "single-node-props" [ prop_rlc_random ];
      ("all-nodes",
       [ Alcotest.test_case "loop clustering" `Quick
           test_all_nodes_rlc_cluster;
         Alcotest.test_case "report format" `Quick test_report_format;
         Alcotest.test_case "annotation" `Quick test_annotation ]);
      ("degraded",
       [ Alcotest.test_case "clamped response completes" `Quick
           test_plot_degraded_completes;
         Alcotest.test_case "value_at range handling" `Quick
           test_plot_value_at_range;
         Alcotest.test_case "reports flag degradation" `Quick
           test_report_flags_degraded ]);
      ("health",
       [ Alcotest.test_case "healthy deck grades good" `Quick
           test_quality_good_on_healthy_deck;
         Alcotest.test_case "gmin-starved deck grades suspect" `Quick
           test_quality_suspect_on_starved_deck ]);
      ("ac-plan",
       [ Alcotest.test_case "backends agree on shipped deck" `Quick
           test_all_nodes_backends_agree;
         Alcotest.test_case "factorisation counters" `Quick
           test_plan_factorisation_counts ]);
      ("kernel",
       [ Alcotest.test_case "shipped decks bit-identical to plan" `Quick
           test_kernel_bits_shipped_decks;
         QCheck_alcotest.to_alcotest prop_kernel_bits_synth;
         Alcotest.test_case "parallel = sequential, bit for bit" `Quick
           test_kernel_seq_par_identical;
         Alcotest.test_case "compile/point counter budget" `Quick
           test_kernel_counter_budget ]);
      ("cross-validation",
       [ Alcotest.test_case "matches exact TF poles" `Quick
           test_cross_validation_with_tf ]);
      ("limitations",
       [ Alcotest.test_case "RHP poles look stable in the plot" `Quick
           test_rhp_poles_look_stable_in_the_plot ]);
      ("invariants",
       [ Alcotest.test_case "reciprocity" `Quick test_reciprocity;
         Alcotest.test_case "transient ring frequency" `Slow
           test_transient_ring_frequency_matches_plot ]) ]
