(* Static signal-flow analysis: Johnson's cycle enumeration against a
   brute-force oracle, probe-cover completeness on synthetic and shipped
   fixtures, deterministic loop reports, the pipeline's sfg cache family
   (warm repeat = zero graph rebuilds), --nodes auto peak equivalence,
   and the manifest loops section with its diff gating. *)

let parse s = Circuit.Parser.parse_string s

let counter_value name =
  match Obs.Counter.find name with
  | Some c -> Obs.Counter.value c
  | None -> 0

(* ---------- Johnson vs brute force ---------- *)

(* Oracle: every elementary cycle, canonicalized exactly like
   [Cycles.enumerate] — rotated to its minimum vertex, list sorted
   lexicographically. For each start vertex s (the cycle minimum) walk
   simple paths through vertices > s only; an edge back to s closes a
   cycle. Exponential, fine at n <= 8. *)
let brute_cycles adj =
  let n = Array.length adj in
  let adj = Array.map (List.sort_uniq compare) adj in
  let out = ref [] in
  for s = 0 to n - 1 do
    let on_path = Array.make n false in
    let rec walk v path =
      List.iter
        (fun w ->
          if w = s then out := List.rev path :: !out
          else if w > s && not on_path.(w) then begin
            on_path.(w) <- true;
            walk w (w :: path);
            on_path.(w) <- false
          end)
        adj.(v)
    in
    on_path.(s) <- true;
    walk s [ s ];
    on_path.(s) <- false
  done;
  List.sort compare !out

(* Deterministic random digraph on [n] vertices (self-loops allowed);
   density varies with the seed so sparse and dense-ish graphs both
   appear. *)
let random_graph n seed =
  let st = Random.State.make [| seed; n; 0x5f6 |] in
  let p = 0.15 +. (float_of_int (seed mod 7) *. 0.05) in
  Array.init n (fun _ ->
      List.filter
        (fun _ -> Random.State.float st 1.0 < p)
        (List.init n Fun.id))

let prop_johnson_vs_brute =
  QCheck.Test.make
    ~name:"Johnson's enumeration agrees with brute force (n <= 8)"
    ~count:300
    QCheck.(pair (int_range 1 8) (int_range 0 1_000_000))
    (fun (n, seed) ->
      let adj = random_graph n seed in
      let bounds = { Staticanalysis.Cycles.max_len = 8;
                     max_cycles = 100_000 } in
      let cycles, truncated = Staticanalysis.Cycles.enumerate ~bounds adj in
      (not truncated) && cycles = brute_cycles adj)

let test_cycles_bounds () =
  (* A complete digraph on 6 vertices has 409 elementary cycles; a
     max_cycles bound below that must truncate yet still report
     cycles, and a short max_len must drop only the long ones. *)
  let k6 = Array.init 6 (fun i -> List.filter (( <> ) i) (List.init 6 Fun.id)) in
  let all, tr = Staticanalysis.Cycles.enumerate k6 in
  Alcotest.(check bool) "k6 within default bounds" false tr;
  Alcotest.(check int) "k6 cycle count" 409 (List.length all);
  let capped, tr' =
    Staticanalysis.Cycles.enumerate
      ~bounds:{ max_len = 16; max_cycles = 100 } k6
  in
  Alcotest.(check bool) "cap reported as truncation" true tr';
  Alcotest.(check int) "cap respected" 100 (List.length capped);
  let short, tr'' =
    Staticanalysis.Cycles.enumerate
      ~bounds:{ max_len = 2; max_cycles = 100_000 } k6
  in
  Alcotest.(check bool) "length bound reported" true tr'';
  Alcotest.(check bool) "only pairs survive" true
    (List.for_all (fun c -> List.length c <= 2) short);
  Alcotest.(check int) "all 15 two-cycles present" 15 (List.length short)

(* ---------- probe cover hits every loop ---------- *)

let check_cover_hits_all label (r : Staticanalysis.Report.t) =
  List.iter
    (fun (l : Staticanalysis.Report.loop) ->
      if l.probeable = [] then
        Alcotest.(check bool)
          (Printf.sprintf "%s: unprobeable loop %s listed uncovered" label
             l.id)
          true
          (List.exists
             (fun (u : Staticanalysis.Report.loop) -> u.id = l.id)
             r.uncovered)
      else
        match Staticanalysis.Report.covers r l with
        | None -> Alcotest.failf "%s: loop %s not hit by the cover" label l.id
        | Some n ->
          Alcotest.(check bool)
            (Printf.sprintf "%s: net %s covering %s is a probeable member"
               label n l.id)
            true
            (List.mem n r.cover && List.mem n l.probeable))
    r.loops

let ladder_deck =
  {|* active ladder: three gm stages, each with local resistive feedback
VIN n0 0 DC 0 AC 1
R0 n0 n1 1k
G1 n2 0 n1 0 1m
RF1 n2 n1 10k
G2 n3 0 n2 0 1m
RF2 n3 n2 10k
G3 n4 0 n3 0 1m
RF3 n4 n3 10k
RL n4 0 1k
.end
|}

let test_cover_ladder () =
  let r = Staticanalysis.Report.analyze (parse ladder_deck) in
  Alcotest.(check (list string)) "three stage loops"
    [ "n1>n2"; "n2>n3"; "n3>n4" ]
    (List.map (fun (l : Staticanalysis.Report.loop) -> l.id) r.loops);
  Alcotest.(check (list string)) "greedy cover" [ "n2"; "n3" ] r.cover;
  check_cover_hits_all "ladder" r

let mesh_deck =
  {|* gm mesh: a 2-cycle nested inside a 3-ring
GAB b 0 a 0 1m
GBA a 0 b 0 1m
GBC c 0 b 0 1m
GCA a 0 c 0 1m
RA a 0 1k
RB b 0 1k
RC c 0 1k
.end
|}

let test_cover_mesh () =
  let r = Staticanalysis.Report.analyze (parse mesh_deck) in
  Alcotest.(check (list string)) "ring outranks the pair (gain order)"
    [ "a>b>c"; "a>b" ]
    (List.map (fun (l : Staticanalysis.Report.loop) -> l.id) r.loops);
  Alcotest.(check (list int)) "gain orders" [ 3; 2 ]
    (List.map (fun (l : Staticanalysis.Report.loop) -> l.gain_order) r.loops);
  Alcotest.(check (list string)) "one shared net covers both" [ "a" ] r.cover;
  check_cover_hits_all "mesh" r

let shipped =
  [ "double_tuned.sp"; "emitter_follower.sp"; "rlc_tank.sp";
    "sallen_key.sp"; "two_pole_loop.sp"; "wilson_mirror.sp" ]

let analyze_shipped name =
  Staticanalysis.Report.analyze
    (Circuit.Parser.parse_file (Filename.concat "../circuits" name))

let test_cover_shipped () =
  List.iter (fun name -> check_cover_hits_all name (analyze_shipped name))
    shipped

(* ---------- deterministic reports on the shipped decks ---------- *)

let test_two_pole_loop_report () =
  let r = analyze_shipped "two_pole_loop.sp" in
  (match r.loops with
   | [ l ] ->
     Alcotest.(check string) "loop id" "fb>x1>x2>x2b>x3" l.id;
     Alcotest.(check string) "global loop" "global"
       (Staticanalysis.Report.kind_string l.kind);
     Alcotest.(check int) "gain order" 2 l.gain_order;
     Alcotest.(check (list string)) "member devices"
       [ "EAMP"; "EBUF"; "R1"; "R2"; "RFB" ] l.devices
   | ls -> Alcotest.failf "expected exactly one loop, got %d" (List.length ls));
  Alcotest.(check (list string)) "cover is the summing node" [ "fb" ] r.cover;
  Alcotest.(check bool) "not truncated" false r.truncated;
  Alcotest.(check (option (list string))) "everything drivable" (Some [])
    r.undrivable;
  Alcotest.(check (list string)) "no open gain" [] r.open_gain;
  (* Determinism: a second analysis of the same parse is identical. *)
  let r' = analyze_shipped "two_pole_loop.sp" in
  Alcotest.(check (list string)) "stable ids"
    (List.map (fun (l : Staticanalysis.Report.loop) -> l.id) r.loops)
    (List.map (fun (l : Staticanalysis.Report.loop) -> l.id) r'.loops)

let test_sallen_key_report () =
  let r = analyze_shipped "sallen_key.sp" in
  (match r.loops with
   | [ l ] ->
     Alcotest.(check string) "loop id" "out>x1>x2" l.id;
     Alcotest.(check string) "global loop" "global"
       (Staticanalysis.Report.kind_string l.kind);
     Alcotest.(check (list string)) "probeable members (out is pinned)"
       [ "x1"; "x2" ] l.probeable
   | ls -> Alcotest.failf "expected exactly one loop, got %d" (List.length ls));
  Alcotest.(check (list string)) "cover" [ "x1" ] r.cover

let test_follower_and_tank () =
  let ef = analyze_shipped "emitter_follower.sp" in
  (match ef.loops with
   | [ l ] ->
     Alcotest.(check string) "follower loop id" "b>out" l.id;
     Alcotest.(check string) "confined to Q1" "local:Q1"
       (Staticanalysis.Report.kind_string l.kind)
   | ls ->
     Alcotest.failf "follower: expected one loop, got %d" (List.length ls));
  let tank = analyze_shipped "rlc_tank.sp" in
  Alcotest.(check int) "tank has no feedback loops" 0
    (List.length tank.loops);
  (* The bare tanks are autonomous fixtures: no independent source, so
     reachability is skipped rather than flagging every net. *)
  Alcotest.(check (option (list string)))
    "source-free tank skips reachability" None tank.undrivable;
  let dt = analyze_shipped "double_tuned.sp" in
  Alcotest.(check (option (list string)))
    "source-free coupled tanks skip reachability" None dt.undrivable

(* ---------- reachability: undrivable islands ---------- *)

let island_deck =
  {|* driven RC plus an island only a VCCS output can reach
VIN in 0 DC 0 AC 1
R1 in out 1k
C1 out 0 1n
G1 x 0 y 0 1m
R2 y 0 1k
R3 x 0 1k
.end
|}

let test_undrivable_island () =
  let r = Staticanalysis.Report.analyze (parse island_deck) in
  Alcotest.(check (option (list string))) "island nets undrivable"
    (Some [ "x"; "y" ]) r.undrivable;
  Alcotest.(check (list string)) "the island VCCS runs open-loop" [ "G1" ]
    r.open_gain

(* ---------- pipeline: sfg cache family ---------- *)

let load_deck file =
  match
    Tool.Pipeline.load ~policy:{ Tool.Pipeline.no_lint = true; strict = false }
      (Tool.Pipeline.Deck_file file)
  with
  | Ok l -> l
  | Error f ->
    Alcotest.failf "load failed: %s" (Tool.Pipeline.failure_message f)

(* The acceptance contract: a warm repeat of `acstab loops` performs
   zero graph rebuilds, visible through the sfg.builds counter and the
   cache.sfg.* family counters. *)
let test_static_report_warm () =
  let cache = Tool.Cache.create () in
  let loaded = load_deck "../circuits/two_pole_loop.sp" in
  let builds = counter_value "sfg.builds" in
  let hits = counter_value "cache.sfg.hits" in
  let misses = counter_value "cache.sfg.misses" in
  let r1, h1 = Tool.Pipeline.static_report ~cache loaded in
  Alcotest.(check bool) "cold is a miss" false h1;
  Alcotest.(check int) "cold builds the graph once" (builds + 1)
    (counter_value "sfg.builds");
  Alcotest.(check int) "cache.sfg.misses bumped" (misses + 1)
    (counter_value "cache.sfg.misses");
  let r2, h2 = Tool.Pipeline.static_report ~cache loaded in
  Alcotest.(check bool) "warm is a hit" true h2;
  Alcotest.(check int) "warm repeat: zero graph rebuilds" (builds + 1)
    (counter_value "sfg.builds");
  Alcotest.(check int) "cache.sfg.hits bumped" (hits + 1)
    (counter_value "cache.sfg.hits");
  Alcotest.(check bool) "the very same report" true (r1 == r2);
  (* Different bounds are a different key: a rebuild, not a hit. *)
  let bounds = { Staticanalysis.Cycles.max_len = 4; max_cycles = 8 } in
  let _, h3 = Tool.Pipeline.static_report ~cache ~bounds loaded in
  Alcotest.(check bool) "changed bounds miss" false h3;
  Alcotest.(check int) "changed bounds rebuild" (builds + 2)
    (counter_value "sfg.builds");
  (* The family is visible in the cache stats. *)
  let sfg =
    List.find
      (fun (s : Tool.Cache.family_stats) -> s.family = "sfg")
      (Tool.Cache.stats cache)
  in
  Alcotest.(check int) "two sfg entries resident" 2 sfg.entries

(* ---------- --nodes auto: cover-only run matches all-nodes ---------- *)

let loop_options =
  { Stability.Analysis.default_options with
    sweep = Numerics.Sweep.decade 1e2 1e8 20 }

let test_auto_matches_all file =
  let cache = Tool.Cache.create () in
  let loaded = load_deck file in
  let auto =
    Tool.Pipeline.analyze_exn ~cache ~options:loop_options loaded
      Tool.Pipeline.Auto_nodes
  in
  let all =
    Tool.Pipeline.analyze_exn ~cache ~options:loop_options loaded
      (Tool.Pipeline.All_nodes None)
  in
  let report, _ = Tool.Pipeline.static_report ~cache loaded in
  Alcotest.(check (list string)) "auto probes exactly the cover"
    (List.sort compare report.Staticanalysis.Report.cover)
    (List.sort compare
       (List.map
          (fun (r : Stability.Analysis.node_result) -> r.node)
          auto.Tool.Pipeline.results));
  Alcotest.(check bool) "auto probes fewer nets" true
    (List.length auto.Tool.Pipeline.results
     < List.length all.Tool.Pipeline.results);
  Alcotest.(check bool) "manifest records nodes=auto" true
    (List.mem ("nodes", "auto")
       auto.Tool.Pipeline.manifest.Tool.Manifest.options);
  let clusters o = Stability.Loops.cluster o.Tool.Pipeline.results in
  let ca = clusters auto and cb = clusters all in
  Alcotest.(check bool) "auto finds peaks" true (ca <> []);
  List.iter
    (fun (la : Stability.Loops.loop) ->
      match
        List.find_opt
          (fun (lb : Stability.Loops.loop) ->
            Float.abs ((lb.natural_freq /. la.natural_freq) -. 1.) < 0.01)
          cb
      with
      | None ->
        Alcotest.failf "auto peak at %.4g Hz missing from all-nodes"
          la.natural_freq
      | Some lb -> (
        match
          (la.worst.peak.Stability.Peaks.zeta,
           lb.worst.peak.Stability.Peaks.zeta)
        with
        | Some za, Some zb ->
          Alcotest.(check bool)
            (Printf.sprintf "zeta agrees at %.4g Hz (%g vs %g)"
               la.natural_freq za zb)
            true
            (Float.abs ((za /. zb) -. 1.) < 0.05)
        | _ -> ()))
    ca

let test_auto_two_pole () = test_auto_matches_all "../circuits/two_pole_loop.sp"
let test_auto_sallen_key () = test_auto_matches_all "../circuits/sallen_key.sp"

(* No coverable loops -> auto falls back to every net. *)
let test_auto_fallback () =
  let cache = Tool.Cache.create () in
  let loaded = load_deck "../circuits/rlc_tank.sp" in
  let nodes o =
    List.sort compare
      (List.map
         (fun (r : Stability.Analysis.node_result) -> r.node)
         o.Tool.Pipeline.results)
  in
  let auto =
    Tool.Pipeline.analyze_exn ~cache ~options:loop_options loaded
      Tool.Pipeline.Auto_nodes
  in
  let all =
    Tool.Pipeline.analyze_exn ~cache ~options:loop_options loaded
      (Tool.Pipeline.All_nodes None)
  in
  Alcotest.(check (list string)) "loop-free deck: auto = all nets"
    (nodes all) (nodes auto)

(* ---------- manifest loops section + diff gating ---------- *)

let manifest_with_loops () =
  let cache = Tool.Cache.create () in
  let loaded = load_deck "../circuits/two_pole_loop.sp" in
  Tool.Pipeline.manifest_of ~cache loaded ~options:[] ~results:[] ~wall_s:0.
    ~cpu_s:0.

let test_manifest_loops_roundtrip () =
  let m = manifest_with_loops () in
  let section =
    match m.Tool.Manifest.loops with
    | Some s -> s
    | None -> Alcotest.fail "manifest carries no loops section"
  in
  Alcotest.(check (list string)) "recorded loop ids"
    [ "fb>x1>x2>x2b>x3" ]
    (List.map
       (fun (l : Tool.Manifest.loop_record) -> l.loop_id)
       section.loop_list);
  Alcotest.(check (list string)) "recorded cover" [ "fb" ]
    section.Tool.Manifest.cover;
  match Tool.Manifest.of_json_string (Tool.Manifest.to_json m) with
  | Error e -> Alcotest.failf "manifest round-trip failed: %s" e
  | Ok back ->
    let ids (s : Tool.Manifest.loops_section option) =
      match s with
      | None -> None
      | Some s ->
        Some
          (List.map
             (fun (l : Tool.Manifest.loop_record) ->
               (l.loop_id, l.loop_kind, l.loop_gain_order, l.loop_nets))
             s.loop_list,
           s.cover, s.loops_truncated)
    in
    Alcotest.(check bool) "loops survive the round trip" true
      (ids m.Tool.Manifest.loops = ids back.Tool.Manifest.loops)

let has_change p changes = List.exists p changes

let test_manifest_loop_gating () =
  let m = manifest_with_loops () in
  let section = Option.get m.Tool.Manifest.loops in
  let dropped =
    { m with Tool.Manifest.loops = Some { section with loop_list = [] } }
  in
  Alcotest.(check bool) "disappearing loop is a regression" true
    (has_change
       (function
         | Tool.Manifest.Loop_removed "fb>x1>x2>x2b>x3" -> true
         | _ -> false)
       (Tool.Manifest.diff m dropped));
  Alcotest.(check bool) "appearing loop is reported" true
    (has_change
       (function
         | Tool.Manifest.Loop_added "fb>x1>x2>x2b>x3" -> true
         | _ -> false)
       (Tool.Manifest.diff dropped m));
  (* References written before static analysis existed gate nothing. *)
  let legacy = { m with Tool.Manifest.loops = None } in
  Alcotest.(check int) "legacy reference: no loop gating" 0
    (List.length (Tool.Manifest.diff legacy m));
  Alcotest.(check int) "legacy candidate: no loop gating" 0
    (List.length (Tool.Manifest.diff m legacy))

(* ---------- loops report schema ---------- *)

let test_loops_report_json () =
  let cache = Tool.Cache.create () in
  let loaded = load_deck "../circuits/sallen_key.sp" in
  let report, _ = Tool.Pipeline.static_report ~cache loaded in
  let j =
    Tool.Json.to_string
      (Tool.Loops_report.json ~deck:"sallen_key.sp"
         ~sha256:loaded.Tool.Pipeline.sha256 report)
  in
  let contains needle =
    let ln = String.length needle and lj = String.length j in
    let rec go i = i + ln <= lj && (String.sub j i ln = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "schema tag" true
    (contains "\"schema\":\"acstab-loops/1\"");
  Alcotest.(check bool) "loop id present" true (contains "out>x1>x2");
  Alcotest.(check bool) "cover present" true (contains "\"cover\":[\"x1\"]")

let () =
  Alcotest.run "staticanalysis"
    [ ( "cycles",
        Alcotest.test_case "enumeration bounds" `Quick test_cycles_bounds
        :: List.map QCheck_alcotest.to_alcotest [ prop_johnson_vs_brute ] );
      ( "cover",
        [ Alcotest.test_case "ladder" `Quick test_cover_ladder;
          Alcotest.test_case "mesh" `Quick test_cover_mesh;
          Alcotest.test_case "shipped circuits" `Quick test_cover_shipped ] );
      ( "reports",
        [ Alcotest.test_case "two_pole_loop" `Quick test_two_pole_loop_report;
          Alcotest.test_case "sallen_key" `Quick test_sallen_key_report;
          Alcotest.test_case "follower and tanks" `Quick
            test_follower_and_tank;
          Alcotest.test_case "undrivable island" `Quick
            test_undrivable_island ] );
      ( "pipeline",
        [ Alcotest.test_case "warm repeat rebuilds nothing" `Quick
            test_static_report_warm;
          Alcotest.test_case "auto nodes: two_pole_loop" `Quick
            test_auto_two_pole;
          Alcotest.test_case "auto nodes: sallen_key" `Quick
            test_auto_sallen_key;
          Alcotest.test_case "auto nodes: loop-free fallback" `Quick
            test_auto_fallback ] );
      ( "manifest",
        [ Alcotest.test_case "loops section round-trip" `Quick
            test_manifest_loops_roundtrip;
          Alcotest.test_case "diff gating" `Quick test_manifest_loop_gating;
          Alcotest.test_case "acstab-loops/1 json" `Quick
            test_loops_report_json ] ) ]
