(* @serve-smoke — end-to-end exercise of the `acstab serve` daemon.

   Starts the daemon on a private socket, then over the wire: a cold
   all-nodes request, a warm repeat that must be answered from the
   cache with byte-identical results and zero extra DC solves / zero
   extra symbolic analyses (asserted from the Obs counters via the
   protocol's own `counters` command), four concurrent in-flight
   requests on four connections, and a clean shutdown that removes the
   socket file. *)

let sock =
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "acstab-smoke-%d.sock" (Unix.getpid ()))

let fail fmt =
  Printf.ksprintf
    (fun m ->
      prerr_endline ("serve-smoke: FAIL: " ^ m);
      (try Sys.remove sock with Sys_error _ -> ());
      exit 1)
    fmt

let mem name j =
  match Tool.Json.member name j with
  | Some v -> v
  | None -> fail "response lacks %S in %s" name (Tool.Json.to_string j)

let expect_ok j =
  match Tool.Json.mem_bool "ok" j with
  | Some true -> ()
  | _ -> fail "request not ok: %s" (Tool.Json.to_string j)

let expect_cache verdict j =
  match Tool.Json.mem_str "cache" j with
  | Some v when v = verdict -> ()
  | v ->
    fail "expected cache=%s, got %s" verdict
      (Option.value ~default:"<absent>" v)

let counter c name =
  let r = Tool.Server.Client.request c (Tool.Json.Obj [ ("cmd", Tool.Json.Str "counters") ]) in
  expect_ok r;
  match Option.bind (Tool.Json.member "counters" r) (Tool.Json.mem_int name) with
  | Some n -> n
  | None -> fail "counter %S missing" name

let deck_text = Circuit.Netlist.to_spice (Workloads.Ladder.rc ())

let analyze_fields =
  [ ("cmd", Tool.Json.Str "analyze");
    ("deck_text", Tool.Json.Str deck_text);
    ("name", Tool.Json.Str "rc_ladder_20.sp") ]

let () =
  let server =
    Thread.create (fun () -> Tool.Server.serve ~socket:sock ()) ()
  in
  let rec wait_for_socket n =
    if n = 0 then fail "daemon socket never appeared"
    else if not (Sys.file_exists sock) then begin
      Unix.sleepf 0.05;
      wait_for_socket (n - 1)
    end
  in
  wait_for_socket 200;
  let c = Tool.Server.Client.connect sock in

  (* Protocol sanity. *)
  let pong =
    Tool.Server.Client.request c (Tool.Json.Obj [ ("cmd", Tool.Json.Str "ping") ])
  in
  expect_ok pong;
  (match Tool.Json.mem_str "protocol" pong with
   | Some p when p = Tool.Server.protocol_version -> ()
   | p ->
     fail "protocol mismatch: %s" (Option.value ~default:"<absent>" p));

  (* Cold request: a miss that does real work. *)
  let all_nodes =
    Tool.Json.Obj (("mode", Tool.Json.Str "all-nodes") :: analyze_fields)
  in
  let cold = Tool.Server.Client.request c all_nodes in
  expect_ok cold;
  expect_cache "miss" cold;

  (* Warm repeat: a hit, byte-identical, zero re-solves. *)
  let dc0 = counter c "dcop.solves"
  and sym0 = counter c "acplan.symbolic" in
  let warm = Tool.Server.Client.request c all_nodes in
  expect_ok warm;
  expect_cache "hit" warm;
  let dc1 = counter c "dcop.solves"
  and sym1 = counter c "acplan.symbolic" in
  if dc1 <> dc0 then fail "warm request re-solved DC (%d -> %d)" dc0 dc1;
  if sym1 <> sym0 then
    fail "warm request re-ran symbolic analysis (%d -> %d)" sym0 sym1;
  List.iter
    (fun field ->
      let bytes j = Tool.Json.to_string (mem field j) in
      if bytes cold <> bytes warm then
        fail "warm %s differs from cold" field)
    [ "nodes"; "manifest"; "deck_sha256" ];

  (* Four concurrent in-flight requests on four connections: all sent
     before any response is read, so the daemon holds (at least) four
     at once and answers them through the pool. *)
  let nodes =
    match Tool.Json.to_list (mem "nodes" cold) with
    | Some l -> List.filter_map (Tool.Json.mem_str "node") l
    | None -> fail "cold response has no node list"
  in
  let picks =
    match nodes with
    | a :: b :: d :: e :: _ -> [ a; b; d; e ]
    | _ -> fail "ladder run returned fewer than 4 nodes"
  in
  let clients = List.map (fun _ -> Tool.Server.Client.connect sock) picks in
  List.iter2
    (fun cl node ->
      Tool.Server.Client.send cl
        (Tool.Json.Obj
           (("mode", Tool.Json.Str "single-node")
            :: ("node", Tool.Json.Str node)
            :: analyze_fields)))
    clients picks;
  List.iter2
    (fun cl node ->
      let r = Tool.Server.Client.recv cl in
      expect_ok r;
      (match Tool.Json.to_list (mem "nodes" r) with
       | Some [ entry ] ->
         (match Tool.Json.mem_str "node" entry with
          | Some n when n = node -> ()
          | n ->
            fail "concurrent response for %s names %s" node
              (Option.value ~default:"<absent>" n))
       | _ -> fail "concurrent single-node response malformed");
      Tool.Server.Client.close cl)
    clients picks;
  (* The concurrent batch reused the warm operating point. *)
  let dc2 = counter c "dcop.solves" in
  if dc2 <> dc1 then
    fail "concurrent requests re-solved DC (%d -> %d)" dc1 dc2;

  (* Static loops report over the wire: a cold miss builds the graph,
     a warm repeat is a hit with zero rebuilds (cache.sfg family). *)
  let ring_text =
    "ring smoke\nVIN in 0 DC 0 AC 1\nRIN in a 1k\nGA b 0 a 0 1m\n\
     RA b 0 1k\nCB b 0 1n\nGB a 0 b 0 1m\n.end\n"
  in
  let loops_req =
    Tool.Json.Obj
      [ ("cmd", Tool.Json.Str "loops");
        ("deck_text", Tool.Json.Str ring_text);
        ("name", Tool.Json.Str "ring.sp") ]
  in
  let loops_cold = Tool.Server.Client.request c loops_req in
  expect_ok loops_cold;
  expect_cache "miss" loops_cold;
  let report = mem "report" loops_cold in
  (match Tool.Json.mem_str "schema" report with
   | Some "acstab-loops/1" -> ()
   | s ->
     fail "loops schema mismatch: %s" (Option.value ~default:"<absent>" s));
  (match Tool.Json.to_list (mem "loops" report) with
   | Some [ loop ] ->
     (match Tool.Json.mem_str "id" loop with
      | Some "a>b" -> ()
      | i -> fail "loop id %s, wanted a>b" (Option.value ~default:"?" i))
   | _ -> fail "ring deck must report exactly one loop");
  let builds0 = counter c "sfg.builds" in
  let loops_warm = Tool.Server.Client.request c loops_req in
  expect_ok loops_warm;
  expect_cache "hit" loops_warm;
  let builds1 = counter c "sfg.builds" in
  if builds1 <> builds0 then
    fail "warm loops request rebuilt the graph (%d -> %d)" builds0 builds1;

  (* "nodes": "auto" analyzes exactly the report's probe cover. *)
  let auto =
    Tool.Server.Client.request c
      (Tool.Json.Obj
         [ ("cmd", Tool.Json.Str "analyze");
           ("mode", Tool.Json.Str "all-nodes");
           ("nodes", Tool.Json.Str "auto");
           ("deck_text", Tool.Json.Str ring_text);
           ("name", Tool.Json.Str "ring.sp") ])
  in
  expect_ok auto;
  (match Tool.Json.to_list (mem "nodes" auto) with
   | Some [ entry ] ->
     (match Tool.Json.mem_str "node" entry with
      | Some "a" -> ()
      | n ->
        fail "auto probed %s, wanted the cover net a"
          (Option.value ~default:"<absent>" n))
   | Some l -> fail "auto probed %d nets, wanted the 1-net cover" (List.length l)
   | None -> fail "auto analyze returned no node list");

  (* The kernel backend over the wire: the cold request compiles exactly
     one kernel, the warm repeat answers from the cache with zero
     recompiles, and the answers are byte-identical to the plan-backed
     default run — the kernel is bit-identical by construction. *)
  let kernel_req =
    Tool.Json.Obj
      (("mode", Tool.Json.Str "all-nodes")
       :: ("backend", Tool.Json.Str "kernel")
       :: analyze_fields)
  in
  let compiles0 = counter c "kernel.compiles" in
  let kcold = Tool.Server.Client.request c kernel_req in
  expect_ok kcold;
  expect_cache "miss" kcold;
  let compiles1 = counter c "kernel.compiles" in
  if compiles1 <> compiles0 + 1 then
    fail "cold kernel request compiled %d kernels, wanted 1"
      (compiles1 - compiles0);
  let kwarm = Tool.Server.Client.request c kernel_req in
  expect_ok kwarm;
  expect_cache "hit" kwarm;
  let compiles2 = counter c "kernel.compiles" in
  if compiles2 <> compiles1 then
    fail "warm kernel request recompiled (%d -> %d)" compiles1 compiles2;
  let bytes field j = Tool.Json.to_string (mem field j) in
  if bytes "nodes" kcold <> bytes "nodes" kwarm then
    fail "warm kernel nodes differ from cold";
  if bytes "nodes" kcold <> bytes "nodes" cold then
    fail "kernel-backend nodes differ from the plan-backed default";
  (* An unknown backend name is a usage error (exit-code contract 2),
     not a crash. *)
  let bogus =
    Tool.Server.Client.request c
      (Tool.Json.Obj
         (("mode", Tool.Json.Str "all-nodes")
          :: ("backend", Tool.Json.Str "warp")
          :: analyze_fields))
  in
  (match Tool.Json.mem_bool "ok" bogus with
   | Some false -> ()
   | _ -> fail "bogus backend accepted: %s" (Tool.Json.to_string bogus));
  (match
     Option.bind (Tool.Json.member "error" bogus) (Tool.Json.mem_int "code")
   with
   | Some 2 -> ()
   | cd ->
     fail "bogus backend error code %d, wanted the usage code 2"
       (Option.value ~default:(-1) cd));

  (* stats: every cache family reports occupancy next to its traffic. *)
  let stats =
    Tool.Server.Client.request c
      (Tool.Json.Obj [ ("cmd", Tool.Json.Str "stats") ])
  in
  expect_ok stats;
  let cache_stats = mem "cache" stats in
  List.iter
    (fun fam ->
      match Tool.Json.member fam cache_stats with
      | None -> fail "stats reply lacks the %s cache family" fam
      | Some f ->
        List.iter
          (fun field ->
            if Tool.Json.mem_int field f = None then
              fail "stats %s family lacks %S" fam field)
          [ "entries"; "capacity"; "hits"; "misses"; "evictions" ])
    [ "op"; "plan"; "kernel"; "result"; "sfg" ];
  (match Option.bind (Tool.Json.member "kernel" cache_stats)
           (Tool.Json.mem_int "entries") with
   | Some n when n >= 1 -> ()
   | _ ->
     fail "kernel family shows no resident entries after kernel requests");
  (match Option.bind (Tool.Json.member "sfg" cache_stats)
           (Tool.Json.mem_int "entries") with
   | Some n when n >= 1 -> ()
   | _ -> fail "sfg family shows no resident entries after loops requests");

  (* A second daemon on the live socket must refuse, not steal it. *)
  (match Tool.Server.serve ~socket:sock () with
   | () -> fail "second daemon took over the live socket"
   | exception Failure m ->
     let mentions sub =
       let n = String.length sub and len = String.length m in
       let rec go i = i + n <= len && (String.sub m i n = sub || go (i + 1)) in
       go 0
     in
     if not (mentions "already serving") then
       fail "second-daemon refusal unclear: %s" m);

  (* Clean shutdown: the loop exits and the socket file is removed. *)
  let bye =
    Tool.Server.Client.request c
      (Tool.Json.Obj [ ("cmd", Tool.Json.Str "shutdown") ])
  in
  expect_ok bye;
  Tool.Server.Client.close c;
  Thread.join server;
  if Sys.file_exists sock then fail "socket file survived shutdown";

  (* Stale-socket recovery: a socket file nobody answers (a crashed
     daemon's leftover) is unlinked and the new daemon starts. *)
  let stale = sock ^ ".stale" in
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX stale);
  Unix.close fd;
  let server2 =
    Thread.create (fun () -> Tool.Server.serve ~socket:stale ()) ()
  in
  let rec connect_retry n =
    if n = 0 then fail "daemon never recovered the stale socket"
    else
      match Tool.Server.Client.connect stale with
      | c2 -> c2
      | exception _ ->
        Unix.sleepf 0.05;
        connect_retry (n - 1)
  in
  let c2 = connect_retry 200 in
  let pong2 =
    Tool.Server.Client.request c2
      (Tool.Json.Obj [ ("cmd", Tool.Json.Str "ping") ])
  in
  expect_ok pong2;
  let bye2 =
    Tool.Server.Client.request c2
      (Tool.Json.Obj [ ("cmd", Tool.Json.Str "shutdown") ])
  in
  expect_ok bye2;
  Tool.Server.Client.close c2;
  Thread.join server2;
  if Sys.file_exists stale then fail "stale socket path survived shutdown";

  print_endline
    "serve-smoke: OK (cold miss, warm hit byte-identical with 0 DC \
     re-solves and 0 symbolic re-analyses, 4 concurrent in-flight \
     requests, loops cold/warm with 0 graph rebuilds, nodes=auto cover \
     run, kernel backend cold/warm with 0 recompiles and plan-identical \
     bytes, per-family cache stats, live-socket refusal, stale-socket \
     recovery, clean shutdown)"
