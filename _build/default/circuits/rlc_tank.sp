parallel RLC tank -- the canonical second-order stability fixture
* fn = 1/(2 pi sqrt(LC)) = 5.03 MHz, zeta = sqrt(L/C)/(2R) = 0.158
R1 n 0 100
L1 n 0 1u
C1 n 0 1n
.stab n
.end
