double-tuned transformer: coupled tanks split into two modes
* f0 = 5.03 MHz; modes at f0/sqrt(1 +/- k) = 4.59 and 5.63 MHz
L1 n1 0 1u
C1 n1 0 1n
R1 n1 0 3k
L2 n2 0 1u
C2 n2 0 1n
R2 n2 0 3k
K1 L1 L2 0.2
.stab n1
.end
