emitter follower with capacitive load -- classic local instability
* Driven from a resistive source the follower's output impedance is
* inductive; with CL it rings near 100 MHz (see acstab single-node).
VCC vcc 0 DC 5
VIN in 0 DC 2.5 AC 1
RS in b 3.3k
Q1 vcc b out QNPN
IBIAS out 0 DC 1m
CL out 0 10p
.model QNPN npn (is=1e-16 bf=150 vaf=80 cpi=1p cmu=0.08p ccs=0.15p)
.stab out
.end
