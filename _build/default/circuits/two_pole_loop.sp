behavioural two-pole feedback loop (ideal amplifier)
* Loop gain A/((1+s/p1)(1+s/p2)); break at EAMP terminal 3 for loopgain.
.param av=1000
VIN in 0 DC 0 AC 1
EAMP x1 0 in fb {av}
R1 x1 x2 1k
C1 x2 0 1n
EBUF x2b 0 x2 0 1
R2 x2b x3 10k
C2 x3 0 10p
RFB x3 fb 1m
RL fb 0 1meg
.stab fb
.end
