equal-RC Sallen-Key low-pass, Q = 2 (k = 2.5)
* fn = 1/(2 pi RC) = 15.9 kHz, zeta = 1/(2Q) = 0.25.
* Probe the state node x2 (the amplifier output is pinned by the VCVS).
VIN in 0 AC 1
R1 in x1 10k
R2 x1 x2 10k
C2 x2 0 1n
C1 x1 out 1n
EAMP out 0 x2 0 2.5
.stab x2
.end
