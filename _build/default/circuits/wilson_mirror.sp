Wilson current mirror -- a three-transistor local feedback loop
VCC vcc 0 DC 5
IREF vcc nin DC 100u
Q1 nx nx 0 QNPN
Q2 nin nx 0 QNPN
Q3 out nin nx QNPN
RL vcc out 25k
.model QNPN npn (is=1e-16 bf=150 vaf=80 cpi=1p cmu=0.08p ccs=0.15p)
.stab all
.end
