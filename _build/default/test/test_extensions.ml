(* Extension features: sensitivity ranking, DC sweeps, Monte Carlo, the
   NMC multi-loop workload. *)

let check_close ?(tol = 1e-9) msg expected actual =
  let scale = Float.max 1. (Float.abs expected) in
  Alcotest.(check bool)
    (Printf.sprintf "%s: expected %.9g, got %.9g" msg expected actual)
    true
    (Float.abs (expected -. actual) <= tol *. scale)

(* ---------- sensitivity ---------- *)

let test_sensitivity_rlc () =
  (* Parallel RLC: zeta = sqrt(L/C)/(2R), fn = 1/(2 pi sqrt(LC)), so the
     normalised sensitivities are known exactly:
       S_R(zeta) = -1, S_L(zeta) = +1/2, S_C(zeta) = -1/2
       S_R(fn) = 0, S_L(fn) = -1/2, S_C(fn) = -1/2. *)
  let circ = Workloads.Filters.parallel_rlc () in
  let entries = Stability.Sensitivity.of_loop circ ~node:"n" in
  let find name =
    List.find
      (fun (e : Stability.Sensitivity.entry) -> e.device = name)
      entries
  in
  let r = find "R1" and l = find "L1" and c = find "C1" in
  check_close ~tol:2e-2 "S_R(zeta)" (-1.) r.zeta_sensitivity;
  check_close ~tol:2e-2 "S_L(zeta)" 0.5 l.zeta_sensitivity;
  check_close ~tol:2e-2 "S_C(zeta)" (-0.5) c.zeta_sensitivity;
  check_close ~tol:2e-2 "S_R(fn)" 0. r.freq_sensitivity;
  check_close ~tol:2e-2 "S_L(fn)" (-0.5) l.freq_sensitivity;
  check_close ~tol:2e-2 "S_C(fn)" (-0.5) c.freq_sensitivity;
  (* Ranking: R has the largest damping influence. *)
  match entries with
  | first :: _ -> Alcotest.(check string) "R ranks first" "R1" first.device
  | [] -> Alcotest.fail "no entries"

let test_sensitivity_opamp_names_compensation () =
  (* On the op-amp's main loop, the compensation network and the load cap
     must rank among the most influential passives. *)
  let circ = Workloads.Opamp_2mhz.buffer () in
  let entries =
    Stability.Sensitivity.of_loop
      ~options:
        { Stability.Analysis.default_options with
          sweep = Numerics.Sweep.decade 1e5 1e8 30 }
      circ ~node:"out"
  in
  let top3 =
    List.filteri (fun i _ -> i < 3) entries
    |> List.map (fun (e : Stability.Sensitivity.entry) -> e.device)
  in
  Alcotest.(check bool)
    (Printf.sprintf "compensation parts in top 3 (%s)"
       (String.concat "," top3))
    true
    (List.exists (fun d -> List.mem d [ "C1"; "CLOAD"; "RZERO" ]) top3)

(* ---------- dc sweep ---------- *)

let test_dcsweep_source () =
  (* Divider: out tracks in/2. *)
  let open Circuit.Netlist in
  let c = empty ~title:"sweep" () in
  let c = vsource c "V1" "in" "0" (dc_source 0.) in
  let c = resistor c "R1" "in" "out" 1e3 in
  let c = resistor c "R2" "out" "0" 1e3 in
  let values = [| 0.; 1.; 2.; 5. |] in
  let r = Engine.Dcsweep.source c ~name:"V1" ~values in
  let w = Engine.Dcsweep.v r "out" in
  Array.iteri
    (fun k vin ->
      check_close ~tol:1e-9
        (Printf.sprintf "out at vin=%g" vin)
        (vin /. 2.)
        w.Numerics.Waveform.Real.y.(k))
    values

let test_dcsweep_mos_transfer () =
  (* NMOS common-source transfer curve: output high in cutoff, low at
     strong gate drive, monotone between. *)
  let open Circuit.Netlist in
  let c = empty ~title:"cs sweep" () in
  let c = vsource c "VDD" "vdd" "0" (dc_source 5.) in
  let c = vsource c "VG" "g" "0" (dc_source 0.) in
  let c = resistor c "RD" "vdd" "d" 10e3 in
  let c =
    add_model c
      { model_name = "MN"; kind = Nmos;
        params = [ ("kp", 100e-6); ("vto", 1.) ] }
  in
  let c = mosfet ~w:50e-6 ~l:1e-6 c "M1" ~d:"d" ~g:"g" ~s:"0" ~b:"0" "MN" in
  let values = Numerics.Vec.linspace 0. 3. 31 in
  let r = Engine.Dcsweep.source c ~name:"VG" ~values in
  let w = Engine.Dcsweep.v r "d" in
  (* gmin leaks a few tens of nanovolts through RD. *)
  check_close ~tol:1e-6 "cutoff" 5. w.Numerics.Waveform.Real.y.(0);
  Alcotest.(check bool) "driven low" true
    (w.Numerics.Waveform.Real.y.(30) < 0.5);
  (* Monotone non-increasing. *)
  let mono = ref true in
  for k = 1 to 30 do
    if w.Numerics.Waveform.Real.y.(k)
       > w.Numerics.Waveform.Real.y.(k - 1) +. 1e-9
    then mono := false
  done;
  Alcotest.(check bool) "monotone" true !mono

let test_dcsweep_temperature_tracks_vbe () =
  let open Circuit.Netlist in
  let c = empty ~title:"vbe vs temp" () in
  let c = vsource c "VCC" "vcc" "0" (dc_source 5.) in
  let c = resistor c "R1" "vcc" "d" 100e3 in
  let c =
    add_model c
      { model_name = "DX"; kind = Dmodel; params = [ ("is", 1e-14) ] }
  in
  let c = diode c "D1" "d" "0" "DX" in
  let r =
    Engine.Dcsweep.temperature c ~values:[| 0.; 27.; 60.; 100. |]
  in
  let w = Engine.Dcsweep.v r "d" in
  (* Vbe falls with temperature, roughly -2 mV/K. *)
  let slope =
    (w.Numerics.Waveform.Real.y.(3) -. w.Numerics.Waveform.Real.y.(0)) /. 100.
  in
  Alcotest.(check bool)
    (Printf.sprintf "dVbe/dT = %.4g V/K" slope)
    true
    (slope < -1e-3 && slope > -3e-3)

(* ---------- monte carlo ---------- *)

let test_montecarlo_deterministic () =
  let circ = Workloads.Filters.parallel_rlc () in
  let a = Tool.Montecarlo.sample ~seed:7 Tool.Montecarlo.default_spec circ in
  let b = Tool.Montecarlo.sample ~seed:7 Tool.Montecarlo.default_spec circ in
  let value c name =
    match Circuit.Netlist.find_device c name with
    | Some (Circuit.Netlist.Resistor { r; _ }) -> r
    | _ -> Alcotest.fail "R1 missing"
  in
  check_close "same seed, same sample" (value a "R1") (value b "R1");
  let c2 = Tool.Montecarlo.sample ~seed:8 Tool.Montecarlo.default_spec circ in
  Alcotest.(check bool) "different seed differs" true
    (value a "R1" <> value c2 "R1")

let test_montecarlo_zeta_spread () =
  (* zeta of the RLC tank under 5 percent mismatch: the mean stays near
     nominal and the spread reflects the R/L/C sensitivities (~7 %). *)
  let circ = Workloads.Filters.parallel_rlc () in
  let _, zeta_nom = Workloads.Filters.parallel_rlc_theory () in
  let run =
    Tool.Montecarlo.run ~n:25 ~seed:1000 circ (fun c ->
        match
          (Stability.Analysis.single_node c "n").Stability.Analysis.dominant
        with
        | Some { Stability.Peaks.zeta = Some z; _ } -> z
        | _ -> failwith "no peak")
  in
  let st = Tool.Montecarlo.stats run in
  Alcotest.(check int) "no failures" 0 st.Tool.Montecarlo.failures;
  check_close ~tol:5e-2 "mean near nominal" zeta_nom st.Tool.Montecarlo.mean;
  Alcotest.(check bool)
    (Printf.sprintf "spread plausible (sigma %.4g)" st.Tool.Montecarlo.sigma)
    true
    (st.Tool.Montecarlo.sigma > 0.005 && st.Tool.Montecarlo.sigma < 0.05);
  let y = Tool.Montecarlo.yield run ~ok:(fun z -> z > 0.1) in
  Alcotest.(check bool) "yield sane" true (y > 0.8)

let test_montecarlo_model_sigma () =
  let spec =
    { Tool.Montecarlo.passive_sigma = 0.;
      model_sigma = [ ("MN", "vto", 0.1) ] }
  in
  let circ = Workloads.Follower.source_follower () in
  let s = Tool.Montecarlo.sample ~seed:3 spec circ in
  match Circuit.Netlist.find_model s "MN" with
  | Some m ->
    let vto = Circuit.Netlist.model_param m "vto" ~default:0. in
    Alcotest.(check bool)
      (Printf.sprintf "vto perturbed (%.4g)" vto)
      true
      (vto <> 0.8 && Float.abs (vto -. 0.8) < 0.4)
  | None -> Alcotest.fail "model missing"

(* ---------- NMC amplifier ---------- *)

let test_nmc_butterworth () =
  let p = Workloads.Nmc_amp.default_params in
  let circ = Workloads.Nmc_amp.buffer ~params:p () in
  let ac = Engine.Ac.run ~sweep:(Numerics.Sweep.List [| 100. |]) circ in
  check_close ~tol:1e-3 "unity buffer" 1.
    (Numerics.Cx.mag (Engine.Ac.v ac "out").Engine.Waveform.Freq.h.(0));
  match
    (Stability.Analysis.single_node circ "out").Stability.Analysis.dominant
  with
  | Some d ->
    (* Butterworth-ish: moderately damped single dominant pair. *)
    Alcotest.(check bool)
      (Printf.sprintf "zeta %.2f in [0.3, 0.6]"
         (Option.get d.Stability.Peaks.zeta))
      true
      (match d.Stability.Peaks.zeta with
       | Some z -> z > 0.3 && z < 0.6
       | None -> false)
  | None -> Alcotest.fail "no dominant pair"

let test_nmc_inner_loop_detected () =
  (* Shrinking cm2 under-damps the inner loop: the dominant pair moves up
     in frequency and down in damping — and the exact poles agree. *)
  let p = Workloads.Nmc_amp.default_params in
  let bad = { p with Workloads.Nmc_amp.cm2 = p.Workloads.Nmc_amp.cm2 /. 5. } in
  let circ = Workloads.Nmc_amp.buffer ~params:bad () in
  let d =
    (Stability.Analysis.single_node circ "out").Stability.Analysis.dominant
    |> Option.get
  in
  Alcotest.(check bool) "underdamped" true
    (d.Stability.Peaks.value < -15.);
  Alcotest.(check bool) "well above the GBW" true
    (d.Stability.Peaks.freq > 2. *. Workloads.Nmc_amp.gbw_hz bad);
  let pairs =
    Engine.Poles.complex_pairs (Engine.Poles.of_circuit circ)
  in
  let nearest =
    List.fold_left
      (fun best (q : Engine.Poles.pole) ->
        match best with
        | None -> Some q
        | Some b ->
          if
            Float.abs (log (q.Engine.Poles.freq_hz /. d.Stability.Peaks.freq))
            < Float.abs (log (b.Engine.Poles.freq_hz /. d.Stability.Peaks.freq))
          then Some q
          else best)
      None pairs
    |> Option.get
  in
  check_close ~tol:2e-2 "plot matches exact pole (fn)"
    nearest.Engine.Poles.freq_hz d.Stability.Peaks.freq;
  check_close ~tol:5e-2 "plot matches exact pole (zeta)"
    nearest.Engine.Poles.zeta
    (Option.get d.Stability.Peaks.zeta)

let test_nmc_outer_loop_margins () =
  (* The explicit feedback wire allows a loop-gain baseline cross-check. *)
  let circ = Workloads.Nmc_amp.buffer () in
  let lg =
    Engine.Loopgain.middlebrook ~sweep:(Numerics.Sweep.decade 1e2 1e9 40)
      circ ~device:"G1" ~terminal:2
  in
  match (Engine.Loopgain.margins lg).Engine.Measure.phase_margin_deg with
  | Some pm ->
    Alcotest.(check bool)
      (Printf.sprintf "healthy Butterworth PM (%.0f)" pm)
      true (pm > 40. && pm < 75.)
  | None -> Alcotest.fail "no crossover"

let () =
  Alcotest.run "extensions"
    [ ("sensitivity",
       [ Alcotest.test_case "rlc closed forms" `Quick test_sensitivity_rlc;
         Alcotest.test_case "op-amp compensation ranking" `Slow
           test_sensitivity_opamp_names_compensation ]);
      ("dcsweep",
       [ Alcotest.test_case "source sweep" `Quick test_dcsweep_source;
         Alcotest.test_case "mos transfer curve" `Quick
           test_dcsweep_mos_transfer;
         Alcotest.test_case "temperature sweep" `Quick
           test_dcsweep_temperature_tracks_vbe ]);
      ("montecarlo",
       [ Alcotest.test_case "deterministic seeding" `Quick
           test_montecarlo_deterministic;
         Alcotest.test_case "zeta spread" `Slow test_montecarlo_zeta_spread;
         Alcotest.test_case "model sigma" `Quick
           test_montecarlo_model_sigma ]);
      ("nmc",
       [ Alcotest.test_case "butterworth buffer" `Quick
           test_nmc_butterworth;
         Alcotest.test_case "inner loop detected" `Quick
           test_nmc_inner_loop_detected;
         Alcotest.test_case "outer margins" `Quick
           test_nmc_outer_loop_margins ]) ]
