(* Control-theory library: second-order relations (paper Table 1),
   transfer functions, Bode margins, step responses. *)

open Control

let check_close ?(tol = 1e-9) msg expected actual =
  let scale = Float.max 1. (Float.abs expected) in
  Alcotest.(check bool)
    (Printf.sprintf "%s: expected %.9g, got %.9g" msg expected actual)
    true
    (Float.abs (expected -. actual) <= tol *. scale)

(* ---------- second-order relations ---------- *)

(* The paper's Table 1, row by row (zeta, overshoot%, PM deg, Mp, index). *)
let paper_table1 =
  [ (1.0, Some 0., None, None, -1.0);
    (0.9, Some 0., None, None, -1.2);
    (0.8, Some 2., None, None, -1.6);
    (0.7, Some 5., Some 70., Some 1.01, -2.0);
    (0.6, Some 10., Some 60., Some 1.04, -2.8);
    (0.5, Some 16., Some 50., Some 1.15, -4.0);
    (0.4, Some 25., Some 40., Some 1.4, -6.3);
    (0.3, Some 37., Some 30., Some 1.8, -11.);
    (0.2, Some 53., Some 20., Some 2.6, -25.);
    (0.1, Some 73., Some 10., Some 5.0, -100.) ]

let test_table1_against_paper () =
  let rows = Second_order.table1 () in
  List.iter
    (fun (zeta, os, pm, mp, idx) ->
      let row =
        List.find (fun r -> r.Second_order.zeta = zeta) rows
      in
      (match (os, row.overshoot_pct) with
       | Some expect, Some got ->
         (* The paper rounds to integers. *)
         Alcotest.(check bool)
           (Printf.sprintf "overshoot zeta=%g: %g vs %g" zeta expect got)
           true
           (Float.abs (expect -. got) <= 1.)
       | None, None -> ()
       | _ -> Alcotest.failf "overshoot presence mismatch at zeta=%g" zeta);
      (match (pm, row.phase_margin_deg) with
       | Some expect, Some got -> check_close "phase margin" expect got
       | None, None -> ()
       | _ -> Alcotest.failf "PM presence mismatch at zeta=%g" zeta);
      (match (mp, row.max_magnitude) with
       | Some expect, Some got ->
         Alcotest.(check bool)
           (Printf.sprintf "Mp zeta=%g: %g vs %g" zeta expect got)
           true
           (* The paper rounds Mp to two significant digits. *)
           (Float.abs (expect -. got) <= 0.06)
       | None, None -> ()
       | _ -> Alcotest.failf "Mp presence mismatch at zeta=%g" zeta);
      Alcotest.(check bool)
        (Printf.sprintf "index zeta=%g: %g vs %g" zeta idx
           row.Second_order.perf_index)
        true
        (Float.abs (idx -. row.Second_order.perf_index)
         <= 0.05 *. Float.abs idx))
    paper_table1

let test_zeta_roundtrips () =
  List.iter
    (fun zeta ->
      check_close ~tol:1e-6 "overshoot inverse" zeta
        (Second_order.zeta_of_overshoot (Second_order.percent_overshoot zeta));
      check_close ~tol:1e-6 "pm inverse" zeta
        (Second_order.zeta_of_phase_margin
           (Second_order.phase_margin_exact zeta));
      check_close ~tol:1e-9 "index inverse" zeta
        (Second_order.zeta_of_performance_index
           (Second_order.performance_index zeta)))
    [ 0.05; 0.1; 0.2; 0.35; 0.5; 0.7; 0.9 ]

let prop_index_consistency =
  QCheck.Test.make ~name:"performance index vs magnitude response curvature"
    ~count:50
    QCheck.(float_range 0.08 0.9)
    (fun zeta ->
      (* The stability function of the analytic |T| peaks at -1/zeta^2;
         Second_order.mag_response feeds the same Deriv machinery the tool
         uses, closing the control <-> numerics loop. *)
      let freq = Numerics.Vec.logspace 0.01 100. 2501 in
      let mag = Array.map (Second_order.mag_response ~zeta) freq in
      let p = Numerics.Deriv.stability_function ~freq ~mag in
      let i = Numerics.Vec.argmin p in
      let expected = Second_order.performance_index zeta in
      Float.abs (p.(i) -. expected) <= 0.03 *. Float.abs expected)

let test_estimate_chain () =
  (* peak -> (zeta, PM, overshoot), the tool's estimation chain. *)
  match Second_order.estimate_from_peak (-25.) with
  | Some (zeta, pm, os) ->
    check_close ~tol:1e-9 "zeta" 0.2 zeta;
    check_close ~tol:1e-2 "pm" 22.6 pm;
    check_close ~tol:1e-2 "os" 52.66 os
  | None -> Alcotest.fail "no estimate for a valid peak"

let test_estimate_rejects_positive () =
  Alcotest.(check bool) "positive peak rejected" true
    (Second_order.estimate_from_peak 3. = None)

(* ---------- transfer functions ---------- *)

let test_tf_eval_second_order () =
  let tf = Tf.second_order ~zeta:0.5 ~wn:1000. in
  (* |T(j wn)| = 1/(2 zeta). *)
  let h = Tf.eval tf (Numerics.Cx.j_omega 1000.) in
  check_close ~tol:1e-9 "resonant magnitude" 1. (Numerics.Cx.mag h);
  let dc = Tf.dc_gain tf in
  check_close ~tol:1e-12 "dc gain" 1. dc.Complex.re

let test_tf_poles () =
  let tf = Tf.second_order ~zeta:0.3 ~wn:2e6 in
  match Tf.dominant_complex_pole tf with
  | Some (wn, zeta) ->
    check_close ~tol:1e-6 "wn" 2e6 wn;
    check_close ~tol:1e-6 "zeta" 0.3 zeta
  | None -> Alcotest.fail "no complex pole found"

let test_tf_feedback () =
  (* Unity feedback around an integrator A/s gives a one-pole lowpass with
     pole at A. *)
  let g = Tf.mul (Tf.constant 100.) Tf.integrator in
  let cl = Tf.feedback g in
  let h = Tf.response cl (100. /. (2. *. Float.pi)) in
  check_close ~tol:1e-9 "one-pole closed loop at pole" (1. /. sqrt 2.)
    (Numerics.Cx.mag h)

let test_tf_stability_predicate () =
  Alcotest.(check bool) "stable" true
    (Tf.is_stable (Tf.second_order ~zeta:0.2 ~wn:1.));
  let unstable =
    Tf.of_real_coeffs ~num:[| 1. |] ~den:[| 1.; -0.1; 1. |]
  in
  Alcotest.(check bool) "rhp poles detected" false (Tf.is_stable unstable)

let test_tf_step_response () =
  (* Step response of the canonical system matches the closed form. *)
  let zeta = 0.4 and wn = 1e5 in
  let tf = Tf.second_order ~zeta ~wn in
  let w = Tf.step_response_samples tf ~tstop:(20. /. wn) ~n:400 in
  List.iter
    (fun k ->
      let t = float_of_int k /. wn in
      let expected = Second_order.step_response ~zeta (wn *. t) in
      check_close ~tol:1e-4
        (Printf.sprintf "step at wn*t=%d" k)
        expected
        (Numerics.Waveform.Real.value_at w t))
    [ 1; 2; 5; 10; 15 ]

let prop_step_overshoot =
  QCheck.Test.make
    ~name:"step-response overshoot of random second-order TFs" ~count:40
    QCheck.(float_range 0.15 0.85)
    (fun zeta ->
      let wn = 1e4 in
      let tf = Tf.second_order ~zeta ~wn in
      let w = Tf.step_response_samples tf ~tstop:(40. /. wn) ~n:3000 in
      let _, peak = Numerics.Waveform.Real.maximum w in
      let overshoot = 100. *. (peak -. 1.) in
      Float.abs (overshoot -. Second_order.percent_overshoot zeta) < 1.5)

(* ---------- bode ---------- *)

let test_bode_margins_one_pole () =
  (* L(s) = 1000/(1+s/w1): crosses 0 dB at ~1000*f1 with PM ~ 90 deg. *)
  let f1 = 1e3 in
  let l =
    Tf.of_real_coeffs ~num:[| 1000. |]
      ~den:[| 1.; 1. /. (2. *. Float.pi *. f1) |]
  in
  let m = Bode.margins l (Numerics.Sweep.decade 10. 1e8 40) in
  (match m.Bode.unity_freq with
   | Some fu -> check_close ~tol:1e-2 "crossover" (1000. *. f1) fu
   | None -> Alcotest.fail "no crossover");
  match m.Bode.phase_margin_deg with
  | Some pm -> check_close ~tol:1e-2 "pm ~ 90" 90.06 pm
  | None -> Alcotest.fail "no phase margin"

let test_bode_margins_match_second_order () =
  (* The loop wn^2/(s(s+2 zeta wn)) must measure the closed-form PM. *)
  List.iter
    (fun zeta ->
      let wn = 2. *. Float.pi *. 1e6 in
      let l =
        Tf.of_real_coeffs
          ~num:[| wn *. wn |]
          ~den:[| 0.; 2. *. zeta *. wn; 1. |]
      in
      let m = Bode.margins l (Numerics.Sweep.decade 1e3 1e9 120) in
      match m.Bode.phase_margin_deg with
      | Some pm ->
        check_close ~tol:2e-3 (Printf.sprintf "pm zeta=%g" zeta)
          (Second_order.phase_margin_exact zeta)
          pm
      | None -> Alcotest.fail "no phase margin")
    [ 0.2; 0.4; 0.6 ]

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "control"
    [ ("second-order",
       [ Alcotest.test_case "table 1 vs paper" `Quick
           test_table1_against_paper;
         Alcotest.test_case "inverse relations" `Quick test_zeta_roundtrips;
         Alcotest.test_case "estimate chain" `Quick test_estimate_chain;
         Alcotest.test_case "estimate rejects zeros" `Quick
           test_estimate_rejects_positive ]);
      qsuite "second-order-props" [ prop_index_consistency ];
      ("tf",
       [ Alcotest.test_case "second-order eval" `Quick
           test_tf_eval_second_order;
         Alcotest.test_case "pole extraction" `Quick test_tf_poles;
         Alcotest.test_case "feedback composition" `Quick test_tf_feedback;
         Alcotest.test_case "stability predicate" `Quick
           test_tf_stability_predicate;
         Alcotest.test_case "step response closed form" `Quick
           test_tf_step_response ]);
      qsuite "tf-props" [ prop_step_overshoot ];
      ("bode",
       [ Alcotest.test_case "one-pole margins" `Quick
           test_bode_margins_one_pole;
         Alcotest.test_case "second-order loop margins" `Quick
           test_bode_margins_match_second_order ]) ]
