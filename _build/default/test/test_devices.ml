(* Device models: junction math, diode/BJT/MOS characteristics, waveforms. *)

let check_close ?(tol = 1e-9) msg expected actual =
  let scale = Float.max 1. (Float.abs expected) in
  Alcotest.(check bool)
    (Printf.sprintf "%s: expected %.9g, got %.9g" msg expected actual)
    true
    (Float.abs (expected -. actual) <= tol *. scale)

let model kind params =
  { Circuit.Netlist.model_name = "m"; kind; params }

(* ---------- junction helpers ---------- *)

let test_guarded_exp () =
  let v, d = Devices.Junction.guarded_exp 1. in
  check_close "value" (exp 1.) v;
  check_close "derivative" (exp 1.) d;
  (* Beyond the limit: linear continuation, finite. *)
  let v2, d2 = Devices.Junction.guarded_exp 200. in
  Alcotest.(check bool) "finite" true (Float.is_finite v2 && Float.is_finite d2);
  Alcotest.(check bool) "monotone" true (v2 > exp 80.)

let test_pnjlim () =
  let vt = 0.025852 in
  let vcrit = Devices.Junction.vcrit ~is:1e-14 ~vt in
  (* Small steps pass through unchanged. *)
  let v, limited = Devices.Junction.pnjlim ~vt ~vcrit 0.62 0.61 in
  check_close "small step" 0.62 v;
  Alcotest.(check bool) "not limited" false limited;
  (* A huge jump gets cut. *)
  let v2, limited2 = Devices.Junction.pnjlim ~vt ~vcrit 5. 0.6 in
  Alcotest.(check bool) "limited" true limited2;
  Alcotest.(check bool) "cut hard" true (v2 < 1.)

(* ---------- diode ---------- *)

let test_diode_iv () =
  let p = Devices.Diode_model.params_of_model
            (model Circuit.Netlist.Dmodel [ ("is", 1e-14) ]) in
  let vt = Devices.Const.thermal_voltage 27. in
  let r = Devices.Diode_model.dc p ~area:1. ~temp_c:27. ~vd:0.6 ~vd_old:0.6 in
  check_close ~tol:1e-9 "forward current" (1e-14 *. (exp (0.6 /. vt) -. 1.)) r.id;
  check_close ~tol:1e-9 "conductance" (1e-14 *. exp (0.6 /. vt) /. vt) r.gd;
  (* Reverse: saturates at -is. *)
  let rr = Devices.Diode_model.dc p ~area:1. ~temp_c:27. ~vd:(-5.) ~vd_old:(-5.) in
  check_close ~tol:1e-3 "reverse current" (-1e-14) rr.id

let test_diode_area_and_temp () =
  let p = Devices.Diode_model.params_of_model
            (model Circuit.Netlist.Dmodel [ ("is", 1e-14) ]) in
  let r1 = Devices.Diode_model.dc p ~area:1. ~temp_c:27. ~vd:0.6 ~vd_old:0.6 in
  let r2 = Devices.Diode_model.dc p ~area:4. ~temp_c:27. ~vd:0.6 ~vd_old:0.6 in
  check_close ~tol:1e-9 "area scaling" (4. *. r1.id) r2.id;
  (* Hotter junction: more current at the same voltage. *)
  let rh = Devices.Diode_model.dc p ~area:1. ~temp_c:100. ~vd:0.6 ~vd_old:0.6 in
  Alcotest.(check bool) "temp increases current" true (rh.id > 10. *. r1.id)

(* ---------- BJT ---------- *)

let npn_params ?(extra = []) () =
  Devices.Bjt_model.params_of_model
    (model Circuit.Netlist.Npn ([ ("is", 1e-16); ("bf", 100.) ] @ extra))

let test_bjt_forward_active () =
  let p = npn_params () in
  let vt = Devices.Const.thermal_voltage 27. in
  let d = Devices.Bjt_model.dc p ~area:1. ~temp_c:27. ~vbe:0.65 ~vbc:(-3.)
            ~vbe_old:0.65 ~vbc_old:(-3.) in
  let icc = 1e-16 *. (exp (0.65 /. vt) -. exp ((-3.) /. vt)) in
  check_close ~tol:1e-6 "collector current" icc d.ic;
  check_close ~tol:1e-6 "base current = ic/bf" (icc /. 100.) d.ib;
  (* gm = ic/vt in forward active. *)
  let ss = Devices.Bjt_model.small_signal p ~area:1. ~temp_c:27. ~vbe:0.65
             ~vbc:(-3.) in
  check_close ~tol:1e-4 "gm" (d.ic /. vt) ss.gm;
  check_close ~tol:1e-4 "gpi = gm/bf" (ss.gm /. 100.) ss.gpi

let test_bjt_early_effect () =
  let p = npn_params ~extra:[ ("vaf", 50.) ] () in
  let d1 = Devices.Bjt_model.dc p ~area:1. ~temp_c:27. ~vbe:0.65 ~vbc:(-1.)
             ~vbe_old:0.65 ~vbc_old:(-1.) in
  let d2 = Devices.Bjt_model.dc p ~area:1. ~temp_c:27. ~vbe:0.65 ~vbc:(-11.)
             ~vbe_old:0.65 ~vbc_old:(-11.) in
  (* 10 V more reverse bias on vbc: ic scales by the Early factors. *)
  check_close ~tol:1e-3 "ic ratio"
    ((1. +. (11. /. 50.)) /. (1. +. (1. /. 50.)))
    (d2.ic /. d1.ic);
  (* Output conductance go ~ ic/vaf. *)
  let ss = Devices.Bjt_model.small_signal p ~area:1. ~temp_c:27. ~vbe:0.65
             ~vbc:(-1.) in
  let go = -.(ss.gout +. ss.gmu) in
  check_close ~tol:2e-2 "go ~ ic/(vaf+vce)" (d1.ic /. (50. +. 1.65)) go

let test_bjt_jacobian_consistency () =
  (* Finite-difference check of the analytic Jacobian. *)
  let p = npn_params ~extra:[ ("vaf", 80.); ("br", 2.) ] () in
  let at vbe vbc =
    Devices.Bjt_model.dc p ~area:1. ~temp_c:27. ~vbe ~vbc ~vbe_old:vbe
      ~vbc_old:vbc
  in
  let vbe = 0.62 and vbc = -2.3 and h = 1e-7 in
  let d0 = at vbe vbc in
  let dbe = at (vbe +. h) vbc in
  let dbc = at vbe (vbc +. h) in
  check_close ~tol:1e-4 "d ic/d vbe" ((dbe.ic -. d0.ic) /. h) d0.d_ic_dvbe;
  check_close ~tol:1e-4 "d ic/d vbc" ((dbc.ic -. d0.ic) /. h) d0.d_ic_dvbc;
  check_close ~tol:1e-4 "d ib/d vbe" ((dbe.ib -. d0.ib) /. h) d0.d_ib_dvbe;
  check_close ~tol:1e-4 "d ib/d vbc" ((dbc.ib -. d0.ib) /. h) d0.d_ib_dvbc

(* ---------- MOSFET ---------- *)

let mos_params ?(extra = []) () =
  Devices.Mos_model.params_of_model
    (model Circuit.Netlist.Nmos
       ([ ("kp", 100e-6); ("vto", 1.) ] @ extra))

let test_mos_regions () =
  let p = mos_params () in
  let dc = Devices.Mos_model.dc p ~w:10e-6 ~l:1e-6 in
  let cutoff = dc ~vgs:0.5 ~vds:2. in
  Alcotest.(check bool) "cutoff" true (cutoff.region = Devices.Mos_model.Cutoff);
  check_close "cutoff current" 0. cutoff.ids;
  let sat = dc ~vgs:2. ~vds:3. in
  Alcotest.(check bool) "saturation" true
    (sat.region = Devices.Mos_model.Saturation);
  (* beta = 100u * 10 = 1e-3; id = beta/2 * 1 = 0.5 mA *)
  check_close ~tol:1e-9 "sat current" 0.5e-3 sat.ids;
  check_close ~tol:1e-9 "gm = beta*vov" 1e-3 sat.d_ids_dvgs;
  let triode = dc ~vgs:3. ~vds:0.5 in
  Alcotest.(check bool) "triode" true
    (triode.region = Devices.Mos_model.Triode);
  check_close ~tol:1e-9 "triode current"
    (1e-3 *. ((2. *. 0.5) -. (0.5 *. 0.5 /. 2.)))
    triode.ids

let test_mos_symmetry () =
  (* Drain-source inversion: ids(vgs,vds) = -ids'(vgd,-vds). *)
  let p = mos_params ~extra:[ ("lambda", 0.02) ] () in
  let dc = Devices.Mos_model.dc p ~w:10e-6 ~l:1e-6 in
  let fwd = dc ~vgs:2.5 ~vds:1. in
  let rev = dc ~vgs:1.5 ~vds:(-1.) in
  (* vgd of the reversed device = 1.5 + 1 = 2.5, |vds| = 1: same channel. *)
  check_close ~tol:1e-9 "inverted current" (-.fwd.ids) rev.ids;
  Alcotest.(check bool) "flagged inverted" true rev.inverted

let test_mos_jacobian_consistency () =
  let p = mos_params ~extra:[ ("lambda", 0.05) ] () in
  let dc = Devices.Mos_model.dc p ~w:20e-6 ~l:2e-6 in
  List.iter
    (fun (vgs, vds) ->
      let h = 1e-7 in
      let d0 = dc ~vgs ~vds in
      let dg = dc ~vgs:(vgs +. h) ~vds in
      let dd = dc ~vgs ~vds:(vds +. h) in
      check_close ~tol:1e-3
        (Printf.sprintf "gm at (%g,%g)" vgs vds)
        ((dg.ids -. d0.ids) /. h)
        d0.d_ids_dvgs;
      check_close ~tol:1e-3
        (Printf.sprintf "gds at (%g,%g)" vgs vds)
        ((dd.ids -. d0.ids) /. h)
        d0.d_ids_dvds)
    [ (2., 3.); (3., 0.5); (2., -1.5); (0.5, 1.) ]

let test_mos_caps () =
  let p = mos_params ~extra:[ ("cox", 2e-3); ("cgso", 1e-10); ("cgdo", 1e-10) ] () in
  let ss = Devices.Mos_model.small_signal p ~w:10e-6 ~l:1e-6 ~vgs:2. ~vds:3. in
  let cox_total = 2e-3 *. 10e-6 *. 1e-6 in
  check_close ~tol:1e-9 "cgs in saturation"
    ((1e-10 *. 10e-6) +. (2. /. 3. *. cox_total))
    ss.cgs;
  check_close ~tol:1e-9 "cgd = overlap only" (1e-10 *. 10e-6) ss.cgd

(* ---------- waveforms ---------- *)

let test_pulse_eval () =
  let w =
    Circuit.Netlist.Pulse
      { v1 = 0.; v2 = 5.; delay = 1e-6; rise = 1e-7; fall = 2e-7;
        width = 1e-6; period = 0. }
  in
  let at t = Devices.Waveshape.eval ~dc:0. (Some w) t in
  check_close "before delay" 0. (at 0.5e-6);
  check_close "mid rise" 2.5 (at (1e-6 +. 0.5e-7));
  check_close "on top" 5. (at 1.5e-6);
  check_close "mid fall" 2.5 (at (1e-6 +. 1e-7 +. 1e-6 +. 1e-7));
  check_close "after" 0. (at 3e-6)

let test_pulse_periodic () =
  let w =
    Circuit.Netlist.Pulse
      { v1 = 0.; v2 = 1.; delay = 0.; rise = 1e-9; fall = 1e-9;
        width = 0.5e-6; period = 1e-6 }
  in
  let at t = Devices.Waveshape.eval ~dc:0. (Some w) t in
  check_close "first period high" 1. (at 0.25e-6);
  check_close "first period low" 0. (at 0.75e-6);
  check_close "second period high" 1. (at 1.25e-6)

let test_pwl_eval () =
  let w = Circuit.Netlist.Pwl [ (0., 0.); (1., 10.); (2., 10.); (3., 0.) ] in
  let at t = Devices.Waveshape.eval ~dc:0. (Some w) t in
  check_close "ramp" 5. (at 0.5);
  check_close "plateau" 10. (at 1.5);
  check_close "fall" 5. (at 2.5);
  check_close "hold after" 0. (at 10.)

let test_breakpoints () =
  let w =
    Circuit.Netlist.Pulse
      { v1 = 0.; v2 = 1.; delay = 1e-6; rise = 1e-7; fall = 1e-7;
        width = 1e-6; period = 0. }
  in
  let bps = Devices.Waveshape.breakpoints (Some w) ~tstop:1e-3 in
  Alcotest.(check int) "four edges" 4 (List.length bps);
  check_close "first edge" 1e-6 (List.hd bps)

let test_sine_eval () =
  let w = Circuit.Netlist.Sine
            { offset = 1.; ampl = 2.; freq = 1e3; delay = 0.; damping = 0. } in
  let at t = Devices.Waveshape.eval ~dc:0. (Some w) t in
  check_close "zero crossing" 1. (at 0.);
  check_close ~tol:1e-6 "quarter period" 3. (at 0.25e-3)

let () =
  Alcotest.run "devices"
    [ ("junction",
       [ Alcotest.test_case "guarded exp" `Quick test_guarded_exp;
         Alcotest.test_case "pnjlim" `Quick test_pnjlim ]);
      ("diode",
       [ Alcotest.test_case "I/V" `Quick test_diode_iv;
         Alcotest.test_case "area and temperature" `Quick
           test_diode_area_and_temp ]);
      ("bjt",
       [ Alcotest.test_case "forward active" `Quick test_bjt_forward_active;
         Alcotest.test_case "early effect" `Quick test_bjt_early_effect;
         Alcotest.test_case "jacobian vs finite differences" `Quick
           test_bjt_jacobian_consistency ]);
      ("mos",
       [ Alcotest.test_case "regions" `Quick test_mos_regions;
         Alcotest.test_case "drain-source symmetry" `Quick test_mos_symmetry;
         Alcotest.test_case "jacobian vs finite differences" `Quick
           test_mos_jacobian_consistency;
         Alcotest.test_case "capacitances" `Quick test_mos_caps ]);
      ("waveshape",
       [ Alcotest.test_case "pulse" `Quick test_pulse_eval;
         Alcotest.test_case "periodic pulse" `Quick test_pulse_periodic;
         Alcotest.test_case "pwl" `Quick test_pwl_eval;
         Alcotest.test_case "breakpoints" `Quick test_breakpoints;
         Alcotest.test_case "sine" `Quick test_sine_eval ]) ]
