test/test_circuit.ml: Alcotest Array Bytes Char Circuit Engine Expr Filename Float Format List Netlist Option Parser Printf QCheck QCheck_alcotest Random String Sys Topology Transform Unix
