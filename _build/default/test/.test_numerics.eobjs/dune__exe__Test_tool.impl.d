test/test_tool.ml: Alcotest Circuit Control Engine Filename Float List Numerics Printf Result Stability String Sys Tool Workloads
