test/test_integration.ml: Alcotest Circuit Control Engine Float List Numerics Option Printf Stability String Tool Workloads
