test/test_stability.ml: Alcotest Array Circuit Control Engine Float List Numerics Option Printf QCheck QCheck_alcotest Stability String Workloads
