test/test_workloads.ml: Alcotest Array Engine Float List Numerics Option Printf Stability Workloads
