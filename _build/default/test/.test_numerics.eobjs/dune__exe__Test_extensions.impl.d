test/test_extensions.ml: Alcotest Array Circuit Engine Float List Numerics Option Printf Stability String Tool Workloads
