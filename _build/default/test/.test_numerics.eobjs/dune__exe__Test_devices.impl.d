test/test_devices.ml: Alcotest Circuit Devices Float List Printf
