test/test_control.ml: Alcotest Array Bode Complex Control Float List Numerics Printf QCheck QCheck_alcotest Second_order Tf
