test/test_engine.ml: Alcotest Array Circuit Devices Engine Float List Netlist Numerics Option Printf QCheck QCheck_alcotest Random Stability Workloads
