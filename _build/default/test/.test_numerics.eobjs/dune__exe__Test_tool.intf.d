test/test_tool.mli:
