(* Engine analyses against analytic fixtures. *)

open Circuit

let check_close ?(tol = 1e-6) msg expected actual =
  let scale = Float.max 1. (Float.abs expected) in
  Alcotest.(check bool)
    (Printf.sprintf "%s: expected %.9g, got %.9g" msg expected actual)
    true
    (Float.abs (expected -. actual) <= tol *. scale)

(* ---------- DC ---------- *)

let test_divider () =
  let c = Netlist.empty ~title:"divider" () in
  let c = Netlist.vsource c "V1" "in" "0" (Netlist.dc_source 10.) in
  let c = Netlist.resistor c "R1" "in" "mid" 1e3 in
  let c = Netlist.resistor c "R2" "mid" "0" 3e3 in
  let op = Engine.Dcop.solve (Engine.Mna.compile c) in
  check_close "V(mid)" 7.5 (Engine.Dcop.node_v op "mid");
  check_close "I(V1)" (-.10. /. 4e3) (Engine.Dcop.branch_current op "V1")
    ~tol:1e-9

let test_dc_controlled_sources () =
  (* VCVS doubling a divider tap; CCCS mirroring a source current. *)
  let c = Netlist.empty ~title:"ctrl" () in
  let c = Netlist.vsource c "V1" "in" "0" (Netlist.dc_source 2.) in
  let c = Netlist.resistor c "R1" "in" "a" 1e3 in
  let c = Netlist.resistor c "R2" "a" "0" 1e3 in
  let c = Netlist.vcvs c "E1" "b" "0" "a" "0" 4. in
  let c = Netlist.resistor c "R3" "b" "0" 1e3 in
  let c = Netlist.add c (Netlist.Cccs { name = "F1"; npos = "0"; nneg = "f";
                                        vname = "V1"; gain = 2. }) in
  let c = Netlist.resistor c "R4" "f" "0" 1e3 in
  let op = Engine.Dcop.solve (Engine.Mna.compile c) in
  check_close "VCVS output" 4. (Engine.Dcop.node_v op "b");
  (* I(V1) = -(2V / 2k) = -1 mA; F pushes 2*I(V1) = -2 mA into f. *)
  check_close "CCCS output" (-2e-3 *. 1e3) (Engine.Dcop.node_v op "f")

let test_diode_clamp () =
  (* 5 V through 1 kOhm into a diode: V(d) ~ 0.6-0.7, consistent I/V. *)
  let c = Netlist.empty ~title:"diode" () in
  let c = Netlist.vsource c "V1" "in" "0" (Netlist.dc_source 5.) in
  let c = Netlist.resistor c "R1" "in" "d" 1e3 in
  let c =
    Netlist.add_model c
      { Netlist.model_name = "DX"; kind = Netlist.Dmodel;
        params = [ ("is", 1e-14) ] }
  in
  let c = Netlist.diode c "D1" "d" "0" "DX" in
  let op = Engine.Dcop.solve (Engine.Mna.compile c) in
  let vd = Engine.Dcop.node_v op "d" in
  Alcotest.(check bool) "diode voltage plausible" true (vd > 0.5 && vd < 0.8);
  (* KCL: resistor current equals diode current Is (exp(vd/vt)-1). *)
  let ir = (5. -. vd) /. 1e3 in
  let id = 1e-14 *. (exp (vd /. Devices.Const.thermal_voltage 27.) -. 1.) in
  check_close "diode current matches resistor" ir id ~tol:1e-4

let test_bjt_bias () =
  (* NPN with base divider and emitter degeneration: textbook bias point. *)
  let c = Netlist.empty ~title:"bjt bias" () in
  let c = Netlist.vsource c "VCC" "vcc" "0" (Netlist.dc_source 12.) in
  let c = Netlist.resistor c "RB1" "vcc" "vb" 47e3 in
  let c = Netlist.resistor c "RB2" "vb" "0" 10e3 in
  let c = Netlist.resistor c "RC" "vcc" "vc" 2e3 in
  let c = Netlist.resistor c "RE" "ve" "0" 1e3 in
  let c =
    Netlist.add_model c
      { Netlist.model_name = "QN"; kind = Netlist.Npn;
        params = [ ("is", 1e-15); ("bf", 200.) ] }
  in
  let c = Netlist.bjt c "Q1" ~c:"vc" ~b:"vb" ~e:"ve" "QN" in
  let op = Engine.Dcop.solve (Engine.Mna.compile c) in
  let vb = Engine.Dcop.node_v op "vb" in
  let ve = Engine.Dcop.node_v op "ve" in
  let vc = Engine.Dcop.node_v op "vc" in
  (* Thevenin base ~2.1 V, VE ~ VB - 0.7, IC ~ IE ~ VE/RE, VC = 12 - IC*2k. *)
  Alcotest.(check bool) "vbe forward" true (vb -. ve > 0.55 && vb -. ve < 0.75);
  let ic_expect = ve /. 1e3 in
  check_close "collector voltage" (12. -. (2e3 *. ic_expect)) vc ~tol:2e-2;
  Alcotest.(check bool) "forward active" true (vc > vb)

let test_pnp_bias () =
  (* Mirror image of the NPN fixture. *)
  let c = Netlist.empty ~title:"pnp bias" () in
  let c = Netlist.vsource c "VCC" "vcc" "0" (Netlist.dc_source 12.) in
  let c = Netlist.resistor c "RB1" "vcc" "vb" 10e3 in
  let c = Netlist.resistor c "RB2" "vb" "0" 47e3 in
  let c = Netlist.resistor c "RC" "vc" "0" 2e3 in
  let c = Netlist.resistor c "RE" "vcc" "ve" 1e3 in
  let c =
    Netlist.add_model c
      { Netlist.model_name = "QP"; kind = Netlist.Pnp;
        params = [ ("is", 1e-15); ("bf", 200.) ] }
  in
  let c = Netlist.bjt c "Q1" ~c:"vc" ~b:"vb" ~e:"ve" "QP" in
  let op = Engine.Dcop.solve (Engine.Mna.compile c) in
  let vb = Engine.Dcop.node_v op "vb" in
  let ve = Engine.Dcop.node_v op "ve" in
  let vc = Engine.Dcop.node_v op "vc" in
  Alcotest.(check bool) "veb forward" true (ve -. vb > 0.55 && ve -. vb < 0.75);
  let ic_expect = (12. -. ve) /. 1e3 in
  check_close "collector voltage" (2e3 *. ic_expect) vc ~tol:2e-2;
  Alcotest.(check bool) "forward active" true (vc < vb)

let test_nmos_bias () =
  let c = Netlist.empty ~title:"nmos" () in
  let c = Netlist.vsource c "VDD" "vdd" "0" (Netlist.dc_source 5.) in
  let c = Netlist.vsource c "VG" "g" "0" (Netlist.dc_source 2.) in
  let c = Netlist.resistor c "RD" "vdd" "d" 10e3 in
  let c =
    Netlist.add_model c
      { Netlist.model_name = "MN"; kind = Netlist.Nmos;
        params = [ ("kp", 100e-6); ("vto", 1.) ] }
  in
  let c = Netlist.mosfet ~w:10e-6 ~l:10e-6 c "M1" ~d:"d" ~g:"g" ~s:"0" ~b:"0" "MN" in
  let op = Engine.Dcop.solve (Engine.Mna.compile c) in
  (* beta = 100u * 1 = 100u; sat: id = 50u * (1)^2 = 50 uA; vd = 5 - 0.5. *)
  check_close "drain voltage" 4.5 (Engine.Dcop.node_v op "d") ~tol:1e-5

let test_homotopy_paths_reach_same_op () =
  (* Exercise the gmin-stepping and source-stepping fallbacks explicitly:
     both must land on the same operating point the direct Newton finds
     for the bipolar op-amp. *)
  let circ = Workloads.Opamp_bjt.buffer () in
  let mna = Engine.Mna.compile circ in
  let direct = Engine.Dcop.solve mna in
  Alcotest.(check bool) "direct converges directly" true
    (direct.Engine.Dcop.strategy = Engine.Dcop.Direct);
  List.iter
    (fun (tag, force, expected) ->
      let op = Engine.Dcop.solve ~force_strategy:force mna in
      Alcotest.(check bool)
        (tag ^ " strategy reported")
        true
        (op.Engine.Dcop.strategy = expected);
      List.iter
        (fun n ->
          check_close ~tol:1e-5
            (Printf.sprintf "%s V(%s)" tag n)
            (Engine.Dcop.node_v direct n)
            (Engine.Dcop.node_v op n))
        [ "out"; "o1"; "tail"; "nb" ])
    [ ("gmin", `Gmin_stepping, Engine.Dcop.Gmin_stepping);
      ("source", `Source_stepping, Engine.Dcop.Source_stepping) ]

(* ---------- AC ---------- *)

let test_rc_lowpass_ac () =
  let r = 1e3 and cap = 1e-9 in
  let c = Netlist.empty ~title:"rc" () in
  let c = Netlist.vsource c "V1" "in" "0" (Netlist.ac_source 1.) in
  let c = Netlist.resistor c "R1" "in" "out" r in
  let c = Netlist.capacitor c "C1" "out" "0" cap in
  let fc = 1. /. (2. *. Float.pi *. r *. cap) in
  let ac =
    Engine.Ac.run ~sweep:(Numerics.Sweep.decade (fc /. 100.) (fc *. 100.) 20) c
  in
  let w = Engine.Ac.v ac "out" in
  Array.iteri
    (fun k f ->
      let expected = 1. /. sqrt (1. +. ((f /. fc) ** 2.)) in
      check_close
        (Printf.sprintf "|H| at %g Hz" f)
        expected
        (Numerics.Cx.mag w.Engine.Waveform.Freq.h.(k))
        ~tol:1e-9)
    w.Engine.Waveform.Freq.freqs;
  (* Phase at fc = -45 degrees. *)
  let h_fc = Engine.Waveform.Freq.at w fc in
  check_close "phase at fc" (-45.) (Numerics.Cx.phase_deg h_fc) ~tol:1e-2

let test_rlc_resonance () =
  (* Series RLC driven by a voltage source; current peaks at f0 with
     Q = (1/R) sqrt(L/C). *)
  let r = 10. and l = 1e-3 and cap = 1e-9 in
  let c = Netlist.empty ~title:"rlc" () in
  let c = Netlist.vsource c "V1" "in" "0" (Netlist.ac_source 1.) in
  let c = Netlist.resistor c "R1" "in" "a" r in
  let c = Netlist.inductor c "L1" "a" "b" l in
  let c = Netlist.capacitor c "C1" "b" "0" cap in
  let f0 = 1. /. (2. *. Float.pi *. sqrt (l *. cap)) in
  let ac = Engine.Ac.run ~sweep:(Numerics.Sweep.List [| f0 |]) c in
  (* At resonance the L and C impedances cancel: I = V/R, V(b) = I/(jwC). *)
  let i = Engine.Ac.branch_i ac "V1" in
  check_close "resonant current" (1. /. r)
    (Numerics.Cx.mag i.Engine.Waveform.Freq.h.(0))
    ~tol:1e-6;
  let vb = Engine.Ac.v ac "b" in
  let q = sqrt (l /. cap) /. r in
  check_close "capacitor voltage magnification" q
    (Numerics.Cx.mag vb.Engine.Waveform.Freq.h.(0))
    ~tol:1e-6

let test_bjt_amp_ac_gain () =
  (* Common-emitter with ideal bias: gain = -gm*RC at low frequency. *)
  let c = Netlist.empty ~title:"ce amp" () in
  let c = Netlist.vsource c "VCC" "vcc" "0" (Netlist.dc_source 12.) in
  let c = Netlist.vsource c "VB" "vb" "0"
            { (Netlist.dc_source 0.7) with ac_mag = 1e-3 } in
  let c = Netlist.resistor c "RC" "vcc" "vc" 1e3 in
  let c =
    Netlist.add_model c
      { Netlist.model_name = "QN"; kind = Netlist.Npn;
        params = [ ("is", 1e-15); ("bf", 100.) ] }
  in
  let c = Netlist.bjt c "Q1" ~c:"vc" ~b:"vb" ~e:"0" "QN" in
  let mna = Engine.Mna.compile c in
  let op = Engine.Dcop.solve mna in
  let ops = Engine.Dcop.device_ops op in
  let gm =
    match List.assoc "Q1" ops with
    | Engine.Dcop.Op_bjt { gm; _ } -> gm
    | _ -> Alcotest.fail "Q1 not a BJT"
  in
  let ac = Engine.Ac.run_compiled ~op ~sweep:(Numerics.Sweep.List [| 1e3 |]) mna in
  let vout = Engine.Ac.v ac "vc" in
  let gain = Numerics.Cx.mag vout.Engine.Waveform.Freq.h.(0) /. 1e-3 in
  check_close "CE gain = gm*RC" (gm *. 1e3) gain ~tol:1e-3;
  (* The common-emitter stage inverts: phase must be 180, not 0 — this
     pins the direction of the linearised transconductance stamps. *)
  check_close "CE phase = 180 deg" 180.
    (Float.abs (Numerics.Cx.phase_deg vout.Engine.Waveform.Freq.h.(0)))
    ~tol:1e-3

let test_mos_cs_ac_phase () =
  (* NMOS common-source: inverting at low frequency; the pole from an
     explicit load capacitor must produce lagging (negative-going) phase. *)
  let c = Netlist.empty ~title:"cs amp" () in
  let c = Netlist.vsource c "VDD" "vdd" "0" (Netlist.dc_source 5.) in
  let c = Netlist.vsource c "VG" "g" "0" (Netlist.ac_source ~dc:2. 1e-3) in
  let c = Netlist.resistor c "RD" "vdd" "d" 10e3 in
  let c = Netlist.capacitor c "CD" "d" "0" 1e-9 in
  let c =
    Netlist.add_model c
      { Netlist.model_name = "MN"; kind = Netlist.Nmos;
        params = [ ("kp", 100e-6); ("vto", 1.) ] }
  in
  let c = Netlist.mosfet ~w:10e-6 ~l:10e-6 c "M1" ~d:"d" ~g:"g" ~s:"0" ~b:"0" "MN" in
  let fp = 1. /. (2. *. Float.pi *. 10e3 *. 1e-9) in
  let ac = Engine.Ac.run ~sweep:(Numerics.Sweep.List [| fp /. 100.; fp |]) c in
  let vout = Engine.Ac.v ac "d" in
  let ph0 = Numerics.Cx.phase_deg vout.Engine.Waveform.Freq.h.(0) in
  let php = Numerics.Cx.phase_deg vout.Engine.Waveform.Freq.h.(1) in
  check_close "inverting at low f" 180. (Float.abs ph0) ~tol:1e-2;
  (* At the pole the phase lags 45 degrees from 180: 135 in magnitude. *)
  check_close "lagging pole" 135. (Float.abs php) ~tol:1e-2

(* Random one-port impedance trees: the circuit-level AC solution must
   match the impedance evaluated by independent recursive complex
   arithmetic. (Composing the trees as rational polynomials in s instead
   is numerically hopeless at physical component scales — the coefficient
   ranges exhaust double precision by degree six — which is precisely why
   simulators solve the complex system rather than build symbolic
   transfer functions.) *)
type zt = Zr of float | Zl of float | Zc of float | Zser of zt * zt
        | Zpar of zt * zt

let rec z_eval tree s =
  let open Numerics.Cx in
  match tree with
  | Zr r -> of_float r
  | Zl l -> scale l s
  | Zc c -> inv (scale c s)
  | Zser (a, b) -> z_eval a s +: z_eval b s
  | Zpar (a, b) ->
    let za = z_eval a s and zb = z_eval b s in
    za *: zb /: (za +: zb)

(* Build the same one-port between [top] and ground in a netlist. *)
let rec z_build c counter tree top bot =
  let fresh prefix =
    incr counter;
    Printf.sprintf "%s%d" prefix !counter
  in
  match tree with
  | Zr r -> Netlist.resistor c (fresh "R") top bot r
  | Zl l -> Netlist.inductor c (fresh "L") top bot l
  | Zc cap -> Netlist.capacitor c (fresh "C") top bot cap
  | Zser (a, b) ->
    let mid = fresh "n" in
    let c = z_build c counter a top mid in
    z_build c counter b mid bot
  | Zpar (a, b) ->
    let c = z_build c counter a top bot in
    z_build c counter b top bot

let rec gen_tree st depth =
  if depth = 0 || Random.State.int st 3 = 0 then
    match Random.State.int st 3 with
    | 0 -> Zr (10. ** (1. +. Random.State.float st 4.))
    | 1 -> Zl (10. ** (-6. +. Random.State.float st 3.))
    | _ -> Zc (10. ** (-12. +. Random.State.float st 4.))
  else if Random.State.int st 2 = 0 then
    Zser (gen_tree st (depth - 1), gen_tree st (depth - 1))
  else Zpar (gen_tree st (depth - 1), gen_tree st (depth - 1))

(* Inductor loops (two DC shorts in parallel) make the MNA matrix
   genuinely singular — the same circuits real simulators reject — so
   degenerate trees are excluded from generation. *)
let rec dc_short = function
  | Zr _ | Zc _ -> false
  | Zl _ -> true
  | Zser (a, b) -> dc_short a && dc_short b
  | Zpar (a, b) -> dc_short a || dc_short b

let rec has_inductor_loop = function
  | Zr _ | Zl _ | Zc _ -> false
  | Zser (a, b) -> has_inductor_loop a || has_inductor_loop b
  | Zpar (a, b) ->
    (dc_short a && dc_short b) || has_inductor_loop a
    || has_inductor_loop b

(* A tree with no DC path to ground (all-capacitive) or no resistance can
   make the probe degenerate; wrap with a large shunt R to keep the one
   port well-posed without disturbing mid-band values. *)
let prop_one_port_impedance =
  QCheck.Test.make ~name:"random one-port: circuit AC = symbolic Z(s)"
    ~count:60
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let st = Random.State.make [| seed; 2024 |] in
      let tree = gen_tree st 3 in
      QCheck.assume (not (has_inductor_loop tree));
      let rbig = 1e9 in
      let c = Netlist.empty ~title:"one-port" () in
      let c = Netlist.resistor c "RBIG" "p" "0" rbig in
      let counter = ref 0 in
      let c = z_build c counter tree "p" "0" in
      let mna = Engine.Mna.compile c in
      let op = Engine.Dcop.solve mna in
      let ip = Engine.Mna.node_index mna "p" in
      List.for_all
        (fun f ->
          (* gmin would shunt every node with 1e-12 S, which the symbolic
             reference does not model; make it negligible. *)
          let lu =
            Engine.Ac.factor_at ~gmin:1e-21 ~op
              ~omega:(2. *. Float.pi *. f) mna
          in
          let b = Array.make mna.Engine.Mna.size Numerics.Cx.zero in
          b.(ip) <- Numerics.Cx.one;
          let z_circ = (Numerics.Cmat.lu_solve lu b).(ip) in
          let s = Numerics.Cx.j_omega (2. *. Float.pi *. f) in
          let z_sym = z_eval (Zpar (tree, Zr rbig)) s in
          Numerics.Cx.close ~tol:3e-7 z_circ z_sym)
        [ 10.; 1e3; 1e5; 1e7 ])

(* ---------- transient ---------- *)

let test_rc_charge_transient () =
  let r = 1e3 and cap = 1e-6 in
  let tau = r *. cap in
  let c = Netlist.empty ~title:"rc tran" () in
  let c =
    Netlist.vsource c "V1" "in" "0"
      (Netlist.wave_source
         (Netlist.Pulse { v1 = 0.; v2 = 1.; delay = 0.; rise = 1e-9;
                          fall = 1e-9; width = 1.; period = 0. }))
  in
  let c = Netlist.resistor c "R1" "in" "out" r in
  let c = Netlist.capacitor c "C1" "out" "0" cap in
  let res = Engine.Transient.run ~tstop:(5. *. tau) ~tstep:(tau /. 200.) c in
  let w = Engine.Transient.v res "out" in
  [ 0.5; 1.; 2.; 4. ]
  |> List.iter (fun mult ->
      let t = mult *. tau in
      let expected = 1. -. exp (-.t /. tau) in
      check_close
        (Printf.sprintf "v(out) at %g tau" mult)
        expected
        (Engine.Waveform.Real.value_at w t)
        ~tol:5e-3)

let test_lc_oscillation_transient () =
  (* Underdamped series RLC step: ringing frequency ~ damped natural
     frequency; overshoot matches the zeta formula. *)
  let r = 20. and l = 1e-3 and cap = 1e-9 in
  let c = Netlist.empty ~title:"rlc tran" () in
  let c =
    Netlist.vsource c "V1" "in" "0"
      (Netlist.wave_source
         (Netlist.Pulse { v1 = 0.; v2 = 1.; delay = 0.; rise = 1e-9;
                          fall = 1e-9; width = 1.; period = 0. }))
  in
  let c = Netlist.resistor c "R1" "in" "a" r in
  let c = Netlist.inductor c "L1" "a" "b" l in
  let c = Netlist.capacitor c "C1" "b" "0" cap in
  let w0 = 1. /. sqrt (l *. cap) in
  let zeta = r /. 2. *. sqrt (cap /. l) in
  let t_end = 20. /. (zeta *. w0) in
  let res = Engine.Transient.run ~tstop:t_end ~tstep:(1e-2 /. w0) c in
  let w = Engine.Transient.v res "b" in
  let m = Engine.Measure.step_metrics ~initial:0. ~final:1. w in
  let overshoot_expected =
    100. *. exp (-.Float.pi *. zeta /. sqrt (1. -. (zeta *. zeta)))
  in
  check_close "overshoot" overshoot_expected m.overshoot_pct ~tol:2e-2

(* ---------- noise ---------- *)

let test_noise_divider () =
  (* Two equal resistors to a stiff source: S_out = 4kT (R1 || R2). *)
  let c = Netlist.empty ~title:"div" () in
  let c = Netlist.vsource c "V1" "in" "0" (Netlist.dc_source 1.) in
  let c = Netlist.resistor c "R1" "in" "out" 2e3 in
  let c = Netlist.resistor c "R2" "out" "0" 2e3 in
  let r =
    Engine.Noise.run ~sweep:(Numerics.Sweep.List [| 1e3 |]) ~output:"out" c
  in
  let kt = Devices.Const.boltzmann *. Devices.Const.kelvin_of_celsius 27. in
  check_close ~tol:1e-6 "4kT(R1||R2)" (4. *. kt *. 1e3)
    r.Engine.Noise.total.(0)

let test_noise_ktc () =
  (* The classic: total output noise of an RC filter is kT/C, independent
     of R. *)
  List.iter
    (fun rval ->
      let cval = 1e-9 in
      let circ = Workloads.Filters.rc_lowpass ~r:rval ~c:cval () in
      let fc = Workloads.Filters.rc_lowpass_pole ~r:rval ~c:cval () in
      let res =
        Engine.Noise.run
          ~sweep:(Numerics.Sweep.decade (fc /. 1e4) (fc *. 1e4) 40)
          ~output:"out" circ
      in
      let kt = Devices.Const.boltzmann *. Devices.Const.kelvin_of_celsius 27. in
      check_close ~tol:2e-3
        (Printf.sprintf "kT/C with R=%g" rval)
        (sqrt (kt /. cval))
        (Engine.Noise.total_rms res))
    [ 100.; 10e3 ]

let test_noise_flicker_corner () =
  (* With kf set, the 1/f term must dominate at low frequency and vanish
     at high frequency. *)
  let c = Netlist.empty ~title:"flicker" () in
  let c = Netlist.vsource c "VCC" "vcc" "0" (Netlist.dc_source 5.) in
  let c = Netlist.resistor c "RC" "vcc" "out" 10e3 in
  (* The base must not be pinned by the ideal source, or base-current
     noise has no transfer to the output. *)
  let c = Netlist.vsource c "VB" "vb" "0" (Netlist.dc_source 0.68) in
  let c = Netlist.resistor c "RB" "vb" "b" 10e3 in
  let c =
    Netlist.add_model c
      { Netlist.model_name = "QF"; kind = Netlist.Npn;
        params = [ ("is", 1e-16); ("bf", 100.); ("kf", 1e-12); ("af", 1.) ] }
  in
  let c = Netlist.bjt c "Q1" ~c:"out" ~b:"b" ~e:"0" "QF" in
  let r =
    Engine.Noise.run ~sweep:(Numerics.Sweep.List [| 1.; 1e6 |]) ~output:"out" c
  in
  let flicker_share k =
    let fl =
      List.find_map
        (fun (co : Engine.Noise.contribution) ->
          if co.Engine.Noise.kind = "flicker" then
            Some co.Engine.Noise.psd.(k)
          else None)
        r.Engine.Noise.contributions
      |> Option.get
    in
    fl /. r.Engine.Noise.total.(k)
  in
  Alcotest.(check bool) "flicker dominates at 1 Hz" true
    (flicker_share 0 > 0.9);
  Alcotest.(check bool) "flicker minor at 1 MHz" true
    (flicker_share 1 < 0.2)

(* ---------- poles ---------- *)

let test_poles_rlc () =
  let fn, zeta = Workloads.Filters.parallel_rlc_theory () in
  let poles = Engine.Poles.of_circuit (Workloads.Filters.parallel_rlc ()) in
  match Engine.Poles.complex_pairs poles with
  | [ p ] ->
    check_close ~tol:1e-6 "pole frequency" fn p.Engine.Poles.freq_hz;
    check_close ~tol:1e-6 "pole damping" zeta p.Engine.Poles.zeta
  | l -> Alcotest.failf "expected 1 complex pair, got %d" (List.length l)

let test_poles_rc_chain () =
  (* Three cascaded (buffered) RC sections: three real poles at their
     1/(2 pi RC) frequencies, no complex pairs. *)
  let open Netlist in
  let c = empty ~title:"rc chain" () in
  let c = vsource c "V1" "in" "0" (ac_source 1.) in
  let add c k r cap inn out =
    let c = resistor c (Printf.sprintf "R%d" k) inn (out ^ "i") r in
    let c = capacitor c (Printf.sprintf "C%d" k) (out ^ "i") "0" cap in
    vcvs c (Printf.sprintf "E%d" k) out "0" (out ^ "i") "0" 1.
  in
  let c = add c 1 1e3 1e-9 "in" "a" in
  let c = add c 2 1e3 1e-10 "a" "b" in
  let c = add c 3 1e3 1e-11 "b" "c" in
  let poles = Engine.Poles.of_circuit c in
  Alcotest.(check int) "no complex pairs" 0
    (List.length (Engine.Poles.complex_pairs poles));
  let freqs =
    List.map (fun p -> p.Engine.Poles.freq_hz) poles |> List.sort compare
  in
  let expected =
    List.map
      (fun cap -> 1. /. (2. *. Float.pi *. 1e3 *. cap))
      [ 1e-9; 1e-10; 1e-11 ]
    |> List.sort compare
  in
  List.iter2 (fun e g -> check_close ~tol:1e-6 "pole freq" e g) expected freqs

let test_poles_detect_rhp () =
  (* A negative-resistance tank has right-half-plane poles. *)
  let open Netlist in
  let c = empty ~title:"rhp" () in
  let c = inductor c "L1" "n" "0" 1e-6 in
  let c = capacitor c "C1" "n" "0" 1e-9 in
  (* VCCS implementing -1/200 S across its own port. *)
  let c = vccs c "GNEG" "n" "0" "n" "0" (-5e-3) in
  let poles = Engine.Poles.of_circuit c in
  Alcotest.(check bool) "unstable detected" false (Engine.Poles.is_stable poles)

let test_adaptive_rc_accuracy () =
  (* Adaptive integration of the RC charge matches the exponential. *)
  let r = 1e3 and cap = 1e-6 in
  let tau = r *. cap in
  let c = Netlist.empty ~title:"rc tran" () in
  let c =
    Netlist.vsource c "V1" "in" "0"
      (Netlist.wave_source
         (Netlist.Pulse { v1 = 0.; v2 = 1.; delay = 0.; rise = 1e-9;
                          fall = 1e-9; width = 1.; period = 0. }))
  in
  let c = Netlist.resistor c "R1" "in" "out" r in
  let c = Netlist.capacitor c "C1" "out" "0" cap in
  let res =
    Engine.Transient.run_adaptive ~tstop:(5. *. tau)
      ~dt_start:(tau /. 1000.) ~lte_tol:1e-4 c
  in
  let w = Engine.Transient.v res "out" in
  List.iter
    (fun mult ->
      let t = mult *. tau in
      check_close ~tol:2e-3
        (Printf.sprintf "adaptive v(out) at %g tau" mult)
        (1. -. exp (-.t /. tau))
        (Engine.Waveform.Real.value_at w t))
    [ 0.5; 1.; 2.; 4. ]

let test_adaptive_cheaper_same_answer () =
  (* On the ringing RLC the adaptive driver needs far fewer points for the
     same overshoot measurement. *)
  let circ = Workloads.Filters.series_rlc_step () in
  let _, zeta = Workloads.Filters.series_rlc_theory () in
  let fixed = Engine.Transient.run ~tstop:60e-6 ~tstep:10e-9 circ in
  let adap =
    Engine.Transient.run_adaptive ~tstop:60e-6 ~dt_start:10e-9
      ~lte_tol:2e-4 circ
  in
  Alcotest.(check bool)
    (Printf.sprintf "fewer points (%d vs %d)"
       (Array.length adap.Engine.Transient.times)
       (Array.length fixed.Engine.Transient.times))
    true
    (Array.length adap.Engine.Transient.times
     < Array.length fixed.Engine.Transient.times / 3);
  let os r =
    (Engine.Measure.step_metrics ~initial:0. ~final:1.
       (Engine.Transient.v r "b"))
      .Engine.Measure.overshoot_pct
  in
  let expected =
    100. *. exp (-.Float.pi *. zeta /. sqrt (1. -. (zeta *. zeta)))
  in
  check_close ~tol:2e-2 "fixed overshoot" expected (os fixed);
  check_close ~tol:2e-2 "adaptive overshoot" expected (os adap)

(* ---------- mutual inductance ---------- *)

let double_tuned ~k =
  let l = 1e-6 and cap = 1e-9 and r = 3e3 in
  let c = Netlist.empty ~title:"double tuned" () in
  let c = Netlist.inductor c "L1" "n1" "0" l in
  let c = Netlist.capacitor c "C1" "n1" "0" cap in
  let c = Netlist.resistor c "R1" "n1" "0" r in
  let c = Netlist.inductor c "L2" "n2" "0" l in
  let c = Netlist.capacitor c "C2" "n2" "0" cap in
  let c = Netlist.resistor c "R2" "n2" "0" r in
  let c = Netlist.mutual c "K1" ~l1:"L1" ~l2:"L2" ~k in
  (c, 1. /. (2. *. Float.pi *. sqrt (l *. cap)))

let test_mutual_split_modes () =
  (* Two identical coupled tanks split into modes at f0/sqrt(1 +/- k). *)
  let k = 0.2 in
  let circ, f0 = double_tuned ~k in
  let pairs = Engine.Poles.complex_pairs (Engine.Poles.of_circuit circ) in
  match pairs with
  | [ lo; hi ] ->
    check_close ~tol:1e-4 "lower mode" (f0 /. sqrt (1. +. k))
      lo.Engine.Poles.freq_hz;
    check_close ~tol:1e-4 "upper mode" (f0 /. sqrt (1. -. k))
      hi.Engine.Poles.freq_hz
  | l -> Alcotest.failf "expected 2 pairs, got %d" (List.length l)

let test_mutual_stability_plot_sees_both () =
  let k = 0.2 in
  let circ, f0 = double_tuned ~k in
  let res = Stability.Analysis.single_node circ "n1" in
  let pole_freqs =
    res.Stability.Analysis.peaks
    |> List.filter (fun (p : Stability.Peaks.peak) ->
        p.kind = Stability.Peaks.Complex_pole)
    |> List.map (fun (p : Stability.Peaks.peak) -> p.Stability.Peaks.freq)
    |> List.sort compare
  in
  match pole_freqs with
  | [ lo; hi ] ->
    check_close ~tol:2e-3 "plot lower mode" (f0 /. sqrt (1. +. k)) lo;
    check_close ~tol:2e-3 "plot upper mode" (f0 /. sqrt (1. -. k)) hi
  | l -> Alcotest.failf "expected 2 pole peaks, got %d" (List.length l)

let test_mutual_transient_coupling () =
  (* Drive tank 1 with a step; energy must appear in tank 2 only through
     the coupling (k = 0 keeps it silent). *)
  let build k =
    let circ, _ = double_tuned ~k in
    let circ = Netlist.remove_device circ "R1" in
    let circ =
      Netlist.vsource circ "VS" "drive" "0"
        (Netlist.wave_source
           (Netlist.Pulse { v1 = 0.; v2 = 1.; delay = 0.; rise = 1e-9;
                            fall = 1e-9; width = 1.; period = 0. }))
    in
    Netlist.resistor circ "RS" "drive" "n1" 1e3
  in
  let swing k =
    let tr = Engine.Transient.run ~tstop:2e-6 ~tstep:1e-9 (build k) in
    let w = Engine.Transient.v tr "n2" in
    let _, hi = Engine.Waveform.Real.maximum w in
    let _, lo = Engine.Waveform.Real.minimum w in
    hi -. lo
  in
  let coupled = swing 0.3 in
  let uncoupled = swing 1e-6 in
  Alcotest.(check bool)
    (Printf.sprintf "coupling transfers energy (%.3g vs %.3g)" coupled
       uncoupled)
    true
    (coupled > 50. *. uncoupled && coupled > 0.05)

(* ---------- loop gain ---------- *)

(* Reference loop: VCVS gain A with two RC poles, unity feedback via an
   explicit wire we can break. A unity buffer between the RC stages removes
   inter-stage loading so L(s) = A / ((1+s/p1)(1+s/p2)) holds exactly. *)
let two_pole_loop ~gain_a ~r1 ~c1 ~r2 ~c2 =
  let open Netlist in
  let c = empty ~title:"two-pole loop" () in
  (* error amp: e = A*(vin - fb) built as VCVS with differential input *)
  let c = vsource c "VIN" "in" "0" (ac_source 0.) in
  let c = vcvs c "EAMP" "x1" "0" "in" "fb" gain_a in
  let c = resistor c "R1" "x1" "x2" r1 in
  let c = capacitor c "C1" "x2" "0" c1 in
  let c = vcvs c "EBUF" "x2b" "0" "x2" "0" 1. in
  let c = resistor c "R2" "x2b" "x3" r2 in
  let c = capacitor c "C2" "x3" "0" c2 in
  (* feedback wire: a 0-ohm-ish resistor we can break at terminal 0 *)
  let c = resistor c "RFB" "x3" "fb" 1e-3 in
  let c = resistor c "RLOAD" "fb" "0" 1e12 in
  c

let analytic_two_pole ~gain_a ~p1 ~p2 f =
  let open Numerics.Cx in
  let s = j_omega (2. *. Float.pi *. f) in
  let den1 = one +: scale (1. /. (2. *. Float.pi *. p1)) s in
  let den2 = one +: scale (1. /. (2. *. Float.pi *. p2)) s in
  of_float gain_a /: (den1 *: den2)

let test_loopgain_methods_agree () =
  let gain_a = 1000. and r1 = 1e3 and c1 = 1e-9 and r2 = 10e3 and c2 = 10e-12 in
  let p1 = 1. /. (2. *. Float.pi *. r1 *. c1) in
  let p2 = 1. /. (2. *. Float.pi *. r2 *. c2) in
  let circ = two_pole_loop ~gain_a ~r1 ~c1 ~r2 ~c2 in
  let sweep = Numerics.Sweep.decade 1e3 1e9 10 in
  (* Break at the VCVS inverting control input (terminal 3 = cneg = fb):
     that input draws no current, an ideal unilateral high-impedance
     point. *)
  let lc = Engine.Loopgain.lc_break ~sweep circ ~device:"EAMP" ~terminal:3 in
  let mb = Engine.Loopgain.middlebrook ~sweep circ ~device:"EAMP" ~terminal:3 in
  Array.iteri
    (fun k f ->
      let expected = analytic_two_pole ~gain_a ~p1 ~p2 f in
      let got_lc = lc.Engine.Loopgain.loop_gain.Engine.Waveform.Freq.h.(k) in
      let got_mb = mb.Engine.Loopgain.loop_gain.Engine.Waveform.Freq.h.(k) in
      Alcotest.(check bool)
        (Printf.sprintf "lc-break matches analytic at %g Hz" f)
        true
        (Numerics.Cx.close ~tol:1e-3 expected got_lc);
      Alcotest.(check bool)
        (Printf.sprintf "middlebrook matches analytic at %g Hz" f)
        true
        (Numerics.Cx.close ~tol:1e-3 expected got_mb))
    lc.Engine.Loopgain.freqs

let test_loopgain_margins () =
  (* Place the second pole at the unity crossover: PM ~ 52 degrees
     (one-pole rolloff to crossover at A*p1 with 45 deg extra lag). *)
  let gain_a = 100. and r1 = 1e3 and c1 = 1.59e-7 and r2 = 1e3 in
  let p1 = 1. /. (2. *. Float.pi *. r1 *. c1) in
  (* unity crossover of one-pole loop ~ A*p1 = 100 kHz *)
  let fu = gain_a *. p1 in
  let c2 = 1. /. (2. *. Float.pi *. r2 *. fu) in
  let circ = two_pole_loop ~gain_a ~r1 ~c1 ~r2 ~c2 in
  let sweep = Numerics.Sweep.decade 10. 1e8 50 in
  let mb = Engine.Loopgain.middlebrook ~sweep circ ~device:"EAMP" ~terminal:3 in
  let m = Engine.Loopgain.margins mb in
  (match m.Engine.Measure.phase_margin_deg with
   | Some pm -> Alcotest.(check bool)
                  (Printf.sprintf "PM ~ 45-55 deg, got %g" pm)
                  true (pm > 40. && pm < 60.)
   | None -> Alcotest.fail "no phase margin found")

let () =
  Alcotest.run "engine"
    [ ("dc",
       [ Alcotest.test_case "resistive divider" `Quick test_divider;
         Alcotest.test_case "controlled sources" `Quick
           test_dc_controlled_sources;
         Alcotest.test_case "diode clamp" `Quick test_diode_clamp;
         Alcotest.test_case "bjt bias" `Quick test_bjt_bias;
         Alcotest.test_case "pnp bias" `Quick test_pnp_bias;
         Alcotest.test_case "nmos bias" `Quick test_nmos_bias;
         Alcotest.test_case "homotopy fallbacks" `Quick
           test_homotopy_paths_reach_same_op ]);
      ("ac",
       [ Alcotest.test_case "rc lowpass" `Quick test_rc_lowpass_ac;
         Alcotest.test_case "rlc resonance" `Quick test_rlc_resonance;
         Alcotest.test_case "bjt ce gain" `Quick test_bjt_amp_ac_gain;
         Alcotest.test_case "mos cs phase sign" `Quick
           test_mos_cs_ac_phase ]);
      ( "one-port-props",
        List.map QCheck_alcotest.to_alcotest [ prop_one_port_impedance ] );
      ("transient",
       [ Alcotest.test_case "rc charge" `Quick test_rc_charge_transient;
         Alcotest.test_case "rlc ringing" `Quick
           test_lc_oscillation_transient ]);
      ("noise",
       [ Alcotest.test_case "divider 4kT(R1||R2)" `Quick test_noise_divider;
         Alcotest.test_case "kT/C" `Quick test_noise_ktc;
         Alcotest.test_case "flicker corner" `Quick
           test_noise_flicker_corner ]);
      ("poles",
       [ Alcotest.test_case "rlc pair" `Quick test_poles_rlc;
         Alcotest.test_case "rc chain real poles" `Quick
           test_poles_rc_chain;
         Alcotest.test_case "rhp detection" `Quick test_poles_detect_rhp ]);
      ("adaptive",
       [ Alcotest.test_case "rc accuracy" `Quick test_adaptive_rc_accuracy;
         Alcotest.test_case "cheaper, same answer" `Quick
           test_adaptive_cheaper_same_answer ]);
      ("mutual",
       [ Alcotest.test_case "split modes (poles)" `Quick
           test_mutual_split_modes;
         Alcotest.test_case "split modes (stability plot)" `Quick
           test_mutual_stability_plot_sees_both;
         Alcotest.test_case "transient coupling" `Quick
           test_mutual_transient_coupling ]);
      ("loopgain",
       [ Alcotest.test_case "methods agree on two-pole loop" `Quick
           test_loopgain_methods_agree;
         Alcotest.test_case "margins" `Quick test_loopgain_margins ]) ]
