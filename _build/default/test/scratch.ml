(* Ad-hoc debugging harness; kept as a development convenience and not
   part of the test suite. Edit freely and run with
   `dune exec test/scratch.exe`. *)
let () = print_endline "scratch: nothing to do"
